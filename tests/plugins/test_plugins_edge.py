"""Edge cases across the shipped plugins."""

import numpy as np
import pytest

from repro.core import Communicator, extend, send_buf, send_counts
from repro.mpi import SUM
from repro.plugins import (
    DistributedSorter,
    GridAlltoall,
    ReproducibleReduce,
    SparseAlltoall,
)
from tests.conftest import runk

GridComm = extend(Communicator, GridAlltoall)
SparseComm = extend(Communicator, SparseAlltoall)
SortComm = extend(Communicator, DistributedSorter)
RRComm = extend(Communicator, ReproducibleReduce)


class TestGridEdge:
    def test_prime_p_degenerates_to_single_column(self):
        """p=7 factors as 7×1: phase 1 is the whole exchange, phase 2 local."""
        def main(comm):
            counts = [1] * comm.size
            data = np.arange(comm.size, dtype=np.int64) + 10 * comm.rank
            direct = comm.alltoallv(send_buf(data), send_counts(counts))
            grid = comm.alltoallv_grid(send_buf(data), send_counts(counts))
            return direct.tolist(), grid.tolist()

        for direct, grid in runk(main, 7, comm_class=GridComm).values:
            assert grid == direct

    def test_float_payloads(self):
        def main(comm):
            counts = [2] * comm.size
            data = np.repeat(np.float64(comm.rank) + 0.5, 2 * comm.size)
            out = comm.alltoallv_grid(send_buf(data), send_counts(counts))
            return np.asarray(out).tolist()

        res = runk(main, 4, comm_class=GridComm)
        assert res.values[0] == [0.5, 0.5, 1.5, 1.5, 2.5, 2.5, 3.5, 3.5]

    def test_all_empty(self):
        def main(comm):
            counts = [0] * comm.size
            out = comm.alltoallv_grid(
                send_buf(np.empty(0, dtype=np.int64)), send_counts(counts)
            )
            return len(out)

        assert all(v == 0 for v in runk(main, 8, comm_class=GridComm).values)

    def test_grid_cache_reused_across_calls(self):
        """Row/column communicators are built once, not per call."""
        def main(comm):
            counts = [1] * comm.size
            data = np.arange(comm.size, dtype=np.int64)
            before = comm.raw.machine.profile[comm.raw.world_rank]["comm_split"]
            for _ in range(5):
                comm.alltoallv_grid(send_buf(data), send_counts(counts))
            after = comm.raw.machine.profile[comm.raw.world_rank]["comm_split"]
            return after - before

        res = runk(main, 4, comm_class=GridComm)
        assert all(v == 2 for v in res.values)  # one row + one column split


class TestSparseEdge:
    def test_list_payloads(self):
        def main(comm):
            p, r = comm.size, comm.rank
            got = comm.alltoallv_sparse({(r + 1) % p: [("obj", r)]})
            return got[(r - 1) % p]

        res = runk(main, 3, comm_class=SparseComm)
        assert res.values[0] == [("obj", 2)]

    def test_self_message(self):
        def main(comm):
            got = comm.alltoallv_sparse({comm.rank: np.array([42])})
            return got[comm.rank].tolist()

        assert all(v == [42] for v in runk(main, 4, comm_class=SparseComm).values)

    def test_all_to_one_hotspot(self):
        def main(comm):
            msgs = {0: np.array([comm.rank])} if comm.rank else {}
            got = comm.alltoallv_sparse(msgs)
            if comm.rank == 0:
                return sorted(int(v[0]) for v in got.values())
            return sorted(got)

        res = runk(main, 8, comm_class=SparseComm)
        assert res.values[0] == list(range(1, 8))

    def test_out_of_range_destination(self):
        def main(comm):
            comm.alltoallv_sparse({99: np.array([1])})

        with pytest.raises(RuntimeError, match="out of range"):
            runk(main, 2, comm_class=SparseComm)


class TestSorterEdge:
    def test_floats_with_negatives(self):
        def main(comm):
            rng = np.random.default_rng(comm.rank)
            return comm.sort(rng.normal(size=300))

        blocks = runk(main, 4, comm_class=SortComm).values
        merged = np.concatenate(blocks)
        assert (np.diff(merged) >= 0).all()

    def test_all_equal_elements(self):
        def main(comm):
            return comm.sort(np.full(100, 7, dtype=np.int64))

        blocks = runk(main, 4, comm_class=SortComm).values
        assert sum(len(b) for b in blocks) == 400
        assert all((b == 7).all() for b in blocks)

    def test_single_rank(self):
        def main(comm):
            return comm.sort(np.array([3, 1, 2]))

        assert runk(main, 1, comm_class=SortComm).values[0].tolist() == [1, 2, 3]


class TestReproducibleReduceEdge:
    def test_single_element_total(self):
        def main(comm):
            vals = np.array([1.5]) if comm.rank == 0 else np.empty(0)
            return comm.allreduce_reproducible(vals, SUM)

        assert all(v == 1.5 for v in runk(main, 3, comm_class=RRComm).values)

    def test_extreme_imbalance(self):
        data = np.linspace(0.0, 1.0, 57)

        def main(comm):
            if comm.rank == comm.size - 1:
                vals = data
            else:
                vals = np.empty(0)
            return comm.allreduce_reproducible(vals, SUM)

        res = runk(main, 4, comm_class=RRComm)
        balanced = runk(
            lambda c: c.allreduce_reproducible(
                data[c.rank * 14: (c.rank + 1) * 14 if c.rank < 3 else 57], SUM
            ),
            4, comm_class=RRComm,
        )
        assert float(res.values[0]) == float(balanced.values[0])

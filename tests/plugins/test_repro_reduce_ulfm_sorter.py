"""Reproducible reduce (§V-C) and the distributed sorter plugins.

The ULFM tests (§V-B, Fig. 12) live in :mod:`tests.plugins.test_ulfm`.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import Communicator, extend, send_buf, op
from repro.mpi import MAX, SUM, user_op
from repro.plugins import (
    DistributedSorter,
    ReproducibleReduce,
    local_segments,
    merge_segments,
)
from tests.conftest import runk

RRComm = extend(Communicator, ReproducibleReduce)
SortComm = extend(Communicator, DistributedSorter)


class TestSegments:
    def test_aligned_decomposition(self):
        segs = local_segments(0, np.arange(8.0), SUM)
        assert [(lvl, idx) for lvl, idx, _ in segs] == [(3, 0)]

    def test_unaligned_start(self):
        segs = local_segments(3, np.arange(5.0), SUM)
        # [3,8) -> blocks [3,4), [4,8)
        assert [(lvl, idx) for lvl, idx, _ in segs] == [(0, 3), (2, 1)]

    def test_merge_combines_siblings(self):
        left = local_segments(0, np.arange(4.0), SUM)
        right = local_segments(4, np.arange(4.0, 8.0), SUM)
        merged = merge_segments(left, right, SUM)
        assert [(lvl, idx) for lvl, idx, _ in merged] == [(3, 0)]
        assert merged[0][2] == 28.0

    def test_segment_values_canonical_tree_order(self):
        concat = user_op(lambda a, b: f"({a}{b})", commutative=False)
        segs = local_segments(0, np.array(list("abcd"), dtype=object), concat)
        assert segs[0][2] == "((ab)(cd))"


@pytest.mark.parametrize("p", [1, 2, 3, 5, 8])
def test_reduce_reproducible_equals_fixed_tree(p):
    values = np.linspace(0.1, 7.3, 24)

    def main(comm):
        per = len(values) // comm.size
        lo = comm.rank * per
        hi = lo + per if comm.rank < comm.size - 1 else len(values)
        return comm.allreduce_reproducible(values[lo:hi], SUM)

    res = runk(main, p, comm_class=RRComm)
    assert len(set(map(float, res.values))) == 1


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31),
    n=st.integers(min_value=1, max_value=60),
)
def test_p_independence_property(seed, n):
    """The flagship §V-C invariant: identical result for every rank count."""
    rng = np.random.default_rng(seed)
    values = (rng.random(n) * 1e10).astype(np.float64)

    def main(comm, vals):
        p, r = comm.size, comm.rank
        per = len(vals) // p
        lo = r * per
        hi = lo + per if r < p - 1 else len(vals)
        return comm.allreduce_reproducible(np.asarray(vals[lo:hi]), SUM)

    results = set()
    for p in (1, 2, 3, 4, 5):
        res = runk(main, p, args=(values,), comm_class=RRComm)
        results.update(map(float, res.values))
    assert len(results) == 1


def test_naive_allreduce_is_not_reproducible_but_tree_is():
    """Sanity: the problem §V-C solves actually exists on this data."""
    rng = np.random.default_rng(7)
    values = (rng.random(4000) * 1e12).astype(np.float64)

    def naive(comm, vals):
        p, r = comm.size, comm.rank
        per = len(vals) // p
        lo, hi = r * per, (r + 1) * per if r < p - 1 else len(vals)
        return comm.allreduce_single(send_buf(float(np.sum(vals[lo:hi]))),
                                     op(SUM))

    naive_results = set()
    for p in (1, 2, 3, 5, 7):
        naive_results.add(float(runk(naive, p, args=(values,)).values[0]))
    assert len(naive_results) > 1  # rounding differs with p


def test_reduce_reproducible_empty_needs_identity():
    def main(comm):
        return comm.reduce_reproducible(np.empty(0), SUM)

    res = runk(main, 1, comm_class=RRComm)
    assert res.values[0] == 0  # SUM identity


def test_reduce_reproducible_max_op():
    def main(comm):
        vals = np.array([comm.rank * 1.5, comm.rank - 3.0])
        return comm.allreduce_reproducible(vals, MAX)

    res = runk(main, 4, comm_class=RRComm)
    assert all(v == 4.5 for v in res.values)


# ---------------------------------------------------------------------------
# sorter  (ULFM tests moved to tests/plugins/test_ulfm.py)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("p", [1, 2, 4, 7])
def test_sorter_global_order(p):
    def main(comm):
        rng = np.random.default_rng(comm.rank + 100)
        return comm.sort(rng.integers(0, 10**6, size=500))

    blocks = runk(main, p, comm_class=SortComm).values
    merged = np.concatenate(blocks)
    assert len(merged) == 500 * p
    assert (np.diff(merged) >= 0).all()


def test_sorter_matches_numpy():
    def main(comm, data_all):
        per = len(data_all) // comm.size
        lo = comm.rank * per
        hi = lo + per if comm.rank < comm.size - 1 else len(data_all)
        return comm.sort(np.asarray(data_all[lo:hi]))

    rng = np.random.default_rng(0)
    data = rng.integers(-10**9, 10**9, size=3000)
    res = runk(main, 6, args=(data,), comm_class=SortComm)
    merged = np.concatenate(res.values)
    assert np.array_equal(merged, np.sort(data))


def test_sorter_with_duplicates_and_empty_blocks():
    def main(comm):
        data = (np.full(200, 42, dtype=np.int64) if comm.rank % 2 == 0
                else np.empty(0, dtype=np.int64))
        return comm.sort(data)

    res = runk(main, 4, comm_class=SortComm)
    merged = np.concatenate(res.values)
    assert np.array_equal(merged, np.full(400, 42))


@settings(max_examples=10, deadline=None)
@given(
    p=st.integers(min_value=1, max_value=5),
    seed=st.integers(min_value=0, max_value=2**31),
    n=st.integers(min_value=0, max_value=200),
)
def test_sorter_property(p, seed, n):
    rng = np.random.default_rng(seed)
    data = rng.integers(-1000, 1000, size=(p, n))

    def main(comm):
        return comm.sort(data[comm.rank])

    blocks = runk(main, p, comm_class=SortComm).values
    merged = np.concatenate(blocks) if blocks else np.empty(0)
    assert np.array_equal(merged, np.sort(data.reshape(-1)))

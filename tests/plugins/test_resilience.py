"""Recovery engine: epoch loop, buddy checkpoints, and app-level campaigns.

The acceptance suite for the fault-tolerance stack: seed-pinned campaigns
kill ranks at op entries and *between the p2p rounds inside collectives*,
and the resilient sample sort / label propagation drivers must produce
results identical to a failure-free run (on the survivors).  The
recovery-disabled control shows the same faults surface as plain
:class:`MPIFailureDetected` when nobody recovers.
"""

import numpy as np
import pytest

from repro.apps.graphs.generators import generate_rgg2d
from repro.apps.graphs.labelprop import (
    LabelPropagationKamping,
    labelprop_resilient,
)
from repro.apps.sorting.sample_sort import (
    sample_sort_kamping,
    sample_sort_resilient,
)
from repro.core import Communicator, extend, op, send_buf
from repro.core.errors import KampingError
from repro.mpi import SUM, FaultCampaign, KillMidCollective, KillOnOp, KillRandom
from repro.plugins import (
    MPIFailureDetected,
    ULFM,
    CheckpointLost,
    RecoveryFailed,
    ResilientScope,
    run_resilient,
)
from tests.conftest import runk

FTComm = extend(Communicator, ULFM)


# ---------------------------------------------------------------------------
# scope mechanics
# ---------------------------------------------------------------------------


class TestScopeMechanics:
    def test_requires_ulfm_communicator(self):
        def main(comm):
            try:
                ResilientScope(comm, [])
            except KampingError:
                return "rejected"

        res = runk(main, 2)  # plain Communicator: no agree/revoke/shrink
        assert all(v == "rejected" for v in res.values)

    def test_clean_run_commits_every_epoch(self):
        def main(comm):
            def epoch(c, shards, _epoch):
                (key, val), = shards
                return [(key, val + c.allreduce_single(send_buf(1), op(SUM)))]

            scope = run_resilient(comm, epoch, [(comm.rank, 0)], epochs=3)
            (_, total), = scope.shards
            return scope.committed, total, scope.recovered_from

        res = runk(main, 4, comm_class=FTComm)
        # genesis + 3 application epochs; every epoch added p
        assert all(v == (4, 12, []) for v in res.values)

    def test_failed_attempt_never_corrupts_committed_shards(self):
        """The epoch function mutates its working copy, then everyone fails
        the attempt: the committed state must be untouched on retry."""
        def main(comm):
            attempts = []

            def epoch(c, shards, _epoch):
                attempts.append(None)
                shards[0] = ("k", shards[0][1] + 1000)  # scribble
                if len(attempts) == 1:
                    raise MPIFailureDetected("synthetic blown attempt")
                (key, val), = shards
                return [(key, val)]

            scope = run_resilient(comm, epoch, [("k", 5)], max_retries=2)
            return scope.shards, len(attempts)

        res = runk(main, 2, comm_class=FTComm)
        for shards, n_attempts in res.values:
            assert shards == [("k", 1005)]  # one scribble, not two
            assert n_attempts == 2  # the failed attempt + the retry

    def test_retry_cap_raises_recovery_failed(self):
        def main(comm):
            def epoch(c, shards, _epoch):
                raise MPIFailureDetected("always failing")

            try:
                run_resilient(comm, epoch, [(comm.rank, 0)], max_retries=2,
                              backoff_initial=1e-4, backoff_cap=1e-3)
            except RecoveryFailed as e:
                return "gave up" if "after 2 recoveries" in str(e) else str(e)

        res = runk(main, 2, comm_class=FTComm)
        assert all(v == "gave up" for v in res.values)

    def test_buddy_adoption_rebalances_dead_ranks_shard(self):
        def main(comm):
            first_attempt = [True]

            def epoch(c, shards, epoch):
                if epoch == 1 and first_attempt[0]:
                    first_attempt[0] = False
                    if c.raw.world_rank == 2:
                        c.raw.kill_self()
                total = c.allreduce_single(send_buf(1), op(SUM))  # detects the death
                return [(key, (val, total)) for key, val in shards]

            scope = run_resilient(comm, epoch, [(("blk", comm.rank),
                                                 comm.rank * 10)])
            return (sorted(key for key, _ in scope.shards),
                    scope.recovered_from, scope.comm.size)

        res = runk(main, 4, comm_class=FTComm)
        assert res.values[2] is None
        # ring successor 3 adopted rank 2's shard; everyone shrunk to 3
        assert res.values[3] == ([("blk", 2), ("blk", 3)], [2], 3)
        for r in (0, 1):
            assert res.values[r] == ([("blk", r)], [2], 3)

    def test_genesis_death_is_honest_checkpoint_loss(self):
        """A rank killed while replicating its *initial* shards has no
        committed replica anywhere: recovery must refuse, not fabricate."""
        def main(comm):
            try:
                ResilientScope(comm, [(comm.rank, comm.rank)])
            except CheckpointLost:
                return "lost"
            return "recovered"

        # the genesis replication send is the victim's first send
        camp = FaultCampaign([KillOnOp(rank=0, op="send", nth=1)])
        res = runk(main, 4, comm_class=FTComm, faults=camp)
        assert res.failed == frozenset({0})
        assert all(res.values[r] == "lost" for r in (1, 2, 3))

    def test_buddy_pair_death_is_checkpoint_lost(self):
        def main(comm):
            first_attempt = [True]

            def epoch(c, shards, epoch):
                if epoch == 1 and first_attempt[0]:
                    first_attempt[0] = False
                    if c.raw.world_rank in (1, 2):
                        c.raw.kill_self()
                c.allreduce_single(send_buf(1), op(SUM))
                return shards

            try:
                run_resilient(comm, epoch, [(comm.rank, 0)])
            except CheckpointLost as e:
                return "lost" if "checkpoint buddy" in str(e) else str(e)
            return "recovered"

        res = runk(main, 4, comm_class=FTComm)
        # rank 2 was rank 1's buddy: both dead within one epoch → data gone
        assert all(res.values[r] == "lost" for r in (0, 3))


class TestRecoveryDisabledControl:
    def test_fault_without_recovery_raises_failure_detected(self):
        """Acceptance control: the same deliberate fault, no ResilientScope —
        the application sees plain MPIFailureDetected."""
        def main(comm):
            if comm.rank == 1:
                comm.raw.kill_self()
            try:
                comm.allreduce_single(send_buf(1), op(SUM))
            except MPIFailureDetected:
                if not comm.is_revoked:
                    comm.revoke()  # unblock peers still inside the collective
                return "detected"
            return "unexpected"

        camp = FaultCampaign([])  # campaign attached, no recovery anywhere
        res = runk(main, 4, comm_class=FTComm, faults=camp)
        assert res.failed == frozenset({1})
        assert all(res.values[r] == "detected" for r in (0, 2, 3))

    def test_campaign_kill_without_recovery_raises_failure_detected(self):
        def main(comm):
            try:
                comm.allreduce_single(send_buf(1), op(SUM))
                comm.allreduce_single(send_buf(1), op(SUM))
            except MPIFailureDetected:
                if not comm.is_revoked:
                    comm.revoke()
                return "detected"
            return "unexpected"

        camp = FaultCampaign([KillOnOp(rank=2, op="allreduce", nth=2)])
        res = runk(main, 4, comm_class=FTComm, faults=camp)
        assert res.failed == frozenset({2})
        assert all(res.values[r] == "detected" for r in (0, 1, 3))


# ---------------------------------------------------------------------------
# resilient sample sort under seed-pinned campaigns
# ---------------------------------------------------------------------------

SORT_CAMPAIGNS = {
    "kill-at-alltoallv": (
        [KillOnOp(rank=2, op="alltoallv", nth=1)], 0, {2}),
    "kill-mid-allgather": (
        [KillMidCollective(rank=1, op="allgather", after_p2p=2)], 0, {1}),
    "seeded-random": (
        [KillRandom(rate=0.15, ranks={3})], 7, {3}),
}


def _sort_inputs(p, n=200):
    return [np.random.default_rng(900 + r).integers(0, 10**6, size=n)
            for r in range(p)]


class TestResilientSampleSort:
    P = 4

    def _run(self, campaign_rules, seed):
        data = _sort_inputs(self.P)

        def main(comm):
            new_comm, block = sample_sort_resilient(comm, data[comm.rank])
            return new_comm.size, np.asarray(block)

        camp = FaultCampaign(campaign_rules, seed=seed)
        res = runk(main, self.P, comm_class=FTComm, faults=camp)
        return res, camp, np.sort(np.concatenate(data))

    @pytest.mark.parametrize("name", list(SORT_CAMPAIGNS))
    def test_campaign_result_identical_to_failure_free(self, name):
        rules, seed, expect_dead = SORT_CAMPAIGNS[name]
        res, camp, want = self._run(rules, seed)
        assert res.failed == frozenset(expect_dead)
        assert camp.kills(), "campaign was supposed to strike"
        survivors = [r for r in range(self.P) if r not in res.failed]
        merged = np.concatenate([res.values[r][1] for r in survivors])
        assert np.array_equal(merged, want)
        assert all(res.values[r][0] == len(survivors) for r in survivors)

    def test_failure_free_scope_matches_plain_sort(self):
        res, camp, want = self._run([], 0)
        assert not res.failed and not camp.injected
        merged = np.concatenate([v[1] for v in res.values])
        assert np.array_equal(merged, want)

    def test_mid_collective_fault_is_traced(self):
        """Acceptance: the mid-collective kill shows up as fault:<kind>."""
        rules, seed, _ = SORT_CAMPAIGNS["kill-mid-allgather"]
        data = _sort_inputs(self.P)

        def main(comm):
            return sample_sort_resilient(comm, data[comm.rank])[1]

        camp = FaultCampaign(rules, seed=seed)
        res = runk(main, self.P, comm_class=FTComm, faults=camp,
                   trace=True)
        fault_ops = [e.op for e in res.trace.events_for(1)
                     if e.op.startswith("fault:")]
        assert fault_ops == ["fault:kill_mid_collective"]


# ---------------------------------------------------------------------------
# resilient label propagation under seed-pinned campaigns
# ---------------------------------------------------------------------------

LP_P = 4
LP_ROUNDS = 3
LP_MAX_CLUSTER = 16

LP_CAMPAIGNS = {
    "kill-at-allreduce": (
        [KillOnOp(rank=1, op="allreduce", nth=2)], 0, {1}),
    "kill-mid-alltoallv": (
        [KillMidCollective(rank=2, op="alltoallv", call=2, after_p2p=1)],
        0, {2}),
    "seeded-random": (
        [KillRandom(rate=0.4, ranks={0}, op="allreduce")], 1234, {0}),
}


def _lp_graph(orig):
    return generate_rgg2d(12, 4.0, LP_P, orig, seed=11)


@pytest.fixture(scope="module")
def lp_baseline():
    """Failure-free labels from the plain (non-resilient) implementation."""
    def main(comm):
        lp = LabelPropagationKamping(_lp_graph(comm.rank), LP_MAX_CLUSTER,
                                     comm)
        return lp.run(LP_ROUNDS)

    res = runk(main, LP_P)
    return np.concatenate(res.values)


class TestResilientLabelProp:
    def _run(self, campaign_rules, seed):
        def main(comm):
            _, labels_of = labelprop_resilient(
                comm, _lp_graph, LP_MAX_CLUSTER, LP_ROUNDS)
            return labels_of

        camp = FaultCampaign(campaign_rules, seed=seed)
        res = runk(main, LP_P, comm_class=FTComm, faults=camp)
        merged = {}
        for v in res.values:
            if v is not None:
                merged.update(v)
        assert sorted(merged) == list(range(LP_P))  # every block survived
        return res, camp, np.concatenate([merged[o] for o in range(LP_P)])

    @pytest.mark.parametrize("name", list(LP_CAMPAIGNS))
    def test_campaign_labels_identical_to_failure_free(self, name,
                                                       lp_baseline):
        rules, seed, expect_dead = LP_CAMPAIGNS[name]
        res, camp, labels = self._run(rules, seed)
        assert res.failed == frozenset(expect_dead)
        assert camp.kills(), "campaign was supposed to strike"
        assert np.array_equal(labels, lp_baseline)

    def test_failure_free_resilient_matches_plain(self, lp_baseline):
        res, camp, labels = self._run([], 0)
        assert not res.failed and not camp.injected
        assert np.array_equal(labels, lp_baseline)


# ---------------------------------------------------------------------------
# retry-policy knobs: max_attempts / deadline
# ---------------------------------------------------------------------------


class TestRetryPolicy:
    """``max_attempts=`` / ``deadline=`` bound each epoch's recovery loop."""

    def test_max_attempts_validated(self):
        def main(comm):
            try:
                ResilientScope(comm, [], max_attempts=0)
            except KampingError as e:
                return "first try counts as an attempt" in str(e)

        res = runk(main, 2, comm_class=FTComm)
        assert all(res.values)

    def test_deadline_validated(self):
        def main(comm):
            try:
                run_resilient(comm, lambda c, w, e: w, [], deadline=0.0)
            except KampingError as e:
                return "deadline must be > 0" in str(e)

        res = runk(main, 2, comm_class=FTComm)
        assert all(res.values)

    def test_attempt_budget_exhaustion(self):
        """max_attempts counts the first try: a budget of 3 runs the epoch
        exactly three times before RecoveryFailed."""
        def main(comm):
            tries = []

            def epoch(c, shards, _epoch):
                tries.append(None)
                raise MPIFailureDetected("synthetic blown attempt")

            scope = ResilientScope(comm, [("k", comm.rank)],
                                   max_attempts=3, backoff_initial=1e-4,
                                   backoff_cap=1e-3)
            try:
                scope.run(epoch)
            except RecoveryFailed as e:
                return len(tries), "max_attempts=3" in str(e)

        res = runk(main, 2, comm_class=FTComm)
        assert all(v == (3, True) for v in res.values)

    def test_success_on_last_attempt_commits(self):
        """An epoch that stops failing exactly when the budget runs out must
        commit, not raise — the budget bounds retries, not successes."""
        def main(comm):
            tries = []

            def epoch(c, shards, _epoch):
                tries.append(None)
                if len(tries) < 3:
                    raise MPIFailureDetected("synthetic blown attempt")
                (key, val), = shards
                return [(key, val + 100)]

            scope = ResilientScope(comm, [("k", 7)], max_attempts=3,
                                   backoff_initial=1e-4, backoff_cap=1e-3)
            scope.run(epoch)
            return scope.shards, len(tries)

        res = runk(main, 2, comm_class=FTComm)
        assert all(v == ([("k", 107)], 3) for v in res.values)

    def test_deadline_expiry_raises_between_attempts(self):
        def main(comm):
            def epoch(c, shards, _epoch):
                raise MPIFailureDetected("synthetic blown attempt")

            scope = ResilientScope(comm, [], deadline=1e-6,
                                   backoff_initial=1e-4, backoff_cap=1e-3)
            try:
                scope.run(epoch)
            except RecoveryFailed as e:
                return "recovery deadline expired" in str(e)

        res = runk(main, 2, comm_class=FTComm)
        assert all(res.values)

    def test_legacy_max_retries_budget_unchanged(self):
        """Default policy (no max_attempts) still allows max_retries + 1
        total tries with the historical message."""
        def main(comm):
            tries = []

            def epoch(c, shards, _epoch):
                tries.append(None)
                raise MPIFailureDetected("synthetic blown attempt")

            try:
                run_resilient(comm, epoch, [], max_retries=3,
                              backoff_initial=1e-4, backoff_cap=1e-3)
            except RecoveryFailed as e:
                return len(tries), "after 3 recoveries" in str(e)

        res = runk(main, 2, comm_class=FTComm)
        assert all(v == (4, True) for v in res.values)

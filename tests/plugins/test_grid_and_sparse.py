"""Grid and sparse (NBX) all-to-all plugins (§V-A)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import Communicator, extend, recv_counts_out, send_buf, send_counts
from repro.plugins import GridAlltoall, SparseAlltoall, grid_dims
from tests.conftest import runk

GridComm = extend(Communicator, GridAlltoall)
SparseComm = extend(Communicator, SparseAlltoall)
BothComm = extend(Communicator, GridAlltoall, SparseAlltoall)


class TestGridDims:
    @pytest.mark.parametrize("p,expected", [
        (1, (1, 1)), (4, (2, 2)), (6, (3, 2)), (8, (4, 2)), (12, (4, 3)),
        (16, (4, 4)), (7, (7, 1)), (64, (8, 8)),
    ])
    def test_exact_factorization(self, p, expected):
        nrows, ncols = grid_dims(p)
        assert (nrows, ncols) == expected
        assert nrows * ncols == p
        assert ncols <= nrows


@pytest.mark.parametrize("p", [1, 2, 4, 6, 8, 9, 12])
def test_grid_matches_direct_alltoallv(p):
    def main(comm):
        rng = np.random.default_rng(comm.rank)
        counts = rng.integers(0, 4, size=comm.size).tolist()
        data = np.concatenate(
            [np.full(counts[d], comm.rank * 1000 + d, dtype=np.int64)
             for d in range(comm.size)]
        ) if sum(counts) else np.empty(0, dtype=np.int64)
        direct = comm.alltoallv(send_buf(data), send_counts(counts))
        grid = comm.alltoallv_grid(send_buf(data), send_counts(counts))
        return direct.tolist(), grid.tolist()

    for direct, grid in runk(main, p, comm_class=GridComm).values:
        assert grid == direct


def test_grid_recv_counts_out():
    def main(comm):
        counts = [comm.rank + 1] * comm.size
        data = np.repeat(np.arange(comm.size), comm.rank + 1) \
            + 100 * comm.rank
        buf, rcounts = comm.alltoallv_grid(
            send_buf(data.astype(np.int64)), send_counts(counts),
            recv_counts_out(),
        )
        return rcounts

    res = runk(main, 4, comm_class=GridComm)
    assert res.values[0] == [1, 2, 3, 4]


def test_grid_latency_scales_with_sqrt_p():
    """Grid beats direct alltoallv on many-zero-block exchanges at scale."""
    from repro.mpi import CostModel

    cm = CostModel(alpha=1e-3, beta=0.0, overhead=0.0)

    def main(comm):
        counts = [0] * comm.size
        counts[(comm.rank + 1) % comm.size] = 1
        data = np.array([comm.rank], dtype=np.int64)
        t0 = comm.raw.clock.now
        comm.alltoallv(send_buf(data), send_counts(counts))
        t1 = comm.raw.clock.now
        comm.alltoallv_grid(send_buf(data), send_counts(counts))
        t2 = comm.raw.clock.now
        return t1 - t0, t2 - t1

    res = runk(main, 16, comm_class=GridComm, cost_model=cm)
    direct, grid = map(max, zip(*res.values))
    assert grid < direct  # 2·(√p−1) rounds beat (p−1) rounds at p=16


@pytest.mark.parametrize("p", [1, 3, 4, 8])
def test_sparse_roundtrip(p):
    def main(comm):
        msgs = {}
        if comm.size > 1:
            msgs[(comm.rank + 1) % comm.size] = np.array([comm.rank, 7])
        got = comm.alltoallv_sparse(msgs)
        return {src: v.tolist() for src, v in got.items()}

    res = runk(main, p, comm_class=SparseComm)
    for r in range(p):
        if p == 1:
            assert res.values[r] == {}
        else:
            assert res.values[r] == {(r - 1) % p: [(r - 1) % p, 7]}


def test_sparse_empty_exchange():
    def main(comm):
        return comm.alltoallv_sparse({})

    res = runk(main, 4, comm_class=SparseComm)
    assert all(v == {} for v in res.values)


def test_sparse_no_counts_array_needed():
    """NBX never materializes Θ(p) state — receivers learn sources lazily."""
    def main(comm):
        msgs = {0: np.array([comm.rank])} if comm.rank != 0 else {}
        got = comm.alltoallv_sparse(msgs)
        if comm.rank == 0:
            return sorted((src, v.tolist()) for src, v in got.items())
        return got

    res = runk(main, 6, comm_class=SparseComm)
    assert res.values[0] == [(r, [r]) for r in range(1, 6)]
    assert all(v == {} for v in res.values[1:])


def test_sparse_consecutive_rounds_do_not_cross_talk():
    def main(comm):
        p = comm.size
        first = comm.alltoallv_sparse({(comm.rank + 1) % p: np.array([1])})
        second = comm.alltoallv_sparse({(comm.rank + 1) % p: np.array([2])})
        return (list(first.values())[0].tolist(),
                list(second.values())[0].tolist())

    res = runk(main, 4, comm_class=SparseComm)
    assert all(v == ([1], [2]) for v in res.values)


@settings(max_examples=15, deadline=None)
@given(
    p=st.integers(min_value=2, max_value=6),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_sparse_matches_alltoallv_property(p, seed):
    rng = np.random.default_rng(seed)
    counts = rng.integers(0, 3, size=(p, p))
    np.fill_diagonal(counts, 0)

    def main(comm):
        r = comm.rank
        msgs = {
            d: np.full(counts[r][d], r * 10 + d, dtype=np.int64)
            for d in range(p) if counts[r][d]
        }
        got = comm.alltoallv_sparse(msgs)
        return {src: sorted(v.tolist()) for src, v in got.items()}

    res = runk(main, p, comm_class=SparseComm)
    for r in range(p):
        expected = {
            s: [s * 10 + r] * counts[s][r]
            for s in range(p) if counts[s][r]
        }
        assert res.values[r] == expected


def test_grid_and_sparse_compose_on_one_communicator():
    def main(comm):
        counts = [1] * comm.size
        data = np.arange(comm.size, dtype=np.int64)
        grid = comm.alltoallv_grid(send_buf(data), send_counts(counts))
        sparse = comm.alltoallv_sparse({comm.rank: np.array([9])})
        return grid.tolist(), sparse[comm.rank].tolist()

    res = runk(main, 4, comm_class=BothComm)
    assert res.values[0][1] == [9]

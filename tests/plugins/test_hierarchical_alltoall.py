"""The §VI extension: d-dimensional indirect all-to-all with aggregation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import Communicator, extend, recv_counts_out, send_buf, send_counts
from repro.mpi import CostModel
from repro.plugins.hierarchical_alltoall import (
    HierarchicalAlltoall,
    balanced_dims,
    coords_to_rank,
    rank_to_coords,
)
from tests.conftest import runk

HComm = extend(Communicator, HierarchicalAlltoall)


class TestDims:
    @pytest.mark.parametrize("p", [1, 2, 4, 7, 8, 12, 16, 24, 27, 64, 100])
    @pytest.mark.parametrize("d", [1, 2, 3, 4])
    def test_product_exact(self, p, d):
        dims = balanced_dims(p, d)
        assert len(dims) == d
        assert int(np.prod(dims)) == p

    def test_power_of_two_balanced(self):
        assert balanced_dims(64, 3) == (4, 4, 4)
        assert balanced_dims(16, 4) == (2, 2, 2, 2)

    def test_prime_degenerates(self):
        assert balanced_dims(7, 2) == (1, 7)

    def test_invalid_dimension(self):
        from repro.core.errors import UsageError

        with pytest.raises(UsageError):
            balanced_dims(4, 0)

    @pytest.mark.parametrize("p,d", [(12, 2), (27, 3), (16, 4)])
    def test_coords_roundtrip(self, p, d):
        dims = balanced_dims(p, d)
        for r in range(p):
            assert coords_to_rank(rank_to_coords(r, dims), dims) == r


def _exchange(comm, d, seed):
    p, r = comm.size, comm.rank
    rng = np.random.default_rng((seed, r))
    counts = rng.integers(0, 4, size=p).tolist()
    data = np.concatenate(
        [np.full(counts[dest], r * 1000 + dest, dtype=np.int64)
         for dest in range(p)]
    ) if sum(counts) else np.empty(0, dtype=np.int64)
    direct = comm.alltoallv(send_buf(data), send_counts(counts))
    res = comm.alltoallv_hypergrid(send_buf(data), send_counts(counts),
                                   recv_counts_out(), d=d)
    hyper, rc = res
    return direct.tolist(), hyper.tolist(), rc


@pytest.mark.parametrize("p", [1, 4, 8, 12, 16])
@pytest.mark.parametrize("d", [1, 2, 3])
def test_matches_direct_alltoallv(p, d):
    res = runk(lambda c: _exchange(c, d, 5), p, comm_class=HComm)
    for r in range(p):
        direct, hyper, rc = res.values[r]
        assert hyper == direct
        assert sum(rc) == len(direct)


def test_d1_is_direct_exchange():
    """One dimension = no indirection: a single alltoallv over everyone."""
    res = runk(lambda c: _exchange(c, 1, 9), 6, comm_class=HComm)
    for direct, hyper, _ in res.values:
        assert hyper == direct


def test_empty_exchange():
    def main(comm):
        counts = [0] * comm.size
        out = comm.alltoallv_hypergrid(
            send_buf(np.empty(0, dtype=np.int64)), send_counts(counts), d=3
        )
        return len(out)

    assert all(v == 0 for v in runk(main, 8, comm_class=HComm).values)


def test_latency_decreases_with_dimension_for_sparse_traffic():
    """More hops ⇒ fewer start-ups per hop; wins for latency-bound exchanges."""
    cm = CostModel(alpha=1e-3, beta=0.0, overhead=0.0)

    def main(comm):
        p, r = comm.size, comm.rank
        counts = [0] * p
        counts[(r + 1) % p] = 1
        data = np.array([r], dtype=np.int64)
        times = {}
        for d in (1, 2, 3):
            t0 = comm.raw.clock.now
            comm.alltoallv_hypergrid(send_buf(data), send_counts(counts), d=d)
            times[d] = comm.raw.clock.now - t0
        return times

    res = runk(main, 27, comm_class=HComm, cost_model=cm)
    times = {d: max(v[d] for v in res.values) for d in (1, 2, 3)}
    # 26 start-ups vs 2·(9−1)+... vs 3·(3−1) rounds — monotone decreasing
    assert times[3] < times[2] < times[1]


def test_aggregation_combines_messages_per_hop():
    """All traffic between a rank pair in one hop travels as one message."""
    def main(comm):
        p, r = comm.size, comm.rank
        # everyone sends to every rank: without aggregation, hop 1 would carry
        # p messages per neighbor; with aggregation it's one per neighbor.
        counts = [1] * p
        data = np.arange(p, dtype=np.int64)
        before = dict(comm.raw.machine.profile[comm.raw.world_rank])
        comm.alltoallv_hypergrid(send_buf(data), send_counts(counts), d=2)
        after = comm.raw.machine.profile[comm.raw.world_rank]
        # exactly one alltoallv per hop (plus count-inference alltoalls)
        return after["alltoallv"] - before.get("alltoallv", 0)

    res = runk(main, 16, comm_class=HComm)
    assert all(v == 2 for v in res.values)  # 2 hops = 2 aggregated alltoallvs


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 2**31), d=st.integers(1, 3))
def test_hypergrid_property(seed, d):
    res = runk(lambda c: _exchange(c, d, seed), 8, comm_class=HComm)
    for direct, hyper, _ in res.values:
        assert hyper == direct

"""ULFM plugin: failure detection, revoke/shrink/agree, recovery (§V-B, Fig. 12)."""

import time

from repro.core import Communicator, extend, send_buf, op
from repro.mpi import SUM
from repro.plugins import MPIFailureDetected, MPIRevokedError, ULFM
from tests.conftest import runk

FTComm = extend(Communicator, ULFM)


def test_fig12_failure_recovery():
    def main(comm):
        if comm.rank == 1:
            comm.raw.kill_self()
        try:
            comm.allreduce_single(send_buf(1), op(SUM))
            return "unexpected"
        except MPIFailureDetected:
            if not comm.is_revoked:
                comm.revoke()
            comm = comm.shrink(generation=1)
            return ("recovered", comm.size,
                    comm.allreduce_single(send_buf(1), op(SUM)))

    res = runk(main, 4, comm_class=FTComm)
    for r in (0, 2, 3):
        assert res.values[r] == ("recovered", 3, 3)
    assert res.values[1] is None


def test_revoked_comm_raises_revoked_error():
    def main(comm):
        comm.revoke()
        try:
            comm.allreduce_single(send_buf(1), op(SUM))
        except MPIRevokedError:
            return "revoked"

    assert all(v == "revoked" for v in runk(main, 2, comm_class=FTComm).values)


def test_revoked_error_is_failure_subclass():
    assert issubclass(MPIRevokedError, MPIFailureDetected)


def test_agree_after_failure():
    def main(comm):
        if comm.rank == 2:
            comm.raw.kill_self()
        return comm.agree(True, generation="g1")

    res = runk(main, 3, comm_class=FTComm)
    assert res.values[0] is True and res.values[1] is True


def test_shrunk_comm_keeps_plugin_type():
    def main(comm):
        if comm.rank == 0:
            comm.raw.kill_self()
        while not comm.raw.failed_ranks():
            time.sleep(0.01)
        shrunk = comm.shrink(generation=5)
        return isinstance(shrunk, ULFM)

    res = runk(main, 3, comm_class=FTComm)
    assert res.values[1] is True


def test_double_shrink_default_generation_does_not_collide():
    """Repeated shrink() without an explicit generation must re-agree.

    The machine caches one rendezvous result per (comm, generation); before
    the auto-incrementing epoch, a second default shrink of the same
    communicator silently replayed the first agreement and kept the newly
    dead rank.  Kill rank 3, shrink, kill rank 2, shrink the *original*
    communicator again: the second shrink must see both deaths.
    """
    def main(comm):
        if comm.rank == 3:
            comm.raw.kill_self()
        while not comm.raw.failed_ranks():
            time.sleep(0.01)
        first = comm.shrink()
        if comm.rank == 2:
            comm.raw.kill_self()
        while len(comm.raw.failed_ranks()) < 2:
            time.sleep(0.01)
        second = comm.shrink()
        return first.size, second.size

    res = runk(main, 4, comm_class=FTComm)
    for r in (0, 1):
        assert res.values[r] == (3, 2)
    assert res.values[2] is None and res.values[3] is None


def test_explicit_generation_still_overrides():
    """Same explicit generation → the cached agreement is reused by design."""
    def main(comm):
        a = comm.shrink(generation="pinned")
        b = comm.shrink(generation="pinned")
        return a.raw.comm_id == b.raw.comm_id

    res = runk(main, 3, comm_class=FTComm)
    assert all(res.values)

"""The analytic performance model: calibration against the real generators
and cross-validation against the executing simulator."""

import numpy as np
import pytest

from repro.apps.graphs.generators import generate_gnm, generate_rgg2d, generate_rhg
from repro.mpi import CostModel
from repro.perf import bfs_sweep, bfs_time, bfs_workload, exchange_cost, samplesort_sweep
from repro.perf.families import LevelStats
from repro.perf.samplesort_model import BINDINGS, samplesort_time

CM = CostModel()


class TestFamilyCalibration:
    """The family models' parameters must match the actual generators."""

    def test_gnm_partners_saturate(self):
        p = 16
        graphs = [generate_gnm(64, 512, p, r, seed=2) for r in range(0, p, 4)]
        assert all(len(g.neighbor_ranks()) == p - 1 for g in graphs)
        w = bfs_workload("gnm", p, 64, 16.0)
        peak = max(w.levels, key=lambda s: s.frontier_per_rank)
        assert peak.partners == p - 1

    def test_rgg_partners_bounded(self):
        p = 16
        graphs = [generate_rgg2d(64, 8.0, p, r, seed=2) for r in range(p)]
        measured = max(len(g.neighbor_ranks()) for g in graphs)
        assert measured <= 8
        w = bfs_workload("rgg", p, 64, 8.0)
        assert all(s.partners <= 8 for s in w.levels)

    def test_rhg_partner_growth_slow(self):
        """RHG average partners grow ~log p (measured), hubs faster."""
        avgs = {}
        for p in (4, 16):
            ks = [len(generate_rhg(64, 8.0, p, r, seed=2).neighbor_ranks())
                  for r in range(0, p, max(p // 8, 1))]
            avgs[p] = np.mean(ks)
        assert avgs[16] < 4 * avgs[4]  # far from linear growth
        w4, w16 = bfs_workload("rhg", 4), bfs_workload("rhg", 16)
        assert max(s.partners for s in w16.levels) \
            < 4 * max(s.partners for s in w4.levels) + 1

    def test_cross_fraction_rgg(self):
        p = 16
        fracs = []
        for r in range(p):
            g = generate_rgg2d(64, 8.0, p, r, seed=2)
            owners = np.array([g.owner(int(t)) for t in g.adjncy])
            if len(owners):
                fracs.append((owners != r).mean())
        assert 0.02 < np.mean(fracs) < 0.25  # model uses 0.09

    def test_workload_conserves_vertices(self):
        for family in ("gnm", "rgg", "rhg"):
            w = bfs_workload(family, 64, 256, 16.0)
            total = sum(s.frontier_per_rank * s.active_fraction * w.p
                        for s in w.levels)
            assert total == pytest.approx(256 * 64, rel=0.35), family


class TestStrategyCosts:
    STATS = LevelStats(frontier_per_rank=100, cross_elems_per_rank=400,
                       partners=6)

    def test_direct_cost_linear_in_p(self):
        c1 = exchange_cost("mpi", self.STATS, 64, CM)
        c2 = exchange_cost("mpi", self.STATS, 256, CM)
        assert c2 / c1 == pytest.approx(4.0, rel=0.15)

    def test_grid_cost_sqrt_in_p(self):
        c1 = exchange_cost("kamping_grid", self.STATS, 64, CM)
        c2 = exchange_cost("kamping_grid", self.STATS, 256, CM)
        assert c2 / c1 == pytest.approx(2.0, rel=0.3)

    def test_sparse_cost_logarithmic_in_p(self):
        c1 = exchange_cost("kamping_sparse", self.STATS, 64, CM)
        c2 = exchange_cost("kamping_sparse", self.STATS, 4096, CM)
        assert c2 < 3 * c1

    def test_rebuild_strictly_worse_than_static(self):
        for p in (16, 256, 4096):
            assert exchange_cost("mpi_neighbor_rebuild", self.STATS, p, CM) \
                > exchange_cost("mpi_neighbor", self.STATS, p, CM)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            exchange_cost("teleport", self.STATS, 4, CM)


class TestFig10Shapes:
    """The paper's qualitative Fig. 10 findings, at the paper's scale."""

    P = 2**14

    def _t(self, family, strategy):
        return bfs_time(strategy, bfs_workload(family, self.P), CM)

    def test_grid_most_scalable_on_rhg(self):
        t = {s: self._t("rhg", s) for s in
             ("mpi", "mpi_neighbor", "kamping_sparse", "kamping_grid")}
        assert t["kamping_grid"] == min(t.values())
        assert t["mpi"] == max(t.values())

    def test_grid_wins_on_gnm(self):
        assert self._t("gnm", "kamping_grid") < self._t("gnm", "mpi_neighbor")
        assert self._t("gnm", "kamping_grid") < self._t("gnm", "mpi")

    def test_rgg_needs_sparse_communication(self):
        t_mpi = self._t("rgg", "mpi")
        for s in ("mpi_neighbor", "kamping_sparse"):
            assert self._t("rgg", s) < t_mpi / 20
        # grid beats direct alltoallv but loses to sparse on RGG
        assert self._t("rgg", "kamping_grid") < t_mpi
        assert self._t("rgg", "kamping_sparse") < self._t("rgg", "kamping_grid")

    def test_sparse_only_slightly_slower_than_neighbor(self):
        for family in ("rgg", "rhg"):
            ratio = self._t(family, "kamping_sparse") \
                / self._t(family, "mpi_neighbor")
            assert 0.9 < ratio < 2.5, family

    def test_rebuild_does_not_scale(self):
        small = bfs_time("mpi_neighbor_rebuild", bfs_workload("rgg", 64), CM) \
            / bfs_time("mpi_neighbor", bfs_workload("rgg", 64), CM)
        large = bfs_time("mpi_neighbor_rebuild", bfs_workload("rgg", self.P), CM) \
            / bfs_time("mpi_neighbor", bfs_workload("rgg", self.P), CM)
        assert large > 2 * small


class TestFig8Shapes:
    def test_all_near_mpi_except_mpl(self):
        for p in (48, 3072):
            t = {b: samplesort_time(b, p, 10**6, CM) for b in BINDINGS}
            assert t["KaMPIng"] == t["MPI"]  # zero overhead by construction
            assert t["RWTH-MPI"] == t["MPI"]
            assert t["MPL"] > t["MPI"]
            assert abs(t["Boost.MPI"] - t["MPI"]) < 0.25 * t["MPI"]

    def test_mpl_gap_grows_with_p(self):
        gap = {p: samplesort_time("MPL", p, 10**6, CM)
               - samplesort_time("MPI", p, 10**6, CM)
               for p in (48, 12288)}
        assert gap[12288] > gap[48]


class TestSweepSplicing:
    def test_samplesort_sweep_mixes_sources(self):
        pts = samplesort_sweep("KaMPIng", [2, 4, 256], 2000,
                               simulator_max_p=4)
        assert [pt.source for pt in pts] == ["simulated", "simulated", "model"]
        assert all(pt.seconds > 0 for pt in pts)

    def test_bfs_sweep_mixes_sources(self):
        pts = bfs_sweep("rgg", "kamping", [2, 64], n_per_rank=32,
                        simulator_max_p=4)
        assert [pt.source for pt in pts] == ["simulated", "model"]

    def test_model_vs_simulator_same_order_of_magnitude(self):
        """Cross-validation: at p=16 the model and the executing simulator
        agree within a small factor for the sample sort."""
        sim = samplesort_sweep("MPI", [16], 20000, simulator_max_p=16)[0]
        model = samplesort_sweep("MPI", [16], 20000, simulator_max_p=0)[0]
        assert model.seconds == pytest.approx(sim.seconds, rel=0.6)

"""Cross-validation of the per-algorithm α-β cost formulas.

Every registered collective algorithm carries a closed-form cost formula the
:class:`~repro.mpi.engine.CollectiveEngine` uses to pick a schedule.  These
tests run each algorithm through the executing simulator under three cost
models (latency-dominated, bandwidth-dominated, and the default) and check
the formula against the measured virtual makespan.

Two accuracy tiers:

* **wire-exact** algorithms put ndarrays (or nothing) on the wire, so
  ``payload_nbytes`` matches the formula's byte accounting — the predictions
  track the simulator within ~12 % across p ∈ {4, 7, 8} including the
  overhead-scheduling slack the formulas deliberately ignore.
* **container** algorithms ship Python lists/tuples of blocks (Bruck's
  collected-block lists, the binomial gather's (rank, payload) items,
  scatter_allgather's tagged shards), which are pickled on the wire.  Pickle
  framing is out of the α-β model, so these are validated only at large
  payloads where bytes dominate framing, with a factor-2 envelope.

The measurement harness uses *distinct* per-rank and per-destination arrays:
pickle memoizes repeated object references, so ``[arr] * p`` would collapse
the wire size and corrupt the measurement.
"""

import numpy as np
import pytest

from repro.mpi import CollectiveEngine, CostModel, SUM, algorithms, run_mpi
from repro.perf.strategies import collective_cost

ITEM = 8  # np.int64 wire width

COST_MODELS = {
    "alpha_heavy": CostModel(alpha=1e-3, beta=1e-9, overhead=1e-5),
    "beta_heavy": CostModel(alpha=1e-6, beta=1e-5, overhead=1e-7),
    "default": CostModel(),
}

#: (op, algorithm) pairs whose wire payloads are raw ndarrays / tokens —
#: the formula must track the simulator tightly.
WIRE_EXACT = [
    ("barrier", "dissemination"),
    ("barrier", "tree"),
    ("bcast", "binomial"),
    ("bcast", "linear"),
    ("gather", "linear"),
    ("scatter", "linear"),
    ("allgather", "ring"),
    ("allgatherv", "ring"),
    ("alltoall", "pairwise"),
    ("alltoall", "spread"),
    ("alltoallv", "pairwise"),
    ("alltoallv", "spread"),
    ("reduce", "binomial"),
    ("reduce", "linear"),
    ("allreduce", "recursive_doubling"),
    ("allreduce", "reduce_bcast"),
    ("allreduce", "ring"),
    ("scan", "doubling"),
    ("exscan", "doubling"),
]

#: Pairs that pickle containers onto the wire: framing overhead is out of
#: model, so only the bytes-dominated regime is checked, loosely.
CONTAINER = [
    ("bcast", "scatter_allgather"),
    ("gather", "binomial"),
    ("scatter", "binomial"),
    ("allgather", "bruck"),
    ("allgather", "gather_bcast"),
    ("allgatherv", "gather_bcast"),
]


def _block(rank: int, width: int) -> np.ndarray:
    # distinct content per rank so nothing on the wire aliases
    return np.arange(width, dtype=np.int64) * (rank + 3) + rank


def _measure(op: str, name: str, p: int, width: int, cm: CostModel) -> float:
    engine = CollectiveEngine(cm, overrides={op: name}, env={})

    def main(comm):
        r = comm.rank
        arr = _block(r, width)
        if op == "bcast":
            comm.bcast(arr if r == 0 else None, 0)
        elif op == "allgather":
            comm.allgather(arr)
        elif op == "allgatherv":
            comm.allgatherv(arr, [width] * comm.size)
        elif op == "allreduce":
            comm.allreduce(arr, SUM)
        elif op == "reduce":
            comm.reduce(arr, SUM, 0)
        elif op == "alltoall":
            comm.alltoall([int(x) for x in range(comm.size)])
        elif op == "alltoallv":
            buf = np.concatenate([_block(d, width) for d in range(comm.size)])
            comm.alltoallv(buf, [width] * comm.size, [width] * comm.size)
        elif op == "barrier":
            comm.barrier()
        elif op == "gather":
            comm.gather(arr, 0)
        elif op == "scatter":
            blocks = ([_block(d, width) for d in range(comm.size)]
                      if r == 0 else None)
            comm.scatter(blocks, 0)
        elif op == "scan":
            comm.scan(arr, SUM)
        elif op == "exscan":
            comm.exscan(arr, SUM)
        else:  # pragma: no cover - keep the matrix exhaustive
            raise AssertionError(f"unhandled op {op}")

    res = run_mpi(main, p, cost_model=cm, engine=engine, deadline=60.0)
    return res.max_time


def _hint(op: str, p: int, width: int) -> int:
    """The nbytes hint the engine itself would compute for this call."""
    nbytes = width * ITEM
    if op in ("allgatherv", "alltoallv"):
        return nbytes * p  # total gathered / total local send volume
    if op == "alltoall":
        return p * ITEM  # p scalar payloads
    if op == "barrier":
        return 0
    return nbytes


@pytest.mark.parametrize("cm_name", sorted(COST_MODELS))
@pytest.mark.parametrize("p", (4, 7, 8))
@pytest.mark.parametrize("op,name", WIRE_EXACT)
def test_wire_exact_formulas_track_the_simulator(op, name, p, cm_name):
    cm = COST_MODELS[cm_name]
    for width in (16, 512):
        measured = _measure(op, name, p, width, cm)
        predicted = algorithms.get(op, name).predict(p, _hint(op, p, width), cm)
        assert measured > 0 or predicted == 0
        if measured > 0:
            assert predicted == pytest.approx(measured, rel=0.12), \
                f"{op}/{name} p={p} w={width} cm={cm_name}"


@pytest.mark.parametrize("cm_name", sorted(COST_MODELS))
@pytest.mark.parametrize("p", (4, 7, 8))
@pytest.mark.parametrize("op,name", CONTAINER)
def test_container_formulas_bound_the_simulator(op, name, p, cm_name):
    cm = COST_MODELS[cm_name]
    width = 512  # 4 KiB blocks: bytes dominate pickle framing
    measured = _measure(op, name, p, width, cm)
    predicted = algorithms.get(op, name).predict(p, _hint(op, p, width), cm)
    assert measured > 0
    assert measured / 2 <= predicted <= measured * 2, \
        f"{op}/{name} p={p} cm={cm_name}: measured={measured} predicted={predicted}"


def _costed():
    for op in algorithms.collectives():
        for algo in algorithms.algorithms(op):
            if algo.cost is not None:
                yield op, algo


def test_singleton_predictions_are_zero():
    cm = CostModel()
    for op, algo in _costed():
        assert algo.predict(1, 4096, cm) == 0.0, \
            f"{op}/{algo.name} must predict a free singleton"


def test_collective_cost_matches_registry_predict():
    cm = COST_MODELS["beta_heavy"]
    for op, algo in _costed():
        assert collective_cost(op, algo.name, 8, 4096, cm) \
            == algo.predict(8, 4096, cm)


def test_costs_monotone_in_payload():
    """Bigger payloads never get cheaper (sanity for the argmin policy)."""
    cm = CostModel()
    for op, algo in _costed():
        costs = [algo.predict(8, n, cm) for n in (0, 64, 4096, 1 << 20)]
        assert costs == sorted(costs), f"{op}/{algo.name}: {costs}"

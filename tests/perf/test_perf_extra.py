"""Additional performance-model coverage: monotonicity, internals, splicing."""

import numpy as np
import pytest

from repro.mpi import CostModel, FREE
from repro.perf import bfs_time, bfs_workload, samplesort_time
from repro.perf.families import LevelStats, bfs_workload as workload
from repro.perf.samplesort_model import BINDINGS
from repro.perf.strategies import COMM_CREATE_PER_RANK, exchange_cost
from repro.perf.sweep import SweepPoint, bfs_sweep, samplesort_sweep

CM = CostModel()


class TestWorkloadInternals:
    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError):
            workload("smallworld", 16)

    def test_levels_positive_and_finite(self):
        for family in ("gnm", "rgg", "rhg"):
            for p in (4, 64, 4096):
                w = workload(family, p)
                assert w.num_levels >= 1
                for s in w.levels:
                    assert s.frontier_per_rank >= 0
                    assert s.cross_elems_per_rank >= 0
                    assert 0 <= s.partners <= p - 1 or p == 1
                    assert s.partners_max >= s.partners

    def test_rgg_levels_grow_with_p(self):
        """Weak scaling grows the area, hence the diameter, hence the levels."""
        assert workload("rgg", 1024).num_levels > workload("rgg", 64).num_levels

    def test_gnm_levels_logarithmic(self):
        l64 = workload("gnm", 64).num_levels
        l16384 = workload("gnm", 16384).num_levels
        assert l16384 <= l64 + 4

    def test_partners_max_defaults_to_partners(self):
        s = LevelStats(1.0, 2.0, 5.0)
        assert s.partners_max == 5.0


class TestCostMonotonicity:
    STATS = LevelStats(100.0, 500.0, 10.0)

    @pytest.mark.parametrize("strategy", ["mpi", "mpi_neighbor",
                                          "mpi_neighbor_rebuild",
                                          "kamping_sparse", "kamping_grid"])
    def test_costs_increase_with_p(self, strategy):
        costs = [exchange_cost(strategy, self.STATS, p, CM)
                 for p in (16, 64, 256, 1024)]
        assert all(b >= a for a, b in zip(costs, costs[1:]))

    def test_volume_term_scales_with_bytes(self):
        small = LevelStats(1.0, 10.0, 4.0)
        large = LevelStats(1.0, 10_000.0, 4.0)
        for strategy in ("mpi", "kamping_grid", "kamping_sparse"):
            assert exchange_cost(strategy, large, 64, CM) \
                > exchange_cost(strategy, small, 64, CM)

    def test_grid_pays_triple_volume(self):
        stats = LevelStats(0.0, 10_000.0, 1.0)
        cm = CostModel(alpha=0.0, beta=1e-9, overhead=0.0)
        direct = exchange_cost("mpi", stats, 4, cm)
        grid = exchange_cost("kamping_grid", stats, 4, cm)
        assert grid == pytest.approx(6 * stats.cross_elems_per_rank * 8 * 1e-9)
        assert grid > direct

    def test_rebuild_penalty_linear_in_p(self):
        stats = LevelStats(0.0, 0.0, 0.0)
        delta = (exchange_cost("mpi_neighbor_rebuild", stats, 1024, CM)
                 - exchange_cost("mpi_neighbor", stats, 1024, CM))
        assert delta >= 1024 * COMM_CREATE_PER_RANK

    def test_bfs_time_sums_levels(self):
        w = workload("gnm", 64)
        total = bfs_time("mpi", w, CM)
        per_level = [exchange_cost("mpi", s, 64, CM) for s in w.levels]
        assert total > sum(per_level)  # plus compute and termination terms


class TestSamplesortModel:
    def test_zero_elements(self):
        for b in BINDINGS:
            assert samplesort_time(b, 64, 0, CM) >= 0

    def test_weak_scaling_monotone_in_p(self):
        for b in BINDINGS:
            t = [samplesort_time(b, p, 10**5, CM) for p in (16, 256, 4096)]
            assert t[0] <= t[1] <= t[2], b

    def test_free_model_leaves_compute_only(self):
        t = samplesort_time("MPI", 64, 10**5, FREE)
        assert t > 0  # local sorting work remains
        assert t == samplesort_time("KaMPIng", 64, 10**5, FREE)


class TestSweep:
    def test_points_are_dataclasses_with_sources(self):
        pts = samplesort_sweep("MPI", [2, 64], 1000, simulator_max_p=2)
        assert isinstance(pts[0], SweepPoint)
        assert pts[0].source == "simulated" and pts[1].source == "model"

    def test_bfs_sweep_runs_all_strategies_simulated(self):
        for strategy in ("mpi", "kamping"):
            pts = bfs_sweep("gnm", strategy, [2], n_per_rank=16,
                            avg_degree=4.0, simulator_max_p=2)
            assert pts[0].seconds > 0

    def test_custom_cost_model_flows_through(self):
        slow = CostModel(alpha=1.0, beta=0.0, overhead=0.0)
        fast = CostModel(alpha=1e-9, beta=0.0, overhead=0.0)
        t_slow = samplesort_sweep("MPI", [64], 1000, cost_model=slow,
                                  simulator_max_p=0)[0].seconds
        t_fast = samplesort_sweep("MPI", [64], 1000, cost_model=fast,
                                  simulator_max_p=0)[0].seconds
        assert t_slow > t_fast

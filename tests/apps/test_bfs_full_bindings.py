"""End-to-end BFS driven through each binding's exchange/termination code.

The Table-I BFS implementations are not just counted — here each binding's
exchange + termination pair drives a full level-synchronous BFS and must
produce the reference distances.
"""

import numpy as np
import pytest

from repro.apps.graphs import UNDEFINED, generate_rgg2d
from repro.apps.graphs.bfs import sequential_bfs_reference
from repro.apps.graphs.bfs_impls import BFS_IMPLS
from tests.conftest import runp


def _bfs_with_binding(raw, g, source, binding):
    exchange, is_empty, wrap = BFS_IMPLS[binding]
    comm = wrap(raw)
    dist = np.full(g.local_size, UNDEFINED, dtype=np.int64)
    frontier = [source] if g.is_local(source) else []
    level = 0
    while not is_empty(comm, frontier):
        buckets = {}
        for v in frontier:
            lv = g.to_local(int(v))
            if dist[lv] != UNDEFINED:
                continue
            dist[lv] = level
            for t in g.neighbors(int(v)):
                t = int(t)
                buckets.setdefault(g.owner(t), []).append(t)
        local_next = [v for v in buckets.pop(g.rank, [])
                      if dist[g.to_local(v)] == UNDEFINED]
        arrived = exchange(comm, buckets)
        frontier = local_next + [int(v) for v in np.asarray(arrived)]
        level += 1
    return dist


@pytest.mark.parametrize("binding", list(BFS_IMPLS))
def test_full_bfs_through_binding(binding):
    p = 4

    def main(raw):
        g = generate_rgg2d(48, 8.0, p, raw.rank, seed=23)
        return g, _bfs_with_binding(raw, g, 0, binding)

    res = runp(main, p)
    graphs = [v[0] for v in res.values]
    dists = np.concatenate([v[1] for v in res.values])
    edges = {}
    for g in graphs:
        for lv in range(g.local_size):
            v = g.first + lv
            edges.setdefault(v, []).extend(int(t) for t in g.neighbors(v))
    ref = sequential_bfs_reference(48 * p, edges, 0)
    assert np.array_equal(dists, ref), binding


def test_all_bindings_equal_virtual_time_except_mpl():
    """Fig. 10's overhead statement at the application level."""
    p = 4
    times = {}
    for binding in ("MPI", "KaMPIng", "RWTH-MPI", "MPL"):
        def main(raw, b=binding):
            g = generate_rgg2d(48, 8.0, p, raw.rank, seed=23)
            _bfs_with_binding(raw, g, 0, b)
            return raw.clock.now

        times[binding] = max(runp(main, p).values)
    assert times["KaMPIng"] == pytest.approx(times["MPI"], rel=0.02)
    assert times["RWTH-MPI"] == pytest.approx(times["MPI"], rel=0.02)
    assert times["MPL"] > times["MPI"]

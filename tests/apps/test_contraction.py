"""Graph contraction and the multilevel coarsening driver (§IV-B)."""

import numpy as np
import pytest

from repro.apps.graphs import generate_rgg2d
from repro.apps.graphs.contraction import contract, densify_labels, multilevel_coarsen
from repro.apps.graphs.graph import block_bounds, from_edge_list
from tests.conftest import runk


def _sequential_contract(edges, labels):
    """Reference: contract an edge set by a global label array."""
    used = sorted(set(labels))
    dense = {g: i for i, g in enumerate(used)}
    out = set()
    for u, v in edges:
        cu, cv = dense[labels[u]], dense[labels[v]]
        if cu != cv:
            out.add((cu, cv))
    return out, len(used)


def _collect_edges(graphs):
    edges = []
    for g in graphs:
        for lv in range(g.local_size):
            v = g.first + lv
            edges.extend((v, int(t)) for t in g.neighbors(v))
    return edges


class TestContract:
    @pytest.mark.parametrize("p", [1, 2, 4])
    def test_matches_sequential_reference(self, p):
        n_per = 8
        n = n_per * p
        # a ring graph, every vertex clustered with its pair (v // 2)
        def main(comm):
            first, last = block_bounds(n, p, comm.rank)
            src = np.repeat(np.arange(first, last), 2)
            tgt = np.empty_like(src)
            tgt[0::2] = (src[0::2] - 1) % n
            tgt[1::2] = (src[1::2] + 1) % n
            g = from_edge_list(n, p, comm.rank, src, tgt)
            labels = np.arange(first, last) // 2
            coarse, dense = contract(comm, g, labels)
            return coarse, dense

        res = runk(main, p)
        coarse_graphs = [v[0] for v in res.values]
        got_edges = set(_collect_edges(coarse_graphs))
        ring_edges = [(v, (v - 1) % n) for v in range(n)] + \
                     [(v, (v + 1) % n) for v in range(n)]
        expected, n_coarse = _sequential_contract(
            ring_edges, [v // 2 for v in range(n)]
        )
        assert got_edges == expected
        assert coarse_graphs[0].n_global == n_coarse == n // 2

    def test_self_loops_removed_and_parallel_edges_merged(self):
        def main(comm):
            # complete graph on 4 vertices, all in one cluster except vertex 3
            n = 4
            first, last = block_bounds(n, comm.size, comm.rank)
            src, tgt = [], []
            for v in range(first, last):
                for u in range(n):
                    if u != v:
                        src.append(v)
                        tgt.append(u)
            g = from_edge_list(n, comm.size, comm.rank,
                               np.array(src), np.array(tgt))
            labels = np.array([0 if v < 3 else 3
                               for v in range(first, last)])
            coarse, _ = contract(comm, g, labels)
            return coarse

        res = runk(main, 2)
        edges = set(_collect_edges(res.values))
        # two coarse vertices (0 and 1), one edge each way, no self loops
        assert edges == {(0, 1), (1, 0)}

    def test_densify_is_consistent_across_ranks(self):
        def main(comm):
            first, last = block_bounds(12, comm.size, comm.rank)
            g = from_edge_list(12, comm.size, comm.rank,
                               np.empty(0, dtype=np.int64),
                               np.empty(0, dtype=np.int64))
            labels = np.array([100 + (v % 3) for v in range(first, last)])
            dense, n_coarse, mapping = densify_labels(comm, g, labels)
            return n_coarse, mapping

        res = runk(main, 3)
        assert all(v == res.values[0] for v in res.values)
        assert res.values[0][0] == 3


class TestMultilevel:
    @pytest.mark.parametrize("p", [1, 4])
    def test_hierarchy_shrinks_monotonically(self, p):
        def main(comm):
            g = generate_rgg2d(64, 8.0, p, comm.rank, seed=3)
            levels = multilevel_coarsen(comm, g, max_cluster_size=8,
                                        threshold=16)
            return [lvl.graph.n_global for lvl in levels]

        res = runk(main, p)
        sizes = res.values[0]
        assert all(v == sizes for v in res.values)
        assert len(sizes) >= 1
        assert all(b < a for a, b in zip([64 * p] + sizes, sizes))

    def test_projection_maps_fine_to_coarse(self):
        def main(comm):
            g = generate_rgg2d(32, 8.0, comm.size, comm.rank, seed=3)
            levels = multilevel_coarsen(comm, g, max_cluster_size=8,
                                        threshold=8, max_levels=1)
            lvl = levels[0]
            return g.local_size, lvl.labels, lvl.graph.n_global

        res = runk(main, 4)
        for local_n, labels, n_coarse in res.values:
            assert len(labels) == local_n
            assert labels.min() >= 0 and labels.max() < n_coarse

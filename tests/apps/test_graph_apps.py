"""Graph applications: generators, BFS (Fig. 9/10), label propagation (§IV-B)."""

import numpy as np
import pytest

from repro.apps.graphs import (
    DistGraph,
    UNDEFINED,
    bfs,
    block_owner,
    generate_gnm,
    generate_rgg2d,
    generate_rhg,
)
from repro.apps.graphs.bfs import sequential_bfs_reference
from repro.apps.graphs.bfs_impls import BFS_IMPLS
from repro.apps.graphs.generators import symmetrize
from repro.apps.graphs.ghost_layer import GraphCommLayer
from repro.apps.graphs.graph import block_bounds, from_edge_list
from repro.apps.graphs.labelprop import (
    LabelPropagationKamping,
    LabelPropagationMPI,
    LabelPropagationSpecialized,
)
from repro.core import Communicator, extend
from repro.loc import logical_loc
from repro.plugins import GridAlltoall, SparseAlltoall
from tests.conftest import runk, runp

FullComm = extend(Communicator, GridAlltoall, SparseAlltoall)


class TestGraphSubstrate:
    def test_block_bounds_partition(self):
        covered = []
        for r in range(5):
            first, last = block_bounds(23, 5, r)
            covered.extend(range(first, last))
            assert block_owner(first, 23, 5) == r
            assert block_owner(last - 1, 23, 5) == r
        assert covered == list(range(23))

    def test_from_edge_list_csr(self):
        g = from_edge_list(8, 2, 0, np.array([0, 0, 3]), np.array([5, 1, 7]))
        assert g.local_size == 4
        assert sorted(g.neighbors(0).tolist()) == [1, 5]
        assert g.neighbors(3).tolist() == [7]
        assert g.neighbor_ranks() == (1,)

    def test_from_edge_list_rejects_foreign_sources(self):
        with pytest.raises(ValueError):
            from_edge_list(8, 2, 0, np.array([5]), np.array([0]))


class TestGenerators:
    def test_gnm_deterministic_and_local_sources(self):
        g1 = generate_gnm(32, 128, 4, 2, seed=9)
        g2 = generate_gnm(32, 128, 4, 2, seed=9)
        assert np.array_equal(g1.adjncy, g2.adjncy)
        assert g1.local_size == 32

    def test_rgg_symmetric_by_construction(self):
        graphs = [generate_rgg2d(32, 6.0, 4, r, seed=5) for r in range(4)]
        edges = set()
        for g in graphs:
            for lv in range(g.local_size):
                v = g.first + lv
                for t in g.neighbors(v):
                    edges.add((v, int(t)))
        assert all((t, v) in edges for v, t in edges)

    def test_rhg_has_hubs(self):
        graphs = [generate_rhg(64, 8.0, 4, r, seed=5) for r in range(4)]
        degrees = np.concatenate([np.diff(g.xadj) for g in graphs])
        assert degrees.max() > 4 * max(degrees.mean(), 1)  # heavy tail

    def test_rgg_locality(self):
        """RGG cross-edges only reach nearby cells."""
        p = 16
        graphs = [generate_rgg2d(32, 6.0, p, r, seed=5) for r in range(p)]
        partners = max(len(g.neighbor_ranks()) for g in graphs)
        assert partners <= 8

    def test_generator_p_invariance_rgg(self):
        """The same global graph regardless of who generates which part."""
        a = generate_rgg2d(32, 6.0, 4, 1, seed=5)
        b = generate_rgg2d(32, 6.0, 4, 1, seed=5)
        assert np.array_equal(a.xadj, b.xadj)

    def test_symmetrize_adds_reverse_edges(self):
        def main(comm):
            g = generate_gnm(16, 48, comm.size, comm.rank, seed=3)
            sym = symmetrize(comm, g)
            return sym

        graphs = runk(main, 4).values
        edges = set()
        for g in graphs:
            for lv in range(g.local_size):
                v = g.first + lv
                for t in g.neighbors(v):
                    edges.add((v, int(t)))
        assert all((t, v) in edges for v, t in edges)


def _gather_edges(graphs):
    edges = {}
    for g in graphs:
        for lv in range(g.local_size):
            v = g.first + lv
            edges.setdefault(v, []).extend(int(t) for t in g.neighbors(v))
    return edges


@pytest.mark.parametrize("family", ["gnm", "rgg", "rhg"])
@pytest.mark.parametrize("strategy", ["mpi", "kamping", "kamping_sparse",
                                      "kamping_grid", "mpi_neighbor",
                                      "mpi_neighbor_rebuild"])
def test_bfs_matches_sequential_reference(family, strategy):
    p = 4

    def main(comm):
        if family == "gnm":
            g = symmetrize(comm, generate_gnm(48, 160, p, comm.rank, seed=3))
        elif family == "rgg":
            g = generate_rgg2d(48, 8.0, p, comm.rank, seed=3)
        else:
            g = generate_rhg(48, 8.0, p, comm.rank, seed=3)
        return g, bfs(g, 0, comm, strategy=strategy)

    res = runk(main, p, comm_class=FullComm)
    graphs = [v[0] for v in res.values]
    dists = np.concatenate([v[1] for v in res.values])
    ref = sequential_bfs_reference(48 * p, _gather_edges(graphs), 0)
    assert np.array_equal(dists, ref)


def test_bfs_unreachable_vertices_stay_undefined():
    def main(comm):
        # two disconnected cliques of 2 vertices per rank, no cross edges
        first, last = block_bounds_pair = (comm.rank * 2, comm.rank * 2 + 2)
        sources = np.array([first, first + 1])
        targets = np.array([first + 1, first])
        g = from_edge_list(2 * comm.size, comm.size, comm.rank, sources, targets)
        return bfs(g, 0, comm, strategy="kamping")

    res = runk(main, 3)
    dists = np.concatenate(res.values)
    assert dists[0] == 0 and dists[1] == 1
    assert (dists[2:] == UNDEFINED).all()


@pytest.mark.parametrize("binding", list(BFS_IMPLS))
def test_bfs_impls_exchange_and_termination(binding):
    exchange, is_empty, wrap = BFS_IMPLS[binding]

    def main(raw):
        comm = wrap(raw)
        nested = {(raw.rank + 1) % raw.size: [raw.rank, raw.rank]}
        arrived = exchange(comm, nested)
        empty_false = is_empty(comm, [1])
        empty_true = is_empty(comm, [])
        return sorted(np.asarray(arrived).tolist()), empty_false, empty_true

    res = runp(main, 4)
    for r in range(4):
        arrived, e_false, e_true = res.values[r]
        assert arrived == [(r - 1) % 4] * 2
        assert e_false is False and e_true is True


def test_bfs_loc_table_ordering():
    loc = {b: logical_loc(fns[0]) + logical_loc(fns[1])
           for b, fns in BFS_IMPLS.items()}
    assert loc["KaMPIng"] == min(loc.values())
    assert loc["MPL"] == max(loc.values())
    assert loc["KaMPIng"] < loc["Boost.MPI"] < loc["RWTH-MPI"] < loc["MPI"]


class TestLabelPropagation:
    @staticmethod
    def _run(p, variant, rounds=3):
        def main(comm):
            g = generate_rgg2d(48, 8.0, p, comm.rank, seed=11)
            if variant == "mpi":
                lp = LabelPropagationMPI(g, 16, comm.raw)
            elif variant == "kamping":
                lp = LabelPropagationKamping(g, 16, comm)
            else:
                lp = LabelPropagationSpecialized(g, 16, GraphCommLayer(comm.raw))
            labels = lp.run(rounds)
            return labels, lp.cluster_sizes

        res = runk(main, p)
        labels = np.concatenate([v[0] for v in res.values])
        return labels, res.values[0][1], res

    @pytest.mark.parametrize("p", [1, 4])
    def test_three_variants_identical(self, p):
        results = {v: self._run(p, v)[0] for v in ("mpi", "kamping",
                                                   "specialized")}
        assert np.array_equal(results["mpi"], results["kamping"])
        assert np.array_equal(results["mpi"], results["specialized"])

    def test_cluster_sizes_consistent_with_labels(self):
        labels, sizes, _ = self._run(4, "kamping")
        counted = np.bincount(labels, minlength=len(sizes))
        assert np.array_equal(counted, sizes)

    def test_size_constraint_approximately_respected(self):
        """Bounded transient overshoot (stale sizes), like real async LP."""
        labels, _, _ = self._run(8, "mpi")
        counted = np.bincount(labels)
        assert counted.max() <= 16 + 8  # constraint + one joiner per rank

    def test_clustering_actually_coarsens(self):
        labels, _, _ = self._run(4, "kamping")
        assert len(np.unique(labels)) < len(labels) / 2

    def test_same_runtimes_for_all_variants(self):
        """§IV-B: 'We observed the same running times for all variants.'"""
        times = {}
        for v in ("mpi", "kamping", "specialized"):
            _, _, res = self._run(4, v)
            times[v] = res.max_time
        base = times["mpi"]
        assert times["kamping"] == pytest.approx(base, rel=0.05)
        assert times["specialized"] == pytest.approx(base, rel=0.05)

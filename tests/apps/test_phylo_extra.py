"""Additional phylogenetics coverage: tree invariants, Fitch properties."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.phylo import fitch_score, random_alignment, random_tree
from repro.apps.phylo.comm_layers import BinaryStream
from repro.apps.phylo.tree import PhyloTree


class TestTreeInvariants:
    @settings(max_examples=25, deadline=None)
    @given(
        num_taxa=st.integers(2, 20),
        seed=st.integers(0, 2**31),
    )
    def test_random_trees_always_valid(self, num_taxa, seed):
        tree = random_tree(num_taxa, seed=seed)
        tree.validate()
        assert len(tree.children) == num_taxa - 1
        assert tree.root == 2 * num_taxa - 2

    @settings(max_examples=20, deadline=None)
    @given(
        num_taxa=st.integers(3, 12),
        seed=st.integers(0, 2**31),
        a=st.integers(0, 11),
        b=st.integers(0, 11),
    )
    def test_leaf_swap_preserves_validity(self, num_taxa, seed, a, b):
        tree = random_tree(num_taxa, seed=seed)
        a, b = a % num_taxa, b % num_taxa
        swapped = tree.swap_leaves(a, b)
        swapped.validate()
        # double swap is the identity
        assert swapped.swap_leaves(a, b).children == tree.children

    def test_swap_rejects_internal_nodes(self):
        tree = random_tree(5, seed=1)
        with pytest.raises(ValueError):
            tree.swap_leaves(0, tree.root)

    def test_invalid_trees_rejected(self):
        with pytest.raises(ValueError):
            PhyloTree(3, [(0, 1), (0, 2)]).validate()  # node 0 twice
        with pytest.raises(ValueError):
            PhyloTree(2, [(0, 2)]).validate()  # child after parent


class TestFitchProperties:
    def test_score_invariant_under_leaf_relabeling_of_identical_rows(self):
        aln = random_alignment(8, 100, seed=3)
        tree = random_tree(8, seed=3)
        base = fitch_score(tree, aln)
        # swapping two identical rows cannot change the score
        aln2 = aln.copy()
        aln2[[0, 1]] = aln2[[0, 1]]
        assert fitch_score(tree, aln2) == base

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 2**31))
    def test_score_bounds(self, seed):
        num_taxa, num_sites = 6, 40
        aln = random_alignment(num_taxa, num_sites, seed=seed)
        tree = random_tree(num_taxa, seed=seed)
        score = fitch_score(tree, aln)
        # at most one mutation per internal node per site
        assert 0 <= score <= (num_taxa - 1) * num_sites

    def test_score_additive_over_site_blocks(self):
        """The distribution property §IV-C relies on."""
        aln = random_alignment(9, 120, seed=8)
        tree = random_tree(9, seed=8)
        whole = fitch_score(tree, aln)
        parts = sum(fitch_score(tree, aln[:, lo:lo + 30])
                    for lo in range(0, 120, 30))
        assert whole == parts

    def test_empty_site_block(self):
        tree = random_tree(4, seed=1)
        assert fitch_score(tree, np.empty((4, 0), dtype=np.uint8)) == 0


class TestBinaryStream:
    def test_roundtrip(self):
        obj = {"tree": [(0, 1), (2, 3)], "score": 42}
        assert BinaryStream.deserialize(BinaryStream.serialize(obj)) == obj

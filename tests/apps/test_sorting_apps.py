"""Table I / Fig. 7 / Fig. 8 applications: vector allgather and sample sort
in all five binding styles."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.sorting import SAMPLE_SORT_IMPLS, VECTOR_ALLGATHER_IMPLS, sort_checked
from repro.apps.sorting.common import is_globally_sorted
from repro.loc import loc_table, logical_loc
from tests.conftest import runp

BINDINGS = list(VECTOR_ALLGATHER_IMPLS)


@pytest.mark.parametrize("binding", BINDINGS)
@pytest.mark.parametrize("p", [1, 3, 4, 8])
def test_vector_allgather_all_bindings(binding, p):
    impl, wrap = VECTOR_ALLGATHER_IMPLS[binding]

    def main(raw):
        v = np.arange(raw.rank + 1, dtype=np.int64)
        return impl(wrap(raw), v).tolist()

    expected = [x for i in range(p) for x in range(i + 1)]
    assert all(v == expected for v in runp(main, p).values)


@pytest.mark.parametrize("binding", BINDINGS)
@pytest.mark.parametrize("p", [1, 4, 7])
def test_sample_sort_all_bindings(binding, p):
    def main(raw):
        rng = np.random.default_rng(raw.rank + 17)
        data = rng.integers(0, 10**9, size=1500)
        return sort_checked(raw, data, binding)

    blocks = runp(main, p).values
    assert is_globally_sorted(blocks)
    assert sum(len(b) for b in blocks) == 1500 * p


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 2**31), p=st.integers(1, 5))
def test_kamping_sample_sort_property(seed, p):
    rng = np.random.default_rng(seed)
    data = rng.integers(-10**6, 10**6, size=(p, 400))

    def main(raw):
        return sort_checked(raw, data[raw.rank], "KaMPIng")

    blocks = runp(main, p).values
    merged = np.concatenate(blocks)
    assert np.array_equal(merged, np.sort(data.reshape(-1)))


def test_all_bindings_produce_identical_sorted_output():
    def main(raw, binding):
        rng = np.random.default_rng(raw.rank)
        data = rng.integers(0, 10**6, size=800)
        return sort_checked(raw, data, binding)

    merged = {}
    for binding in BINDINGS:
        blocks = runp(main, 4, args=(binding,)).values
        merged[binding] = np.concatenate(blocks)
    reference = merged["MPI"]
    for binding in BINDINGS:
        assert np.array_equal(merged[binding], reference), binding


class TestTable1Loc:
    """The qualitative Table I result: KaMPIng shortest, MPL longest."""

    def test_vector_allgather_ordering(self):
        loc = {b: logical_loc(impl)
               for b, (impl, _) in VECTOR_ALLGATHER_IMPLS.items()}
        assert loc["KaMPIng"] == 1  # the paper's one-liner
        assert loc["KaMPIng"] < loc["Boost.MPI"] <= loc["MPL"] < loc["MPI"]
        assert loc["KaMPIng"] < loc["RWTH-MPI"] <= loc["MPL"]

    def test_sample_sort_ordering(self):
        loc = {b: logical_loc(impl)
               for b, (impl, _) in SAMPLE_SORT_IMPLS.items()}
        assert loc["KaMPIng"] < loc["RWTH-MPI"] < loc["MPI"] <= loc["MPL"]
        assert loc["MPL"] == max(loc.values())  # layouts are the most verbose

    def test_loc_table_shape(self):
        table = loc_table({
            "vector allgather": {b: impl for b, (impl, _) in
                                 VECTOR_ALLGATHER_IMPLS.items()},
        })
        assert set(table["vector allgather"]) == set(BINDINGS)


def test_kamping_no_overhead_vs_mpi_virtual_time():
    """Fig. 8's core claim: KaMPIng's simulated time ≈ plain MPI's."""
    def main(raw, binding):
        rng = np.random.default_rng(raw.rank)
        data = rng.integers(0, 10**9, size=4000)
        sort_checked(raw, data, binding)
        return raw.clock.now

    t = {}
    for binding in ("MPI", "KaMPIng", "MPL"):
        t[binding] = max(runp(main, 8, args=(binding,)).values)
    assert t["KaMPIng"] == pytest.approx(t["MPI"], rel=0.02)
    assert t["MPL"] > t["MPI"]  # the alltoallw path costs extra

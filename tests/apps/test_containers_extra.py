"""More DistributedArray coverage: chained pipelines, offsets, large flows."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.containers import DistributedArray
from repro.core import Communicator, extend
from repro.mpi import SUM
from repro.plugins import SparseAlltoall
from tests.conftest import runk


def test_pipeline_sort_then_rebalance_then_collect():
    def main(comm):
        rng = np.random.default_rng(comm.rank + 5)
        da = DistributedArray.from_local(comm, rng.integers(0, 100, 50))
        out = da.sort().rebalance()
        return out.local, out.collect(root=0)

    res = runk(main, 4)
    sizes = [len(v[0]) for v in res.values]
    assert max(sizes) - min(sizes) <= 1
    collected = res.values[0][1]
    assert (np.diff(collected) >= 0).all()
    assert len(collected) == 200


def test_generate_scatter_equivalence():
    data = np.arange(41, dtype=np.int64) * 3

    def main(comm):
        generated = DistributedArray.generate(comm, 41, lambda i: i * 3)
        scattered = DistributedArray.scatter_from(
            comm, data if comm.rank == 0 else None
        )
        return np.array_equal(generated.local, scattered.local)

    assert all(runk(main, 5).values)


def test_map_preserves_distribution():
    def main(comm):
        da = DistributedArray.generate(comm, 30, lambda i: i)
        mapped = da.map(lambda x: -x)
        return da.local_size == mapped.local_size, mapped.global_offset() \
            == da.global_offset()

    assert all(all(v) for v in runk(main, 4).values)


def test_filter_then_rebalance_after_skew():
    def main(comm):
        da = DistributedArray.generate(comm, 64, lambda i: i)
        # keep only small values: they all live on the first ranks
        skewed = da.filter(lambda x: x < 16)
        balanced = skewed.rebalance()
        return skewed.local_size, balanced.local_size, balanced.allcollect().tolist()

    res = runk(main, 4)
    balanced_sizes = [v[1] for v in res.values]
    assert max(balanced_sizes) - min(balanced_sizes) <= 1
    assert res.values[0][2] == list(range(16))


@settings(max_examples=10, deadline=None)
@given(
    n=st.integers(1, 80),
    p=st.integers(1, 5),
    seed=st.integers(0, 2**31),
)
def test_sum_matches_numpy_property(n, p, seed):
    rng = np.random.default_rng(seed)
    data = rng.integers(-1000, 1000, size=n)

    def main(comm):
        da = DistributedArray.scatter_from(
            comm, data if comm.rank == 0 else None
        )
        return da.sum()

    assert runk(main, p).values[0] == int(data.sum())


def test_empty_global_array():
    def main(comm):
        da = DistributedArray.generate(comm, 0, lambda i: i)
        return da.size(), da.sum(), len(da.allcollect())

    assert runk(main, 3).values[0] == (0, 0, 0)

"""Suffix-array algorithms on realistic corpora (Markov / repetitive / DNA)."""

import numpy as np
import pytest

from repro.apps.suffix import pdc3, prefix_doubling_kamping, suffix_array_sequential
from repro.apps.suffix.common import is_suffix_array, local_block
from repro.apps.suffix.corpora import CORPORA, dna_text, markov_text, repetitive_text
from tests.conftest import runk


class TestGenerators:
    def test_markov_alphabet_and_determinism(self):
        t1 = markov_text(300, sigma=6, seed=4)
        t2 = markov_text(300, sigma=6, seed=4)
        assert np.array_equal(t1, t2)
        assert t1.min() >= 1 and t1.max() <= 6

    def test_markov_is_skewed(self):
        """Bigram skew: the most frequent successor dominates."""
        t = markov_text(3000, sigma=6, skew=6.0, seed=4)
        pairs = {}
        for a, b in zip(t[:-1], t[1:]):
            pairs.setdefault(int(a), []).append(int(b))
        top_share = np.mean([
            max(np.bincount(succ)) / len(succ) for succ in pairs.values()
        ])
        assert top_share > 0.4

    def test_repetitive_is_fibonacci_like(self):
        t = repetitive_text(13)
        assert t.tolist() == [1, 2, 1, 1, 2, 1, 2, 1, 1, 2, 1, 1, 2]

    def test_dna_contains_motifs(self):
        t = dna_text(500, motif_len=10, motif_rate=0.5, seed=2)
        assert t.min() >= 1 and t.max() <= 4
        # the motif appears more than chance would allow
        text = "".join(map(str, t.tolist()))
        motif = None
        for i in range(0, len(text) - 10):
            cand = text[i: i + 10]
            if text.count(cand) >= 3:
                motif = cand
                break
        assert motif is not None


@pytest.mark.parametrize("corpus", list(CORPORA))
@pytest.mark.parametrize("algo", ["prefix_doubling", "dc3"])
def test_suffix_arrays_on_corpora(corpus, algo):
    text = CORPORA[corpus](220, seed=9) if corpus != "repetitive" \
        else repetitive_text(220)
    ref = suffix_array_sequential(text)
    assert is_suffix_array(text, ref)

    def main(comm):
        blk = local_block(text, comm.size, comm.rank)
        if algo == "prefix_doubling":
            return prefix_doubling_kamping(comm, blk, len(text))
        return pdc3(comm, blk, len(text))

    res = runk(main, 4)
    sa = np.concatenate(list(res.values))
    assert np.array_equal(sa, ref), (corpus, algo)


def test_repetitive_needs_more_doubling_rounds():
    """The adversarial corpus takes more rounds than random text."""
    from repro.mpi import snapshot

    def rounds_for(text):
        def main(comm):
            before = dict(comm.raw.machine.profile[comm.raw.world_rank])
            prefix_doubling_kamping(comm, local_block(text, comm.size, comm.rank),
                                    len(text))
            after = comm.raw.machine.profile[comm.raw.world_rank]
            return after["alltoallv"] - before.get("alltoallv", 0)

        return runk(main, 2).values[0]

    from repro.apps.suffix import random_text

    random_rounds = rounds_for(random_text(200, sigma=4, seed=1))
    repetitive_rounds = rounds_for(repetitive_text(200))
    assert repetitive_rounds > random_rounds

"""Distributed containers (§VI extension): DistributedArray and MapReduce-lite."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.containers import DistributedArray, reduce_by_key, word_count
from repro.containers.mapreduce import collect_to_root, histogram
from repro.core import Communicator, extend
from repro.mpi import MAX, MIN, PROD, SUM
from repro.plugins import SparseAlltoall
from tests.conftest import runk

SparseComm = extend(Communicator, SparseAlltoall)


class TestDistributedArray:
    def test_generate_covers_range(self):
        def main(comm):
            da = DistributedArray.generate(comm, 100, lambda i: i * 2)
            return da.allcollect().tolist()

        res = runk(main, 4)
        assert res.values[0] == [2 * i for i in range(100)]

    def test_scatter_from_root_and_collect(self):
        data = np.arange(37, dtype=np.int64)

        def main(comm):
            da = DistributedArray.scatter_from(
                comm, data if comm.rank == 0 else None
            )
            back = da.collect(root=0)
            return back.tolist() if back is not None else None, da.local_size

        res = runk(main, 5)
        assert res.values[0][0] == list(range(37))
        sizes = [v[1] for v in res.values]
        assert sum(sizes) == 37 and max(sizes) - min(sizes) <= 1

    def test_map_filter_reduce_pipeline(self):
        def main(comm):
            da = DistributedArray.generate(comm, 1000, lambda i: i)
            return (da.map(lambda x: x + 1)
                      .filter(lambda x: x % 2 == 0)
                      .sum())

        expected = sum(i + 1 for i in range(1000) if (i + 1) % 2 == 0)
        assert all(v == expected for v in runk(main, 4).values)

    def test_min_max_prod(self):
        def main(comm):
            da = DistributedArray.generate(comm, 12, lambda i: i + 1)
            return da.min(), da.max(), da.reduce(PROD)

        import math
        assert runk(main, 3).values[0] == (1, 12, math.factorial(12))

    def test_reduce_with_empty_block_uses_identity(self):
        def main(comm):
            local = np.arange(5) if comm.rank == 0 else np.empty(0, dtype=np.int64)
            return DistributedArray.from_local(comm, local).sum()

        assert all(v == 10 for v in runk(main, 3).values)

    def test_reduce_empty_without_identity_raises(self):
        def main(comm):
            local = np.empty(0, dtype=np.float64)
            DistributedArray.from_local(comm, local).min()

        with pytest.raises(RuntimeError, match="identity"):
            runk(main, 2)

    def test_size_and_offset(self):
        def main(comm):
            da = DistributedArray.from_local(
                comm, np.arange(comm.rank + 1)
            )
            return da.size(), da.global_offset()

        res = runk(main, 4)
        assert [v for v in res.values] == [(10, 0), (10, 1), (10, 3), (10, 6)]

    def test_sort_global_order(self):
        def main(comm):
            rng = np.random.default_rng(comm.rank)
            da = DistributedArray.from_local(comm, rng.integers(0, 999, 100))
            return da.sort().local

        blocks = runk(main, 4).values
        merged = np.concatenate(blocks)
        assert (np.diff(merged) >= 0).all()

    def test_rebalance_preserves_order_and_balances(self):
        def main(comm):
            # wildly imbalanced: rank r holds r^2 elements
            n = comm.rank ** 2
            offset = sum(i ** 2 for i in range(comm.rank))
            da = DistributedArray.from_local(
                comm, np.arange(offset, offset + n, dtype=np.int64)
            )
            rb = da.rebalance()
            return rb.local, rb.local_size

        res = runk(main, 5)
        blocks = [v[0] for v in res.values]
        sizes = [v[1] for v in res.values]
        total = sum(i ** 2 for i in range(5))
        assert np.concatenate(blocks).tolist() == list(range(total))
        assert max(sizes) - min(sizes) <= 1

    def test_non_1d_rejected(self):
        def main(comm):
            DistributedArray.from_local(comm, np.zeros((2, 2)))

        with pytest.raises(RuntimeError, match="1-D"):
            runk(main, 1)


class TestReduceByKey:
    def test_word_count_matches_sequential(self):
        words = ("a b c a b a " * 10).split()

        def main(comm):
            per = len(words) // comm.size
            lo = comm.rank * per
            hi = lo + per if comm.rank < comm.size - 1 else len(words)
            counts = word_count(comm, words[lo:hi])
            return collect_to_root(comm, counts)

        res = runk(main, 4, comm_class=SparseComm)
        assert res.values[0] == {"a": 30, "b": 20, "c": 10}

    def test_keys_partitioned_disjointly(self):
        def main(comm):
            part = histogram(comm, [comm.rank % 3, "x", (1, 2)])
            return sorted(map(repr, part.keys()))

        res = runk(main, 4, comm_class=SparseComm)
        seen = [k for v in res.values for k in v]
        assert len(seen) == len(set(seen))  # every key on exactly one rank

    def test_fallback_without_sparse_plugin(self):
        def main(comm):
            return collect_to_root(
                comm, reduce_by_key(comm, [("k", comm.rank)], lambda a, b: a + b)
            )

        res = runk(main, 4)  # plain Communicator: alltoall fallback
        assert res.values[0] == {"k": 6}

    def test_custom_combiner(self):
        def main(comm):
            pairs = [("max", comm.rank), ("max", comm.rank * 10)]
            return collect_to_root(
                comm, reduce_by_key(comm, pairs, max)
            )

        res = runk(main, 4, comm_class=SparseComm)
        assert res.values[0] == {"max": 30}

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**31), p=st.integers(1, 5))
    def test_reduce_by_key_property(self, seed, p):
        rng = np.random.default_rng(seed)
        all_pairs = [(int(k), int(v))
                     for k, v in zip(rng.integers(0, 10, 50),
                                     rng.integers(-100, 100, 50))]
        expected: dict = {}
        for k, v in all_pairs:
            expected[k] = expected.get(k, 0) + v

        def main(comm):
            per = len(all_pairs) // comm.size
            lo = comm.rank * per
            hi = lo + per if comm.rank < comm.size - 1 else len(all_pairs)
            part = reduce_by_key(comm, all_pairs[lo:hi], lambda a, b: a + b)
            return collect_to_root(comm, part)

        res = runk(main, p, comm_class=SparseComm)
        assert res.values[0] == expected

"""Suffix array applications (§IV-A) and the RAxML-NG analog (§IV-C)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.phylo import (
    HandRolledParallelContext,
    KampingParallelContext,
    fitch_score,
    local_site_block,
    parsimony_search,
    random_alignment,
    random_tree,
)
from repro.apps.phylo.tree import PhyloTree
from repro.apps.suffix import (
    pdc3,
    prefix_doubling_kamping,
    prefix_doubling_mpi,
    random_text,
    suffix_array_sequential,
)
from repro.apps.suffix.common import is_suffix_array, local_block
from repro.loc import logical_loc
from tests.conftest import runk


# ---------------------------------------------------------------------------
# suffix arrays
# ---------------------------------------------------------------------------

class TestSequentialReference:
    def test_known_example(self):
        # banana -> suffixes sorted: a, ana, anana, banana, na, nana
        text = np.array([2, 1, 14, 1, 14, 1])  # b=2 a=1 n=14
        sa = suffix_array_sequential(text)
        assert sa.tolist() == [5, 3, 1, 0, 4, 2]

    def test_empty_and_single(self):
        assert suffix_array_sequential(np.empty(0)).tolist() == []
        assert suffix_array_sequential(np.array([3])).tolist() == [0]

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(1, 4), min_size=1, max_size=60))
    def test_is_valid_suffix_array_property(self, chars):
        text = np.array(chars, dtype=np.int64)
        assert is_suffix_array(text, suffix_array_sequential(text))


def _run_variant(text, p, variant):
    def main(comm):
        blk = local_block(text, p, comm.rank)
        if variant == "kamping":
            return prefix_doubling_kamping(comm, blk, len(text))
        if variant == "mpi":
            return prefix_doubling_mpi(comm.raw, blk, len(text))
        return pdc3(comm, blk, len(text))

    res = runk(main, p)
    return np.concatenate(list(res.values))


@pytest.mark.parametrize("variant", ["kamping", "mpi", "dc3"])
@pytest.mark.parametrize("p", [1, 3, 4, 8])
def test_distributed_suffix_array_matches_reference(variant, p):
    text = random_text(240, sigma=3, seed=13)
    ref = suffix_array_sequential(text)
    assert np.array_equal(_run_variant(text, p, variant), ref)


@pytest.mark.parametrize("variant", ["kamping", "mpi", "dc3"])
def test_unary_alphabet(variant):
    text = np.ones(50, dtype=np.int64)
    ref = suffix_array_sequential(text)
    assert np.array_equal(_run_variant(text, 4, variant), ref)


@pytest.mark.parametrize("n", [97, 98, 99])  # all residues of n mod 3
def test_dc3_all_length_residues(n):
    text = random_text(n, sigma=2, seed=n)
    ref = suffix_array_sequential(text)
    assert np.array_equal(_run_variant(text, 4, "dc3"), ref)


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 2**31),
    sigma=st.integers(1, 5),
    p=st.integers(1, 5),
)
def test_prefix_doubling_property(seed, sigma, p):
    text = random_text(130, sigma=sigma, seed=seed)
    ref = suffix_array_sequential(text)
    assert np.array_equal(_run_variant(text, p, "kamping"), ref)


def test_kamping_variant_shorter_than_mpi_variant():
    """§IV-A: the plain-MPI prefix doubling needs substantially more code."""
    import repro.apps.suffix.prefix_doubling as pd

    kamping_loc = (logical_loc(pd.prefix_doubling_kamping)
                   + logical_loc(pd._fetch_shifted_kamping)
                   + logical_loc(pd._send_back_kamping))
    mpi_loc = (logical_loc(pd.prefix_doubling_mpi)
               + logical_loc(pd._exchange_pairs_mpi)
               + logical_loc(pd._sample_sort_mpi))
    assert kamping_loc < mpi_loc


# ---------------------------------------------------------------------------
# phylo
# ---------------------------------------------------------------------------

class TestPhyloSubstrate:
    def test_random_tree_valid(self):
        for seed in range(5):
            random_tree(8, seed=seed).validate()

    def test_swap_leaves(self):
        tree = random_tree(6, seed=1)
        swapped = tree.swap_leaves(0, 3)
        swapped.validate()
        assert swapped.children != tree.children or True

    def test_tree_dict_roundtrip(self):
        tree = random_tree(7, seed=2)
        assert PhyloTree.from_dict(tree.to_dict()).children == tree.children

    def test_fitch_score_zero_for_identical_rows(self):
        aln = np.full((5, 20), 4, dtype=np.uint8)
        assert fitch_score(random_tree(5, seed=1), aln) == 0

    def test_fitch_score_counts_mutations(self):
        # two taxa, disjoint states at every site => 1 mutation per site
        aln = np.array([[1] * 6, [2] * 6], dtype=np.uint8)
        tree = PhyloTree(2, [(0, 1)])
        assert fitch_score(tree, aln) == 6

    def test_fitch_taxa_mismatch(self):
        with pytest.raises(ValueError):
            fitch_score(random_tree(4, seed=1), np.ones((5, 3), dtype=np.uint8))


class TestDistributedParsimony:
    ALN = random_alignment(10, 180, seed=6)

    def test_distributed_score_equals_sequential(self):
        tree = random_tree(10, seed=6)
        seq = fitch_score(tree, self.ALN)

        def main(comm):
            sites = local_site_block(self.ALN, comm.size, comm.rank)
            ctx = KampingParallelContext(comm)
            return ctx.reduce_score(fitch_score(tree, sites))

        for p in (1, 3, 8):
            assert runk(main, p).values[0] == seq

    @pytest.mark.parametrize("p", [1, 4])
    def test_both_layers_identical_results(self, p):
        def main(comm, variant):
            sites = local_site_block(self.ALN, comm.size, comm.rank)
            ctx = (HandRolledParallelContext(comm.raw) if variant == "before"
                   else KampingParallelContext(comm))
            res = parsimony_search(ctx, sites, num_taxa=10, iterations=25,
                                   seed=3)
            return res.best_score, res.accepted_moves

        before = runk(main, p, args=("before",)).values
        after = runk(main, p, args=("after",)).values
        assert before == after
        assert all(v == before[0] for v in before)

    def test_search_improves_score(self):
        def main(comm):
            sites = local_site_block(self.ALN, comm.size, comm.rank)
            ctx = KampingParallelContext(comm)
            tree = random_tree(10, seed=3)
            start = ctx.reduce_score(fitch_score(tree, sites))
            res = parsimony_search(ctx, sites, num_taxa=10, iterations=60,
                                   seed=3)
            return start, res.best_score

        start, best = runk(main, 4).values[0]
        assert best <= start

    def test_kamping_layer_issues_fewer_raw_calls(self):
        """One serialized bcast replaces the hand-rolled two-step broadcast."""
        def main(comm, variant):
            sites = local_site_block(self.ALN, comm.size, comm.rank)
            ctx = (HandRolledParallelContext(comm.raw) if variant == "before"
                   else KampingParallelContext(comm))
            res = parsimony_search(ctx, sites, num_taxa=10, iterations=20,
                                   seed=3)
            return res.mpi_calls_issued

        before = runk(main, 4, args=("before",)).values[0]
        after = runk(main, 4, args=("after",)).values[0]
        assert after < before

    def test_no_measurable_overhead_in_virtual_time(self):
        """§IV-C: replacing the layer does not slow the application down."""
        def main(comm, variant):
            sites = local_site_block(self.ALN, comm.size, comm.rank)
            ctx = (HandRolledParallelContext(comm.raw) if variant == "before"
                   else KampingParallelContext(comm))
            parsimony_search(ctx, sites, num_taxa=10, iterations=40, seed=3)
            return None

        t_before = runk(main, 4, args=("before",)).max_time
        t_after = runk(main, 4, args=("after",)).max_time
        assert t_after <= t_before * 1.05

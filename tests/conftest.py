"""Shared test helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Communicator
from repro.mpi import FREE, CostModel, RunResult, run_mpi
from repro.core.runner import run as run_kamping

#: rank counts exercised by most correctness tests (includes non-powers of 2)
SMALL_P = (1, 2, 3, 4, 7, 8)


def runp(fn, p, *, args=(), cost_model=None, deadline=60.0) -> RunResult:
    """Run ``fn(raw_comm, *args)`` on ``p`` ranks (raw runtime)."""
    return run_mpi(fn, p, args=args, cost_model=cost_model, deadline=deadline)


def runk(fn, p, *, args=(), cost_model=None, comm_class=Communicator,
         deadline=60.0) -> RunResult:
    """Run ``fn(kamping_comm, *args)`` on ``p`` ranks."""
    return run_kamping(fn, p, args=args, cost_model=cost_model,
                       comm_class=comm_class, deadline=deadline)


@pytest.fixture
def rng():
    return np.random.default_rng(0xBEEF)

"""Shared test helpers, the per-test watchdog, and the fuzz-seed plugin.

Every test runs under a watchdog (default 120 s, override with
``@pytest.mark.timeout(seconds)`` or the ``REPRO_TEST_TIMEOUT`` env var):
the test body executes in a worker thread, and if it does not finish in
time the test *fails* with a diagnostic instead of hanging CI — the failure
mode of a deadlocked simulated rank that slips past ``run_mpi``'s own
deadline.  ``timeout(0)`` disables the watchdog for one test.

Tests marked ``@pytest.mark.fuzz(seeds=N)`` that take a ``fuzz_seed``
argument are rerun across N schedule-fuzzer seeds (default 16).  Setting
``REPRO_FUZZ_SEED`` replays exactly one seed — the deterministic-repro
workflow: a CI matrix scans the seed range, a failure is reproduced locally
from its seed alone (see DESIGN.md, MPIsan).
"""

from __future__ import annotations

import os
import threading

import numpy as np
import pytest

from repro.core import Communicator
from repro.mpi import FREE, CostModel, RunResult, run_mpi
from repro.core.runner import run as run_kamping

#: default per-test watchdog, generous enough for the slow (deadline) tests
DEFAULT_TEST_TIMEOUT = float(os.environ.get("REPRO_TEST_TIMEOUT", "120"))


@pytest.hookimpl(tryfirst=True)
def pytest_pyfunc_call(pyfuncitem):
    marker = pyfuncitem.get_closest_marker("timeout")
    limit = (float(marker.args[0]) if marker is not None and marker.args
             else DEFAULT_TEST_TIMEOUT)
    if limit <= 0:
        return None  # watchdog disabled: run in-process as usual
    testfunction = pyfuncitem.obj
    kwargs = {name: pyfuncitem.funcargs[name]
              for name in pyfuncitem._fixtureinfo.argnames}
    outcome: dict = {}

    def call():
        try:
            outcome["result"] = testfunction(**kwargs)
        except BaseException as exc:  # noqa: BLE001 - re-raised in the runner
            outcome["error"] = exc

    runner = threading.Thread(target=call, daemon=True,
                              name=f"test:{pyfuncitem.name}")
    runner.start()
    runner.join(limit)
    if runner.is_alive():
        pytest.fail(
            f"test exceeded the {limit:.0f}s watchdog — a simulated rank is "
            f"probably deadlocked (raise via @pytest.mark.timeout or "
            f"REPRO_TEST_TIMEOUT if the test is legitimately slow)",
            pytrace=False,
        )
    if "error" in outcome:
        raise outcome["error"]
    return True

def pytest_generate_tests(metafunc):
    """Parametrize ``fuzz_seed`` arguments across the fuzz-marker seed range."""
    if "fuzz_seed" not in metafunc.fixturenames:
        return
    marker = metafunc.definition.get_closest_marker("fuzz")
    count = int(marker.kwargs.get("seeds", 16)) if marker is not None else 4
    pinned = os.environ.get("REPRO_FUZZ_SEED", "").strip()
    seeds = [int(pinned)] if pinned else list(range(count))
    metafunc.parametrize("fuzz_seed", seeds)


#: rank counts exercised by most correctness tests (includes non-powers of 2)
SMALL_P = (1, 2, 3, 4, 7, 8)


def runp(fn, p, *, args=(), cost_model=None, deadline=60.0, **kwargs) -> RunResult:
    """Run ``fn(raw_comm, *args)`` on ``p`` ranks (raw runtime).

    Extra keyword arguments (``trace``, ``engine``, ``sanitize``,
    ``fuzz_seed``) pass through to :func:`repro.mpi.run_mpi`.
    """
    return run_mpi(fn, p, args=args, cost_model=cost_model, deadline=deadline,
                   **kwargs)


def runk(fn, p, *, args=(), cost_model=None, comm_class=Communicator,
         deadline=60.0, **kwargs) -> RunResult:
    """Run ``fn(kamping_comm, *args)`` on ``p`` ranks."""
    return run_kamping(fn, p, args=args, cost_model=cost_model,
                       comm_class=comm_class, deadline=deadline, **kwargs)


@pytest.fixture
def rng():
    return np.random.default_rng(0xBEEF)


@pytest.fixture
def lint_clean():
    """Assert a file, directory, or source string is reprolint-clean."""
    from repro.analysis.testing import lint_clean as _lint_clean

    return _lint_clean

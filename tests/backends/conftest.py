"""Differential conformance fixtures: run the same program on both backends.

The ``backend`` fixture parametrizes a test over the execution backends; the
process lane is marked ``slow`` (OS processes are ~100× more expensive to
spawn than threads) and uses the reduced rank counts of :func:`ps_for`.  The
``differential`` fixture is the heart of the suite: it runs the program on
the lane's backend *and* on the thread backend as the reference, asserting
the observable outcome — return values, virtual clocks, PMPI counters, and
(when traced) the structured event streams — is bit-identical.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.mpi import run_mpi

#: rank counts for the thread lane (non-powers-of-2 included)
THREAD_PS = (1, 2, 3, 4, 7)
#: reduced rank counts for the (slower) process lane
PROCESS_PS = (1, 2, 4)


def ps_for(backend: str, *, minimum: int = 1) -> tuple[int, ...]:
    """Rank counts a conformance test should exercise on ``backend``."""
    ps = PROCESS_PS if backend == "process" else THREAD_PS
    return tuple(p for p in ps if p >= minimum)


def canon(obj):
    """Canonical form for cross-process equality: keyed by dtype *and* bits.

    numpy arrays/scalars do not compare bit-identically via ``==`` (dtype is
    ignored, NaN never matches), so normalize them to ``(dtype, shape,
    bytes)`` tuples; containers recurse.
    """
    if isinstance(obj, np.ndarray):
        return ("ndarray", str(obj.dtype), obj.shape, obj.tobytes())
    if isinstance(obj, np.generic):
        return ("npscalar", str(obj.dtype), obj.tobytes())
    if isinstance(obj, dict):
        return {k: canon(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return tuple(canon(v) for v in obj)
    return obj


@pytest.fixture(params=[
    "thread",
    pytest.param("process", marks=pytest.mark.slow),
])
def backend(request) -> str:
    return request.param


@pytest.fixture
def differential(backend):
    """Run on the lane's backend, diff against the thread reference.

    Returns the lane's :class:`~repro.mpi.machine.RunResult`.  ``compare``
    selects which observables must be bit-identical; wildcard-receiving
    programs should drop ``"times"`` (match order is timing-dependent on
    *both* backends) and make their return values order-insensitive.
    """

    def _run(fn, p, *, args=(), compare=("values", "times", "counts"),
             deadline=60.0, **kwargs):
        got = run_mpi(fn, p, args=args, backend=backend, deadline=deadline,
                      **kwargs)
        assert got.backend == backend
        if backend != "thread":
            ref = run_mpi(fn, p, args=args, backend="thread",
                          deadline=deadline, **kwargs)
            if "values" in compare:
                assert canon(got.values) == canon(ref.values)
            if "times" in compare:
                assert got.times == ref.times
                assert got.comm_seconds == ref.comm_seconds
                assert got.compute_seconds == ref.compute_seconds
            if "counts" in compare:
                assert got.counts == ref.counts
            if "trace" in compare:
                for r in range(p):
                    assert (got.trace.events_for(r)
                            == ref.trace.events_for(r)), f"trace of rank {r}"
                assert got.op_bytes() == ref.op_bytes()
        return got

    return _run

"""Process-backend specifics: real OS processes, selection, marshalling.

The acceptance test of the backend: p=4 ranks execute in four distinct OS
processes (distinct PIDs, none of them the parent) while producing results
bit-identical to the thread backend.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.mpi import (
    BACKENDS,
    ProcessBackend,
    RawUsageError,
    SUM,
    ThreadBackend,
    resolve_backend,
    run_mpi,
)
from tests.backends.conftest import canon
from tests.conftest import runk

pytestmark = pytest.mark.slow


def _pid_and_result(comm):
    right = (comm.rank + 1) % comm.size
    comm.send(np.arange(8, dtype=np.int64) * comm.rank, right, tag=1)
    payload, st = comm.recv((comm.rank - 1) % comm.size, 1)
    total = comm.allreduce(comm.rank + 1, SUM)
    return (os.getpid(), payload, (st.source, st.nbytes), int(total))


def test_four_ranks_four_processes_bit_identical_results():
    got = run_mpi(_pid_and_result, 4, backend="process")
    ref = run_mpi(_pid_and_result, 4, backend="thread")

    pids = [v[0] for v in got.values]
    assert len(set(pids)) == 4, f"expected 4 distinct PIDs, got {pids}"
    assert os.getpid() not in pids, "ranks must not run in the parent"
    assert len({v[0] for v in ref.values}) == 1  # threads share one process

    assert canon([v[1:] for v in got.values]) == canon(
        [v[1:] for v in ref.values])
    assert got.times == ref.times
    assert got.counts == ref.counts
    assert got.backend == "process" and ref.backend == "thread"


def test_runresult_shape():
    res = run_mpi(lambda comm: comm.rank, 3, backend="process")
    assert res.values == [0, 1, 2]
    assert res.machine is None  # no shared machine exists to hand back
    assert res.failed == frozenset()
    assert res.leaks is None
    assert len(res.times) == len(res.counts) == 3


def test_env_variable_selects_backend(monkeypatch):
    monkeypatch.setenv("REPRO_BACKEND", "process")
    res = run_mpi(lambda comm: os.getpid(), 2)
    assert res.backend == "process"
    assert os.getpid() not in res.values
    # an explicit argument beats the environment
    res = run_mpi(lambda comm: os.getpid(), 2, backend="thread")
    assert res.backend == "thread"
    assert res.values == [os.getpid()] * 2


def test_resolve_backend_registry():
    assert isinstance(resolve_backend(None), ThreadBackend)
    assert isinstance(resolve_backend("process"), ProcessBackend)
    inst = ProcessBackend()
    assert resolve_backend(inst) is inst  # instances pass through
    assert set(BACKENDS) == {"thread", "process"}
    with pytest.raises(RawUsageError, match="unknown execution backend"):
        resolve_backend("mpi4py")


def test_kamping_layer_over_process_backend():
    from repro.core import op, send_buf

    def prog(comm):
        return int(comm.allreduce_single(send_buf(comm.rank + 1), op(SUM)))

    got = runk(prog, 4, backend="process")
    assert got.backend == "process"
    assert got.values == [10, 10, 10, 10]


def test_backend_instance_with_start_method():
    # fork is this platform's default; passing it explicitly must behave
    # identically (spawn would require a module-level fn)
    res = run_mpi(_pid_and_result, 2, backend=ProcessBackend("fork"))
    assert len({v[0] for v in res.values}) == 2

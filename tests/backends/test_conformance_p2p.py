"""Point-to-point matching conformance: tags, wildcards, ssend, probe.

Every program here runs on the lane's backend and on the thread reference;
payloads, statuses (source/tag/nbytes), and — for wildcard-free programs —
virtual clocks and PMPI counters must be bit-identical (see ``conftest``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.mpi import ANY_SOURCE, ANY_TAG
from tests.backends.conftest import ps_for


def _status_tuple(st):
    return (st.source, st.tag, st.nbytes)


def _ring_with_tags(comm):
    right = (comm.rank + 1) % comm.size
    left = (comm.rank - 1) % comm.size
    comm.send((comm.rank, "first"), right, tag=5)
    comm.send(np.arange(3, dtype=np.int32) + comm.rank, right, tag=6)
    pb, sb = comm.recv(left, 6)  # matched out of send order by tag
    pa, sa = comm.recv(left, 5)
    return pa, pb, _status_tuple(sa), _status_tuple(sb)


def test_tag_matching_ring(differential, backend):
    for p in ps_for(backend):
        differential(_ring_with_tags, p)


def _non_overtaking(comm):
    if comm.rank == 0:
        for i in range(4):
            comm.send(("msg", i), 1 % comm.size, tag=2)
        return None
    if comm.rank == 1:
        got = [comm.recv(0, 2)[0] for _ in range(4)]
        assert got == [("msg", i) for i in range(4)]
        return got
    return None


def test_non_overtaking_same_tag(differential, backend):
    for p in ps_for(backend, minimum=2):
        differential(_non_overtaking, p)


def _wildcard_fan_in(comm):
    if comm.rank == 0:
        msgs = [comm.recv(ANY_SOURCE, ANY_TAG) for _ in range(comm.size - 1)]
        # arrival order is timing-dependent on every backend: compare as a
        # sorted multiset
        return sorted((st.source, st.tag, st.nbytes, pl) for pl, st in msgs)
    comm.send(comm.rank * 11, 0, tag=comm.rank)
    return None


def test_wildcard_fan_in_multiset(differential, backend):
    for p in ps_for(backend, minimum=2):
        differential(_wildcard_fan_in, p, compare=("values", "counts"))


def _ssend_ring(comm):
    right = (comm.rank + 1) % comm.size
    left = (comm.rank - 1) % comm.size
    req = comm.issend(np.full(8, comm.rank, dtype=np.int64), right, tag=3)
    payload, st = comm.recv(left, 3)
    req.wait()
    # post the receive first: a symmetric blocking-ssend ring would deadlock
    # (correctly!) on every backend
    r2 = comm.irecv(left, 4)
    comm.ssend(("sync", comm.rank), right, tag=4)
    p2, s2 = r2.wait()
    return payload, _status_tuple(st), p2, _status_tuple(s2)


def test_synchronous_sends(differential, backend):
    for p in ps_for(backend, minimum=2):
        differential(_ssend_ring, p)


def _probe_then_recv(comm):
    right = (comm.rank + 1) % comm.size
    left = (comm.rank - 1) % comm.size
    comm.send(bytes([comm.rank]) * 5, right, tag=9)
    st = comm.probe(left, 9)
    payload, _ = comm.recv(st.source, st.tag)
    ok, nothing = comm.iprobe(left, 42)  # nothing outstanding with tag 42
    return _status_tuple(st), payload, ok, nothing


def test_probe_and_iprobe(differential, backend):
    for p in ps_for(backend, minimum=2):
        differential(_probe_then_recv, p)


def _self_send(comm):
    comm.send({"self": comm.rank}, comm.rank, tag=1)
    payload, st = comm.recv(comm.rank, 1)
    return payload, _status_tuple(st)


def test_self_send_stays_local(differential, backend):
    for p in ps_for(backend):
        differential(_self_send, p)


def _irecv_isend_exchange(comm):
    right = (comm.rank + 1) % comm.size
    left = (comm.rank - 1) % comm.size
    req = comm.irecv(left, 7)
    comm.isend(np.arange(4) * (comm.rank + 1), right, tag=7).wait()
    payload, st = req.wait()
    return payload, _status_tuple(st)


def test_nonblocking_exchange(differential, backend):
    for p in ps_for(backend, minimum=2):
        differential(_irecv_isend_exchange, p)


def _large_payload_ring(comm):
    right = (comm.rank + 1) % comm.size
    left = (comm.rank - 1) % comm.size
    blob = np.arange(64 * 1024, dtype=np.float64) + comm.rank
    comm.send(blob, right, tag=1)
    payload, st = comm.recv(left, 1)
    return float(payload.sum()), _status_tuple(st)


def test_large_payloads(differential, backend):
    # 512 KiB per message: larger than a pipe buffer, so the process
    # backend's pump must drain concurrently with the sender
    for p in ps_for(backend, minimum=2)[-1:]:
        differential(_large_payload_ring, p)


@pytest.mark.slow
def test_p2p_statuses_traced(differential, backend):
    # the trace comparison pins peers/tags/bytes of every p2p event
    for p in ps_for(backend, minimum=2)[:1]:
        differential(_ssend_ring, p, trace=True,
                     compare=("values", "times", "counts", "trace"))

"""Communicator management conformance: split, dup, dist-graph topologies.

Sub-communicator ids are derived deterministically on every rank, so the
process backend creates each rank's local replica independently — these
tests pin that the resulting groups, ranks, and collectives on the
sub-communicators behave identically to the shared-machine thread backend.
"""

from __future__ import annotations

import numpy as np

from repro.mpi import SUM
from tests.backends.conftest import ps_for


def _split_parity(comm):
    sub = comm.split(comm.rank % 2, key=comm.rank)
    return (sub.rank, sub.size, sub.allgather(comm.rank),
            int(sub.allreduce(comm.rank + 1, SUM)))


def test_split_by_parity(differential, backend):
    for p in ps_for(backend):
        differential(_split_parity, p)


def _split_undefined(comm):
    # the last rank opts out (color=None == MPI_UNDEFINED)
    color = None if comm.rank == comm.size - 1 else 0
    sub = comm.split(color)
    if sub is None:
        return ("undefined", comm.rank)
    return (sub.rank, sub.size, sub.allgather(comm.rank))


def test_split_color_none(differential, backend):
    for p in ps_for(backend, minimum=2):
        differential(_split_undefined, p)


def _split_key_reversal(comm):
    # reverse rank order within one color via the key argument
    sub = comm.split(0, key=-comm.rank)
    return (sub.rank, sub.allgather(comm.rank))


def test_split_key_ordering(differential, backend):
    for p in ps_for(backend):
        differential(_split_key_reversal, p)


def _dup_and_isolated_traffic(comm):
    d = comm.dup()
    # same tag on parent and dup: matching is per-communicator
    right = (comm.rank + 1) % comm.size
    left = (comm.rank - 1) % comm.size
    comm.send(("parent", comm.rank), right, tag=5)
    d.send(("dup", comm.rank), right, tag=5)
    on_dup, _ = d.recv(left, 5)
    on_parent, _ = comm.recv(left, 5)
    assert on_dup[0] == "dup" and on_parent[0] == "parent"
    return (on_parent, on_dup, int(d.allreduce(1, SUM)))


def test_dup_isolates_traffic(differential, backend):
    for p in ps_for(backend, minimum=2):
        differential(_dup_and_isolated_traffic, p)


def _nested_split(comm):
    sub = comm.split(comm.rank % 2, key=comm.rank)
    subsub = sub.dup().split(0, key=sub.rank)
    return (subsub.rank, subsub.size, subsub.allgather((comm.rank, sub.rank)))


def test_nested_split_of_dup(differential, backend):
    for p in ps_for(backend):
        differential(_nested_split, p)


def _ring_topology(comm):
    p = comm.size
    left = (comm.rank - 1) % p
    right = (comm.rank + 1) % p
    g = comm.dist_graph_create_adjacent(sources=[left], destinations=[right])
    recvd = g.neighbor_alltoall([comm.rank * 10])
    sent = np.full(3, comm.rank, dtype=np.int64)
    recvd_v = g.neighbor_alltoallv(sent, [3], [3])
    return (g.topology, recvd, recvd_v)


def test_dist_graph_ring(differential, backend):
    for p in ps_for(backend, minimum=2):
        differential(_ring_topology, p)

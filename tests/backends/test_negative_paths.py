"""Failure semantics of the process backend: loud refusals, remote errors.

The backend contract says unsupported features must raise
:class:`~repro.mpi.errors.UnsupportedOnBackend` with an actionable message
(wording pinned here), and a raising rank must surface its *remote*
traceback to the caller instead of a bare "child died".
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.mpi import RawUsageError, UnsupportedOnBackend, run_mpi
from repro.mpi.faultinject import FaultCampaign, KillOnOp

pytestmark = pytest.mark.slow

#: the pinned refusal wording (DESIGN §12): names the backend, blames the
#: shared-process state, and points at the way out
REFUSAL = (r"is not supported on the 'process' backend: it relies on "
           r"shared-process state \(\w+\); run with backend='thread'")


def _idle(comm):
    return comm.rank


def _raise_on_rank_one(comm):
    if comm.rank == 1:
        raise ValueError("deliberate failure for the negative-path test")
    return comm.rank


class TestRemoteErrors:
    def test_remote_exception_propagates_with_traceback(self):
        with pytest.raises(RuntimeError) as excinfo:
            run_mpi(_raise_on_rank_one, 3, backend="process")
        msg = str(excinfo.value)
        assert "rank 1 raised ValueError: deliberate failure" in msg
        assert "traceback from rank 1 (process backend)" in msg
        # the remote frames are embedded: function name and raise site
        assert "_raise_on_rank_one" in msg
        assert "raise ValueError" in msg

    def test_process_crash_is_reported(self):
        def hard_exit(comm):
            if comm.rank == 1:
                os._exit(3)  # simulates a segfault: no exception, no report
            return comm.rank

        with pytest.raises(RuntimeError,
                           match=r"rank 1 process died \(exit code 3\)"):
            run_mpi(hard_exit, 2, backend="process")

    def test_unpicklable_return_value_is_reported(self):
        with pytest.raises(RuntimeError, match="could not be pickled"):
            run_mpi(lambda comm: (lambda: comm.rank), 2, backend="process")

    def test_unpicklable_payload_is_reported(self):
        def send_lambda(comm):
            if comm.size > 1 and comm.rank == 0:
                comm.send(lambda: 1, 1, tag=0)
            elif comm.rank == 1:
                comm.recv(0, 0)

        with pytest.raises(RuntimeError, match="could not be pickled"):
            run_mpi(send_lambda, 2, backend="process", deadline=15.0)


class TestUnsupportedFeatures:
    def test_sanitize_refused(self):
        with pytest.raises(UnsupportedOnBackend, match=REFUSAL):
            run_mpi(_idle, 2, backend="process", sanitize=True)

    def test_fuzz_seed_refused(self):
        with pytest.raises(UnsupportedOnBackend, match=REFUSAL):
            run_mpi(_idle, 2, backend="process", fuzz_seed=7)

    def test_faults_refused(self):
        campaign = FaultCampaign([KillOnOp(rank=0, op="send", nth=1)])
        with pytest.raises(UnsupportedOnBackend, match=REFUSAL):
            run_mpi(_idle, 2, backend="process", faults=campaign)

    def test_ambient_env_defaults_are_ignored(self, monkeypatch):
        # REPRO_SANITIZE / REPRO_FUZZ_SEED opt the *thread* backend into
        # extra checking; the process backend must ignore them (a sanitizing
        # CI lane would otherwise be unable to run REPRO_BACKEND=process),
        # erroring only on explicit arguments.
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        monkeypatch.setenv("REPRO_FUZZ_SEED", "3")
        res = run_mpi(_idle, 2, backend="process")
        assert res.values == [0, 1]
        with pytest.raises(UnsupportedOnBackend):
            run_mpi(_idle, 2, backend="process", sanitize=True)

    def test_rma_guard(self):
        def rma(comm):
            comm.win_create(np.zeros(4))

        with pytest.raises(RuntimeError, match="RMA windows"):
            run_mpi(rma, 2, backend="process")

    def test_ulfm_guards(self):
        for fn, feature in (
            (lambda comm: comm.revoke(), "ULFM revocation"),
            (lambda comm: comm.shrink(), "ULFM shrink"),
            (lambda comm: comm.agree(True), "ULFM agreement"),
            (lambda comm: comm.kill_self(), "failure injection"),
        ):
            with pytest.raises(RuntimeError) as excinfo:
                run_mpi(fn, 2, backend="process")
            msg = str(excinfo.value)
            assert "UnsupportedOnBackend" in msg and feature in msg

    def test_thread_backend_still_supports_everything(self):
        # the guards are no-ops on the thread backend
        res = run_mpi(_idle, 2, sanitize=True, fuzz_seed=1,
                      backend="thread")
        assert res.values == [0, 1]

    def test_unknown_backend_name(self):
        with pytest.raises(RawUsageError, match="unknown execution backend"):
            run_mpi(_idle, 2, backend="sockets")

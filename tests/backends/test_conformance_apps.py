"""Application-level conformance: sample sort and BFS, plus the golden trace.

Whole applications compose dozens of collectives and p2p exchanges; running
them unchanged on both backends and asserting bit-identical outputs (and,
traced, bit-identical per-event byte accounting) is the end-to-end proof
that the transports are observationally equivalent.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.graphs import bfs, generate_gnm
from repro.apps.graphs.generators import symmetrize
from repro.apps.sorting.sample_sort import sample_sort_mpi
from repro.core import Communicator
from tests.backends.conftest import ps_for


def _sample_sort_program(comm):
    rng = np.random.default_rng(100 + comm.rank)
    data = rng.integers(0, 10_000, size=64).astype(np.int64)
    out = sample_sort_mpi(comm, data)
    assert np.all(np.diff(out) >= 0)
    # global order: my largest key <= right neighbor's smallest
    edges = comm.allgather((int(out[0]) if len(out) else None,
                            int(out[-1]) if len(out) else None))
    return out, edges


def test_sample_sort(differential, backend):
    for p in ps_for(backend, minimum=2):
        got = differential(_sample_sort_program, p)
        sizes = [len(v[0]) for v in got.values]
        assert sum(sizes) == 64 * p


def _bfs_program(raw):
    comm = Communicator(raw)
    p = comm.size
    g = symmetrize(comm, generate_gnm(16, 48, p, comm.rank, seed=3))
    dist = bfs(g, 0, comm, strategy="kamping")
    return dist.tolist()


def test_bfs(differential, backend):
    for p in ps_for(backend, minimum=2):
        got = differential(_bfs_program, p)
        assert got.values[0][0] == 0  # the source vertex is at distance 0


@pytest.mark.slow
def test_sample_sort_golden_trace(differential, backend):
    """The satellite golden-trace check: ``op_bytes()`` equal across
    backends for a fixed app, and — stronger — the per-rank event streams
    (op kinds, peers, tags, byte volumes, virtual spans) bit-identical."""
    p = 4
    got = differential(_sample_sort_program, p, trace=True,
                       compare=("values", "times", "counts", "trace"))
    totals = got.op_bytes()
    assert totals["alltoallv"]["calls"] == p
    assert totals["alltoallv"]["bytes"] > 0

"""Collectives-matrix conformance: every collective, both backends.

The same :class:`~repro.mpi.engine.CollectiveEngine` algorithms run over
both transports, so reduction results, gathered payloads, virtual clocks,
and PMPI counters must be bit-identical — including the non-blocking
collectives' state machines and the pipe-replicated ibarrier.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.mpi import BAND, LAND, MAX, MIN, PROD, SUM
from repro.mpi.requests import waitall
from tests.backends.conftest import ps_for


def _rooted_matrix(comm):
    out = {}
    p = comm.size
    out["bcast"] = comm.bcast({"blob": [1, 2, 3]} if comm.rank == 0 else None)
    out["gather"] = comm.gather((comm.rank, comm.rank * 2), root=p - 1)
    counts = [2] * p
    out["gatherv"] = comm.gatherv(
        np.arange(2, dtype=np.int64) + 10 * comm.rank,
        counts if comm.rank == 0 else None, root=0)
    out["scatter"] = comm.scatter(
        [f"part-{i}" for i in range(p)] if comm.rank == 0 else None)
    out["scatterv"] = comm.scatterv(
        np.arange(3 * p, dtype=np.float64) if comm.rank == 0 else None,
        [3] * p if comm.rank == 0 else None, root=0)
    out["reduce"] = comm.reduce(np.arange(4) + comm.rank, SUM, root=0)
    return out


def test_rooted_collectives(differential, backend):
    for p in ps_for(backend):
        differential(_rooted_matrix, p)


def _symmetric_matrix(comm):
    out = {}
    p = comm.size
    out["allgather"] = comm.allgather((comm.rank, "x"))
    out["allgatherv"] = comm.allgatherv(
        np.full(2, comm.rank, dtype=np.int32), [2] * p)
    out["alltoall"] = comm.alltoall([(comm.rank, d) for d in range(p)])
    out["alltoallv"] = comm.alltoallv(
        np.arange(p, dtype=np.int64) * (comm.rank + 1), [1] * p, [1] * p)
    out["alltoallw"] = comm.alltoallw(
        [np.full(d % 2 + 1, comm.rank, dtype=np.int16) for d in range(p)])
    out["barrier"] = comm.barrier()
    return out


def test_symmetric_collectives(differential, backend):
    for p in ps_for(backend):
        differential(_symmetric_matrix, p)


def _reductions(comm):
    out = {}
    v = comm.rank + 1
    arr = np.arange(5, dtype=np.float64) + comm.rank
    for name, op in (("sum", SUM), ("prod", PROD), ("max", MAX),
                     ("min", MIN), ("band", BAND), ("land", LAND)):
        if name in ("band", "land"):
            out[name] = comm.allreduce(v, op)
        else:
            out[name] = comm.allreduce(arr, op)
    out["scan"] = comm.scan(v, SUM)
    out["exscan"] = comm.exscan(v, SUM)
    out["reduce_scalar"] = comm.reduce(v, PROD, root=0)
    return out


def test_reduction_ops(differential, backend):
    for p in ps_for(backend):
        differential(_reductions, p)


def _nonblocking_collectives(comm):
    out = {}
    out["ibcast"] = comm.ibcast([7, comm.size] if comm.rank == 0 else None,
                                0).wait()
    out["iallreduce"] = comm.iallreduce(comm.rank + 1, SUM).wait()
    out["iallgather"] = comm.iallgather(comm.rank * 3).wait()
    reqs = [comm.ibarrier() for _ in range(3)]  # overlapping epochs
    waitall(reqs)
    out["post"] = comm.allreduce(1, SUM)
    return out


def test_nonblocking_collectives(differential, backend):
    for p in ps_for(backend):
        differential(_nonblocking_collectives, p)


def _ibarrier_interleaved(comm):
    # arrive, do p2p traffic while the barrier is outstanding, then complete
    req = comm.ibarrier()
    right = (comm.rank + 1) % comm.size
    comm.send(comm.rank, right, tag=1)
    payload, _ = comm.recv((comm.rank - 1) % comm.size, 1)
    req.wait()
    done, _ = req.test()
    assert done
    return payload


def test_ibarrier_overlaps_p2p(differential, backend):
    for p in ps_for(backend, minimum=2):
        differential(_ibarrier_interleaved, p)


@pytest.mark.slow
def test_collectives_traced_identically(differential, backend):
    # algorithm selection, per-event byte accounting, and virtual spans of
    # the full symmetric matrix must agree event-for-event
    for p in ps_for(backend, minimum=2)[:1]:
        got = differential(_symmetric_matrix, p, trace=True,
                           compare=("values", "times", "counts", "trace"))
        assert got.algorithms_used()

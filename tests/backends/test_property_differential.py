"""Hypothesis differential testing: random p2p programs on both backends.

A generated program is a global list of sends ``(src, dst, tag, nbytes)``
executed SPMD: every rank performs its sends (standard mode — buffered, so
any program is deadlock-free) and then receives everything addressed to it,
either by explicit ``(source, tag)`` in a deterministic order or entirely
through wildcards.  Results are compared element-wise between the process
backend and the thread reference; any divergence Hypothesis finds gets
seed-pinned below via ``@example`` so it reruns forever.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, example, given, settings
from hypothesis import strategies as st

from repro.mpi import run_mpi
from tests.backends.conftest import canon

pytestmark = pytest.mark.slow

#: a send instruction: endpoints are drawn in [0, 2] and folded mod p
_SEND = st.tuples(
    st.integers(0, 2),   # src
    st.integers(0, 2),   # dst
    st.integers(0, 5),   # tag
    st.integers(0, 48),  # payload length (bytes of the array body)
)

PROGRAMS = st.tuples(
    st.sampled_from((2, 3)),                       # p
    st.lists(_SEND, min_size=0, max_size=10),      # sends
    st.booleans(),                                 # receive via wildcards?
)


def _payload(src: int, dst: int, tag: int, i: int, size: int) -> tuple:
    body = np.full(size, (src * 31 + tag * 7 + i) % 251, dtype=np.uint8)
    return (src, dst, tag, i, body)


def _record(pl, status) -> tuple:
    return (status.source, status.tag, status.nbytes,
            pl[0], pl[1], pl[2], pl[3], pl[4].tobytes())


def _exchange(comm, sends, wildcard):
    p = comm.size
    sends = [(src % p, dst % p, tag, size)
             for (src, dst, tag, size) in sends]
    for i, (src, dst, tag, size) in enumerate(sends):
        if src == comm.rank:
            comm.send(_payload(src, dst, tag, i, size), dst, tag)
    got = []
    if wildcard:
        for _ in [s for s in sends if s[1] == comm.rank]:
            pl, status = comm.recv()
            got.append(_record(pl, status))
        got.sort()  # wildcard match order is timing-dependent by design
    else:
        for i, (src, dst, tag, size) in enumerate(sends):
            if dst == comm.rank:
                pl, status = comm.recv(src, tag)
                got.append(_record(pl, status))
    return got


@given(PROGRAMS)
@example((2, [(0, 1, 0, 0)], True))               # smallest wildcard program
@example((2, [(0, 1, 1, 8), (0, 1, 0, 4)], False))  # out-of-order tag match
@example((3, [(0, 2, 0, 3), (1, 2, 0, 3), (2, 2, 0, 3)], True))  # fan-in
@example((3, [(0, 0, 2, 16)], False))             # self-send
@example((2, [(1, 0, 3, 48)] * 4, False))         # non-overtaking burst
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_random_send_recv_programs_agree(program):
    p, sends, wildcard = program
    ref = run_mpi(_exchange, p, args=(sends, wildcard), backend="thread",
                  deadline=30.0)
    got = run_mpi(_exchange, p, args=(sends, wildcard), backend="process",
                  deadline=30.0)
    assert canon(got.values) == canon(ref.values)
    assert got.counts == ref.counts
    if not wildcard:
        # explicit matching is fully deterministic: clocks agree bit-for-bit
        assert got.times == ref.times

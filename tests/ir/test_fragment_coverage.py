"""Fragment-table coverage: payload-dependent algorithms are marked unsound.

Regression suite for the ROADMAP-noted blind spot: ring allreduce's schedule
depends on an *eligibility branch* (commutative op + 1-D ndarray with >= p
elements, else silent fallback to reduce_bcast), so no static
``(p, rank, root)`` fragment can describe it.  Before this fix the fragment
table just had a hole there — indistinguishable from "not written yet", and
one well-meaning contribution away from handing the fuse passes a schedule
that is wrong for every small payload.  Now the algorithm is explicitly
marked :data:`~repro.mpi.ir.fragments.UNSOUND` and the branch behavior is
pinned against the seed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.mpi import CollectiveEngine, CostModel, SUM, algorithms, run_mpi
from repro.mpi.ir.fragments import (
    FRAGMENTS,
    UNSOUND,
    FragmentUnsound,
    fragment,
    fragment_soundness,
    has_fragment,
)

P = 4


def test_ring_allreduce_is_marked_unsound():
    assert fragment_soundness("allreduce", "ring") == "unsound"
    assert not has_fragment("allreduce", "ring")
    with pytest.raises(FragmentUnsound, match="payload-dependent"):
        fragment("allreduce", "ring", P, 0)
    # opaque-algorithm handling must keep working: FragmentUnsound IS a
    # KeyError, exactly what callers already catch for unmapped algorithms
    with pytest.raises(KeyError):
        fragment("allreduce", "ring", P, 0)


def test_unsound_and_static_tables_are_disjoint():
    assert not (FRAGMENTS.keys() & UNSOUND.keys())


def test_every_registered_algorithm_has_a_soundness_status():
    for op in algorithms.collectives():
        for algo in algorithms.algorithms(op):
            status = fragment_soundness(op, algo.name)
            assert status in ("static", "unsound", "unmapped"), (op, algo.name)
            if status == "static":
                assert has_fragment(op, algo.name)


def _allreduce_times(algo_name: str, width: int) -> list[float]:
    """Virtual per-rank times of a forced-algorithm allreduce at ``width``."""
    def workload(comm):
        comm.allreduce(np.arange(width, dtype=np.int64) + comm.rank, SUM)

    engine = CollectiveEngine(
        CostModel(), overrides={"allreduce": algo_name}, env={})
    res = run_mpi(workload, P, cost_model=CostModel(), engine=engine)
    assert not res.failed
    return res.times


def test_seed_pinned_eligibility_branch():
    """The branch that makes the fragment unsound, pinned as seed behavior.

    Small payloads (fewer elements than ranks) make forced ring fall back to
    reduce_bcast — bit-identical virtual schedules — while large payloads
    run the genuinely different ring pipeline.  If either half of this test
    starts failing, the eligibility branch moved and the UNSOUND marking
    (plus the ring cost formula's small-payload arm) must be revisited."""
    small = P - 1  # fewer elements than ranks: ring refuses, falls back
    assert _allreduce_times("ring", small) == \
        _allreduce_times("reduce_bcast", small)
    large = 64
    assert _allreduce_times("ring", large) != \
        _allreduce_times("reduce_bcast", large)

"""IR test fixtures.

IR tests that assert passes *fire* must run under an engine with an empty
environment: the CI algorithm matrix forces algorithms via ``REPRO_COLL_*``,
and a forced non-binomial reduce legitimately (and correctly) disables the
fusion passes — the rewrites are only sound over the recorded schedules.
"""

from __future__ import annotations

import pytest

from repro.mpi.engine import CollectiveEngine


@pytest.fixture(params=[
    "thread",
    pytest.param("process", marks=pytest.mark.slow),
])
def backend(request) -> str:
    """Both execution backends; the process lane rides the slow marker."""
    return request.param


@pytest.fixture
def clean_engine() -> CollectiveEngine:
    """An engine blind to ``REPRO_COLL_*`` (deterministic recorded schedules)."""
    return CollectiveEngine(env={})

"""Static algorithm fragments: pinned schedules the passes reason against."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.mpi.algorithms import get as get_algorithm
from repro.mpi.errors import RawUsageError
from repro.mpi.ir import fragment, has_fragment
from repro.mpi.ir.fragments import FRAGMENTS

SIZES = (1, 2, 3, 4, 7, 8)


def test_reduce_bcast_is_the_exact_composition():
    """The identity fuse_reduce_bcast relies on: the fused allreduce's
    schedule is reduce/binomial followed by bcast/binomial, per rank."""
    for p in SIZES:
        for rank in range(p):
            fused = fragment("allreduce", "reduce_bcast", p, rank)
            parts = (fragment("reduce", "binomial", p, rank)
                     + fragment("bcast", "binomial", p, rank))
            assert fused == parts, (p, rank)


@pytest.mark.parametrize("collective,name", sorted(FRAGMENTS))
def test_every_send_has_a_matching_recv(collective, name):
    """Fragments are globally consistent: the multiset of send channels
    equals the multiset of recv channels at every communicator size."""
    for p in SIZES:
        sends: Counter = Counter()
        recvs: Counter = Counter()
        for rank in range(p):
            for ev in fragment(collective, name, p, rank):
                assert ev.rank == rank
                if ev.kind == "send":
                    sends[(ev.rank, ev.peer)] += 1
                else:
                    recvs[(ev.peer, ev.rank)] += 1
        assert sends == recvs, (collective, name, p)


def test_rooted_message_counts():
    """Rooted trees move exactly p-1 messages; the fused allreduce 2(p-1)."""
    for p in SIZES:
        for collective, name in (("bcast", "binomial"), ("bcast", "linear"),
                                 ("reduce", "binomial"), ("reduce", "linear")):
            total = sum(sum(1 for e in fragment(collective, name, p, r)
                            if e.kind == "send") for r in range(p))
            assert total == p - 1, (collective, name, p)
        fused = sum(sum(1 for e in fragment("allreduce", "reduce_bcast", p, r)
                        if e.kind == "send") for r in range(p))
        assert fused == 2 * (p - 1)


def test_recursive_doubling_counts_power_of_two():
    for p in (2, 4, 8):
        total = sum(len(fragment("allreduce", "recursive_doubling", p, r))
                    for r in range(p))
        # each of log2(p) rounds is a full pairwise exchange: p sends+recvs
        assert total == 2 * p * p.bit_length() - 2 * p


def test_nonzero_root_is_a_relabeling():
    """Rooted fragments with root r are the root-0 schedule relabeled."""
    p, root = 8, 3
    for rank in range(p):
        shifted = fragment("bcast", "binomial", p, rank, root)
        base = fragment("bcast", "binomial", p, (rank - root) % p)
        assert tuple((e.kind, (e.peer + root) % p) for e in base) == \
            tuple((e.kind, e.peer) for e in shifted)


def test_registry_algorithms_expose_their_fragment():
    algo = get_algorithm("allreduce", "reduce_bcast")
    assert algo.fragment(4, 2) == fragment("allreduce", "reduce_bcast", 4, 2)


def test_unmapped_algorithms_are_opaque():
    assert not has_fragment("allgather", "ring")
    with pytest.raises(KeyError):
        fragment("allgather", "ring", 4, 0)


def test_rank_and_root_ranges_are_validated():
    with pytest.raises(RawUsageError, match="rank"):
        fragment("bcast", "binomial", 4, 4)
    with pytest.raises(RawUsageError, match="root"):
        fragment("bcast", "binomial", 4, 0, root=-1)

"""Rewrite passes: fire where provably sound, refuse everywhere else."""

from __future__ import annotations

import copy

import numpy as np
import pytest

from repro.mpi import run_mpi
from repro.mpi.errors import RawUsageError
from repro.mpi.ir import DEFAULT_PASSES, PassManager, available_passes
from repro.mpi.ir.passes import PASSES
from repro.mpi.ops import MAX, SUM


def _record(fn, p, clean_engine, **kwargs):
    return run_mpi(fn, p, ir="record", engine=clean_engine, **kwargs).ir.epoch


def _run_pass(name, epoch):
    optimized = copy.deepcopy(epoch)
    result = PASSES[name](optimized)
    return optimized, result


# -- fuse_reduce_bcast -------------------------------------------------------


def _reduce_then_bcast(raw):
    total = raw.reduce(raw.rank + 1, SUM, 0)
    return raw.bcast(total, 0)


def test_fuse_reduce_bcast_fires(clean_engine):
    epoch = _record(_reduce_then_bcast, 4, clean_engine)
    optimized, result = _run_pass("fuse_reduce_bcast", epoch)
    assert result.rewrites == 1
    assert optimized.op_counts() == {"allreduce": 4}
    fused = optimized.ops[0][0]
    assert fused.args["algorithm"] == "reduce_bcast"
    assert fused.ir_pass == "fuse_reduce_bcast"
    assert fused.result == epoch.ops[0][-1].result


def test_fuse_refuses_when_bcast_value_differs(clean_engine):
    def tweaked(raw):
        total = raw.reduce(raw.rank + 1, SUM, 0)
        if raw.rank == 0:
            total = total + 1  # rebroadcasts a *different* value
        return raw.bcast(total, 0)

    epoch = _record(tweaked, 4, clean_engine)
    _, result = _run_pass("fuse_reduce_bcast", epoch)
    assert result.rewrites == 0


def test_fuse_refuses_nonzero_root(clean_engine):
    def rooted(raw):
        total = raw.reduce(raw.rank, SUM, 1)
        return raw.bcast(total, 1)

    epoch = _record(rooted, 4, clean_engine)
    _, result = _run_pass("fuse_reduce_bcast", epoch)
    assert result.rewrites == 0


def test_fuse_refuses_interleaved_collective(clean_engine):
    def interleaved(raw):
        total = raw.reduce(raw.rank, SUM, 0)
        raw.barrier()
        return raw.bcast(total, 0)

    epoch = _record(interleaved, 4, clean_engine)
    _, result = _run_pass("fuse_reduce_bcast", epoch)
    assert result.rewrites == 0


def test_fuse_repeats_across_multiple_pairs(clean_engine):
    def twice(raw):
        a = raw.bcast(raw.reduce(raw.rank, SUM, 0), 0)
        b = raw.bcast(raw.reduce(raw.rank, MAX, 0), 0)
        return a, b

    epoch = _record(twice, 4, clean_engine)
    optimized, result = _run_pass("fuse_reduce_bcast", epoch)
    assert result.rewrites == 2
    assert optimized.op_counts() == {"allreduce": 8}


# -- batch_bcasts ------------------------------------------------------------


def test_batch_bcasts_merges_scalar_run_byte_neutrally(clean_engine):
    def config(raw):
        a = raw.bcast(7 if raw.rank == 0 else None, 0)
        b = raw.bcast(8 if raw.rank == 0 else None, 0)
        c = raw.bcast(9 if raw.rank == 0 else None, 0)
        return a + b + c

    epoch = _record(config, 4, clean_engine)
    optimized, result = _run_pass("batch_bcasts", epoch)
    assert result.rewrites == 1
    assert optimized.op_counts() == {"bcast": 4}
    batched = optimized.ops[0][0]
    assert batched.args["batched"] == 3
    assert batched.result == [7, 8, 9]
    assert optimized.total_bytes() == epoch.total_bytes()  # byte-neutral
    assert optimized.total_raw_ops() < epoch.total_raw_ops()


def test_batch_bcasts_refuses_mixed_roots(clean_engine):
    def mixed(raw):
        a = raw.bcast(1 if raw.rank == 0 else None, 0)
        b = raw.bcast(2 if raw.rank == 1 else None, 1)
        return a + b

    epoch = _record(mixed, 4, clean_engine)
    _, result = _run_pass("batch_bcasts", epoch)
    assert result.rewrites == 0


def test_batch_bcasts_refuses_array_payloads(clean_engine):
    def arrays(raw):
        a = raw.bcast(np.arange(3) if raw.rank == 0 else None, 0)
        b = raw.bcast(np.arange(3) if raw.rank == 0 else None, 0)
        return len(a) + len(b)

    epoch = _record(arrays, 4, clean_engine)
    _, result = _run_pass("batch_bcasts", epoch)
    assert result.rewrites == 0


# -- fuse_count_exchange -----------------------------------------------------


def _counted_exchange(raw):
    scounts = [raw.rank + 1] * raw.size
    data = np.arange(sum(scounts), dtype=np.int64)
    rcounts = raw.alltoall(list(scounts))
    return raw.alltoallv(data, scounts, rcounts)


def test_fuse_count_exchange_removes_count_alltoall(clean_engine):
    epoch = _record(_counted_exchange, 4, clean_engine)
    optimized, result = _run_pass("fuse_count_exchange", epoch)
    assert result.rewrites == 1
    assert optimized.op_counts() == {"alltoall": 4}
    fused = optimized.ops[0][0]
    assert fused.args["post"] == "concat"
    assert fused.ir_pass == "fuse_count_exchange"
    # the count vectors (8 bytes x p per rank) are off the wire entirely
    assert epoch.total_bytes() - optimized.total_bytes() == 8 * 4 * 4


def test_fuse_count_exchange_refuses_mismatched_counts(clean_engine):
    def independent(raw):
        raw.alltoall([raw.rank] * raw.size)  # unrelated count-shaped traffic
        data = np.arange(raw.size, dtype=np.int64)
        return raw.alltoallv(data, [1] * raw.size, [1] * raw.size)

    epoch = _record(independent, 4, clean_engine)
    _, result = _run_pass("fuse_count_exchange", epoch)
    assert result.rewrites == 0


# -- coalesce_sends ----------------------------------------------------------


def _chatty(raw):
    if raw.rank == 0:
        for k in range(4):
            raw.send(k * 11, 1, tag=5)
    if raw.rank == 1:
        return [raw.recv(0, 5)[0] for _ in range(4)]
    return None


def test_coalesce_sends_packs_scalar_channel(clean_engine):
    epoch = _record(_chatty, 2, clean_engine)
    optimized, result = _run_pass("coalesce_sends", epoch)
    assert result.rewrites == 1
    assert optimized.op_counts() == {"send": 1, "recv": 1}
    packed = optimized.ops[0][0]
    assert packed.args["packed"] == 4
    assert packed.payload == [0, 11, 22, 33]
    assert optimized.total_bytes() == epoch.total_bytes()


def test_coalesce_handles_multiple_channels(clean_engine):
    def fan_in(raw):
        if raw.rank in (0, 1):
            for k in range(2):
                raw.send(raw.rank * 100 + k, 2, tag=raw.rank)
        if raw.rank == 2:
            a = [raw.recv(0, 0)[0] for _ in range(2)]
            b = [raw.recv(1, 1)[0] for _ in range(2)]
            return a + b
        return None

    epoch = _record(fan_in, 3, clean_engine)
    optimized, result = _run_pass("coalesce_sends", epoch)
    assert result.rewrites == 2
    assert optimized.op_counts() == {"send": 2, "recv": 2}


def test_coalesce_refuses_wildcard_receives(clean_engine):
    def wild(raw):
        if raw.rank == 0:
            raw.send(1, 1, tag=5)
            raw.send(2, 1, tag=5)
        if raw.rank == 1:
            return [raw.recv(-1, 5)[0] for _ in range(2)]
        return None

    epoch = _record(wild, 2, clean_engine)
    _, result = _run_pass("coalesce_sends", epoch)
    assert result.rewrites == 0


# -- ring_to_sendrecv --------------------------------------------------------


def _ring(raw):
    p, r = raw.size, raw.rank
    raw.send(r * 7, (r + 1) % p, tag=2)
    return raw.recv((r - 1) % p, 2)[0]


def test_ring_becomes_sendrecv(clean_engine):
    epoch = _record(_ring, 4, clean_engine)
    optimized, result = _run_pass("ring_to_sendrecv", epoch)
    assert result.rewrites == 1
    assert optimized.op_counts() == {"sendrecv": 4}
    fused = optimized.ops[2][0]
    assert fused.args["dest"] == 3 and fused.args["source"] == 1
    assert fused.ir_pass == "ring_to_sendrecv"


def test_multiple_ring_rounds_all_fuse(clean_engine):
    def two_rounds(raw):
        p, r = raw.size, raw.rank
        out = []
        for t in range(2):
            raw.send(r + 100 * t, (r + 1) % p, tag=t)
            out.append(raw.recv((r - 1) % p, t)[0])
        return out

    epoch = _record(two_rounds, 3, clean_engine)
    optimized, result = _run_pass("ring_to_sendrecv", epoch)
    assert result.rewrites == 2
    assert optimized.op_counts() == {"sendrecv": 6}


def test_unaligned_shifts_do_not_fuse(clean_engine):
    def skew(raw):
        p, r = raw.size, raw.rank
        shift = 1 if r % 2 == 0 else 2  # ranks disagree on the shift
        raw.send(r, (r + shift) % p, tag=2)
        back = 1 if (r - 1) % p % 2 == 0 else 2
        del back
        return None

    # a genuinely non-ring pattern: everyone sends, nobody receives in a
    # single uniform shift — guard with matching wildcard-free receives
    def nonring(raw):
        p, r = raw.size, raw.rank
        raw.send(r, (r + 1) % p, tag=2)
        raw.send(r, (r + 2) % p, tag=3)
        a = raw.recv((r - 1) % p, 2)[0]
        b = raw.recv((r - 2) % p, 3)[0]
        return a + b

    epoch = _record(nonring, 4, clean_engine)
    optimized, result = _run_pass("ring_to_sendrecv", epoch)
    # only the tag-2 ring is adjacent-pairable; the tag-3 ring's send is
    # separated from its recv by other p2p traffic, so exactly one round fuses
    assert result.rewrites <= 1


# -- overlap_waits -----------------------------------------------------------


def test_overlap_pushes_irecv_wait_past_compute(clean_engine):
    def overlap(raw):
        if raw.rank == 0:
            raw.send(np.arange(8), 1, tag=1)
            return None
        req = raw.irecv(0, 1)
        value = req.wait()  # recorded before the compute...
        raw.compute(5e-6)
        return value[0].sum()

    epoch = _record(overlap, 2, clean_engine)
    optimized, result = _run_pass("overlap_waits", epoch)
    assert result.rewrites == 1
    kinds = [n.kind for n in optimized.ops[1]]
    assert kinds == ["p2p", "local", "wait"]  # wait hoisted past compute
    assert optimized.ops[1][-1].ir_pass == "overlap_waits"


def test_overlap_respects_dependent_compute(clean_engine):
    def dependent(raw):
        if raw.rank == 0:
            raw.send(np.arange(8), 1, tag=1)
            raw.compute(5e-6)
            return None
        req = raw.irecv(0, 1)
        payload, _ = req.wait()
        raw.compute(float(payload[0]) * 1e-9)  # depends on the wait's value
        return None

    epoch = _record(dependent, 2, clean_engine)
    # manually add the dep edge the identity tracker cannot see (the compute
    # charge is derived from the payload): the pass must honor it
    wait = next(n for n in epoch.ops[1] if n.kind == "wait")
    compute = next(n for n in epoch.ops[1] if n.kind == "local")
    compute.deps = (wait.idx,)
    _, result = _run_pass("overlap_waits", epoch)
    assert result.rewrites == 0


# -- PassManager -------------------------------------------------------------


def test_default_pipeline_is_all_passes():
    assert tuple(PassManager().pass_names) == DEFAULT_PASSES
    assert available_passes() == DEFAULT_PASSES


def test_explicit_pass_list_wins_over_env():
    pm = PassManager(["batch_bcasts"],
                     env={"REPRO_IR_PASSES": "fuse_reduce_bcast"})
    assert list(pm.pass_names) == ["batch_bcasts"]


def test_env_pass_list_and_disable():
    pm = PassManager(env={"REPRO_IR_PASSES": "ring_to_sendrecv,batch_bcasts"})
    assert list(pm.pass_names) == ["ring_to_sendrecv", "batch_bcasts"]
    pm = PassManager(env={"REPRO_IR_DISABLE": "overlap_waits"})
    assert "overlap_waits" not in pm.pass_names
    assert len(pm.pass_names) == len(DEFAULT_PASSES) - 1


def test_unknown_pass_name_raises():
    with pytest.raises(RawUsageError, match="unknown IR pass"):
        PassManager(["not_a_pass"])
    with pytest.raises(RawUsageError, match="unknown IR pass"):
        PassManager(env={"REPRO_IR_DISABLE": "nope"})

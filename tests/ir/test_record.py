"""Recording: the journaled epoch is a faithful, aligned transcript."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mpi import run_mpi
from repro.mpi.ir import Coll, P2P, UnsupportedForIR, values_equal
from repro.mpi.ops import SUM


def _mixed_program(raw):
    comm_rank = raw.rank
    total = raw.allreduce(comm_rank, SUM)
    raw.compute(1e-6)
    if comm_rank == 0:
        raw.send(np.arange(4), 1, tag=3)
    if comm_rank == 1:
        payload, status = raw.recv(-1, -1)  # wildcard source and tag
        assert status.source == 0
    gathered = raw.gather(comm_rank * 2, 0)
    return total, gathered


def test_record_mode_attaches_epoch_and_preserves_values():
    res = run_mpi(_mixed_program, 4, ir="record")
    ref = run_mpi(_mixed_program, 4)
    assert [v[0] for v in res.values] == [v[0] for v in ref.values]
    epoch = res.ir.epoch
    assert res.ir.mode == "record"
    assert epoch.num_ranks == 4
    # every rank recorded: allreduce, compute, gather (+ p2p on ranks 0/1)
    ops0 = [n.op for n in epoch.ops[0]]
    assert ops0 == ["allreduce", "compute", "send", "gather"]
    ops2 = [n.op for n in epoch.ops[2]]
    assert ops2 == ["allreduce", "compute", "gather"]


def test_collective_instances_align_across_ranks():
    res = run_mpi(_mixed_program, 4, ir="record")
    inst = res.ir.epoch.instances()
    # allreduce is (world, 0), gather is (world, 1) on every rank
    assert set(inst[("world", 0)]) == {0, 1, 2, 3}
    assert set(inst[("world", 1)]) == {0, 1, 2, 3}
    assert all(n.op == "allreduce" for _, n in inst[("world", 0)].values())
    assert all(n.op == "gather" for _, n in inst[("world", 1)].values())


def test_wildcard_recv_backpatches_matched_envelope():
    res = run_mpi(_mixed_program, 4, ir="record")
    recv = next(n for n in res.ir.epoch.ops[1] if n.op == "recv")
    assert recv.args["source"] == -1 and recv.args["tag"] == -1
    assert recv.args["matched_source"] == 0
    assert recv.args["matched_tag"] == 3
    payload, status = recv.result
    assert values_equal(payload, np.arange(4))


def test_recorded_results_are_snapshots():
    def mutator(raw):
        buf = np.zeros(4)
        out = raw.allgather(buf)
        buf += 99  # mutation after the call must not leak into the journal
        return out

    res = run_mpi(mutator, 2, ir="record")
    node = res.ir.epoch.ops[0][0]
    assert values_equal(node.payload, np.zeros(4))


def test_dependency_edges_track_produced_payloads():
    def chain(raw):
        counts = raw.alltoall([1] * raw.size)
        return raw.alltoallv(np.arange(raw.size, dtype=np.int64),
                             [1] * raw.size, counts)

    res = run_mpi(chain, 3, ir="record")
    a2a, a2av = res.ir.epoch.ops[0]
    assert a2av.deps == (a2a.idx,)


def test_nonblocking_ops_record_start_and_wait_nodes():
    def nbc(raw):
        req = raw.iallreduce(raw.rank, SUM)
        raw.compute(1e-6)
        return req.wait()

    res = run_mpi(nbc, 2, ir="record")
    kinds = [(n.kind, n.op) for n in res.ir.epoch.ops[0]]
    assert kinds == [("nbc", "iallreduce"), ("local", "compute"),
                     ("wait", "wait")]
    wait = res.ir.epoch.ops[0][2]
    assert wait.args["start"] == 0 and wait.deps == (0,)


def test_static_event_bridge_is_spmd_consistent():
    """Recorded epochs lower to the SPMD checker's event model, and a
    symmetric program yields key-identical sequences on every rank — the
    dynamic analog of reprolint's RPL101 check."""
    res = run_mpi(_mixed_program, 4, ir="record")
    epoch = res.ir.epoch
    seqs = [tuple(e.key() for e in epoch.static_events(w)
                  if isinstance(e, Coll)) for w in range(4)]
    assert len(set(seqs)) == 1
    send = next(e for e in epoch.static_events(0) if isinstance(e, P2P))
    assert send.key() == ("send", 1, 3)


def test_probe_marks_epoch_unsupported():
    def prober(raw):
        if raw.rank == 0:
            raw.send(5, 1)
        if raw.rank == 1:
            raw.probe(0)
            return raw.recv(0)[0]
        return None

    res = run_mpi(prober, 2, ir="record")
    assert "probe" in res.ir.epoch.unsupported
    with pytest.raises(UnsupportedForIR, match="probe"):
        run_mpi(prober, 2, ir="optimize")


def test_derived_communicators_are_recorded_and_journaled():
    def splitter(raw):
        half = raw.split(raw.rank % 2)
        return half.allreduce(1, SUM)

    res = run_mpi(splitter, 4, ir="record")
    epoch = res.ir.epoch
    mgmt = next(n for n in epoch.ops[0] if n.kind == "mgmt")
    assert mgmt.op == "comm_split"
    sub_allreduce = next(n for n in epoch.ops[0] if n.op == "allreduce")
    assert sub_allreduce.comm == mgmt.args["new_comm"]
    assert epoch.members[mgmt.args["new_comm"]] == (0, 2)
    assert res.values == [2, 2, 2, 2]

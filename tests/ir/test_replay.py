"""Optimize + replay: bit-identical values, fewer ops, verified provenance.

The acceptance surface of the IR: for realistic epochs (sample sort, BFS)
the optimized replay must reproduce the unoptimized run's values exactly on
both execution backends while issuing strictly fewer raw operations and
bytes, and the replayer must go through the call-plan cache (steady-state
hit counts are pinned here) and refuse to replay when the environment would
silently change a recorded algorithm or a value diverges.
"""

from __future__ import annotations

import copy
from collections import Counter

import pytest

from repro.apps.ir_demo import bfs_epoch, sample_sort_epoch
from repro.mpi import run_mpi
from repro.mpi.engine import CollectiveEngine
from repro.mpi.errors import RawUsageError
from repro.mpi.ir.replayer import ReplayPlan, replay_main
from repro.mpi.ops import SUM


def _fusable(raw):
    """reduce + bcast at root 0: the canonical fuse_reduce_bcast target."""
    total = raw.reduce(raw.rank, SUM, 0)
    return raw.bcast(total, 0)


def _allreduce_loop(raw, iters=8):
    total = 0
    for _ in range(iters):
        total = raw.allreduce(total + raw.rank, SUM)
    return total


def _two_shape_loop(raw, iters=5):
    out = 0
    for _ in range(iters):
        out = raw.allreduce(out + raw.rank, SUM)
        raw.allgather(out)
    return out


# -- differential acceptance: sample sort and BFS at p in {4, 8} -----------

@pytest.mark.parametrize("p", [4, 8])
@pytest.mark.parametrize("app", [sample_sort_epoch, bfs_epoch],
                         ids=["sample_sort", "bfs"])
def test_optimized_replay_is_bit_identical(app, p, backend, clean_engine):
    base = run_mpi(app, p, engine=clean_engine, backend=backend)
    res = run_mpi(app, p, ir="optimize", engine=clean_engine, backend=backend)
    # bit-identical program values on every rank
    assert res.values == base.values

    rewrites = res.ir.pass_rewrites()
    # at least one fusion pass and one coalescing pass fired
    assert rewrites["fuse_reduce_bcast"] >= 1
    assert rewrites["fuse_count_exchange"] >= 1
    assert rewrites["batch_bcasts"] >= 1
    # strictly fewer raw operations and wire bytes after optimization
    assert res.ir.optimized.total_raw_ops() < res.ir.epoch.total_raw_ops()
    assert res.ir.optimized.total_bytes() < res.ir.epoch.total_bytes()
    # the replay verified every node it had a recorded value for
    assert all(s["verified"] > 0 for s in res.ir.replay_stats)


def test_replay_issues_exactly_the_optimized_ops(clean_engine):
    """The replay's PMPI-style counters match the optimized graph node for
    node — nothing extra is issued and nothing is skipped."""
    res = run_mpi(sample_sort_epoch, 4, ir="optimize", engine=clean_engine)
    issued: Counter = Counter()
    for per_rank in res.ir.replay.counts:
        issued.update(per_rank)
    assert issued == res.ir.optimized.op_counts()


# -- call-plan cache steady state (pinned) ---------------------------------

def test_plan_cache_reaches_steady_state(clean_engine):
    """Eight identical allreduce nodes share one plan signature: exactly one
    compilation per rank, every later node a cache hit."""
    res = run_mpi(_allreduce_loop, 4, ir="optimize", engine=clean_engine)
    for stats in res.ir.replay_stats:
        assert stats == {"verified": 8, "compilations": 1, "hits": 7}


def test_plan_cache_compiles_once_per_signature(clean_engine):
    """Two alternating node shapes pin two compilations, 2·iters−2 hits."""
    res = run_mpi(_two_shape_loop, 4, ir="optimize", engine=clean_engine)
    for stats in res.ir.replay_stats:
        assert stats == {"verified": 10, "compilations": 2, "hits": 8}


def test_plan_cache_totals_surface_in_summary(clean_engine):
    res = run_mpi(_allreduce_loop, 4, ir="optimize", engine=clean_engine)
    cache = res.ir.summary()["plan_cache"]
    assert cache == {"compilations": 4, "hits": 28}


# -- trace provenance ------------------------------------------------------

def test_replay_trace_carries_pass_provenance(clean_engine):
    """Every rewritten raw node shows up in the replay's Chrome trace with
    an ``ir_pass`` arg naming the pass that produced it."""
    res = run_mpi(sample_sort_epoch, 4, ir="optimize", engine=clean_engine,
                  trace=True)
    replay = res.ir.replay
    assert replay.trace is not None
    events = [e for e in replay.chrome_trace()["traceEvents"]
              if e.get("ph") == "X" and "ir_pass" in e.get("args", {})]
    need = Counter((n.op, n.ir_pass) for n in res.ir.optimized.rewritten()
                   if n.is_raw)
    have = Counter((e["name"], e["args"]["ir_pass"]) for e in events)
    assert need, "expected at least one rewritten raw node"
    for key, count in need.items():
        assert have[key] >= count, f"missing provenance events for {key}"
    # no trace event claims a pass that never rewrote anything
    fired = {name for name, n in res.ir.pass_rewrites().items() if n}
    assert {ir_pass for _, ir_pass in have} <= fired


def test_recorded_nodes_replay_without_provenance(clean_engine):
    """Untouched nodes must NOT be tagged: provenance marks rewrites only."""
    res = run_mpi(_allreduce_loop, 4, ir="optimize", engine=clean_engine,
                  trace=True)
    events = res.ir.replay.chrome_trace()["traceEvents"]
    assert not any("ir_pass" in e.get("args", {}) for e in events)


# -- replay refuses to lie -------------------------------------------------

def test_replay_refuses_env_forced_algorithm_conflict(clean_engine):
    """A fused allreduce pins algorithm=reduce_bcast; replaying under an
    environment that forces a different algorithm must fail loudly rather
    than silently execute a schedule the rewrite never reasoned about."""
    res = run_mpi(_fusable, 4, ir="optimize", engine=clean_engine)
    assert res.ir.pass_rewrites()["fuse_reduce_bcast"] == 1
    plan = ReplayPlan(schedule=res.ir.optimized.ops,
                      members=dict(res.ir.optimized.members))
    forced = CollectiveEngine(env={"REPRO_COLL_ALLREDUCE":
                                   "recursive_doubling"})
    with pytest.raises(RuntimeError, match="IRReplayError"):
        run_mpi(replay_main, 4, args=(plan,), engine=forced)


def test_replay_detects_value_divergence(clean_engine):
    res = run_mpi(_fusable, 4, ir="record", engine=clean_engine)
    tampered = copy.deepcopy(res.ir.epoch)
    # tamper the final node so every rank finishes communicating before the
    # verifier trips (a mid-epoch abort would just strand the peers)
    tampered.ops[0][-1].result = 999_999  # not what the bcast delivers
    plan = ReplayPlan(schedule=tampered.ops, members=dict(tampered.members))
    with pytest.raises(RuntimeError, match="IRReplayError"):
        run_mpi(replay_main, 4, args=(plan,), engine=clean_engine)


# -- activation surface ----------------------------------------------------

def test_env_var_activates_recording(monkeypatch):
    monkeypatch.setenv("REPRO_IR", "record")
    res = run_mpi(_fusable, 2)
    assert res.ir is not None and res.ir.mode == "record"


def test_explicit_off_beats_env(monkeypatch):
    monkeypatch.setenv("REPRO_IR", "optimize")
    res = run_mpi(_fusable, 2, ir="off")
    assert res.ir is None


def test_invalid_ir_mode_rejected():
    with pytest.raises(RawUsageError, match="not a mode"):
        run_mpi(_fusable, 2, ir="banana")


def test_ir_incompatible_with_record_replay_fuzzing():
    with pytest.raises(RawUsageError, match="fuzz_seed"):
        run_mpi(_fusable, 2, ir="record", fuzz_seed=7)


def test_ir_passes_param_restricts_pipeline(clean_engine):
    res = run_mpi(_fusable, 4, ir="optimize", ir_passes=("overlap_waits",),
                  engine=clean_engine)
    assert [p.name for p in res.ir.passes] == ["overlap_waits"]
    # nothing to overlap here: the graph replays unchanged
    assert res.ir.optimized.op_counts() == res.ir.epoch.op_counts()

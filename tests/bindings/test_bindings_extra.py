"""Additional comparator-binding coverage: p2p, scans, layouts, edge cases."""

import numpy as np
import pytest

from repro.bindings import boost_mpi, mpl, rwth_mpi
from repro.mpi import MAX, SUM
from tests.conftest import runp


class TestBoostExtra:
    def test_p2p_object_roundtrip(self):
        def main(raw):
            comm = boost_mpi.communicator(raw)
            if raw.rank == 0:
                comm.send(1, 42, {"payload": [1, 2]})
                return None
            return comm.recv(0, 42)

        assert runp(main, 2).values[1] == {"payload": [1, 2]}

        # and nonblocking
        def main2(raw):
            comm = boost_mpi.communicator(raw)
            if raw.rank == 0:
                comm.isend(1, 1, "async").wait()
                return None
            payload, _ = comm.irecv(0, 1).wait()
            return payload

        assert runp(main2, 2).values[1] == "async"

    def test_scan(self):
        def main(raw):
            comm = boost_mpi.communicator(raw)
            return boost_mpi.scan(comm, raw.rank + 1, SUM)

        res = runp(main, 4)
        assert [v for v in res.values] == [1, 3, 6, 10]

    def test_scatter(self):
        def main(raw):
            comm = boost_mpi.communicator(raw)
            values = [f"v{i}" for i in range(raw.size)] if raw.rank == 0 else None
            return boost_mpi.scatter(comm, values, 0)

        assert runp(main, 3).values == ["v0", "v1", "v2"]

    def test_gatherv_requires_sizes(self):
        def main(raw):
            comm = boost_mpi.communicator(raw)
            try:
                boost_mpi.gatherv(comm, np.arange(raw.rank + 1), None, 0)
            except boost_mpi.BoostMpiException:
                return "needs sizes"

        # the root aborts the collective after rank 1 already sent its
        # contribution, so teardown is legitimately dirty: keep MPIsan off
        assert runp(main, 2, sanitize=False).values[0] == "needs sizes"

    def test_unmappable_op_rejected(self):
        def main(raw):
            comm = boost_mpi.communicator(raw)
            boost_mpi.all_reduce(comm, 1, "not callable")

        with pytest.raises(RuntimeError, match="cannot map"):
            runp(main, 1)

    def test_barrier_and_rank_size(self):
        def main(raw):
            comm = boost_mpi.communicator(raw)
            comm.barrier()
            return comm.rank(), comm.size()

        assert runp(main, 3).values[2] == (2, 3)


class TestMplExtra:
    def test_send_recv_with_layout(self):
        def main(raw):
            comm = mpl.communicator(raw)
            if raw.rank == 0:
                comm.send(np.arange(10), 1, 3, l=mpl.contiguous_layout(4))
                return None
            return comm.recv(0, 3).tolist()

        assert runp(main, 2).values[1] == [0, 1, 2, 3]

    def test_reductions_and_scans(self):
        def main(raw):
            comm = mpl.communicator(raw)
            return (
                comm.allreduce(SUM, raw.rank + 1),
                comm.reduce(MAX, 0, raw.rank),
                comm.scan(SUM, 1),
                comm.exscan(SUM, 1),
            )

        res = runp(main, 4)
        assert res.values[0] == (10, 3, 1, 0)

    def test_bcast_and_gather(self):
        def main(raw):
            comm = mpl.communicator(raw)
            value = comm.bcast(0, "cfg" if raw.rank == 0 else None)
            gathered = comm.gather(0, raw.rank * raw.rank)
            return value, gathered

        res = runp(main, 3)
        assert res.values[0] == ("cfg", [0, 1, 4])

    def test_empty_layout_in_alltoallv(self):
        def main(raw):
            comm = mpl.communicator(raw)
            p = raw.size
            sendls = mpl.layouts([mpl.empty_layout()] * p)
            recvls = mpl.layouts([mpl.empty_layout()] * p)
            out = comm.alltoallv(np.empty(0, dtype=np.int64), sendls, recvls)
            return len(out)

        assert all(v == 0 for v in runp(main, 3).values)

    def test_contiguous_layouts_helper(self):
        ls = mpl.contiguous_layouts_from_counts([1, 0, 3])
        assert len(ls) == 3
        assert [ls[i].extent() for i in range(3)] == [1, 0, 3]


class TestRwthExtra:
    def test_p2p_mirrors_c_interface(self):
        def main(raw):
            comm = rwth_mpi.Communicator(raw)
            if raw.rank == 0:
                comm.send(np.arange(3), 1, tag=9)
                return None
            return comm.receive(0, tag=9).tolist()

        assert runp(main, 2).values[1] == [0, 1, 2]

    def test_scan_and_reduce(self):
        def main(raw):
            comm = rwth_mpi.Communicator(raw)
            return comm.scan(raw.rank + 1, SUM), comm.reduce(1, SUM, root=1)

        res = runp(main, 3)
        assert res.values[1] == (3, 3)
        assert res.values[0][1] is None

    def test_all_to_all_fixed(self):
        def main(raw):
            comm = rwth_mpi.Communicator(raw)
            return comm.all_to_all([raw.rank * 10 + d for d in range(raw.size)])

        res = runp(main, 3)
        assert res.values[2] == [2, 12, 22]

    def test_explicit_recv_counts_skip_exchange(self):
        from repro.mpi import expect_calls

        def main(raw):
            comm = rwth_mpi.Communicator(raw)
            p = raw.size
            with expect_calls(raw, alltoallv=1):
                out = comm.all_to_all_varying(
                    np.full(p, raw.rank, dtype=np.int64), [1] * p, [1] * p
                )
            return out.tolist()

        assert runp(main, 3).values[0] == [0, 1, 2]

"""Comparator binding emulations: API behaviour and characteristic quirks."""

import operator

import numpy as np
import pytest

from repro.bindings import boost_mpi, mpl, rwth_mpi
from repro.mpi import SUM, CostModel, expect_calls, run_mpi
from tests.conftest import runp


# ---------------------------------------------------------------------------
# Boost.MPI
# ---------------------------------------------------------------------------

class TestBoost:
    def test_broadcast_and_gather(self):
        def main(raw):
            comm = boost_mpi.communicator(raw)
            value = boost_mpi.broadcast(comm, {"a": 1} if raw.rank == 0 else None, 0)
            gathered = boost_mpi.gather(comm, raw.rank, 0)
            return value, gathered

        res = runp(main, 3)
        assert res.values[0] == ({"a": 1}, [0, 1, 2])
        assert res.values[1] == ({"a": 1}, None)

    def test_functor_mapping_like_std_plus(self):
        def main(raw):
            comm = boost_mpi.communicator(raw)
            return boost_mpi.all_reduce(comm, raw.rank + 1, operator.add)

        assert runp(main, 4).values[0] == 10

    def test_lambda_reduction(self):
        def main(raw):
            comm = boost_mpi.communicator(raw)
            return boost_mpi.all_reduce(comm, raw.rank + 1, lambda a, b: a * b)

        assert runp(main, 3).values[0] == 6

    def test_no_alltoallv_binding(self):
        with pytest.raises(NotImplementedError, match="Alltoallv"):
            boost_mpi.all_to_allv()

    def test_implicit_serialization_charges_hidden_cost(self):
        """The Boost pitfall: objects serialize silently — and pay for it."""
        cm = CostModel(alpha=0.0, beta=0.0, overhead=0.0, ser_beta=1e-6)

        def main(raw):
            comm = boost_mpi.communicator(raw)
            if raw.rank == 0:
                comm.send(1, 0, {"blob": "x" * 50_000})
                return raw.clock.compute_seconds
            comm.recv(0, 0)
            return raw.clock.compute_seconds

        res = run_mpi(main, 2, cost_model=cm)
        assert res.values[0] > 0.01  # hidden serialization cost on the sender

    def test_arrays_skip_serialization(self):
        cm = CostModel(alpha=0.0, beta=0.0, overhead=0.0, ser_beta=1e-6)

        def main(raw):
            comm = boost_mpi.communicator(raw)
            if raw.rank == 0:
                comm.send(1, 0, np.zeros(50_000))
                return raw.clock.compute_seconds
            got = comm.recv(0, 0)
            return len(got)

        res = run_mpi(main, 2, cost_model=cm)
        assert res.values[0] == 0.0
        assert res.values[1] == 50_000

    def test_errors_become_boost_exception(self):
        def main(raw):
            comm = boost_mpi.communicator(raw)
            try:
                comm.send(99, 1, "x")
            except boost_mpi.BoostMpiException:
                return "caught"

        assert runp(main, 1).values[0] == "caught"

    def test_all_to_all_of_vectors(self):
        def main(raw):
            comm = boost_mpi.communicator(raw)
            out = boost_mpi.all_to_all(comm, [[raw.rank, d] for d in range(raw.size)])
            return out

        res = runp(main, 3)
        assert res.values[1] == [[0, 1], [1, 1], [2, 1]]


# ---------------------------------------------------------------------------
# MPL
# ---------------------------------------------------------------------------

class TestMpl:
    def test_layouts_extents(self):
        assert mpl.contiguous_layout(5).extent() == 5
        assert mpl.empty_layout().extent() == 0
        il = mpl.indexed_layout([(2, 0), (1, 5)])
        assert il.extent() == 3
        assert il.slice_of(np.arange(10)).tolist() == [0, 1, 5]

    def test_allgatherv_uses_alltoallw_internally(self):
        """The documented MPL behaviour Ghosh et al. measured (§II)."""
        def main(raw):
            comm = mpl.communicator(raw)
            v = np.arange(raw.rank + 1, dtype=np.int64)
            counts = [i + 1 for i in range(raw.size)]
            recvls = mpl.contiguous_layouts_from_counts(counts)
            with expect_calls(raw, alltoallw=1):
                out = comm.allgatherv(v, mpl.contiguous_layout(len(v)), recvls)
            return out.tolist()

        res = runp(main, 3)
        assert res.values[0] == [0, 0, 1, 0, 1, 2]

    def test_gatherv_requires_layouts_at_root(self):
        def main(raw):
            comm = mpl.communicator(raw)
            v = np.full(2, raw.rank, dtype=np.int64)
            recvls = mpl.contiguous_layouts_from_counts([2] * raw.size) \
                if raw.rank == 0 else None
            out = comm.gatherv(0, v, mpl.contiguous_layout(2), recvls)
            return out.tolist() if out is not None else None

        res = runp(main, 3)
        assert res.values[0] == [0, 0, 1, 1, 2, 2]

    def test_alltoallv_with_indexed_layouts(self):
        def main(raw):
            comm = mpl.communicator(raw)
            p = raw.size
            data = np.arange(p, dtype=np.int64) + 10 * raw.rank
            sendls = mpl.layouts([mpl.indexed_layout([(1, d)]) for d in range(p)])
            recvls = mpl.contiguous_layouts_from_counts([1] * p)
            return comm.alltoallv(data, sendls, recvls).tolist()

        res = runp(main, 3)
        assert res.values[1] == [1, 11, 21]

    def test_native_handle_not_exposed(self):
        def main(raw):
            comm = mpl.communicator(raw)
            return hasattr(comm, "raw")

        assert runp(main, 1).values[0] is False

    def test_is_slower_than_direct_alltoallv(self):
        cm = CostModel()

        def main(raw):
            comm = mpl.communicator(raw)
            p = raw.size
            data = np.zeros(100 * p, dtype=np.int64)
            counts = [100] * p
            t0 = raw.clock.now
            raw.alltoallv(data, counts, counts)
            t_direct = raw.clock.now - t0
            sendls = mpl.contiguous_layouts_from_counts(counts)
            recvls = mpl.contiguous_layouts_from_counts(counts)
            t0 = raw.clock.now
            comm.alltoallv(data, sendls, recvls)
            t_mpl = raw.clock.now - t0
            return t_mpl > t_direct

        assert all(run_mpi(main, 4, cost_model=cm).values)


# ---------------------------------------------------------------------------
# RWTH-MPI
# ---------------------------------------------------------------------------

class TestRwth:
    def test_all_gather_varying_with_counts(self):
        def main(raw):
            comm = rwth_mpi.Communicator(raw)
            counts = comm.all_gather(raw.rank + 1)
            v = np.full(raw.rank + 1, raw.rank, dtype=np.int64)
            return comm.all_gather_varying(v, counts).tolist()

        res = runp(main, 3)
        assert res.values[0] == [0, 1, 1, 2, 2, 2]

    def test_count_inference_needs_internal_communication(self):
        def main(raw):
            comm = rwth_mpi.Communicator(raw)
            v = np.full(2, raw.rank, dtype=np.int64)
            with expect_calls(raw, allgather=1, allgatherv=1):
                out = comm.all_gather_varying(v)
            return out.tolist()

        res = runp(main, 2)
        assert res.values[0] == [0, 0, 1, 1]

    def test_count_inference_requires_resizing(self):
        def main(raw):
            comm = rwth_mpi.Communicator(raw)
            try:
                comm.all_gather_varying(np.arange(2), resize=False)
            except ValueError:
                return "rejected"

        assert runp(main, 2).values[0] == "rejected"

    def test_all_to_all_varying_infers_recv_counts(self):
        def main(raw):
            comm = rwth_mpi.Communicator(raw)
            p = raw.size
            with expect_calls(raw, alltoall=1, alltoallv=1):
                out = comm.all_to_all_varying(
                    np.full(p, raw.rank, dtype=np.int64), [1] * p
                )
            return out.tolist()

        res = runp(main, 4)
        assert res.values[2] == [0, 1, 2, 3]

    def test_native_handle_exposed(self):
        def main(raw):
            comm = rwth_mpi.Communicator(raw)
            return comm.raw is raw

        assert runp(main, 1).values[0] is True

    def test_broadcast_and_reduce(self):
        def main(raw):
            comm = rwth_mpi.Communicator(raw)
            value = comm.broadcast([1, 2] if raw.rank == 0 else None)
            total = comm.all_reduce(raw.rank, SUM)
            return value, total

        res = runp(main, 4)
        assert res.values[3] == ([1, 2], 6)

"""Corpus-driven acceptance tests for reprolint.

``corpus/bad/`` holds one program per finding code; each declares the exact
findings it must produce via ``# expect: RPLxxx`` header lines (one line per
expected finding).  ``corpus/clean/`` holds realistic programs that must
produce *zero* findings — the no-false-positives contract.
"""

import re
from pathlib import Path

import pytest

from repro.analysis import CODES, lint_file

CORPUS = Path(__file__).parent / "corpus"
BAD = sorted((CORPUS / "bad").glob("*.py"))
CLEAN = sorted((CORPUS / "clean").glob("*.py"))

_EXPECT = re.compile(r"^#\s*expect:\s*(RPL\d{3})\s*$", re.MULTILINE)


def expected_codes(path: Path):
    return sorted(_EXPECT.findall(path.read_text(encoding="utf-8")))


def test_corpus_is_populated():
    assert len(BAD) >= 8
    assert len(CLEAN) >= 6


def test_every_layer1_and_layer2_code_is_covered():
    covered = {code for path in BAD for code in expected_codes(path)}
    checkable = set(CODES) - {"RPL000"}  # RPL000 is tested via lint_source
    assert checkable <= covered, f"codes without a corpus program: {sorted(checkable - covered)}"


@pytest.mark.parametrize("path", BAD, ids=lambda p: p.stem)
def test_bad_program_yields_exactly_the_expected_codes(path):
    expected = expected_codes(path)
    assert expected, f"{path.name} has no '# expect:' header"
    found = sorted(f.code for f in lint_file(path))
    assert found == expected, "\n".join(
        f.render() for f in lint_file(path)
    )


@pytest.mark.parametrize("path", CLEAN, ids=lambda p: p.stem)
def test_clean_program_yields_no_findings(path):
    findings = lint_file(path)
    assert findings == [], "\n".join(f.render() for f in findings)


@pytest.mark.parametrize("path", BAD, ids=lambda p: p.stem)
def test_findings_carry_real_locations_and_registered_codes(path):
    for f in lint_file(path):
        assert f.code in CODES
        assert f.path == str(path)
        assert f.line > 0

"""The repository's own communication code must stay reprolint-clean.

This is the in-tree mirror of the CI reprolint job: examples, apps, and
plugins are linted with both layers enabled.  A finding here means either a
real defect slipped in or the linter grew a false positive — both block.
"""

from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]

TREES = [
    REPO / "examples",
    REPO / "src" / "repro" / "apps",
    REPO / "src" / "repro" / "plugins",
]


@pytest.mark.parametrize("tree", TREES, ids=lambda p: p.name)
def test_tree_is_lint_clean(lint_clean, tree):
    assert tree.is_dir(), tree
    lint_clean(tree)

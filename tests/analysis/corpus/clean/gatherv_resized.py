"""gatherv with an explicitly resizable out-container: no RPL007."""

from repro.core.named_params import recv_buf, root, send_buf
from repro.core.resize import resize_to_fit


def main(comm):
    out = []
    comm.gatherv(send_buf([comm.rank] * (comm.rank + 1)),
                 recv_buf(out, resize=resize_to_fit), root(0))
    return out

"""A justified suppression: the request's completion is delegated to the
runtime sanitizer in this fire-and-forget probe, so RPL005 is disabled at
the call site (and would be reported without the comment)."""

from repro.core.named_params import destination, send_buf


def fire_and_forget(comm):
    # completion is audited by MPIsan at finalize; latency probe only
    comm.isend(send_buf([comm.rank]),  # reprolint: disable=RPL005
               destination((comm.rank + 1) % comm.size))

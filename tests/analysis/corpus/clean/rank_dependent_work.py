"""Rank-dependent *computation* with rank-uniform *communication*."""

import operator

from repro.core.named_params import op, root, send_buf, send_recv_buf


def main(comm):
    if comm.rank == 0:
        chunk = [1.0] * 8
    else:
        chunk = [0.0] * 8
    comm.bcast(send_recv_buf(chunk), root(0))
    for _ in range(3):
        partial = sum(chunk) * comm.rank
        chunk[0] = comm.allreduce_single(send_buf(partial),
                                         op(operator.add))
    return chunk

"""Non-blocking traffic whose requests complete on every path."""

from repro.core.named_params import destination, send_buf, source


def main(comm, flag):
    req = comm.irecv(source((comm.rank - 1) % comm.size))
    out = comm.isend(send_buf([comm.rank]),
                     destination((comm.rank + 1) % comm.size))
    out.wait()
    if flag:
        value = req.wait()
    else:
        value = req.wait()
    return value

"""The canonical quickstart shape: bcast, then an allreduce."""

import operator

from repro.core.named_params import op, root, send_buf, send_recv_buf


def main(comm):
    params = [1.0, 0.5, 0.25]
    comm.bcast(send_recv_buf(params), root(0))
    total = comm.allreduce(send_buf([float(comm.rank)]), op(operator.add))
    return params, total

"""A ring exchange: every send has exactly one matching recv."""

from repro.core.named_params import destination, send_buf, source, tag


def main(comm):
    right = (comm.rank + 1) % comm.size
    left = (comm.rank - 1) % comm.size
    comm.send(send_buf([comm.rank]), destination(right), tag(3))
    return comm.recv(source(left), tag(3))

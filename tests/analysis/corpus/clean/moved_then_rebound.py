"""move() is fine as long as the name is rebound before its next read."""

import operator

from repro.core.buffers import move
from repro.core.named_params import op, send_buf


def main(comm):
    data = [float(comm.rank)] * 4
    data = comm.allreduce(send_buf(move(data)), op(operator.add))
    return data

# expect: RPL008
"""A bare literal where a named-parameter factory is required."""

from repro.core.named_params import root


def main(comm):
    return comm.bcast_single([1, 2, 3], root(0))

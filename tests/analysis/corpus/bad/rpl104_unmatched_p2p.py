# expect: RPL104
# expect: RPL104
"""Send with tag 7, recv expecting tag 8: neither can ever complete."""

from repro.core.named_params import destination, send_buf, source, tag


def main(comm):
    if comm.rank == 0:
        comm.send(send_buf([1, 2, 3]), destination(1), tag(7))
    elif comm.rank == 1:
        return comm.recv(source(0), tag(8))
    return None

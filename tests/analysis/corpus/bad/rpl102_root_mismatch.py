# expect: RPL102
"""Every rank names itself as the bcast root."""

from repro.core.named_params import root, send_recv_buf


def main(comm):
    values = [0.0] * 4
    comm.bcast(send_recv_buf(values), root(comm.rank))
    return values

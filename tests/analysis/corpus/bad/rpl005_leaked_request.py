# expect: RPL005
# expect: RPL005
"""Non-blocking requests that are never (or not always) completed."""

from repro.core.named_params import destination, send_buf, source


def discarded(comm):
    # the NonBlockingResult is dropped on the floor
    comm.isend(send_buf([comm.rank]), destination((comm.rank + 1) % comm.size))
    req = comm.irecv(source((comm.rank - 1) % comm.size))
    return req.wait()


def early_return(comm, flag):
    req = comm.irecv(source((comm.rank - 1) % comm.size))
    comm.isend(send_buf([comm.rank]),
               destination((comm.rank + 1) % comm.size)).wait()
    if flag:
        return None  # req is still pending on this path
    return req.wait()

# expect: RPL103
"""Rank 0 reduces with SUM while the rest use PROD."""

import operator

from repro.core.named_params import op, send_buf


def main(comm):
    if comm.rank == 0:
        return comm.allreduce(send_buf([1.0]), op(operator.add))
    return comm.allreduce(send_buf([1.0]), op(operator.mul))

# expect: RPL101
"""Rank 0 enters a bcast while the others are in barrier: deadlock."""

from repro.core.named_params import root, send_recv_buf


def main(comm):
    if comm.rank == 0:
        comm.bcast(send_recv_buf([1.0, 2.0]), root(0))
    else:
        comm.barrier()

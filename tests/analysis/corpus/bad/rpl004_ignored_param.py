# expect: RPL004
"""send_count alongside send_recv_buf: the in-place variant would ignore it."""

from repro.core.named_params import send_count, send_recv_buf


def main(comm):
    buf = [0.0] * comm.size
    buf[comm.rank] = float(comm.rank)
    comm.allgather(send_recv_buf(buf), send_count(1))

# expect: RPL001
"""gather() without its required send_buf: MissingParameterError, statically."""

from repro.core.named_params import root


def main(comm):
    return comm.gather(root(0))

# expect: RPL007
"""A no_resize recv container combined with library-inferred counts."""

from repro.core.named_params import recv_buf, root, send_buf


def main(comm):
    out = [0] * 4  # wrong whenever ranks contribute != 4/size elements
    comm.gatherv(send_buf([comm.rank] * (comm.rank + 1)), recv_buf(out),
                 root(0))
    return out

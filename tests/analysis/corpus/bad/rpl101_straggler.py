# expect: RPL101
"""The last rank returns before the collective: the others wait forever."""

import operator

from repro.core.named_params import op, send_buf


def main(comm):
    if comm.rank == comm.size - 1:
        return 0.0
    return comm.allreduce_single(send_buf(float(comm.rank)),
                                 op(operator.add))

# expect: RPL002
"""barrier() takes no parameters at all."""

from repro.core.named_params import send_buf


def main(comm):
    comm.barrier(send_buf([1, 2, 3]))

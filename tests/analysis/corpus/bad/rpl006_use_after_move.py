# expect: RPL006
"""A container read again after being move()-d into a call."""

import operator

from repro.core.buffers import move
from repro.core.named_params import op, send_buf


def main(comm):
    data = [float(comm.rank)] * 4
    result = comm.allreduce(send_buf(move(data)), op(operator.add))
    return len(data), result  # data was moved: owned by the call now

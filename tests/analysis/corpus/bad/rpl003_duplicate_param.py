# expect: RPL003
"""The same named parameter passed twice."""

from repro.core.named_params import send_buf


def main(comm):
    return comm.allgatherv(send_buf([comm.rank]), send_buf([comm.rank * 2]))

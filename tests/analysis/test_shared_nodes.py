"""The SPMD checker and the IR share ONE event model (no drift possible).

Before the IR landed, ``analysis/spmd.py`` owned its own ``Coll``/``P2P``/
``Loop`` dataclasses.  They now live in ``repro.mpi.ir.nodes`` and the
checker imports them, so a recorded epoch lowers (via
``Epoch.static_events``) into exactly the event vocabulary reprolint
reasons about.  These tests pin the identity and re-pin the RPL101-104
corpus findings so the extraction provably changed nothing.
"""

from __future__ import annotations

from pathlib import Path

import pytest

import repro.analysis.spmd as spmd
import repro.mpi.ir.nodes as nodes
from repro.analysis import lint_file
from repro.mpi import run_mpi
from repro.mpi.ops import SUM

CORPUS_BAD = Path(__file__).parent / "corpus" / "bad"
RPL_FILES = sorted(CORPUS_BAD.glob("rpl10[1-4]_*.py"))


def test_event_classes_are_the_same_objects():
    assert spmd.Coll is nodes.Coll
    assert spmd.P2P is nodes.P2P
    assert spmd.Loop is nodes.Loop
    assert spmd.ANY is nodes.ANY
    assert spmd.Event is nodes.Event


def test_recorded_epochs_speak_the_checker_vocabulary():
    """Dynamic recordings lower to instances of the checker's own classes —
    the unification is usable, not just nominal."""
    def program(raw):
        total = raw.allreduce(raw.rank, SUM)
        if raw.rank == 0:
            raw.send(total, 1, tag=7)
        if raw.rank == 1:
            raw.recv(0, 7)
        return total

    res = run_mpi(program, 2, ir="record")
    events = res.ir.epoch.static_events(0)
    assert isinstance(events[0], spmd.Coll)
    assert isinstance(events[1], spmd.P2P)
    assert events[1].key() == ("send", 1, 7)


# -- regression pin: the extraction left the SPMD checker untouched --------

EXPECTED = {
    "rpl101_collective_order.py": ["RPL101"],
    "rpl101_straggler.py": ["RPL101"],
    "rpl102_root_mismatch.py": ["RPL102"],
    "rpl103_op_mismatch.py": ["RPL103"],
    "rpl104_unmatched_p2p.py": ["RPL104", "RPL104"],
}


def test_spmd_corpus_inventory_is_complete():
    assert sorted(p.name for p in RPL_FILES) == sorted(EXPECTED)


@pytest.mark.parametrize("path", RPL_FILES, ids=lambda p: p.stem)
def test_spmd_findings_unchanged_after_node_extraction(path):
    found = sorted(f.code for f in lint_file(path)
                   if f.code in ("RPL101", "RPL102", "RPL103", "RPL104"))
    assert found == EXPECTED[path.name]

"""Unit tests for the reprolint driver: suppressions, the CLI, the pytest
fixture, RPL000 handling, and the conservatism guarantees (what the linter
must *not* report)."""

import json

import pytest

from repro.analysis import lint_paths, lint_source
from repro.analysis.__main__ import main as cli_main
from repro.analysis.suppress import collect_suppressions


def codes(source, **kw):
    return [f.code for f in lint_source(source, **kw)]


class TestSuppressions:
    SRC = ("def main(comm):\n"
           "    comm.barrier(send_buf([1]))"
           "  # reprolint: disable=RPL002\n")

    def test_line_suppression(self):
        assert codes(self.SRC) == []

    def test_line_suppression_is_per_code(self):
        src = self.SRC.replace("RPL002", "RPL008")
        assert codes(src) == ["RPL002"]

    def test_all_keyword(self):
        src = self.SRC.replace("disable=RPL002", "disable=all")
        assert codes(src) == []

    def test_file_wide_suppression(self):
        src = ("# reprolint: disable-file=RPL002\n"
               "def a(comm):\n"
               "    comm.barrier(send_buf([1]))\n"
               "def b(comm):\n"
               "    comm.barrier(send_buf([2]))\n")
        assert codes(src) == []

    def test_marker_inside_string_is_not_a_suppression(self):
        src = ('MSG = "# reprolint: disable=RPL002"\n'
               "def main(comm):\n"
               "    comm.barrier(send_buf([1]))\n")
        assert codes(src) == ["RPL002"]

    def test_collect_parses_comma_list(self):
        sup = collect_suppressions(
            "x = 1  # reprolint: disable=RPL001, RPL005\n")
        assert sup.is_suppressed("RPL001", 1)
        assert sup.is_suppressed("RPL005", 1)
        assert not sup.is_suppressed("RPL002", 1)
        assert not sup.is_suppressed("RPL001", 2)


class TestDriver:
    def test_syntax_error_is_rpl000(self):
        findings = lint_source("def broken(:\n", "x.py")
        assert [f.code for f in findings] == ["RPL000"]
        assert findings[0].path == "x.py"

    def test_no_spmd_flag_skips_layer2(self):
        src = ("def main(comm):\n"
               "    if comm.rank == 0:\n"
               "        comm.barrier()\n")
        assert codes(src) == ["RPL101"]
        assert codes(src, spmd=False) == []

    def test_findings_are_sorted_by_location(self):
        src = ("def main(comm):\n"
               "    comm.barrier(send_buf([2]))\n"
               "    comm.gather(root(0))\n")
        findings = lint_source(src)
        assert [f.line for f in findings] == sorted(f.line for f in findings)

    def test_lint_paths_recurses_directories(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "mod.py").write_text(
            "def main(comm):\n    comm.gather(root(0))\n")
        findings = lint_paths([tmp_path])
        assert [f.code for f in findings] == ["RPL001"]


class TestConservatism:
    """Constructs the linter must stay silent on."""

    def test_unknown_argument_disables_missing_check(self):
        src = ("def main(comm, params):\n"
               "    comm.gather(*params)\n")
        assert codes(src) == []

    def test_raw_receiver_is_never_linted(self):
        src = ("def main(raw):\n"
               "    raw.send([1], 0, 9)\n"
               "    raw.barrier()\n")
        assert codes(src) == []

    def test_ambiguous_short_name_needs_comm_evidence(self):
        src = ("def main(sock):\n"
               "    sock.send(b'x')\n")
        assert codes(src) == []

    def test_comm_escape_disables_spmd(self):
        src = ("def main(comm):\n"
               "    if comm.rank == 0:\n"
               "        helper(comm)\n"
               "    comm.barrier()\n")
        assert codes(src) == []

    def test_undecidable_branch_with_equal_comm_is_fine(self):
        src = ("def main(comm, flag):\n"
               "    if flag:\n"
               "        comm.barrier()\n"
               "    else:\n"
               "        comm.barrier()\n")
        assert codes(src) == []

    def test_data_dependent_loop_gives_up_not_reports(self):
        src = ("def main(comm, items):\n"
               "    for _ in items:\n"
               "        if comm.rank == 0:\n"
               "            comm.barrier()\n")
        # rank-dependent comm inside an unknown-trip loop: GiveUp, silent
        assert codes(src) == []


class TestCLI:
    def test_exit_zero_on_clean(self, tmp_path, capsys):
        target = tmp_path / "ok.py"
        target.write_text("def main(comm):\n    comm.barrier()\n")
        assert cli_main([str(target)]) == 0
        assert capsys.readouterr().out == ""

    def test_exit_one_and_renders_findings(self, tmp_path, capsys):
        target = tmp_path / "bad.py"
        target.write_text("def main(comm):\n    comm.gather(root(0))\n")
        assert cli_main([str(target)]) == 1
        out = capsys.readouterr().out
        assert "RPL001" in out and "bad.py:2" in out

    def test_json_format(self, tmp_path, capsys):
        target = tmp_path / "bad.py"
        target.write_text("def main(comm):\n    comm.gather(root(0))\n")
        assert cli_main(["--format", "json", str(target)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["code"] == "RPL001"
        assert payload[0]["line"] == 2

    def test_list_codes(self, capsys):
        assert cli_main(["--list-codes"]) == 0
        out = capsys.readouterr().out
        assert "RPL001" in out and "RPL104" in out

    def test_no_paths_is_usage_error(self, capsys):
        assert cli_main([]) == 2


class TestFixture:
    def test_lint_clean_fixture_passes_on_clean_source(self, lint_clean):
        lint_clean("def main(comm):\n    comm.barrier()\n")

    def test_lint_clean_fixture_raises_with_findings(self, lint_clean):
        with pytest.raises(AssertionError, match="RPL001"):
            lint_clean("def main(comm):\n    comm.gather(root(0))\n")

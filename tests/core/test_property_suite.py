"""Property-based suite over the wrapped (KaMPIng-level) operations.

Invariants checked on random inputs:

- wrapped collectives agree with straightforward sequential computations;
- the wrapped layer and the raw layer always produce identical data;
- out-parameters are consistent with the returned buffers;
- round-trips (scatter∘gather, split-then-collect) are the identity.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

import pytest

# hypothesis suites are the heavyweight simulation tests: slow lane
pytestmark = pytest.mark.slow

from repro.core import (
    op,
    recv_counts_out,
    recv_displs_out,
    root,
    send_buf,
    send_counts,
)
from repro.mpi import MAX, MIN, SUM
from tests.conftest import runk

_settings = settings(max_examples=20, deadline=None)

block_lists = st.lists(
    st.lists(st.integers(-10**6, 10**6), min_size=0, max_size=6),
    min_size=1, max_size=5,
)


@_settings
@given(blocks=block_lists)
def test_allgatherv_equals_concatenation_and_outputs_consistent(blocks):
    p = len(blocks)

    def main(comm):
        local = np.asarray(blocks[comm.rank], dtype=np.int64)
        buf, counts, displs = comm.allgatherv(
            send_buf(local), recv_counts_out(), recv_displs_out()
        )
        return np.asarray(buf).tolist(), counts, displs

    res = runk(main, p)
    expected = [x for b in blocks for x in b]
    for buf, counts, displs in res.values:
        assert buf == expected
        assert counts == [len(b) for b in blocks]
        assert displs == [sum(len(b) for b in blocks[:i]) for i in range(p)]
        # out-parameters must describe the buffer exactly
        assert sum(counts) == len(buf)


@_settings
@given(
    p=st.integers(1, 5),
    seed=st.integers(0, 2**31),
)
def test_wrapped_equals_raw_alltoallv(p, seed):
    rng = np.random.default_rng(seed)
    counts = rng.integers(0, 4, size=(p, p))

    def main(comm):
        r = comm.rank
        data = np.concatenate(
            [np.full(counts[r][d], r * 100 + d, dtype=np.int64)
             for d in range(p)]
        ) if counts[r].sum() else np.empty(0, dtype=np.int64)
        wrapped = comm.alltoallv(send_buf(data), send_counts(counts[r].tolist()))
        raw = comm.raw.alltoallv(data, counts[r].tolist(), counts[:, r].tolist())
        return np.asarray(wrapped).tolist(), np.asarray(raw).tolist()

    for wrapped, raw in runk(main, p).values:
        assert wrapped == raw


@_settings
@given(
    p=st.integers(1, 5),
    values=st.lists(st.integers(-10**9, 10**9), min_size=1, max_size=10),
)
def test_reductions_agree_with_python(p, values):
    def main(comm):
        mine = values[comm.rank % len(values)]
        return (
            comm.allreduce_single(send_buf(mine), op(SUM)),
            comm.allreduce_single(send_buf(mine), op(MAX)),
            comm.allreduce_single(send_buf(mine), op(MIN)),
        )

    picked = [values[r % len(values)] for r in range(p)]
    res = runk(main, p)
    assert res.values[0] == (sum(picked), max(picked), min(picked))


@_settings
@given(
    p=st.integers(1, 5),
    seed=st.integers(0, 2**31),
)
def test_scatter_gather_identity(p, seed):
    rng = np.random.default_rng(seed)
    data = rng.integers(-100, 100, size=3 * p)

    def main(comm):
        if comm.rank == 0:
            block = comm.scatter(send_buf(data), root(0))
        else:
            block = comm.scatter(root(0))
        back = comm.gather(send_buf(np.asarray(block)), root(0))
        return np.asarray(back).tolist() if back is not None else None

    assert runk(main, p).values[0] == data.tolist()


@_settings
@given(
    p=st.integers(1, 6),
    seed=st.integers(0, 2**31),
)
def test_scan_exscan_relationship(p, seed):
    rng = np.random.default_rng(seed)
    values = rng.integers(-50, 50, size=p)

    def main(comm):
        mine = int(values[comm.rank])
        inc = comm.scan_single(send_buf(mine), op(SUM))
        exc = comm.exscan_single(send_buf(mine), op(SUM))
        return inc, exc, mine

    res = runk(main, p)
    for inc, exc, mine in res.values:
        assert inc == exc + mine  # the defining identity


@_settings
@given(
    p=st.integers(2, 6),
    seed=st.integers(0, 2**31),
)
def test_split_preserves_collective_results(p, seed):
    """A collective on a split communicator equals the per-group computation."""
    rng = np.random.default_rng(seed)
    colors = rng.integers(0, 2, size=p)

    def main(comm):
        sub = comm.split(int(colors[comm.rank]))
        return sub.allreduce_single(send_buf(comm.rank), op(SUM))

    res = runk(main, p)
    for r in range(p):
        group = [i for i in range(p) if colors[i] == colors[r]]
        assert res.values[r] == sum(group)


@_settings
@given(blocks=block_lists)
def test_gatherv_root_invariance(blocks):
    """Every root sees the same concatenation."""
    p = len(blocks)

    def main(comm):
        local = np.asarray(blocks[comm.rank], dtype=np.int64)
        outs = []
        for rt in range(p):
            out = comm.gatherv(send_buf(local), root(rt))
            outs.append(np.asarray(out).tolist() if out is not None else None)
        return outs

    res = runk(main, p)
    expected = [x for b in blocks for x in b]
    for rt in range(p):
        assert res.values[rt][rt] == expected

"""The paper's running example: allgatherv at every abstraction level.

Covers Fig. 1 (one-liner and fully-tuned call), Fig. 3 (gradual migration),
and the §III-A inference semantics verified through the PMPI counters.
"""

import numpy as np
import pytest

from repro.core import (
    grow_only,
    move,
    recv_buf,
    recv_counts,
    recv_counts_out,
    recv_displs,
    recv_displs_out,
    resize_to_fit,
    send_buf,
    send_count,
    send_recv_buf,
)
from repro.mpi import expect_calls
from tests.conftest import SMALL_P, runk


def _expected(p):
    return [x for i in range(p) for x in range(i + 1)]


@pytest.mark.parametrize("p", SMALL_P)
def test_one_liner(p):
    """Fig. 1 (1): everything inferred."""
    def main(comm):
        v = np.arange(comm.rank + 1, dtype=np.int64)
        return comm.allgatherv(send_buf(v)).tolist()

    assert all(v == _expected(p) for v in runk(main, p).values)


def test_one_liner_issues_exactly_allgather_plus_allgatherv():
    def main(comm):
        v = np.arange(comm.rank + 1, dtype=np.int64)
        with expect_calls(comm.raw, allgather=1, allgatherv=1):
            comm.allgatherv(send_buf(v))
        return True

    assert all(runk(main, 4).values)


def test_explicit_counts_issue_single_raw_call():
    def main(comm):
        v = np.arange(comm.rank + 1, dtype=np.int64)
        counts = [i + 1 for i in range(comm.size)]
        with expect_calls(comm.raw, allgatherv=1):
            out = comm.allgatherv(send_buf(v), recv_counts(counts))
        return out.tolist()

    assert all(v == _expected(4) for v in runk(main, 4).values)


def test_fully_tuned_call_fig1_style():
    """Fig. 1 (2): moved-in counts container, displs requested, resize policy."""
    def main(comm):
        v = np.arange(comm.rank + 1, dtype=np.int64)
        rc = []
        result = comm.allgatherv(
            send_buf(v),
            recv_counts_out(move(rc), resize=resize_to_fit),
            recv_displs_out(),
        )
        buf, counts, displs = result
        return buf.tolist(), counts, displs

    res = runk(main, 4)
    buf, counts, displs = res.values[0]
    assert buf == _expected(4)
    assert counts == [1, 2, 3, 4]
    assert displs == [0, 1, 3, 6]


def test_migration_v1_all_explicit():
    """Fig. 3 version 1: everything computed by the caller."""
    def main(comm):
        p = comm.size
        v = np.arange(comm.rank + 1, dtype=np.int64)
        rc = np.zeros(p, dtype=np.int64)
        rc[comm.rank] = len(v)
        comm.allgather(send_recv_buf(rc))
        rd = np.concatenate(([0], np.cumsum(rc)[:-1]))
        v_glob = np.zeros(int(rc.sum()), dtype=np.int64)
        with expect_calls(comm.raw, allgatherv=1):
            comm.allgatherv(send_buf(v), recv_buf(v_glob),
                            recv_counts(rc), recv_displs(rd.tolist()))
        return v_glob.tolist()

    assert all(v == _expected(4) for v in runk(main, 4).values)


def test_migration_v2_displs_implicit():
    """Fig. 3 version 2: counts given, displacements computed, resize_to_fit."""
    def main(comm):
        p = comm.size
        v = np.arange(comm.rank + 1, dtype=np.int64)
        rc = np.zeros(p, dtype=np.int64)
        rc[comm.rank] = len(v)
        comm.allgather(send_recv_buf(rc))
        v_glob = []
        comm.allgatherv(send_buf(v), recv_buf(v_glob, resize=resize_to_fit),
                        recv_counts(rc))
        return v_glob

    assert all(v == _expected(4) for v in runk(main, 4).values)


@pytest.mark.parametrize("p", SMALL_P)
def test_migration_v3_one_liner_returns_by_value(p):
    def main(comm):
        v = np.arange(comm.rank + 1, dtype=np.int64)
        v_glob = comm.allgatherv(send_buf(v))
        return isinstance(v_glob, np.ndarray), v_glob.tolist()

    for is_array, got in runk(main, p).values:
        assert is_array and got == _expected(p)


def test_referencing_recv_buf_returns_none():
    def main(comm):
        v = np.arange(comm.rank + 1, dtype=np.int64)
        target = np.zeros(10, dtype=np.int64)
        ret = comm.allgatherv(send_buf(v), recv_buf(target))
        return ret, target.tolist()

    res = runk(main, 4)
    ret, target = res.values[0]
    assert ret is None
    assert target == _expected(4)


def test_moved_recv_buf_storage_reused():
    def main(comm):
        v = np.arange(comm.rank + 1, dtype=np.int64)
        storage = np.zeros(10, dtype=np.int64)
        out = comm.allgatherv(send_buf(v), recv_buf(move(storage)))
        # the same storage backs the result (move semantics, no copy)
        return out.base is storage or out is storage, out.tolist()

    reused, got = runk(main, 4).values[0]
    assert reused and got == _expected(4)


def test_custom_displs_with_gaps():
    """Explicit displacements may leave gaps; gaps are zero-filled."""
    def main(comm):
        v = np.full(1, comm.rank + 1, dtype=np.int64)
        counts = [1] * comm.size
        displs = [2 * i for i in range(comm.size)]
        return comm.allgatherv(
            send_buf(v), recv_counts(counts), recv_displs(displs)
        ).tolist()

    res = runk(main, 3)
    assert res.values[0] == [1, 0, 2, 0, 3]


def test_send_count_limits_contribution():
    def main(comm):
        v = np.arange(5, dtype=np.int64) + 10 * comm.rank
        return comm.allgatherv(send_buf(v), send_count(2)).tolist()

    res = runk(main, 3)
    assert res.values[0] == [0, 1, 10, 11, 20, 21]


def test_list_send_buf_returns_list():
    def main(comm):
        return comm.allgatherv(send_buf([comm.rank] * (comm.rank + 1)))

    res = runk(main, 3)
    assert res.values[0] == [0, 1, 1, 2, 2, 2]
    assert isinstance(res.values[0], list)


def test_recv_counts_out_into_referencing_array():
    def main(comm):
        v = np.arange(comm.rank + 1, dtype=np.int64)
        counts = np.zeros(comm.size, dtype=np.int64)
        buf = comm.allgatherv(send_buf(v), recv_counts_out(counts))
        return buf.tolist(), counts.tolist()

    buf, counts = runk(main, 4).values[0]
    assert buf == _expected(4)
    assert counts == [1, 2, 3, 4]


def test_grow_only_list_grows_but_never_shrinks():
    def main(comm):
        v = np.arange(comm.rank + 1, dtype=np.int64)
        big = [-1] * 50
        comm.allgatherv(send_buf(v), recv_buf(big, resize=grow_only))
        return len(big), big[: 10]

    length, head = runk(main, 4).values[0]
    assert length == 50
    assert head == _expected(4)

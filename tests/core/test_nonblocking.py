"""Non-blocking safety (§III-E, Fig. 6): ownership, poisoning, request pools."""

import numpy as np
import pytest

from repro.core import (
    BoundedRequestPool,
    RequestPool,
    destination,
    move,
    recv_count,
    send_buf,
    send_buf_out,
    source,
)
from tests.conftest import runk


def test_fig6_isend_move_and_rereturn():
    """Moved-in send buffer is re-returned by wait() after completion."""
    def main(comm):
        if comm.rank == 0:
            v = np.array([1, 2, 3])
            r1 = comm.isend(send_buf_out(move(v)), destination(1))
            back = r1.wait()
            back[0] = 42  # usable (and writable) again after wait()
            return back.tolist()
        got = comm.recv(source(0))
        return got.tolist()

    res = runk(main, 2)
    assert res.values[0] == [42, 2, 3]
    assert res.values[1] == [1, 2, 3]


def test_fig6_irecv_data_only_after_wait():
    def main(comm):
        if comm.rank == 0:
            comm.send(send_buf(np.arange(42)), destination(1))
            return None
        r2 = comm.irecv(recv_count(42), source(0))
        data = r2.wait()
        return len(data)

    assert runk(main, 2).values[1] == 42


def test_send_buffer_poisoned_while_in_flight():
    """Writing to an in-flight send buffer raises immediately."""
    def main(comm):
        if comm.rank == 0:
            v = np.array([7, 8, 9])
            req = comm.isend(send_buf(v), destination(1))
            try:
                v[0] = 0
                poisoned = False
            except ValueError:
                poisoned = True
            req.wait()
            v[0] = 0  # restored after completion
            return poisoned, v.tolist()
        comm.recv(source(0))
        return None

    poisoned, after = runk(main, 2).values[0]
    assert poisoned and after == [0, 8, 9]


def test_test_returns_none_until_complete():
    def main(comm):
        if comm.rank == 0:
            req = comm.irecv(source(1))
            first = req.test()  # nothing sent yet
            comm.send(send_buf(1), destination(1))
            while True:
                value = req.test()
                if value is not None:
                    return first, value
        comm.recv(source(0))
        comm.send(send_buf("done"), destination(0))
        return None

    first, value = runk(main, 2).values[0]
    assert first is None and value == "done"


def test_held_buffer_blocked_while_pending():
    from repro.core import InFlightAccessError

    def main(comm):
        if comm.rank == 0:
            v = np.arange(3)
            req = comm.issend(send_buf_out(move(v)), destination(1))
            try:
                req.held_buffer()
                return "accessible"
            except InFlightAccessError:
                pass
            comm.send(send_buf(0), destination(1), )
            req.wait()
            return "guarded"
        comm.recv(source(0))  # matches the issend
        comm.recv(source(0))
        return None

    assert runk(main, 2).values[0] == "guarded"


def test_truncation_check_against_recv_count():
    from repro.core import TruncationError

    def main(comm):
        if comm.rank == 0:
            comm.send(send_buf(np.arange(10)), destination(1))
            return None
        try:
            comm.recv(source(0), recv_count(5))
        except TruncationError:
            return "truncated"

    assert runk(main, 2).values[1] == "truncated"


def test_request_pool_wait_all_in_order():
    def main(comm):
        p = comm.size
        pool = RequestPool()
        for offset in range(1, p):
            pool.submit(comm.isend(send_buf(comm.rank),
                                   destination((comm.rank + offset) % p)))
        recvs = RequestPool()
        for _ in range(p - 1):
            recvs.submit(comm.irecv())
        pool.wait_all()
        values = recvs.wait_all()
        assert len(pool) == 0
        return sorted(v for v in values)

    res = runk(main, 4)
    for r in range(4):
        assert res.values[r] == sorted(set(range(4)) - {r})


def test_request_pool_test_all():
    def main(comm):
        pool = RequestPool()
        pool.submit(comm.irecv(source(0), recv_count(1)))
        ready_before = pool.test_all()
        comm.send(send_buf(5), destination(comm.rank))
        pool.wait_all()
        return ready_before

    assert runk(main, 1).values[0] is False


def test_bounded_pool_displaces_oldest():
    def main(comm):
        pool = BoundedRequestPool(slots=2)
        for i in range(4):
            comm.send(send_buf(i), destination(comm.rank), )
        for _ in range(4):
            pool.submit(comm.irecv(source(comm.rank)))
        assert len(pool) == 2
        remaining = pool.wait_all()
        return len(pool.displaced), len(remaining)

    displaced, remaining = runk(main, 1).values[0]
    assert displaced == 2 and remaining == 2


def test_bounded_pool_needs_positive_slots():
    with pytest.raises(ValueError):
        BoundedRequestPool(0)


# ---------------------------------------------------------------------------
# Exception safety: pool error paths (MPIsan PR)
# ---------------------------------------------------------------------------

from repro.core.buffers import Poison
from repro.core.nonblocking import NonBlockingResult
from repro.mpi.requests import RawRequest


class _StubRequest(RawRequest):
    """Scriptable raw request for pool error-path tests."""

    def __init__(self, value=None, error=None, ready=True):
        self.value, self.error, self.ready = value, error, ready

    def wait(self):
        if self.error is not None:
            raise self.error
        return self.value

    def test(self):
        if not self.ready:
            return False, None
        if self.error is not None:
            raise self.error
        return True, self.value


def _result(value=None, error=None, ready=True):
    return NonBlockingResult(_StubRequest(value, error, ready))


def test_wait_all_drains_completed_after_failure():
    pool = RequestPool()
    pool.submit(_result(value=1))
    failed = pool.submit(_result(error=RuntimeError("rank died")))
    pool.submit(_result(value=3))
    with pytest.raises(RuntimeError, match="rank died"):
        pool.wait_all()
    # completed values survive the failure instead of being lost...
    assert pool.completed == [1, 3]
    # ...the failure is recorded with its submission index...
    assert [(i, r) for i, r, _ in pool.failures] == [(1, failed)]
    assert isinstance(pool.failures[0][2], RuntimeError)
    # ...and nothing stale stays pooled
    assert len(pool) == 0


def test_wait_all_keeps_pending_requests_pooled():
    pool = RequestPool()
    pool.submit(_result(value=1))
    pool.submit(_result(error=RuntimeError("boom")))
    pending = pool.submit(_result(value=9, ready=False))
    with pytest.raises(RuntimeError):
        pool.wait_all()
    assert pool.completed == [1]
    assert len(pool) == 1  # the genuinely pending request stays pooled
    pending._raw.ready = True
    assert pool.wait_all() == [9]


def test_wait_all_records_multiple_failures_raises_first():
    pool = RequestPool()
    pool.submit(_result(error=KeyError("first")))
    pool.submit(_result(error=ValueError("second")))
    with pytest.raises(KeyError):
        pool.wait_all()
    assert [type(e) for _, _, e in pool.failures] == [KeyError, ValueError]


def test_bounded_submit_failure_still_pools_new_result():
    pool = BoundedRequestPool(slots=1)
    pool.submit(_result(error=RuntimeError("oldest died")))
    newest = _result(value=7)
    with pytest.raises(RuntimeError, match="oldest died"):
        pool.submit(newest)
    # the failed oldest left the pool, was recorded, and the new result is
    # pooled anyway — no request is silently dropped
    assert len(pool) == 1 and len(pool.failures) == 1
    assert pool.wait_all() == [7]
    assert pool.displaced == []


def test_failed_wait_releases_poisons():
    buf = np.arange(4)
    poison = Poison(buf)
    result = NonBlockingResult(_StubRequest(error=RuntimeError("down")),
                               poisons=[poison])
    assert not buf.flags.writeable
    with pytest.raises(RuntimeError):
        result.wait()
    assert poison.released and buf.flags.writeable  # buffer usable again

"""ASCII chart/table rendering used by the figure benchmarks."""

import pytest

from repro.reporting import ascii_chart, series_table


SERIES = {
    "direct": [(4, 1e-3), (16, 4e-3), (64, 1.6e-2)],
    "grid": [(4, 5e-4), (16, 1e-3), (64, 2e-3)],
}


def test_chart_contains_glyphs_and_legend():
    chart = ascii_chart(SERIES)
    assert "o=direct" in chart and "x=grid" in chart
    assert "o" in chart and "x" in chart


def test_chart_axis_bounds():
    chart = ascii_chart(SERIES)
    assert "64" in chart            # x upper bound
    assert "0.0005" in chart or "5e-04" in chart.lower() or "0.0005" in chart


def test_chart_dimensions():
    chart = ascii_chart(SERIES, width=30, height=8)
    body = [l for l in chart.splitlines() if l.startswith("  |")]
    assert len(body) == 8
    assert all(len(l) == 3 + 30 for l in body)


def test_empty_series():
    assert ascii_chart({"a": []}) == "(no data)"


def test_zero_values_skipped():
    chart = ascii_chart({"a": [(2, 0.0), (4, 1.0)]})
    assert "(no data)" not in chart


def test_single_point():
    chart = ascii_chart({"a": [(8, 0.5)]})
    assert "o" in chart


def test_many_series_glyph_cycle():
    series = {f"s{i}": [(2, 1.0 + i)] for i in range(12)}
    chart = ascii_chart(series)
    assert "s11" in chart  # legend covers all series even past glyph reuse


def test_series_table_alignment():
    table = series_table(SERIES)
    lines = table.splitlines()
    assert len(lines) == 3
    assert "direct" in lines[1] and "grid" in lines[2]
    assert "0.0010" in lines[1]


def test_series_table_missing_points():
    table = series_table({"a": [(2, 1.0)], "b": [(4, 2.0)]})
    assert "-" in table

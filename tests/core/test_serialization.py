"""Explicit serialization (§III-D3, Fig. 5/11)."""

import numpy as np
import pytest

from repro.core import (
    BINARY,
    JSON,
    BinaryArchive,
    JsonArchive,
    TypeMappingError,
    as_deserializable,
    as_serialized,
    destination,
    recv_buf,
    send_buf,
    send_recv_buf,
    source,
)
from tests.conftest import runk


class TestArchives:
    def test_binary_roundtrip(self):
        obj = {"a": [1, 2, {"b": "c"}], "t": (1, 2)}
        assert BINARY.loads(BINARY.dumps(obj)) == obj

    def test_json_roundtrip(self):
        obj = {"a": [1, 2, "x"], "b": None}
        assert JSON.loads(JSON.dumps(obj)) == obj

    def test_json_custom_default(self):
        archive = JsonArchive(default=lambda o: list(o))
        assert archive.loads(archive.dumps({"s": {1, 2} if False else (1, 2)})) \
            == {"s": [1, 2]}


def test_fig5_send_recv_dict():
    """Paper Fig. 5: send an unordered_map with explicit serialization."""
    def main(comm):
        data = {"hello": "world", "key": "value"}
        if comm.rank == 0:
            comm.send(send_buf(as_serialized(data)), destination(1))
            return None
        return comm.recv(source(0), recv_buf(as_deserializable(dict)))

    assert runk(main, 2).values[1] == {"hello": "world", "key": "value"}


def test_deserialization_type_check():
    def main(comm):
        if comm.rank == 0:
            comm.send(send_buf(as_serialized([1, 2])), destination(1))
            return None
        try:
            comm.recv(source(0), recv_buf(as_deserializable(dict)))
        except TypeMappingError as exc:
            return "expected dict" in str(exc)

    assert runk(main, 2).values[1]


def test_json_archive_over_the_wire():
    def main(comm):
        payload = {"model": "GTR", "rates": [1.0, 2.0]}
        if comm.rank == 0:
            comm.send(send_buf(as_serialized(payload, JSON)), destination(1))
            return None
        return comm.recv(source(0), recv_buf(as_deserializable(dict, JSON)))

    assert runk(main, 2).values[1] == {"model": "GTR", "rates": [1.0, 2.0]}


def test_fig11_serialized_bcast():
    """The RAxML-NG pattern: bcast(send_recv_buf(as_serialized(obj)))."""
    def main(comm):
        obj = {"tree": [1, 2, 3]} if comm.rank == 0 else None
        return comm.bcast(send_recv_buf(as_serialized(obj)))

    assert all(v == {"tree": [1, 2, 3]} for v in runk(main, 4).values)


def test_plain_recv_of_serialized_returns_bytes():
    """Without as_deserializable the receiver sees the raw bytes — nothing
    is deserialized implicitly."""
    def main(comm):
        if comm.rank == 0:
            comm.send(send_buf(as_serialized({"x": 1})), destination(1))
            return None
        got = comm.recv(source(0))
        return isinstance(got, bytes)

    assert runk(main, 2).values[1] is True


def test_deserializable_on_non_serialized_message_raises():
    def main(comm):
        if comm.rank == 0:
            comm.send(send_buf(np.arange(3)), destination(1))
            return None
        try:
            comm.recv(source(0), recv_buf(as_deserializable(dict)))
        except TypeMappingError:
            return "caught"

    assert runk(main, 2).values[1] == "caught"


def test_serialization_charges_compute_time():
    from repro.mpi import CostModel

    cm = CostModel(alpha=0.0, beta=0.0, overhead=0.0, ser_beta=1e-6)

    def main(comm):
        obj = {"blob": "x" * 10000} if comm.rank == 0 else None
        comm.bcast(send_recv_buf(as_serialized(obj)))
        return comm.raw.clock.compute_seconds

    res = runk(main, 2, cost_model=cm)
    assert res.values[0] > 0.005  # root serialized ~10kB at 1µs/byte
    assert res.values[1] > 0.005  # receiver deserialized

"""Measurement utilities (timer/counter) and wrapped neighborhood collectives."""

import numpy as np
import pytest

from repro.core import (
    UsageError,
    recv_counts,
    recv_counts_out,
    send_buf,
    send_counts,
)
from repro.core.measurements import Counter, Timer
from repro.mpi import CostModel, expect_calls
from tests.conftest import runk

CM = CostModel(alpha=1e-3, beta=0.0, overhead=0.0)


class TestTimer:
    def test_records_virtual_time(self):
        def main(comm):
            timer = Timer(comm)
            timer.start("compute")
            comm.compute(0.5)
            elapsed = timer.stop()
            return elapsed

        res = runk(main, 2, cost_model=CM)
        assert all(v == pytest.approx(0.5) for v in res.values)

    def test_nested_keys(self):
        def main(comm):
            timer = Timer(comm)
            with timer.scoped("outer"):
                comm.compute(0.1)
                with timer.scoped("inner"):
                    comm.compute(0.2)
            return sorted(timer.local())

        assert runk(main, 1).values[0] == ["outer", "outer.inner"]

    def test_accumulates_across_calls(self):
        def main(comm):
            timer = Timer(comm)
            for _ in range(3):
                with timer.scoped("phase"):
                    comm.compute(0.1)
            local = timer.local()["phase"]
            return local["count"], local["total"]

        count, total = runk(main, 1).values[0]
        assert count == 3 and total == pytest.approx(0.3)

    def test_aggregate_across_ranks(self):
        def main(comm):
            timer = Timer(comm)
            with timer.scoped("work"):
                comm.compute(0.1 * (comm.rank + 1))
            stats = timer.aggregate()["work"]
            return stats

        res = runk(main, 4, cost_model=CM)
        stats = res.values[0]
        assert stats["min"] == pytest.approx(0.1)
        assert stats["max"] == pytest.approx(0.4)
        assert stats["mean"] == pytest.approx(0.25)

    def test_synchronize_and_start(self):
        def main(comm):
            timer = Timer(comm)
            if comm.rank == 0:
                comm.compute(1.0)  # straggler before the measured phase
            timer.synchronize_and_start("aligned")
            comm.compute(0.1)
            timer.stop()
            return timer.aggregate()["aligned"]["max"]

        res = runk(main, 2, cost_model=CM)
        # the barrier absorbs the straggler; the measured phase is ~0.1
        assert res.values[0] < 0.2

    def test_stop_without_start(self):
        def main(comm):
            Timer(comm).stop()

        with pytest.raises(RuntimeError, match="without a running timer"):
            runk(main, 1)

    def test_dotted_names_rejected(self):
        def main(comm):
            Timer(comm).start("a.b")

        with pytest.raises(RuntimeError, match="must not contain"):
            runk(main, 1)

    def test_aggregate_with_running_timer_rejected(self):
        def main(comm):
            t = Timer(comm)
            t.start("open")
            t.aggregate()

        with pytest.raises(RuntimeError, match="still running"):
            runk(main, 1)


class TestCounter:
    def test_add_and_aggregate(self):
        def main(comm):
            c = Counter(comm)
            c.add("messages", comm.rank + 1)
            c.add("messages", 1)
            return c.aggregate()["messages"]

        stats = runk(main, 3).values[0]
        assert stats["sum"] == (1 + 2 + 3) + 3
        assert stats["max"] == 4
        assert stats["min"] == 2

    def test_default_increment(self):
        def main(comm):
            c = Counter(comm)
            c.add("events")
            c.add("events")
            return c.local()

        assert runk(main, 1).values[0] == {"events": 2}


class TestWrappedNeighborCollectives:
    @staticmethod
    def _ring(comm):
        p, r = comm.size, comm.rank
        return comm.with_topology([(r - 1) % p], [(r + 1) % p])

    def test_neighbor_alltoall(self):
        def main(comm):
            topo = self._ring(comm)
            out = topo.neighbor_alltoall(send_buf(np.array([comm.rank, 7])))
            return np.asarray(out).tolist()

        res = runk(main, 4)
        assert res.values[0] == [3, 7]

    def test_neighbor_alltoallv_with_inference(self):
        def main(comm):
            topo = self._ring(comm)
            data = np.full(comm.rank + 1, comm.rank, dtype=np.int64)
            with expect_calls(topo.raw, neighbor_alltoall=1,
                              neighbor_alltoallv=1):
                buf, counts = topo.neighbor_alltoallv(
                    send_buf(data), send_counts([comm.rank + 1]),
                    recv_counts_out(),
                )
            return np.asarray(buf).tolist(), counts

        res = runk(main, 4)
        for r in range(4):
            left = (r - 1) % 4
            buf, counts = res.values[r]
            assert buf == [left] * (left + 1)
            assert counts == [left + 1]

    def test_neighbor_alltoallv_explicit_counts_single_call(self):
        def main(comm):
            topo = self._ring(comm)
            left = (comm.rank - 1) % comm.size
            with expect_calls(topo.raw, neighbor_alltoallv=1):
                buf = topo.neighbor_alltoallv(
                    send_buf(np.full(2, comm.rank, dtype=np.int64)),
                    send_counts([2]), recv_counts([2]),
                )
            return np.asarray(buf).tolist()

        res = runk(main, 3)
        assert res.values[0] == [2, 2]

    def test_requires_topology(self):
        def main(comm):
            comm.neighbor_alltoall(send_buf(np.array([1])))

        with pytest.raises(RuntimeError, match="topology"):
            runk(main, 2)

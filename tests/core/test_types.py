"""The flexible type system (§III-D): reflection, trivially-copyable,
dynamic constructors, and the no-implicit-serialization rule."""

from dataclasses import dataclass

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    SerializationRequiredError,
    TypeMappingError,
    encode_send,
    fixed_array,
    from_structured,
    is_trivially_copyable,
    register_type,
    send_buf,
    struct_type,
    to_structured,
    type_contiguous,
    type_struct,
    type_vector,
)
from tests.conftest import runk


@dataclass
class MyType:
    """The paper's Fig. 4 example struct."""

    a: int
    b: float
    c: bool
    d: fixed_array(np.int32, 3)


@dataclass
class Inner:
    x: int
    y: float


@dataclass
class Outer:
    tag: int
    inner: Inner


class TestStructReflection:
    def test_fig4_struct_reflects(self):
        traits = struct_type(MyType)
        assert traits.dtype.names == ("a", "b", "c", "d")
        assert traits.dtype["d"].shape == (3,)
        assert traits.as_bytes  # contiguous-bytes default (§III-D4)

    def test_nested_dataclasses(self):
        traits = struct_type(Outer)
        assert traits.dtype["inner"].names == ("x", "y")

    def test_roundtrip(self):
        objs = [MyType(1, 2.5, True, [1, 2, 3]), MyType(-7, 0.0, False, [4, 5, 6])]
        arr = to_structured(objs, MyType)
        back = from_structured(arr, MyType)
        assert back == objs

    def test_nested_roundtrip(self):
        objs = [Outer(1, Inner(2, 3.5)), Outer(4, Inner(5, 6.5))]
        back = from_structured(to_structured(objs, Outer), Outer)
        assert back == objs

    def test_registration_is_idempotent(self):
        assert struct_type(MyType) is struct_type(MyType)

    def test_non_dataclass_rejected(self):
        class Plain:
            pass

        with pytest.raises(TypeMappingError, match="dataclass"):
            struct_type(Plain)

    def test_trivially_copyable(self):
        assert is_trivially_copyable(struct_type(MyType).dtype)
        assert not is_trivially_copyable(np.dtype(object))


class TestDynamicTypes:
    def test_contiguous(self):
        dt = type_contiguous(np.float64, 4)
        arr = np.zeros(3, dtype=dt)
        assert arr[0].shape == (4,)

    def test_struct_constructor(self):
        dt = type_struct([("a", np.int32), ("b", np.float64)])
        assert dt.names == ("a", "b")

    def test_vector_with_stride_has_holes(self):
        base = np.dtype(np.int32)
        dt = type_vector(base, count=2, blocklength=3, stride=5)
        assert dt.itemsize == 2 * 5 * base.itemsize  # holes included

    def test_vector_invalid_stride(self):
        with pytest.raises(TypeMappingError):
            type_vector(np.int32, 2, 4, 3)


class TestEncodeSend:
    def test_numeric_array_passthrough(self):
        arr = np.arange(5)
        wire = encode_send(arr)
        assert wire.payload is arr and wire.count == 5 and not wire.packed

    def test_scalar(self):
        wire = encode_send(7)
        assert wire.count == 1
        assert wire.decode(np.array([7])) == 7

    def test_numeric_list_decodes_to_list(self):
        wire = encode_send([1, 2, 3])
        assert wire.decode(np.array([9, 8])) == [9, 8]

    def test_dataclass_list_encodes_to_structured(self):
        objs = [Inner(1, 2.0), Inner(3, 4.0)]
        wire = encode_send(objs)
        assert wire.payload.dtype.names == ("x", "y")
        assert wire.decode(wire.payload) == objs

    def test_dict_requires_explicit_serialization(self):
        with pytest.raises(SerializationRequiredError, match="as_serialized"):
            encode_send({"k": 1})

    def test_object_array_rejected(self):
        with pytest.raises(SerializationRequiredError):
            encode_send(np.array([object()], dtype=object))

    def test_unregistered_element_type_rejected(self):
        class Opaque:
            pass

        with pytest.raises(SerializationRequiredError):
            encode_send([Opaque()])

    def test_explicit_struct_path_marks_packed(self):
        @dataclass
        class Gappy:
            a: bool
            b: float

        register_type(Gappy, struct_type(Gappy).dtype, as_bytes=False)
        arr = to_structured([Gappy(True, 1.0)], Gappy)
        assert encode_send(arr).packed


class TestStructsOverTheWire:
    def test_allgatherv_of_dataclasses(self):
        def main(comm):
            objs = [Inner(comm.rank, float(i)) for i in range(comm.rank + 1)]
            return comm.allgatherv(send_buf(objs))

        res = runk(main, 3)
        got = res.values[0]
        assert got == [Inner(0, 0.0), Inner(1, 0.0), Inner(1, 1.0),
                       Inner(2, 0.0), Inner(2, 1.0), Inner(2, 2.0)]

    def test_structured_array_p2p(self):
        from repro.core import destination, source

        def main(comm):
            arr = to_structured([MyType(comm.rank, 1.5, True, [7, 8, 9])],
                                MyType)
            if comm.rank == 0:
                comm.send(send_buf(arr), destination(1))
                return None
            got = comm.recv(source(0))
            return from_structured(got, MyType)

        res = runk(main, 2)
        assert res.values[1] == [MyType(0, 1.5, True, [7, 8, 9])]


@settings(max_examples=30, deadline=None)
@given(st.lists(
    st.tuples(st.integers(-2**31, 2**31), st.floats(allow_nan=False,
                                                    allow_infinity=False,
                                                    width=32)),
    min_size=1, max_size=20,
))
def test_structured_roundtrip_property(pairs):
    objs = [Inner(x, float(np.float32(y))) for x, y in pairs]
    back = from_structured(to_structured(objs, Inner), Inner)
    assert all(a.x == b.x and a.y == pytest.approx(b.y) for a, b in zip(objs, back))

"""Golden tests for the shared diagnostic message table.

The exact wording of the parameter-contract diagnostics is produced only in
:mod:`repro.core.errors`; the runtime exceptions and the static analyzer
(reprolint) both render through it.  These tests pin the strings — if a
message changes, both halves change together or this file fails.
"""

import pytest

from repro.core import (
    DuplicateParameterError,
    IgnoredParameterError,
    MissingParameterError,
    UnsupportedParameterError,
)
from repro.core.communicator import SPECS
from repro.core.errors import (
    duplicate_parameter_message,
    ignored_parameter_message,
    missing_parameter_message,
    unsupported_parameter_message,
)
from repro.core.plans import compile_plan
from repro.core.named_params import (
    recv_counts_out,
    root,
    send_buf,
    send_count,
    send_recv_buf,
)

from repro.analysis import lint_source


class TestGoldenMessages:
    """The table's exact renderings."""

    def test_missing(self):
        assert missing_parameter_message("gather", "send_buf",
                                         ("send_buf",)) == (
            "gather() is missing the required parameter 'send_buf'. "
            "Required parameters: send_buf."
        )

    def test_unsupported_sorts_accepted(self):
        assert unsupported_parameter_message("bcast", "destination",
                                             ("root", "send_recv_buf")) == (
            "bcast() does not accept the parameter 'destination'. "
            "Accepted parameters: root, send_recv_buf."
        )

    def test_duplicate_single(self):
        assert duplicate_parameter_message("allgatherv", ("send_buf",)) == (
            "allgatherv() received the parameter 'send_buf' more than once."
        )

    def test_duplicate_many(self):
        assert duplicate_parameter_message("allgatherv",
                                           ("send_buf", "root")) == (
            "allgatherv() received the parameters 'send_buf', 'root' "
            "more than once."
        )

    def test_ignored_with_accepted_list(self):
        msg = ignored_parameter_message(
            "allgather", "send_buf", "in-place via send_recv_buf",
            ("send_recv_buf", "send_buf"),
        )
        assert msg == (
            "allgather(): parameter 'send_buf' would be ignored "
            "(in-place via send_recv_buf); remove it or use the "
            "non-in-place variant. "
            "Accepted parameters: send_buf, send_recv_buf."
        )


class TestRuntimeUsesTable:
    """The exception classes render exactly what the table produces."""

    def test_missing_parameter_error(self):
        err = MissingParameterError("gather", "send_buf", ("send_buf",))
        assert str(err) == missing_parameter_message(
            "gather", "send_buf", ("send_buf",))

    def test_unsupported_parameter_error(self):
        err = UnsupportedParameterError("barrier", "send_buf", ())
        assert str(err) == unsupported_parameter_message(
            "barrier", "send_buf", ())

    def test_duplicate_parameter_error_accepts_one_or_many(self):
        single = DuplicateParameterError("bcast", "root")
        assert single.keys == ("root",)
        many = DuplicateParameterError("bcast", ("root", "send_recv_buf"))
        assert many.keys == ("root", "send_recv_buf")
        assert str(many) == duplicate_parameter_message(
            "bcast", ("root", "send_recv_buf"))

    def test_ignored_parameter_error(self):
        err = IgnoredParameterError("allgather", "send_count", "in-place",
                                    ("send_recv_buf",))
        assert str(err) == ignored_parameter_message(
            "allgather", "send_count", "in-place", ("send_recv_buf",))

    def test_compile_plan_collects_every_duplicate(self):
        spec = SPECS["allgatherv"]
        with pytest.raises(DuplicateParameterError) as exc:
            compile_plan(spec, (send_buf([1]), send_buf([2]),
                                recv_counts_out(), recv_counts_out()))
        assert exc.value.keys == ("send_buf", "recv_counts")
        assert "'send_buf', 'recv_counts' more than once" in str(exc.value)

    def test_compile_plan_ignored_lists_accepted(self):
        spec = SPECS["allgather"]
        with pytest.raises(IgnoredParameterError) as exc:
            compile_plan(spec, (send_recv_buf([1, 2]), send_count(1)))
        assert "Accepted parameters:" in str(exc.value)


class TestStaticMatchesRuntime:
    """reprolint renders the identical strings for the same defects."""

    @staticmethod
    def _messages(source, code):
        return [f.message for f in lint_source(source) if f.code == code]

    def test_missing(self):
        src = "def main(comm):\n    comm.gather(root(0))\n"
        spec = SPECS["gather"]
        assert self._messages(src, "RPL001") == [
            missing_parameter_message("gather", "send_buf",
                                      tuple(spec.required))
        ]

    def test_unsupported(self):
        src = ("def main(comm):\n"
               "    comm.barrier(send_buf([1]))\n")
        assert self._messages(src, "RPL002") == [
            unsupported_parameter_message("barrier", "send_buf",
                                          tuple(SPECS["barrier"].allowed))
        ]

    def test_duplicate(self):
        src = ("def main(comm):\n"
               "    comm.allgatherv(send_buf([1]), send_buf([2]))\n")
        assert self._messages(src, "RPL003") == [
            duplicate_parameter_message("allgatherv", ("send_buf",))
        ]

    def test_ignored(self):
        src = ("def main(comm):\n"
               "    comm.allgather(send_recv_buf([0]), send_count(1))\n")
        runtime_msg = None
        try:
            compile_plan(SPECS["allgather"],
                         (send_recv_buf([0]), send_count(1)))
        except IgnoredParameterError as exc:
            runtime_msg = str(exc)
        assert runtime_msg is not None
        assert self._messages(src, "RPL004") == [runtime_msg]

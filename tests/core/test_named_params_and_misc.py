"""Named-parameter factories, functor mapping, with_flattened, p2p wrapping,
plugin infrastructure, leveled assertions, and communicator management."""

import operator

import numpy as np
import pytest

from repro.core import (
    AssertionLevel,
    Communicator,
    CommunicatorPlugin,
    Flattened,
    UsageError,
    assertion_level,
    assertions,
    destination,
    extend,
    kassert,
    op,
    recv_buf,
    register_parameter,
    send_buf,
    send_counts,
    set_assertion_level,
    source,
    status_out,
    tag,
    with_flattened,
)
from repro.core.parameters import IN, OUT, Parameter
from repro.mpi import MAX, SUM, user_op
from tests.conftest import runk


class TestFactories:
    def test_directions(self):
        from repro.core import recv_counts, recv_counts_out, send_recv_buf

        assert send_buf([1]).direction == IN
        assert recv_counts([1]).direction == IN
        assert recv_counts_out().direction == OUT
        assert send_recv_buf([1]).direction == "inout"

    def test_scalar_params_coerced_to_int(self):
        assert destination(np.int64(3)).data == 3
        assert isinstance(tag(np.int32(7)).data, int)

    def test_op_functor_mapping(self):
        assert op(operator.add).data is SUM
        assert op(max).data is MAX
        assert op(np.add).data is SUM

    def test_op_builtin_passthrough(self):
        assert op(SUM).data is SUM

    def test_op_commutativity_override(self):
        o = op(SUM, commutative=False).data
        assert o.name == "sum" and not o.commutative

    def test_op_lambda_defaults_commutative(self):
        o = op(lambda a, b: a + b).data
        assert o.commutative

    def test_op_noncommutative_lambda(self):
        o = op(lambda a, b: a - b, commutative=False).data
        assert not o.commutative

    def test_op_rejects_non_callable(self):
        with pytest.raises(UsageError):
            op(42)


class TestWithFlattened:
    def test_mapping_form(self):
        flat = with_flattened({2: [7, 8], 0: [1]}, 3)
        assert isinstance(flat, Flattened)
        assert flat.counts == [1, 0, 2]
        assert flat.data.tolist() == [1, 7, 8]

    def test_sequence_form(self):
        flat = with_flattened([[1], [], [2, 3]], 3)
        assert flat.counts == [1, 0, 2]

    def test_out_of_range_destination(self):
        with pytest.raises(UsageError):
            with_flattened({5: [1]}, 3)

    def test_wrong_sequence_length(self):
        with pytest.raises(UsageError):
            with_flattened([[1]], 3)

    def test_call_forwards_params(self):
        flat = with_flattened({0: [1, 2]}, 1)
        keys = flat.call(lambda *ps: [p.key for p in ps])
        assert keys == ["send_buf", "send_counts"]

    def test_fig9_exchange_pattern(self):
        def main(comm):
            nested = {(comm.rank + 1) % comm.size: [comm.rank] * 2}
            return with_flattened(nested, comm.size).call(
                lambda *flattened: comm.alltoallv(*flattened)
            ).tolist()

        res = runk(main, 3)
        assert res.values[0] == [2, 2]


class TestWrappedP2P:
    def test_status_out(self):
        def main(comm):
            if comm.rank == 0:
                comm.send(send_buf(np.arange(4)), destination(1), tag(3))
                return None
            data, status = comm.recv(source(0), status_out())
            return data.tolist(), status.source, status.tag

        assert runk(main, 2).values[1] == ([0, 1, 2, 3], 0, 3)

    def test_probe_wrapped(self):
        def main(comm):
            if comm.rank == 0:
                comm.send(send_buf([1, 2]), destination(1), tag(6))
                return None
            status = comm.probe(source(0))
            data = comm.recv(source(0), tag(status.tag))
            return status.tag, list(data)

        assert runk(main, 2).values[1] == (6, [1, 2])

    def test_ssend_wrapped(self):
        def main(comm):
            if comm.rank == 0:
                comm.ssend(send_buf("sync"), destination(1))
                return "sent"
            return comm.recv(source(0))

        assert runk(main, 2).values == ["sent", "sync"]


class TestPluginInfrastructure:
    def test_extend_builds_subclass(self):
        class Doubler(CommunicatorPlugin):
            def allreduce_doubled(self, value):
                return 2 * self.allreduce_single(send_buf(value), op(SUM))

        Comm = extend(Communicator, Doubler)
        assert issubclass(Comm, Communicator)

        def main(comm):
            return comm.allreduce_doubled(1)

        assert runk(main, 3, comm_class=Comm).values[0] == 6

    def test_plugin_can_override_core_method(self):
        class Constant(CommunicatorPlugin):
            def allreduce_single(self, *params):
                return "overridden"

        Comm = extend(Communicator, Constant)

        def main(comm):
            return comm.allreduce_single(send_buf(1), op(SUM))

        assert runk(main, 2, comm_class=Comm).values[0] == "overridden"

    def test_plugin_registers_parameters(self):
        class WithParam(CommunicatorPlugin):
            parameter_keys = ("custom_knob",)

        extend(Communicator, WithParam)
        from repro.core.parameters import is_registered

        assert is_registered("custom_knob")

    def test_non_plugin_rejected(self):
        class NotAPlugin:
            pass

        with pytest.raises(TypeError):
            extend(Communicator, NotAPlugin)

    def test_plugin_extended_comm_survives_split(self):
        class Marker(CommunicatorPlugin):
            def mark(self):
                return "marked"

        Comm = extend(Communicator, Marker)

        def main(comm):
            sub = comm.split(comm.rank % 2)
            return sub.mark()

        assert all(v == "marked" for v in runk(main, 4, comm_class=Comm).values)


class TestAssertions:
    def test_default_level_is_normal(self):
        assert assertion_level() == AssertionLevel.NORMAL

    def test_context_manager_restores(self):
        with assertions(AssertionLevel.NONE):
            assert assertion_level() == AssertionLevel.NONE
        assert assertion_level() == AssertionLevel.NORMAL

    def test_kassert_disabled_levels_skip_thunk(self):
        calls = []

        def expensive():
            calls.append(1)
            return False

        with assertions(AssertionLevel.LIGHT):
            kassert(AssertionLevel.HEAVY, expensive, "never evaluated")
        assert calls == []

    def test_kassert_raises_with_level_tag(self):
        with pytest.raises(AssertionError, match=r"\[kassert/LIGHT\]"):
            kassert(AssertionLevel.LIGHT, False, "boom")

    def test_communication_level_check_catches_mismatched_counts(self):
        def main(comm):
            set_assertion_level(AssertionLevel.COMMUNICATION)
            try:
                comm.allgather(send_buf([0] * (comm.rank + 1)))
            except AssertionError as exc:
                return "equal send counts" in str(exc)
            finally:
                set_assertion_level(AssertionLevel.NORMAL)

        res = runk(main, 2)
        assert all(res.values)


class TestCommManagement:
    def test_wrapped_split_and_dup(self):
        def main(comm):
            sub = comm.split(comm.rank % 2)
            dup = comm.dup()
            return (sub.allreduce_single(send_buf(1), op(SUM)),
                    dup.allreduce_single(send_buf(1), op(SUM)))

        res = runk(main, 4)
        assert res.values[0] == (2, 4)

    def test_with_topology_neighbor_traffic(self):
        def main(comm):
            p, r = comm.size, comm.rank
            topo = comm.with_topology([(r - 1) % p], [(r + 1) % p])
            out = topo.raw.neighbor_alltoall([f"hi-{r}"])
            return out

        res = runk(main, 3)
        assert res.values[0] == ["hi-2"]

"""Final coverage round: send displacements, machine internals, misc gaps."""

import numpy as np
import pytest

from repro.core import (
    recv_counts,
    recv_displs,
    send_buf,
    send_counts,
    send_displs,
)
from repro.mpi import SUM, Machine, RawUsageError, run_mpi
from repro.mpi.constants import collective_tag
from tests.conftest import runk, runp


class TestSendDispls:
    def test_alltoallv_with_explicit_send_displs(self):
        """Blocks may live anywhere in the send buffer (C-style displs)."""
        def main(comm):
            p = comm.size
            # blocks stored in reverse order inside the buffer
            buf = np.empty(p, dtype=np.int64)
            displs = [p - 1 - d for d in range(p)]
            for d in range(p):
                buf[displs[d]] = comm.rank * 10 + d
            out = comm.alltoallv(send_buf(buf), send_counts([1] * p),
                                 send_displs(displs))
            return np.asarray(out).tolist()

        res = runk(main, 4)
        for r in range(4):
            assert res.values[r] == [s * 10 + r for s in range(4)]

    def test_scatterv_with_send_displs(self):
        from repro.core import root

        def main(comm):
            p = comm.size
            if comm.rank == 0:
                buf = np.arange(100, 100 + 2 * p)[::-1].copy()
                displs = [2 * (p - 1 - d) for d in range(p)]
                out = comm.scatterv(send_buf(buf), send_counts([2] * p),
                                    send_displs(displs), root(0))
            else:
                out = comm.scatterv(root(0))
            return np.asarray(out).tolist()

        res = runk(main, 3)
        # rank d receives the block at displacement 2*(p-1-d) of the
        # reversed buffer == [100+2d+1, 100+2d] ... verify deterministically
        flat = np.arange(100, 106)[::-1]
        for d in range(3):
            expected = flat[2 * (2 - d): 2 * (2 - d) + 2].tolist()
            assert res.values[d] == expected

    def test_recv_displs_alltoallv_gaps(self):
        def main(comm):
            p = comm.size
            out = comm.alltoallv(
                send_buf(np.full(p, comm.rank + 1, dtype=np.int64)),
                send_counts([1] * p), recv_counts([1] * p),
                recv_displs([3 * i for i in range(p)]),
            )
            return np.asarray(out).tolist()

        res = runk(main, 2)
        assert res.values[0] == [1, 0, 0, 2]


class TestMachineInternals:
    def test_collective_tag_code_bounds(self):
        with pytest.raises(ValueError):
            collective_tag(0, 64)
        assert collective_tag(1, 2) != collective_tag(2, 2)
        assert collective_tag(0, 0) < 0

    def test_comm_recreation_with_other_members_rejected(self):
        m = Machine(4)
        m.get_or_create_comm("x", [0, 1])
        with pytest.raises(RawUsageError):
            m.get_or_create_comm("x", [0, 2])

    def test_get_or_create_idempotent(self):
        m = Machine(3)
        a = m.get_or_create_comm("y", [0, 1, 2])
        b = m.get_or_create_comm("y", [0, 1, 2])
        assert a is b

    def test_run_result_helpers(self):
        res = runp(lambda comm: comm.allreduce(1, SUM), 3)
        assert res.max_time >= 0
        assert res.total_calls("allreduce") == 3
        assert res.failed == frozenset()

    def test_custom_deadline_propagates(self):
        def main(comm):
            if comm.rank == 0:
                comm.recv(1)

        import time

        t0 = time.time()
        with pytest.raises(RuntimeError):
            run_mpi(main, 2, deadline=0.2)
        assert time.time() - t0 < 10


class TestMiscGaps:
    def test_rank_shifted_checked(self):
        def main(comm):
            return (comm.rank_shifted_checked(1),
                    comm.rank_shifted_checked(-1),
                    comm.is_root(comm.rank))

        res = runk(main, 3)
        assert res.values[0] == (1, None, True)
        assert res.values[2] == (None, 1, True)

    def test_probe_wrapped_any_source(self):
        from repro.core import destination

        def main(comm):
            if comm.rank == 1:
                comm.send(send_buf([1]), destination(0))
                return None
            status = comm.probe()
            comm.recv()  # drain the probed message (probe does not consume)
            return status.source

        assert runk(main, 2).values[0] == 1

    def test_flatten_numpy_buckets(self):
        from repro.core import with_flattened

        flat = with_flattened({1: np.array([5, 6])}, 3)
        assert flat.counts == [0, 2, 0]
        assert flat.data.tolist() == [5, 6]

    def test_loc_counter_on_comprehension(self):
        from repro.loc import logical_loc

        def fn(xs):
            return [
                x * 2
                for x in xs
                if x > 0
            ]

        # every source line the statement spans counts, including the
        # closing bracket (clang-format-style density)
        assert logical_loc(fn) == 5

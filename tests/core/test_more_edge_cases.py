"""Additional bindings-layer edge cases: send_count validation, array
reductions, dataclass payloads through more collectives, wildcard receives,
in-place variants under movement, and runner behaviour."""

from dataclasses import dataclass

import numpy as np
import pytest

from repro.core import (
    Communicator,
    destination,
    move,
    op,
    recv_buf,
    root,
    run,
    send_buf,
    send_count,
    send_recv_buf,
    source,
    status_out,
    tag,
)
from repro.mpi import MAX, SUM, CostModel
from tests.conftest import runk


@dataclass
class Pair:
    a: int
    b: float


class TestSendCount:
    def test_send_count_exceeding_buffer(self):
        def main(comm):
            comm.send(send_buf(np.arange(3)), destination(comm.rank),
                      send_count(5))

        with pytest.raises(RuntimeError, match="exceeds"):
            runk(main, 1)

    def test_send_count_prefix_p2p(self):
        def main(comm):
            comm.send(send_buf(np.arange(10)), destination(comm.rank),
                      send_count(4))
            got = comm.recv(source(comm.rank))
            return len(got)

        assert runk(main, 1).values[0] == 4


class TestArrayReductions:
    def test_allreduce_2_element_vectors(self):
        def main(comm):
            arr = np.array([comm.rank, -comm.rank], dtype=np.float64)
            return comm.allreduce(send_buf(arr), op(SUM))

        res = runk(main, 5)
        assert np.array_equal(res.values[0], [10.0, -10.0])

    def test_scan_arrays(self):
        def main(comm):
            arr = np.array([1, comm.rank])
            return np.asarray(comm.scan(send_buf(arr), op(SUM))).tolist()

        res = runk(main, 3)
        assert res.values[2] == [3, 3]

    def test_exscan_arrays_identity_on_rank0(self):
        def main(comm):
            arr = np.array([comm.rank + 1.0])
            return np.asarray(comm.exscan(send_buf(arr), op(SUM))).tolist()

        res = runk(main, 3)
        assert res.values[0] == [0.0]
        assert res.values[2] == [3.0]

    def test_reduce_array_into_referencing_buffer(self):
        def main(comm):
            target = np.zeros(2)
            out = comm.allreduce(send_buf(np.array([1.0, 2.0])), op(SUM),
                                 recv_buf(target))
            return out, target.tolist()

        out, target = runk(main, 4).values[0]
        assert out is None and target == [4.0, 8.0]


class TestDataclassCollectives:
    def test_alltoall_of_records(self):
        def main(comm):
            records = [Pair(comm.rank, float(d)) for d in range(comm.size)]
            return comm.alltoall(send_buf(records))

        res = runk(main, 3)
        assert res.values[1] == [Pair(0, 1.0), Pair(1, 1.0), Pair(2, 1.0)]

    def test_bcast_of_record_array(self):
        from repro.core import to_structured

        def main(comm):
            if comm.rank == 0:
                arr = to_structured([Pair(7, 2.5)], Pair)
            else:
                arr = None
            out = comm.bcast(send_recv_buf(arr if comm.rank == 0 else 0))
            return out["a"][0] if hasattr(out, "dtype") else out

        # non-root path returns the wire array; root the decoded value
        res = runk(main, 2)
        assert res.values[1] == 7

    def test_scatter_of_records(self):
        def main(comm):
            if comm.rank == 0:
                data = [Pair(d, d * 1.5) for d in range(comm.size)]
                got = comm.scatter(send_buf(data), root(0))
            else:
                got = comm.scatter(root(0))
            return got

        res = runk(main, 3)
        for r in range(3):
            got = res.values[r]
            # the root decodes back to Pair instances; receivers see the
            # structured wire block (they did not declare the type)
            if isinstance(got, list):
                assert got[0].a == r
            else:
                assert int(np.asarray(got)["a"][0]) == r


class TestWildcardRecv:
    def test_recv_any_source_with_status(self):
        def main(comm):
            if comm.rank == 0:
                got = []
                for _ in range(comm.size - 1):
                    data, status = comm.recv(status_out())
                    got.append((status.source, data))
                return sorted(got)
            comm.send(send_buf(comm.rank * 5), destination(0),
                      tag(comm.rank))
            return None

        res = runk(main, 4)
        assert res.values[0] == [(1, 5), (2, 10), (3, 15)]


class TestInPlaceMoves:
    def test_allreduce_inplace_moved(self):
        def main(comm):
            data = np.array([comm.rank + 1.0])
            out = comm.allreduce(send_recv_buf(move(data)), op(MAX))
            return np.asarray(out).tolist()

        assert runk(main, 4).values[0] == [4.0]

    def test_bcast_moved_array_storage_reused(self):
        def main(comm):
            data = (np.arange(4.0) if comm.rank == 0
                    else np.zeros(4))
            out = comm.bcast(send_recv_buf(move(data)))
            return (out.base is data or out is data), np.asarray(out).tolist()

        res = runk(main, 3)
        for reused, values in res.values:
            assert values == [0.0, 1.0, 2.0, 3.0]
            assert reused


class TestRunner:
    def test_cost_model_forwarded(self):
        cm = CostModel(alpha=1.0, beta=0.0, overhead=0.0)

        def main(comm):
            comm.barrier()
            return comm.raw.clock.now

        res = run(main, 2, cost_model=cm)
        assert res.max_time >= 1.0

    def test_comm_class_default(self):
        def main(comm):
            return type(comm).__name__

        assert run(main, 1).values[0] == "Communicator"

    def test_results_expose_counters(self):
        def main(comm):
            comm.barrier()

        res = run(main, 3)
        assert res.total_calls("barrier") == 3

"""The Table-I LoC counter itself."""

import pytest

from repro.loc import format_loc_table, loc_table, logical_loc


def test_counts_body_lines():
    def fn(x):
        a = x + 1
        b = a * 2
        return b

    assert logical_loc(fn) == 3


def test_docstring_excluded():
    def fn(x):
        """A docstring
        spanning lines."""
        return x

    assert logical_loc(fn) == 1


def test_comments_and_blanks_excluded():
    def fn(x):
        # a comment
        a = x

        # another
        return a

    assert logical_loc(fn) == 2


def test_multiline_statement_counts_per_line():
    def fn(x):
        return (x +
                1 +
                2)

    assert logical_loc(fn) == 3


def test_one_liner_is_one():
    def fn(comm, v):
        return comm.allgatherv(v)

    assert logical_loc(fn) == 1


def test_nested_blocks_counted():
    def fn(xs):
        out = []
        for x in xs:
            if x > 0:
                out.append(x)
        return out

    assert logical_loc(fn) == 5


def test_non_function_rejected():
    with pytest.raises(TypeError):
        logical_loc(int)


def test_table_and_formatting():
    def a():
        return 1

    def b():
        x = 1
        return x

    table = loc_table({"example": {"A": a, "B": b}})
    assert table == {"example": {"A": 1, "B": 2}}
    rendered = format_loc_table(table, ["A", "B"])
    assert "example" in rendered and "1" in rendered and "2" in rendered

"""Call-plan compilation: validation errors, caching, and the result protocol."""

import numpy as np
import pytest

from repro.core import (
    Communicator,
    DuplicateParameterError,
    IgnoredParameterError,
    MissingParameterError,
    MPIResult,
    PlanCache,
    UnsupportedParameterError,
    UsageError,
    destination,
    op,
    recv_counts_out,
    recv_displs_out,
    root,
    send_buf,
    send_count,
    send_recv_buf,
    tag,
)
from repro.core.communicator import SPECS
from repro.core.plans import compile_plan
from repro.mpi import SUM
from tests.conftest import runk


class TestValidation:
    def test_missing_required_parameter_named_in_message(self):
        def main(comm):
            comm.allgatherv()

        with pytest.raises(RuntimeError, match="missing the required parameter 'send_buf'"):
            runk(main, 1)

    def test_unsupported_parameter_lists_accepted(self):
        def main(comm):
            comm.barrier_ = None
            comm.allgatherv(send_buf([1]), destination(0))

        with pytest.raises(RuntimeError, match="does not accept the parameter 'destination'"):
            runk(main, 1)

    def test_duplicate_parameter(self):
        def main(comm):
            comm.allgatherv(send_buf([1]), send_buf([2]))

        with pytest.raises(RuntimeError, match="more than once"):
            runk(main, 1)

    def test_inplace_conflict_is_ignored_parameter_error(self):
        """§III-G: arguments the in-place call would ignore become errors."""
        def main(comm):
            comm.allgather(send_recv_buf(np.zeros(comm.size)),
                           send_buf(np.zeros(1)))

        with pytest.raises(RuntimeError, match="would be ignored"):
            runk(main, 2)

    def test_inplace_send_count_conflict(self):
        def main(comm):
            comm.allgather(send_recv_buf(np.zeros(comm.size)), send_count(1))

        with pytest.raises(RuntimeError, match="would be ignored"):
            runk(main, 2)

    def test_non_parameter_argument_rejected(self):
        def main(comm):
            comm.allgatherv([1, 2, 3])

        with pytest.raises(RuntimeError, match="named parameters"):
            runk(main, 1)

    def test_direct_compile_plan_errors(self):
        spec = SPECS["allgatherv"]
        with pytest.raises(MissingParameterError):
            compile_plan(spec, ())
        with pytest.raises(DuplicateParameterError):
            compile_plan(spec, (send_buf([1]), send_buf([1])))
        with pytest.raises(UnsupportedParameterError):
            compile_plan(spec, (send_buf([1]), tag(3)))


class TestPlanCache:
    def test_same_signature_compiles_once(self):
        cache = PlanCache()

        def main(comm):
            c = Communicator(comm.raw, plan_cache=cache)
            for _ in range(10):
                c.allgatherv(send_buf(np.arange(comm.rank + 1)))
            return cache.compilations

        res = runk(main, 2)
        # one plan for allgatherv(send_buf) shared by all iterations; the
        # count-inference path adds its own allgather use of the raw layer only
        assert res.values[0] == 1

    def test_distinct_signatures_compile_separately(self):
        cache = PlanCache()

        def main(comm):
            c = Communicator(comm.raw, plan_cache=cache)
            c.allgatherv(send_buf(np.arange(2)))
            c.allgatherv(send_buf(np.arange(2)), recv_counts_out())
            c.allgatherv(send_buf(np.arange(2)), recv_counts_out(),
                         recv_displs_out())
            return cache.compilations

        assert runk(main, 1).values[0] == 3

    def test_disabled_cache_recompiles(self):
        cache = PlanCache(enabled=False)

        def main(comm):
            c = Communicator(comm.raw, plan_cache=cache)
            for _ in range(5):
                c.allgatherv(send_buf(np.arange(1)))
            return cache.compilations

        assert runk(main, 1).values[0] == 5

    def test_payload_values_do_not_affect_signature(self):
        cache = PlanCache()

        def main(comm):
            c = Communicator(comm.raw, plan_cache=cache)
            c.allgatherv(send_buf(np.arange(3)))
            c.allgatherv(send_buf(np.arange(1000)))
            return cache.compilations

        assert runk(main, 1).values[0] == 1


class TestResultProtocol:
    def test_structured_binding_order(self):
        def main(comm):
            v = np.arange(comm.rank + 1, dtype=np.int64)
            result = comm.allgatherv(send_buf(v), recv_displs_out(),
                                     recv_counts_out())
            assert isinstance(result, MPIResult)
            assert result.keys() == ("recv_buf", "recv_displs", "recv_counts")
            buf, displs, counts = result
            return buf.tolist(), displs, counts

        buf, displs, counts = runk(main, 3).values[0]
        assert counts == [1, 2, 3] and displs == [0, 1, 3]

    def test_extract_methods_and_move_once(self):
        def main(comm):
            v = np.arange(1, dtype=np.int64)
            result = comm.allgatherv(send_buf(v), recv_counts_out())
            counts = result.extract_recv_counts()
            buf = result.extract_recv_buf()
            try:
                result.extract_recv_counts()
            except UsageError as exc:
                return counts, buf.tolist(), "already extracted" in str(exc)
            return None

        counts, buf, raised = runk(main, 2).values[0]
        assert counts == [1, 1] and buf == [0, 0] and raised

    def test_extract_unknown_field(self):
        def main(comm):
            result = comm.allgatherv(send_buf(np.arange(1)), recv_counts_out())
            try:
                result.extract_recv_displs()
            except UsageError as exc:
                return "no field" in str(exc)

        assert runk(main, 1).values[0]

    def test_iteration_after_extract_raises(self):
        def main(comm):
            result = comm.allgatherv(send_buf(np.arange(1)), recv_counts_out())
            result.extract_recv_buf()
            try:
                list(result)
            except UsageError:
                return True
            return False

        assert runk(main, 1).values[0]

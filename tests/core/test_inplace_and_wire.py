"""Deeper coverage of the in-place call semantics and wire-format decisions.

These tests are additive depth over the in-place (`send_recv_buf`) paths and
the WireBuffer decode rules — the places where C MPI's silent-ignore and
silent-serialize behaviours are replaced by explicit semantics.
"""

import numpy as np
import pytest

from repro.core import (
    Communicator,
    SerializationRequiredError,
    encode_send,
    move,
    op,
    send_buf,
    send_recv_buf,
)
from repro.core.types import WireBuffer
from repro.mpi import SUM, expect_calls
from tests.conftest import runk


class TestInPlaceSemantics:
    def test_inplace_allgather_list_container(self):
        def main(comm):
            data = [0] * comm.size
            data[comm.rank] = comm.rank + 10
            comm.allgather(send_recv_buf(data))
            return data

        res = runk(main, 4)
        assert all(v == [10, 11, 12, 13] for v in res.values)

    def test_inplace_allgather_block_size_two(self):
        def main(comm):
            data = np.zeros(2 * comm.size, dtype=np.int64)
            data[2 * comm.rank: 2 * comm.rank + 2] = [comm.rank, -comm.rank]
            comm.allgather(send_recv_buf(data))
            return data.tolist()

        res = runk(main, 3)
        assert res.values[0] == [0, 0, 1, -1, 2, -2]

    def test_inplace_indivisible_buffer_rejected(self):
        def main(comm):
            comm.allgather(send_recv_buf(np.zeros(comm.size + 1)))

        with pytest.raises(RuntimeError, match="divisible"):
            runk(main, 2)

    def test_inplace_allreduce_moved_returns_by_value(self):
        def main(comm):
            data = np.array([float(comm.rank)])
            out = comm.allreduce(send_recv_buf(move(data)), op(SUM))
            return np.asarray(out).tolist()

        assert runk(main, 4).values[0] == [6.0]

    def test_bcast_requires_send_recv_buf(self):
        def main(comm):
            comm.bcast(send_buf(1))

        with pytest.raises(RuntimeError, match="send_recv_buf"):
            runk(main, 1)


class TestWireFormat:
    def test_scalar_flag_set_only_for_scalars(self):
        assert encode_send(5).scalar
        assert encode_send(2.5).scalar
        assert not encode_send([1, 2]).scalar
        assert not encode_send(np.arange(3)).scalar

    def test_bool_and_numpy_scalars(self):
        assert encode_send(np.int32(7)).count == 1
        assert encode_send(True).decode(np.array([True])) is True \
            or encode_send(True).decode(np.array([True])) == True  # noqa: E712

    def test_tuple_of_numbers_encodes_like_list(self):
        wire = encode_send((1, 2, 3))
        assert wire.count == 3

    def test_set_requires_serialization(self):
        with pytest.raises(SerializationRequiredError):
            encode_send({1, 2, 3})

    def test_none_requires_serialization(self):
        with pytest.raises(SerializationRequiredError):
            encode_send(None)

    def test_empty_list(self):
        wire = encode_send([])
        assert wire.count == 0
        assert wire.decode(np.empty(0)) == []

    def test_str_is_opaque_scalar(self):
        wire = encode_send("hello")
        assert wire.count == 1 and wire.payload == "hello"

    def test_wirebuffer_defaults(self):
        wb = WireBuffer(np.arange(2), 2, packed=False, compute_bytes=0,
                        decode=lambda a: a)
        assert wb.scalar is False


class TestMixedScenarios:
    def test_gather_of_strings(self):
        from repro.core import root

        def main(comm):
            out = comm.gather(send_buf(f"rank-{comm.rank}"), root(0))
            return out

        res = runk(main, 3)
        assert res.values[0] == ["rank-0", "rank-1", "rank-2"]

    def test_allreduce_of_strings_with_user_op(self):
        from repro.mpi import user_op

        def main(comm):
            concat = user_op(lambda a, b: a + b, commutative=False)
            return comm.allreduce_single(send_buf(f"{comm.rank}"), op(concat))

        assert all(v == "0123" for v in runk(main, 4).values)

    def test_alltoall_strings(self):
        def main(comm):
            # one string per destination as a list of objects is not a static
            # type; strings per destination must go through alltoall of a
            # listed payload at the raw level or be serialized — verify the
            # static path rejects it explicitly
            try:
                comm.alltoall(send_buf([f"to-{d}" for d in range(comm.size)]))
            except SerializationRequiredError:
                return "explicit"

        assert all(v == "explicit" for v in runk(main, 2).values)

    def test_repeat_calls_alternate_variants(self):
        """In-place and regular variants of the same collective interleave."""
        def main(comm):
            results = []
            for i in range(4):
                if i % 2 == 0:
                    results.append(
                        comm.allreduce_single(send_buf(i), op(SUM)))
                else:
                    data = np.array([float(i)])
                    comm.allreduce(send_recv_buf(data), op(SUM))
                    results.append(data[0])
            return results

        res = runk(main, 3)
        assert res.values[0] == [0, 3.0, 6, 9.0]

"""Concurrency-sensitive behaviour: shared plan cache, overlapping
communicators, interleaved non-blocking traffic, and sub-communicator
parallelism."""

import numpy as np
import pytest

from repro.core import (
    Communicator,
    PlanCache,
    RequestPool,
    destination,
    op,
    recv_counts,
    send_buf,
    send_counts,
    source,
)
from repro.mpi import SUM
from tests.conftest import runk


def test_shared_plan_cache_across_rank_threads():
    """All rank threads share the global plan cache without corruption."""
    cache = PlanCache()

    def main(comm):
        c = Communicator(comm.raw, plan_cache=cache)
        for _ in range(20):
            c.allgatherv(send_buf(np.arange(comm.rank + 1)))
        return True

    assert all(runk(main, 8).values)
    # exactly one signature was ever compiled, despite 8 concurrent threads
    # (benign double-compilation is allowed but must stay bounded)
    assert cache.compilations <= 8


def test_parallel_collectives_on_disjoint_subcomms():
    """Disjoint split groups run collectives fully independently."""
    def main(comm):
        sub = comm.split(comm.rank % 3)
        values = []
        for i in range(10):
            values.append(sub.allreduce_single(send_buf(comm.rank + i),
                                               op(SUM)))
        return values

    res = runk(main, 6)
    # group {0,3}: ranks 0+3=3, plus 2i
    assert res.values[0] == [3 + 2 * i for i in range(10)]
    assert res.values[1] == [5 + 2 * i for i in range(10)]


def test_world_and_subcomm_interleaved():
    def main(comm):
        sub = comm.split(0)  # same membership, separate context
        a = comm.allreduce_single(send_buf(1), op(SUM))
        b = sub.allreduce_single(send_buf(2), op(SUM))
        c = comm.allreduce_single(send_buf(3), op(SUM))
        return a, b, c

    res = runk(main, 4)
    assert res.values[0] == (4, 8, 12)


def test_many_outstanding_nonblocking_ops():
    def main(comm):
        p, r = comm.size, comm.rank
        pool = RequestPool()
        recvs = RequestPool()
        for i in range(30):
            dest = (r + 1 + i) % p
            pool.submit(comm.isend(send_buf(np.array([r, i])),
                                   destination(dest)))
        for _ in range(30):
            recvs.submit(comm.irecv())
        pool.wait_all()
        got = recvs.wait_all()
        return sorted(int(np.asarray(v)[1]) for v in got)

    res = runk(main, 5)
    for v in res.values:
        assert sorted(v) == sorted(list(range(30)))


def test_interleaved_p2p_and_collectives_heavy():
    def main(comm):
        p, r = comm.size, comm.rank
        total = 0
        for i in range(15):
            comm.send(send_buf(i), destination((r + 1) % p))
            total += comm.allreduce_single(send_buf(1), op(SUM))
            got = comm.recv(source((r - 1) % p))
            assert got == i
        return total

    res = runk(main, 4)
    assert all(v == 60 for v in res.values)


def test_alltoallv_storm_on_same_comm():
    """Many back-to-back inference-path alltoallvs stay correctly matched."""
    def main(comm):
        p, r = comm.size, comm.rank
        outs = []
        for i in range(10):
            data = np.full(p, r * 100 + i, dtype=np.int64)
            out = comm.alltoallv(send_buf(data), send_counts([1] * p))
            outs.append(np.asarray(out).tolist())
        return outs

    res = runk(main, 4)
    for r in range(4):
        for i, out in enumerate(res.values[r]):
            assert out == [s * 100 + i for s in range(4)]

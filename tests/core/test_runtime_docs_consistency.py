"""Repository self-checks: public API completeness and docstring coverage.

A downstream user's first contact is ``repro.core``'s public surface; these
tests keep it coherent — everything in ``__all__`` importable, every public
callable documented, the op-spec table consistent with the methods it backs.
"""

import inspect

import pytest

import repro
import repro.core as core
import repro.mpi as mpi
import repro.plugins as plugins
from repro.core.communicator import SPECS, Communicator


def test_core_all_exports_exist():
    for name in core.__all__:
        assert hasattr(core, name), name


def test_mpi_all_exports_exist():
    for name in mpi.__all__:
        assert hasattr(mpi, name), name


def test_plugins_all_exports_exist():
    for name in plugins.__all__:
        assert hasattr(plugins, name), name


def test_top_level_exports():
    assert repro.run_mpi is mpi.run_mpi
    assert repro.Communicator is core.Communicator


def test_every_spec_backs_a_method():
    for name in SPECS:
        if name == "barrier":
            continue
        assert hasattr(Communicator, name), f"spec {name} has no method"


def test_every_wrapped_method_documented():
    for name in SPECS:
        method = getattr(Communicator, name, None)
        if method is None:
            continue
        assert method.__doc__, f"{name} lacks a docstring"


def test_public_core_callables_documented():
    undocumented = []
    for name in core.__all__:
        obj = getattr(core, name)
        if callable(obj) and not isinstance(obj, type):
            if not (obj.__doc__ or "").strip():
                undocumented.append(name)
    assert not undocumented, undocumented


def test_public_classes_documented():
    undocumented = []
    for module in (core, mpi, plugins):
        for name in module.__all__:
            obj = getattr(module, name)
            if isinstance(obj, type) and not (obj.__doc__ or "").strip():
                undocumented.append(f"{module.__name__}.{name}")
    assert not undocumented, undocumented


def test_spec_out_keys_are_registered_parameters():
    from repro.core.parameters import is_registered

    for spec in SPECS.values():
        for key in (*spec.required, *spec.optional, *spec.out_allowed,
                    *spec.implicit_out):
            assert is_registered(key), (spec.name, key)


def test_conflict_pairs_reference_known_keys():
    for spec in SPECS.values():
        for present, forbidden, reason in spec.conflicts:
            assert present in spec.allowed
            assert forbidden in spec.allowed
            assert reason


def test_version_string():
    assert repro.__version__.count(".") == 2

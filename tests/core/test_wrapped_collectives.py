"""All other wrapped collectives: bcast, gather(v), scatter(v), alltoall(v),
reductions, scans, and the simplified in-place variants."""

import operator

import numpy as np
import pytest

from repro.core import (
    move,
    op,
    recv_buf,
    recv_counts,
    recv_counts_out,
    root,
    send_buf,
    send_counts,
    send_recv_buf,
    values_on_rank_0,
)
from repro.mpi import MAX, MIN, SUM, expect_calls, user_op
from tests.conftest import SMALL_P, runk


@pytest.mark.parametrize("p", SMALL_P)
def test_bcast_value(p):
    def main(comm):
        rt = p // 2
        value = "payload" if comm.rank == rt else None
        return comm.bcast(send_recv_buf(value), root(rt))

    assert all(v == "payload" for v in runk(main, p).values)


def test_bcast_into_referencing_array():
    def main(comm):
        data = np.arange(4.0) if comm.rank == 0 else np.zeros(4)
        ret = comm.bcast(send_recv_buf(data))
        return ret, data.tolist()

    for ret, data in runk(main, 3).values:
        assert ret is None and data == [0.0, 1.0, 2.0, 3.0]


@pytest.mark.parametrize("p", SMALL_P)
def test_gather_concatenates_blocks(p):
    def main(comm):
        block = np.full(2, comm.rank, dtype=np.int64)
        out = comm.gather(send_buf(block), root(p - 1))
        return out.tolist() if out is not None else None

    res = runk(main, p)
    assert res.values[p - 1] == [r for r in range(p) for _ in range(2)]
    if p > 1:
        assert res.values[0] is None


def test_gatherv_inference_issues_gather_of_counts():
    def main(comm):
        v = np.arange(comm.rank + 1, dtype=np.int64)
        with expect_calls(comm.raw, gather=1, gatherv=1):
            out = comm.gatherv(send_buf(v))
        return out.tolist() if out is not None else None

    res = runk(main, 4)
    assert res.values[0] == [x for i in range(4) for x in range(i + 1)]


def test_gatherv_with_counts_single_call():
    def main(comm):
        v = np.arange(comm.rank + 1, dtype=np.int64)
        counts = [i + 1 for i in range(comm.size)]
        with expect_calls(comm.raw, gatherv=1):
            out = comm.gatherv(send_buf(v), recv_counts(counts))
        return out is not None

    res = runk(main, 3)
    assert res.values == [True, False, False]


@pytest.mark.parametrize("p", SMALL_P)
def test_scatter_equal_blocks(p):
    def main(comm):
        data = np.arange(3 * p) if comm.rank == 0 else None
        params = [root(0)]
        if data is not None:
            params.insert(0, send_buf(data))
        return comm.scatter(*params).tolist()

    res = runk(main, p)
    for r in range(p):
        assert res.values[r] == [3 * r, 3 * r + 1, 3 * r + 2]


@pytest.mark.slow
def test_scatter_indivisible_raises():
    """Root raises before scattering; the peer waits out its (short) deadline."""
    def main(comm):
        comm.scatter(send_buf(np.arange(5)) if comm.rank == 0 else root(0),
                     *([root(0)] if comm.rank == 0 else []))

    with pytest.raises(RuntimeError, match="divisible"):
        runk(main, 2, deadline=2.0)


@pytest.mark.parametrize("p", SMALL_P)
def test_scatterv_variable_blocks(p):
    def main(comm):
        counts = [i + 1 for i in range(comm.size)]
        data = np.arange(sum(counts)) if comm.rank == 0 else None
        if comm.rank == 0:
            out = comm.scatterv(send_buf(data), send_counts(counts))
        else:
            out = comm.scatterv()
        return out.tolist()

    res = runk(main, p)
    offset = 0
    for r in range(p):
        assert res.values[r] == list(range(offset, offset + r + 1))
        offset += r + 1


@pytest.mark.parametrize("p", SMALL_P)
def test_alltoall_blocks(p):
    def main(comm):
        data = np.array([comm.rank * 100 + d for d in range(comm.size)])
        return comm.alltoall(send_buf(data)).tolist()

    res = runk(main, p)
    for r in range(p):
        assert res.values[r] == [s * 100 + r for s in range(p)]


def test_alltoallv_inference_and_outputs():
    def main(comm):
        p = comm.size
        counts = [d % 2 + 1 for d in range(p)]
        data = np.concatenate(
            [np.full(counts[d], comm.rank * 10 + d, dtype=np.int64)
             for d in range(p)]
        )
        with expect_calls(comm.raw, alltoall=1, alltoallv=1):
            result = comm.alltoallv(send_buf(data), send_counts(counts),
                                    recv_counts_out())
        buf, rcounts = result
        return buf.tolist(), rcounts

    res = runk(main, 4)
    buf, rcounts = res.values[1]
    assert rcounts == [2, 2, 2, 2]
    assert buf == [1, 1, 11, 11, 21, 21, 31, 31]


@pytest.mark.parametrize("p", SMALL_P)
def test_reduce_with_functor_mapping(p):
    """operator.add maps to the built-in SUM (std::plus analog)."""
    def main(comm):
        out = comm.reduce(send_buf(np.array([comm.rank, 1.0])),
                          op(operator.add))
        return None if out is None else out.tolist()

    res = runk(main, p)
    assert res.values[0] == [p * (p - 1) / 2, float(p)]


@pytest.mark.parametrize("p", SMALL_P)
def test_allreduce_with_lambda(p):
    def main(comm):
        return comm.allreduce_single(
            send_buf(comm.rank + 1), op(lambda a, b: a + b)
        )

    assert all(v == p * (p + 1) // 2 for v in runk(main, p).values)


def test_allreduce_inplace_array():
    def main(comm):
        data = np.array([comm.rank + 1.0, 1.0])
        ret = comm.allreduce(send_recv_buf(data), op(SUM))
        return ret, data.tolist()

    res = runk(main, 4)
    for ret, data in res.values:
        assert ret is None and data == [10.0, 4.0]


def test_allreduce_max_min():
    def main(comm):
        mx = comm.allreduce_single(send_buf(comm.rank), op(MAX))
        mn = comm.allreduce_single(send_buf(comm.rank), op(MIN))
        return mx, mn

    assert all(v == (3, 0) for v in runk(main, 4).values)


@pytest.mark.parametrize("p", SMALL_P)
def test_scan_and_exscan(p):
    def main(comm):
        inc = comm.scan_single(send_buf(comm.rank + 1), op(SUM))
        exc = comm.exscan_single(send_buf(comm.rank + 1), op(SUM))
        return inc, exc

    res = runk(main, p)
    for r in range(p):
        assert res.values[r] == ((r + 1) * (r + 2) // 2, r * (r + 1) // 2)


def test_exscan_values_on_rank_0():
    """MPI leaves rank 0 undefined; KaMPIng lets the caller choose."""
    def main(comm):
        return comm.exscan_single(send_buf(comm.rank + 1.0), op(MIN),
                                  values_on_rank_0(123.0))

    res = runk(main, 3)
    assert res.values[0] == 123.0
    assert res.values[1] == 1.0


def test_exscan_no_identity_no_default_raises():
    def main(comm):
        return comm.exscan_single(send_buf(comm.rank + 1.0), op(MIN))

    with pytest.raises(RuntimeError, match="values_on_rank_0"):
        runk(main, 2)


def test_inplace_allgather_matches_fig3():
    def main(comm):
        rc = np.zeros(comm.size, dtype=np.int64)
        rc[comm.rank] = comm.rank + 1
        comm.allgather(send_recv_buf(rc))
        moved = np.zeros(comm.size, dtype=np.int64)
        moved[comm.rank] = comm.rank * 2
        moved = comm.allgather(send_recv_buf(move(moved)))
        return rc.tolist(), moved.tolist()

    res = runk(main, 4)
    for rc, moved in res.values:
        assert rc == [1, 2, 3, 4]
        assert moved == [0, 2, 4, 6]


def test_non_commutative_wrapped_reduce():
    concat = user_op(lambda a, b: f"{a}|{b}", commutative=False)

    def main(comm):
        return comm.allreduce_single(send_buf(str(comm.rank)), op(concat))

    assert all(v == "0|1|2" for v in runk(main, 3).values)

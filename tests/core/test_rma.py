"""One-sided communication: windows, epochs, atomics, and locks."""

import numpy as np
import pytest

from repro.mpi import MAX, SUM, CostModel, expect_calls
from tests.conftest import runk


def test_put_get_roundtrip():
    def main(comm):
        win = comm.win_create(np.zeros(4, dtype=np.int64))
        with win.epoch():
            win.put([comm.rank * 10 + 1, comm.rank * 10 + 2],
                    target=(comm.rank + 1) % comm.size)
        left = (comm.rank - 1) % comm.size
        return win.local[:2].tolist(), win.get(comm.rank, 0, 2).tolist()

    res = runk(main, 4)
    for r in range(4):
        left = (r - 1) % 4
        assert res.values[r][0] == [left * 10 + 1, left * 10 + 2]
        assert res.values[r][1] == res.values[r][0]


def test_get_returns_copy():
    def main(comm):
        win = comm.win_create(np.array([5, 6], dtype=np.int64))
        win.fence()
        snapshot = win.get(comm.rank)
        win.local[0] = 99
        return snapshot.tolist()

    assert runk(main, 2).values[0] == [5, 6]


def test_accumulate_is_atomic_under_contention():
    """All ranks concurrently accumulate into rank 0; no update is lost."""
    def main(comm):
        win = comm.win_create(np.zeros(1, dtype=np.int64))
        win.fence()
        for _ in range(50):
            win.accumulate([1], target=0)
        win.fence()
        return int(win.local[0])

    res = runk(main, 8)
    assert res.values[0] == 8 * 50


def test_accumulate_with_max():
    def main(comm):
        win = comm.win_create(np.zeros(1, dtype=np.int64))
        win.fence()
        win.accumulate([comm.rank + 1], target=0, op=MAX)
        win.fence()
        return int(win.local[0])

    assert runk(main, 5).values[0] == 5


def test_fetch_and_op_unique_tickets():
    """fetch_and_op implements a distributed ticket counter."""
    def main(comm):
        win = comm.win_create(np.zeros(1, dtype=np.int64))
        win.fence()
        tickets = [win.fetch_and_op(1, target=0, offset=0) for _ in range(3)]
        win.fence()
        return tickets

    res = runk(main, 4)
    all_tickets = [t for v in res.values for t in v]
    assert sorted(all_tickets) == list(range(12))


def test_compare_and_swap_single_winner():
    def main(comm):
        win = comm.win_create(np.full(1, -1, dtype=np.int64))
        win.fence()
        old = win.compare_and_swap(comm.rank, compare=-1, target=0, offset=0)
        win.fence()
        return old, int(win.local[0]) if comm.rank == 0 else None

    res = runk(main, 6)
    winners = [r for r, (old, _) in enumerate(res.values) if old == -1]
    assert len(winners) == 1
    assert res.values[0][1] == winners[0]


def test_locked_exclusive_read_modify_write():
    """Non-atomic get+put under an exclusive lock must not lose updates."""
    def main(comm):
        win = comm.win_create(np.zeros(1, dtype=np.int64))
        win.fence()
        for _ in range(20):
            with win.locked(0, exclusive=True):
                value = int(win.get(0, 0, 1)[0])
                win.put([value + 1], target=0)
        win.fence()
        return int(win.local[0])

    res = runk(main, 4)
    assert res.values[0] == 80


def test_shared_locks_allow_concurrent_readers():
    def main(comm):
        win = comm.win_create(np.arange(3, dtype=np.int64))
        win.fence()
        with win.locked(0, exclusive=False):
            out = win.get(0).tolist()
        win.fence()
        return out

    assert all(v == [0, 1, 2] for v in runk(main, 4).values)


def test_bounds_checked():
    def main(comm):
        win = comm.win_create(np.zeros(2, dtype=np.int64))
        win.fence()
        win.put([1, 2, 3], target=comm.rank)

    with pytest.raises(RuntimeError, match="exceeds"):
        runk(main, 1)


def test_one_sided_costs_origin_only():
    """RMA must not advance the target's clock (no target CPU involvement)."""
    cm = CostModel(alpha=1e-3, beta=0.0, overhead=0.0)

    def main(comm):
        win = comm.win_create(np.zeros(8, dtype=np.int64))
        win.fence()
        t_after_fence = comm.raw.clock.now
        if comm.rank == 0:
            for _ in range(5):
                win.put(np.arange(8), target=1)
        origin_delta = comm.raw.clock.now - t_after_fence
        return origin_delta

    res = runk(main, 2, cost_model=cm)
    assert res.values[0] >= 5e-3       # origin paid 5 transfers
    assert res.values[1] == 0.0        # target paid nothing


def test_window_counted_in_pmpi():
    def main(comm):
        with expect_calls(comm.raw, win_create=1, win_fence=2, win_put=1,
                          win_get=1, barrier=1):
            win = comm.win_create(np.zeros(2, dtype=np.int64))
            win.fence()
            win.put([1], target=comm.rank)
            win.get(comm.rank)
            win.fence()
        return True

    assert all(runk(main, 2).values)


def test_unlock_without_lock_rejected():
    def main(comm):
        win = comm.win_create(np.zeros(1, dtype=np.int64))
        win.fence()
        win._raw.unlock(0)

    with pytest.raises(RuntimeError, match="matching lock"):
        runk(main, 1)


def test_non_1d_window_rejected():
    def main(comm):
        comm.win_create(np.zeros((2, 2)))

    with pytest.raises(RuntimeError, match="one-dimensional"):
        runk(main, 1)

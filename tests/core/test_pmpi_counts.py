"""The paper's §III-H methodology: assert that every inference path issues
exactly the documented raw MPI calls — no more, no fewer."""

import numpy as np
import pytest

from repro.core import (
    op,
    recv_counts,
    recv_counts_out,
    recv_displs,
    recv_displs_out,
    send_buf,
    send_counts,
    send_recv_buf,
)
from repro.mpi import SUM, expect_calls
from tests.conftest import runk


def test_allgatherv_inference_path():
    def main(comm):
        v = np.arange(comm.rank + 1, dtype=np.int64)
        with expect_calls(comm.raw, allgather=1, allgatherv=1):
            comm.allgatherv(send_buf(v))
        return True

    assert all(runk(main, 4).values)


def test_allgatherv_counts_given_no_extra_communication():
    def main(comm):
        v = np.arange(comm.rank + 1, dtype=np.int64)
        counts = [i + 1 for i in range(comm.size)]
        with expect_calls(comm.raw, allgatherv=1):
            comm.allgatherv(send_buf(v), recv_counts(counts))
        return True

    assert all(runk(main, 4).values)


def test_allgatherv_displs_are_local_computation():
    """Requesting displacements adds zero raw calls (exclusive scan is local)."""
    def main(comm):
        v = np.arange(comm.rank + 1, dtype=np.int64)
        counts = [i + 1 for i in range(comm.size)]
        with expect_calls(comm.raw, allgatherv=1):
            comm.allgatherv(send_buf(v), recv_counts(counts),
                            recv_displs_out())
        return True

    assert all(runk(main, 4).values)


def test_alltoallv_inference_path():
    def main(comm):
        p = comm.size
        with expect_calls(comm.raw, alltoall=1, alltoallv=1):
            comm.alltoallv(send_buf(np.zeros(p, dtype=np.int64)),
                           send_counts([1] * p))
        return True

    assert all(runk(main, 4).values)


def test_alltoallv_full_parameters_single_call():
    def main(comm):
        p = comm.size
        with expect_calls(comm.raw, alltoallv=1):
            comm.alltoallv(send_buf(np.zeros(p, dtype=np.int64)),
                           send_counts([1] * p), recv_counts([1] * p),
                           recv_displs(list(range(p))))
        return True

    assert all(runk(main, 4).values)


def test_gatherv_inference_path():
    def main(comm):
        with expect_calls(comm.raw, gather=1, gatherv=1):
            comm.gatherv(send_buf(np.arange(comm.rank + 1)))
        return True

    assert all(runk(main, 3).values)


def test_simple_collectives_are_one_to_one():
    def main(comm):
        with expect_calls(comm.raw, bcast=1):
            comm.bcast(send_recv_buf(1 if comm.rank == 0 else 0))
        with expect_calls(comm.raw, allreduce=1):
            comm.allreduce_single(send_buf(1), op(SUM))
        with expect_calls(comm.raw, allgather=1):
            comm.allgather(send_buf(np.arange(2)))
        with expect_calls(comm.raw, scan=1):
            comm.scan_single(send_buf(1), op(SUM))
        with expect_calls(comm.raw, exscan=1):
            comm.exscan_single(send_buf(1), op(SUM))
        return True

    assert all(runk(main, 4).values)


def test_inplace_allgather_is_one_call():
    def main(comm):
        data = np.zeros(comm.size, dtype=np.int64)
        data[comm.rank] = comm.rank
        with expect_calls(comm.raw, allgather=1):
            comm.allgather(send_recv_buf(data))
        return True

    assert all(runk(main, 4).values)


def test_expect_calls_reports_unexpected():
    def main(comm):
        try:
            with expect_calls(comm.raw, allgather=1):
                comm.allgather(send_buf(np.arange(1)))
                comm.barrier()  # not declared
        except AssertionError as exc:
            return "unexpected raw call" in str(exc)

    assert all(runk(main, 2).values)


def test_expect_calls_reports_wrong_count():
    def main(comm):
        try:
            with expect_calls(comm.raw, barrier=2):
                comm.barrier()
        except AssertionError as exc:
            return "expected 2" in str(exc)

    assert all(runk(main, 2).values)

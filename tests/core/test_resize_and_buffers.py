"""Resize policies (§III-C) and buffer ownership primitives."""

import numpy as np
import pytest

from repro.core import (
    AssertionLevel,
    BufferResizeError,
    Moved,
    assertions,
    grow_only,
    move,
    no_resize,
    recv_buf,
    resize_to_fit,
    send_buf,
)
from repro.core.buffers import Poison, poison_if_array, unwrap_moved
from repro.core.resize import apply_policy_to_list, check_array_capacity
from tests.conftest import runk


class TestListPolicies:
    def test_resize_to_fit_shrinks_and_grows(self):
        c = [0] * 10
        apply_policy_to_list(c, [1, 2], resize_to_fit)
        assert c == [1, 2]
        apply_policy_to_list(c, [1, 2, 3, 4], resize_to_fit)
        assert c == [1, 2, 3, 4]

    def test_grow_only_grows(self):
        c = [0]
        apply_policy_to_list(c, [1, 2, 3], grow_only)
        assert c == [1, 2, 3]

    def test_grow_only_keeps_capacity(self):
        c = [9] * 5
        apply_policy_to_list(c, [1, 2], grow_only)
        assert c == [1, 2, 9, 9, 9]

    def test_no_resize_writes_prefix(self):
        c = [9] * 5
        apply_policy_to_list(c, [1, 2], no_resize)
        assert c == [1, 2, 9, 9, 9]

    def test_no_resize_too_small_raises(self):
        with pytest.raises(AssertionError):
            apply_policy_to_list([0], [1, 2], no_resize)

    def test_no_resize_unchecked_when_assertions_off(self):
        with assertions(AssertionLevel.NONE):
            with pytest.raises(BufferResizeError):
                # even unchecked, physically impossible writes still fail
                apply_policy_to_list([0], [1, 2], no_resize)


class TestArrayPolicies:
    def test_no_resize_capacity_ok(self):
        check_array_capacity(5, 3, no_resize)

    def test_no_resize_too_small(self):
        with pytest.raises(AssertionError):
            check_array_capacity(2, 3, no_resize)

    def test_growing_policies_demand_exact_fit(self):
        check_array_capacity(3, 3, resize_to_fit)
        with pytest.raises(BufferResizeError, match="fixed-size"):
            check_array_capacity(5, 3, resize_to_fit)
        with pytest.raises(BufferResizeError):
            check_array_capacity(2, 3, grow_only)


class TestEndToEndPolicies:
    def test_recv_buf_array_too_small_raises(self):
        def main(comm):
            target = np.zeros(1, dtype=np.int64)
            comm.allgatherv(send_buf(np.arange(2)), recv_buf(target))

        with pytest.raises(RuntimeError, match="too small"):
            runk(main, 2)

    def test_recv_buf_list_resize_to_fit(self):
        def main(comm):
            target = []
            comm.allgatherv(send_buf([comm.rank]),
                            recv_buf(target, resize=resize_to_fit))
            return target

        assert runk(main, 3).values[0] == [0, 1, 2]


class TestMove:
    def test_move_wraps_once(self):
        c = [1]
        m = move(c)
        assert isinstance(m, Moved) and m.value is c
        assert move(m) is m

    def test_unwrap(self):
        c = np.arange(2)
        assert unwrap_moved(move(c)) == (c, True)
        assert unwrap_moved(c) == (c, False)


class TestPoison:
    def test_poison_blocks_writes_and_restores(self):
        arr = np.arange(3)
        poison = Poison(arr)
        with pytest.raises(ValueError):
            arr[0] = 1
        poison.release()
        arr[0] = 1
        assert arr[0] == 1

    def test_poison_preserves_readonly(self):
        arr = np.arange(3)
        arr.flags.writeable = False
        assert poison_if_array(arr) is None

    def test_non_arrays_not_poisoned(self):
        assert poison_if_array([1, 2]) is None
        assert poison_if_array("abc") is None

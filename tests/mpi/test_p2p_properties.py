"""Property-based point-to-point tests: random message schedules."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.mpi import ANY_SOURCE, ANY_TAG
from tests.conftest import runp

import pytest

# hypothesis suites are the heavyweight simulation tests: slow lane
pytestmark = pytest.mark.slow

_settings = settings(max_examples=15, deadline=None)

# a schedule: list of (src, dst, tag, value)
schedules = st.integers(2, 5).flatmap(
    lambda p: st.lists(
        st.tuples(
            st.integers(0, p - 1),
            st.integers(0, p - 1),
            st.integers(0, 3),
            st.integers(0, 10**6),
        ),
        min_size=0, max_size=25,
    ).map(lambda sched: (p, sched))
)


@_settings
@given(data=schedules)
def test_every_sent_message_is_received_exactly_once(data):
    p, schedule = data

    def main(comm):
        r = comm.rank
        for src, dst, tag, value in schedule:
            if src == r:
                comm.send((src, dst, tag, value), dst, tag)
        inbound = [m for m in schedule if m[1] == r]
        got = []
        for _ in inbound:
            payload, status = comm.recv(ANY_SOURCE, ANY_TAG)
            assert status.source == payload[0]
            assert status.tag == payload[2]
            got.append(payload)
        return sorted(got)

    res = runp(main, p)
    for r in range(p):
        expected = sorted(m for m in schedule if m[1] == r)
        assert res.values[r] == expected


@_settings
@given(data=schedules)
def test_per_source_per_tag_fifo(data):
    """Messages with the same (source, tag) arrive in send order."""
    p, schedule = data

    def main(comm):
        r = comm.rank
        for i, (src, dst, tag, _) in enumerate(schedule):
            if src == r:
                comm.send(i, dst, tag)  # payload = schedule position
        order: dict = {}
        inbound = [m for m in schedule if m[1] == r]
        for _ in inbound:
            payload, status = comm.recv(ANY_SOURCE, ANY_TAG)
            order.setdefault((status.source, status.tag), []).append(payload)
        return order

    res = runp(main, p)
    for r in range(p):
        for (src, tag), positions in res.values[r].items():
            assert positions == sorted(positions), (src, tag)


@_settings
@given(
    p=st.integers(2, 5),
    n_messages=st.integers(1, 15),
    seed=st.integers(0, 2**31),
)
def test_mixed_blocking_and_nonblocking(p, n_messages, seed):
    rng = np.random.default_rng(seed)
    dests = rng.integers(0, p, size=(p, n_messages))

    def main(comm):
        r = comm.rank
        reqs = []
        for i in range(n_messages):
            if i % 2 == 0:
                comm.send((r, i), int(dests[r][i]), tag=1)
            else:
                reqs.append(comm.isend((r, i), int(dests[r][i]), tag=1))
        expected = int((dests == r).sum())
        got = []
        for _ in range(expected):
            payload, _ = comm.recv(ANY_SOURCE, 1)
            got.append(payload)
        for req in reqs:
            req.wait()
        return len(got) == expected

    assert all(runp(main, p).values)

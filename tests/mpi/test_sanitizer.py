"""MPIsan resource auditor: true positives, true negatives, trace export.

Every leak kind the auditor knows (``repro.mpi.sanitizer.LEAK_KINDS``) gets a
deliberate-leak test asserting the run fails with a report naming the
operation, rank, and tag — plus matching true-negative tests showing the
identical pattern, completed properly, audits clean.
"""

import numpy as np
import pytest

from repro.core import Communicator, destination, send_buf_out, source
from repro.mpi import (
    Machine,
    ResourceLeakError,
    ScheduleFuzzer,
    TraceRecorder,
    minimize_failing_seeds,
    run_mpi,
)
from repro.mpi.sanitizer import (
    LEAK_KINDS,
    LeakReport,
    ResourceAuditor,
    env_fuzz_seed_default,
    env_sanitize_default,
)
from tests.conftest import runk, runp


def _leak_of(excinfo, kind):
    """The records of one kind from a ResourceLeakError; fails if absent."""
    recs = excinfo.value.report.by_kind().get(kind)
    assert recs, (
        f"expected a {kind!r} leak, report was:\n{excinfo.value.report.summary()}"
    )
    return recs


# ---------------------------------------------------------------------------
# True positives: one deliberate leak per kind
# ---------------------------------------------------------------------------


class TestDeliberateLeaks:
    def test_leaked_irecv_is_reported(self):
        def main(comm):
            if comm.rank == 0:
                comm.irecv(source=1, tag=7)  # never waited, never cancelled

        with pytest.raises(ResourceLeakError) as exc:
            runp(main, 2, sanitize=True)
        (rec,) = _leak_of(exc, "request")
        assert rec.op == "irecv"
        assert rec.rank == 0 and rec.world_rank == 0
        assert rec.peer == 1 and rec.tag == 7
        assert rec.origin  # creation backtrace captured
        msg = str(exc.value)
        assert "irecv" in msg and "rank 0" in msg and "tag 7" in msg
        assert "created at" in msg

    def test_undrained_unexpected_queue_is_reported(self):
        def main(comm):
            if comm.rank == 0:
                comm.send(np.array([1, 2], dtype=np.int64), dest=1, tag=4)
            # rank 1 returns without ever receiving

        with pytest.raises(ResourceLeakError) as exc:
            runp(main, 2, sanitize=True)
        (rec,) = _leak_of(exc, "unexpected")
        assert rec.rank == 1 and rec.peer == 0 and rec.tag == 4
        assert rec.nbytes == 16
        assert "tag 4" in str(exc.value)

    def test_unmatched_issend_is_reported(self):
        def main(comm):
            if comm.rank == 0:
                comm.issend(np.array([9]), dest=1, tag=3)  # never matched

        with pytest.raises(ResourceLeakError) as exc:
            runp(main, 2, sanitize=True)
        (rec,) = _leak_of(exc, "ssend_unmatched")
        assert rec.op == "issend" and rec.rank == 0
        assert rec.peer == 1 and rec.tag == 3
        # the undelivered envelope also shows up on the receiver's side
        _leak_of(exc, "unexpected")

    def test_leaked_ibarrier_is_reported(self):
        def main(comm):
            if comm.rank == 1:
                comm.ibarrier()  # rank 0 never arrives: the epoch stays open

        with pytest.raises(ResourceLeakError) as exc:
            runp(main, 2, sanitize=True)
        recs = _leak_of(exc, "request")
        assert {r.op for r in recs} == {"ibarrier"}
        assert {r.rank for r in recs} == {1}

    def test_leaked_ibcast_reports_request_not_posted_recv(self):
        """The internal receive of an i-collective is attributed to the
        request (one record), not double-reported by the mailbox sweep."""
        def main(comm):
            req = comm.ibcast(np.arange(4), root=0)
            if comm.rank == 0:
                req.wait()
            # non-root never completes its ibcast

        with pytest.raises(ResourceLeakError) as exc:
            runp(main, 2, sanitize=True)
        report = exc.value.report
        assert not report.by_kind().get("posted_recv")
        recs = _leak_of(exc, "request")
        assert {r.op for r in recs} == {"ibcast"}

    def test_leaked_poison_is_reported(self):
        def main(comm):
            if comm.rank == 0:
                comm.isend(send_buf_out(np.arange(8)), destination(1))
                return None  # never waited: the buffer stays read-only
            comm.recv(source(0))  # drain, so the poison is the only leak

        with pytest.raises(ResourceLeakError) as exc:
            runk(main, 2, sanitize=True)
        (rec,) = _leak_of(exc, "poison")
        assert rec.op == "isend" and rec.rank == 0
        assert rec.nbytes == 64
        assert "read-only" in rec.detail

    def test_leaked_rma_lock_is_reported(self):
        def main(comm):
            win = comm.win_create(np.zeros(2, dtype=np.int64))
            win.fence()
            if comm.rank == 0:
                win.lock(1)  # never unlocked

        with pytest.raises(ResourceLeakError) as exc:
            runp(main, 2, sanitize=True)
        (rec,) = _leak_of(exc, "rma_lock")
        assert rec.op == "win_lock" and rec.rank == 0 and rec.peer == 1

    def test_orphan_posted_recv_is_reported(self):
        """A mailbox-level posted receive with no owning tracked request."""
        auditor = ResourceAuditor()
        machine = Machine(2, auditor=auditor)
        machine.world.mailboxes[0].post(source=1, tag=11, post_clock=0.0)
        report = auditor.collect(machine)
        (rec,) = report.by_kind()["posted_recv"]
        assert rec.kind == "posted_recv" and rec.peer == 1 and rec.tag == 11
        assert "never matched" in rec.detail

    def test_unreturned_lease_is_reported(self):
        """A communicator lease never returned (the Cluster.shutdown path;
        the full service-level round trip lives in tests/service/)."""
        class _Lease:
            op = "comm_lease"
            returned = False

        auditor = ResourceAuditor()
        machine = Machine(2, auditor=auditor)
        lease = _Lease()
        auditor.track_lease(lease, comm=("cluster-lease", 0),
                            detail="lease 'job-7' never returned at shutdown")
        report = auditor.collect(machine)
        (rec,) = report.by_kind()["lease"]
        assert rec.kind == "lease" and rec.op == "comm_lease"
        assert "never returned" in rec.detail
        assert rec.origin  # creation backtrace rides along, like every kind
        # the release is observed passively through the lease's own state
        lease.returned = True
        assert not auditor.collect(machine).by_kind().get("lease")

    def test_every_leak_kind_has_a_true_positive(self):
        """Meta-check: the tests above cover the full LEAK_KINDS catalogue."""
        import inspect

        covered = set()
        for name, fn in inspect.getmembers(TestDeliberateLeaks):
            if name.startswith("test_") and fn is not None:
                try:
                    src = inspect.getsource(fn)
                except (OSError, TypeError):
                    continue
                covered |= {k for k in LEAK_KINDS if f'"{k}"' in src}
        assert covered >= set(LEAK_KINDS)


# ---------------------------------------------------------------------------
# True negatives: the same patterns, completed properly
# ---------------------------------------------------------------------------


class TestCleanRuns:
    def test_completed_p2p_and_collectives_audit_clean(self):
        def main(comm):
            from repro.mpi import SUM

            if comm.rank == 0:
                comm.send(np.arange(3), dest=1, tag=1)
            else:
                comm.recv(source=0, tag=1)
            req = comm.irecv(source=comm.rank, tag=2)
            comm.send(np.array([comm.rank]), dest=comm.rank, tag=2)
            req.wait()
            comm.ibarrier().wait()
            return comm.allreduce(1, SUM)

        res = runp(main, 2, sanitize=True)
        assert res.values == [2, 2]
        assert not res.leaks and len(res.leaks) == 0

    def test_cancelled_irecv_audits_clean(self):
        def main(comm):
            req = comm.irecv(source=1, tag=9)
            assert req.cancel()
            comm.barrier()

        res = runp(main, 2, sanitize=True)
        assert not res.leaks

    def test_matched_issend_audits_clean(self):
        def main(comm):
            if comm.rank == 0:
                comm.issend(np.array([1]), dest=1, tag=5).wait()
                return None
            comm.recv(source=0, tag=5)

        assert not runp(main, 2, sanitize=True).leaks

    def test_waited_isend_releases_poison(self):
        def main(comm):
            if comm.rank == 0:
                comm.isend(send_buf_out(np.arange(8)), destination(1)).wait()
                return None
            comm.recv(source(0))

        assert not runk(main, 2, sanitize=True).leaks

    def test_locked_then_unlocked_window_audits_clean(self):
        def main(comm):
            win = comm.win_create(np.zeros(2, dtype=np.int64))
            win.fence()
            if comm.rank == 0:
                with win.locked(1):
                    win.put([7], target=1)
            win.fence()
            return int(win.local[0])

        res = runk(main, 2, sanitize=True)
        assert not res.leaks and res.values[1] == 7

    def test_unsanitized_run_reports_nothing(self):
        def main(comm):
            if comm.rank == 0:
                comm.irecv(source=1, tag=7)  # leaks — but nobody is looking

        res = runp(main, 2, sanitize=False)
        assert res.leaks is None


# ---------------------------------------------------------------------------
# Soft mode, trace export, environment gates
# ---------------------------------------------------------------------------


class TestReportingModes:
    def test_failed_rank_reports_but_does_not_raise(self):
        """Teardown after a process failure is legitimately dirty: the
        report is attached to the result, the run itself succeeds."""
        def main(comm):
            if comm.rank == 1:
                comm.raw.kill_self()
            else:
                comm.raw.send(np.array([1]), dest=1, tag=2)  # never drained

        res = runk(main, 2, sanitize=True)
        assert res.failed == frozenset({1})
        assert res.leaks and res.leaks.by_kind().get("unexpected")

    def test_leaks_flow_into_chrome_trace(self):
        tracer = TraceRecorder(2)

        def main(comm):
            if comm.rank == 0:
                comm.irecv(source=1, tag=7)

        with pytest.raises(ResourceLeakError):
            runp(main, 2, sanitize=True, trace=tracer)
        leak_events = [e for e in tracer.events_for(0) if e.op.startswith("leak:")]
        assert [e.op for e in leak_events] == ["leak:request"]
        chrome = tracer.to_chrome_trace()
        cats = {e["cat"] for e in chrome["traceEvents"] if e["name"].startswith("leak:")}
        assert cats == {"sanitizer"}

    def test_env_gate_enables_sanitizer(self, monkeypatch):
        def main(comm):
            if comm.rank == 0:
                comm.irecv(source=1, tag=7)

        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert env_sanitize_default()
        with pytest.raises(ResourceLeakError):
            run_mpi(main, 2)
        monkeypatch.setenv("REPRO_SANITIZE", "0")
        assert not env_sanitize_default()
        run_mpi(main, 2)  # same leak, nobody looking

    def test_env_fuzz_seed_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_FUZZ_SEED", raising=False)
        assert env_fuzz_seed_default() is None
        monkeypatch.setenv("REPRO_FUZZ_SEED", "42")
        assert env_fuzz_seed_default() == 42

    def test_empty_report_is_falsy_and_summarizes(self):
        report = LeakReport()
        assert not report and len(report) == 0 and list(report) == []
        assert "no leaked" in report.summary()


class TestSoftModeOnFailedRuns:
    """Failed-rank runs audit in soft mode: report everything, raise nothing.

    A rank that dies mid-operation tears down with requests posted, envelopes
    undrained, and locks held — that is what dying *means*, not a bug in the
    surviving code.  The auditor therefore only attaches the report to the
    result when any rank failed; the identical leak in a failure-free run is
    a hard :class:`ResourceLeakError`.
    """

    def test_killed_ranks_own_resources_reported_not_raised(self):
        """The victim's leaked receive is in the report, but the run passes."""
        def main(comm):
            if comm.rank == 0:
                comm.irecv(source=1, tag=9)  # posted, then the rank dies
                comm.kill_self()

        res = runp(main, 2, sanitize=True)
        assert res.failed == frozenset({0})
        recs = res.leaks.by_kind().get("request")
        assert recs and recs[0].world_rank == 0 and recs[0].tag == 9

    def test_survivor_leak_on_failed_run_is_soft_too(self):
        """Soft mode is run-global: once any rank died, even a *survivor's*
        genuine leak only reports — failure unwinding routinely strands
        survivor-side resources (e.g. a recv posted at a now-dead peer), and
        the auditor cannot attribute blame post-mortem."""
        def main(comm):
            if comm.rank == 1:
                comm.kill_self()
            else:
                comm.irecv(source=1, tag=3)  # never completes: peer is dead

        res = runp(main, 2, sanitize=True)
        assert res.failed == frozenset({1})
        recs = res.leaks.by_kind().get("request")
        assert recs and recs[0].world_rank == 0

    def test_same_survivor_leak_in_clean_run_still_raises(self):
        """The control for the soft path: no failure → the identical leaked
        request is a hard error."""
        def main(comm):
            if comm.rank == 0:
                comm.irecv(source=1, tag=3)

        with pytest.raises(ResourceLeakError) as exc:
            runp(main, 2, sanitize=True)
        (rec,) = _leak_of(exc, "request")
        assert rec.world_rank == 0 and rec.tag == 3

    def test_campaign_killed_rank_gets_soft_mode(self):
        """Fault-campaign kills count as failures for the soft-mode gate."""
        from repro.mpi import FaultCampaign, KillOnOp, RawProcessFailure

        def main(comm):
            if comm.rank == 1:
                comm.send(np.array([5]), dest=0, tag=1)
            else:
                comm.irecv(source=1, tag=8)
                try:
                    comm.recv(source=1, tag=1)
                except RawProcessFailure:
                    pass

        camp = FaultCampaign([KillOnOp(rank=1, op="send", nth=1)])
        res = runp(main, 2, sanitize=True, faults=camp)
        assert res.failed == frozenset({1})
        assert res.leaks and res.leaks.by_kind().get("request")


# ---------------------------------------------------------------------------
# Schedule fuzzer: determinism contract and seed minimization
# ---------------------------------------------------------------------------


class TestScheduleFuzzer:
    def test_jitter_streams_are_seed_deterministic(self):
        a = [ScheduleFuzzer(3).jitter(0.01) for _ in range(1)]
        seq = lambda seed: [ScheduleFuzzer(seed).jitter(0.01) for _ in range(1)]
        # a fresh fuzzer with the same seed replays the identical stream
        f1, f2 = ScheduleFuzzer(3), ScheduleFuzzer(3)
        assert [f1.jitter(0.01) for _ in range(32)] == [
            f2.jitter(0.01) for _ in range(32)
        ]
        assert seq(3) != seq(4)
        assert a == seq(3)[:1]

    def test_jitter_stays_in_bounds(self):
        fz = ScheduleFuzzer(0)
        for _ in range(200):
            j = fz.jitter(0.01)
            assert 0.0025 <= j <= 0.0175
        assert fz.jitter(0.0) == pytest.approx(1e-4)  # floored

    def test_streams_are_keyed_by_thread_name(self):
        import threading

        def draws(fz, name):
            out = {}

            def body():
                out[name] = [fz.jitter(0.01) for _ in range(8)]

            t = threading.Thread(target=body, name=name)
            t.start()
            t.join()
            return out[name]

        fz1, fz2 = ScheduleFuzzer(7), ScheduleFuzzer(7)
        assert draws(fz1, "rank-0") == draws(fz2, "rank-0")
        assert draws(fz1, "rank-1") != draws(fz2, "rank-0")

    def test_fuzzed_run_is_correct_and_leak_free(self):
        def main(comm):
            from repro.mpi import SUM

            if comm.rank == 0:
                comm.send(np.arange(10), dest=1, tag=1)
            else:
                comm.recv(source=0, tag=1)
            return comm.allreduce(comm.rank, SUM)

        for seed in (0, 1, 2):
            res = runp(main, 2, sanitize=True, fuzz_seed=seed)
            assert res.values == [1, 1] and not res.leaks

    def test_fuzzing_does_not_change_virtual_time(self):
        def main(comm):
            from repro.mpi import SUM

            comm.allreduce(np.arange(64), SUM)
            return comm.clock.now

        base = runp(main, 4)
        fuzzed = runp(main, 4, fuzz_seed=5)
        assert base.values == fuzzed.values

    def test_minimize_failing_seeds(self):
        def run(seed):
            if seed % 3 == 0:
                raise ValueError(seed)

        assert minimize_failing_seeds(run, range(10)) == [0, 3, 6, 9]
        assert minimize_failing_seeds(run, range(10), stop_after=1) == [0]
        assert minimize_failing_seeds(run, [1, 2, 4]) == []

"""The collective algorithm registry and selection engine.

Three layers of coverage:

1. **Registry invariants** — the headline collectives carry the promised
   implementations, defaults are the seed algorithms, lookups fail loudly.
2. **Forced-algorithm matrix** — every registered algorithm of every
   collective produces results (and PMPI counters) identical to the default
   algorithm, across power-of-two and ragged rank counts.  This is the
   deterministic fast-lane core; the hypothesis suite in
   ``test_algorithms_properties.py`` re-runs the matrix against sequential
   references with random payloads.
3. **Selection semantics** — precedence (overrides > env > tuning > policy),
   size-bucketed tuning rules, the cost-model policy, rank-local
   ``use_algorithms`` scoping, golden-trace bit-compatibility of the default
   engine, and the singleton (p=1) fast paths.
"""

import functools

import numpy as np
import pytest

from repro.core import op as op_param
from repro.core import send_buf
from repro.core.errors import UsageError
from repro.core.runner import run as run_kamping
from repro.mpi import (
    FREE,
    CollectiveEngine,
    CostModel,
    RawUsageError,
    SUM,
    algorithms,
    expect_calls,
    run_mpi,
    user_op,
)
from repro.mpi.engine import forced_from_env


def _engine(**kw) -> CollectiveEngine:
    """An engine blind to the process environment (CI forces REPRO_COLL_*)."""
    kw.setdefault("env", {})
    return CollectiveEngine(FREE, **kw)


# ---------------------------------------------------------------------------
# registry invariants
# ---------------------------------------------------------------------------


#: the tentpole contract: every headline collective offers these algorithms
HEADLINE = {
    "bcast": {"binomial", "linear", "scatter_allgather"},
    "allgather": {"bruck", "ring", "gather_bcast"},
    "allreduce": {"recursive_doubling", "reduce_bcast", "ring"},
    "alltoallv": {"pairwise", "spread"},
}

#: the seed's original algorithm per collective (bit-compatible defaults)
SEED_DEFAULTS = {
    "barrier": "dissemination",
    "bcast": "binomial",
    "gather": "binomial",
    "gatherv": "linear",
    "scatter": "linear",
    "scatterv": "linear",
    "allgather": "bruck",
    "allgatherv": "ring",
    "alltoall": "pairwise",
    "alltoallv": "pairwise",
    "alltoallw": "pairwise",
    "reduce": "binomial",
    "allreduce": "recursive_doubling",
    "scan": "doubling",
    "exscan": "doubling",
    "neighbor_alltoall": "direct",
    "neighbor_alltoallv": "direct",
}


def test_headline_collectives_have_promised_algorithms():
    for op, names in HEADLINE.items():
        assert names <= set(algorithms.names(op)), op


def test_defaults_are_the_seed_algorithms():
    assert set(algorithms.collectives()) == set(SEED_DEFAULTS)
    for op, name in SEED_DEFAULTS.items():
        assert algorithms.default_name(op) == name
        assert algorithms.names(op)[0] == name  # default listed first
        assert algorithms.default(op) is algorithms.get(op, name)


def test_unknown_lookups_fail_with_available_names():
    with pytest.raises(RawUsageError, match="registered: bruck"):
        algorithms.get("allgather", "nope")
    with pytest.raises(RawUsageError, match="unknown collective"):
        algorithms.names("frobnicate")


def test_headline_algorithms_carry_cost_formulas():
    for op in HEADLINE:
        for algo in algorithms.algorithms(op):
            assert algo.cost is not None, (op, algo.name)
            cost = algo.predict(8, 4096, CostModel())
            assert np.isfinite(cost) and cost > 0.0


def test_predict_without_cost_formula_raises():
    algo = algorithms.get("neighbor_alltoall", "direct")
    with pytest.raises(RawUsageError, match="no cost formula"):
        algo.predict(4, 0, CostModel())


# ---------------------------------------------------------------------------
# forced-algorithm matrix: every algorithm ≡ the default
# ---------------------------------------------------------------------------

_NONCOMM = user_op(lambda a, b: np.asarray(a) * 2 + np.asarray(b),
                   commutative=False, name="affine")


def _scn_barrier(comm):
    for _ in range(2):
        comm.barrier()
    return comm.rank


def _scn_bcast(comm):
    root = comm.size - 1
    obj = comm.bcast({"k": [1, 2]} if comm.rank == root else None, root)
    arr = comm.bcast(np.arange(3 * comm.size, dtype=np.int64)
                     if comm.rank == 0 else None, 0)
    short = comm.bcast("tiny" if comm.rank == 0 else None, 0)
    return obj, arr.tolist(), short


def _scn_gather(comm):
    out = comm.gather(comm.rank * 2 + 1, comm.size - 1)
    return out


def _scn_gatherv(comm):
    block = np.full(comm.rank + 1, comm.rank, dtype=np.int64)
    counts = [r + 1 for r in range(comm.size)] if comm.rank == 0 else None
    out = comm.gatherv(block, counts, 0)
    return None if out is None else out.tolist()


def _scn_scatter(comm):
    root = comm.size - 1
    payloads = [[r, r * r] for r in range(comm.size)] if comm.rank == root else None
    return comm.scatter(payloads, root)


def _scn_scatterv(comm):
    counts = [r + 1 for r in range(comm.size)]
    buf = np.arange(sum(counts), dtype=np.int64) if comm.rank == 0 else None
    return comm.scatterv(buf, counts if comm.rank == 0 else None, 0).tolist()


def _scn_allgather(comm):
    return comm.allgather((comm.rank, "x" * comm.rank))


def _scn_allgatherv(comm):
    block = np.full(comm.rank + 1, comm.rank + 10, dtype=np.int64)
    counts = [r + 1 for r in range(comm.size)]
    return comm.allgatherv(block, counts).tolist()


def _scn_alltoall(comm):
    return comm.alltoall([comm.rank * 100 + d for d in range(comm.size)])


def _scn_alltoallv(comm):
    p = comm.size
    counts = [(comm.rank + d) % 3 for d in range(p)]
    rcounts = [(s + comm.rank) % 3 for s in range(p)]
    buf = np.arange(sum(counts), dtype=np.int64) + 1000 * comm.rank
    return comm.alltoallv(buf, counts, rcounts).tolist()


def _scn_alltoallw(comm):
    blocks = [np.full(2, comm.rank * 10 + d, dtype=np.int64)
              for d in range(comm.size)]
    return [np.asarray(b).tolist() for b in comm.alltoallw(blocks)]


def _scn_reduce(comm):
    s = comm.reduce(np.arange(4, dtype=np.int64) + comm.rank, SUM, 0)
    nc = comm.reduce(np.int64(comm.rank + 1), _NONCOMM, comm.size - 1)
    return (None if s is None else s.tolist(),
            None if nc is None else int(nc))


def _scn_allreduce(comm):
    s = comm.allreduce(np.arange(comm.size + 2, dtype=np.int64) + comm.rank, SUM)
    nc = comm.allreduce(np.int64(comm.rank + 1), _NONCOMM)
    return s.tolist(), int(nc)


def _scn_scan(comm):
    return int(comm.scan(np.int64(comm.rank + 1), SUM))


def _scn_exscan(comm):
    out = comm.exscan(np.int64(comm.rank + 1), SUM)
    return None if out is None else int(out)


SCENARIOS = {
    "barrier": _scn_barrier,
    "bcast": _scn_bcast,
    "gather": _scn_gather,
    "gatherv": _scn_gatherv,
    "scatter": _scn_scatter,
    "scatterv": _scn_scatterv,
    "allgather": _scn_allgather,
    "allgatherv": _scn_allgatherv,
    "alltoall": _scn_alltoall,
    "alltoallv": _scn_alltoallv,
    "alltoallw": _scn_alltoallw,
    "reduce": _scn_reduce,
    "allreduce": _scn_allreduce,
    "scan": _scn_scan,
    "exscan": _scn_exscan,
}


def _matrix_cases():
    # neighbor collectives need a topology communicator; their single direct
    # algorithm is exercised by tests/mpi/test_collectives.py
    for op in sorted(SCENARIOS):
        for name in algorithms.names(op):
            yield op, name


@functools.lru_cache(maxsize=None)
def _baseline(op: str, p: int):
    res = run_mpi(SCENARIOS[op], p, cost_model=FREE, engine=_engine(),
                  deadline=30.0)
    return res.values, res.counts


@pytest.mark.parametrize("p", (2, 3, 4, 8))
@pytest.mark.parametrize("op,name", list(_matrix_cases()))
def test_every_algorithm_matches_the_default(op, name, p):
    values, counts = _baseline(op, p)
    res = run_mpi(SCENARIOS[op], p, cost_model=FREE,
                  engine=_engine(overrides={op: name}), deadline=30.0)
    assert res.values == values
    # PMPI counts at the public layer are algorithm-independent
    assert res.counts == counts


@pytest.mark.parametrize("op,name", [(op, n) for op, names in HEADLINE.items()
                                     for n in names])
def test_headline_algorithms_at_sixteen_ranks(op, name):
    values, counts = _baseline(op, 16)
    res = run_mpi(SCENARIOS[op], 16, cost_model=FREE,
                  engine=_engine(overrides={op: name}), deadline=30.0)
    assert res.values == values
    assert res.counts == counts


def test_forced_algorithm_shows_up_in_the_trace():
    res = run_mpi(_scn_allgather, 4, cost_model=FREE, trace=True,
                  engine=_engine(overrides={"allgather": "ring"}))
    assert res.algorithms_used()["allgather"] == ("ring",)
    assert "allgather[ring]" in res.op_bytes(by_algorithm=True)


# ---------------------------------------------------------------------------
# engine selection semantics (no threads needed)
# ---------------------------------------------------------------------------


class TestEngineSelection:
    def test_default_policy_picks_seed_algorithms(self):
        eng = _engine()
        for op, name in SEED_DEFAULTS.items():
            assert eng.resolve(op, p=8).name == name

    def test_env_forcing_and_parse_errors(self):
        eng = CollectiveEngine(FREE, env={"REPRO_COLL_ALLGATHER": "ring"})
        assert eng.resolve("allgather", p=8).name == "ring"
        assert eng.resolve("bcast", p=8).name == "binomial"
        with pytest.raises(RawUsageError, match="unknown collective"):
            forced_from_env({"REPRO_COLL_FROB": "x"})
        with pytest.raises(RawUsageError, match="unknown algorithm"):
            CollectiveEngine(FREE, env={"REPRO_COLL_BCAST": "nope"})
        with pytest.raises(RawUsageError, match="unknown selection policy"):
            CollectiveEngine(FREE, env={"REPRO_COLL_POLICY": "magic"})

    def test_ctor_overrides_beat_env(self):
        eng = CollectiveEngine(FREE, env={"REPRO_COLL_ALLGATHER": "ring"},
                               overrides={"allgather": "gather_bcast"})
        assert eng.resolve("allgather", p=8).name == "gather_bcast"

    def test_forcing_beats_tuning_and_policy(self):
        eng = _engine(policy="costmodel", overrides={"alltoallv": "pairwise"})
        eng.tune("c", "alltoallv", algorithm="spread")
        assert eng.resolve("alltoallv", p=8, comm_id="c").name == "pairwise"

    def test_tuning_rules_first_match_by_size(self):
        eng = _engine()
        eng.tune("c", "bcast", rules=[(1024, "binomial"), (None, "linear")])
        assert eng.resolve("bcast", p=8, nbytes=100, comm_id="c").name == "binomial"
        assert eng.resolve("bcast", p=8, nbytes=4096, comm_id="c").name == "linear"
        # other communicators are untouched
        assert eng.resolve("bcast", p=8, nbytes=4096, comm_id="d").name == "binomial"
        assert eng.rules("c", "bcast") == ((1024, "binomial"), (None, "linear"))
        eng.untune("c")
        assert eng.rules("c", "bcast") is None
        assert eng.resolve("bcast", p=8, nbytes=4096, comm_id="c").name == "binomial"

    def test_tune_validates_eagerly(self):
        eng = _engine()
        with pytest.raises(RawUsageError, match="unknown algorithm"):
            eng.tune("c", "bcast", algorithm="nope")
        with pytest.raises(RawUsageError, match="exactly one"):
            eng.tune("c", "bcast")

    def test_rule_boundary_is_inclusive(self):
        # nbytes == max_bytes takes the rule: thresholds are inclusive upper
        # bounds, pinned here so learned tables and hand-tuned tables agree
        # on who owns the boundary byte
        eng = _engine()
        eng.tune("c", "bcast", rules=[(1024, "binomial"), (None, "linear")])
        assert eng.resolve("bcast", p=8, nbytes=1024, comm_id="c").name == \
            "binomial"
        assert eng.resolve("bcast", p=8, nbytes=1025, comm_id="c").name == \
            "linear"
        assert eng.resolve("bcast", p=8, nbytes=0, comm_id="c").name == \
            "binomial"
        # a zero-threshold bucket still owns exactly nbytes == 0
        eng.tune("c", "bcast", rules=[(0, "linear"), (None, "binomial")])
        assert eng.resolve("bcast", p=8, nbytes=0, comm_id="c").name == "linear"
        assert eng.resolve("bcast", p=8, nbytes=1, comm_id="c").name == \
            "binomial"

    def test_rules_are_canonicalized_on_install(self):
        # Pre-fix, this unsorted list silently resolved first-match: the
        # catch-all shadowed the 1 KiB bucket for *every* call.  Install now
        # sorts (None last), so both buckets are live.
        eng = _engine()
        eng.tune("c", "bcast", rules=[(None, "linear"), (1024, "binomial")])
        assert eng.rules("c", "bcast") == ((1024, "binomial"), (None, "linear"))
        assert eng.resolve("bcast", p=8, nbytes=100, comm_id="c").name == \
            "binomial"
        assert eng.resolve("bcast", p=8, nbytes=4096, comm_id="c").name == \
            "linear"

    def test_overlapping_or_invalid_rules_are_rejected(self):
        eng = _engine()
        with pytest.raises(RawUsageError, match="duplicate max_bytes=1024"):
            eng.tune("c", "bcast",
                     rules=[(1024, "binomial"), (1024, "linear")])
        with pytest.raises(RawUsageError, match="duplicate catch-all"):
            eng.tune("c", "bcast",
                     rules=[(None, "binomial"), (None, "linear")])
        with pytest.raises(RawUsageError, match="must be >= 0"):
            eng.tune("c", "bcast", rules=[(-1, "binomial")])
        with pytest.raises(RawUsageError, match="must be int or None"):
            eng.tune("c", "bcast", rules=[(10.5, "binomial")])
        with pytest.raises(RawUsageError, match="empty tuning-rule list"):
            eng.tune("c", "bcast", rules=[])
        # nothing was installed by the failed attempts
        assert eng.rules("c", "bcast") is None

    def test_install_tuning_records_provenance(self):
        eng = _engine()
        eng.tune("c", "bcast", algorithm="linear")
        eng.install_tuning("c", "reduce", "linear", source="learned")
        with pytest.raises(RawUsageError, match="unknown tuning source"):
            eng.install_tuning("c", "scan", "linear", source="psychic")
        assert eng.explain("bcast", p=8, comm_id="c").source == "tuned"
        d = eng.explain("reduce", p=8, comm_id="c")
        assert d.source == "learned" and d.algorithm == "linear"
        assert d.rule == (None, "linear")
        assert eng.explain("bcast", p=8, comm_id="other").source == "default"
        forced = _engine(overrides={"bcast": "linear"})
        assert forced.explain("bcast", p=8).source == "forced"
        argmin = _engine(policy="costmodel")
        assert argmin.explain("allgather", p=8, nbytes=64).source == "costmodel"
        scoped = eng.explain("bcast", p=8, comm_id="c",
                             scoped=((None, "binomial"),))
        assert scoped.source == "scoped" and scoped.algorithm == "binomial"
        # untune clears the provenance with the rules
        eng.untune("c")
        assert eng.describe()["tuning_sources"] == {}

    def test_decision_recording_is_opt_in(self):
        eng = _engine()
        eng.resolve("bcast", p=8)
        assert eng.decisions == []
        eng.record_decisions = True
        eng.install_tuning("c", "bcast", "linear", source="learned")
        eng.resolve("bcast", p=8, comm_id="c")
        eng.resolve("allgather", p=4)
        assert [(d.op, d.algorithm, d.source) for d in eng.decisions] == [
            ("bcast", "linear", "learned"),
            ("allgather", "bruck", "default"),
        ]
        # peek stays side-effect-free
        eng.peek("bcast", p=8, comm_id="c")
        assert len(eng.decisions) == 2

    def test_size_sensitivity_gates_payload_sizing(self):
        # zero-overhead principle: the pure-default hot path never sizes
        eng = _engine()
        assert not eng.size_sensitive("allgather")
        # forced selection needs no size either
        forced = _engine(overrides={"allgather": "ring"})
        assert not forced.size_sensitive("allgather")
        # size-conditional tuning rules do
        eng.tune("c", "bcast", rules=[(1024, "binomial"), (None, "linear")])
        assert eng.size_sensitive("bcast", "c")
        # unconditional rules do not
        eng.tune("c", "allgather", algorithm="ring")
        assert not eng.size_sensitive("allgather", "c")
        # the cost-model policy always does
        assert _engine(policy="costmodel").size_sensitive("allgather")

    def test_costmodel_policy_argmin_with_default_tiebreak(self):
        eng = _engine(policy="costmodel")
        cm = eng.cost_model
        for op in HEADLINE:
            for p in (4, 16):
                for nbytes in (0, 64, 1 << 20):
                    picked = eng.resolve(op, p=p, nbytes=nbytes)
                    best = min(a.predict(p, nbytes, cm)
                               for a in algorithms.algorithms(op)
                               if a.cost is not None)
                    assert picked.predict(p, nbytes, cm) == best

    def test_costmodel_ties_keep_the_seed_default(self):
        # under the FREE model every formula evaluates to 0 ⇒ all ties
        eng = CollectiveEngine(FREE, policy="costmodel", env={})
        assert eng.cost_model is FREE
        for op in HEADLINE:
            assert eng.resolve(op, p=8, nbytes=4096).name == SEED_DEFAULTS[op]

    def test_describe_snapshot(self):
        eng = _engine(policy="costmodel", overrides={"bcast": "linear"})
        eng.tune("c", "allgather", algorithm="ring")
        desc = eng.describe()
        assert desc["policy"] == "costmodel"
        assert desc["forced"] == {"bcast": "linear"}
        assert desc["tuning"] == {"c/allgather": [(None, "ring")]}


def test_costmodel_policy_runs_end_to_end():
    res = run_mpi(_scn_alltoallv, 4, trace=True,
                  engine=CollectiveEngine(CostModel(), policy="costmodel",
                                          env={}))
    baseline = run_mpi(_scn_alltoallv, 4, engine=_engine())
    assert res.values == baseline.values
    # on a contention-free α-β model the argmin picks the spread schedule
    assert res.algorithms_used()["alltoallv"] == ("spread",)


# ---------------------------------------------------------------------------
# rank-local use_algorithms scoping (bindings layer)
# ---------------------------------------------------------------------------


class TestUseAlgorithms:
    def test_scoped_selection_and_restore(self):
        def main(comm):
            with comm.use_algorithms(allgather="ring"):
                inside = comm.allgather(send_buf(np.int64(comm.rank)))
            outside = comm.allgather(send_buf(np.int64(comm.rank)))
            return np.asarray(inside).tolist(), np.asarray(outside).tolist()

        res = run_kamping(main, 4, cost_model=FREE, trace=True,
                          engine=_engine())
        expected = list(range(4))
        assert all(v == (expected, expected) for v in res.values)
        assert res.algorithms_used()["allgather"] == ("bruck", "ring")

    def test_size_bucketed_rules(self):
        def main(comm):
            with comm.use_algorithms(
                    allgather=[(2 * 8, "ring"), (None, "gather_bcast")]):
                small = comm.allgather(send_buf(np.int64(comm.rank)))
                big = comm.allgather(
                    send_buf(np.full(64, comm.rank, dtype=np.int64)))
            return np.asarray(small).tolist(), len(big)

        res = run_kamping(main, 4, cost_model=FREE, trace=True,
                          engine=_engine())
        assert res.algorithms_used()["allgather"] == ("gather_bcast", "ring")

    def test_scoped_rules_are_canonicalized_too(self):
        # the same canonicalization install_tuning applies: an unsorted
        # scope (catch-all written first) must not shadow the small bucket
        def main(comm):
            with comm.use_algorithms(
                    allgather=[(None, "gather_bcast"), (2 * 8, "ring")]):
                small = comm.allgather(send_buf(np.int64(comm.rank)))
                big = comm.allgather(
                    send_buf(np.full(64, comm.rank, dtype=np.int64)))
            return np.asarray(small).tolist(), len(big)

        res = run_kamping(main, 4, cost_model=FREE, trace=True,
                          engine=_engine())
        assert res.algorithms_used()["allgather"] == ("gather_bcast", "ring")

    def test_scoped_overlapping_rules_raise(self):
        def main(comm):
            with pytest.raises(UsageError, match="overlapping tuning rules"):
                with comm.use_algorithms(allgather=[(8, "ring"),
                                                    (8, "gather_bcast")]):
                    pass
            return True

        assert all(run_kamping(main, 2, cost_model=FREE).values)

    def test_nesting_restores_outer_selection(self):
        def main(comm):
            with comm.use_algorithms(allgather="ring"):
                with comm.use_algorithms(allgather="gather_bcast"):
                    comm.allgather(send_buf(np.int64(comm.rank)))
                comm.allgather(send_buf(np.int64(comm.rank)))
            return True

        res = run_kamping(main, 3, cost_model=FREE, trace=True,
                          engine=_engine())
        assert all(res.values)
        assert res.algorithms_used()["allgather"] == ("gather_bcast", "ring")

    def test_unknown_name_raises_bindings_usage_error(self):
        def main(comm):
            with pytest.raises(UsageError, match="unknown algorithm"):
                with comm.use_algorithms(allgather="nope"):
                    pass
            return True

        assert all(run_kamping(main, 2, cost_model=FREE).values)

    def test_scoping_is_per_communicator(self):
        def main(comm):
            sub = comm.dup()
            with comm.use_algorithms(allgather="ring"):
                sub.allgather(send_buf(np.int64(comm.rank)))
            return True

        res = run_kamping(main, 2, cost_model=FREE, trace=True,
                          engine=_engine())
        assert all(res.values)
        # the dup'd communicator kept the default (plus the management
        # allgather that dup itself performs on the parent)
        assert "ring" not in res.algorithms_used()["allgather"]


# ---------------------------------------------------------------------------
# golden-trace bit-compatibility: default engine ≡ seed algorithms
# ---------------------------------------------------------------------------


def test_default_engine_reproduces_seed_traces_bit_for_bit():
    def main(comm):
        v = np.arange(comm.rank + 1, dtype=np.int64)
        out = comm.allgatherv(send_buf(v))
        comm.allreduce(send_buf(np.arange(4, dtype=np.int64)), op_param(SUM))
        return out.tolist()

    # "legacy" pins every collective to the seed algorithm explicitly;
    # the default engine must make the exact same choices
    legacy = run_kamping(main, 4, trace=True,
                         engine=_engine(overrides=dict(SEED_DEFAULTS)))
    default = run_kamping(main, 4, trace=True, engine=_engine())
    assert default.values == legacy.values
    assert default.times == legacy.times
    assert default.counts == legacy.counts
    assert default.comm_seconds == legacy.comm_seconds
    for r in range(4):
        assert default.trace.events_for(r) == legacy.trace.events_for(r)
    assert default.chrome_trace() == legacy.chrome_trace()


# ---------------------------------------------------------------------------
# singleton (p=1) fast paths: zero p2p traffic, zero virtual time
# ---------------------------------------------------------------------------


def _singleton_scenarios():
    for op in sorted(SCENARIOS):
        yield op


@pytest.mark.parametrize("op", list(_singleton_scenarios()))
def test_singleton_fast_path_is_commfree(op):
    def main(comm):
        with expect_calls(comm, **{o: c for o, c in _expected_counts(op)}):
            return SCENARIOS[op](comm)

    res = run_mpi(main, 1, engine=_engine())  # default CostModel: α,β > 0
    assert res.comm_seconds == [0.0]
    if op != "alltoallw":  # keeps its derived-datatype compute penalty
        assert res.times == [0.0]
    else:
        assert res.times[0] > 0.0


def _expected_counts(op):
    # every scenario issues only its own collective; bcast/barrier issue >1
    return {"barrier": [("barrier", 2)], "bcast": [("bcast", 3)],
            "reduce": [("reduce", 2)], "allreduce": [("allreduce", 2)],
            }.get(op, [(op, 1)])


def test_singleton_wins_over_forced_selection():
    res = run_mpi(_scn_bcast, 1,
                  engine=_engine(overrides={"bcast": "scatter_allgather"}))
    assert res.comm_seconds == [0.0]
    assert res.times == [0.0]


def test_singleton_preserves_legacy_validation():
    # the fast path still validates arguments the way the real algorithms do
    def bad_counts(comm):
        with pytest.raises(RawUsageError, match="length 1"):
            comm.gatherv(np.arange(3, dtype=np.int64), [1, 2], 0)
        return True

    def bad_root(comm):
        with pytest.raises(RawUsageError, match="out of range"):
            comm.bcast("x", 5)
        return True

    assert all(run_mpi(bad_counts, 1, engine=_engine()).values)
    assert all(run_mpi(bad_root, 1, engine=_engine()).values)

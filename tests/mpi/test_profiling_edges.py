"""Edge cases of the PMPI-style profiling helpers.

Covers the corners of :mod:`repro.mpi.profiling` the main suites skip over:
zero-expected ops, overlapping nested ``expect_calls`` blocks, empty
``call_delta`` snapshots, and the counters of a rank killed mid-run by a
:class:`~repro.mpi.failures.FailureScript` (dead ranks keep the calls they
made before dying).
"""

from collections import Counter

import pytest

from repro.mpi import SUM, call_delta, expect_calls, run_mpi, snapshot
from repro.mpi.failures import FailureScript
from tests.conftest import runp


class TestZeroExpectedOps:
    def test_zero_count_means_op_must_not_occur(self):
        def main(comm):
            with expect_calls(comm, barrier=0, send=0):
                comm.allreduce(1, SUM)
            return True

        with pytest.raises(RuntimeError, match="unexpected raw call"):
            runp(main, 2)

    def test_zero_count_passes_when_op_absent(self):
        def main(comm):
            with expect_calls(comm, barrier=0, allreduce=1):
                comm.allreduce(1, SUM)
            return True

        assert all(runp(main, 2).values)

    def test_empty_expectation_on_empty_block(self):
        def main(comm):
            with expect_calls(comm):
                pass
            return True

        assert all(runp(main, 2).values)

    def test_violating_zero_expectation_names_the_op(self):
        def main(comm):
            with expect_calls(comm, barrier=0):
                comm.barrier()

        with pytest.raises(RuntimeError, match=r"expected 0 × barrier"):
            runp(main, 2)


class TestNestedExpectCalls:
    def test_overlapping_blocks_each_see_their_own_delta(self):
        """The outer block counts the inner block's calls plus its own."""
        def main(comm):
            with expect_calls(comm, allreduce=2, barrier=1):
                comm.allreduce(1, SUM)
                with expect_calls(comm, allreduce=1):
                    comm.allreduce(2, SUM)
                comm.barrier()
            return True

        assert all(runp(main, 3).values)

    def test_inner_violation_raises_before_outer_exit(self):
        def main(comm):
            with expect_calls(comm, allreduce=2):
                with expect_calls(comm, allreduce=0):
                    comm.allreduce(1, SUM)
                comm.allreduce(2, SUM)

        with pytest.raises(RuntimeError, match=r"expected 0 × allreduce"):
            runp(main, 2)

    def test_sequential_blocks_do_not_leak_counts(self):
        def main(comm):
            with expect_calls(comm, barrier=1):
                comm.barrier()
            with expect_calls(comm, allreduce=1):
                comm.allreduce(1, SUM)
            return True

        assert all(runp(main, 2).values)


class TestCallDelta:
    def test_empty_delta_is_empty_counter(self):
        def main(comm):
            before = snapshot(comm)
            return call_delta(comm, before)

        res = runp(main, 2)
        assert all(delta == Counter() for delta in res.values)

    def test_delta_excludes_calls_before_the_snapshot(self):
        def main(comm):
            comm.barrier()
            comm.barrier()
            before = snapshot(comm)
            comm.allreduce(1, SUM)
            delta = call_delta(comm, before)
            return dict(delta)

        res = runp(main, 2)
        assert res.values == [{"allreduce": 1}] * 2

    def test_snapshot_is_isolated_from_later_calls(self):
        def main(comm):
            before = snapshot(comm)
            comm.barrier()
            return dict(before)

        res = runp(main, 2)
        assert res.values == [{}] * 2


class TestDeadRankCounters:
    def test_killed_rank_keeps_its_pre_death_counts(self):
        """A rank dying at a checkpoint leaves its PMPI counters frozen at
        the calls it made while alive; the survivor's profile is unaffected.
        """
        script = FailureScript({"mid": {1}})

        def main(comm, fs):
            if comm.rank == 1:
                comm.send((b"x" * 16), 0, tag=3)
                fs.checkpoint(comm, "mid")
                comm.send(b"never", 0, tag=4)  # unreachable
            elif comm.rank == 0:
                payload, status = comm.recv(1, 3)
                return len(payload)
            return None

        res = run_mpi(main, 2, args=(script,), deadline=5.0)
        assert res.failed == frozenset({1})
        assert res.values[1] is None
        assert res.values[0] == 16
        # the dead rank's profile records exactly its pre-death activity
        assert res.counts[1] == Counter({"send": 1})
        assert res.counts[0] == Counter({"recv": 1})

    def test_killed_rank_trace_matches_its_counters(self):
        """With tracing on, a dead rank's event log ends where it died and
        agrees with its frozen counters."""
        script = FailureScript({"mid": {1}})

        def main(comm, fs):
            if comm.rank == 1:
                comm.send(b"payload", 0, tag=1)
                fs.checkpoint(comm, "mid")
            elif comm.rank == 0:
                comm.recv(1, 1)
            return comm.rank

        res = run_mpi(main, 2, args=(script,), deadline=5.0, trace=True)
        assert res.failed == frozenset({1})
        dead_events = res.trace.events_for(1)
        assert [e.op for e in dead_events] == ["send"]
        assert dead_events[0].sent == len(b"payload")
        assert res.counts[1] == Counter({"send": 1})

"""Run-level watchdog: ``run_mpi(..., timeout=)`` and per-rank stack dumps.

The watchdog bounds a whole run in *real* seconds — the safety net for hangs
the per-op deadlock deadline cannot attribute (a rank blocked outside any
MPI op, or wedged application logic).  Expiry raises
:class:`~repro.mpi.errors.RunTimeout` whose ``stacks`` dict maps each
still-running rank thread to its Python stack at expiry.
"""

import pytest

from repro.mpi import (
    RawUsageError,
    RunTimeout,
    UnsupportedOnBackend,
    run_mpi,
)
from repro.mpi.watchdog import format_stacks


class TestRunWatchdog:
    def test_timeout_must_be_positive(self):
        for bad in (0, -1, -0.5):
            with pytest.raises(RawUsageError, match="timeout must be > 0"):
                run_mpi(lambda comm: None, 2, timeout=bad)

    def test_normal_run_unaffected(self):
        res = run_mpi(lambda comm: comm.rank, 2, timeout=30.0)
        assert res.values == [0, 1]

    def test_hung_run_raises_with_per_rank_stacks(self):
        def fn(comm):
            if comm.rank == 1:
                comm.recv(0, 7)     # rank 0 never sends: a real hang
            return "done"

        with pytest.raises(RunTimeout) as excinfo:
            run_mpi(fn, 2, timeout=0.75, deadline=10.0)
        err = excinfo.value
        assert "0.75s watchdog" in str(err)
        assert "rank-1" in err.stacks
        assert "recv" in err.stacks["rank-1"]
        # the dump is embedded in the message too, for bare tracebacks
        assert "--- rank-1 ---" in str(err)

    def test_finishing_before_expiry_wins(self):
        res = run_mpi(lambda comm: comm.rank * 2, 4, timeout=60.0)
        assert res.values == [0, 2, 4, 6]

    def test_process_backend_refuses_timeout_with_pinned_wording(self):
        with pytest.raises(UnsupportedOnBackend) as excinfo:
            run_mpi(lambda comm: None, 2, backend="process", timeout=5.0)
        assert str(excinfo.value) == (
            "the run watchdog with per-rank stack dumps (timeout=...) is "
            "not supported on the 'process' backend: it relies on "
            "shared-process state (timeout); run with backend='thread'"
        )

    def test_format_stacks_empty(self):
        assert "no rank threads alive" in format_stacks({})

"""Reduction operations and low-level payload handling."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.mpi import BAND, BOR, BXOR, LAND, LOR, LXOR, MAX, MIN, PROD, SUM, user_op
from repro.mpi.datatypes import concat_payloads, ensure_1d_array, payload_nbytes, snapshot


class TestOps:
    def test_builtin_identities(self):
        assert SUM.identity == 0
        assert PROD.identity == 1
        assert LAND.identity is True
        assert LOR.identity is False
        assert MAX.identity is None and MIN.identity is None

    def test_elementwise_on_arrays(self):
        a, b = np.array([1, 5]), np.array([4, 2])
        assert SUM(a, b).tolist() == [5, 7]
        assert MAX(a, b).tolist() == [4, 5]
        assert MIN(a, b).tolist() == [1, 2]
        assert PROD(a, b).tolist() == [4, 10]

    def test_bitwise_and_logical(self):
        assert BAND(0b1100, 0b1010) == 0b1000
        assert BOR(0b1100, 0b1010) == 0b1110
        assert BXOR(0b1100, 0b1010) == 0b0110
        assert bool(LAND(True, False)) is False
        assert bool(LOR(True, False)) is True
        assert bool(LXOR(True, True)) is False

    def test_user_op_metadata(self):
        op = user_op(lambda a, b: a - b, commutative=False, name="sub",
                     identity=0)
        assert not op.commutative
        assert op.name == "sub"
        assert op(10, 4) == 6


class TestPayloadSizes:
    def test_arrays_exact(self):
        assert payload_nbytes(np.zeros(10, dtype=np.int64)) == 80
        assert payload_nbytes(np.zeros(10, dtype=np.int32)) == 40

    def test_bytes_and_strings(self):
        assert payload_nbytes(b"abcd") == 4
        assert payload_nbytes("héllo") == len("héllo".encode())

    def test_scalars_and_none(self):
        assert payload_nbytes(7) == 8
        assert payload_nbytes(3.14) == 8
        assert payload_nbytes(None) == 0

    def test_numeric_lists(self):
        assert payload_nbytes([1, 2, 3]) == 24

    def test_objects_via_pickle(self):
        d = {"k": list(range(100))}
        assert payload_nbytes(d) > 100


class TestSnapshot:
    def test_array_snapshot_is_independent(self):
        a = np.array([1, 2])
        s = snapshot(a)
        a[0] = 99
        assert s[0] == 1

    def test_immutables_pass_through(self):
        for v in (b"x", "y", 1, 2.0, True, None):
            assert snapshot(v) is v

    def test_mutable_objects_deep_copied(self):
        d = {"xs": [1]}
        s = snapshot(d)
        d["xs"].append(2)
        assert s == {"xs": [1]}


class TestArrayHelpers:
    def test_ensure_1d_scalars_and_nd(self):
        assert ensure_1d_array(5).tolist() == [5]
        assert ensure_1d_array(np.ones((2, 3))).shape == (6,)

    def test_concat_arrays(self):
        out = concat_payloads([np.array([1]), np.array([2, 3])])
        assert out.tolist() == [1, 2, 3]

    def test_concat_mixed(self):
        out = concat_payloads([[1, 2], np.array([3]), 4])
        assert out == [1, 2, 3, 4]

    def test_concat_empty(self):
        assert concat_payloads([]) == []


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(min_value=-2**31, max_value=2**31), max_size=50))
def test_payload_nbytes_lists_proportional(xs):
    assert payload_nbytes(xs) == 8 * len(xs)

"""Virtual-time semantics of the cost model."""

import numpy as np
import pytest

from repro.mpi import FREE, CostModel, SUM, run_mpi
from tests.conftest import runp

CM = CostModel(alpha=1e-3, beta=1e-6, overhead=0.0)


def _times(fn, p, cm=CM):
    return run_mpi(fn, p, cost_model=cm).times


def test_free_model_costs_nothing():
    def main(comm):
        comm.allgather(comm.rank)
        comm.barrier()
        comm.send(np.arange(10), (comm.rank + 1) % comm.size)
        comm.recv((comm.rank - 1) % comm.size)

    times = _times(main, 4, FREE)
    assert all(t == 0.0 for t in times)


def test_p2p_latency_and_bandwidth():
    def main(comm):
        if comm.rank == 0:
            comm.send(np.zeros(1000, dtype=np.int64), 1)  # 8000 bytes
            return comm.clock.now
        comm.recv(0)
        return comm.clock.now

    times = run_mpi(main, 2, cost_model=CM).values
    expected = CM.alpha + 8000 * CM.beta
    assert times[1] == pytest.approx(expected, rel=1e-6)


def test_compute_charges_clock():
    def main(comm):
        comm.compute(0.5)
        return comm.clock.now, comm.clock.compute_seconds

    now, comp = runp(main, 1, cost_model=CM).values[0]
    assert now == 0.5 and comp == 0.5


def test_negative_compute_rejected():
    def main(comm):
        comm.compute(-1.0)

    with pytest.raises(RuntimeError, match="non-negative"):
        runp(main, 1)


def test_barrier_latency_logarithmic():
    def time_barrier(p):
        def main(comm):
            comm.barrier()
            return comm.clock.now

        return max(run_mpi(main, p, cost_model=CM).values)

    t4, t16 = time_barrier(4), time_barrier(16)
    # dissemination: ceil(log2 p) rounds
    assert t16 == pytest.approx(2 * t4, rel=0.2)


def test_alltoallv_latency_linear_in_p():
    def time_a2a(p):
        def main(comm):
            counts = [1] * comm.size
            comm.alltoallv(np.zeros(comm.size, dtype=np.int64), counts, counts)
            return comm.clock.now

        return max(run_mpi(main, p, cost_model=CM).values)

    t4, t16 = time_a2a(4), time_a2a(16)
    assert t16 / t4 == pytest.approx(15 / 3, rel=0.3)


def test_receiver_waits_for_message_arrival():
    def main(comm):
        if comm.rank == 0:
            comm.compute(1.0)  # sender is late
            comm.send(1, 1)
            return comm.clock.now
        comm.recv(0)
        return comm.clock.now

    values = run_mpi(main, 2, cost_model=CM).values
    assert values[1] >= 1.0 + CM.alpha


def test_comm_and_compute_breakdown():
    def main(comm):
        comm.compute(0.25)
        comm.barrier()

    res = run_mpi(main, 2, cost_model=CM)
    assert all(c == pytest.approx(0.25) for c in res.compute_seconds)
    assert all(c > 0 for c in res.comm_seconds)
    assert res.max_time == pytest.approx(
        max(res.comm_seconds[i] + res.compute_seconds[i] for i in range(2)),
        rel=1e-6,
    )


def test_packed_path_costs_more():
    """alltoallw (derived-datatype path) must exceed plain alltoall."""
    cm = CostModel(alpha=1e-4, beta=1e-7, overhead=0.0,
                   pack_beta=1e-6, dtype_alpha=1e-3)

    def plain(comm):
        comm.alltoall([np.zeros(100, dtype=np.int64)] * comm.size)
        return comm.clock.now

    def packed(comm):
        comm.alltoallw([np.zeros(100, dtype=np.int64)] * comm.size)
        return comm.clock.now

    t_plain = max(run_mpi(plain, 4, cost_model=cm).values)
    t_packed = max(run_mpi(packed, 4, cost_model=cm).values)
    assert t_packed > t_plain


def test_bcast_latency_logarithmic_not_linear():
    def time_bcast(p):
        def main(comm):
            comm.bcast(np.zeros(4), 0)
            return comm.clock.now

        return max(run_mpi(main, p, cost_model=CM).values)

    t2, t16 = time_bcast(2), time_bcast(16)
    assert t16 <= 5 * t2  # binomial: 4 rounds vs 1, never 15x

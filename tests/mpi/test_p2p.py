"""Point-to-point semantics of the raw runtime."""

import numpy as np
import pytest

from repro.mpi import (
    ANY_SOURCE,
    ANY_TAG,
    PROC_NULL,
    RawDeadlockError,
    RawUsageError,
    run_mpi,
)
from tests.conftest import runp


def test_send_recv_roundtrip():
    def main(comm):
        if comm.rank == 0:
            comm.send(np.array([1, 2, 3]), dest=1, tag=5)
            return None
        payload, status = comm.recv(source=0, tag=5)
        return payload.tolist(), status.source, status.tag, status.nbytes

    res = runp(main, 2)
    assert res.values[1] == ([1, 2, 3], 0, 5, 24)


def test_send_is_buffered_snapshot():
    """Mutating the send buffer after send() must not affect the receiver."""
    def main(comm):
        if comm.rank == 0:
            buf = np.array([10, 20])
            comm.send(buf, 1)
            buf[0] = 999
            return None
        payload, _ = comm.recv(0)
        return payload.tolist()

    assert runp(main, 2).values[1] == [10, 20]


def test_non_overtaking_same_source_tag():
    def main(comm):
        if comm.rank == 0:
            for i in range(20):
                comm.send(i, 1, tag=3)
            return None
        return [comm.recv(0, 3)[0] for _ in range(20)]

    assert runp(main, 2).values[1] == list(range(20))


def test_tag_matching_selects_correct_message():
    def main(comm):
        if comm.rank == 0:
            comm.send("a", 1, tag=1)
            comm.send("b", 1, tag=2)
            return None
        b, _ = comm.recv(0, tag=2)
        a, _ = comm.recv(0, tag=1)
        return a, b

    assert runp(main, 2).values[1] == ("a", "b")


def test_wildcard_source_and_tag():
    def main(comm):
        if comm.rank == 0:
            got = []
            for _ in range(comm.size - 1):
                payload, status = comm.recv(ANY_SOURCE, ANY_TAG)
                got.append((status.source, payload))
            return sorted(got)
        comm.send(comm.rank * 10, 0, tag=comm.rank)
        return None

    res = runp(main, 4)
    assert res.values[0] == [(1, 10), (2, 20), (3, 30)]


def test_ssend_waits_for_match():
    """ssend completes only after the receiver matched (rendezvous clock)."""
    def main(comm):
        if comm.rank == 0:
            comm.ssend(np.arange(4), 1)
            return comm.clock.now
        comm.compute(1.0)  # receiver is late
        payload, _ = comm.recv(0)
        return comm.clock.now

    res = runp(main, 2)
    # sender's clock must have advanced to (at least near) the receiver's
    assert res.values[0] >= 1.0


def test_proc_null_send_recv_are_noops():
    def main(comm):
        comm.send("x", PROC_NULL)
        payload, status = comm.recv(PROC_NULL)
        return payload, status.source

    res = runp(main, 1)
    assert res.values[0] == (None, PROC_NULL)


def test_probe_and_iprobe():
    def main(comm):
        if comm.rank == 0:
            comm.send(np.arange(5), 1, tag=9)
            return None
        status = comm.probe(0, 9)
        flag, st2 = comm.iprobe(0, 9)
        payload, _ = comm.recv(0, 9)
        # iprobe must not consume the message
        return status.nbytes, flag, st2.tag, payload.tolist()

    res = runp(main, 2)
    assert res.values[1] == (40, True, 9, [0, 1, 2, 3, 4])


def test_iprobe_no_message():
    def main(comm):
        return comm.iprobe(ANY_SOURCE, ANY_TAG)

    assert runp(main, 1).values[0] == (False, None)


def test_invalid_peer_rank_raises():
    def main(comm):
        comm.send(1, dest=99)

    with pytest.raises(RuntimeError, match="RawUsageError"):
        runp(main, 2)


def test_invalid_tag_raises():
    def main(comm):
        comm.send(1, 0, tag=-5)

    with pytest.raises(RuntimeError, match="RawUsageError"):
        runp(main, 1)


def test_recv_deadlock_detected():
    def main(comm):
        comm.recv(source=0)

    with pytest.raises(RuntimeError, match="deadlock|RawDeadlock"):
        run_mpi(main, 2, deadline=0.3)


def test_object_payloads_deep_copied():
    def main(comm):
        if comm.rank == 0:
            payload = {"xs": [1, 2]}
            comm.send(payload, 1)
            payload["xs"].append(3)
            return None
        got, _ = comm.recv(0)
        return got

    assert runp(main, 2).values[1] == {"xs": [1, 2]}


def test_self_send_recv():
    def main(comm):
        comm.send("self", comm.rank, tag=1)
        payload, _ = comm.recv(comm.rank, tag=1)
        return payload

    assert runp(main, 3).values[2] == "self"


def test_many_to_one_fifo_per_source():
    def main(comm):
        if comm.rank == 0:
            seqs = {r: [] for r in range(1, comm.size)}
            for _ in range(10 * (comm.size - 1)):
                payload, status = comm.recv(ANY_SOURCE, 0)
                seqs[status.source].append(payload)
            return seqs
        for i in range(10):
            comm.send(i, 0)
        return None

    res = runp(main, 4)
    for source, seq in res.values[0].items():
        assert seq == list(range(10)), source


# ---------------------------------------------------------------------------
# MPI_Cancel semantics: a matched receive must complete (the cancel race)
# ---------------------------------------------------------------------------


def test_cancel_after_match_delivers():
    """Cancelling a receive the deposit already matched must fail, and the
    message must still be delivered — not silently dropped."""
    def main(comm):
        if comm.rank == 1:
            comm.send(np.array([3, 4]), dest=0, tag=9)
            comm.barrier()
            return None
        comm.barrier()  # the message has certainly arrived
        req = comm.irecv(source=1, tag=9)  # matches from the unexpected queue
        assert req.cancel() is False
        assert req.cancelled is False
        payload, status = req.wait()
        return payload.tolist(), status.tag

    assert runp(main, 2).values[0] == ([3, 4], 9)


def test_cancel_before_match_requeues_message():
    """A successfully cancelled receive must not consume a later message:
    it stays in the unexpected queue for the next matching receive."""
    def main(comm):
        if comm.rank == 0:
            req = comm.irecv(source=1, tag=2)
            assert req.cancel() is True
            assert req.cancel() is True  # idempotent
            comm.barrier()  # now rank 1 sends
            comm.barrier()
            payload, _ = comm.recv(source=1, tag=2)
            return payload.tolist()
        comm.barrier()
        comm.send(np.array([11]), dest=0, tag=2)
        comm.barrier()
        return None

    assert runp(main, 2).values[0] == [11]


def test_cancelled_recv_wait_raises_test_completes():
    def main(comm):
        req = comm.irecv(source=1, tag=6)
        assert req.cancel()
        done, value = req.test()
        assert done and value is None
        with pytest.raises(RawUsageError):
            req.wait()
        comm.barrier()
        return "ok"

    assert runp(main, 2).values[0] == "ok"


def test_ssend_completes_when_matched_recv_cancel_fails():
    """A synchronous sender must not be left believing its message was
    received if the matching receive is then 'cancelled': the cancel fails
    and the receive delivers, keeping both sides consistent."""
    def main(comm):
        if comm.rank == 1:
            comm.ssend(np.array([5]), dest=0, tag=3)
            return "sent"
        req = comm.irecv(source=1, tag=3)
        while not req._pr.event.wait(0.001):
            pass  # wait for the ssend to match
        assert req.cancel() is False
        payload, _ = req.wait()
        return payload.tolist()

    res = runp(main, 2)
    assert res.values == [[5], "sent"]

"""Property-based tests for the non-blocking collectives.

Invariant: for any inputs and rank count, a non-blocking collective completed
by ``wait()`` (or driven to completion by ``test()``) returns exactly what
its blocking counterpart returns — and arbitrary interleavings of several
outstanding requests never cross-match.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.mpi import MAX, MIN, SUM
from tests.conftest import runp

import pytest

# hypothesis suites are the heavyweight simulation tests: slow lane
pytestmark = pytest.mark.slow

_settings = settings(max_examples=15, deadline=None)


@_settings
@given(
    p=st.integers(1, 6),
    seed=st.integers(0, 2**31),
    vec_len=st.integers(1, 6),
)
def test_iallreduce_equals_allreduce(p, seed, vec_len):
    rng = np.random.default_rng(seed)
    data = rng.integers(-100, 100, size=(p, vec_len))

    def main(comm):
        mine = data[comm.rank]
        req = comm.iallreduce(mine, SUM)
        blocking = comm.allreduce(mine, SUM)
        nonblocking = req.wait()
        return np.array_equal(np.asarray(nonblocking), np.asarray(blocking))

    assert all(runp(main, p, deadline=30).values)


@_settings
@given(
    p=st.integers(1, 6),
    root_seed=st.integers(0, 100),
    payload=st.one_of(
        st.integers(-10**9, 10**9),
        st.text(max_size=8),
        st.lists(st.integers(0, 9), max_size=5),
    ),
)
def test_ibcast_delivers_root_payload(p, root_seed, payload):
    root = root_seed % p

    def main(comm):
        req = comm.ibcast(payload if comm.rank == root else None, root)
        return req.wait()

    res = runp(main, p, deadline=30)
    assert all(v == payload for v in res.values)


@_settings
@given(
    p=st.integers(1, 6),
    seed=st.integers(0, 2**31),
    n_outstanding=st.integers(1, 4),
)
def test_outstanding_nbc_never_cross_match(p, seed, n_outstanding):
    rng = np.random.default_rng(seed)
    payloads = rng.integers(0, 10**6, size=n_outstanding)

    def main(comm):
        reqs = [comm.iallreduce(int(payloads[i]) + comm.rank, SUM)
                for i in range(n_outstanding)]
        # complete them in reverse order to stress the matching
        return [reqs[i].wait() for i in reversed(range(n_outstanding))]

    res = runp(main, p, deadline=30)
    rank_sum = p * (p - 1) // 2
    expected = [int(payloads[i]) * p + rank_sum
                for i in reversed(range(n_outstanding))]
    assert all(v == expected for v in res.values)


@_settings
@given(
    p=st.integers(1, 6),
    seed=st.integers(0, 2**31),
)
def test_iallgather_equals_allgather(p, seed):
    rng = np.random.default_rng(seed)
    values = rng.integers(0, 10**6, size=p)

    def main(comm):
        mine = int(values[comm.rank])
        nb = comm.iallgather(mine)
        blocking = comm.allgather(mine)
        return nb.wait() == blocking

    assert all(runp(main, p, deadline=30).values)


@_settings
@given(p=st.integers(2, 6), seed=st.integers(0, 2**31))
def test_nbc_mixed_ops_same_window(p, seed):
    rng = np.random.default_rng(seed)
    x = int(rng.integers(1, 100))

    def main(comm):
        r1 = comm.iallreduce(x, MAX)
        r2 = comm.iallreduce(comm.rank, MIN)
        r3 = comm.ibcast("go" if comm.rank == 0 else None, 0)
        return r3.wait(), r2.wait(), r1.wait()

    res = runp(main, p, deadline=30)
    assert all(v == ("go", 0, x) for v in res.values)

"""Non-blocking collectives: progress-on-test state machines."""

import numpy as np
import pytest

from repro.mpi import MAX, SUM, run_mpi, user_op, waitall
from tests.conftest import SMALL_P, runp


@pytest.mark.parametrize("p", SMALL_P)
def test_ibcast_all_roots(p):
    def main(comm):
        out = []
        for root in range(p):
            req = comm.ibcast(f"msg{root}" if comm.rank == root else None, root)
            out.append(req.wait())
        return out

    res = runp(main, p, deadline=30)
    for v in res.values:
        assert v == [f"msg{r}" for r in range(p)]


@pytest.mark.parametrize("p", SMALL_P)
def test_iallreduce_matches_blocking(p):
    def main(comm):
        req = comm.iallreduce(np.array([comm.rank, 1.0]), SUM)
        blocking = comm.allreduce(np.array([comm.rank, 1.0]), SUM)
        nb = req.wait()
        return np.array_equal(np.asarray(nb), np.asarray(blocking))

    assert all(runp(main, p, deadline=30).values)


@pytest.mark.parametrize("p", SMALL_P)
def test_iallgather_order(p):
    def main(comm):
        req = comm.iallgather((comm.rank, "x"))
        return req.wait()

    res = runp(main, p, deadline=30)
    assert res.values[0] == [(i, "x") for i in range(p)]


def test_overlap_with_computation():
    """Initiate, compute, complete — the collective overlaps the compute."""
    def main(comm):
        req = comm.iallreduce(comm.rank + 1, SUM)
        comm.compute(0.25)
        total = req.wait()
        return total, comm.clock.now

    res = runp(main, 4, deadline=30)
    assert all(v[0] == 10 for v in res.values)


def test_multiple_outstanding_nbc():
    def main(comm):
        reqs = [comm.iallreduce(comm.rank + i, SUM) for i in range(5)]
        return waitall(reqs)

    res = runp(main, 4, deadline=30)
    base = 0 + 1 + 2 + 3
    assert res.values[0] == [base + 4 * i for i in range(5)]


def test_test_polls_without_blocking():
    def main(comm):
        req = comm.ibcast("late" if comm.rank == 0 else None, 0)
        polls = 0
        while True:
            done, value = req.test()
            polls += 1
            if done:
                return value, polls >= 1

    res = runp(main, 4, deadline=30)
    assert all(v[0] == "late" for v in res.values)


def test_iallreduce_max():
    def main(comm):
        return comm.iallreduce(comm.rank * comm.rank, MAX).wait()

    assert all(v == 36 for v in runp(main, 7, deadline=30).values)


def test_iallreduce_rejects_non_commutative():
    def main(comm):
        comm.iallreduce("a", user_op(lambda a, b: a + b, commutative=False))

    with pytest.raises(RuntimeError, match="commutative"):
        runp(main, 2)


def test_nbc_counted_once():
    def main(comm):
        comm.ibcast(1 if comm.rank == 0 else None, 0).wait()
        comm.iallreduce(1, SUM).wait()
        comm.iallgather(comm.rank).wait()
        counts = comm.machine.profile[comm.world_rank]
        return (counts["ibcast"], counts["iallreduce"], counts["iallgather"],
                counts["irecv"])

    res = runp(main, 4, deadline=30)
    for ib, ia, ig, irecv in res.values:
        assert (ib, ia, ig) == (1, 1, 1)
        assert irecv == 0  # internal machinery is uncounted (PMPI-clean)


def test_wrapped_nbc_with_safety():
    from repro.core import Communicator, as_serialized, op, root, send_buf, send_recv_buf

    def main(raw):
        comm = Communicator(raw)
        # serialized ibcast (the Fig. 11 pattern, non-blocking)
        obj = {"cfg": [1, 2]} if raw.rank == 0 else None
        r1 = comm.ibcast(send_recv_buf(as_serialized(obj)), root(0))
        # poisoned send buffer during iallreduce
        arr = np.array([raw.rank + 1.0])
        r2 = comm.iallreduce(send_buf(arr), op(SUM))
        try:
            arr[0] = 99.0
            poisoned = False
        except ValueError:
            poisoned = True
        cfg = r1.wait()
        total = r2.wait()
        arr[0] = 99.0  # restored after completion
        r3 = comm.iallgather(send_buf(np.array([raw.rank])))
        gathered = np.asarray(r3.wait())
        return cfg, np.asarray(total).tolist(), poisoned, gathered.tolist()

    res = run_mpi(main, 4, deadline=30)
    for cfg, total, poisoned, gathered in res.values:
        assert cfg == {"cfg": [1, 2]}
        assert total == [10.0]
        assert poisoned
        assert gathered == [0, 1, 2, 3]

"""Schedule-fuzzed smoke tests and the Mailbox.cancel message-loss repro.

The ``@pytest.mark.fuzz(seeds=N)`` marker (tests/conftest.py) reruns a test
across N deterministic schedule-fuzzer seeds; ``REPRO_FUZZ_SEED=<s>`` replays
exactly one.  The repro test at the bottom demonstrates the workflow end to
end: it re-installs the *pre-fix* ``Mailbox.cancel`` semantics (cancel
unconditionally, even after a match), scans seeds until the fuzzer finds an
interleaving where the matched message is silently dropped, and then shows
the fixed semantics deliver the message under the very same seed.
"""

import numpy as np
import pytest

from repro.core import Communicator, extend, send_buf, op
from repro.mpi import SUM, minimize_failing_seeds, run_mpi
from repro.plugins import MPIFailureDetected, SparseAlltoall, ULFM
from tests.conftest import runk, runp

SparseComm = extend(Communicator, SparseAlltoall)
FTComm = extend(Communicator, ULFM)


# ---------------------------------------------------------------------------
# Fuzz-marked smoke tests: the two most schedule-sensitive subsystems
# ---------------------------------------------------------------------------


@pytest.mark.fuzz(seeds=16)
def test_nbx_sparse_alltoall_fuzzed(fuzz_seed):
    """NBX's issend/iprobe/ibarrier termination protocol under 16 schedules."""
    def main(comm):
        p, r = comm.size, comm.rank
        got = comm.alltoallv_sparse({(r + 1) % p: np.array([r]),
                                     (r + 2) % p: np.array([r, r])})
        return {s: v.tolist() for s, v in sorted(got.items())}

    res = runk(main, 4, comm_class=SparseComm, fuzz_seed=fuzz_seed,
               sanitize=True)
    for r in range(4):
        assert res.values[r] == {(r - 1) % 4: [(r - 1) % 4],
                                 (r - 2) % 4: [(r - 2) % 4] * 2}
    assert not res.leaks


@pytest.mark.fuzz(seeds=16)
def test_ulfm_failure_recovery_fuzzed(fuzz_seed):
    """Revoke + shrink + recovery collective under 16 schedules."""
    def main(comm):
        if comm.rank == 1:
            comm.raw.kill_self()
        try:
            comm.allreduce_single(send_buf(1), op(SUM))
            return "unexpected"
        except MPIFailureDetected:
            if not comm.is_revoked:
                comm.revoke()
            comm = comm.shrink(generation=1)
            return comm.allreduce_single(send_buf(1), op(SUM))

    res = runk(main, 4, comm_class=FTComm, fuzz_seed=fuzz_seed)
    for r in (0, 2, 3):
        assert res.values[r] == 3
    assert res.values[1] is None


# ---------------------------------------------------------------------------
# The Mailbox.cancel race: fuzzer-found, seed-reproducible
# ---------------------------------------------------------------------------


class _MessageLost(AssertionError):
    """The legacy cancel dropped a matched message."""


def _legacy_cancel(req):
    """The pre-fix ``Mailbox.cancel``: cancel unconditionally.

    It ignored whether an envelope had already matched the posted receive, so
    a cancel racing a deposit marked the receive cancelled *after* the match
    and the delivered message vanished — never returned by ``wait``, never
    re-queued for another receive.  Returns ``True`` like the old code
    (cancellation always "succeeded").
    """
    mb, pr = req._mailbox, req._pr
    with mb._cond:
        pr.cancelled = True
        try:
            mb._posted.remove(pr)
        except ValueError:
            pass
        pr.event.set()
    req._cancelled = True
    return True


def _cancel_race(seed, cancel, *, sanitize):
    """One fuzzed run of the cancel-vs-deposit race; returns rank 0's outcome.

    Rank 1 eagerly sends one tagged message while rank 0 posts a matching
    irecv and immediately cancels it.  After a barrier (by which point the
    deposit has landed somewhere), rank 0 classifies the outcome:

    - ``("delivered", payload)`` — cancel reported "too late, already
      matched"; the receive completed normally.
    - ``("queued", payload)`` — cancel won the race; the message sits in the
      unexpected queue and a fresh recv drains it.
    - ``("lost", None)`` — an envelope matched the receive, yet it was
      treated as cancelled: the message is gone.  Only the legacy semantics
      can produce this.
    """
    def main(comm):
        if comm.rank == 1:
            comm.send(np.array([7]), dest=0, tag=5)
            comm.barrier()
            return None
        req = comm.irecv(source=1, tag=5)
        cancelled = cancel(req)
        comm.barrier()
        if not cancelled:
            payload, _ = req.wait()
            return ("delivered", payload.tolist())
        if req._pr.envelope is not None:
            return ("lost", None)
        payload, _ = comm.recv(source=1, tag=5)
        return ("queued", payload.tolist())

    res = run_mpi(main, 2, fuzz_seed=seed, sanitize=sanitize)
    return res.values[0]


def _legacy_run(seed):
    outcome = _cancel_race(seed, _legacy_cancel, sanitize=False)
    if outcome[0] == "lost":
        raise _MessageLost(f"seed {seed} dropped the matched message")


def test_fuzzer_finds_and_fix_survives_the_cancel_race():
    """End-to-end seed-minimization workflow for the cancel message loss."""
    failing = minimize_failing_seeds(_legacy_run, range(64), stop_after=8)
    assert failing, (
        "no seed in 0..63 made the legacy cancel drop a matched message; "
        "the fuzzer's delivery-delay perturbation is not reaching the race"
    )
    # pick a seed whose schedule reproduces the loss on a rerun (timing on a
    # loaded machine can shift marginal seeds; a fuzzer-found seed is only
    # useful as a regression if it replays)
    stable = next(
        (s for s in failing
         if all(_cancel_race(s, _legacy_cancel, sanitize=False)[0] == "lost"
                for _ in range(2))),
        failing[0],
    )
    # the seed alone reproduces the pre-fix bug...
    with pytest.raises(_MessageLost):
        _legacy_run(stable)
    # ...and the fixed cancel never loses the message under the same schedule
    for _ in range(3):
        outcome = _cancel_race(stable, lambda req: req.cancel(), sanitize=True)
        assert outcome in (("delivered", [7]), ("queued", [7]))


@pytest.mark.fuzz(seeds=16)
def test_fixed_cancel_never_loses_messages_fuzzed(fuzz_seed):
    """The shipped cancel semantics deliver under every fuzzed schedule."""
    outcome = _cancel_race(fuzz_seed, lambda req: req.cancel(), sanitize=True)
    assert outcome in (("delivered", [7]), ("queued", [7]))

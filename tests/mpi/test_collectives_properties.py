"""Property-based tests: raw collectives vs sequential references.

Hypothesis drives random per-rank payloads through the threaded runtime and
compares against straightforward sequential computations.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.mpi import MAX, MIN, SUM
from tests.conftest import runp

import pytest

# hypothesis suites are the heavyweight simulation tests: slow lane
pytestmark = pytest.mark.slow

_settings = settings(max_examples=25, deadline=None)

ranks = st.integers(min_value=1, max_value=6)
blocks = st.lists(
    st.lists(st.integers(min_value=-1000, max_value=1000), min_size=0,
             max_size=7),
    min_size=1, max_size=6,
)


@_settings
@given(data=blocks)
def test_allgatherv_matches_concatenation(data):
    p = len(data)

    def main(comm):
        counts = [len(b) for b in data]
        block = np.asarray(data[comm.rank], dtype=np.int64)
        return comm.allgatherv(block, counts).tolist()

    expected = [x for b in data for x in b]
    res = runp(main, p)
    assert all(v == expected for v in res.values)


@_settings
@given(data=blocks)
def test_gatherv_matches_concatenation(data):
    p = len(data)
    root = (len(data[0]) * 7) % p  # arbitrary but deterministic root

    def main(comm):
        counts = [len(b) for b in data] if comm.rank == root else None
        block = np.asarray(data[comm.rank], dtype=np.int64)
        out = comm.gatherv(block, counts, root)
        return out.tolist() if out is not None else None

    expected = [x for b in data for x in b]
    res = runp(main, p)
    assert res.values[root] == expected


@_settings
@given(
    p=ranks,
    matrix_seed=st.integers(min_value=0, max_value=2**31),
)
def test_alltoallv_matches_transpose(p, matrix_seed):
    rng = np.random.default_rng(matrix_seed)
    counts = rng.integers(0, 5, size=(p, p))  # counts[src][dst]

    def main(comm):
        r = comm.rank
        sendbuf = np.concatenate(
            [np.full(counts[r][d], r * 100 + d, dtype=np.int64)
             for d in range(p)]
        ) if counts[r].sum() else np.empty(0, dtype=np.int64)
        out = comm.alltoallv(sendbuf, counts[r].tolist(),
                             counts[:, r].tolist())
        return out.tolist()

    res = runp(main, p)
    for r in range(p):
        expected = [s * 100 + r for s in range(p)
                    for _ in range(counts[s][r])]
        assert res.values[r] == expected


@_settings
@given(
    p=ranks,
    seed=st.integers(min_value=0, max_value=2**31),
    vector_len=st.integers(min_value=1, max_value=8),
)
def test_reductions_match_numpy(p, seed, vector_len):
    rng = np.random.default_rng(seed)
    data = rng.integers(-50, 50, size=(p, vector_len))

    def main(comm):
        arr = data[comm.rank]
        return (
            comm.allreduce(arr, SUM),
            comm.allreduce(arr, MAX),
            comm.allreduce(arr, MIN),
            comm.scan(arr, SUM),
        )

    res = runp(main, p)
    for r in range(p):
        s, mx, mn, sc = res.values[r]
        assert np.array_equal(s, data.sum(axis=0))
        assert np.array_equal(mx, data.max(axis=0))
        assert np.array_equal(mn, data.min(axis=0))
        assert np.array_equal(sc, data[: r + 1].sum(axis=0))


@_settings
@given(
    p=ranks,
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_scatter_gather_inverse(p, seed):
    rng = np.random.default_rng(seed)
    values = rng.integers(0, 10**6, size=p).tolist()

    def main(comm):
        got = comm.scatter(values if comm.rank == 0 else None, 0)
        back = comm.gather(got, 0)
        return back

    res = runp(main, p)
    assert res.values[0] == values

"""Edge cases and stress for the raw runtime."""

import numpy as np
import pytest

from repro.mpi import ANY_SOURCE, ANY_TAG, SUM, CostModel, Status, run_mpi
from tests.conftest import runp


class TestStatus:
    def test_count_in_items(self):
        s = Status(source=1, tag=2, nbytes=80)
        assert s.count(itemsize=8) == 10
        assert s.count() == 80
        assert s.count(0) == 80  # guards division by zero


class TestAlltoallw:
    def test_roundtrip_blocks(self):
        def main(comm):
            blocks = [np.full(2, comm.rank * 10 + d, dtype=np.int64)
                      for d in range(comm.size)]
            out = comm.alltoallw(blocks)
            return [np.asarray(b).tolist() for b in out]

        res = runp(main, 3)
        for r in range(3):
            assert res.values[r] == [[s * 10 + r] * 2 for s in range(3)]

    def test_wrong_block_count(self):
        def main(comm):
            comm.alltoallw([np.zeros(1)])

        with pytest.raises(RuntimeError, match="exactly"):
            runp(main, 3)

    def test_heterogeneous_block_types(self):
        def main(comm):
            blocks = [{"from": comm.rank} for _ in range(comm.size)]
            out = comm.alltoallw(blocks)
            return [b["from"] for b in out]

        res = runp(main, 2)
        assert res.values[0] == [0, 1]


class TestTruncation:
    def test_allgatherv_truncates_on_oversized_block(self):
        def main(comm):
            block = np.zeros(5, dtype=np.int64)
            counts = [2] * comm.size  # lie: blocks are larger
            comm.allgatherv(block, counts)

        with pytest.raises(RuntimeError, match="Truncation|allgatherv"):
            runp(main, 2)

    def test_alltoallv_truncates(self):
        def main(comm):
            sendbuf = np.zeros(comm.size * 3, dtype=np.int64)
            comm.alltoallv(sendbuf, [3] * comm.size, [1] * comm.size)

        with pytest.raises(RuntimeError, match="Truncation|alltoallv"):
            runp(main, 2)

    def test_gatherv_truncates(self):
        def main(comm):
            counts = [1] * comm.size if comm.rank == 0 else None
            comm.gatherv(np.zeros(4, dtype=np.int64), counts, 0)

        with pytest.raises(RuntimeError, match="Truncation|gatherv"):
            runp(main, 2)


@pytest.mark.slow
class TestScattervErrors:
    """Root raises; the other rank sits out its mailbox deadline — these two
    dominate full-suite runtime, hence the short deadline and ``slow`` mark."""

    def test_counts_exceed_buffer(self):
        def main(comm):
            if comm.rank == 0:
                comm.scatterv(np.arange(3), [5] * comm.size, 0)
            else:
                comm.scatterv(None, None, 0)

        with pytest.raises(RuntimeError, match="exceed"):
            runp(main, 2, deadline=2.0)

    def test_missing_counts_at_root(self):
        def main(comm):
            comm.scatterv(np.arange(4) if comm.rank == 0 else None, None, 0)

        with pytest.raises(RuntimeError, match="sendcounts"):
            runp(main, 2, deadline=2.0)


@pytest.mark.slow
class TestStress:
    def test_many_interleaved_messages(self):
        """Heavy all-pairs p2p traffic with per-pair tags stays consistent."""
        def main(comm):
            p, r = comm.size, comm.rank
            for dest in range(p):
                for i in range(5):
                    comm.send((r, dest, i), dest, tag=r)
            seen = {}
            for _ in range(5 * p):
                payload, status = comm.recv(ANY_SOURCE, ANY_TAG)
                src, dest, i = payload
                assert dest == r and status.tag == src
                seen.setdefault(src, []).append(i)
            return all(v == list(range(5)) for v in seen.values())

        assert all(runp(main, 6).values)

    def test_repeated_collectives_many_rounds(self):
        def main(comm):
            total = 0
            for i in range(50):
                total += comm.allreduce(i, SUM)
            return total

        expected = sum(i * 4 for i in range(50))
        assert all(v == expected for v in runp(main, 4).values)

    def test_collectives_on_many_subcommunicators(self):
        def main(comm):
            results = []
            for color_mod in (2, 3):
                sub = comm.split(comm.rank % color_mod)
                results.append(sub.allreduce(1, SUM))
            return results

        res = runp(main, 6)
        assert res.values[0] == [3, 2]

    def test_large_payload_bandwidth_term(self):
        cm = CostModel(alpha=0.0, beta=1e-9, overhead=0.0)

        def main(comm):
            if comm.rank == 0:
                comm.send(np.zeros(10**6, dtype=np.int64), 1)  # 8 MB
                return None
            comm.recv(0)
            return comm.clock.now

        res = run_mpi(main, 2, cost_model=cm)
        assert res.values[1] == pytest.approx(8e6 * 1e-9, rel=1e-6)


class TestVirtualTimeMonotonicity:
    def test_clock_never_regresses(self):
        def main(comm):
            stamps = []
            for _ in range(10):
                comm.barrier()
                stamps.append(comm.clock.now)
                comm.allreduce(1, SUM)
                stamps.append(comm.clock.now)
            return all(b >= a for a, b in zip(stamps, stamps[1:]))

        assert all(runp(main, 4).values)

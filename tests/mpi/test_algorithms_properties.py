"""Property-based tests: every registered collective algorithm vs references.

Hypothesis drives random payloads and rank counts (including the ragged and
16-rank cases) through each registered algorithm — forced via a
:class:`~repro.mpi.engine.CollectiveEngine` override so the engine cannot
quietly fall back to the default — and compares against straightforward
sequential computations.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.mpi import FREE, CollectiveEngine, SUM, algorithms, run_mpi, user_op

# hypothesis suites are the heavyweight simulation tests: slow lane
pytestmark = pytest.mark.slow

_settings = settings(max_examples=10, deadline=None)

#: rank counts the satellite contract names: singleton, powers of two,
#: ragged odd sizes, and the simulator's 16-rank ceiling
PS = (1, 2, 3, 4, 7, 8, 16)

ps = st.sampled_from(PS)
word = st.integers(min_value=-1000, max_value=1000)


def _forced(op: str, name: str) -> CollectiveEngine:
    return CollectiveEngine(FREE, overrides={op: name}, env={})


def _run(main, p, op, name):
    return run_mpi(main, p, cost_model=FREE, engine=_forced(op, name),
                   deadline=30.0)


def _param_algos(op: str):
    return pytest.mark.parametrize("name", algorithms.names(op))


@_param_algos("bcast")
@_settings
@given(p=ps, data=st.data())
def test_bcast(name, p, data):
    root = data.draw(st.integers(0, p - 1))
    payload = data.draw(st.lists(word, min_size=0, max_size=40))

    def main(comm):
        value = np.asarray(payload, dtype=np.int64) if comm.rank == root else None
        return comm.bcast(value, root).tolist()

    res = _run(main, p, "bcast", name)
    assert all(v == payload for v in res.values)


@_param_algos("allgather")
@_settings
@given(p=ps, data=st.data())
def test_allgather(name, p, data):
    rows = data.draw(st.lists(word, min_size=p, max_size=p))

    def main(comm):
        return comm.allgather(rows[comm.rank])

    res = _run(main, p, "allgather", name)
    assert all(v == rows for v in res.values)


@_param_algos("allgatherv")
@_settings
@given(p=ps, data=st.data())
def test_allgatherv(name, p, data):
    blocks = data.draw(st.lists(st.lists(word, min_size=0, max_size=6),
                                min_size=p, max_size=p))

    def main(comm):
        counts = [len(b) for b in blocks]
        return comm.allgatherv(np.asarray(blocks[comm.rank], dtype=np.int64),
                               counts).tolist()

    expected = [x for b in blocks for x in b]
    res = _run(main, p, "allgatherv", name)
    assert all(v == expected for v in res.values)


@_param_algos("allreduce")
@_settings
@given(p=ps, data=st.data())
def test_allreduce_sum(name, p, data):
    # width ≥ p exercises the ring's chunked reduce-scatter; width < p its
    # fallback path
    width = data.draw(st.integers(1, 2 * p + 2))
    rows = data.draw(st.lists(st.lists(word, min_size=width, max_size=width),
                              min_size=p, max_size=p))

    def main(comm):
        return comm.allreduce(np.asarray(rows[comm.rank], dtype=np.int64),
                              SUM).tolist()

    expected = np.sum(np.asarray(rows, dtype=np.int64), axis=0).tolist()
    res = _run(main, p, "allreduce", name)
    assert all(v == expected for v in res.values)


_AFFINE = user_op(lambda a, b: np.asarray(a) * 3 + np.asarray(b),
                  commutative=False, name="affine")


@_param_algos("allreduce")
@_settings
@given(p=ps, data=st.data())
def test_allreduce_noncommutative_rank_order(name, p, data):
    vals = data.draw(st.lists(word, min_size=p, max_size=p))

    def main(comm):
        return int(comm.allreduce(np.int64(vals[comm.rank]), _AFFINE))

    acc = np.int64(vals[0])
    for v in vals[1:]:
        acc = acc * 3 + np.int64(v)
    res = _run(main, p, "allreduce", name)
    assert all(v == int(acc) for v in res.values)


@_param_algos("reduce")
@_settings
@given(p=ps, data=st.data())
def test_reduce_noncommutative_rank_order(name, p, data):
    root = data.draw(st.integers(0, p - 1))
    vals = data.draw(st.lists(word, min_size=p, max_size=p))

    def main(comm):
        out = comm.reduce(np.int64(vals[comm.rank]), _AFFINE, root)
        return None if out is None else int(out)

    acc = np.int64(vals[0])
    for v in vals[1:]:
        acc = acc * 3 + np.int64(v)
    res = _run(main, p, "reduce", name)
    for r, v in enumerate(res.values):
        assert v == (int(acc) if r == root else None)


@_param_algos("alltoallv")
@_settings
@given(p=ps, data=st.data())
def test_alltoallv(name, p, data):
    counts = data.draw(
        st.lists(st.lists(st.integers(0, 4), min_size=p, max_size=p),
                 min_size=p, max_size=p))

    def main(comm):
        r = comm.rank
        sendcounts = counts[r]
        recvcounts = [counts[s][r] for s in range(p)]
        buf = np.arange(sum(sendcounts), dtype=np.int64) + 1000 * r
        return comm.alltoallv(buf, sendcounts, recvcounts).tolist()

    res = _run(main, p, "alltoallv", name)
    for r in range(p):
        expected = []
        for s in range(p):
            start = sum(counts[s][:r])
            expected += [1000 * s + start + i for i in range(counts[s][r])]
        assert res.values[r] == expected


@_param_algos("alltoall")
@_settings
@given(p=ps, data=st.data())
def test_alltoall(name, p, data):
    table = data.draw(st.lists(st.lists(word, min_size=p, max_size=p),
                               min_size=p, max_size=p))

    def main(comm):
        return comm.alltoall(table[comm.rank])

    res = _run(main, p, "alltoall", name)
    for r in range(p):
        assert res.values[r] == [table[s][r] for s in range(p)]


@_param_algos("gather")
@_settings
@given(p=ps, data=st.data())
def test_gather(name, p, data):
    root = data.draw(st.integers(0, p - 1))
    vals = data.draw(st.lists(word, min_size=p, max_size=p))

    def main(comm):
        return comm.gather(vals[comm.rank], root)

    res = _run(main, p, "gather", name)
    for r, v in enumerate(res.values):
        assert v == (vals if r == root else None)


@_param_algos("scatter")
@_settings
@given(p=ps, data=st.data())
def test_scatter(name, p, data):
    root = data.draw(st.integers(0, p - 1))
    vals = data.draw(st.lists(word, min_size=p, max_size=p))

    def main(comm):
        payloads = vals if comm.rank == root else None
        return comm.scatter(payloads, root)

    res = _run(main, p, "scatter", name)
    assert res.values == vals


@_param_algos("scan")
@_settings
@given(p=ps, data=st.data())
def test_scan_prefix_sums(name, p, data):
    vals = data.draw(st.lists(word, min_size=p, max_size=p))

    def main(comm):
        return int(comm.scan(np.int64(vals[comm.rank]), SUM))

    res = _run(main, p, "scan", name)
    assert res.values == [sum(vals[:r + 1]) for r in range(p)]


@_param_algos("exscan")
@_settings
@given(p=ps, data=st.data())
def test_exscan_prefix_sums(name, p, data):
    vals = data.draw(st.lists(word, min_size=p, max_size=p))

    def main(comm):
        out = comm.exscan(np.int64(vals[comm.rank]), SUM)
        return None if out is None else int(out)

    res = _run(main, p, "exscan", name)
    # SUM carries identity 0, so rank 0 receives it (seed semantics)
    assert res.values == [sum(vals[:r]) for r in range(p)]


@_param_algos("barrier")
@_settings
@given(p=ps, rounds=st.integers(1, 3))
def test_barrier_completes(name, p, rounds):
    def main(comm):
        for _ in range(rounds):
            comm.barrier()
        return True

    assert all(_run(main, p, "barrier", name).values)

"""Backoff deadline edge cases: zero budgets, tiny budgets, exact expiry."""

import pytest

import repro.mpi.waiting as waiting
from repro.mpi.waiting import INITIAL_STEP, MAX_STEP, MIN_STEP, Backoff


class _FakeTime:
    """Deterministic monotonic clock for exact-deadline scenarios."""

    def __init__(self):
        self.now = 1000.0

    def monotonic(self):
        return self.now


@pytest.fixture
def clock(monkeypatch):
    fake = _FakeTime()
    monkeypatch.setattr(waiting, "time", fake)
    return fake


class TestZeroDeadline:
    def test_expired_immediately(self, clock):
        b = Backoff(0.0)
        assert b.expired

    def test_timeout_still_positive(self, clock):
        """Wait loops pass next_timeout() to Condition.wait — it must never
        be zero or negative even when the budget is already gone, or the
        wait degenerates into a hot spin."""
        b = Backoff(0.0)
        assert b.next_timeout() == MIN_STEP
        clock.now += 5.0
        assert b.next_timeout() == MIN_STEP

    def test_negative_deadline_behaves_like_zero(self, clock):
        b = Backoff(-1.0)
        assert b.expired
        assert b.next_timeout() == MIN_STEP


class TestDeadlineShorterThanFirstSleep:
    def test_first_timeout_clamped_to_remaining(self, clock):
        """A 0.3 ms budget must not hand out the 1 ms initial step — the
        waiter would oversleep the deadline more than threefold."""
        deadline = INITIAL_STEP * 0.3
        b = Backoff(deadline)
        assert b.next_timeout() == pytest.approx(deadline)

    def test_clamped_but_never_below_min_step(self, clock):
        b = Backoff(MIN_STEP / 10)
        assert b.next_timeout() == MIN_STEP

    def test_expires_after_budget_despite_short_sleeps(self, clock):
        deadline = 2.0 ** -11  # binary-exact, ~0.49 ms < INITIAL_STEP
        b = Backoff(deadline)
        assert not b.expired
        clock.now += deadline
        assert b.expired


class TestDeadlineHitExactlyAtWakeup:
    def test_exact_boundary_is_expired(self, clock):
        """``elapsed == deadline`` counts as expired (>=, not >): a waiter
        that slept precisely its remaining budget must see expiry on the
        wakeup it just paid for, not after one more sleep."""
        b = Backoff(1.0)
        clock.now += b.next_timeout()
        while not b.expired:
            clock.now += b.next_timeout()
        assert b.elapsed == pytest.approx(1.0)

    def test_one_nanosecond_short_is_not_expired(self, clock):
        b = Backoff(1.0)
        clock.now += 1.0 - 1e-9
        assert not b.expired
        clock.now += 1e-9
        assert b.expired


class TestBackoffGrowth:
    def test_doubles_to_cap(self, clock):
        b = Backoff(1e9)
        steps = [b.next_timeout() for _ in range(12)]
        assert steps[0] == INITIAL_STEP
        assert steps[1] == INITIAL_STEP * 2
        assert steps[-1] == MAX_STEP
        assert max(steps) <= MAX_STEP

    def test_elapsed_counts_real_time_not_steps(self, clock):
        """Early wakeups (notify for someone else's message) must not stall
        the deadline: elapsed tracks the clock, not the sum of timeouts."""
        b = Backoff(10.0)
        for _ in range(100):
            b.next_timeout()  # "slept" 0 real seconds each time
        assert b.elapsed == 0.0
        assert not b.expired
        clock.now += 10.0
        assert b.expired

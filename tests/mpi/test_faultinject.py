"""Fault-injection campaigns: rule triggers, determinism, trace evidence.

Each rule kind (:class:`KillOnOp`, :class:`KillMidCollective`,
:class:`KillRandom`, :class:`Straggler`, :class:`KillAtCheckpoint`) is
exercised against the raw runtime; the campaign log (``injected``/``kills``)
and the ``fault:<kind>`` trace events are the assertions, so the tests pin
down not just *that* a rank died but *where* the campaign says it struck.
"""

import numpy as np
import pytest

from repro.mpi import (
    SUM,
    CollectiveEngine,
    FaultCampaign,
    KillAtCheckpoint,
    KillMidCollective,
    KillOnOp,
    KillRandom,
    RawCommRevoked,
    RawProcessFailure,
    RawUsageError,
    Straggler,
    env_fault_seed_default,
)
from repro.mpi.faultinject import OP_CATEGORIES, _matches
from tests.conftest import runp


def _survive(comm, body):
    """Run ``body()``; on failure detection revoke so blocked peers unwind.

    A survivor that detects the death first must revoke the communicator:
    its peers may be blocked on p2p rounds *with the survivor itself* (not
    the victim) and would otherwise wait out the full deadline.
    """
    try:
        body()
        return "ok"
    except RawCommRevoked:
        return "revoked"
    except RawProcessFailure:
        comm.revoke()
        return "detected"


# ---------------------------------------------------------------------------
# rule validation + selector matching
# ---------------------------------------------------------------------------


class TestRuleValidation:
    def test_nth_is_one_based(self):
        with pytest.raises(RawUsageError):
            KillOnOp(rank=0, nth=0)

    def test_mid_collective_rounds_are_one_based(self):
        with pytest.raises(RawUsageError):
            KillMidCollective(rank=0, op="allgather", after_p2p=0)

    def test_random_rate_bounds(self):
        with pytest.raises(RawUsageError):
            KillRandom(rate=1.5)

    def test_unknown_rule_rejected(self):
        with pytest.raises(RawUsageError):
            FaultCampaign(["not a rule"])

    def test_selector_matches_exact_category_and_wildcard(self):
        assert _matches(None, "allreduce")
        assert _matches("allreduce", "allreduce")
        assert not _matches("allreduce", "barrier")
        assert _matches("send", "isend")          # category
        assert _matches("collective", "alltoallv")
        assert not _matches("rma", "send")

    def test_categories_are_disjoint(self):
        seen = set()
        for members in OP_CATEGORIES.values():
            assert not (seen & members)
            seen |= members


# ---------------------------------------------------------------------------
# KillOnOp: exact op, category, wildcard, nth
# ---------------------------------------------------------------------------


class TestKillOnOp:
    def test_kills_on_nth_matching_op(self):
        def main(comm):
            out = []
            for _ in range(3):
                r = _survive(comm, lambda: comm.allreduce(1, SUM))
                out.append(r)
                if r != "ok":
                    break
            return out

        camp = FaultCampaign([KillOnOp(rank=1, op="allreduce", nth=2)])
        res = runp(main, 3, faults=camp)
        assert res.failed == frozenset({1})
        (kill,) = camp.kills()
        assert kill["kind"] == "kill_op" and kill["rank"] == 1
        assert kill["op"] == "allreduce"
        # the victim completed round 1, died entering round 2
        assert res.counts[1]["allreduce"] == 2
        for r in (0, 2):
            assert res.values[r][0] == "ok" and res.values[r][1] != "ok"

    def test_category_selector_counts_category_ops(self):
        """op="send" nth=2: the first *send-category* op survives even when
        other ops happen in between."""
        def main(comm):
            if comm.rank == 1:
                comm.send(np.array([1]), dest=0, tag=1)
                comm.allreduce(1, SUM)            # not send-category
                comm.send(np.array([2]), dest=0, tag=2)   # dies here
            else:
                comm.recv(source=1, tag=1)
                _survive(comm, lambda: comm.allreduce(1, SUM))
                try:
                    comm.recv(source=1, tag=2)
                except (RawProcessFailure, RawCommRevoked):
                    pass

        camp = FaultCampaign([KillOnOp(rank=1, op="send", nth=2)])
        res = runp(main, 2, faults=camp)
        assert res.failed == frozenset({1})
        (kill,) = camp.kills()
        assert kill["op"] == "send"
        assert res.counts[1]["send"] == 2 and res.counts[1]["allreduce"] == 1

    def test_wildcard_counts_every_op(self):
        def main(comm):
            return _survive(comm, comm.barrier)

        camp = FaultCampaign([KillOnOp(rank=1, nth=1)])
        res = runp(main, 2, faults=camp)
        assert res.failed == frozenset({1})
        assert camp.kills()[0]["kind"] == "kill_op"


# ---------------------------------------------------------------------------
# KillMidCollective: death between internal p2p rounds
# ---------------------------------------------------------------------------


class TestKillMidCollective:
    def test_dies_between_p2p_rounds(self):
        def main(comm):
            return _survive(comm, lambda: comm.allgather(comm.rank))

        camp = FaultCampaign(
            [KillMidCollective(rank=1, op="allgather", after_p2p=2)]
        )
        res = runp(main, 4, faults=camp)
        assert res.failed == frozenset({1})
        (kill,) = camp.kills()
        assert kill["kind"] == "kill_mid_collective"
        assert "after 1 p2p rounds" in kill["detail"]
        # the victim *entered* the collective: it is counted
        assert res.counts[1]["allgather"] == 1
        assert all(res.values[r] in ("detected", "revoked")
                   for r in (0, 2, 3))

    def test_call_index_skips_earlier_collectives(self):
        def main(comm):
            first = _survive(comm, lambda: comm.allgather("a"))
            second = _survive(comm, lambda: comm.allgather("b"))
            return first, second

        camp = FaultCampaign(
            [KillMidCollective(rank=2, op="allgather", call=2, after_p2p=1)]
        )
        res = runp(main, 3, faults=camp)
        assert res.failed == frozenset({2})
        for r in (0, 1):
            assert res.values[r][0] == "ok" and res.values[r][1] != "ok"

    def test_algorithm_restriction_consults_engine(self):
        """The same rule restricted to the algorithm the engine does *not*
        pick stays silent; restricted to the forced one, it fires."""
        def main(comm):
            return _survive(comm, lambda: comm.allgather(comm.rank))

        for algo, should_fire in (("ring", True), ("bruck", False)):
            camp = FaultCampaign([KillMidCollective(
                rank=1, op="allgather", after_p2p=1, algorithm=algo)])
            eng = CollectiveEngine(overrides={"allgather": "ring"}, env={})
            res = runp(main, 4, faults=camp, engine=eng)
            if should_fire:
                assert res.failed == frozenset({1})
                assert "algorithm ring" in camp.kills()[0]["detail"]
            else:
                assert not res.failed
                assert all(v == "ok" for v in res.values)


# ---------------------------------------------------------------------------
# KillRandom: seeded Bernoulli, per-rule cap, replayable
# ---------------------------------------------------------------------------


class TestKillRandom:
    @staticmethod
    def _campaign_run(seed):
        def main(comm):
            for _ in range(6):
                if _survive(comm, comm.barrier) != "ok":
                    return "stopped"
            return "done"

        camp = FaultCampaign(
            [KillRandom(rate=0.35, ranks={2}, op="barrier")], seed=seed
        )
        res = runp(main, 4, faults=camp)
        return camp, res

    def test_same_seed_replays_identical_kill_sites(self):
        camp_a, res_a = self._campaign_run(seed=7)
        camp_b, res_b = self._campaign_run(seed=7)
        assert camp_a.kills() == camp_b.kills()
        assert res_a.failed == res_b.failed
        # identical kill site: the victim entered the same number of barriers
        assert res_a.counts[2]["barrier"] == res_b.counts[2]["barrier"]

    def test_rate_one_fires_on_first_matching_op(self):
        def main(comm):
            return _survive(comm, comm.barrier)

        camp = FaultCampaign([KillRandom(rate=1.0, ranks={1})], seed=0)
        res = runp(main, 3, faults=camp)
        assert res.failed == frozenset({1})
        assert camp.kills()[0]["kind"] == "kill_random"
        assert res.counts[1]["barrier"] == 1

    def test_max_kills_caps_the_rule(self):
        """rate=1.0 over every rank would kill everyone; the default cap of
        one keeps the campaign recoverable."""
        def main(comm):
            return _survive(comm, comm.barrier)

        camp = FaultCampaign([KillRandom(rate=1.0)], seed=3)
        res = runp(main, 4, faults=camp)
        assert len(res.failed) == 1
        assert len(camp.kills()) == 1

    def test_rate_zero_never_fires(self):
        camp = FaultCampaign([KillRandom(rate=0.0)], seed=11)
        res = runp(lambda comm: comm.allreduce(1, SUM), 4, faults=camp)
        assert not res.failed and not camp.injected
        assert all(v == 4 for v in res.values)


# ---------------------------------------------------------------------------
# Straggler: virtual lateness propagates through synchronization
# ---------------------------------------------------------------------------


class TestStraggler:
    def test_virtual_lateness_propagates_to_peers(self):
        def main(comm):
            for _ in range(3):
                comm.barrier()

        camp = FaultCampaign([Straggler(rank=0, virtual_seconds=0.5)])
        slow = runp(main, 2, faults=camp)
        fast = runp(main, 2)
        assert not slow.failed
        # 3 ops x 0.5 s charged to rank 0, carried to rank 1 by the barriers
        assert all(t >= 1.5 for t in slow.times)
        assert slow.max_time > fast.max_time + 1.49
        # recorded once, not once per op — and it is not a kill
        stragglers = [f for f in camp.injected if f["kind"] == "straggler"]
        assert len(stragglers) == 1
        assert not camp.kills()

    def test_real_time_straggler_does_not_touch_virtual_clock(self):
        def main(comm):
            comm.barrier()

        camp = FaultCampaign([Straggler(rank=0, real_seconds=0.05)])
        slow = runp(main, 2, faults=camp)
        fast = runp(main, 2)
        assert slow.max_time == pytest.approx(fast.max_time)


# ---------------------------------------------------------------------------
# KillAtCheckpoint: scripted program points
# ---------------------------------------------------------------------------


class TestKillAtCheckpoint:
    def test_named_checkpoint_kills_listed_ranks(self):
        def main(comm, camp):
            camp.checkpoint(comm, "after-setup")
            return _survive(comm, comm.barrier)

        camp = FaultCampaign([KillAtCheckpoint("after-setup", ranks={2})])
        res = runp(main, 3, args=(camp,), faults=camp)
        assert res.failed == frozenset({2})
        assert camp.kills()[0]["kind"] == "kill_checkpoint"
        assert res.values[2] is None

    def test_unlisted_checkpoint_is_inert(self):
        def main(comm, camp):
            camp.checkpoint(comm, "other-point")
            return "alive"

        camp = FaultCampaign([KillAtCheckpoint("after-setup", ranks={0})])
        res = runp(main, 2, args=(camp,), faults=camp)
        assert not res.failed
        assert all(v == "alive" for v in res.values)


# ---------------------------------------------------------------------------
# trace evidence: every injected fault is a fault:<kind> event
# ---------------------------------------------------------------------------


class TestFaultTraceEvents:
    def test_kills_emit_fault_events_on_the_victim_lane(self):
        def main(comm):
            return _survive(comm, lambda: comm.allreduce(1, SUM))

        camp = FaultCampaign([KillOnOp(rank=1, op="allreduce")])
        res = runp(main, 3, faults=camp, trace=True)
        events = [e for e in res.trace.events_for(1)
                  if e.op.startswith("fault:")]
        assert [e.op for e in events] == ["fault:kill_op"]
        assert events[0].duration == 0.0

    def test_chrome_export_categorizes_faults(self):
        def main(comm):
            camp = comm.machine.faults
            camp.checkpoint(comm, "cp")
            return _survive(comm, comm.barrier)

        camp = FaultCampaign([
            KillAtCheckpoint("cp", ranks={0}),
            Straggler(rank=1, virtual_seconds=0.01),
        ])
        res = runp(main, 3, faults=camp, trace=True)
        doc = res.trace.to_chrome_trace()
        faults = [ev for ev in doc["traceEvents"]
                  if ev.get("cat") == "fault"]
        names = {ev["name"] for ev in faults}
        assert names == {"fault:kill_checkpoint", "fault:straggler"}
        (kill_ev,) = [ev for ev in faults
                      if ev["name"] == "fault:kill_checkpoint"]
        assert kill_ev["tid"] == 0 and kill_ev["dur"] == 0.0

    def test_every_injected_fault_appears_in_the_trace(self):
        """Acceptance: the campaign log and the trace agree one-to-one."""
        def main(comm):
            for _ in range(4):
                if _survive(comm, comm.barrier) != "ok":
                    return

        camp = FaultCampaign(
            [KillRandom(rate=0.5, ranks={3}, op="barrier")], seed=1
        )
        res = runp(main, 4, faults=camp, trace=True)
        traced = [e for r in range(4) for e in res.trace.events_for(r)
                  if e.op.startswith("fault:")]
        assert len(traced) == len(camp.injected)
        assert ({(e.op, e.world_rank) for e in traced}
                == {(f"fault:{f['kind']}", f["rank"]) for f in camp.injected})


# ---------------------------------------------------------------------------
# seed plumbing
# ---------------------------------------------------------------------------


class TestSeedPlumbing:
    def test_env_seed_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_SEED", "1234")
        assert env_fault_seed_default() == 1234
        assert FaultCampaign([]).seed == 1234

    def test_no_env_seed_means_none_and_campaign_zero(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULT_SEED", raising=False)
        assert env_fault_seed_default() is None
        assert FaultCampaign([]).seed == 0

    def test_explicit_seed_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_SEED", "1234")
        assert FaultCampaign([], seed=9).seed == 9

"""Machine driver, communicator management, and profiling counters."""

import numpy as np
import pytest

from repro.mpi import SUM, Machine, RawUsageError, run_mpi
from tests.conftest import SMALL_P, runp


def test_run_returns_per_rank_values():
    res = runp(lambda comm: comm.rank * 2, 5)
    assert res.values == [0, 2, 4, 6, 8]
    assert len(res.times) == 5 and len(res.counts) == 5


def test_exceptions_annotated_with_rank():
    def main(comm):
        if comm.rank == 2:
            raise ValueError("boom")
        comm.barrier()

    with pytest.raises(RuntimeError, match="rank 2 raised ValueError: boom"):
        run_mpi(main, 4, deadline=2.0)


def test_zero_ranks_rejected():
    with pytest.raises(RawUsageError):
        Machine(0)


def test_args_forwarded():
    res = runp(lambda comm, a, b: (comm.rank, a + b), 2, args=(10, 5))
    assert res.values == [(0, 15), (1, 15)]


def test_profile_counts_public_calls_only():
    """A collective counts once; its internal p2p traffic is invisible."""
    def main(comm):
        comm.allgather(comm.rank)
        comm.barrier()
        return None

    res = runp(main, 4)
    for counter in res.counts:
        assert counter["allgather"] == 1
        assert counter["barrier"] == 1
        assert counter["send"] == 0 and counter["recv"] == 0
    assert res.total_calls("allgather") == 4


@pytest.mark.parametrize("p", [2, 4, 7])
def test_comm_split_subgroups(p):
    def main(comm):
        color = comm.rank % 2
        sub = comm.split(color)
        total = sub.allreduce(1, SUM)
        return color, sub.rank, total

    res = runp(main, p)
    evens = (p + 1) // 2
    odds = p // 2
    for r in range(p):
        color, sub_rank, total = res.values[r]
        assert total == (evens if color == 0 else odds)
        assert sub_rank == r // 2


def test_comm_split_undefined_color():
    def main(comm):
        sub = comm.split(None if comm.rank == 0 else 1)
        if sub is None:
            return "undefined"
        return sub.allreduce(1, SUM)

    res = runp(main, 3)
    assert res.values == ["undefined", 2, 2]


def test_comm_split_key_reorders():
    def main(comm):
        sub = comm.split(0, key=-comm.rank)  # reverse order
        return sub.rank

    res = runp(main, 4)
    assert res.values == [3, 2, 1, 0]


def test_comm_dup_isolated_traffic():
    def main(comm):
        dup = comm.dup()
        if comm.rank == 0:
            comm.send("world", 1, tag=1)
            dup.send("dup", 1, tag=1)
            return None
        payload_dup, _ = dup.recv(0, 1)
        payload_world, _ = comm.recv(0, 1)
        return payload_world, payload_dup

    assert runp(main, 2).values[1] == ("world", "dup")


def test_dist_graph_topology_and_neighbor_collectives():
    def main(comm):
        p, r = comm.size, comm.rank
        sources = ((r - 1) % p,)
        destinations = ((r + 1) % p,)
        ring = comm.dist_graph_create_adjacent(sources, destinations)
        out = ring.neighbor_alltoall([f"from{r}"])
        sendbuf = np.full(r + 1, r, dtype=np.int64)
        data = ring.neighbor_alltoallv(sendbuf, [r + 1], [(r - 1) % p + 1])
        return out, data.tolist()

    res = runp(main, 4)
    for r in range(4):
        out, data = res.values[r]
        assert out == [f"from{(r - 1) % 4}"]
        assert data == [(r - 1) % 4] * ((r - 1) % 4 + 1)


def test_neighbor_collective_requires_topology():
    def main(comm):
        comm.neighbor_alltoall([1])

    with pytest.raises(RuntimeError, match="dist-graph"):
        runp(main, 2)


@pytest.mark.parametrize("p", SMALL_P)
def test_nested_split_of_split(p):
    def main(comm):
        sub = comm.split(comm.rank % 2)
        subsub = sub.split(0)
        return subsub.allreduce(1, SUM) == sub.size

    assert all(runp(main, p).values)

"""Structured communication tracing: golden traces, Chrome export, volumes.

Golden-trace regression tests pin down, per count-inference path
(allgatherv / alltoallv / gatherv at a non-zero root), the *exact* raw event
sequence, byte volumes, and peer sets — and that disabled tracing leaves the
PMPI counters and virtual clocks bit-identical.  The Chrome-export test is
the acceptance check: a 4-rank allgatherv run exports trace-event JSON whose
schema validates (monotone per-rank timestamps, event counts matching the
PMPI counters, byte totals matching the recorder aggregates).
"""

import json
from collections import Counter

import numpy as np
import pytest

from repro.core import op as op_param
from repro.core import recv_counts_out, root, send_buf, send_counts
from repro.core.measurements import Timer
from repro.core.runner import run as run_kamping
from repro.mpi import (
    ANY_SOURCE,
    ANY_TAG,
    PROC_NULL,
    SUM,
    RawUsageError,
    TraceRecorder,
    calls,
    expect_calls,
    run_mpi,
)

W = 8  # int64 word size: every payload below is 8-byte words


def _trace_kamping(fn, p, **kw):
    res = run_kamping(fn, p, trace=True, **kw)
    assert res.trace is not None
    return res


def _event_ops(res, rank):
    return tuple(e.op for e in res.trace.events_for(rank))


def _counters_match_events(res):
    """Every counted raw call produced exactly one trace event (parity)."""
    for r in range(len(res.counts)):
        traced = Counter(e.op for e in res.trace.events_for(r)
                         if not e.op.startswith("timer:"))
        assert traced == Counter(res.counts[r])


# -- golden traces: one per count-inference path ---------------------------


class TestGoldenAllgatherv:
    """Paper Fig. 1/2: omitted recv counts ⇒ allgather of counts + allgatherv."""

    P = 4
    TOTAL = W * sum(r + 1 for r in range(P))  # Σ counts, in bytes

    @staticmethod
    def _main(comm):
        v = np.arange(comm.rank + 1, dtype=np.int64)
        return comm.allgatherv(send_buf(v)).tolist()

    def test_exact_event_sequence_volumes_and_peers(self):
        res = _trace_kamping(self._main, self.P)
        everyone = tuple(range(self.P))
        for r in range(self.P):
            events = res.trace.events_for(r)
            assert tuple(e.op for e in events) == ("allgather", "allgatherv")
            counts_xchg, payload_xchg = events
            # count exchange: one scalar out, p scalars back, symmetric peers
            assert counts_xchg.sent == W
            assert counts_xchg.recvd == W * self.P
            assert counts_xchg.peers == everyone
            # payload exchange: local block out, Σ counts bytes back
            assert payload_xchg.sent == W * (r + 1)
            assert payload_xchg.recvd == self.TOTAL
            assert payload_xchg.peers == everyone
            assert payload_xchg.t_start <= payload_xchg.t_end
        _counters_match_events(res)

    def test_volume_aware_expect_calls(self):
        total = self.TOTAL
        p = self.P

        def main(comm):
            v = np.arange(comm.rank + 1, dtype=np.int64)
            with expect_calls(comm.raw,
                              allgather=calls(1, sent=W, recvd=W * p),
                              allgatherv=calls(1, sent=W * (comm.rank + 1),
                                               recvd=total,
                                               peers=range(p))):
                comm.allgatherv(send_buf(v))

        _trace_kamping(main, p)

    def test_disabled_tracing_leaves_counters_and_clocks_unchanged(self):
        traced = _trace_kamping(self._main, self.P)
        plain = run_kamping(self._main, self.P)
        assert plain.trace is None
        assert plain.counts == traced.counts
        assert plain.times == traced.times
        assert plain.values == traced.values


class TestGoldenAlltoallv:
    """§III-A: omitted recv counts ⇒ alltoall of count vectors + alltoallv."""

    P = 4
    COUNTS = [d % 2 + 1 for d in range(P)]  # per-destination send counts

    @staticmethod
    def _main(comm):
        p = comm.size
        counts = [d % 2 + 1 for d in range(p)]
        data = np.concatenate(
            [np.full(counts[d], comm.rank * 10 + d, dtype=np.int64)
             for d in range(p)]
        )
        buf, rcounts = comm.alltoallv(send_buf(data), send_counts(counts),
                                      recv_counts_out())
        return buf.tolist(), rcounts

    def test_exact_event_sequence_volumes_and_peers(self):
        res = _trace_kamping(self._main, self.P)
        everyone = tuple(range(self.P))
        send_bytes = W * sum(self.COUNTS)
        for r in range(self.P):
            events = res.trace.events_for(r)
            assert tuple(e.op for e in events) == ("alltoall", "alltoallv")
            counts_xchg, payload_xchg = events
            # count-vector exchange: p ints out, p ints back
            assert counts_xchg.sent == W * self.P
            assert counts_xchg.recvd == W * self.P
            assert counts_xchg.peers == everyone
            # payload: Σ send_counts out; every source sends COUNTS[r] here
            assert payload_xchg.sent == send_bytes
            assert payload_xchg.recvd == W * self.P * self.COUNTS[r]
            assert payload_xchg.peers == everyone
        _counters_match_events(res)


class TestGoldenGathervNonzeroRoot:
    """Rooted inference: raw gather of counts + gatherv, both rooted at 2."""

    P = 4
    ROOT = 2
    TOTAL = W * sum(r + 1 for r in range(P))

    @staticmethod
    def _main(comm):
        v = np.arange(comm.rank + 1, dtype=np.int64)
        out = comm.gatherv(send_buf(v), root(2))
        return None if out is None else out.tolist()

    def test_exact_event_sequence_volumes_and_peers(self):
        res = _trace_kamping(self._main, self.P)
        for r in range(self.P):
            events = res.trace.events_for(r)
            assert tuple(e.op for e in events) == ("gather", "gatherv")
            counts_xchg, payload_xchg = events
            # every rank's events point at the root, on the root too
            assert counts_xchg.peers == (self.ROOT,)
            assert payload_xchg.peers == (self.ROOT,)
            assert counts_xchg.sent == W
            assert payload_xchg.sent == W * (r + 1)
            if r == self.ROOT:
                assert counts_xchg.recvd == W * self.P
                assert payload_xchg.recvd == self.TOTAL
            else:
                assert counts_xchg.recvd == 0
                assert payload_xchg.recvd == 0
        assert res.values[self.ROOT] is not None
        _counters_match_events(res)

    def test_volume_aware_expect_calls_at_root(self):
        total, rt, p = self.TOTAL, self.ROOT, self.P

        def main(comm):
            v = np.arange(comm.rank + 1, dtype=np.int64)
            recvd = total if comm.rank == rt else 0
            with expect_calls(comm.raw,
                              gather=1,
                              gatherv=calls(1, sent=W * (comm.rank + 1),
                                            recvd=recvd, peers=(rt,))):
                comm.gatherv(send_buf(v), root(rt))

        _trace_kamping(main, p)


# -- Chrome trace-event export (acceptance test) ---------------------------


class TestChromeTraceExport:
    P = 4

    def _run(self):
        def main(comm):
            v = np.arange(comm.rank + 1, dtype=np.int64)
            return comm.allgatherv(send_buf(v)).tolist()

        return _trace_kamping(main, self.P)

    def test_schema_and_consistency(self, tmp_path):
        res = self._run()
        path = tmp_path / "trace.json"
        res.trace.write_chrome_trace(path)
        doc = json.loads(path.read_text(encoding="utf-8"))
        assert doc == res.chrome_trace()
        assert set(doc) == {"traceEvents", "displayTimeUnit"}

        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(meta) + len(complete) == len(doc["traceEvents"])
        # one thread_name metadata record per rank
        assert sorted(m["tid"] for m in meta) == list(range(self.P))
        assert all(m["name"] == "thread_name" for m in meta)
        assert [m["args"]["name"] for m in sorted(meta, key=lambda m: m["tid"])
                ] == [f"rank {r}" for r in range(self.P)]

        per_rank_ts: dict[int, list[float]] = {r: [] for r in range(self.P)}
        per_rank_bytes = {r: {"sent": 0, "recvd": 0} for r in range(self.P)}
        per_rank_ops: dict[int, Counter] = {r: Counter() for r in range(self.P)}
        for e in complete:
            assert {"name", "cat", "ph", "pid", "tid", "ts", "dur",
                    "args"} <= set(e)
            assert e["pid"] == 0 and 0 <= e["tid"] < self.P
            assert e["ts"] >= 0.0 and e["dur"] >= 0.0
            per_rank_ts[e["tid"]].append(e["ts"])
            per_rank_bytes[e["tid"]]["sent"] += e["args"]["sent_bytes"]
            per_rank_bytes[e["tid"]]["recvd"] += e["args"]["recvd_bytes"]
            per_rank_ops[e["tid"]][e["name"]] += 1

        for r in range(self.P):
            # per-rank timestamps are monotone (events are issue-ordered)
            assert per_rank_ts[r] == sorted(per_rank_ts[r])
            # event counts match the PMPI counters exactly
            assert per_rank_ops[r] == Counter(res.counts[r])
        # byte totals in the export match the recorder's aggregates
        assert [per_rank_bytes[r] for r in range(self.P)] \
            == res.trace.per_rank_bytes()
        totals = res.trace.per_op_totals()
        assert sum(c.total() for c in per_rank_ops.values()) \
            == sum(a["calls"] for a in totals.values())
        assert sum(b["sent"] + b["recvd"] for b in per_rank_bytes.values()) \
            == sum(a["bytes"] for a in totals.values())

    def test_untraced_run_has_no_trace(self):
        res = run_mpi(lambda comm: comm.barrier(), 2)
        assert res.trace is None
        assert res.op_bytes() == {}
        with pytest.raises(RawUsageError, match="trace=True"):
            res.chrome_trace()


# -- volume-aware assertion failures ---------------------------------------


class TestVolumeAssertions:
    def test_byte_mismatch_reports_recvd(self):
        def main(comm):
            v = np.arange(comm.rank + 1, dtype=np.int64)
            with expect_calls(comm.raw, allgather=1,
                              allgatherv=calls(1, recvd=1)):
                comm.allgatherv(send_buf(v))

        with pytest.raises(RuntimeError, match="recvd bytes"):
            run_kamping(main, 2, trace=True)

    def test_peer_mismatch_reports_peers(self):
        def main(comm):
            with expect_calls(comm, barrier=calls(1, peers=(7,))):
                comm.barrier()

        with pytest.raises(RuntimeError, match="expected peers"):
            run_mpi(main, 2, trace=True)

    def test_specs_require_traced_run(self):
        def main(comm):
            with expect_calls(comm.raw, barrier=calls(1)):
                comm.raw.barrier()

        with pytest.raises(RuntimeError, match="traced run"):
            run_kamping(main, 2)  # trace left off on purpose

    def test_plain_counts_still_work_untraced(self):
        def main(comm):
            with expect_calls(comm, barrier=2):
                comm.barrier()
                comm.barrier()

        run_mpi(main, 2)


# -- point-to-point, PROC_NULL, timers, RMA, reporting ---------------------


class TestP2PEvents:
    def test_send_recv_with_wildcard_backfills_peer_and_tag(self):
        def main(comm):
            if comm.rank == 0:
                comm.send(np.arange(3, dtype=np.int64), 1, tag=7)
            else:
                comm.recv(ANY_SOURCE, ANY_TAG)

        res = run_mpi(main, 2, trace=True)
        (sent,) = res.trace.events_for(0)
        assert (sent.op, sent.peers, sent.tag) == ("send", (1,), 7)
        assert (sent.sent, sent.recvd) == (3 * W, 0)
        (recv,) = res.trace.events_for(1)
        # the wildcard receive resolves its peer/tag from the matched Status
        assert (recv.op, recv.peers, recv.tag) == ("recv", (0,), 7)
        assert (recv.sent, recv.recvd) == (0, 3 * W)

    def test_proc_null_ops_record_no_event(self):
        def main(comm):
            comm.send(np.arange(4), PROC_NULL)
            comm.recv(PROC_NULL)

        res = run_mpi(main, 1, trace=True)
        # counted (PMPI counts the call) but nothing moved, so no event
        assert res.counts[0]["send"] == 1
        assert res.counts[0]["recv"] == 1
        assert res.trace.events_for(0) == ()


class TestTimerSpans:
    def test_timer_stop_records_named_span(self):
        def main(comm):
            timer = Timer(comm)
            with timer.scoped("exchange"):
                comm.allreduce_single(send_buf(comm.rank), op_param(SUM))
            return timer.local()["exchange"]["count"]

        res = run_kamping(main, 2, trace=True)
        assert res.values == [1, 1]
        for r in range(2):
            spans = [e for e in res.trace.events_for(r)
                     if e.op == "timer:exchange"]
            assert len(spans) == 1
            mpi = [e for e in res.trace.events_for(r) if e.op == "allreduce"]
            assert spans[0].t_start <= mpi[0].t_start
            assert spans[0].t_end >= mpi[0].t_end
        chrome = res.chrome_trace()
        cats = {e["name"]: e["cat"] for e in chrome["traceEvents"]
                if e["ph"] == "X"}
        assert cats["timer:exchange"] == "timer"
        assert cats["allreduce"] == "mpi"

    def test_timer_is_silent_untraced(self):
        def main(comm):
            timer = Timer(comm)
            with timer.scoped("quiet"):
                comm.barrier()
            return True

        res = run_kamping(main, 2)
        assert res.trace is None and all(res.values)


class TestRmaEvents:
    def test_put_get_volumes(self):
        def main(comm):
            local = np.zeros(4, dtype=np.int64)
            win = comm.win_create(local)
            win.fence()
            if comm.rank == 0:
                win.put(np.arange(2, dtype=np.int64), target=1, offset=1)
            win.fence()
            got = win.get(0, count=4) if comm.rank == 1 else None
            win.fence()
            win.free()
            return None if got is None else got.tolist()

        res = run_mpi(main, 2, trace=True)
        puts = [e for e in res.trace.events_for(0) if e.op == "win_put"]
        assert [(e.sent, e.recvd, e.peers) for e in puts] == [(2 * W, 0, (1,))]
        gets = [e for e in res.trace.events_for(1) if e.op == "win_get"]
        assert [(e.sent, e.recvd, e.peers) for e in gets] == [(0, 4 * W, (0,))]
        _counters_match_events(res)


class TestNbcEvents:
    def test_nonblocking_collectives_trace_at_issue(self):
        def main(comm):
            req = comm.iallreduce(comm.rank + 1, SUM)
            total = req.wait()
            req2 = comm.ibcast(np.arange(2, dtype=np.int64)
                               if comm.rank == 0 else None)
            req2.wait()
            return total

        res = run_mpi(main, 3, trace=True)
        for r in range(3):
            ops = [e.op for e in res.trace.events_for(r)]
            assert ops == ["iallreduce", "ibcast"]
        _counters_match_events(res)


class TestAggregatesAndReporting:
    def test_per_op_totals_and_table(self):
        def main(comm):
            comm.allreduce(np.arange(4, dtype=np.int64), SUM)
            comm.barrier()

        res = run_mpi(main, 3, trace=True)
        totals = res.op_bytes()
        assert totals["allreduce"]["calls"] == 3
        assert totals["allreduce"]["sent"] == 3 * 4 * W
        assert totals["barrier"]["bytes"] == 0
        from repro.reporting import op_bytes_table

        table = op_bytes_table(totals)
        assert "allreduce" in table and "barrier" in table
        assert op_bytes_table({}) == "(no trace)"

    def test_shared_recorder_across_runs(self):
        tracer = TraceRecorder(2)
        run_mpi(lambda comm: comm.barrier(), 2, trace=tracer)
        run_mpi(lambda comm: comm.barrier(), 2, trace=tracer)
        assert [e.op for e in tracer.events_for(0)] == ["barrier", "barrier"]

    def test_all_events_globally_sorted(self):
        def main(comm):
            for _ in range(3):
                comm.allreduce(comm.rank, SUM)

        res = run_mpi(main, 4, trace=True)
        starts = [e.t_start for e in res.trace.all_events()]
        assert starts == sorted(starts)

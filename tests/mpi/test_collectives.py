"""Raw collectives against sequential references, across rank counts and roots."""

import numpy as np
import pytest

from repro.mpi import MAX, MIN, PROD, SUM, RawUsageError, user_op
from tests.conftest import SMALL_P, runp


@pytest.mark.parametrize("p", SMALL_P)
def test_barrier_completes(p):
    def main(comm):
        for _ in range(3):
            comm.barrier()
        return True

    assert all(runp(main, p).values)


@pytest.mark.parametrize("p", SMALL_P)
@pytest.mark.parametrize("root_sel", [0, "last", "mid"])
def test_bcast_all_roots(p, root_sel):
    root = {"last": p - 1, "mid": p // 2}.get(root_sel, 0)

    def main(comm):
        payload = {"data": [1, 2, 3]} if comm.rank == root else None
        return comm.bcast(payload, root)

    res = runp(main, p)
    assert all(v == {"data": [1, 2, 3]} for v in res.values)


@pytest.mark.parametrize("p", SMALL_P)
def test_gather_order_and_roots(p):
    def main(comm):
        return [comm.gather(comm.rank * 2, root) for root in range(p)]

    res = runp(main, p)
    for root in range(p):
        for rank in range(p):
            expected = [2 * i for i in range(p)] if rank == root else None
            assert res.values[rank][root] == expected


@pytest.mark.parametrize("p", SMALL_P)
def test_gatherv_counts_checked(p):
    def main(comm):
        block = np.full(comm.rank + 2, comm.rank, dtype=np.int64)
        counts = [i + 2 for i in range(comm.size)] if comm.rank == 1 % comm.size else None
        return comm.gatherv(block, counts, root=1 % comm.size)

    res = runp(main, p)
    expected = [r for r in range(p) for _ in range(r + 2)]
    assert res.values[1 % p].tolist() == expected


def test_gatherv_without_counts_at_root_raises():
    def main(comm):
        comm.gatherv(np.arange(2), None, root=0)

    with pytest.raises(RuntimeError, match="recvcounts"):
        runp(main, 2)


@pytest.mark.parametrize("p", SMALL_P)
def test_scatter_and_scatterv(p):
    def main(comm):
        r = comm.rank
        s = comm.scatter([f"item{d}" for d in range(comm.size)]
                         if r == 0 else None, root=0)
        counts = [i + 1 for i in range(comm.size)]
        total = sum(counts)
        sv = comm.scatterv(np.arange(total) if r == 0 else None,
                           counts if r == 0 else None, root=0)
        return s, sv.tolist()

    res = runp(main, p)
    offset = 0
    for r in range(p):
        s, sv = res.values[r]
        assert s == f"item{r}"
        assert sv == list(range(offset, offset + r + 1))
        offset += r + 1


@pytest.mark.parametrize("p", SMALL_P)
def test_allgather_indexed_by_rank(p):
    def main(comm):
        return comm.allgather((comm.rank, "x" * comm.rank))

    res = runp(main, p)
    for v in res.values:
        assert v == [(i, "x" * i) for i in range(p)]


@pytest.mark.parametrize("p", SMALL_P)
def test_allgatherv_concatenation(p):
    def main(comm):
        counts = [3 * i + 1 for i in range(comm.size)]
        block = np.full(counts[comm.rank], comm.rank, dtype=np.int64)
        return comm.allgatherv(block, counts).tolist()

    expected = [r for r in range(p) for _ in range(3 * r + 1)]
    assert all(v == expected for v in runp(main, p).values)


@pytest.mark.parametrize("p", SMALL_P)
def test_alltoall_transpose(p):
    def main(comm):
        out = comm.alltoall([f"{comm.rank}->{d}" for d in range(comm.size)])
        return out

    res = runp(main, p)
    for r in range(p):
        assert res.values[r] == [f"{s}->{r}" for s in range(p)]


@pytest.mark.parametrize("p", SMALL_P)
def test_alltoallv_matrix(p):
    """Each rank sends (dest+1) copies of its id; verify the full matrix."""
    def main(comm):
        counts = [d + 1 for d in range(comm.size)]
        sendbuf = np.concatenate(
            [np.full(c, comm.rank, dtype=np.int64) for c in counts]
        )
        rcounts = [comm.rank + 1] * comm.size
        return comm.alltoallv(sendbuf, counts, rcounts).tolist()

    res = runp(main, p)
    for r in range(p):
        expected = [s for s in range(p) for _ in range(r + 1)]
        assert res.values[r] == expected


def test_alltoallv_zero_blocks():
    def main(comm):
        counts = [0] * comm.size
        return comm.alltoallv(np.empty(0, dtype=np.int64), counts, counts)

    res = runp(main, 4)
    assert all(len(v) == 0 for v in res.values)


@pytest.mark.parametrize("p", SMALL_P)
def test_reduce_and_allreduce(p):
    def main(comm):
        arr = np.array([comm.rank + 1.0, 2.0])
        red = comm.reduce(arr, SUM, root=p - 1)
        allred = comm.allreduce(comm.rank + 1, MAX)
        return red, allred

    res = runp(main, p)
    total = p * (p + 1) / 2
    assert np.allclose(res.values[p - 1][0], [total, 2.0 * p])
    assert all(v[1] == p for v in res.values)


@pytest.mark.parametrize("p", SMALL_P)
def test_scan_exscan(p):
    def main(comm):
        inc = comm.scan(comm.rank + 1, SUM)
        exc = comm.exscan(comm.rank + 1, SUM)
        return inc, exc

    res = runp(main, p)
    for r in range(p):
        assert res.values[r][0] == (r + 1) * (r + 2) // 2
        assert res.values[r][1] == r * (r + 1) // 2  # identity 0 on rank 0


def test_exscan_without_identity_returns_none_on_rank0():
    def main(comm):
        return comm.exscan(comm.rank + 1.0, MIN)

    res = runp(main, 3)
    assert res.values[0] is None
    assert res.values[1] == 1.0
    assert res.values[2] == 1.0


@pytest.mark.parametrize("p", SMALL_P)
def test_non_commutative_reduce_rank_order(p):
    """Non-commutative ops must fold in canonical rank order."""
    concat = user_op(lambda a, b: f"{a}{b}", commutative=False, name="concat")

    def main(comm):
        red = comm.reduce(str(comm.rank), concat, root=p // 2)
        allred = comm.allreduce(str(comm.rank), concat)
        return red, allred

    res = runp(main, p)
    expected = "".join(str(i) for i in range(p))
    assert res.values[p // 2][0] == expected
    assert all(v[1] == expected for v in res.values)


@pytest.mark.parametrize("p", SMALL_P)
def test_non_commutative_scan(p):
    concat = user_op(lambda a, b: f"{a}{b}", commutative=False, name="concat")

    def main(comm):
        return comm.scan(str(comm.rank), concat)

    res = runp(main, p)
    for r in range(p):
        assert res.values[r] == "".join(str(i) for i in range(r + 1))


def test_reduce_lambda_op():
    def main(comm):
        return comm.allreduce(comm.rank + 1, user_op(lambda a, b: a * b))

    import math
    assert runp(main, 5).values[0] == math.factorial(5)


def test_collectives_interleaved_with_p2p():
    """Collectives and user p2p with arbitrary tags must not interfere."""
    def main(comm):
        r, p = comm.rank, comm.size
        comm.send(r, (r + 1) % p, tag=7)
        total = comm.allreduce(1, SUM)
        payload, _ = comm.recv((r - 1) % p, tag=7)
        return total, payload

    res = runp(main, 4)
    assert [v for v in res.values] == [(4, 3), (4, 0), (4, 1), (4, 2)]


def test_mismatched_root_is_usage_error():
    def main(comm):
        comm.bcast("x", root=17)

    with pytest.raises(RuntimeError, match="root"):
        runp(main, 2)

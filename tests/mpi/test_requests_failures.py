"""Raw non-blocking requests, ibarrier, failure injection, and ULFM substrate."""

import numpy as np
import pytest

from repro.mpi import ANY_SOURCE, SUM, FailureScript, RawProcessFailure, run_mpi
from repro.mpi import testall as raw_testall
from repro.mpi import waitall as raw_waitall
from repro.mpi import waitany as raw_waitany
from tests.conftest import runp


def test_isend_irecv_roundtrip():
    def main(comm):
        if comm.rank == 0:
            req = comm.isend(np.arange(3), 1)
            req.wait()
            return None
        req = comm.irecv(0)
        payload, status = req.wait()
        return payload.tolist(), status.source

    assert runp(main, 2).values[1] == ([0, 1, 2], 0)


def test_irecv_test_polls():
    def main(comm):
        if comm.rank == 0:
            req = comm.irecv(1)
            done, _ = req.test()
            comm.send("go", 1)
            while True:
                done, value = req.test()
                if done:
                    payload, _ = value
                    return payload
        comm.recv(0)
        comm.send("reply", 0)
        return None

    assert runp(main, 2).values[0] == "reply"


def test_issend_completes_on_match():
    def main(comm):
        if comm.rank == 0:
            req = comm.issend("sync", 1)
            done, _ = req.test()  # may or may not be matched yet
            req.wait()
            return True
        payload, _ = comm.recv(0)
        return payload

    res = runp(main, 2)
    assert res.values == [True, "sync"]


def test_waitall_testall_waitany():
    def sender_main(comm):
        if comm.rank == 0:
            reqs = [comm.irecv(1, tag=t) for t in range(3)]
            done, _ = raw_testall(reqs)  # all-or-nothing; may be False early
            i, value = raw_waitany(reqs)
            rest = raw_waitall([r for j, r in enumerate(reqs) if j != i])
            got = [value[0]] + [payload for payload, _ in rest]
            done_after, values_after = raw_testall(reqs)
            assert done_after and len(values_after) == 3
            return sorted(got)
        for t in range(3):
            comm.send(t * 10, 0, tag=t)
        return None

    res = runp(sender_main, 2)
    assert res.values[0] == [0, 10, 20]


def test_ibarrier_completes_for_all():
    def main(comm):
        req = comm.ibarrier()
        req.wait()
        req2 = comm.ibarrier()
        while not req2.test()[0]:
            pass
        return True

    assert all(runp(main, 4).values)


def test_irecv_cancel():
    def main(comm):
        req = comm.irecv(ANY_SOURCE, tag=5)
        req.cancel()
        comm.barrier()
        return True

    assert all(runp(main, 2).values)


# ---------------------------------------------------------------------------
# failures
# ---------------------------------------------------------------------------

def test_recv_from_dead_rank_raises():
    script = FailureScript({"start": {1}})

    def main(comm):
        script.checkpoint(comm, "start")
        if comm.rank == 0:
            try:
                comm.recv(1)
            except RawProcessFailure as exc:
                return ("failed", exc.failed_ranks)
        return "alive"

    res = run_mpi(main, 3, deadline=5.0)
    assert res.values[0] == ("failed", [1])
    assert res.values[1] is None
    assert res.failed == frozenset({1})


def test_send_to_dead_rank_raises():
    script = FailureScript({"start": {2}})

    def main(comm):
        script.checkpoint(comm, "start")
        if comm.rank == 0:
            import time

            while not comm.failed_ranks():  # wait until the death is visible
                time.sleep(0.01)
            try:
                comm.send("x", 2)
            except RawProcessFailure:
                return "detected"
        return "ok"

    res = run_mpi(main, 3, deadline=5.0)
    assert res.values[0] == "detected"


def test_collective_with_dead_rank_raises_for_participants():
    script = FailureScript({"mid": {0}})

    def main(comm):
        total = comm.allreduce(1, SUM)
        script.checkpoint(comm, "mid")
        try:
            comm.allreduce(1, SUM)
            return (total, "second-ok")
        except RawProcessFailure:
            return (total, "second-failed")

    res = run_mpi(main, 2, deadline=5.0)
    assert res.values[1] == (2, "second-failed")


def test_shrink_and_continue():
    script = FailureScript({"mid": {1, 2}})

    def main(comm):
        script.checkpoint(comm, "mid")
        shrunk = comm.shrink(generation=0)
        return shrunk.size, shrunk.allreduce(1, SUM)

    res = run_mpi(main, 5, deadline=10.0)
    for r in (0, 3, 4):
        assert res.values[r] == (3, 3)


def test_agree_is_logical_and():
    script = FailureScript({"mid": {3}})

    def main(comm):
        script.checkpoint(comm, "mid")
        return comm.agree(comm.rank != 0, generation=0)

    res = run_mpi(main, 4, deadline=10.0)
    assert res.values[0] is False and res.values[1] is False


def test_revoke_wakes_blocked_receivers():
    def main(comm):
        if comm.rank == 0:
            comm.revoke()
            return "revoked"
        try:
            comm.recv(0)  # would block forever
        except Exception as exc:
            return type(exc).__name__

    res = run_mpi(main, 2, deadline=5.0)
    assert res.values[1] == "RawCommRevoked"


def test_failed_ranks_listing():
    script = FailureScript({"go": {2}})

    def main(comm):
        script.checkpoint(comm, "go")
        import time

        deadline = time.time() + 3.0
        while not comm.failed_ranks() and time.time() < deadline:
            time.sleep(0.01)
        return comm.failed_ranks()

    res = run_mpi(main, 3, deadline=6.0)
    assert res.values[0] == (2,)

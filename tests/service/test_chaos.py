"""Chaos suite: the cluster drains a 50-job stream through rank kills.

The acceptance bar for the service (ISSUE acceptance / ROADMAP item): under
every pinned campaign seed, a 50-job stream with ranks killed mid-job must
drain completely with results *bit-identical* to the failure-free run, and
``Cluster.shutdown()`` must be MPIsan-clean lease-wise (no communicator
lease outlives its job).

Seeds follow the fault-campaign convention: the matrix covers
``{0, 7, 1234}`` and setting ``REPRO_FAULT_SEED`` replays exactly one of
them (the other matrix cells skip), so a red CI cell reproduces locally
from the seed alone.
"""

import os
import threading

import pytest

from repro.mpi import (
    MAX,
    SUM,
    FaultCampaign,
    KillMidCollective,
    KillOnOp,
    KillRandom,
    RunTimeout,
)
from repro.mpi.sanitizer import ResourceLeakError
from repro.service import Cluster, ClusterError

#: the pinned soak seeds (mirrored by the ``cluster-chaos`` CI matrix)
SOAK_SEEDS = (0, 7, 1234)


def _seed_pinned(seed: int) -> None:
    pin = os.environ.get("REPRO_FAULT_SEED")
    if pin is not None and int(pin) != seed:
        pytest.skip(f"REPRO_FAULT_SEED={pin} pins a different campaign seed")


def submit_stream(cluster: Cluster) -> list:
    """50 mixed jobs whose results are independent of the membership size.

    Integer domains only: the drain must be *bit*-identical across shrinks,
    so every job is closed under reassociation (sums/maxima of ints, bcasts,
    and collectives counting contributions by world-visible structure).
    """
    handles = []
    for i in range(50):
        kind = i % 4
        if kind == 0:
            handles.append(cluster.submit_bcast(i * 7, label=f"b{i}"))
        elif kind == 1:
            handles.append(cluster.submit_allreduce(
                range(i + 1), op=SUM, label=f"s{i}"))
        elif kind == 2:
            handles.append(cluster.submit_allreduce(
                [x * 3 for x in range(i + 2)], op=MAX, label=f"m{i}"))
        else:
            def job(comm, x=i):
                got = comm.raw.bcast(x if comm.raw.rank == 0 else None, 0)
                one_root = comm.raw.allreduce(
                    1 if comm.raw.rank == 0 else 0, SUM)
                return got + one_root
            handles.append(cluster.submit(job, label=f"c{i}"))
    return handles


@pytest.fixture(scope="module")
def failure_free_drain():
    with Cluster(4, hold_jobs=True) as cluster:
        handles = submit_stream(cluster)
        cluster.release_jobs()
        return [h.result(60) for h in handles]


class TestChaosSoak:
    @pytest.mark.timeout(300)
    @pytest.mark.parametrize("fault_seed", SOAK_SEEDS)
    def test_stream_drains_bit_identical_under_kills(self, fault_seed,
                                                     failure_free_drain):
        _seed_pinned(fault_seed)
        campaign = FaultCampaign(
            [KillOnOp(rank=2, op="bcast", nth=12),
             KillRandom(rate=0.002, max_kills=1)],
            seed=fault_seed,
        )
        cluster = Cluster(4, hold_jobs=True, faults=campaign, sanitize=True)
        handles = submit_stream(cluster)
        cluster.release_jobs()
        drained = [h.result(120) for h in handles]

        kills = campaign.kills()
        assert kills, "the campaign must kill at least one rank mid-stream"
        assert drained == failure_free_drain, (
            f"seed {fault_seed}: chaos drain diverged from the failure-free "
            f"run (kills: {kills})"
        )
        assert set(cluster.stats["recoveries"]) == {k["rank"] for k in kills}
        # shutdown must be lease-clean even though ranks died mid-stream
        report = cluster.shutdown()
        assert not (report and report.by_kind().get("lease"))

    @pytest.mark.timeout(180)
    def test_mid_collective_kill_drains_too(self, failure_free_drain):
        _seed_pinned(0)
        campaign = FaultCampaign(
            [KillMidCollective(rank=1, op="allreduce", call=9,
                               after_p2p=2)], seed=0)
        cluster = Cluster(4, hold_jobs=True, faults=campaign, sanitize=True)
        handles = submit_stream(cluster)
        cluster.release_jobs()
        drained = [h.result(120) for h in handles]
        assert campaign.kills()
        assert drained == failure_free_drain
        report = cluster.shutdown()
        assert not (report and report.by_kind().get("lease"))


class TestEpochalRestart:
    @pytest.mark.timeout(120)
    def test_in_flight_job_restarts_from_last_committed_epoch(self):
        """A rank killed mid-epochs-job: the stream replays only the epoch
        in flight, off the ring-buddy checkpoints."""
        _seed_pinned(0)

        def step(comm, mine, _epoch):
            total = comm.raw.allreduce(
                sum(state for _, state in mine), SUM)
            return [(key, state + int(total)) for key, state in mine]

        def run(faults=None):
            with Cluster(4, faults=faults, sanitize=True) as cluster:
                handle = cluster.submit_epochs(
                    step, [1, 2, 3, 4, 5, 6], epochs=3)
                result = handle.result(90)
                return result, list(cluster.stats["recoveries"])

        clean, _ = run()
        campaign = FaultCampaign(
            [KillOnOp(rank=1, op="allreduce", nth=2)], seed=0)
        chaotic, recoveries = run(campaign)
        assert campaign.kills()
        assert recoveries == [1]
        assert chaotic == clean


class TestJobTimeoutWedge:
    @pytest.mark.timeout(120)
    def test_hung_job_fails_stream_with_stacks_and_leaks_the_lease(self):
        """A non-SPMD job (one rank never returns) cannot be recovered —
        the ``job_timeout`` watchdog fails the outstanding handles with
        :class:`RunTimeout` carrying per-rank stacks, wedges the cluster,
        and the leaked lease is reported (with its acquisition backtrace)
        by the MPIsan audit at shutdown."""
        stall = threading.Event()

        def hang(comm):
            if comm.raw.rank == comm.raw.size - 1:
                stall.wait()
            return "finished"

        cluster = Cluster(3, job_timeout=1.0, deadline=4.0, sanitize=True)
        try:
            handle = cluster.submit(hang, label="wedger")
            error = handle.exception(timeout=30)
            assert isinstance(error, RunTimeout)
            assert "job watchdog" in str(error)
            assert any("hang" in stack or "wait" in stack
                       for stack in error.stacks.values())
            assert cluster.wedged
            with pytest.raises(ClusterError, match="wedged"):
                cluster.submit_bcast(1)
            with pytest.raises(ResourceLeakError) as excinfo:
                cluster.shutdown(timeout=10)
            (rec,) = excinfo.value.report.by_kind()["lease"]
            assert "wedger" in rec.detail
            assert rec.origin
        finally:
            stall.set()

"""Cluster service mechanics: jobs, admission, leasing, batching, elasticity.

The chaos/recovery side lives in ``test_chaos.py``; this file covers the
failure-free service contract — including the pinned process-backend
refusal wording and the MPIsan lease audit at shutdown.
"""

import pytest

from repro.mpi import MIN, SUM, UnsupportedOnBackend
from repro.mpi.sanitizer import ResourceLeakError
from repro.service import (
    Cluster,
    ClusterError,
    ClusterSaturated,
)


class TestJobKinds:
    def test_call_job_returns_rank0_value(self):
        with Cluster(3) as c:
            h = c.submit(lambda comm: comm.raw.allreduce(comm.raw.rank, SUM))
            assert h.result(20) == 3  # 0+1+2, same on every rank
            assert h.state == "done"

    def test_call_job_args_forwarded(self):
        with Cluster(2) as c:
            h = c.submit(lambda comm, a, b: a * b, 6, 7)
            assert h.result(20) == 42

    def test_bcast_job(self):
        with Cluster(4) as c:
            h = c.submit_bcast({"cfg": 9})
            assert h.result(20) == {"cfg": 9}

    def test_allreduce_job_is_partition_oblivious(self):
        with Cluster(4) as c:
            assert c.submit_allreduce(range(100), op=SUM).result(20) == 4950
            assert c.submit_allreduce([5, -3, 8], op=MIN).result(20) == -3

    def test_epochs_job_commits_per_epoch(self):
        def step(comm, mine, epoch):
            return [(key, state + epoch) for key, state in mine]

        with Cluster(3) as c:
            h = c.submit_epochs(step, [10, 20, 30, 40], epochs=3)
            # +0, +1, +2 over three epochs, order restored by virtual key
            assert h.result(20) == [13, 23, 33, 43]

    def test_semantic_job_error_rethrown_from_handle(self):
        def boom(comm):
            raise ValueError("deterministic app bug")

        with Cluster(2) as c:
            h = c.submit(boom)
            with pytest.raises(ValueError, match="deterministic app bug"):
                h.result(20)
            assert h.state == "failed"
            # the stream survives a failed job
            assert c.submit_bcast(1).result(20) == 1

    def test_priority_orders_execution(self):
        order = []

        def mark(comm, tag):
            if comm.raw.rank == 0:
                order.append(tag)
            return tag

        with Cluster(2, hold_jobs=True) as c:
            c.submit(mark, "low", priority=5)
            c.submit(mark, "first", priority=0)
            c.submit(mark, "second", priority=1)
            c.release_jobs()
            c.drain(20)
        assert order == ["first", "second", "low"]

    def test_handle_result_timeout_and_states(self):
        with Cluster(2, hold_jobs=True) as c:
            h = c.submit_bcast(3)
            assert h.state == "queued"
            with pytest.raises(TimeoutError, match="not settled"):
                h.result(timeout=0.05)
            c.release_jobs()
            assert h.result(20) == 3
            assert h.done() and h.exception() is None


class TestAdmission:
    def test_saturation_rejects_not_blocks(self):
        with Cluster(2, queue_depth=8, high_water=2, hold_jobs=True) as c:
            c.submit_bcast(0)
            c.submit_bcast(1)
            with pytest.raises(ClusterSaturated, match="high-water mark 2"):
                c.submit_bcast(2)
            c.release_jobs()
            c.drain(20)

    def test_submit_after_shutdown_refused(self):
        c = Cluster(2)
        c.shutdown()
        with pytest.raises(ClusterError, match="shutting down"):
            c.submit_bcast(1)

    @pytest.mark.parametrize("bad", [
        lambda c: c.submit_epochs(lambda *_: [], [1], epochs=0),
        lambda c: c.submit_allreduce([], op=SUM),
        lambda c: c.submit_allreduce([1], op=sum),
        lambda c: c.submit_bcast(1, root=7),
    ])
    def test_submission_validation(self, bad):
        with Cluster(2) as c:
            with pytest.raises(ClusterError):
                bad(c)

    def test_constructor_validation(self):
        with pytest.raises(ClusterError, match="num_ranks"):
            Cluster(0)
        with pytest.raises(ClusterError, match="spares"):
            Cluster(2, spares=-1)
        with pytest.raises(ClusterError, match="job_timeout"):
            Cluster(2, job_timeout=0)
        with pytest.raises(ClusterError, match="queue depth"):
            Cluster(2, queue_depth=0)
        with pytest.raises(ClusterError, match="high_water"):
            Cluster(2, queue_depth=4, high_water=9)
        with pytest.raises(ClusterError, match="lease_slots"):
            Cluster(2, lease_slots=0)


class TestBatching:
    def test_compatible_bcasts_coalesce(self):
        with Cluster(4, hold_jobs=True, batch_limit=8) as c:
            handles = [c.submit_bcast(i * 10) for i in range(6)]
            c.release_jobs()
            assert [h.result(20) for h in handles] == [0, 10, 20, 30, 40, 50]
            assert c.stats["groups"] == 1
            assert c.stats["batched_groups"] == 1

    def test_allreduce_batch_exact_per_job(self):
        with Cluster(4, hold_jobs=True) as c:
            hs = c.submit_allreduce(range(10), op=SUM)
            hm = c.submit_allreduce(range(17), op=SUM)
            c.release_jobs()
            assert hs.result(20) == 45
            assert hm.result(20) == 136
            assert c.stats["batched_groups"] == 1

    def test_incompatible_shapes_stay_separate(self):
        with Cluster(4, hold_jobs=True) as c:
            c.submit_bcast(1, root=0)
            c.submit_bcast(2, root=1)            # different root
            c.submit_allreduce([1], op=SUM)      # different kind
            c.submit_bcast(3, root=0, priority=1)  # different priority
            c.release_jobs()
            c.drain(20)
            assert c.stats["groups"] == 4
            assert c.stats["batched_groups"] == 0

    def test_batch_limit_caps_group_size(self):
        with Cluster(2, hold_jobs=True, batch_limit=3) as c:
            for i in range(7):
                c.submit_bcast(i)
            c.release_jobs()
            c.drain(20)
            assert c.stats["groups"] == 3  # 3 + 3 + 1


class TestLeases:
    def test_public_acquire_reserves_dispatcher_slot(self):
        with Cluster(2, lease_slots=2) as c:
            lease = c.acquire_lease("mine")
            assert c.pool.free_slots() == 1
            with pytest.raises(ClusterError, match="reserved for the "
                                                   "dispatcher"):
                c.acquire_lease("greedy", timeout=0.05)
            lease.release()
            assert lease.returned

    def test_unreturned_lease_reported_at_shutdown(self):
        c = Cluster(2, sanitize=True)
        c.acquire_lease("forgotten-by-client")
        with pytest.raises(ResourceLeakError) as excinfo:
            c.shutdown()
        (rec,) = excinfo.value.report.by_kind()["lease"]
        assert rec.op == "comm_lease"
        assert "forgotten-by-client" in rec.detail
        assert rec.origin  # the acquisition backtrace rides along

    def test_returned_leases_leave_shutdown_clean(self):
        c = Cluster(2, sanitize=True)
        c.acquire_lease("tidy").release()
        c.submit_bcast(1).result(20)
        report = c.shutdown()
        assert not report


class TestElasticMembership:
    def test_add_rank_grows_next_jobs(self):
        with Cluster(3, spares=2) as c:
            assert c.submit(lambda comm: comm.size).result(20) == 3
            c.add_rank()
            assert c.submit(lambda comm: comm.size).result(20) == 4
            c.add_rank()
            assert c.submit(lambda comm: comm.size).result(20) == 5
            assert c.stats["joins"] == [3, 4]

    def test_join_replicates_state_to_new_buddy_ring(self):
        """Epochal state submitted before the join survives jobs after it."""
        def step(comm, mine, _epoch):
            return [(key, state * 2) for key, state in mine]

        with Cluster(2, spares=1) as c:
            first = c.submit_epochs(step, [1, 2, 3], epochs=2)
            assert first.result(20) == [4, 8, 12]
            c.add_rank()
            again = c.submit_epochs(step, [5, 6], epochs=1)
            assert again.result(20) == [10, 12]

    def test_no_spares_left(self):
        with Cluster(2, spares=0) as c:
            with pytest.raises(ClusterError, match="no spare ranks"):
                c.add_rank()


class TestBackendRefusal:
    def test_process_backend_refused_with_pinned_wording(self):
        with pytest.raises(UnsupportedOnBackend) as excinfo:
            Cluster(2, backend="process")
        assert str(excinfo.value) == (
            "the cluster service is not supported on the 'process' backend: "
            "elastic membership, fault injection, and communicator leasing "
            "rely on shared-process state; run with backend='thread'"
        )

    def test_thread_backend_accepted_explicitly(self):
        with Cluster(2, backend="thread") as c:
            assert c.submit_bcast(1).result(20) == 1


class TestTraceScoping:
    def test_handle_trace_slices_by_job_label(self):
        with Cluster(2, trace=True) as c:
            h1 = c.submit(lambda comm: comm.raw.allreduce(1, SUM),
                          label="traced-one")
            h2 = c.submit_bcast(5, label="traced-two")
            assert h1.result(20) == 2
            assert h2.result(20) == 5
            evs1, evs2 = h1.trace(), h2.trace()
            assert evs1 and all(e.job == "traced-one" for e in evs1)
            assert evs2 and all(e.job == "traced-two" for e in evs2)
            assert {e.op for e in evs1} == {"allreduce"}
            # service-internal traffic (checkpoints, dups) is not attributed
            internal = [e for e in c.tracer.all_events() if e.job is None]
            assert internal

"""Lines-of-code counter used for the Table I reproduction.

The paper counts the MPI-relevant lines of comparably-structured
implementations, with shared code factored out and formatting normalised
(clang-format).  The analog here: :func:`logical_loc` counts the *logical
body lines* of a Python function — signature, docstring, comments, and blank
lines excluded — so the numbers compare how much code each binding makes the
user write, not how verbosely it was formatted.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from typing import Callable


def logical_loc(fn: Callable) -> int:
    """Count the logical body lines of ``fn``.

    Comments and blank lines never reach the AST; the docstring is dropped
    explicitly.  Every remaining *source line* spanned by a body statement is
    counted once (multi-line calls count per line, like the paper's
    clang-formatted C++).
    """
    source = textwrap.dedent(inspect.getsource(fn))
    tree = ast.parse(source)
    func = tree.body[0]
    if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
        raise TypeError(f"{fn!r} is not a plain function")
    body = func.body
    if (
        body
        and isinstance(body[0], ast.Expr)
        and isinstance(body[0].value, ast.Constant)
        and isinstance(body[0].value.value, str)
    ):
        body = body[1:]  # docstring

    lines: set[int] = set()
    source_lines = source.splitlines()
    for node in body:
        for sub in ast.walk(node):
            lineno = getattr(sub, "lineno", None)
            end = getattr(sub, "end_lineno", None)
            if lineno is None or end is None:
                continue
            for ln in range(lineno, end + 1):
                text = source_lines[ln - 1].strip()
                if text and not text.startswith("#"):
                    lines.add(ln)
    return len(lines)


def loc_table(rows: dict[str, dict[str, Callable]]) -> dict[str, dict[str, int]]:
    """Build a {example: {binding: LoC}} table from functions."""
    return {
        example: {binding: logical_loc(fn) for binding, fn in impls.items()}
        for example, impls in rows.items()
    }


def format_loc_table(table: dict[str, dict[str, int]],
                     columns: list[str]) -> str:
    """Render a Table-I-style text table."""
    width = max(len(e) for e in table) + 2
    header = " " * width + "  ".join(f"{c:>10}" for c in columns)
    out = [header]
    for example, row in table.items():
        cells = "  ".join(f"{row.get(c, '-'):>10}" for c in columns)
        out.append(f"{example:<{width}}{cells}")
    return "\n".join(out)

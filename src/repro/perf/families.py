"""Analytic per-level BFS workload statistics for the three graph families.

Each model produces, for every BFS level, the per-rank frontier size, the
number of elements crossing rank boundaries, and the number of distinct
communication partners.  The parameters are *calibrated against the actual
generators* of :mod:`repro.apps.graphs.generators`:

===========  =====================================================  =========
family       communication partners per rank                        levels
===========  =====================================================  =========
GNM          ``p − 1`` (targets uniform; measured: saturates fully) ~log_d(n)
RGG-2D       ≈ 4–8, constant in p (measured 4–7 at p ≤ 64)          ≈1.15·√2/r
RHG          ≈ 1.9·log₂ p on average, hubs ≈ 4·log₂ p               ~log n
===========  =====================================================  =========

Cross-boundary edge fractions (measured): GNM ``1 − 1/p``, RGG ≈ 0.09,
RHG ≈ 0.08.  ``tests/perf/test_model_calibration.py`` re-measures these
against the generators so drift is caught.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.graphs.generators import rgg_radius

#: measured cross-boundary edge fractions
CROSS_FRAC = {"gnm": None, "rgg": 0.09, "rhg": 0.08}  # gnm: 1 - 1/p


@dataclass(frozen=True)
class LevelStats:
    """Per-rank statistics of one BFS level (averages over active ranks)."""

    #: frontier vertices handled per active rank
    frontier_per_rank: float
    #: elements sent to *other* ranks, per active rank
    cross_elems_per_rank: float
    #: distinct destination ranks per active rank (average)
    partners: float
    #: distinct partners at the *bottleneck* rank (hub fan-in; makespan is
    #: governed by this rank for direct exchange strategies)
    partners_max: float = 0.0
    #: fraction of ranks active this level (RGG wavefronts are sparse)
    active_fraction: float = 1.0

    def __post_init__(self):
        if self.partners_max < self.partners:
            object.__setattr__(self, "partners_max", self.partners)


@dataclass(frozen=True)
class BfsWorkload:
    family: str
    p: int
    n_per_rank: int
    avg_degree: float
    levels: tuple[LevelStats, ...]

    @property
    def num_levels(self) -> int:
        return len(self.levels)


def _gnm_levels(p: int, n_per: int, deg: float) -> tuple[LevelStats, ...]:
    n = n_per * p
    shares = []
    frontier = 1.0
    remaining = float(n)
    while remaining > 0.5:
        take = min(frontier, remaining)
        shares.append(take)
        remaining -= take
        frontier = take * deg
    cross = 1.0 - 1.0 / p
    out = []
    for s in shares:
        per_rank = s / p
        msgs = per_rank * deg * cross
        partners = min(p - 1.0, msgs)
        out.append(LevelStats(per_rank, msgs, max(partners, 0.0)))
    return tuple(out)


def _rgg_levels(p: int, n_per: int, deg: float) -> tuple[LevelStats, ...]:
    n = n_per * p
    r = rgg_radius(n, deg)
    num_levels = max(int(np.ceil(1.15 * np.sqrt(2.0) / r)), 1)
    cross = CROSS_FRAC["rgg"]
    out = []
    hop = np.sqrt(2.0) / num_levels  # radial progress per level
    cell = 1.0 / np.sqrt(p)
    total_assigned = 0.0
    for lvl in range(num_levels):
        d = (lvl + 0.5) * hop
        # area of the annulus clipped to the unit square (crude but adequate)
        area = min(np.pi * 2.0 * d * hop, 1.0 - total_assigned)
        area = max(area, 0.0)
        total_assigned += area
        frontier_total = area * n
        active_ranks = min(p, max(2.0 * np.pi * d / cell, 1.0))
        per_rank = frontier_total / active_ranks
        msgs = per_rank * deg * cross
        out.append(LevelStats(per_rank, msgs, min(8.0, p - 1.0),
                              active_fraction=active_ranks / p))
    return tuple(out)


def _rhg_levels(p: int, n_per: int, deg: float) -> tuple[LevelStats, ...]:
    n = n_per * p
    num_levels = max(int(round(1.1 * np.log2(n))) - 4, 3)
    cross = CROSS_FRAC["rhg"]
    # frontier mass concentrates in 2–3 central levels (measured)
    weights = np.exp(-0.5 * ((np.arange(num_levels) - num_levels / 3.0)
                             / 1.2) ** 2)
    weights /= weights.sum()
    partners = min(p - 1.0, 1.9 * np.log2(max(p, 2)))
    # the hub rank's fan-in saturates at its hub vertex's degree
    # (power-law: max degree ~ n^{1/(gamma-1)}), measured to approach p-1
    # once the hub degree exceeds the rank count
    hub_degree = float(n) ** (1.0 / 1.9)
    partners_hub = min(p - 1.0, hub_degree)
    out = []
    for w in weights:
        per_rank = w * n / p
        msgs = per_rank * deg * cross
        out.append(LevelStats(
            per_rank, msgs,
            max(min(partners, msgs), 0.0),
            partners_max=max(min(partners_hub, msgs * p), 0.0),
        ))
    return tuple(out)


def bfs_workload(family: str, p: int, n_per_rank: int = 4096,
                 avg_degree: float = 16.0) -> BfsWorkload:
    """Workload statistics for one (family, p) weak-scaling point."""
    if family == "gnm":
        levels = _gnm_levels(p, n_per_rank, avg_degree)
    elif family == "rgg":
        levels = _rgg_levels(p, n_per_rank, avg_degree)
    elif family == "rhg":
        levels = _rhg_levels(p, n_per_rank, avg_degree)
    else:
        raise ValueError(f"unknown family {family!r}")
    return BfsWorkload(family, p, n_per_rank, avg_degree, levels)

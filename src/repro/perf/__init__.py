"""``repro.perf`` — analytic large-scale performance evaluation.

The executing simulator (threads as ranks) runs comfortably up to ~64 ranks;
the paper's figures go to 256 nodes × 48 cores (Fig. 8) and 2^14 ranks
(Fig. 10).  This package evaluates the same algorithms *analytically* under
the identical :class:`~repro.mpi.costmodel.CostModel`:

- :mod:`repro.perf.families` — per-BFS-level workload statistics for the
  GNM / RGG-2D / RHG generators, with parameters calibrated against
  measurements of the real generators (see ``tests/perf``);
- :mod:`repro.perf.strategies` — per-exchange-strategy cost formulas
  mirroring the simulator's collective algorithms;
- :mod:`repro.perf.samplesort_model` — the Fig. 8 sample-sort model for all
  five bindings;
- :mod:`repro.perf.sweep` — the weak-scaling sweep drivers the benchmarks
  use, which splice executing-simulator measurements (small p) and the
  analytic model (large p) into one series.
"""

from repro.perf.families import BfsWorkload, LevelStats, bfs_workload
from repro.perf.samplesort_model import samplesort_time
from repro.perf.strategies import bfs_time, exchange_cost
from repro.perf.sweep import bfs_sweep, samplesort_sweep

__all__ = [
    "LevelStats", "BfsWorkload", "bfs_workload",
    "exchange_cost", "bfs_time",
    "samplesort_time",
    "bfs_sweep", "samplesort_sweep",
]

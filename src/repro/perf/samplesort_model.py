"""Analytic Fig. 8 model: sample-sort time per binding at any scale.

Mirrors the implementations in :mod:`repro.apps.sorting.sample_sort` term by
term: local sorts and the bucketing pass (the calibrated constants of
``apps.sorting.common``), sample allgather (Bruck), the count exchange, and
the data exchange — direct pairwise ``alltoallv`` for MPI / RWTH / KaMPIng,
implicitly-serialized ``alltoall`` for Boost.MPI, and the derived-datatype
``alltoallw`` path for MPL (the documented source of its overhead).
"""

from __future__ import annotations

import numpy as np

from repro.apps.sorting.common import (
    PASS_COST_PER_ITEM,
    SORT_COST_PER_ITEM,
    num_samples_for,
)
from repro.mpi.costmodel import CostModel

_ELEM_BYTES = 8

BINDINGS = ("MPI", "Boost.MPI", "RWTH-MPI", "MPL", "KaMPIng")


def _log2(p: int) -> float:
    return float(max(p - 1, 1).bit_length())


def _sort_time(n: float) -> float:
    return SORT_COST_PER_ITEM * n * max(np.log2(max(n, 2.0)), 1.0) if n > 1 else 0.0


def samplesort_time(binding: str, p: int, n_per_rank: int,
                    cm: CostModel) -> float:
    """Simulated sample-sort makespan for one binding at (p, n/rank)."""
    n = float(n_per_rank)
    s = num_samples_for(p)
    t = 0.0

    # sample allgather (Bruck: log p rounds, (p−1)·s bytes) + sample sort
    t += _log2(p) * (cm.alpha + 2 * cm.overhead) + (p - 1) * s * _ELEM_BYTES * cm.beta
    t += _sort_time(p * s)
    # bucketing pass
    t += PASS_COST_PER_ITEM * n

    nbytes = n * _ELEM_BYTES
    if binding == "MPL":
        # counts alltoall + alltoallw data path (per-peer datatype penalty,
        # pack/unpack per byte)
        t += (p - 1) * (cm.alpha + 2 * cm.overhead)
        t += (p - 1) * (cm.alpha + cm.dtype_alpha + 2 * cm.overhead) \
            + nbytes * (cm.beta + cm.pack_beta)
    elif binding == "Boost.MPI":
        # alltoall of serialized vectors: pickle both ways + transfer
        t += (p - 1) * (cm.alpha + 2 * cm.overhead) + nbytes * cm.beta
        t += 2.0 * nbytes * cm.ser_beta
    else:  # MPI, RWTH-MPI, KaMPIng: counts alltoall + pairwise alltoallv
        t += 2.0 * (p - 1) * (cm.alpha + 2 * cm.overhead) + nbytes * cm.beta

    # initial local sort of the received data
    t += _sort_time(n)
    return t

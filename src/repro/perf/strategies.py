"""Per-strategy exchange cost formulas, mirroring the simulator's algorithms.

Every formula is the closed form of what the executing runtime does —
pairwise exchange for ``alltoallv``, Bruck/dissemination log-terms for
allgather/barrier, two sub-``alltoallv``s over √p-size communicators for the
grid, issend+ibarrier for NBX.  ``tests/perf`` cross-validates these against
virtual-time measurements from the executing simulator at small ``p``.
"""

from __future__ import annotations

import numpy as np

from repro.mpi import algorithms as _coll_algorithms
from repro.mpi.costmodel import CostModel
from repro.perf.families import BfsWorkload, LevelStats

_ELEM_BYTES = 8
#: per-edge CPU cost of frontier expansion (matches apps.graphs.bfs)
_EDGE_COST = 6.0e-9
#: group-table construction cost per member when creating a communicator
COMM_CREATE_PER_RANK = 2.0e-8


def _log2(p: int) -> float:
    return float(max(p - 1, 1).bit_length())


def collective_cost(op: str, algorithm: str, p: int, nbytes: int,
                    cm: CostModel) -> float:
    """Closed-form α-β cost of one registered collective algorithm.

    Delegates to the registry's per-algorithm formulas — the same ones the
    ``costmodel`` selection policy minimizes — so the analytic layer and the
    engine can never disagree about an algorithm's predicted cost.
    Cross-validated against virtual-time measurements of the executing
    simulator in ``tests/perf/test_algorithm_costs.py``.
    """
    return _coll_algorithms.get(op, algorithm).predict(p, nbytes, cm)


def exchange_cost(strategy: str, stats: LevelStats, p: int,
                  cm: CostModel) -> float:
    """Cost of one frontier exchange for one level, per the strategy."""
    nbytes = stats.cross_elems_per_rank * _ELEM_BYTES
    # direct strategies bottleneck on the rank with the largest fan-in
    k = max(stats.partners_max, stats.partners, 0.0)

    if strategy in ("mpi", "kamping"):
        # counts alltoall (p−1 zero/short messages) + pairwise alltoallv
        return 2.0 * (p - 1) * (cm.alpha + 2 * cm.overhead) \
            + (p - 1) * 4 * cm.beta + nbytes * cm.beta

    if strategy == "mpi_neighbor":
        # neighbor_alltoall of counts + neighbor_alltoallv of payloads
        return 2.0 * k * (cm.alpha + 2 * cm.overhead) + nbytes * cm.beta

    if strategy == "mpi_neighbor_rebuild":
        rebuild = p * COMM_CREATE_PER_RANK + _log2(p) * cm.alpha
        return rebuild + exchange_cost("mpi_neighbor", stats, p, cm)

    if strategy == "kamping_sparse":
        # k issends (+ matching receives) + one ibarrier (dissemination)
        return 2.0 * k * (cm.alpha + 2 * cm.overhead) \
            + 2.0 * _log2(p) * cm.alpha + nbytes * cm.beta

    if strategy == "kamping_grid":
        q = float(np.sqrt(p))
        # two hops, each an alltoallv (with count inference) over a
        # √p-size sub-communicator; payload triples to carry (src, dest)
        per_hop = 2.0 * (q - 1) * (cm.alpha + 2 * cm.overhead) \
            + 3.0 * nbytes * cm.beta
        return 2.0 * per_hop

    raise ValueError(f"unknown strategy {strategy!r}")


def bfs_time(strategy: str, workload: BfsWorkload, cm: CostModel) -> float:
    """Analytic makespan of a BFS run under one exchange strategy."""
    p = workload.p
    total = 0.0
    for stats in workload.levels:
        compute = stats.frontier_per_rank * workload.avg_degree * _EDGE_COST
        termination = 2.0 * _log2(p) * (cm.alpha + 2 * cm.overhead)
        total += compute + termination + exchange_cost(strategy, stats, p, cm)
    return total

"""Weak-scaling sweep drivers shared by the Fig. 8 and Fig. 10 benchmarks.

A sweep point either *executes* on the threaded simulator (small ``p``) or
*evaluates* the analytic model (large ``p``); the benchmarks splice both
into one series and report which regime produced each point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.apps.graphs.bfs import bfs
from repro.apps.graphs.generators import (
    generate_gnm,
    generate_rgg2d,
    generate_rhg,
    symmetrize,
)
from repro.apps.sorting.sample_sort import SAMPLE_SORT_IMPLS
from repro.core import Communicator, extend, run
from repro.mpi.costmodel import CostModel
from repro.perf.families import bfs_workload
from repro.perf.samplesort_model import samplesort_time
from repro.perf.strategies import bfs_time
from repro.plugins.grid_alltoall import GridAlltoall
from repro.plugins.sparse_alltoall import SparseAlltoall

#: largest rank count run on the executing (threaded) simulator
SIMULATOR_MAX_P = 16


@dataclass
class SweepPoint:
    p: int
    seconds: float
    #: "simulated" (executing runtime, virtual clock) or "model" (analytic)
    source: str
    #: per-op ``{calls, sent, recvd, bytes, seconds}`` aggregates from the
    #: structured trace; only populated for simulated points of traced sweeps
    op_bytes: Optional[dict] = None
    #: ``{op: (algorithm, ...)}`` — which registered collective algorithms
    #: the engine actually ran; only populated for traced simulated points
    algorithms: Optional[dict] = None


def samplesort_sweep(binding: str, ps: Sequence[int], n_per_rank: int,
                     cost_model: Optional[CostModel] = None,
                     simulator_max_p: int = SIMULATOR_MAX_P,
                     trace: bool = False) -> list[SweepPoint]:
    """Fig. 8 series for one binding: simulate small p, model large p.

    ``trace=True`` records the structured communication trace for the
    simulated points and attaches per-op byte aggregates to each point.
    """
    cm = cost_model if cost_model is not None else CostModel()
    impl, wrap = SAMPLE_SORT_IMPLS[binding]
    points = []
    for p in ps:
        if p <= simulator_max_p:
            def entry(comm):
                rng = np.random.default_rng(comm.rank)
                data = rng.integers(0, 2**62, size=n_per_rank, dtype=np.int64)
                impl(wrap(comm.raw) if binding != "KaMPIng" else comm, data)
                return None

            result = run(entry, p, cost_model=cm, trace=trace)
            points.append(SweepPoint(p, result.max_time, "simulated",
                                     result.op_bytes() if trace else None,
                                     result.algorithms_used() if trace else None))
        else:
            points.append(
                SweepPoint(p, samplesort_time(binding, p, n_per_rank, cm),
                           "model")
            )
    return points


_GENERATORS = {
    "gnm": lambda n_per, deg, p, r, seed: generate_gnm(
        n_per, int(n_per * deg / 2), p, r, seed),
    "rgg": generate_rgg2d,
    "rhg": generate_rhg,
}


def bfs_sweep(family: str, strategy: str, ps: Sequence[int],
              n_per_rank: int = 256, avg_degree: float = 8.0,
              cost_model: Optional[CostModel] = None,
              simulator_max_p: int = SIMULATOR_MAX_P,
              model_n_per_rank: int = 4096,
              model_avg_degree: float = 16.0,
              trace: bool = False) -> list[SweepPoint]:
    """Fig. 10 series for one (family, strategy) pair.

    Executing-simulator points use a scaled-down graph (``n_per_rank``); the
    analytic model evaluates the paper's full per-rank workload (2^12
    vertices, 2^15 edges ⇒ degree 16).
    """
    cm = cost_model if cost_model is not None else CostModel()
    Comm = extend(Communicator, GridAlltoall, SparseAlltoall)
    points = []
    for p in ps:
        if p <= simulator_max_p:
            def entry(comm):
                g = _GENERATORS[family](n_per_rank, avg_degree, p,
                                        comm.rank, 7)
                if family == "gnm":
                    g = symmetrize(comm, g)
                bfs(g, 0, comm, strategy=strategy)
                return None

            result = run(entry, p, cost_model=cm, comm_class=Comm,
                         trace=trace)
            points.append(SweepPoint(p, result.max_time, "simulated",
                                     result.op_bytes() if trace else None,
                                     result.algorithms_used() if trace else None))
        else:
            workload = bfs_workload(family, p, model_n_per_rank,
                                    model_avg_degree)
            points.append(SweepPoint(p, bfs_time(strategy, workload, cm),
                                     "model"))
    return points

"""MPI-level constants mirroring the C API's special values."""

from __future__ import annotations

#: Wildcard source rank for receive operations (analog of ``MPI_ANY_SOURCE``).
ANY_SOURCE: int = -1

#: Wildcard message tag for receive operations (analog of ``MPI_ANY_TAG``).
ANY_TAG: int = -1

#: Sentinel marking an in-place operation (analog of ``MPI_IN_PLACE``).
IN_PLACE = object()

#: Sentinel rank for "no process" (analog of ``MPI_PROC_NULL``).
PROC_NULL: int = -2

#: Communicator id of the world communicator (analog of ``MPI_COMM_WORLD``).
#: Tuning tables installed for runs (``engine.tune``, ``AutoTuner.install``)
#: key on this id, and ``CollectiveEngine.explain`` defaults to it.
WORLD_ID = "world"

#: Upper bound (exclusive) for user tags; larger values are reserved for the
#: runtime's internal collective protocols.
TAG_UB: int = 2**20

#: Base offset for internal collective tags.  A collective call with sequence
#: number ``seq`` and operation code ``code`` uses tag
#: ``-(_COLL_TAG_BASE + seq * _COLL_TAG_STRIDE + code)``, which can never
#: collide with user tags (user tags must be non-negative).
_COLL_TAG_BASE: int = 1_000_000
_COLL_TAG_STRIDE: int = 64


def collective_tag(seq: int, code: int) -> int:
    """Return the reserved internal tag for collective ``code`` at epoch ``seq``."""
    if not 0 <= code < _COLL_TAG_STRIDE:
        raise ValueError(f"collective op code out of range: {code}")
    return -(_COLL_TAG_BASE + seq * _COLL_TAG_STRIDE + code)


def validate_user_tag(tag: int) -> int:
    """Validate a user-provided message tag, mirroring ``MPI_TAG_UB`` checks."""
    if tag != ANY_TAG and not 0 <= tag < TAG_UB:
        from repro.mpi.errors import RawUsageError

        raise RawUsageError(
            f"user tags must be in [0, {TAG_UB}) or ANY_TAG, got {tag}"
        )
    return tag

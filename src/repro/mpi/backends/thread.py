"""Threads-as-ranks execution backend (the seed runtime's original engine).

One daemon thread per rank, all sharing a single :class:`~repro.mpi.machine.
Machine`: mailboxes are plain in-process queues, collectives run over them,
and the virtual clocks advance deterministically.  Because everything shares
one address space, this backend is the only one that supports the
introspection and chaos machinery — MPIsan resource auditing, the seeded
schedule fuzzer, fault-injection campaigns, RMA windows, and ULFM failure
coordination — which makes it the deterministic debug target the process
backend is differentially tested against (``tests/backends/``).
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Optional, Sequence

from repro.mpi.backends.base import Backend
from repro.mpi.costmodel import CostModel
from repro.mpi.engine import CollectiveEngine
from repro.mpi.errors import (
    ProcessKilled,
    RawDeadlockError,
    RawUsageError,
    RunTimeout,
)
from repro.mpi.machine import Machine, RunResult, _emit_leak_events
from repro.mpi.watchdog import format_stacks, thread_stacks
from repro.mpi.sanitizer import (
    LeakReport,
    ResourceAuditor,
    ResourceLeakError,
    ScheduleFuzzer,
    env_fuzz_seed_default,
    env_sanitize_default,
)
from repro.mpi.tracing import TraceRecorder


class ThreadBackend(Backend):
    """Run ranks as threads of the calling process (deterministic target)."""

    name = "thread"

    def run(self, fn: Callable[..., Any], num_ranks: int, *,
            args: Sequence[Any] = (),
            cost_model: Optional[CostModel] = None,
            deadline: float = 120.0,
            timeout: Optional[float] = None,
            trace: bool | TraceRecorder = False,
            engine: Optional[CollectiveEngine] = None,
            sanitize: Optional[bool] = None,
            fuzz_seed: Optional[int] = None,
            faults: Any = None) -> RunResult:
        from repro.mpi.context import RawComm

        if timeout is not None and timeout <= 0:
            raise RawUsageError(f"timeout must be > 0 seconds, got {timeout}")

        tracer: Optional[TraceRecorder]
        if isinstance(trace, TraceRecorder):
            tracer = trace
        elif trace:
            tracer = TraceRecorder(num_ranks)
        else:
            tracer = None

        if sanitize is None:
            sanitize = env_sanitize_default()
        if fuzz_seed is None:
            fuzz_seed = env_fuzz_seed_default()
        auditor = ResourceAuditor() if sanitize else None
        fuzzer = ScheduleFuzzer(fuzz_seed) if fuzz_seed is not None else None

        machine = Machine(num_ranks, cost_model=cost_model, deadline=deadline,
                          tracer=tracer, engine=engine, auditor=auditor,
                          fuzzer=fuzzer, faults=faults)
        values: list[Any] = [None] * num_ranks
        errors: list[Optional[BaseException]] = [None] * num_ranks

        def worker(world_rank: int) -> None:
            if fuzzer is not None:
                fuzzer.pause("spawn")
            comm = RawComm(machine, machine.world, world_rank)
            try:
                values[world_rank] = fn(comm, *args)
            except ProcessKilled:
                machine.mark_failed(world_rank)
            except BaseException as exc:  # noqa: BLE001 - report to the driver
                errors[world_rank] = exc

        threads = [
            threading.Thread(target=worker, args=(r,), name=f"rank-{r}",
                             daemon=True)
            for r in range(num_ranks)
        ]
        for t in threads:
            t.start()
        # the run watchdog (timeout=) bounds the *whole run* in real seconds
        # and replaces the per-thread deadlock join budget; either way a rank
        # that never terminates becomes a diagnosable error, not a hang
        expiry = (time.monotonic() + timeout) if timeout is not None else None
        for t in threads:
            if expiry is None:
                t.join(timeout=deadline + 30.0)
                if t.is_alive():
                    raise RawDeadlockError(
                        f"{t.name} did not terminate (deadlock?)")
            else:
                t.join(timeout=max(expiry - time.monotonic(), 0.0))
                if t.is_alive():
                    stacks = thread_stacks(threads)
                    raise RunTimeout(
                        f"run exceeded its {timeout:g}s watchdog; "
                        f"{len(stacks)} rank(s) still running. Per-rank "
                        f"stacks:\n{format_stacks(stacks)}",
                        stacks,
                    )

        # Prefer primary errors: a rank dying in a collective makes its peers
        # hit the deadlock deadline, but the root cause is the original
        # exception.
        def _priority(item):
            _, exc = item
            return 1 if isinstance(exc, RawDeadlockError) else 0

        raised = [(rank, exc) for rank, exc in enumerate(errors)
                  if exc is not None]
        for rank, exc in sorted(raised, key=_priority):
            raise RuntimeError(
                f"rank {rank} raised {type(exc).__name__}: {exc}"
            ) from exc

        leaks: Optional[LeakReport] = None
        if machine.auditor.enabled:
            leaks = machine.auditor.collect(machine)
            if leaks and tracer is not None:
                _emit_leak_events(tracer, leaks)
            # failed ranks tear down mid-operation: report, but don't fail
            # the run
            if leaks and not machine.failed_snapshot():
                raise ResourceLeakError(leaks)

        return RunResult(
            values=values,
            times=[c.now for c in machine.clocks],
            counts=machine.profile,
            comm_seconds=[c.comm_seconds for c in machine.clocks],
            compute_seconds=[c.compute_seconds for c in machine.clocks],
            failed=machine.failed_snapshot(),
            machine=machine,
            trace=tracer,
            leaks=leaks,
            backend=self.name,
        )

"""Execution backends: how ``run_mpi`` turns a function into ``p`` ranks.

Two backends ship today:

``thread`` (:class:`~repro.mpi.backends.thread.ThreadBackend`, the default)
    Ranks are threads of the calling process sharing one
    :class:`~repro.mpi.machine.Machine`.  Deterministic, cheap to spawn, and
    the only backend supporting the shared-address-space machinery (MPIsan,
    schedule fuzzing, fault injection, RMA, ULFM).

``process`` (:class:`~repro.mpi.backends.process.ProcessBackend`)
    One OS process per rank connected by per-pair duplex pipes, escaping the
    GIL for genuinely parallel execution.  Payloads and results must be
    picklable; unsupported features raise
    :class:`~repro.mpi.errors.UnsupportedOnBackend`.

Selection precedence: an explicit ``backend=`` argument (name or
:class:`Backend` instance) beats the ``REPRO_BACKEND`` environment variable,
which beats the ``"thread"`` default.  The differential conformance suite
(``tests/backends/``) runs the same programs on both backends and asserts
identical results.
"""

from __future__ import annotations

import os
from typing import Optional, Union

from repro.mpi.backends.base import Backend
from repro.mpi.backends.process import ProcessBackend
from repro.mpi.backends.thread import ThreadBackend
from repro.mpi.errors import RawUsageError, UnsupportedOnBackend

#: registry of backend names accepted by ``run_mpi(backend=...)`` and the
#: ``REPRO_BACKEND`` environment variable
BACKENDS: dict[str, type[Backend]] = {
    ThreadBackend.name: ThreadBackend,
    ProcessBackend.name: ProcessBackend,
}


def resolve_backend(backend: Optional[Union[str, Backend]] = None) -> Backend:
    """Resolve a backend argument to a ready-to-run :class:`Backend`.

    ``None`` consults ``REPRO_BACKEND`` (empty/unset means ``"thread"``).
    A :class:`Backend` instance passes through unchanged; a string is looked
    up in :data:`BACKENDS`.
    """
    if backend is None:
        backend = os.environ.get("REPRO_BACKEND", "").strip() or "thread"
    if isinstance(backend, Backend):
        return backend
    cls = BACKENDS.get(backend) if isinstance(backend, str) else None
    if cls is None:
        raise RawUsageError(
            f"unknown execution backend {backend!r}; "
            f"available: {sorted(BACKENDS)}"
        )
    return cls()


__all__ = [
    "Backend",
    "ThreadBackend",
    "ProcessBackend",
    "BACKENDS",
    "resolve_backend",
    "UnsupportedOnBackend",
]

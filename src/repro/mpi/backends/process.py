"""One-OS-process-per-rank execution backend.

Ranks are ``multiprocessing`` processes connected by per-pair duplex pipes;
envelopes cross rank boundaries as pickled messages.  The entire binding
stack — mailbox matching, the collective algorithms, non-blocking
collectives, communicator split/dup, tracing, the virtual cost model — runs
unchanged on top: each rank builds a *rank-local replica* of the machine
(:class:`_ProcessMachine`) in which its own mailbox is the real
:class:`~repro.mpi.p2p.Mailbox` and every other rank's mailbox is a
:class:`_RemoteMailbox` proxy that ships the envelope down the pipe to the
peer, whose pump thread deposits it into the peer's real mailbox.  Because
matching, clocks, and algorithms are byte-for-byte the same code, a
wildcard-free program produces bit-identical results, virtual times, PMPI
counters, and traces on both backends (``tests/backends/`` enforces this).

Wire protocol (one pickled tuple per message, FIFO per pair):

- ``("env", comm_id, source, tag, payload, nbytes, arrival_time, token)`` —
  a message envelope; ``token`` is non-``None`` for synchronous sends and is
  echoed back as ``("ack", token, match_clock)`` when the receiver matches.
- ``("bar", comm_id, epoch, clock)`` / ``("bardone", comm_id, epoch, t)`` —
  the non-blocking-barrier arrival protocol, coordinated by the member with
  the lowest world rank (:class:`_PipeBarrier`).

The parent coordinates startup and teardown over a per-rank control pipe:
every child reports ``up``, the parent releases them all with ``start``
(so no rank runs user code before every pipe endpoint is live), each child
reports ``done`` with its marshalled result, and only when *all* ranks have
reported does the parent send ``exit`` — a late fire-and-forget send can
therefore never hit a closed pipe.

What this backend does **not** provide — and refuses loudly
(:class:`~repro.mpi.errors.UnsupportedOnBackend`) rather than emulating
badly — is everything built on a shared address space: MPIsan resource
auditing, the seeded schedule fuzzer, fault-injection campaigns, RMA
windows, and ULFM failure coordination.  Note the ambient ``REPRO_SANITIZE``
/ ``REPRO_FUZZ_SEED`` environment defaults are deliberately *ignored* here:
they opt the thread backend into extra checking, and honoring them would
make ``REPRO_BACKEND=process`` unrunnable under a sanitizing CI lane.  Only
an explicit ``sanitize=True`` / ``fuzz_seed=`` / ``faults=`` argument is an
error.

Constraints: ``fn``, ``args``, payloads, and return values must be
picklable.  The start method defaults to ``fork`` where available (so
closures and lambdas work, exactly like the thread backend); set
``REPRO_PROCESS_START=spawn`` (or pass ``ProcessBackend("spawn")``) to use a
spawn context, under which ``fn`` must be a module-level callable.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import pickle
import threading
import traceback
from collections import Counter
from multiprocessing import connection as mp_connection
from typing import Any, Callable, Hashable, Optional, Sequence

from repro.mpi.backends.base import Backend
from repro.mpi.costmodel import Clock, CostModel
from repro.mpi.engine import CollectiveEngine
from repro.mpi.errors import (
    RawDeadlockError,
    RawUsageError,
    UnsupportedOnBackend,
)
from repro.mpi.machine import WORLD_ID, RunResult
from repro.mpi.p2p import Envelope, Mailbox
from repro.mpi.sanitizer import NULL_AUDITOR
from repro.mpi.tracing import NULL_TRACER, TraceRecorder
from repro.mpi.waiting import Backoff

#: extra real-time budget the parent allows beyond the machine deadline
#: before declaring the run hung and terminating the children
_COLLECT_GRACE = 60.0


def unsupported(feature: str, what: str) -> str:
    """The pinned message format for process-backend feature refusals."""
    return (
        f"{what} is not supported on the 'process' backend: it relies on "
        f"shared-process state ({feature}); run with backend='thread'"
    )


# ---------------------------------------------------------------------------
# transport: pipes, pump thread, sync-send acks
# ---------------------------------------------------------------------------


class _AckEvent:
    """Receiver-side stand-in for a synchronous send's match event.

    :meth:`~repro.mpi.p2p.PendingRecv.complete` stamps ``env.match_clock``
    and calls ``sync_event.set()``; here ``set()`` ships the ack back to the
    sender, whose transport completes the *sender's* local envelope (a real
    :class:`threading.Event`), unblocking its ``SyncSendRequest``.
    """

    __slots__ = ("_transport", "_peer_world", "_token", "env")

    def __init__(self, transport: "_Transport", peer_world: int, token):
        self._transport = transport
        self._peer_world = peer_world
        self._token = token
        self.env: Optional[Envelope] = None

    def set(self) -> None:
        self._transport.send(
            self._peer_world,
            ("ack", self._token, self.env.match_clock if self.env else 0.0),
        )


class _RemoteMailbox:
    """Send-side proxy for a peer rank's mailbox: ``deposit`` ships the
    envelope down the pipe; the peer's pump thread delivers it into the real
    :class:`~repro.mpi.p2p.Mailbox` over there.  Only ``deposit`` exists —
    probing and receiving always target the rank's own (local) mailbox.
    """

    __slots__ = ("_transport", "_comm_id", "_dest_world")

    def __init__(self, transport: "_Transport", comm_id: Hashable,
                 dest_world: int):
        self._transport = transport
        self._comm_id = comm_id
        self._dest_world = dest_world

    def deposit(self, env: Envelope) -> None:
        token = None
        if env.sync_event is not None:
            token = self._transport.register_sync(env)
        try:
            self._transport.send(self._dest_world, (
                "env", self._comm_id, env.source, env.tag, env.payload,
                env.nbytes, env.arrival_time, token,
            ))
        except (pickle.PicklingError, TypeError, AttributeError,
                ValueError) as exc:
            raise RawUsageError(
                f"payload of type {type(env.payload).__name__} could not be "
                f"pickled for the process-backend transport: {exc}"
            ) from exc


class _PipeBarrier:
    """Pipe-based replica of :class:`~repro.mpi.requests.ArrivalBarrier`.

    The member with the lowest world rank coordinates: everyone else sends
    its arrival to the coordinator, which — once all ``size`` members of the
    epoch arrived — computes the completion time with the same formula as
    the thread backend's counter barrier and broadcasts it back.
    """

    def __init__(self, transport: "_Transport", comm_id: Hashable,
                 members: tuple[int, ...], my_world: int, alpha: float):
        self._transport = transport
        self._comm_id = comm_id
        self._members = members
        self._my = my_world
        self._coord = members[0]
        self._size = len(members)
        self._alpha = alpha
        self._cond = threading.Condition()
        self._arrivals: dict[int, int] = {}
        self._max_clock: dict[int, float] = {}
        self._complete_time: dict[int, float] = {}

    def arrive(self, epoch: int, clock_now: float) -> int:
        if self._my == self._coord:
            self._record(epoch, clock_now)
        else:
            self._transport.send(
                self._coord, ("bar", self._comm_id, epoch, clock_now)
            )
        return epoch

    def remote_arrive(self, epoch: int, clock_now: float) -> None:
        """A peer's arrival, delivered by the coordinator's pump thread."""
        self._record(epoch, clock_now)

    def remote_done(self, epoch: int, t: float) -> None:
        """Completion broadcast, delivered by a non-coordinator's pump."""
        with self._cond:
            self._complete_time[epoch] = t
            self._cond.notify_all()

    def _record(self, epoch: int, clock_now: float) -> None:
        with self._cond:
            n = self._arrivals.get(epoch, 0) + 1
            self._arrivals[epoch] = n
            self._max_clock[epoch] = max(
                self._max_clock.get(epoch, 0.0), clock_now
            )
            if n < self._size:
                return
            rounds = max((self._size - 1).bit_length(), 1)
            t = self._max_clock[epoch] + rounds * self._alpha
            self._complete_time[epoch] = t
            self._cond.notify_all()
        for w in self._members:
            if w != self._my:
                self._transport.send(w, ("bardone", self._comm_id, epoch, t))

    def is_complete(self, epoch: int) -> bool:
        with self._cond:
            return epoch in self._complete_time

    def completion_time(self, epoch: int) -> float:
        with self._cond:
            return self._complete_time[epoch]

    def wait_complete(self, epoch: int, deadline: float, fuzz=None) -> None:
        backoff = Backoff(deadline, fuzz=fuzz)
        with self._cond:
            while epoch not in self._complete_time:
                self._cond.wait(timeout=backoff.next_timeout())
                if epoch not in self._complete_time and backoff.expired:
                    raise RawDeadlockError("ibarrier never completed")


class _Transport:
    """One rank's pipe endpoints plus the pump thread that drains them.

    Sends are serialized per peer (``Connection.send`` is not thread-safe:
    the rank's main thread and the pump thread — acks, barrier broadcasts —
    both send).  Messages for communicators this rank has not locally
    created yet are stashed under the registry lock and drained by
    ``get_or_create_comm``, preserving per-pair FIFO order.
    """

    def __init__(self, my_rank: int, peer_conns: dict[int, Any]):
        self._my = my_rank
        self._conns = peer_conns
        self._send_locks = {w: threading.Lock() for w in peer_conns}
        self._machine: Optional["_ProcessMachine"] = None
        self._stash: dict[Hashable, list[tuple]] = {}
        self._sync: dict[tuple, Envelope] = {}
        self._sync_lock = threading.Lock()
        self._sync_counter = itertools.count()

    # -- sending -----------------------------------------------------------

    def send(self, world: int, msg: tuple) -> None:
        with self._send_locks[world]:
            self._conns[world].send(msg)

    def register_sync(self, env: Envelope) -> tuple:
        token = (self._my, next(self._sync_counter))
        with self._sync_lock:
            self._sync[token] = env
        return token

    # -- receiving ---------------------------------------------------------

    def start(self, machine: "_ProcessMachine") -> None:
        self._machine = machine
        threading.Thread(
            target=self._pump, name=f"pump-{self._my}", daemon=True
        ).start()

    def _pump(self) -> None:
        conns = list(self._conns.values())
        while conns:
            for conn in mp_connection.wait(conns):
                try:
                    msg = conn.recv()
                except (EOFError, OSError):
                    conns.remove(conn)
                    continue
                self._dispatch(msg)

    def _dispatch(self, msg: tuple) -> None:
        machine = self._machine
        if msg[0] == "ack":
            _, token, match_clock = msg
            with self._sync_lock:
                env = self._sync.pop(token, None)
            if env is not None:
                env.match_clock = match_clock
                env.sync_event.set()
            return
        comm_id = msg[1]
        with machine._registry_lock:
            state = machine._comms.get(comm_id)
            if state is None:
                # communicator not created locally yet (e.g. a peer raced
                # ahead through a split): hold the message until it is
                self._stash.setdefault(comm_id, []).append(msg)
                return
        self._deliver(state, msg)

    def drain(self, state: "_ProcessCommState") -> None:
        """Deliver stashed messages for a just-created communicator.

        Called by ``get_or_create_comm`` while holding the registry lock, so
        stashed messages land before anything the pump routes afterwards.
        """
        for msg in self._stash.pop(state.comm_id, ()):
            self._deliver(state, msg)

    def _deliver(self, state: "_ProcessCommState", msg: tuple) -> None:
        kind = msg[0]
        if kind == "env":
            _, _, source, tag, payload, nbytes, arrival_time, token = msg
            sync = None
            if token is not None:
                sync = _AckEvent(self, state.members[source], token)
            env = Envelope(source=source, tag=tag, payload=payload,
                           nbytes=nbytes, arrival_time=arrival_time,
                           sync_event=sync)
            if sync is not None:
                sync.env = env
            state.mailboxes[state.local_of_world[self._my]].deposit(env)
        elif kind == "bar":
            state.barrier.remote_arrive(msg[2], msg[3])
        elif kind == "bardone":
            state.barrier.remote_done(msg[2], msg[3])


# ---------------------------------------------------------------------------
# the rank-local machine replica
# ---------------------------------------------------------------------------


class _ProcessCommState:
    """Rank-local view of one communicator (duck-types ``CommState``).

    This rank's own slot in ``mailboxes`` is a real matching
    :class:`~repro.mpi.p2p.Mailbox`; every peer slot is a
    :class:`_RemoteMailbox`.  ``revoked`` exists so ``_check_usable`` stays
    cheap, but setting it is guarded off via ``machine.require``.
    """

    def __init__(self, machine: "_ProcessMachine", comm_id: Hashable,
                 members: Sequence[int], topology=None):
        self.machine = machine
        self.comm_id = comm_id
        self.members: tuple[int, ...] = tuple(members)
        self.local_of_world = {w: i for i, w in enumerate(self.members)}
        self.mailboxes: dict[int, Any] = {}
        for local, world in enumerate(self.members):
            if world == machine.my_rank:
                mb = Mailbox(deadline_seconds=machine.deadline)
                mb.failure_probe = machine.failed_snapshot
                mb.source_to_world = (
                    lambda r, m=self.members: m[r] if 0 <= r < len(m) else -1
                )
                mb.revoke_probe = self._is_revoked
                self.mailboxes[local] = mb
            else:
                self.mailboxes[local] = _RemoteMailbox(
                    machine.transport, comm_id, world
                )
        self.barrier = _PipeBarrier(
            machine.transport, comm_id, self.members, machine.my_rank,
            machine.cost_model.alpha,
        )
        self.topology = topology
        self.revoked = threading.Event()

    def _is_revoked(self) -> bool:
        return self.revoked.is_set()

    @property
    def size(self) -> int:
        return len(self.members)


class _ProcessMachine:
    """Rank-local replica of :class:`~repro.mpi.machine.Machine`.

    Satisfies the same duck-typed contract the binding layer consumes —
    clocks, profiles, tracer, engine, communicator registry — but holds no
    cross-rank shared state: only this rank's clock/profile slots ever
    advance, and every shared-address-space feature is refused via
    :meth:`require`.
    """

    def __init__(self, my_rank: int, num_ranks: int, *,
                 cost_model: Optional[CostModel],
                 deadline: float,
                 tracer: Optional[TraceRecorder],
                 engine: Optional[CollectiveEngine],
                 transport: _Transport):
        self.my_rank = my_rank
        self.num_ranks = num_ranks
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.deadline = deadline
        self.auditor = NULL_AUDITOR
        self.fuzzer = None
        self.faults = None
        self.engine = (engine if engine is not None
                       else CollectiveEngine(self.cost_model))
        self.clocks = [Clock(self.cost_model) for _ in range(num_ranks)]
        self.profile: list[Counter] = [Counter() for _ in range(num_ranks)]
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.transport = transport
        self._registry_lock = threading.Lock()
        self._comms: dict[Hashable, _ProcessCommState] = {}
        self.world = self.get_or_create_comm(WORLD_ID, range(num_ranks))

    # -- backend feature contract ------------------------------------------

    def require(self, feature: str, what: str) -> None:
        raise UnsupportedOnBackend(unsupported(feature, what))

    # -- communicator registry ---------------------------------------------

    def get_or_create_comm(self, comm_id: Hashable, members: Sequence[int],
                           topology=None) -> _ProcessCommState:
        with self._registry_lock:
            state = self._comms.get(comm_id)
            if state is None:
                state = _ProcessCommState(self, comm_id, members, topology)
                self._comms[comm_id] = state
                self.transport.drain(state)
            elif state.members != tuple(members):
                raise RawUsageError(
                    f"communicator id {comm_id!r} re-created with different "
                    f"members"
                )
            return state

    # -- failures: nothing ever fails here; injection is thread-only -------

    def failed_snapshot(self) -> frozenset[int]:
        return frozenset()

    def alive_members(self, state: _ProcessCommState) -> tuple[int, ...]:
        return state.members

    def mark_failed(self, world_rank: int) -> None:
        self.require("failures", "failure injection")

    def shrink_rendezvous(self, state, generation, world_rank):
        self.require("ulfm", "ULFM shrink/agree coordination")


# ---------------------------------------------------------------------------
# child process entry point (module-level: importable under spawn)
# ---------------------------------------------------------------------------


def _child_main(rank: int, num_ranks: int, fn: Callable[..., Any],
                args: tuple, cfg: dict, peer_conns: dict[int, Any],
                parent_conn) -> None:
    from repro.mpi.context import RawComm

    tracer = TraceRecorder(num_ranks) if cfg["trace"] else None
    transport = _Transport(rank, peer_conns)
    machine = _ProcessMachine(
        rank, num_ranks, cost_model=cfg["cost_model"],
        deadline=cfg["deadline"], tracer=tracer, engine=cfg["engine"],
        transport=transport,
    )
    parent_conn.send(("up", rank, os.getpid()))
    parent_conn.recv()  # ("start",) — every rank's endpoints are live
    transport.start(machine)

    value: Any = None
    error: Optional[tuple[str, str, str]] = None
    try:
        comm = RawComm(machine, machine.world, rank)
        value = fn(comm, *args)
    except BaseException as exc:  # noqa: BLE001 - marshalled to the parent
        error = (type(exc).__name__, str(exc), traceback.format_exc())

    clock = machine.clocks[rank]
    report = {
        "value": value,
        "error": error,
        "time": clock.now,
        "comm_seconds": clock.comm_seconds,
        "compute_seconds": clock.compute_seconds,
        "counts": dict(machine.profile[rank]),
        "trace": list(tracer._events[rank]) if tracer is not None else None,
    }
    try:
        parent_conn.send(("done", rank, report))
    except Exception as exc:  # unpicklable return value: report that instead
        report["value"] = None
        report["error"] = (
            "RawUsageError",
            f"rank {rank} returned a value that could not be pickled back "
            f"to the parent: {exc}",
            traceback.format_exc(),
        )
        parent_conn.send(("done", rank, report))
    parent_conn.recv()  # ("exit",) — all ranks reported; safe to tear down


# ---------------------------------------------------------------------------
# the backend
# ---------------------------------------------------------------------------


class ProcessBackend(Backend):
    """Run each rank in its own OS process (GIL-free parallel execution)."""

    name = "process"

    def __init__(self, start_method: Optional[str] = None):
        self._start_method = start_method

    def _context(self):
        method = (self._start_method
                  or os.environ.get("REPRO_PROCESS_START", "").strip())
        if not method:
            method = ("fork" if "fork" in multiprocessing.get_all_start_methods()
                      else "spawn")
        return multiprocessing.get_context(method)

    def run(self, fn: Callable[..., Any], num_ranks: int, *,
            args: Sequence[Any] = (),
            cost_model: Optional[CostModel] = None,
            deadline: float = 120.0,
            timeout: Optional[float] = None,
            trace: bool | TraceRecorder = False,
            engine: Optional[CollectiveEngine] = None,
            sanitize: Optional[bool] = None,
            fuzz_seed: Optional[int] = None,
            faults: Any = None) -> RunResult:
        if num_ranks < 1:
            raise RawUsageError(f"num_ranks must be >= 1, got {num_ranks}")
        # Explicit requests for thread-only features fail loudly up front.
        # sanitize=None means "env default", which this backend ignores (see
        # the module docstring); only a literal True is a hard request.
        if timeout is not None:
            # the watchdog's value is the per-rank stack dumps, and
            # sys._current_frames() cannot see another OS process's threads
            raise UnsupportedOnBackend(
                unsupported("timeout", "the run watchdog with per-rank "
                            "stack dumps (timeout=...)"))
        if sanitize:
            raise UnsupportedOnBackend(
                unsupported("sanitize", "MPIsan resource auditing "
                            "(sanitize=True)"))
        if fuzz_seed is not None:
            raise UnsupportedOnBackend(
                unsupported("fuzz_seed", "the seeded schedule fuzzer "
                            "(fuzz_seed=...)"))
        if faults is not None:
            raise UnsupportedOnBackend(
                unsupported("faults", "fault-injection campaigns "
                            "(faults=...)"))

        want_trace = bool(trace) or isinstance(trace, TraceRecorder)
        ctx = self._context()

        # per-pair duplex pipes + a control pipe per rank
        pair_conns: dict[int, dict[int, Any]] = {
            r: {} for r in range(num_ranks)
        }
        for i in range(num_ranks):
            for j in range(i + 1, num_ranks):
                ci, cj = ctx.Pipe(True)
                pair_conns[i][j] = ci
                pair_conns[j][i] = cj
        cfg = {"cost_model": cost_model, "deadline": deadline,
               "trace": want_trace, "engine": engine}
        ctl: dict[int, Any] = {}
        child_ends = []
        procs: dict[int, Any] = {}
        for r in range(num_ranks):
            parent_end, child_end = ctx.Pipe(True)
            ctl[r] = parent_end
            child_ends.append(child_end)
            procs[r] = ctx.Process(
                target=_child_main,
                args=(r, num_ranks, fn, tuple(args), cfg, pair_conns[r],
                      child_end),
                name=f"repro-rank-{r}", daemon=True,
            )
        try:
            for p in procs.values():
                p.start()
        except BaseException:
            self._terminate(procs)
            raise
        # drop the parent's copies so only the owning children hold them
        for conns in pair_conns.values():
            for conn in conns.values():
                conn.close()
        for child_end in child_ends:
            child_end.close()

        budget = Backoff(deadline + _COLLECT_GRACE)
        try:
            self._gather(ctl, procs, budget, "up")
            for conn in ctl.values():
                conn.send(("start",))
            reports = self._gather(ctl, procs, budget, "done")
            for conn in ctl.values():
                conn.send(("exit",))
        except BaseException:
            self._terminate(procs)
            raise
        finally:
            for p in procs.values():
                p.join(timeout=10.0)
            self._terminate(procs)
            for conn in ctl.values():
                conn.close()

        return self._assemble(reports, num_ranks, trace, want_trace)

    # -- parent-side collection --------------------------------------------

    def _gather(self, ctl: dict[int, Any], procs: dict[int, Any],
                budget: Backoff, kind: str) -> dict[int, Any]:
        """Collect one ``kind`` message per rank, watching for crashes."""
        pending = set(ctl)
        out: dict[int, Any] = {}
        sentinel_to_rank = {procs[r].sentinel: r for r in procs}
        while pending:
            if budget.expired:
                raise RawDeadlockError(
                    f"process backend: ranks {sorted(pending)} did not "
                    f"report '{kind}' within the deadline; terminating"
                )
            conns = [ctl[r] for r in pending]
            sentinels = [procs[r].sentinel for r in pending]
            ready = mp_connection.wait(conns + sentinels, timeout=0.2)
            # drain data first: a child may have reported and *then* died
            for obj in ready:
                if obj in sentinels:
                    continue
                try:
                    msg = obj.recv()
                except (EOFError, OSError):
                    continue  # the sentinel path below reports the death
                if msg[0] == kind:
                    out[msg[1]] = msg[2:]
                    pending.discard(msg[1])
            for obj in ready:
                rank = sentinel_to_rank.get(obj)
                if rank is not None and rank in pending:
                    procs[rank].join(timeout=5.0)  # reap so exitcode is set
                    code = procs[rank].exitcode
                    raise RuntimeError(
                        f"rank {rank} process died (exit code {code}) "
                        f"before reporting a result (process backend)"
                    )
        return out

    @staticmethod
    def _terminate(procs: dict[int, Any]) -> None:
        for p in procs.values():
            if p.is_alive():
                p.terminate()

    def _assemble(self, reports: dict[int, Any], num_ranks: int,
                  trace: bool | TraceRecorder, want_trace: bool) -> RunResult:
        by_rank = {r: payload[0] for r, payload in reports.items()}

        def _priority(item):
            # peers of a raising rank hit their deadlock deadline; surface
            # the root cause first (same policy as the thread backend)
            return 1 if item[1]["error"][0] == "RawDeadlockError" else 0

        raised = [(r, rep) for r, rep in sorted(by_rank.items())
                  if rep["error"] is not None]
        for rank, rep in sorted(raised, key=_priority):
            etype, emsg, tb = rep["error"]
            raise RuntimeError(
                f"rank {rank} raised {etype}: {emsg}\n"
                f"--- traceback from rank {rank} (process backend) ---\n{tb}"
            )

        tracer: Optional[TraceRecorder] = None
        if want_trace:
            tracer = (trace if isinstance(trace, TraceRecorder)
                      else TraceRecorder(num_ranks))
            for r in range(num_ranks):
                events = by_rank[r]["trace"]
                if events:
                    tracer._events[r].extend(events)

        return RunResult(
            values=[by_rank[r]["value"] for r in range(num_ranks)],
            times=[by_rank[r]["time"] for r in range(num_ranks)],
            counts=[Counter(by_rank[r]["counts"]) for r in range(num_ranks)],
            comm_seconds=[by_rank[r]["comm_seconds"]
                          for r in range(num_ranks)],
            compute_seconds=[by_rank[r]["compute_seconds"]
                             for r in range(num_ranks)],
            failed=frozenset(),
            machine=None,
            trace=tracer,
            leaks=None,
            backend=self.name,
        )

"""The execution-backend contract.

A :class:`Backend` turns ``run_mpi(fn, p)`` into ``p`` concurrently-running
ranks and a :class:`~repro.mpi.machine.RunResult`.  The binding layers above
(:class:`~repro.mpi.context.RawComm` and everything in :mod:`repro.core`)
only consume MPI *semantics* — mailbox matching, collectives, communicator
management — so the same binding code must run unchanged over any backend
(the core/interface split KaMPIng argues for).  A backend supplies:

- a **machine** object satisfying the duck-typed contract of
  :class:`~repro.mpi.machine.Machine` (per-rank clocks/profiles, a tracer,
  a collective engine, a communicator registry, ``require()``);
- a **transport**: communicator states whose ``mailboxes[dest].deposit(env)``
  delivers envelopes to the destination rank and whose ``barrier`` supports
  the non-blocking-barrier arrival protocol;
- **result marshalling** of per-rank values, virtual clocks, PMPI counters,
  and trace events back to the caller.

Features that a transport cannot provide must *fail loudly* by raising
:class:`~repro.mpi.errors.UnsupportedOnBackend` with an actionable message —
silent degradation is a conformance bug (the differential suite under
``tests/backends/`` checks observational equivalence of everything that is
supported).
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence

from repro.mpi.costmodel import CostModel
from repro.mpi.engine import CollectiveEngine
from repro.mpi.machine import RunResult
from repro.mpi.tracing import TraceRecorder


class Backend:
    """Abstract execution backend: spawn ranks, run ``fn``, collect results."""

    #: registry / ``REPRO_BACKEND`` name of the backend
    name: str = "abstract"

    def run(self, fn: Callable[..., Any], num_ranks: int, *,
            args: Sequence[Any] = (),
            cost_model: Optional[CostModel] = None,
            deadline: float = 120.0,
            timeout: Optional[float] = None,
            trace: bool | TraceRecorder = False,
            engine: Optional[CollectiveEngine] = None,
            sanitize: Optional[bool] = None,
            fuzz_seed: Optional[int] = None,
            faults: Any = None) -> RunResult:
        """Execute ``fn(comm, *args)`` on ``num_ranks`` ranks.

        The keyword surface is exactly :func:`repro.mpi.run_mpi`'s; a backend
        that cannot honor a *requested* feature (an explicit ``sanitize=True``
        rather than an ambient env default, a ``faults`` campaign, a
        ``timeout=`` watchdog, …) raises
        :class:`~repro.mpi.errors.UnsupportedOnBackend` before spawning
        anything.
        """
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"

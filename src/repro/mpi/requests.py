"""Raw non-blocking requests (analog of ``MPI_Request``).

These are the *unsafe* requests the C API hands out: they do not protect the
buffers involved.  The KaMPIng layer (:mod:`repro.core.nonblocking`) wraps
them into ownership-tracking non-blocking results.
"""

from __future__ import annotations

import threading
from typing import Any, Optional, Sequence

from repro.mpi.costmodel import Clock
from repro.mpi.errors import RawDeadlockError
from repro.mpi.p2p import Envelope, Mailbox, PendingRecv, Status


class RawRequest:
    """Base class for raw requests."""

    def wait(self) -> Any:
        raise NotImplementedError

    def test(self) -> tuple[bool, Any]:
        """Return ``(done, value)``; ``value`` is only meaningful when done."""
        raise NotImplementedError

    @property
    def completed(self) -> bool:
        done, _ = self.test()
        return done


class CompletedRequest(RawRequest):
    """A request that completed at initiation time (buffered sends)."""

    __slots__ = ("_value",)

    def __init__(self, value: Any = None):
        self._value = value

    def wait(self) -> Any:
        return self._value

    def test(self) -> tuple[bool, Any]:
        return True, self._value


class SyncSendRequest(RawRequest):
    """Request for ``issend``: completes once the receiver matched the message."""

    def __init__(self, env: Envelope, clock: Clock, deadline: float = 120.0):
        assert env.sync_event is not None
        self._env = env
        self._clock = clock
        self._deadline = deadline
        self._done = False

    def wait(self) -> None:
        waited = 0.0
        step = 0.05
        while not self._env.sync_event.wait(timeout=step):
            waited += step
            if waited >= self._deadline:
                raise RawDeadlockError("issend never matched a receive")
        self._finish()

    def test(self) -> tuple[bool, Any]:
        if self._env.sync_event.is_set():
            self._finish()
            return True, None
        return False, None

    def _finish(self) -> None:
        if not self._done:
            self._clock.wait_until(self._env.match_clock)
            self._done = True


class RecvRequest(RawRequest):
    """Request for ``irecv``."""

    def __init__(self, mailbox: Mailbox, pr: PendingRecv, clock: Clock):
        self._mailbox = mailbox
        self._pr = pr
        self._clock = clock
        self._result: Optional[tuple[Any, Status]] = None

    def wait(self) -> tuple[Any, Status]:
        if self._result is None:
            env = self._mailbox.wait(self._pr)
            self._result = self._consume(env)
        return self._result

    def test(self) -> tuple[bool, Any]:
        if self._result is not None:
            return True, self._result
        env = self._mailbox.test(self._pr)
        if env is None:
            return False, None
        self._result = self._consume(env)
        return True, self._result

    def cancel(self) -> None:
        """Cancel the posted receive (analog of ``MPI_Cancel``)."""
        self._mailbox.cancel(self._pr)

    def _consume(self, env: Envelope) -> tuple[Any, Status]:
        self._clock.wait_until(env.arrival_time)
        self._clock.charge_overhead()
        return env.payload, Status(source=env.source, tag=env.tag, nbytes=env.nbytes)


class CounterBarrierRequest(RawRequest):
    """Request for ``ibarrier``, backed by a machine-level arrival counter."""

    def __init__(self, barrier: "ArrivalBarrier", ticket: int, clock: Clock,
                 deadline: float = 120.0):
        self._barrier = barrier
        self._ticket = ticket
        self._clock = clock
        self._deadline = deadline
        self._done = False

    def wait(self) -> None:
        self._barrier.wait_complete(self._ticket, self._deadline)
        self._finish()

    def test(self) -> tuple[bool, Any]:
        if self._done:
            return True, None
        if self._barrier.is_complete(self._ticket):
            self._finish()
            return True, None
        return False, None

    def _finish(self) -> None:
        if not self._done:
            self._clock.wait_until(self._barrier.completion_time(self._ticket))
            self._clock.charge_overhead()
            self._done = True


class ArrivalBarrier:
    """Shared state for non-blocking barriers on one communicator.

    Each barrier *epoch* completes when all ``size`` members have arrived.
    Completion time in virtual time is the latest arrival clock plus a
    logarithmic dissemination term.
    """

    def __init__(self, size: int, alpha: float):
        self._size = size
        self._alpha = alpha
        self._cond = threading.Condition()
        self._arrivals: dict[int, int] = {}
        self._max_clock: dict[int, float] = {}
        self._complete_time: dict[int, float] = {}

    def arrive(self, epoch: int, clock_now: float) -> int:
        """Record arrival in ``epoch``; returns the epoch as the wait ticket."""
        with self._cond:
            n = self._arrivals.get(epoch, 0) + 1
            self._arrivals[epoch] = n
            self._max_clock[epoch] = max(self._max_clock.get(epoch, 0.0), clock_now)
            if n == self._size:
                rounds = max((self._size - 1).bit_length(), 1)
                self._complete_time[epoch] = (
                    self._max_clock[epoch] + rounds * self._alpha
                )
                self._cond.notify_all()
            return epoch

    def is_complete(self, epoch: int) -> bool:
        with self._cond:
            return epoch in self._complete_time

    def completion_time(self, epoch: int) -> float:
        with self._cond:
            return self._complete_time[epoch]

    def wait_complete(self, epoch: int, deadline: float) -> None:
        waited = 0.0
        step = 0.05
        with self._cond:
            while epoch not in self._complete_time:
                if not self._cond.wait(timeout=step):
                    waited += step
                    if waited >= deadline:
                        raise RawDeadlockError("ibarrier never completed")


def waitall(requests: Sequence[RawRequest]) -> list[Any]:
    """Complete all requests, returning their values in order (``MPI_Waitall``)."""
    return [r.wait() for r in requests]


def testall(requests: Sequence[RawRequest]) -> tuple[bool, Optional[list[Any]]]:
    """``MPI_Testall``: all-or-nothing completion check."""
    results = []
    for r in requests:
        done, value = r.test()
        if not done:
            return False, None
        results.append(value)
    return True, results


def waitany(requests: Sequence[RawRequest], poll_interval: float = 0.001,
            deadline: float = 120.0) -> tuple[int, Any]:
    """Complete one request, returning ``(index, value)`` (``MPI_Waitany``)."""
    import time

    waited = 0.0
    while True:
        for i, r in enumerate(requests):
            done, value = r.test()
            if done:
                return i, value
        time.sleep(poll_interval)
        waited += poll_interval
        if waited >= deadline:
            raise RawDeadlockError("waitany exceeded the deadlock deadline")

"""Raw non-blocking requests (analog of ``MPI_Request``).

These are the *unsafe* requests the C API hands out: they do not protect the
buffers involved.  The KaMPIng layer (:mod:`repro.core.nonblocking`) wraps
them into ownership-tracking non-blocking results.
"""

from __future__ import annotations

import threading
from typing import Any, Optional, Sequence

from repro.mpi.costmodel import Clock
from repro.mpi.errors import RawDeadlockError, RawUsageError
from repro.mpi.p2p import Envelope, Mailbox, PendingRecv, Status
from repro.mpi.waiting import Backoff


class RawRequest:
    """Base class for raw requests."""

    def wait(self) -> Any:
        raise NotImplementedError

    def test(self) -> tuple[bool, Any]:
        """Return ``(done, value)``; ``value`` is only meaningful when done."""
        raise NotImplementedError

    @property
    def completed(self) -> bool:
        done, _ = self.test()
        return done

    # -- MPIsan hooks (side-effect free; see repro.mpi.sanitizer) ----------

    def audit_state(self) -> str:
        """Lifecycle state for the resource auditor, observed without driving
        progress: ``"completed"``, ``"cancelled"``, ``"pending"``, or
        ``"unmatched"`` (synchronous sends no receive ever matched)."""
        return "completed"

    def audit_pending_recvs(self) -> tuple[PendingRecv, ...]:
        """Posted receives owned by this request (so the auditor attributes
        them to the request instead of reporting them twice)."""
        return ()


class CompletedRequest(RawRequest):
    """A request that completed at initiation time (buffered sends)."""

    __slots__ = ("_value",)

    def __init__(self, value: Any = None):
        self._value = value

    def wait(self) -> Any:
        return self._value

    def test(self) -> tuple[bool, Any]:
        return True, self._value


class SyncSendRequest(RawRequest):
    """Request for ``issend``: completes once the receiver matched the message."""

    def __init__(self, env: Envelope, clock: Clock, deadline: float = 120.0,
                 fuzz=None):
        assert env.sync_event is not None
        self._env = env
        self._clock = clock
        self._deadline = deadline
        self._fuzz = fuzz
        self._done = False

    def wait(self) -> None:
        backoff = Backoff(self._deadline, fuzz=self._fuzz)
        while not self._env.sync_event.wait(timeout=backoff.next_timeout()):
            if backoff.expired:
                raise RawDeadlockError("issend never matched a receive")
        self._finish()

    def test(self) -> tuple[bool, Any]:
        if self._env.sync_event.is_set():
            self._finish()
            return True, None
        return False, None

    def _finish(self) -> None:
        if not self._done:
            self._clock.wait_until(self._env.match_clock)
            self._done = True

    def audit_state(self) -> str:
        if self._done:
            return "completed"
        if self._env.sync_event.is_set():
            return "pending"  # matched, but the sender never waited/tested
        return "unmatched"


class RecvRequest(RawRequest):
    """Request for ``irecv``."""

    def __init__(self, mailbox: Mailbox, pr: PendingRecv, clock: Clock):
        self._mailbox = mailbox
        self._pr = pr
        self._clock = clock
        self._result: Optional[tuple[Any, Status]] = None
        self._cancelled = False

    def wait(self) -> tuple[Any, Status]:
        if self._result is None:
            if self._cancelled:
                raise RawUsageError("wait() on a cancelled receive")
            env = self._mailbox.wait(self._pr)
            self._result = self._consume(env)
        return self._result

    def test(self) -> tuple[bool, Any]:
        if self._result is not None:
            return True, self._result
        if self._cancelled:
            # a successfully cancelled request is complete with no value
            return True, None
        env = self._mailbox.test(self._pr)
        if env is None:
            return False, None
        self._result = self._consume(env)
        return True, self._result

    def cancel(self) -> bool:
        """Cancel the posted receive (analog of ``MPI_Cancel``).

        Returns ``True`` when the cancellation took effect.  Returns
        ``False`` when the receive already matched an envelope — per MPI
        semantics a matched receive must complete, so the caller still has
        to ``wait()``/``test()`` to consume the message (which would
        otherwise be silently dropped).
        """
        if self._result is not None or self._cancelled:
            return self._cancelled
        if not self._mailbox.cancel(self._pr):
            return False
        self._cancelled = True
        return True

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def _consume(self, env: Envelope) -> tuple[Any, Status]:
        self._clock.wait_until(env.arrival_time)
        self._clock.charge_overhead()
        return env.payload, Status(source=env.source, tag=env.tag, nbytes=env.nbytes)

    def audit_state(self) -> str:
        if self._result is not None:
            return "completed"
        if self._cancelled:
            return "cancelled"
        return "pending"

    def audit_pending_recvs(self) -> tuple[PendingRecv, ...]:
        return (self._pr,)


class CounterBarrierRequest(RawRequest):
    """Request for ``ibarrier``, backed by a machine-level arrival counter."""

    def __init__(self, barrier: "ArrivalBarrier", ticket: int, clock: Clock,
                 deadline: float = 120.0, fuzz=None):
        self._barrier = barrier
        self._ticket = ticket
        self._clock = clock
        self._deadline = deadline
        self._fuzz = fuzz
        self._done = False

    def wait(self) -> None:
        self._barrier.wait_complete(self._ticket, self._deadline,
                                    fuzz=self._fuzz)
        self._finish()

    def test(self) -> tuple[bool, Any]:
        if self._done:
            return True, None
        if self._barrier.is_complete(self._ticket):
            self._finish()
            return True, None
        return False, None

    def _finish(self) -> None:
        if not self._done:
            self._clock.wait_until(self._barrier.completion_time(self._ticket))
            self._clock.charge_overhead()
            self._done = True

    def audit_state(self) -> str:
        # a fully-arrived barrier holds no per-rank resources even if this
        # rank never waited; only a still-incomplete epoch is a leak
        if self._done or self._barrier.is_complete(self._ticket):
            return "completed"
        return "pending"


class ArrivalBarrier:
    """Shared state for non-blocking barriers on one communicator.

    Each barrier *epoch* completes when all ``size`` members have arrived.
    Completion time in virtual time is the latest arrival clock plus a
    logarithmic dissemination term.
    """

    def __init__(self, size: int, alpha: float):
        self._size = size
        self._alpha = alpha
        self._cond = threading.Condition()
        self._arrivals: dict[int, int] = {}
        self._max_clock: dict[int, float] = {}
        self._complete_time: dict[int, float] = {}

    def arrive(self, epoch: int, clock_now: float) -> int:
        """Record arrival in ``epoch``; returns the epoch as the wait ticket."""
        with self._cond:
            n = self._arrivals.get(epoch, 0) + 1
            self._arrivals[epoch] = n
            self._max_clock[epoch] = max(self._max_clock.get(epoch, 0.0), clock_now)
            if n == self._size:
                rounds = max((self._size - 1).bit_length(), 1)
                self._complete_time[epoch] = (
                    self._max_clock[epoch] + rounds * self._alpha
                )
                self._cond.notify_all()
            return epoch

    def is_complete(self, epoch: int) -> bool:
        with self._cond:
            return epoch in self._complete_time

    def completion_time(self, epoch: int) -> float:
        with self._cond:
            return self._complete_time[epoch]

    def wait_complete(self, epoch: int, deadline: float, fuzz=None) -> None:
        backoff = Backoff(deadline, fuzz=fuzz)
        with self._cond:
            while epoch not in self._complete_time:
                self._cond.wait(timeout=backoff.next_timeout())
                if epoch not in self._complete_time and backoff.expired:
                    raise RawDeadlockError("ibarrier never completed")


def waitall(requests: Sequence[RawRequest]) -> list[Any]:
    """Complete all requests, returning their values in order (``MPI_Waitall``)."""
    return [r.wait() for r in requests]


def testall(requests: Sequence[RawRequest]) -> tuple[bool, Optional[list[Any]]]:
    """``MPI_Testall``: all-or-nothing completion check."""
    results = []
    for r in requests:
        done, value = r.test()
        if not done:
            return False, None
        results.append(value)
    return True, results


def waitany(requests: Sequence[RawRequest], poll_interval: float = 0.001,
            deadline: float = 120.0, fuzz=None) -> tuple[int, Any]:
    """Complete one request, returning ``(index, value)`` (``MPI_Waitany``).

    ``test()`` drives progress (progress-on-test semantics), so this stays a
    poll loop — but with capped exponential backoff and the deadline
    accounted on real elapsed time.  The backoff cap is kept small: the
    polled requests may be state machines that only advance when tested.
    """
    import time

    backoff = Backoff(deadline, initial=poll_interval, cap=0.005, fuzz=fuzz)
    while True:
        for i, r in enumerate(requests):
            done, value = r.test()
            if done:
                return i, value
        if backoff.expired:
            raise RawDeadlockError("waitany exceeded the deadlock deadline")
        time.sleep(backoff.next_timeout())

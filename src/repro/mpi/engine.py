"""Per-call collective algorithm selection (the analog of MPICH CVARs /
Open MPI ``coll_tuned`` decision tables).

A :class:`CollectiveEngine` is attached to a :class:`~repro.mpi.machine.
Machine` and consulted once per collective call.  Selection precedence:

1. **Forced** algorithm: constructor ``overrides={'bcast': 'linear'}``, then
   ``REPRO_COLL_<OP>=<algo>`` environment variables (e.g.
   ``REPRO_COLL_ALLGATHER=ring``).
2. **Per-communicator tuning table**: size-bucketed rules installed with
   :meth:`tune` (what ``Communicator.use_algorithms`` writes), or with
   :meth:`install_tuning` which also records *provenance* — ``"tuned"`` for
   hand-installed rules, ``"learned"`` for tables fitted by
   :mod:`repro.mpi.autotune`.  :meth:`explain` returns the winning algorithm
   together with its source tier as a :class:`Decision`.
3. **Policy**: ``"costmodel"`` picks the argmin of the registered α-β cost
   formulas at the call's ``(p, nbytes)``; ``"default"`` (the default) uses
   the static seed algorithms.  ``REPRO_COLL_POLICY`` overrides the default.

The default policy is deliberately *not* the live argmin: the seed's
defaults are the frozen decision table this repo's golden traces and perf
cross-validation are pinned to, while the argmin legitimately disagrees with
them on a contention-free α-β model (e.g. spread-out alltoallv always beats
pairwise by ~(p−2)·α).  Opting in via ``REPRO_COLL_POLICY=costmodel`` turns
the crossover analysis of the paper's §V into actual behavior.

Selection must be SPMD-consistent: every rank of one call must reach the
same decision.  All inputs here are symmetric — ``p``, the tuning table, the
environment (one process), and ``nbytes`` by each collective's hint
convention (rooted scatter-side ops always pass 0 because only the root
knows the payload; symmetric ops pass locally-known sizes that MPI's
matching-count semantics make equal everywhere).  The one sanctioned
exception: alltoall(v)'s pairwise and spread schedules exchange identical
message sets with explicit-source receives, so even a divergent pick would
match correctly.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Hashable, Mapping, Optional, Sequence

from repro.mpi import algorithms as _registry
from repro.mpi.algorithms import Algorithm
from repro.mpi.constants import WORLD_ID
from repro.mpi.costmodel import CostModel
from repro.mpi.errors import RawUsageError

ENV_PREFIX = "REPRO_COLL_"
ENV_POLICY = "REPRO_COLL_POLICY"

_POLICIES = ("default", "costmodel")

#: a tuning rule: apply ``algorithm`` when ``nbytes <= max_bytes``
#: (inclusive: a call whose hint is exactly ``max_bytes`` takes this rule;
#: ``max_bytes=None`` matches any size).  Rule lists are canonicalized on
#: install — sorted ascending by threshold with the ``None`` catch-all last —
#: so after :meth:`CollectiveEngine.check_rules` each rule covers the
#: half-open bucket ``(previous max_bytes, max_bytes]``.
TuningRule = tuple[Optional[int], str]

#: where a resolution came from, in precedence order
DECISION_SOURCES = ("forced", "scoped", "learned", "tuned", "costmodel", "default")


@dataclass(frozen=True)
class Decision:
    """Provenance of one algorithm resolution (see :meth:`CollectiveEngine.
    explain`).

    ``source`` is one of :data:`DECISION_SOURCES`; ``rule`` is the matched
    :data:`TuningRule` when the decision came from a scoped or installed
    rule list, else ``None``."""

    op: str
    algorithm: str
    source: str
    p: int
    nbytes: int
    comm_id: Hashable = None
    rule: Optional[TuningRule] = None


def forced_from_env(env: Mapping[str, str]) -> dict[str, str]:
    """Parse ``REPRO_COLL_<OP>=<algo>`` overrides out of an environment."""
    forced: dict[str, str] = {}
    for key, value in env.items():
        if not key.startswith(ENV_PREFIX) or key == ENV_POLICY:
            continue
        op = key[len(ENV_PREFIX):].lower()
        if op not in _registry.collectives():
            raise RawUsageError(
                f"{key}: unknown collective {op!r}; known: "
                f"{', '.join(_registry.collectives())}"
            )
        forced[op] = value
    return forced


class CollectiveEngine:
    """Resolves (collective, p, nbytes, communicator) → :class:`Algorithm`."""

    def __init__(self, cost_model: Optional[CostModel] = None, *,
                 policy: Optional[str] = None,
                 overrides: Optional[Mapping[str, str]] = None,
                 env: Optional[Mapping[str, str]] = None):
        if env is None:
            env = os.environ
        self.cost_model = cost_model if cost_model is not None else CostModel()
        if policy is None:
            policy = env.get(ENV_POLICY, "default")
        if policy not in _POLICIES:
            raise RawUsageError(
                f"unknown selection policy {policy!r}; expected one of {_POLICIES}"
            )
        self.policy = policy
        forced = forced_from_env(env)
        if overrides:
            forced.update(overrides)
        # Resolve eagerly so typos fail at construction, not mid-run.
        self._forced: dict[str, Algorithm] = {
            op: _registry.get(op, name) for op, name in forced.items()
        }
        self._tuning: dict[tuple[Hashable, str], tuple[TuningRule, ...]] = {}
        self._tuning_source: dict[tuple[Hashable, str], str] = {}
        #: when True, every :meth:`resolve` appends a :class:`Decision` to
        #: :attr:`decisions` (observation aid; off by default to keep the
        #: hot path allocation-free)
        self.record_decisions = False
        self.decisions: list[Decision] = []
        #: observer called as ``fault_hook(op, algorithm_name)`` on every
        #: resolution; a :class:`~repro.mpi.faultinject.FaultCampaign` installs
        #: itself here so mid-collective kill rules can target one schedule
        self.fault_hook = None

    # -- tuning table --------------------------------------------------------

    def check_rules(self, op: str, selection) -> tuple[TuningRule, ...]:
        """Normalize an algorithm name or rules list into canonical rules.

        ``selection`` is either a plain algorithm name or a sequence of
        ``(max_bytes | None, name)`` pairs; every name is resolved against
        the registry so typos fail here, not mid-collective.

        Canonicalization fixes the historical foot-gun where overlapping or
        unsorted ``max_bytes`` ranges silently resolved first-match (an
        out-of-order catch-all shadowed every later bucket): rules are
        sorted ascending by threshold with the ``None`` catch-all last, and
        duplicate thresholds — two rules that would cover the *same* bucket,
        one dead — are rejected.  Thresholds are inclusive upper bounds
        (``nbytes <= max_bytes``), so canonical rule *i* covers the bucket
        ``(max_bytes[i-1], max_bytes[i]]``."""
        if isinstance(selection, str):
            rules: Sequence[TuningRule] = [(None, selection)]
        else:
            rules = list(selection)
        if not rules:
            raise RawUsageError(f"{op}: empty tuning-rule list")
        checked = []
        for max_bytes, name in rules:
            _registry.get(op, name)  # validate eagerly
            if max_bytes is not None:
                if not isinstance(max_bytes, int) or isinstance(max_bytes, bool):
                    raise RawUsageError(
                        f"{op}: tuning-rule max_bytes must be int or None, "
                        f"got {max_bytes!r}")
                if max_bytes < 0:
                    raise RawUsageError(
                        f"{op}: tuning-rule max_bytes must be >= 0, "
                        f"got {max_bytes}")
            checked.append((max_bytes, name))
        checked.sort(key=lambda r: (r[0] is None, r[0] if r[0] is not None else 0))
        for prev, cur in zip(checked, checked[1:]):
            if prev[0] == cur[0]:
                what = "catch-all (None)" if cur[0] is None else f"max_bytes={cur[0]}"
                raise RawUsageError(
                    f"{op}: overlapping tuning rules — duplicate {what} "
                    f"({prev[1]!r} shadows {cur[1]!r})")
        return tuple(checked)

    def tune(self, comm_id: Hashable, op: str, algorithm: Optional[str] = None,
             rules: Optional[Sequence[TuningRule]] = None) -> None:
        """Install a per-communicator rule: a fixed ``algorithm``, or a
        size-bucketed ``rules`` list ``[(max_bytes|None, name), ...]`` applied
        first-match by the call's ``nbytes`` hint.

        The table is engine-wide shared state: install rules before a run
        (or from a single controlling thread while no collective is in
        flight), never from inside rank code mid-run — a rank observing the
        table mid-mutation would diverge from its peers.  Rank code wants
        :meth:`Communicator.use_algorithms <repro.core.communicator.
        Communicator.use_algorithms>`, whose rules are rank-local."""
        if (algorithm is None) == (rules is None):
            raise RawUsageError("tune() takes exactly one of algorithm/rules")
        selection = algorithm if algorithm is not None else rules
        self.install_tuning(comm_id, op, selection)

    def install_tuning(self, comm_id: Hashable, op: str, selection, *,
                       source: str = "tuned") -> tuple[TuningRule, ...]:
        """Validate, canonicalize, and install tuning rules with provenance.

        ``source`` tags where the table entry came from — ``"tuned"`` for
        hand-installed rules (:meth:`tune`), ``"learned"`` for rules fitted
        by :class:`~repro.mpi.autotune.AutoTuner` — and is surfaced by
        :meth:`explain` / :attr:`decisions`.  Returns the canonical rules."""
        if source not in DECISION_SOURCES:
            raise RawUsageError(
                f"unknown tuning source {source!r}; expected one of "
                f"{DECISION_SOURCES}")
        rules = self.check_rules(op, selection)
        self._tuning[(comm_id, op)] = rules
        self._tuning_source[(comm_id, op)] = source
        return rules

    def rules(self, comm_id: Hashable, op: str) -> Optional[tuple[TuningRule, ...]]:
        """Currently installed tuning rules for ``(comm_id, op)``, or None."""
        return self._tuning.get((comm_id, op))

    def untune(self, comm_id: Hashable, op: Optional[str] = None) -> None:
        """Remove tuning rules for one op (or all ops) of a communicator."""
        if op is not None:
            self._tuning.pop((comm_id, op), None)
            self._tuning_source.pop((comm_id, op), None)
            return
        for key in [k for k in self._tuning if k[0] == comm_id]:
            del self._tuning[key]
            self._tuning_source.pop(key, None)

    # -- selection -----------------------------------------------------------

    def size_sensitive(self, op: str, comm_id: Hashable = None, *,
                       scoped: Optional[Sequence[TuningRule]] = None) -> bool:
        """Whether resolving ``op`` needs an ``nbytes`` hint.

        Kept cheap and conservative so the pure-default hot path never sizes
        payloads (the zero-overhead principle: don't measure what no policy
        will look at).  ``scoped`` is the caller's rank-local rule list, if
        any (it shadows the engine-wide table)."""
        if op in self._forced:
            return False
        rules = scoped if scoped is not None else self._tuning.get((comm_id, op))
        if rules is not None:
            return any(max_bytes is not None for max_bytes, _ in rules)
        return self.policy == "costmodel"

    def resolve(self, op: str, *, p: int, nbytes: int = 0,
                comm_id: Hashable = None,
                scoped: Optional[Sequence[TuningRule]] = None) -> Algorithm:
        algo, source, rule = self._decide(op, p=p, nbytes=nbytes,
                                          comm_id=comm_id, scoped=scoped)
        if self.record_decisions:
            self.decisions.append(Decision(
                op=op, algorithm=algo.name, source=source, p=p,
                nbytes=nbytes, comm_id=comm_id, rule=rule))
        if self.fault_hook is not None:
            self.fault_hook(op, algo.name)
        return algo

    def peek(self, op: str, *, p: int, nbytes: int = 0,
             comm_id: Hashable = None,
             scoped: Optional[Sequence[TuningRule]] = None) -> Algorithm:
        """Answer "what would :meth:`resolve` pick?" without side effects.

        Observation-only: no ``fault_hook`` firing or decision recording, so
        fault campaigns counting mid-collective rounds never see phantom
        resolutions.  Used by the communication-plan IR to reason about
        recorded schedules."""
        return self._decide(op, p=p, nbytes=nbytes, comm_id=comm_id,
                            scoped=scoped)[0]

    def explain(self, op: str, *, p: int, nbytes: int = 0,
                comm_id: Hashable = WORLD_ID,
                scoped: Optional[Sequence[TuningRule]] = None) -> Decision:
        """Resolve like :meth:`peek`, but return the full :class:`Decision`
        — which algorithm won, from which precedence tier (``source``), and
        which tuning rule matched, if any.

        Unlike the hot-path methods (which receive the communicator id of
        the actual call), ``comm_id`` defaults to :data:`WORLD_ID` — runs
        execute on the world communicator, so that is the tuning table a
        user asking "what would this engine pick?" means; pass
        ``comm_id=None`` to inspect the table-free decision."""
        algo, source, rule = self._decide(op, p=p, nbytes=nbytes,
                                          comm_id=comm_id, scoped=scoped)
        return Decision(op=op, algorithm=algo.name, source=source, p=p,
                        nbytes=nbytes, comm_id=comm_id, rule=rule)

    def _decide(self, op: str, *, p: int, nbytes: int,
                comm_id: Hashable,
                scoped: Optional[Sequence[TuningRule]],
                ) -> tuple[Algorithm, str, Optional[TuningRule]]:
        forced = self._forced.get(op)
        if forced is not None:
            return forced, "forced", None
        if scoped is not None:
            rules, source = scoped, "scoped"
        else:
            rules = self._tuning.get((comm_id, op))
            source = self._tuning_source.get((comm_id, op), "tuned")
        if rules is not None:
            for max_bytes, name in rules:
                if max_bytes is None or nbytes <= max_bytes:
                    return _registry.get(op, name), source, (max_bytes, name)
        if self.policy == "costmodel":
            return self._argmin(op, p, nbytes), "costmodel", None
        return _registry.default(op), "default", None

    def _argmin(self, op: str, p: int, nbytes: int) -> Algorithm:
        # Iterate default-first with a strict '<' so ties keep the seed
        # algorithm (and the seed's exact traces).
        best = None
        best_cost = float("inf")
        for algo in _registry.algorithms(op):
            if algo.cost is None:
                continue
            cost = algo.cost(p, nbytes, self.cost_model)
            if cost < best_cost:
                best, best_cost = algo, cost
        return best if best is not None else _registry.default(op)

    def describe(self) -> dict:
        """Snapshot of the engine's configuration (for debugging/docs)."""
        return {
            "policy": self.policy,
            "forced": {op: a.name for op, a in self._forced.items()},
            "tuning": {
                f"{comm_id}/{op}": list(rules)
                for (comm_id, op), rules in self._tuning.items()
            },
            "tuning_sources": {
                f"{comm_id}/{op}": source
                for (comm_id, op), source in self._tuning_source.items()
            },
        }

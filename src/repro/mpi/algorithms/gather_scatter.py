"""Gather / scatter family algorithms."""

from __future__ import annotations

from typing import Any, Optional, Sequence

import numpy as np

from repro.mpi.algorithms import collective_algorithm
from repro.mpi.algorithms.common import (
    CODE_GATHER,
    CODE_GATHERV,
    CODE_SCATTER,
    CODE_SCATTERV,
    _tree_depth,
    _validate_root,
)
from repro.mpi.datatypes import ensure_1d_array
from repro.mpi.errors import RawTruncationError, RawUsageError


def _cost_gather_binomial(p, nbytes, cm):
    # tree-depth latency; the root still absorbs (p−1)·n bytes in total.
    return _tree_depth(p) * (cm.alpha + 2 * cm.overhead) + (p - 1) * nbytes * cm.beta


def _cost_gather_linear(p, nbytes, cm):
    if p == 1:
        return 0.0
    # Root posts p−1 receives at `overhead` each; the slowest arrival
    # carries one α plus its block.
    return cm.alpha + nbytes * cm.beta + p * cm.overhead


def _cost_scatter_linear(p, nbytes, cm):
    if p == 1:
        return 0.0
    return (p - 1) * cm.overhead + cm.alpha + nbytes * cm.beta + cm.overhead


def _cost_scatter_binomial(p, nbytes, cm):
    if p == 1:
        return 0.0
    # Each tree level forwards half the remaining blocks: tree-depth latency,
    # but the root's first send already carries ~p/2 blocks.
    return _tree_depth(p) * (cm.alpha + 2 * cm.overhead) + p * nbytes * cm.beta


@collective_algorithm("gather", "binomial", default=True,
                      cost=_cost_gather_binomial,
                      description="binomial combining tree of (virtual rank, "
                                  "payload) item lists")
def gather_binomial(comm, payload: Any, root: int) -> Optional[list]:
    _validate_root(comm, root)
    p, r = comm.size, comm.rank
    tag = comm._next_coll_tag(CODE_GATHER)
    vr = (r - root) % p
    items: list[tuple[int, Any]] = [(vr, payload)]
    mask = 1
    while mask < p:
        if vr & mask == 0:
            src_vr = vr | mask
            if src_vr < p:
                other, _ = comm._recv((src_vr + root) % p, tag)
                items.extend(other)
        else:
            comm._send(items, ((vr & ~mask) + root) % p, tag)
            return None
        mask <<= 1
    out: list = [None] * p
    for v, pl in items:
        out[(v + root) % p] = pl
    return out


@collective_algorithm("gather", "linear", cost=_cost_gather_linear,
                      description="every rank sends its payload directly to "
                                  "the root")
def gather_linear(comm, payload: Any, root: int) -> Optional[list]:
    _validate_root(comm, root)
    p, r = comm.size, comm.rank
    tag = comm._next_coll_tag(CODE_GATHER)
    if r != root:
        comm._send(payload, root, tag)
        return None
    out: list = [None] * p
    out[r] = payload
    for src in range(p):
        if src != r:
            out[src], _ = comm._recv(src, tag)
    return out


@collective_algorithm("gatherv", "linear", default=True,
                      cost=_cost_gather_linear,
                      description="every rank sends its block directly to the "
                                  "root, which checks recvcounts")
def gatherv_linear(comm, sendbuf: np.ndarray,
                   recvcounts: Optional[Sequence[int]],
                   root: int) -> Optional[np.ndarray]:
    _validate_root(comm, root)
    p, r = comm.size, comm.rank
    tag = comm._next_coll_tag(CODE_GATHERV)
    sendbuf = ensure_1d_array(sendbuf)
    if r != root:
        comm._send(sendbuf, root, tag)
        return None
    if recvcounts is None:
        raise RawUsageError("gatherv requires recvcounts at the root")
    if len(recvcounts) != p:
        raise RawUsageError(f"recvcounts must have length {p}")
    parts: list[Optional[np.ndarray]] = [None] * p
    parts[r] = sendbuf
    for src in range(p):
        if src == r:
            continue
        block, _ = comm._recv(src, tag)
        parts[src] = ensure_1d_array(block)
    for src, block in enumerate(parts):
        if len(block) > recvcounts[src]:
            raise RawTruncationError(
                f"gatherv: message from rank {src} has {len(block)} items, "
                f"recvcounts allows {recvcounts[src]}"
            )
    return np.concatenate(parts) if parts else np.empty(0)


@collective_algorithm("scatter", "linear", default=True,
                      cost=_cost_scatter_linear,
                      description="root sends each rank its payload directly")
def scatter_linear(comm, payloads: Optional[Sequence[Any]], root: int) -> Any:
    _validate_root(comm, root)
    p, r = comm.size, comm.rank
    tag = comm._next_coll_tag(CODE_SCATTER)
    if r == root:
        if payloads is None or len(payloads) != p:
            raise RawUsageError(f"scatter root must supply exactly {p} payloads")
        for dst in range(p):
            if dst != root:
                comm._send(payloads[dst], dst, tag)
        return payloads[root]
    payload, _ = comm._recv(root, tag)
    return payload


@collective_algorithm("scatter", "binomial", cost=_cost_scatter_binomial,
                      description="binomial tree forwarding subtree slices: "
                                  "log-depth latency, Θ(p·n) root bandwidth")
def scatter_binomial(comm, payloads: Optional[Sequence[Any]], root: int) -> Any:
    _validate_root(comm, root)
    p, r = comm.size, comm.rank
    tag = comm._next_coll_tag(CODE_SCATTER)
    vr = (r - root) % p
    # `items[i]` is the payload of virtual rank vr+i; each child receives the
    # contiguous slice covering its own subtree.
    if vr == 0:
        if payloads is None or len(payloads) != p:
            raise RawUsageError(f"scatter root must supply exactly {p} payloads")
        items = [payloads[(v + root) % p] for v in range(p)]
        mask = 1
        while mask < p:
            mask <<= 1
    else:
        mask = 1
        while mask < p:
            if vr & mask:
                src = (vr - mask + root) % p
                items, _ = comm._recv(src, tag)
                break
            mask <<= 1
    mask >>= 1
    while mask > 0:
        child = vr + mask
        if child < p:
            cnt = min(mask, p - child)
            comm._send(items[mask: mask + cnt], (child + root) % p, tag)
        mask >>= 1
    return items[0]


@collective_algorithm("scatterv", "linear", default=True,
                      cost=_cost_scatter_linear,
                      description="root slices sendbuf by sendcounts and "
                                  "sends each slice directly")
def scatterv_linear(comm, sendbuf: Optional[np.ndarray],
                    sendcounts: Optional[Sequence[int]],
                    root: int) -> np.ndarray:
    _validate_root(comm, root)
    p, r = comm.size, comm.rank
    tag = comm._next_coll_tag(CODE_SCATTERV)
    if r == root:
        if sendbuf is None or sendcounts is None or len(sendcounts) != p:
            raise RawUsageError(f"scatterv root must supply sendbuf and {p} sendcounts")
        sendbuf = ensure_1d_array(sendbuf)
        displs = np.concatenate(([0], np.cumsum(sendcounts)[:-1])).astype(int)
        if displs[-1] + sendcounts[-1] > len(sendbuf):
            raise RawUsageError("scatterv sendcounts exceed sendbuf length")
        for dst in range(p):
            if dst != root:
                comm._send(sendbuf[displs[dst]: displs[dst] + sendcounts[dst]], dst, tag)
        return sendbuf[displs[root]: displs[root] + sendcounts[root]].copy()
    block, _ = comm._recv(root, tag)
    return ensure_1d_array(block)

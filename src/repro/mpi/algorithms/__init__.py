"""Registry of collective algorithm implementations.

Real MPI implementations ship several algorithms per collective and pick one
per call from message size, communicator size, and topology (MPICH's
``MPIR_CVAR_*``, Open MPI's ``coll_tuned_*`` decision tables).  The seed
runtime hard-coded exactly one algorithm per collective; this package turns
that into a first-class, tunable layer:

- every implementation registers itself with :func:`collective_algorithm`,
  carrying a **closed-form α-β cost formula** of what it does on the
  simulator (cross-validated in ``tests/perf/test_algorithm_costs.py``);
- :class:`~repro.mpi.engine.CollectiveEngine` resolves ``(collective, p,
  nbytes, comm)`` to one registered :class:`Algorithm` per call;
- the per-collective modules (``bcast``, ``allgather``, ``reduce``, …) hold
  the implementations, all written against the uncounted ``_send``/``_recv``
  primitives of :class:`~repro.mpi.context.RawComm` exactly like the seed's
  free functions, so PMPI counters still see one call per collective.

Default algorithms (marked ``default=True``) are the seed's originals, so an
engine with the default policy reproduces the seed's traces bit-for-bit.

Implementations must be **pattern-deterministic**: every rank derives the
same send/receive schedule from ``(p, rank, root)`` plus symmetric arguments,
never from payload *content*, so that all ranks of one collective call can
safely run the same registered algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.mpi.errors import RawUsageError

#: cost formula signature: ``(p, nbytes, cost_model) -> seconds``, where
#: ``nbytes`` follows the per-collective hint convention documented in
#: :meth:`repro.mpi.engine.CollectiveEngine.resolve`.
CostFn = Callable[[int, int, object], float]


@dataclass(frozen=True)
class Algorithm:
    """One registered implementation of one collective."""

    collective: str
    name: str
    fn: Callable
    #: closed-form α-β cost of the simulated execution (``None`` exempts the
    #: algorithm from cost-model selection — it is then only reachable as the
    #: default or through overrides/tuning)
    cost: Optional[CostFn] = None
    description: str = ""

    def predict(self, p: int, nbytes: int, cost_model) -> float:
        if self.cost is None:
            raise RawUsageError(
                f"algorithm {self.collective}/{self.name} has no cost formula"
            )
        return self.cost(p, nbytes, cost_model)

    def fragment(self, p: int, rank: int, root: int = 0):
        """This algorithm's schedule as a static IR fragment — the per-rank
        tuple of :class:`~repro.mpi.ir.nodes.P2P` events it would issue at
        ``(p, rank, root)``.  Raises :class:`KeyError` when the schedule is
        not pattern-static (see :mod:`repro.mpi.ir.fragments`)."""
        from repro.mpi.ir.fragments import fragment

        return fragment(self.collective, self.name, p, rank, root)


_REGISTRY: dict[str, dict[str, Algorithm]] = {}
_DEFAULTS: dict[str, str] = {}


def collective_algorithm(collective: str, name: str, *, default: bool = False,
                         cost: Optional[CostFn] = None,
                         description: str = ""):
    """Decorator registering ``fn`` as one implementation of ``collective``."""

    def wrap(fn: Callable) -> Callable:
        table = _REGISTRY.setdefault(collective, {})
        if name in table:
            raise RawUsageError(
                f"algorithm {collective}/{name} registered twice"
            )
        table[name] = Algorithm(collective=collective, name=name, fn=fn,
                                cost=cost, description=description)
        if default:
            if collective in _DEFAULTS:
                raise RawUsageError(
                    f"collective {collective} has two default algorithms"
                )
            _DEFAULTS[collective] = name
        return fn

    return wrap


def collectives() -> tuple[str, ...]:
    """All collectives with registered algorithms, sorted."""
    return tuple(sorted(_REGISTRY))


def names(collective: str) -> tuple[str, ...]:
    """Registered algorithm names for one collective (default first)."""
    table = _table(collective)
    default = _DEFAULTS[collective]
    return (default,) + tuple(sorted(n for n in table if n != default))


def algorithms(collective: str) -> tuple[Algorithm, ...]:
    """Registered algorithms for one collective (default first)."""
    table = _table(collective)
    return tuple(table[n] for n in names(collective))


def get(collective: str, name: str) -> Algorithm:
    """Look up one algorithm; raises with the available names on a miss."""
    table = _table(collective)
    algo = table.get(name)
    if algo is None:
        raise RawUsageError(
            f"unknown algorithm {name!r} for {collective}; registered: "
            f"{', '.join(names(collective))}"
        )
    return algo


def default(collective: str) -> Algorithm:
    """The seed-compatible default algorithm of one collective."""
    return _table(collective)[_DEFAULTS[collective]]


def default_name(collective: str) -> str:
    _table(collective)
    return _DEFAULTS[collective]


def _table(collective: str) -> dict[str, Algorithm]:
    table = _REGISTRY.get(collective)
    if table is None:
        raise RawUsageError(
            f"unknown collective {collective!r}; registered: "
            f"{', '.join(collectives())}"
        )
    return table


# Populate the registry.  Import order is unimportant; each module only
# depends on the decorator above and on the p2p primitives.
from repro.mpi.algorithms import (  # noqa: E402  (registration imports)
    allgather as _allgather,
    alltoall as _alltoall,
    barrier as _barrier,
    bcast as _bcast,
    gather_scatter as _gather_scatter,
    neighbor as _neighbor,
    reduce as _reduce,
)
from repro.mpi.algorithms.singleton import SINGLETON  # noqa: E402

__all__ = [
    "Algorithm", "CostFn", "collective_algorithm",
    "collectives", "names", "algorithms", "get", "default", "default_name",
    "SINGLETON",
]

"""Barrier algorithms."""

from __future__ import annotations

from repro.mpi.algorithms import collective_algorithm
from repro.mpi.algorithms.common import CODE_BARRIER, _ceil_log2, _tree_depth


def _cost_dissemination(p, nbytes, cm):
    # Every rank really does send+receive in each of the ⌈log₂ p⌉ rounds.
    return _ceil_log2(p) * (cm.alpha + 2 * cm.overhead)


def _cost_tree(p, nbytes, cm):
    # gather-to-0 then broadcast-from-0, both binomial: two tree-depth sweeps.
    return 2 * _tree_depth(p) * (cm.alpha + 2 * cm.overhead)


@collective_algorithm("barrier", "dissemination", default=True,
                      cost=_cost_dissemination,
                      description="⌈log₂ p⌉ symmetric rounds; every rank "
                                  "sends and receives each round")
def barrier_dissemination(comm) -> None:
    p, r = comm.size, comm.rank
    tag = comm._next_coll_tag(CODE_BARRIER)
    if p == 1:
        return
    k = 1
    while k < p:
        comm._send(None, (r + k) % p, tag)
        comm._recv((r - k) % p, tag)
        k <<= 1


@collective_algorithm("barrier", "tree", cost=_cost_tree,
                      description="binomial gather of empty tokens to rank 0 "
                                  "followed by a binomial release broadcast")
def barrier_tree(comm) -> None:
    p, r = comm.size, comm.rank
    tag = comm._next_coll_tag(CODE_BARRIER)
    if p == 1:
        return
    # Converge: each rank collects a token per subtree, then reports upward.
    mask = 1
    while mask < p:
        if r & mask:
            comm._send(None, r & ~mask, tag)
            break
        src = r | mask
        if src < p:
            comm._recv(src, tag)
        mask <<= 1
    # Release: rank 0 exits the loop with mask ≥ p; everyone else waits for
    # the release from the parent it just reported to, then forwards it down.
    # Converge messages flow child→parent and releases parent→child, so one
    # tag cannot mismatch across the two sweeps.
    if r != 0:
        comm._recv(r & ~mask, tag)
    mask >>= 1
    while mask > 0:
        child = r + mask
        if child < p:
            comm._send(None, child, tag)
        mask >>= 1

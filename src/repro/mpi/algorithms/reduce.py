"""Reduction algorithms (reduce, allreduce, scan, exscan).

Non-commutative operators always fall back to canonical-rank-order folding:
``reduce`` gathers and folds at the root, ``allreduce`` composes reduce +
bcast — exactly the seed's behavior, independent of the selected algorithm.

``nbytes`` hint: local contribution size (symmetric across ranks by MPI's
matching-count semantics).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.mpi.algorithms import collective_algorithm
from repro.mpi.algorithms.common import (
    CODE_ALLREDUCE,
    CODE_EXSCAN,
    CODE_REDUCE,
    CODE_SCAN,
    _combine,
    _tree_depth,
    _validate_root,
)
from repro.mpi.algorithms.bcast import bcast_binomial
from repro.mpi.algorithms.gather_scatter import gather_binomial
from repro.mpi.ops import Op


def _cost_reduce_binomial(p, nbytes, cm):
    return _tree_depth(p) * (cm.alpha + nbytes * cm.beta + 2 * cm.overhead)


def _cost_reduce_linear(p, nbytes, cm):
    if p == 1:
        return 0.0
    return cm.alpha + nbytes * cm.beta + p * cm.overhead


def _cost_recursive_doubling(p, nbytes, cm):
    if p == 1:
        return 0.0
    p2 = 1 << (p.bit_length() - 1)
    rounds = p2.bit_length() - 1
    if p != p2:
        rounds += 2  # pre-fold and post-distribute for the remainder ranks
    return rounds * (cm.alpha + nbytes * cm.beta + 2 * cm.overhead)


def _cost_reduce_bcast(p, nbytes, cm):
    return 2 * _tree_depth(p) * (cm.alpha + nbytes * cm.beta + 2 * cm.overhead)


def _cost_allreduce_ring(p, nbytes, cm):
    if p == 1:
        return 0.0
    # Arrays too short to shard (fewer elements than ranks, ~8-byte words)
    # take the reduce+bcast fallback, so cost that path instead.
    if nbytes < p * 8:
        return _cost_reduce_bcast(p, nbytes, cm)
    # reduce-scatter + allgather, each p−1 rounds of chunks; array_split
    # rounds chunk sizes up to whole ⌈w/p⌉-word blocks, which matters when
    # p does not divide the element count.
    chunk = 8 * -(-nbytes // (8 * p))
    return 2 * (p - 1) * (cm.alpha + 2 * cm.overhead + chunk * cm.beta)


def _cost_scan_doubling(p, nbytes, cm):
    # ⌈log₂ p⌉ rounds, but buffered sends overlap them down to tree depth.
    return _tree_depth(p) * (cm.alpha + nbytes * cm.beta + 2 * cm.overhead)


@collective_algorithm("reduce", "binomial", default=True,
                      cost=_cost_reduce_binomial,
                      description="binomial combining tree (commutative ops); "
                                  "gather + ordered fold otherwise")
def reduce_binomial(comm, value: Any, op: Op, root: int) -> Any:
    _validate_root(comm, root)
    p, r = comm.size, comm.rank
    if not op.commutative:
        return _reduce_ordered(comm, value, op, root)
    tag = comm._next_coll_tag(CODE_REDUCE)
    vr = (r - root) % p
    acc = value
    mask = 1
    while mask < p:
        if vr & mask == 0:
            src_vr = vr | mask
            if src_vr < p:
                other, _ = comm._recv((src_vr + root) % p, tag)
                acc = _combine(op, acc, other)
        else:
            comm._send(acc, ((vr & ~mask) + root) % p, tag)
            return None
        mask <<= 1
    return acc


@collective_algorithm("reduce", "linear", cost=_cost_reduce_linear,
                      description="root receives every contribution and folds "
                                  "in rank order (valid for non-commutative "
                                  "ops too)")
def reduce_linear(comm, value: Any, op: Op, root: int) -> Any:
    _validate_root(comm, root)
    p, r = comm.size, comm.rank
    tag = comm._next_coll_tag(CODE_REDUCE)
    if r != root:
        comm._send(value, root, tag)
        return None
    items: list = [None] * p
    items[r] = value
    for src in range(p):
        if src != r:
            items[src], _ = comm._recv(src, tag)
    acc = items[0]
    for item in items[1:]:
        acc = _combine(op, acc, item)
    return acc


def _reduce_ordered(comm, value: Any, op: Op, root: int) -> Any:
    """Rank-ordered fold via binomial gather (non-commutative fallback)."""
    r = comm.rank
    items = gather_binomial(comm, value, root)
    if r != root:
        return None
    acc = items[0]
    for item in items[1:]:
        acc = _combine(op, acc, item)
    return acc


@collective_algorithm("allreduce", "recursive_doubling", default=True,
                      cost=_cost_recursive_doubling,
                      description="recursive doubling with non-power-of-two "
                                  "folding")
def allreduce_recursive_doubling(comm, value: Any, op: Op) -> Any:
    p, r = comm.size, comm.rank
    if not op.commutative:
        result = reduce_binomial(comm, value, op, 0)
        return bcast_binomial(comm, result, 0)
    tag = comm._next_coll_tag(CODE_ALLREDUCE)
    if p == 1:
        return value
    p2 = 1 << (p.bit_length() - 1)
    rem = p - p2
    acc = value
    new_rank = -1
    if r < 2 * rem:
        if r % 2 == 1:
            comm._send(acc, r - 1, tag)
        else:
            other, _ = comm._recv(r + 1, tag)
            acc = _combine(op, acc, other)
            new_rank = r // 2
    else:
        new_rank = r - rem
    if new_rank >= 0:
        mask = 1
        while mask < p2:
            partner_new = new_rank ^ mask
            partner = partner_new * 2 if partner_new < rem else partner_new + rem
            comm._send(acc, partner, tag)
            other, _ = comm._recv(partner, tag)
            acc = _combine(op, acc, other)
            mask <<= 1
    if r < 2 * rem:
        if r % 2 == 0:
            comm._send(acc, r + 1, tag)
        else:
            acc, _ = comm._recv(r - 1, tag)
    return acc


@collective_algorithm("allreduce", "reduce_bcast", cost=_cost_reduce_bcast,
                      description="binomial reduce to rank 0 followed by a "
                                  "binomial broadcast of the result")
def allreduce_reduce_bcast(comm, value: Any, op: Op) -> Any:
    result = reduce_binomial(comm, value, op, 0)
    return bcast_binomial(comm, result, 0)


@collective_algorithm("allreduce", "ring", cost=_cost_allreduce_ring,
                      description="ring reduce-scatter + ring allgather over "
                                  "p chunks; bandwidth-optimal for large 1-D "
                                  "arrays")
def allreduce_ring(comm, value: Any, op: Op) -> Any:
    p, r = comm.size, comm.rank
    # The chunked schedule needs a splittable, elementwise-combinable buffer;
    # the eligibility test uses only symmetric facts (dtype/shape must match
    # across ranks per MPI semantics), so all ranks take the same branch.
    if not (op.commutative and isinstance(value, np.ndarray)
            and value.ndim == 1 and len(value) >= p):
        return allreduce_reduce_bcast(comm, value, op)
    tag = comm._next_coll_tag(CODE_ALLREDUCE)
    if p == 1:
        return value
    chunks = [c.copy() for c in np.array_split(value, p)]
    right, left = (r + 1) % p, (r - 1) % p
    # Reduce-scatter: after p−1 steps rank r owns the full reduction of
    # chunk (r+1) mod p.
    for i in range(p - 1):
        comm._send(chunks[(r - i) % p], right, tag)
        other, _ = comm._recv(left, tag)
        idx = (r - i - 1) % p
        chunks[idx] = _combine(op, chunks[idx], other)
    # Allgather: circulate the reduced chunks.
    for i in range(p - 1):
        comm._send(chunks[(r + 1 - i) % p], right, tag)
        other, _ = comm._recv(left, tag)
        chunks[(r - i) % p] = np.asarray(other)
    return np.concatenate(chunks)


@collective_algorithm("scan", "doubling", default=True,
                      cost=_cost_scan_doubling,
                      description="Hillis–Steele inclusive prefix doubling")
def scan_doubling(comm, value: Any, op: Op) -> Any:
    p, r = comm.size, comm.rank
    tag = comm._next_coll_tag(CODE_SCAN)
    result = value
    acc = value
    mask = 1
    while mask < p:
        dst, src = r + mask, r - mask
        if dst < p:
            comm._send(acc, dst, tag)
        if src >= 0:
            other, _ = comm._recv(src, tag)
            result = _combine(op, other, result)
            acc = _combine(op, other, acc)
        mask <<= 1
    return result


@collective_algorithm("exscan", "doubling", default=True,
                      cost=_cost_scan_doubling,
                      description="Hillis–Steele exclusive prefix doubling; "
                                  "rank 0 gets the operator identity")
def exscan_doubling(comm, value: Any, op: Op) -> Any:
    p, r = comm.size, comm.rank
    tag = comm._next_coll_tag(CODE_EXSCAN)
    result: Any = None
    acc = value
    mask = 1
    while mask < p:
        dst, src = r + mask, r - mask
        if dst < p:
            comm._send(acc, dst, tag)
        if src >= 0:
            other, _ = comm._recv(src, tag)
            result = other if result is None else _combine(op, other, result)
            acc = _combine(op, other, acc)
        mask <<= 1
    if r == 0:
        if op.identity is None:
            return None
        if isinstance(value, np.ndarray):
            return np.full_like(value, op.identity)
        return type(value)(op.identity) if not isinstance(value, bool) else op.identity
    return result

"""Broadcast algorithms.

``binomial`` is the seed default; ``linear`` wins at small p in the α-β model
because the root's p−1 buffered sends each cost only ``overhead`` on the
sender clock, while the binomial tree serializes ⌈log₂ p⌉ full α+nβ hops;
``scatter_allgather`` (van de Geijn) is the textbook large-message algorithm —
it moves 2·n·(p−1)/p bytes per rank instead of n per tree level.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.mpi.algorithms import collective_algorithm
from repro.mpi.algorithms.common import CODE_BCAST, _tree_depth, _validate_root


def _cost_binomial(p, nbytes, cm):
    return _tree_depth(p) * (cm.alpha + nbytes * cm.beta + 2 * cm.overhead)


def _cost_linear(p, nbytes, cm):
    if p == 1:
        return 0.0
    # Root pays p−1 overheads; the last leaf then waits one full transfer.
    return (p - 1) * cm.overhead + cm.alpha + nbytes * cm.beta + cm.overhead


def _cost_scatter_allgather(p, nbytes, cm):
    if p == 1:
        return 0.0
    shard = nbytes / p
    scatter = (p - 1) * cm.overhead + cm.alpha + shard * cm.beta + cm.overhead
    ring = (p - 1) * (cm.alpha + 2 * cm.overhead + shard * cm.beta)
    return scatter + ring


@collective_algorithm("bcast", "binomial", default=True, cost=_cost_binomial,
                      description="binomial tree rooted at `root`: "
                                  "⌊log₂ p⌋·(α+nβ) on the critical path")
def bcast_binomial(comm, payload: Any, root: int) -> Any:
    _validate_root(comm, root)
    p, r = comm.size, comm.rank
    tag = comm._next_coll_tag(CODE_BCAST)
    if p == 1:
        return payload
    vr = (r - root) % p
    mask = 1
    while mask < p:
        if vr & mask:
            src = (vr - mask + root) % p
            payload, _ = comm._recv(src, tag)
            break
        mask <<= 1
    mask >>= 1
    while mask > 0:
        child = vr + mask
        if child < p:
            comm._send(payload, (child + root) % p, tag)
        mask >>= 1
    return payload


@collective_algorithm("bcast", "linear", cost=_cost_linear,
                      description="root sends the full payload directly to "
                                  "every other rank")
def bcast_linear(comm, payload: Any, root: int) -> Any:
    _validate_root(comm, root)
    p, r = comm.size, comm.rank
    tag = comm._next_coll_tag(CODE_BCAST)
    if p == 1:
        return payload
    if r == root:
        for dst in range(p):
            if dst != root:
                comm._send(payload, dst, tag)
        return payload
    payload, _ = comm._recv(root, tag)
    return payload


@collective_algorithm("bcast", "scatter_allgather",
                      cost=_cost_scatter_allgather,
                      description="van de Geijn: linear scatter of p shards, "
                                  "then ring allgather — 2n(p−1)/p bytes per "
                                  "rank instead of n per tree level")
def bcast_scatter_allgather(comm, payload: Any, root: int) -> Any:
    _validate_root(comm, root)
    p, r = comm.size, comm.rank
    scatter_tag = comm._next_coll_tag(CODE_BCAST)
    ring_tag = comm._next_coll_tag(CODE_BCAST)
    if p == 1:
        return payload
    vr = (r - root) % p
    # Shard: 1-D arrays split into p nearly-equal chunks; anything else ships
    # whole inside virtual rank 0's shard (the ring still pipelines it).
    if r == root:
        if isinstance(payload, np.ndarray) and payload.ndim == 1 and len(payload) >= p:
            shards = [("array", chunk) for chunk in np.array_split(payload, p)]
        else:
            shards = [("whole", payload)] + [("pad", None)] * (p - 1)
        for v in range(1, p):
            comm._send(shards[v], (v + root) % p, scatter_tag)
        mine = shards[0]
    else:
        mine, _ = comm._recv(root, scatter_tag)
    # Ring allgather of the shards, indexed by virtual rank.
    parts: list = [None] * p
    parts[vr] = mine
    cur = mine
    right, left = (r + 1) % p, (r - 1) % p
    for i in range(1, p):
        comm._send(cur, right, ring_tag)
        cur, _ = comm._recv(left, ring_tag)
        parts[(vr - i) % p] = cur
    if parts[0][0] == "whole":
        return parts[0][1]
    return np.concatenate([chunk for _, chunk in parts])

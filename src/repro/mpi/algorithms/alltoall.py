"""All-to-all family algorithms.

``pairwise`` (the seed default) runs p−1 synchronized rounds — rank r talks
to (r±i) in round i — so each round costs a full α round-trip.  ``spread``
posts *all* buffered sends up front and only then receives; on the contention-
free α-β model this removes p−2 of the p−1 latency terms.  The two schedules
exchange exactly the same (source, dest, payload) message set and receive by
explicit source, so mixed selections across ranks still match correctly.

``nbytes`` hint: total local send volume.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

import numpy as np

from repro.mpi.algorithms import collective_algorithm
from repro.mpi.algorithms.common import (
    CODE_ALLTOALL,
    CODE_ALLTOALLV,
    CODE_ALLTOALLW,
)
from repro.mpi.datatypes import ensure_1d_array
from repro.mpi.errors import RawTruncationError, RawUsageError


def _cost_pairwise(p, nbytes, cm):
    if p == 1:
        return 0.0
    per_peer = nbytes / p
    return (p - 1) * (cm.alpha + 2 * cm.overhead + per_peer * cm.beta)


def _cost_spread(p, nbytes, cm):
    if p == 1:
        return 0.0
    per_peer = nbytes / p
    # p−1 buffered send overheads up front; the last matching sender posted
    # its message ≈(p−1)·o into the round, so the final receive completes at
    # ≈p·o + α + nβ.  When transfers are instant the 2(p−1) per-call
    # overheads themselves are the critical path.
    return max(2 * (p - 1) * cm.overhead,
               p * cm.overhead + cm.alpha + per_peer * cm.beta)


def _cost_pairwise_w(p, nbytes, cm):
    if p == 1:
        return 0.0
    per_peer = nbytes / p
    return cm.dtype_alpha + (p - 1) * (
        cm.alpha + cm.dtype_alpha + 2 * cm.overhead + per_peer * cm.pack_beta
    )


@collective_algorithm("alltoall", "pairwise", default=True,
                      cost=_cost_pairwise,
                      description="p−1 rounds exchanging with ranks (r±i)")
def alltoall_pairwise(comm, payloads: Sequence[Any]) -> list:
    p, r = comm.size, comm.rank
    tag = comm._next_coll_tag(CODE_ALLTOALL)
    if len(payloads) != p:
        raise RawUsageError(f"alltoall requires exactly {p} payloads")
    out: list = [None] * p
    out[r] = payloads[r]
    for i in range(1, p):
        dst, src = (r + i) % p, (r - i) % p
        comm._send(payloads[dst], dst, tag)
        out[src], _ = comm._recv(src, tag)
    return out


@collective_algorithm("alltoall", "spread", cost=_cost_spread,
                      description="post all p−1 buffered sends, then receive "
                                  "by explicit source — one α on the critical "
                                  "path instead of p−1")
def alltoall_spread(comm, payloads: Sequence[Any]) -> list:
    p, r = comm.size, comm.rank
    tag = comm._next_coll_tag(CODE_ALLTOALL)
    if len(payloads) != p:
        raise RawUsageError(f"alltoall requires exactly {p} payloads")
    out: list = [None] * p
    out[r] = payloads[r]
    for i in range(1, p):
        dst = (r + i) % p
        comm._send(payloads[dst], dst, tag)
    for i in range(1, p):
        src = (r - i) % p
        out[src], _ = comm._recv(src, tag)
    return out


@collective_algorithm("alltoallv", "pairwise", default=True,
                      cost=_cost_pairwise,
                      description="p−1 rounds exchanging array slices with "
                                  "ranks (r±i); zero blocks still cost α")
def alltoallv_pairwise(comm, sendbuf: np.ndarray, sendcounts: Sequence[int],
                       recvcounts: Sequence[int]) -> np.ndarray:
    p, r = comm.size, comm.rank
    tag = comm._next_coll_tag(CODE_ALLTOALLV)
    sendbuf = ensure_1d_array(sendbuf)
    if len(sendcounts) != p or len(recvcounts) != p:
        raise RawUsageError(f"sendcounts/recvcounts must have length {p}")
    sdispls = np.concatenate(([0], np.cumsum(sendcounts)[:-1])).astype(int)
    if sdispls[-1] + sendcounts[-1] > len(sendbuf):
        raise RawUsageError("alltoallv sendcounts exceed sendbuf length")
    parts: list[Optional[np.ndarray]] = [None] * p
    parts[r] = sendbuf[sdispls[r]: sdispls[r] + sendcounts[r]]
    for i in range(1, p):
        dst, src = (r + i) % p, (r - i) % p
        comm._send(sendbuf[sdispls[dst]: sdispls[dst] + sendcounts[dst]], dst, tag)
        block, _ = comm._recv(src, tag)
        block = ensure_1d_array(block)
        if len(block) > recvcounts[src]:
            raise RawTruncationError(
                f"alltoallv: message from rank {src} has {len(block)} items, "
                f"recvcounts allows {recvcounts[src]}"
            )
        parts[src] = block
    return np.concatenate(parts) if p > 1 else np.asarray(parts[r]).copy()


@collective_algorithm("alltoallv", "spread", cost=_cost_spread,
                      description="post every slice up front, then receive by "
                                  "explicit source")
def alltoallv_spread(comm, sendbuf: np.ndarray, sendcounts: Sequence[int],
                     recvcounts: Sequence[int]) -> np.ndarray:
    p, r = comm.size, comm.rank
    tag = comm._next_coll_tag(CODE_ALLTOALLV)
    sendbuf = ensure_1d_array(sendbuf)
    if len(sendcounts) != p or len(recvcounts) != p:
        raise RawUsageError(f"sendcounts/recvcounts must have length {p}")
    sdispls = np.concatenate(([0], np.cumsum(sendcounts)[:-1])).astype(int)
    if sdispls[-1] + sendcounts[-1] > len(sendbuf):
        raise RawUsageError("alltoallv sendcounts exceed sendbuf length")
    parts: list[Optional[np.ndarray]] = [None] * p
    parts[r] = sendbuf[sdispls[r]: sdispls[r] + sendcounts[r]]
    for i in range(1, p):
        dst = (r + i) % p
        comm._send(sendbuf[sdispls[dst]: sdispls[dst] + sendcounts[dst]], dst, tag)
    for i in range(1, p):
        src = (r - i) % p
        block, _ = comm._recv(src, tag)
        block = ensure_1d_array(block)
        if len(block) > recvcounts[src]:
            raise RawTruncationError(
                f"alltoallv: message from rank {src} has {len(block)} items, "
                f"recvcounts allows {recvcounts[src]}"
            )
        parts[src] = block
    return np.concatenate(parts) if p > 1 else np.asarray(parts[r]).copy()


@collective_algorithm("alltoallw", "pairwise", default=True,
                      cost=_cost_pairwise_w,
                      description="pairwise exchange paying the per-peer "
                                  "derived-datatype penalty")
def alltoallw_pairwise(comm, send_blocks: Sequence[Any]) -> list:
    p, r = comm.size, comm.rank
    tag = comm._next_coll_tag(CODE_ALLTOALLW)
    if len(send_blocks) != p:
        raise RawUsageError(f"alltoallw requires exactly {p} blocks")
    out: list = [None] * p
    out[r] = send_blocks[r]
    # Even the self-block pays the datatype setup cost.
    comm.clock.compute(comm.machine.cost_model.dtype_alpha)
    for i in range(1, p):
        dst, src = (r + i) % p, (r - i) % p
        comm._deposit(send_blocks[dst], dst, tag, packed=True)
        out[src], _ = comm._recv(src, tag)
    return out

"""Allgather / allgatherv algorithms.

``nbytes`` hints: allgather uses the local contribution size; allgatherv uses
the *total* gathered size (``Σ recvcounts·itemsize``), which every rank knows
symmetrically because recvcounts is required on all ranks.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

import numpy as np

from repro.mpi.algorithms import collective_algorithm
from repro.mpi.algorithms.common import (
    CODE_ALLGATHER,
    CODE_ALLGATHERV,
    _ceil_log2,
    _tree_depth,
    _validate_root,
)
from repro.mpi.algorithms.bcast import bcast_binomial
from repro.mpi.algorithms.gather_scatter import gather_binomial
from repro.mpi.datatypes import ensure_1d_array
from repro.mpi.errors import RawTruncationError, RawUsageError


def _cost_bruck(p, nbytes, cm):
    # Round k ships min(k, p−k) already-collected blocks: log-depth latency
    # at full (p−1)·n bandwidth.
    return _ceil_log2(p) * (cm.alpha + 2 * cm.overhead) + (p - 1) * nbytes * cm.beta


def _cost_ring(p, nbytes, cm):
    return (p - 1) * (cm.alpha + 2 * cm.overhead + nbytes * cm.beta)


def _cost_gather_bcast(p, nbytes, cm):
    gather = _tree_depth(p) * (cm.alpha + 2 * cm.overhead) + (p - 1) * nbytes * cm.beta
    bcast = _tree_depth(p) * (cm.alpha + p * nbytes * cm.beta + 2 * cm.overhead)
    return gather + bcast


def _cost_ring_v(p, nbytes, cm):
    # nbytes = total gathered size; each round moves ~total/p on average.
    return (p - 1) * (cm.alpha + 2 * cm.overhead) + nbytes * cm.beta * (p - 1) / p


def _cost_gather_bcast_v(p, nbytes, cm):
    # Binomial gather: tree-depth latency; the root's inbound volume
    # (everything but its own block, ≈ n·(p−1)/p) is the bandwidth term.
    gather = _tree_depth(p) * (cm.alpha + 2 * cm.overhead) \
        + nbytes * cm.beta * (p - 1) / p
    bcast = _tree_depth(p) * (cm.alpha + nbytes * cm.beta + 2 * cm.overhead)
    return gather + bcast


@collective_algorithm("allgather", "bruck", default=True, cost=_cost_bruck,
                      description="Bruck's algorithm: ⌈log₂ p⌉ rounds of "
                                  "doubling block exchanges")
def allgather_bruck(comm, payload: Any) -> list:
    p, r = comm.size, comm.rank
    tag = comm._next_coll_tag(CODE_ALLGATHER)
    blocks: list = [payload]
    k = 1
    while k < p:
        send_cnt = min(k, p - k)
        comm._send(blocks[:send_cnt], (r - k) % p, tag)
        other, _ = comm._recv((r + k) % p, tag)
        blocks.extend(other)
        k <<= 1
    out: list = [None] * p
    for i in range(p):
        out[(r + i) % p] = blocks[i]
    return out


@collective_algorithm("allgather", "ring", cost=_cost_ring,
                      description="p−1 rounds passing one block around the "
                                  "ring; minimal per-round bandwidth")
def allgather_ring(comm, payload: Any) -> list:
    p, r = comm.size, comm.rank
    tag = comm._next_coll_tag(CODE_ALLGATHER)
    out: list = [None] * p
    out[r] = payload
    cur = payload
    right, left = (r + 1) % p, (r - 1) % p
    for i in range(1, p):
        comm._send(cur, right, tag)
        cur, _ = comm._recv(left, tag)
        out[(r - i) % p] = cur
    return out


@collective_algorithm("allgather", "gather_bcast", cost=_cost_gather_bcast,
                      description="binomial gather to rank 0 followed by a "
                                  "binomial broadcast of the full list")
def allgather_gather_bcast(comm, payload: Any) -> list:
    items = gather_binomial(comm, payload, 0)
    return bcast_binomial(comm, items, 0)


@collective_algorithm("allgatherv", "ring", default=True, cost=_cost_ring_v,
                      description="p−1 rounds passing variable blocks around "
                                  "the ring; every rank checks every block")
def allgatherv_ring(comm, sendbuf: np.ndarray,
                    recvcounts: Sequence[int]) -> np.ndarray:
    p, r = comm.size, comm.rank
    tag = comm._next_coll_tag(CODE_ALLGATHERV)
    sendbuf = ensure_1d_array(sendbuf)
    if len(recvcounts) != p:
        raise RawUsageError(f"recvcounts must have length {p}")
    if len(sendbuf) > recvcounts[r]:
        raise RawTruncationError(
            f"allgatherv: local block has {len(sendbuf)} items but recvcounts[{r}] "
            f"= {recvcounts[r]}"
        )
    parts: list[Optional[np.ndarray]] = [None] * p
    parts[r] = sendbuf
    cur = sendbuf
    right, left = (r + 1) % p, (r - 1) % p
    for i in range(1, p):
        comm._send(cur, right, tag)
        cur, _ = comm._recv(left, tag)
        cur = ensure_1d_array(cur)
        src = (r - i) % p
        if len(cur) > recvcounts[src]:
            raise RawTruncationError(
                f"allgatherv: block from rank {src} has {len(cur)} items, "
                f"recvcounts allows {recvcounts[src]}"
            )
        parts[src] = cur
    return np.concatenate(parts) if p > 1 else sendbuf.copy()


@collective_algorithm("allgatherv", "gather_bcast", cost=_cost_gather_bcast_v,
                      description="binomial gather of blocks to rank 0, "
                                  "concatenate, binomial broadcast")
def allgatherv_gather_bcast(comm, sendbuf: np.ndarray,
                            recvcounts: Sequence[int]) -> np.ndarray:
    p, r = comm.size, comm.rank
    sendbuf = ensure_1d_array(sendbuf)
    if len(recvcounts) != p:
        raise RawUsageError(f"recvcounts must have length {p}")
    # Every rank checks its own block *before* communicating, so a symmetric
    # count mismatch raises everywhere instead of deadlocking non-roots.
    if len(sendbuf) > recvcounts[r]:
        raise RawTruncationError(
            f"allgatherv: local block has {len(sendbuf)} items but recvcounts[{r}] "
            f"= {recvcounts[r]}"
        )
    blocks = gather_binomial(comm, sendbuf, 0)
    full: Optional[np.ndarray] = None
    if r == 0:
        parts = []
        for src, block in enumerate(blocks):
            block = ensure_1d_array(block)
            if len(block) > recvcounts[src]:
                raise RawTruncationError(
                    f"allgatherv: block from rank {src} has {len(block)} items, "
                    f"recvcounts allows {recvcounts[src]}"
                )
            parts.append(block)
        full = np.concatenate(parts) if p > 1 else sendbuf.copy()
    return bcast_binomial(comm, full, 0)

"""p = 1 fast paths: pure-local implementations for singleton communicators.

On a one-rank communicator every collective is a local data movement; the
seed's algorithms already sent no messages at p = 1, but still drew collective
tags and walked their scheduling loops.  These implementations skip all of
that while preserving the seed's argument validation and return conventions
(fresh arrays where the general path concatenates, identity semantics for
exscan, the datatype charge for alltoallw).

They are applied unconditionally by the engine at ``comm.size == 1`` — even
under forced algorithm selection — and are exempt from cost-model selection
(every collective is communication-free at p = 1).

Neighbor collectives are deliberately absent: a self-loop topology carries
real messages even on one rank.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

import numpy as np

from repro.mpi.algorithms import Algorithm
from repro.mpi.algorithms.common import _validate_root
from repro.mpi.datatypes import ensure_1d_array
from repro.mpi.errors import RawTruncationError, RawUsageError
from repro.mpi.ops import Op


def _barrier(comm) -> None:
    return None


def _bcast(comm, payload: Any, root: int) -> Any:
    _validate_root(comm, root)
    return payload


def _gather(comm, payload: Any, root: int) -> Optional[list]:
    _validate_root(comm, root)
    return [payload]


def _gatherv(comm, sendbuf: np.ndarray, recvcounts: Optional[Sequence[int]],
             root: int) -> Optional[np.ndarray]:
    _validate_root(comm, root)
    sendbuf = ensure_1d_array(sendbuf)
    if recvcounts is None:
        raise RawUsageError("gatherv requires recvcounts at the root")
    if len(recvcounts) != 1:
        raise RawUsageError("recvcounts must have length 1")
    if len(sendbuf) > recvcounts[0]:
        raise RawTruncationError(
            f"gatherv: message from rank 0 has {len(sendbuf)} items, "
            f"recvcounts allows {recvcounts[0]}"
        )
    return sendbuf.copy()


def _scatter(comm, payloads: Optional[Sequence[Any]], root: int) -> Any:
    _validate_root(comm, root)
    if payloads is None or len(payloads) != 1:
        raise RawUsageError("scatter root must supply exactly 1 payloads")
    return payloads[0]


def _scatterv(comm, sendbuf: Optional[np.ndarray],
              sendcounts: Optional[Sequence[int]], root: int) -> np.ndarray:
    _validate_root(comm, root)
    if sendbuf is None or sendcounts is None or len(sendcounts) != 1:
        raise RawUsageError("scatterv root must supply sendbuf and 1 sendcounts")
    sendbuf = ensure_1d_array(sendbuf)
    if sendcounts[0] > len(sendbuf):
        raise RawUsageError("scatterv sendcounts exceed sendbuf length")
    return sendbuf[: sendcounts[0]].copy()


def _allgather(comm, payload: Any) -> list:
    return [payload]


def _allgatherv(comm, sendbuf: np.ndarray,
                recvcounts: Sequence[int]) -> np.ndarray:
    sendbuf = ensure_1d_array(sendbuf)
    if len(recvcounts) != 1:
        raise RawUsageError("recvcounts must have length 1")
    if len(sendbuf) > recvcounts[0]:
        raise RawTruncationError(
            f"allgatherv: local block has {len(sendbuf)} items but recvcounts[0] "
            f"= {recvcounts[0]}"
        )
    return sendbuf.copy()


def _alltoall(comm, payloads: Sequence[Any]) -> list:
    if len(payloads) != 1:
        raise RawUsageError("alltoall requires exactly 1 payloads")
    return [payloads[0]]


def _alltoallv(comm, sendbuf: np.ndarray, sendcounts: Sequence[int],
               recvcounts: Sequence[int]) -> np.ndarray:
    sendbuf = ensure_1d_array(sendbuf)
    if len(sendcounts) != 1 or len(recvcounts) != 1:
        raise RawUsageError("sendcounts/recvcounts must have length 1")
    if sendcounts[0] > len(sendbuf):
        raise RawUsageError("alltoallv sendcounts exceed sendbuf length")
    return np.asarray(sendbuf[: sendcounts[0]]).copy()


def _alltoallw(comm, send_blocks: Sequence[Any]) -> list:
    if len(send_blocks) != 1:
        raise RawUsageError("alltoallw requires exactly 1 blocks")
    # The self-block still pays the datatype setup cost (seed behavior).
    comm.clock.compute(comm.machine.cost_model.dtype_alpha)
    return [send_blocks[0]]


def _reduce(comm, value: Any, op: Op, root: int) -> Any:
    _validate_root(comm, root)
    return value


def _allreduce(comm, value: Any, op: Op) -> Any:
    return value


def _scan(comm, value: Any, op: Op) -> Any:
    return value


def _exscan(comm, value: Any, op: Op) -> Any:
    if op.identity is None:
        return None
    if isinstance(value, np.ndarray):
        return np.full_like(value, op.identity)
    return type(value)(op.identity) if not isinstance(value, bool) else op.identity


def _zero_cost(p, nbytes, cm):
    return 0.0


def _make(collective: str, fn) -> Algorithm:
    return Algorithm(collective=collective, name="singleton", fn=fn,
                     cost=_zero_cost,
                     description="pure-local p=1 fast path")


SINGLETON: dict[str, Algorithm] = {
    "barrier": _make("barrier", _barrier),
    "bcast": _make("bcast", _bcast),
    "gather": _make("gather", _gather),
    "gatherv": _make("gatherv", _gatherv),
    "scatter": _make("scatter", _scatter),
    "scatterv": _make("scatterv", _scatterv),
    "allgather": _make("allgather", _allgather),
    "allgatherv": _make("allgatherv", _allgatherv),
    "alltoall": _make("alltoall", _alltoall),
    "alltoallv": _make("alltoallv", _alltoallv),
    "alltoallw": _make("alltoallw", _alltoallw),
    "reduce": _make("reduce", _reduce),
    "allreduce": _make("allreduce", _allreduce),
    "scan": _make("scan", _scan),
    "exscan": _make("exscan", _exscan),
}

"""Neighborhood collective algorithms.

Only one schedule exists (``direct``): message complexity is Θ(degree) by
construction, which is the entire point of neighborhood collectives — there
is no size/p crossover for the engine to exploit, so no cost formula is
registered and the default policy always picks ``direct``.  No singleton
fast path either: a self-loop topology carries real messages even on one
rank.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.mpi.algorithms import collective_algorithm
from repro.mpi.algorithms.common import CODE_NEIGHBOR, CODE_NEIGHBORV
from repro.mpi.datatypes import ensure_1d_array
from repro.mpi.errors import RawTruncationError, RawUsageError


def _require_topology(comm) -> tuple[tuple[int, ...], tuple[int, ...]]:
    topo = comm.topology
    if topo is None:
        raise RawUsageError(
            "neighborhood collectives require a dist-graph communicator "
            "(use dist_graph_create_adjacent)"
        )
    return topo


@collective_algorithm("neighbor_alltoall", "direct", default=True,
                      description="one buffered send per out-neighbor, one "
                                  "receive per in-neighbor")
def neighbor_alltoall_direct(comm, payloads: Sequence) -> list:
    sources, destinations = _require_topology(comm)
    tag = comm._next_coll_tag(CODE_NEIGHBOR)
    if len(payloads) != len(destinations):
        raise RawUsageError(
            f"neighbor_alltoall requires {len(destinations)} payloads "
            f"(one per destination)"
        )
    for payload, dst in zip(payloads, destinations):
        comm._send(payload, dst, tag)
    out = []
    for src in sources:
        payload, _ = comm._recv(src, tag)
        out.append(payload)
    return out


@collective_algorithm("neighbor_alltoallv", "direct", default=True,
                      description="variable-size neighborhood exchange: "
                                  "Θ(degree), not Θ(p)")
def neighbor_alltoallv_direct(comm, sendbuf: np.ndarray,
                              sendcounts: Sequence[int],
                              recvcounts: Sequence[int]) -> np.ndarray:
    sources, destinations = _require_topology(comm)
    tag = comm._next_coll_tag(CODE_NEIGHBORV)
    sendbuf = ensure_1d_array(sendbuf)
    if len(sendcounts) != len(destinations):
        raise RawUsageError("sendcounts must match the number of destinations")
    if len(recvcounts) != len(sources):
        raise RawUsageError("recvcounts must match the number of sources")
    displs = np.concatenate(([0], np.cumsum(sendcounts)[:-1])).astype(int) \
        if len(sendcounts) else np.zeros(0, dtype=int)
    for j, dst in enumerate(destinations):
        comm._send(sendbuf[displs[j]: displs[j] + sendcounts[j]], dst, tag)
    parts = []
    for i, src in enumerate(sources):
        block, _ = comm._recv(src, tag)
        block = ensure_1d_array(block)
        if len(block) > recvcounts[i]:
            raise RawTruncationError(
                f"neighbor_alltoallv: message from rank {src} has {len(block)} "
                f"items, recvcounts allows {recvcounts[i]}"
            )
        parts.append(block)
    if not parts:
        return sendbuf[:0].copy()
    return np.concatenate(parts)

"""Shared helpers for the collective algorithm implementations.

The op codes are folded into the reserved negative tag space by
:func:`repro.mpi.constants.collective_tag`; tag *uniqueness* comes from the
per-communicator sequence number, so multi-phase algorithms simply draw one
tag per phase — every rank calls ``_next_coll_tag`` in the same order.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.mpi.errors import RawUsageError
from repro.mpi.ops import Op

# Collective op codes (folded into reserved tags).
CODE_BARRIER = 0
CODE_BCAST = 1
CODE_GATHER = 2
CODE_GATHERV = 3
CODE_SCATTER = 4
CODE_SCATTERV = 5
CODE_ALLGATHER = 6
CODE_ALLGATHERV = 7
CODE_ALLTOALL = 8
CODE_ALLTOALLV = 9
CODE_ALLTOALLW = 10
CODE_REDUCE = 11
CODE_ALLREDUCE = 12
CODE_SCAN = 13
CODE_EXSCAN = 14
CODE_NEIGHBOR = 15
CODE_NEIGHBORV = 16


def _validate_root(comm, root: int) -> None:
    if not 0 <= root < comm.size:
        raise RawUsageError(f"root {root} out of range for size {comm.size}")


def _combine(op: Op, a: Any, b: Any) -> Any:
    """Apply ``op`` elementwise, preserving array-ness of the inputs."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return op(np.asarray(a), np.asarray(b))
    return op(a, b)


def _ceil_log2(p: int) -> int:
    return max(1, (p - 1).bit_length()) if p > 1 else 0


def _tree_depth(p: int) -> int:
    """Critical-path depth of a p-node binomial tree: ⌊log₂ p⌋.

    A node at virtual rank v sits at depth popcount(v), and the maximum
    popcount over v < p is ⌊log₂ p⌋ — one less than the ⌈log₂ p⌉ *round
    count* whenever p is not a power of two.  With buffered sends the
    rounds overlap, so virtual time tracks tree depth, not round count.
    """
    return p.bit_length() - 1 if p > 1 else 0

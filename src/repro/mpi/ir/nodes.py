"""Shared communication-event node types — the one event model of the repo.

Two layers describe "what a program communicates" and historically each had
its own node vocabulary:

- the **static** layer: reprolint's SPMD abstract executor
  (:mod:`repro.analysis.spmd`) extracts per-rank event sequences from the
  AST — :class:`Coll` / :class:`P2P` / :class:`Loop`, compared across
  simulated ranks;
- the **dynamic** layer: the communication-plan IR records the ops a rank
  *actually issued* during an epoch — :class:`CommOp` nodes collected into
  an :class:`Epoch` graph, rewritten by :mod:`repro.mpi.ir.passes` and
  executed by :mod:`repro.mpi.ir.replayer`.

Both vocabularies live here so they cannot drift: the static nodes are the
exact dataclasses the SPMD checker always used (``analysis/spmd.py``
re-exports them), and every dynamic :class:`CommOp` lowers to a static event
via :meth:`CommOp.static_event` — the bridge the IR tests use to check that
a recorded epoch is SPMD-consistent in the same sense reprolint checks
statically.

This module must stay importable with only NumPy installed (the reprolint CI
job does not install the full test stack).
"""

from __future__ import annotations

import pickle
import struct
from collections import Counter
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Hashable, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.mpi.datatypes import payload_nbytes

ANY = "*"  # wildcard source/tag on a receive (shared with the SPMD checker)


# -- static events (the SPMD checker's per-rank sequences) -------------------


@dataclass(frozen=True)
class Coll:
    name: str
    root: Optional[int]
    op: Optional[str]
    line: int

    def key(self) -> Tuple[object, ...]:
        return ("coll", self.name, self.root, self.op)


@dataclass(frozen=True)
class P2P:
    kind: str  # "send" | "recv"
    rank: int
    peer: Optional[Union[int, str]]  # int, ANY, or None (=unknown)
    tag: Optional[Union[int, str]]
    line: int

    def key(self) -> Tuple[object, ...]:
        return (self.kind, self.peer, self.tag)


@dataclass(frozen=True)
class Loop:
    """Communication inside a loop whose trip count is not statically known
    (assumed uniform across ranks — a documented modelling limit)."""

    body: Tuple["Event", ...]
    line: int

    def key(self) -> Tuple[object, ...]:
        return ("loop",) + tuple(e.key() for e in self.body)


Event = Union[Coll, P2P, Loop]


# -- canonical value forms (bit-identity comparison) -------------------------


def canonical(value: Any) -> Any:
    """Lower a payload/result to a canonical, comparable, hashable form.

    Arrays compare by dtype + shape + exact buffer bytes, floats by their
    IEEE bit pattern, and sequences structurally (lists and tuples collapse
    to the same form, matching the runtime's looseness about which one a
    collective returns).  This is the equality the replayer's "bit-identical"
    guarantee is defined over.
    """
    if value is None or isinstance(value, (bool, str, bytes)):
        return value
    if isinstance(value, np.ndarray):
        return ("nd", value.dtype.str, value.shape, value.tobytes())
    if isinstance(value, (int, np.integer)):
        return ("i", int(value))
    if isinstance(value, (float, np.floating)):
        return ("f", struct.pack("<d", float(value)))
    if isinstance(value, (list, tuple)):
        return ("seq", tuple(canonical(v) for v in value))
    if isinstance(value, dict):
        return ("map", tuple(sorted((k, canonical(v)) for k, v in value.items())))
    # Status and other small value objects: compare by their public fields.
    fields = getattr(value, "__dataclass_fields__", None)
    if fields is not None:
        return (type(value).__name__,) + tuple(
            canonical(getattr(value, name)) for name in fields
        )
    try:
        return ("pickle", pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:  # pragma: no cover - exotic unpicklable results
        return ("repr", repr(value))


def values_equal(a: Any, b: Any) -> bool:
    """Bit-identity over the canonical form (NaNs compare by bit pattern)."""
    return canonical(a) == canonical(b)


# -- dynamic nodes (the recorded dataflow IR) --------------------------------

#: node kinds: "coll" (blocking collective), "p2p" (point-to-point),
#: "nbc" (non-blocking start, incl. ibarrier), "wait" (completion of a
#: non-blocking start), "mgmt" (communicator management), "local" (compute)
KINDS = ("coll", "p2p", "nbc", "wait", "mgmt", "local")

#: kinds that issue one raw (counted) MPI call when replayed
RAW_KINDS = ("coll", "p2p", "nbc", "mgmt")


@dataclass
class CommOp:
    """One recorded operation — an SSA-flavored node of the epoch graph.

    ``idx`` is the rank-local SSA name of the node's result; ``deps`` are the
    rank-local value dependencies (indices of the nodes that produced this
    node's input payloads).  Cross-rank structure is implicit: collective and
    management nodes align by ``(comm, seq)`` instance, point-to-point nodes
    by per-``(source, dest, tag)`` channel FIFO order.
    """

    idx: int
    #: issuing rank, local to ``comm``
    rank: int
    kind: str
    op: str
    comm: Hashable = "world"
    #: per-(rank, comm) collective-instance number (colls/nbc/mgmt only)
    seq: Optional[int] = None
    args: Dict[str, Any] = field(default_factory=dict)
    #: input payload snapshot (``None`` when the op takes no local input)
    payload: Any = None
    #: recorded output — the replayer's expected value for this node
    result: Any = None
    #: rank-local value-dependency edges (indices of producing nodes)
    deps: Tuple[int, ...] = ()
    #: name of the rewrite pass that produced this node (``None``: recorded)
    ir_pass: Optional[str] = None

    @property
    def is_raw(self) -> bool:
        """Whether replaying this node issues a counted raw MPI call."""
        return self.kind in ("coll", "p2p", "nbc", "mgmt")

    def nbytes(self) -> int:
        """Wire-byte estimate of the node's input payload."""
        if self.payload is None:
            return 0
        if isinstance(self.payload, (list, tuple)) and self.op in (
            "alltoall", "alltoallw", "scatter", "neighbor_alltoall"
        ):
            return sum(payload_nbytes(x) for x in self.payload)
        return payload_nbytes(self.payload)

    def static_event(self) -> Optional[Event]:
        """Lower to the SPMD checker's static event model (the unification
        bridge): collectives to :class:`Coll`, point-to-point to :class:`P2P`.
        Nodes with no static analog (waits, compute, management) return
        ``None``."""
        if self.kind in ("coll", "nbc"):
            red = self.args.get("op")
            return Coll(
                name=self.op,
                root=self.args.get("root"),
                op=getattr(red, "name", None) and red.name.upper() or None,
                line=0,
            )
        if self.kind == "p2p":
            if self.op in ("send", "ssend", "isend", "issend"):
                return P2P("send", self.rank, self.args.get("dest"),
                           self.args.get("tag"), 0)
            if self.op in ("recv", "irecv"):
                src = self.args.get("source")
                peer = ANY if src is not None and src < 0 else src
                tag = self.args.get("tag")
                tag = ANY if tag is not None and tag < 0 else tag
                return P2P("recv", self.rank, peer, tag, 0)
        return None

    def clone(self, **changes: Any) -> "CommOp":
        return replace(self, **changes)


@dataclass
class Epoch:
    """The recorded (or rewritten) dataflow graph of one run.

    ``ops[w]`` is world rank ``w``'s node list in program order; ``members``
    maps each communicator id to the world ranks backing its local ranks
    (needed to align instances across ranks).
    """

    num_ranks: int
    ops: List[List[CommOp]]
    members: Dict[Hashable, Tuple[int, ...]] = field(default_factory=dict)
    #: op names the recorder could not model for replay (probe, RMA, ULFM…)
    unsupported: Set[str] = field(default_factory=set)

    # -- structure queries -------------------------------------------------

    def op_counts(self) -> Counter:
        """Raw-op histogram over all ranks (what PMPI counters would see)."""
        c: Counter = Counter()
        for per_rank in self.ops:
            for node in per_rank:
                if node.is_raw:
                    c[node.op] += 1
        return c

    def total_raw_ops(self) -> int:
        return sum(self.op_counts().values())

    def total_bytes(self) -> int:
        """Summed wire-byte estimate of every raw node's input payload."""
        return sum(node.nbytes() for per_rank in self.ops for node in per_rank
                   if node.is_raw)

    def instances(self) -> Dict[Tuple[Hashable, int], Dict[int, Tuple[int, CommOp]]]:
        """Collective instances: ``(comm, seq) -> {world_rank: (pos, node)}``."""
        inst: Dict[Tuple[Hashable, int], Dict[int, Tuple[int, CommOp]]] = {}
        for w, per_rank in enumerate(self.ops):
            for pos, node in enumerate(per_rank):
                if node.seq is not None:
                    inst.setdefault((node.comm, node.seq), {})[w] = (pos, node)
        return inst

    def static_events(self, world_rank: int) -> Tuple[Event, ...]:
        """This rank's recorded sequence in the SPMD checker's event model."""
        out = []
        for node in self.ops[world_rank]:
            ev = node.static_event()
            if ev is not None:
                out.append(ev)
        return tuple(out)

    def alloc_idx(self, world_rank: int) -> int:
        """A fresh SSA index for a rewritten node on one rank."""
        taken = [n.idx for n in self.ops[world_rank]]
        return (max(taken) + 1) if taken else 0

    def rewritten(self) -> List[CommOp]:
        """Every node carrying pass provenance, across all ranks."""
        return [n for per_rank in self.ops for n in per_rank
                if n.ir_pass is not None]

    def summary(self) -> Dict[str, Any]:
        return {
            "raw_ops": self.total_raw_ops(),
            "bytes": self.total_bytes(),
            "per_op": dict(self.op_counts()),
            "rewritten": len(self.rewritten()),
        }

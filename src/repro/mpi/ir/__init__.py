"""Communication-plan IR: record epochs, rewrite them, replay them.

The layer above the call-plan cache (DESIGN §13): a run's communication is
captured as a per-rank dataflow graph of :class:`CommOp` nodes
(:mod:`repro.mpi.ir.recorder`), rewritten by a pipeline of optimization
passes (:mod:`repro.mpi.ir.passes`), and re-executed bit-identically through
cached per-signature dispatch plans (:mod:`repro.mpi.ir.replayer`).

Entry point: ``run_mpi(fn, p, ir="record" | "optimize")`` or ``REPRO_IR=...``
(see :func:`repro.mpi.ir.driver.run_with_ir`); the report lands on
``RunResult.ir``.
"""

from repro.mpi.ir.nodes import (
    ANY,
    Coll,
    CommOp,
    Epoch,
    Event,
    Loop,
    P2P,
    canonical,
    values_equal,
)
from repro.mpi.ir.recorder import Recorder, RecordingComm, UnsupportedForIR
from repro.mpi.ir.passes import (
    DEFAULT_PASSES,
    PassManager,
    PassResult,
    available_passes,
)
from repro.mpi.ir.replayer import IRReplayError, ReplayPlan, Replayer
from repro.mpi.ir.driver import IRReport, run_with_ir
from repro.mpi.ir.fragments import fragment, has_fragment

__all__ = [
    "ANY",
    "Coll",
    "CommOp",
    "DEFAULT_PASSES",
    "Epoch",
    "Event",
    "IRReplayError",
    "IRReport",
    "Loop",
    "P2P",
    "PassManager",
    "PassResult",
    "Recorder",
    "RecordingComm",
    "ReplayPlan",
    "Replayer",
    "UnsupportedForIR",
    "available_passes",
    "canonical",
    "fragment",
    "has_fragment",
    "run_with_ir",
    "values_equal",
]

"""Registered collective schedules exposed as static IR fragments.

A *fragment* is the per-rank point-to-point schedule a registered algorithm
would execute — a tuple of :class:`~repro.mpi.ir.nodes.P2P` events in issue
order, derived purely from ``(p, rank, root)`` exactly like the algorithms
themselves derive their schedules (pattern determinism is the registry's
contract).  This gives the rewrite passes and the tests a ground truth to
reason against: ``fuse_reduce_bcast`` is sound *because*
``fragment("allreduce", "reduce_bcast", ...)`` is by construction the
concatenation of the reduce and bcast fragments, and the fragment tests pin
that identity here rather than re-deriving it in every pass.

Access via :meth:`repro.mpi.algorithms.Algorithm.fragment` or
:func:`fragment` directly.  Only pattern-static algorithms are mapped.
Algorithms whose wire schedule depends on *payload properties* the
``(p, rank, root)`` signature cannot see are listed in :data:`UNSOUND` and
raise :class:`FragmentUnsound` — a :class:`KeyError` subclass, so callers
that treat a missing fragment as "opaque" keep working, while the explicit
marking stops anyone from "completing" the table with a schedule that is
wrong for half the payload space.  The canonical case is ``allreduce/ring``:
its eligibility branch silently falls back to ``reduce_bcast`` unless the
value is a commutative-op 1-D ndarray with at least ``p`` elements, so no
single static fragment describes it.  :func:`fragment_soundness` reports the
three-way status; the fuse passes stay conservative by matching recorded
``algorithm`` provenance against fragments that exist, so unsound
algorithms are never rewritten.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.mpi.errors import RawUsageError
from repro.mpi.ir.nodes import P2P

#: fragment builder signature: ``(p, rank, root) -> tuple[P2P, ...]``
FragmentFn = Callable[[int, int, int], Tuple[P2P, ...]]


def _send(rank: int, peer: int) -> P2P:
    return P2P("send", rank, peer, None, 0)


def _recv(rank: int, peer: int) -> P2P:
    return P2P("recv", rank, peer, None, 0)


def bcast_binomial_fragment(p: int, rank: int, root: int = 0) -> Tuple[P2P, ...]:
    if p == 1:
        return ()
    events = []
    vr = (rank - root) % p
    mask = 1
    while mask < p:
        if vr & mask:
            events.append(_recv(rank, (vr - mask + root) % p))
            break
        mask <<= 1
    mask >>= 1
    while mask > 0:
        child = vr + mask
        if child < p:
            events.append(_send(rank, (child + root) % p))
        mask >>= 1
    return tuple(events)


def bcast_linear_fragment(p: int, rank: int, root: int = 0) -> Tuple[P2P, ...]:
    if p == 1:
        return ()
    if rank == root:
        return tuple(_send(rank, dst) for dst in range(p) if dst != root)
    return (_recv(rank, root),)


def reduce_binomial_fragment(p: int, rank: int, root: int = 0
                             ) -> Tuple[P2P, ...]:
    events = []
    vr = (rank - root) % p
    mask = 1
    while mask < p:
        if vr & mask == 0:
            src_vr = vr | mask
            if src_vr < p:
                events.append(_recv(rank, (src_vr + root) % p))
        else:
            events.append(_send(rank, ((vr & ~mask) + root) % p))
            return tuple(events)
        mask <<= 1
    return tuple(events)


def reduce_linear_fragment(p: int, rank: int, root: int = 0
                           ) -> Tuple[P2P, ...]:
    if rank != root:
        return (_send(rank, root),)
    return tuple(_recv(rank, src) for src in range(p) if src != root)


def allreduce_reduce_bcast_fragment(p: int, rank: int, root: int = 0
                                    ) -> Tuple[P2P, ...]:
    # By construction the exact composition the fusion pass relies on.
    return (reduce_binomial_fragment(p, rank, 0)
            + bcast_binomial_fragment(p, rank, 0))


def allreduce_recursive_doubling_fragment(p: int, rank: int, root: int = 0
                                          ) -> Tuple[P2P, ...]:
    if p == 1:
        return ()
    events = []
    p2 = 1 << (p.bit_length() - 1)
    rem = p - p2
    new_rank = -1
    if rank < 2 * rem:
        if rank % 2 == 1:
            events.append(_send(rank, rank - 1))
        else:
            events.append(_recv(rank, rank + 1))
            new_rank = rank // 2
    else:
        new_rank = rank - rem
    if new_rank >= 0:
        mask = 1
        while mask < p2:
            partner_new = new_rank ^ mask
            partner = partner_new * 2 if partner_new < rem else partner_new + rem
            events.append(_send(rank, partner))
            events.append(_recv(rank, partner))
            mask <<= 1
    if rank < 2 * rem:
        if rank % 2 == 0:
            events.append(_send(rank, rank + 1))
        else:
            events.append(_recv(rank, rank - 1))
    return tuple(events)


FRAGMENTS: Dict[Tuple[str, str], FragmentFn] = {
    ("bcast", "binomial"): bcast_binomial_fragment,
    ("bcast", "linear"): bcast_linear_fragment,
    ("reduce", "binomial"): reduce_binomial_fragment,
    ("reduce", "linear"): reduce_linear_fragment,
    ("allreduce", "reduce_bcast"): allreduce_reduce_bcast_fragment,
    ("allreduce", "recursive_doubling"): allreduce_recursive_doubling_fragment,
}


class FragmentUnsound(KeyError):
    """No static fragment can exist for this algorithm (see :data:`UNSOUND`).

    Subclasses :class:`KeyError` so existing "opaque algorithm" handling
    (``except KeyError``) keeps working unchanged."""


#: algorithms whose schedule depends on payload properties invisible to the
#: static ``(p, rank, root)`` signature, mapped to the reason.  Listing an
#: algorithm here is a *permanent* marking, not a TODO: adding a static
#: fragment for one of these would hand the rewrite passes a schedule that
#: is wrong for part of the payload space.
UNSOUND: Dict[Tuple[str, str], str] = {
    ("allreduce", "ring"): (
        "payload-dependent eligibility: runs the ring schedule only for a "
        "commutative-op 1-D ndarray with >= p elements, silently falling "
        "back to reduce_bcast otherwise"
    ),
}


def fragment(collective: str, name: str, p: int, rank: int,
             root: int = 0) -> Tuple[P2P, ...]:
    """The static P2P schedule of ``collective/name`` on one rank.

    Raises :class:`FragmentUnsound` for algorithms marked payload-dependent
    in :data:`UNSOUND`, and plain :class:`KeyError` for algorithms simply
    not mapped yet; callers treat both as "opaque"."""
    if not 0 <= rank < p:
        raise RawUsageError(f"rank {rank} out of range for p={p}")
    if not 0 <= root < p:
        raise RawUsageError(f"root {root} out of range for p={p}")
    reason = UNSOUND.get((collective, name))
    if reason is not None:
        raise FragmentUnsound(
            f"{collective}/{name} has no static fragment: {reason}")
    return FRAGMENTS[(collective, name)](p, rank, root)


def has_fragment(collective: str, name: str) -> bool:
    return (collective, name) in FRAGMENTS


def fragment_soundness(collective: str, name: str) -> str:
    """Three-way fragment status of one registered algorithm.

    ``"static"``: a fragment exists and is trustworthy ground truth;
    ``"unsound"``: no static fragment can exist (payload-dependent branch);
    ``"unmapped"``: pattern-static but nobody has written the fragment."""
    if (collective, name) in FRAGMENTS:
        return "static"
    if (collective, name) in UNSOUND:
        return "unsound"
    return "unmapped"


# A key in both tables would be a contradiction (one side must be wrong);
# fail at import so the mistake cannot ship.
_conflict = FRAGMENTS.keys() & UNSOUND.keys()
if _conflict:
    raise RawUsageError(
        f"algorithms marked both static and fragment-unsound: {_conflict}")

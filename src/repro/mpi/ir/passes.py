"""Rewrite passes over recorded epochs.

A pass is a function ``(Epoch) -> PassResult`` that rewrites the epoch in
place.  Every pass obeys three invariants the replay tests enforce:

1. **Value preservation** — replaying the rewritten graph produces values
   bit-identical (:func:`repro.mpi.ir.nodes.values_equal`) to the recorded
   run.  Rewrites fire only when this is *provable from the recording*: the
   fusion pass, for example, requires the recorded reduce and bcast to have
   run the binomial schedules from root 0, because
   ``allreduce[reduce_bcast]`` is by construction that exact composition —
   same combine order, same message schedule, so even float rounding is
   identical.
2. **SPMD consistency** — a rewrite touches a collective instance on *all*
   member ranks or none of them, keyed by the ``(comm, seq)`` alignment.
3. **No regressions** — every rewrite strictly reduces raw op count and
   never increases payload bytes (scalar payloads are packed as scalar
   lists, which the byte model sizes identically to the separate messages).

Provenance: every node a pass creates carries ``ir_pass=<pass name>``, which
the replayer stamps onto the trace spans so Chrome traces show which op came
from which rewrite.

Pass order matters and the default order is deliberate: collective fusions
first (they need the raw recorded shapes), then message coalescing, then
ring recognition, then wait reordering (pure scheduling, never changes
shapes).  Select or disable passes per run with ``run_mpi(..., ir_passes=
[...])``, ``REPRO_IR_PASSES=<exact comma list>``, or
``REPRO_IR_DISABLE=<comma list>``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from repro.mpi.errors import RawUsageError
from repro.mpi.ir.nodes import CommOp, Epoch, canonical, values_equal
from repro.mpi.p2p import Status

ENV_PASSES = "REPRO_IR_PASSES"
ENV_DISABLE = "REPRO_IR_DISABLE"


@dataclass
class PassResult:
    """Outcome of one pass: how many rewrites fired, and where."""

    name: str
    rewrites: int = 0
    details: List[str] = field(default_factory=list)

    def note(self, detail: str) -> None:
        self.rewrites += 1
        self.details.append(detail)


# -- shared helpers ----------------------------------------------------------


def _is_scalar(x) -> bool:
    return isinstance(x, (bool, int, float, np.integer, np.floating))


def _only_local_between(nodes: Sequence[CommOp], i: int, j: int) -> bool:
    """True when every node strictly between positions ``i`` and ``j`` is
    local compute (safe to treat the endpoints as adjacent)."""
    lo, hi = (i, j) if i < j else (j, i)
    return all(n.kind == "local" for n in nodes[lo + 1:hi])


def _dependents(nodes: Sequence[CommOp], idx: int) -> List[CommOp]:
    return [n for n in nodes if idx in n.deps]


def _remap_deps(nodes: Sequence[CommOp], mapping: Dict[int, int]) -> None:
    for n in nodes:
        if any(d in mapping for d in n.deps):
            n.deps = tuple(sorted({mapping.get(d, d) for d in n.deps}))


def _full_instance(epoch: Epoch, comm: Hashable,
                   inst: Dict[int, Tuple[int, CommOp]]) -> bool:
    """Instance observed on every member rank of its communicator."""
    members = epoch.members.get(comm)
    return members is not None and set(inst) == set(members)


def _comm_seqs(epoch: Epoch, instances, comm: Hashable) -> List[int]:
    return sorted(s for (c, s) in instances if c == comm)


# -- pass: fuse reduce(root=0) + bcast(root=0) -> allreduce[reduce_bcast] ----


def fuse_reduce_bcast(epoch: Epoch) -> PassResult:
    """Fuse a reduce-to-0 immediately rebroadcast from 0 into one allreduce.

    Fires only when (a) both recorded collectives ran the binomial schedule
    from root 0 — the exact composition ``allreduce[reduce_bcast]`` replays,
    so the combine order (and therefore float bit patterns) is unchanged —
    (b) the bcast's payload at the root is bit-identical to the reduce's
    result there (the program really did rebroadcast the reduction), and
    (c) nothing else consumed the intermediate reduce result.
    """
    result = PassResult("fuse_reduce_bcast")
    rewrote = True
    while rewrote:  # positions go stale after a rewrite: rescan
        rewrote = False
        instances = epoch.instances()
        for comm in list(epoch.members):
            if rewrote:
                break
            for s in _comm_seqs(epoch, instances, comm):
                a = instances.get((comm, s))
                b = instances.get((comm, s + 1))
                if a is None or b is None:
                    continue
                if not (_full_instance(epoch, comm, a)
                        and _full_instance(epoch, comm, b)):
                    continue
                a_nodes = [n for _, n in a.values()]
                b_nodes = [n for _, n in b.values()]
                if not all(n.op == "reduce" and n.args.get("root") == 0
                           and n.args.get("algorithm") == "binomial"
                           and n.ir_pass is None for n in a_nodes):
                    continue
                if not all(n.op == "bcast" and n.args.get("root") == 0
                           and n.args.get("algorithm") == "binomial"
                           and n.ir_pass is None for n in b_nodes):
                    continue
                red_ops = {getattr(n.args.get("op"), "name", None)
                           for n in a_nodes}
                if len(red_ops) != 1 or None in red_ops:
                    continue
                # adjacency and single-use of the intermediate, on every rank
                ok = True
                root_world = epoch.members[comm][0]
                for w, (pos_a, node_a) in a.items():
                    pos_b, node_b = b[w]
                    nodes = epoch.ops[w]
                    if (pos_b <= pos_a
                            or not _only_local_between(nodes, pos_a, pos_b)):
                        ok = False
                        break
                    if any(n is not node_b
                           for n in _dependents(nodes, node_a.idx)):
                        ok = False
                        break
                if not ok:
                    continue
                # the rebroadcast value must be the reduction's result
                _, root_reduce = a[root_world]
                _, root_bcast = b[root_world]
                if not values_equal(root_reduce.result, root_bcast.payload):
                    continue
                for w, (pos_a, node_a) in a.items():
                    pos_b, node_b = b[w]
                    nodes = epoch.ops[w]
                    fused = CommOp(
                        idx=epoch.alloc_idx(w),
                        rank=node_a.rank,
                        kind="coll",
                        op="allreduce",
                        comm=comm,
                        seq=node_a.seq,
                        args={"op": node_a.args["op"],
                              "algorithm": "reduce_bcast"},
                        payload=node_a.payload,
                        result=node_b.result,
                        deps=node_a.deps,
                        ir_pass="fuse_reduce_bcast",
                    )
                    nodes[pos_a] = fused
                    del nodes[pos_b]
                    _remap_deps(nodes, {node_a.idx: fused.idx,
                                        node_b.idx: fused.idx})
                result.note(f"comm={comm!r} seq={s}: reduce+bcast -> "
                            f"allreduce[reduce_bcast]")
                rewrote = True
                break
    return result


# -- pass: batch consecutive same-root bcasts into one list bcast ------------


def batch_bcasts(epoch: Epoch) -> PassResult:
    """Merge a run of k >= 2 consecutive same-root scalar bcasts into one
    bcast of a k-element scalar list (byte-neutral: the size model charges a
    scalar list exactly the sum of its elements; k trees become one)."""
    result = PassResult("batch_bcasts")
    instances = epoch.instances()
    for comm in list(epoch.members):
        seqs = _comm_seqs(epoch, instances, comm)
        i = 0
        while i < len(seqs):
            run = [seqs[i]]
            while (i + len(run) < len(seqs)
                   and seqs[i + len(run)] == run[-1] + 1
                   and _batchable_bcast(epoch, instances, comm, run[-1] + 1)
                   and _batchable_bcast(epoch, instances, comm, run[0])
                   and _same_bcast_shape(epoch, instances, comm,
                                         run[0], run[-1] + 1)):
                run.append(run[-1] + 1)
            if len(run) >= 2 and _contiguous_run(epoch, instances, comm, run):
                _rewrite_bcast_run(epoch, instances, comm, run)
                result.note(f"comm={comm!r} seqs={run[0]}..{run[-1]}: "
                            f"{len(run)} bcasts -> 1 batched bcast")
                instances = epoch.instances()
                seqs = _comm_seqs(epoch, instances, comm)
                i = 0
                continue
            i += 1
    return result


def _batchable_bcast(epoch, instances, comm, seq) -> bool:
    inst = instances.get((comm, seq))
    if inst is None or not _full_instance(epoch, comm, inst):
        return False
    return all(n.op == "bcast" and n.ir_pass is None and _is_scalar(n.result)
               and n.args.get("algorithm") == "binomial"
               for _, n in inst.values())


def _same_bcast_shape(epoch, instances, comm, s0, s1) -> bool:
    a = instances.get((comm, s0))
    b = instances.get((comm, s1))
    if a is None or b is None:
        return False
    roots_a = {n.args.get("root") for _, n in a.values()}
    roots_b = {n.args.get("root") for _, n in b.values()}
    return roots_a == roots_b and len(roots_a) == 1


def _contiguous_run(epoch, instances, comm, run) -> bool:
    for w in epoch.members[comm]:
        positions = [instances[(comm, s)][w][0] for s in run]
        if positions != sorted(positions):
            return False
        nodes = epoch.ops[w]
        for p, q in zip(positions, positions[1:]):
            if not _only_local_between(nodes, p, q):
                return False
    return True


def _rewrite_bcast_run(epoch, instances, comm, run) -> None:
    for w in epoch.members[comm]:
        entries = [instances[(comm, s)][w] for s in run]
        positions = [pos for pos, _ in entries]
        nodes_run = [n for _, n in entries]
        first = nodes_run[0]
        root = first.args["root"]
        nodes = epoch.ops[w]
        is_root = first.rank == root
        batched = CommOp(
            idx=epoch.alloc_idx(w),
            rank=first.rank,
            kind="coll",
            op="bcast",
            comm=comm,
            seq=first.seq,
            args={"root": root, "algorithm": "binomial",
                  "batched": len(run)},
            payload=[n.payload for n in nodes_run] if is_root else None,
            result=[n.result for n in nodes_run],
            deps=tuple(sorted({d for n in nodes_run for d in n.deps})),
            ir_pass="batch_bcasts",
        )
        nodes[positions[0]] = batched
        for pos in reversed(positions[1:]):
            del nodes[pos]
        _remap_deps(nodes, {n.idx: batched.idx for n in nodes_run})


# -- pass: fuse the alltoall count exchange into its alltoallv ---------------


def fuse_count_exchange(epoch: Epoch) -> PassResult:
    """Collapse ``rcounts = alltoall(scounts); alltoallv(buf, scounts,
    rcounts)`` into a single alltoall of array blocks.

    This is the boilerplate the wrapped layer's count inference generates
    (and raw-style code writes by hand): a p-scalar alltoall whose only
    purpose is to size the immediately following alltoallv.  Sending the
    blocks as objects needs no recv counts at all, so the count exchange —
    8·p bytes and one collective per rank — disappears entirely; this is the
    strict byte reduction ``bench_ir`` measures on sample sort and BFS.
    """
    result = PassResult("fuse_count_exchange")
    rewrote = True
    while rewrote:
        rewrote = False
        instances = epoch.instances()
        for comm in list(epoch.members):
            p = len(epoch.members[comm])
            for s in _comm_seqs(epoch, instances, comm):
                a = instances.get((comm, s))
                b = instances.get((comm, s + 1))
                if a is None or b is None:
                    continue
                if not (_full_instance(epoch, comm, a)
                        and _full_instance(epoch, comm, b)):
                    continue
                if not all(n.op == "alltoall" and n.ir_pass is None
                           for _, n in a.values()):
                    continue
                if not all(n.op == "alltoallv" and n.ir_pass is None
                           for _, n in b.values()):
                    continue
                ok = True
                for w, (pos_a, node_a) in a.items():
                    pos_b, node_b = b[w]
                    nodes = epoch.ops[w]
                    counts = node_a.payload
                    if not (isinstance(counts, (list, tuple))
                            and len(counts) == p
                            and all(_is_scalar(c) for c in counts)):
                        ok = False
                        break
                    if canonical(counts) != canonical(
                            node_b.args.get("sendcounts")):
                        ok = False
                        break
                    if canonical(node_a.result) != canonical(
                            node_b.args.get("recvcounts")):
                        ok = False
                        break
                    if pos_b <= pos_a or not _only_local_between(
                            nodes, pos_a, pos_b):
                        ok = False
                        break
                    if any(n is not node_b
                           for n in _dependents(nodes, node_a.idx)):
                        ok = False
                        break
                if not ok:
                    continue
                for w, (pos_a, node_a) in a.items():
                    pos_b, node_b = b[w]
                    nodes = epoch.ops[w]
                    sendbuf = np.asarray(node_b.payload)
                    scounts = [int(c) for c in node_a.payload]
                    splits = np.split(sendbuf, np.cumsum(scounts)[:-1])
                    fused = CommOp(
                        idx=epoch.alloc_idx(w),
                        rank=node_a.rank,
                        kind="coll",
                        op="alltoall",
                        comm=comm,
                        seq=node_a.seq,
                        args={"algorithm": node_a.args.get("algorithm"),
                              "post": "concat"},
                        payload=[np.ascontiguousarray(blk) for blk in splits],
                        result=node_b.result,
                        deps=tuple(sorted(set(node_a.deps) | set(node_b.deps))),
                        ir_pass="fuse_count_exchange",
                    )
                    nodes[pos_a] = fused
                    del nodes[pos_b]
                    _remap_deps(nodes, {node_a.idx: fused.idx,
                                        node_b.idx: fused.idx})
                result.note(f"comm={comm!r} seq={s}: count exchange folded "
                            f"into alltoall of blocks (saves {8 * p}B/rank)")
                rewrote = True
                break
            if rewrote:
                break
    return result


# -- pass: coalesce runs of small same-peer same-tag sends -------------------


def coalesce_sends(epoch: Epoch) -> PassResult:
    """Pack k >= 2 consecutive scalar sends on one (source, dest, tag)
    channel — and the receiver's matching k consecutive recvs — into a single
    packed message (a scalar list: byte-neutral, 2k ops become 2).

    Fires only when the run is the channel's *entire* traffic in the epoch,
    so FIFO pairing between the packed send and the packed recv is exact by
    construction.
    """
    result = PassResult("coalesce_sends")
    while _coalesce_one_channel(epoch, result):
        pass  # positions go stale after each rewrite: rescan
    return result


def _coalesce_one_channel(epoch: Epoch, result: PassResult) -> bool:
    for comm, members in list(epoch.members.items()):
        channels: Dict[Tuple[int, int, Optional[int]], Dict[str, list]] = {}
        for local, w in enumerate(members):
            for pos, n in enumerate(epoch.ops[w]):
                if n.comm != comm or n.ir_pass is not None or n.kind != "p2p":
                    continue
                if n.op == "send" and _is_scalar(n.payload):
                    key = (local, n.args["dest"], n.args["tag"])
                    channels.setdefault(key, {"send": [], "recv": []})[
                        "send"].append((w, pos, n))
                elif n.op == "recv":
                    src = n.args.get("source")
                    tag = n.args.get("tag")
                    if src is None or src < 0 or tag is None or tag < 0:
                        continue  # wildcard: FIFO pairing not provable
                    key = (src, local, tag)
                    channels.setdefault(key, {"send": [], "recv": []})[
                        "recv"].append((w, pos, n))
        for (src, dst, tag), traffic in channels.items():
            sends, recvs = traffic["send"], traffic["recv"]
            k = len(sends)
            if k < 2 or len(recvs) != k:
                continue
            if not (0 <= dst < len(members)):
                continue
            if len({w for w, _, _ in sends}) != 1:
                continue
            if len({w for w, _, _ in recvs}) != 1:
                continue
            if not all(isinstance(n.result, tuple) and _is_scalar(n.result[0])
                       for _, _, n in recvs):
                continue
            # runs must be contiguous on both sides
            s_positions = [pos for _, pos, _ in sends]
            r_positions = [pos for _, pos, _ in recvs]
            sw, rw = sends[0][0], recvs[0][0]
            if not all(_only_local_between(epoch.ops[sw], p, q)
                       for p, q in zip(s_positions, s_positions[1:])):
                continue
            if not all(_only_local_between(epoch.ops[rw], p, q)
                       for p, q in zip(r_positions, r_positions[1:])):
                continue
            # payloads must line up FIFO with the recorded receipts
            if not all(values_equal(sn.payload, rn.result[0])
                       for (_, _, sn), (_, _, rn) in zip(sends, recvs)):
                continue
            packed_payload = [n.payload for _, _, n in sends]
            first_s = sends[0][2]
            packed_send = CommOp(
                idx=epoch.alloc_idx(sw), rank=first_s.rank, kind="p2p",
                op="send", comm=comm,
                args={"dest": dst, "tag": tag, "packed": k},
                payload=packed_payload,
                deps=tuple(sorted({d for _, _, n in sends for d in n.deps})),
                ir_pass="coalesce_sends",
            )
            first_r = recvs[0][2]
            packed_recv = CommOp(
                idx=epoch.alloc_idx(rw), rank=first_r.rank, kind="p2p",
                op="recv", comm=comm,
                args={"source": src, "tag": tag, "packed": k,
                      "matched_source": src, "matched_tag": tag},
                result=(packed_payload, Status(src, tag, 8 * k)),
                ir_pass="coalesce_sends",
            )
            epoch.ops[sw][s_positions[0]] = packed_send
            for pos in reversed(s_positions[1:]):
                del epoch.ops[sw][pos]
            _remap_deps(epoch.ops[sw],
                        {n.idx: packed_send.idx for _, _, n in sends})
            epoch.ops[rw][r_positions[0]] = packed_recv
            for pos in reversed(r_positions[1:]):
                del epoch.ops[rw][pos]
            _remap_deps(epoch.ops[rw],
                        {n.idx: packed_recv.idx for _, _, n in recvs})
            result.note(f"comm={comm!r} channel {src}->{dst} tag={tag}: "
                        f"{k} scalar messages packed into 1")
            return True
    return False


# -- pass: recognize shift rings as sendrecv ---------------------------------


def ring_to_sendrecv(epoch: Epoch) -> PassResult:
    """Rewrite an aligned ring shift — every rank r sends to (r+d) mod p and
    then receives from (r-d) mod p with one tag — into one ``sendrecv`` per
    rank (p combined ops instead of 2p; the collective shape of a ring step).
    """
    result = PassResult("ring_to_sendrecv")
    while _ring_one_round(epoch, result):
        pass  # positions go stale after each rewrite: rescan
    return result


def _ring_one_round(epoch: Epoch, result: PassResult) -> bool:
    for comm, members in list(epoch.members.items()):
        p = len(members)
        if p < 2:
            continue
        candidates: Dict[int, List[Tuple[int, int, CommOp, CommOp]]] = {}
        for local, w in enumerate(members):
            nodes = epoch.ops[w]
            found = []
            for i, n in enumerate(nodes):
                if (n.kind != "p2p" or n.op != "send" or n.comm != comm
                        or n.ir_pass is not None):
                    continue
                for j in range(i + 1, len(nodes)):
                    m = nodes[j]
                    if m.kind == "local":
                        continue
                    if (m.kind == "p2p" and m.op == "recv" and m.comm == comm
                            and m.ir_pass is None
                            and m.args.get("source", -1) >= 0
                            and m.args.get("tag") == n.args.get("tag")):
                        found.append((i, j, n, m))
                    break
            candidates[local] = found
        rounds = min((len(v) for v in candidates.values()), default=0)
        for t in range(rounds):
            ds = set()
            tags = set()
            for local in range(p):
                _, _, sn, rn = candidates[local][t]
                ds.add((sn.args["dest"] - local) % p)
                ds.add((local - rn.args["source"]) % p)
                tags.add(sn.args["tag"])
            if len(ds) != 1 or 0 in ds or len(tags) != 1:
                continue
            d = ds.pop()
            # the received value must provably be the ring predecessor's send
            if not all(
                values_equal(candidates[local][t][3].result[0],
                             candidates[(local - d) % p][t][2].payload)
                for local in range(p)
            ):
                continue
            for local, w in enumerate(members):
                i, j, sn, rn = candidates[local][t]
                nodes = epoch.ops[w]
                fused = CommOp(
                    idx=epoch.alloc_idx(w), rank=sn.rank, kind="p2p",
                    op="sendrecv", comm=comm,
                    args={"dest": sn.args["dest"], "source": rn.args["source"],
                          "sendtag": sn.args["tag"],
                          "recvtag": rn.args["tag"],
                          "matched_source": rn.args["matched_source"],
                          "matched_tag": rn.args["matched_tag"]},
                    payload=sn.payload,
                    result=rn.result,
                    deps=tuple(sorted(set(sn.deps) | set(rn.deps))),
                    ir_pass="ring_to_sendrecv",
                )
                nodes[i] = fused
                del nodes[j]
                _remap_deps(nodes, {sn.idx: fused.idx, rn.idx: fused.idx})
            result.note(f"comm={comm!r}: ring shift d={d} "
                        f"-> {p} sendrecv ops")
            return True
    return False


# -- pass: push waits past independent local compute -------------------------


def overlap_waits(epoch: Epoch) -> PassResult:
    """Move the completion of irecv/ibarrier past immediately following local
    compute, so the transfer overlaps the computation.  Pure reordering: the
    compute charges are recorded constants, so no node's value can change —
    only the virtual-time critical path shrinks.

    Waits of send-side non-blocking collectives are deliberately left alone:
    their progress engines send on advance, so delaying the wait would delay
    *other* ranks.
    """
    result = PassResult("overlap_waits")
    for w, nodes in enumerate(epoch.ops):
        i = 0
        while i < len(nodes):
            n = nodes[i]
            if (n.kind == "wait"
                    and n.args.get("start_op") in ("irecv", "ibarrier")
                    and n.ir_pass is None):
                moved = 0
                while (i + 1 < len(nodes) and nodes[i + 1].kind == "local"
                       and n.idx not in nodes[i + 1].deps):
                    nodes[i], nodes[i + 1] = nodes[i + 1], nodes[i]
                    i += 1
                    moved += 1
                if moved:
                    n.ir_pass = "overlap_waits"
                    result.note(f"rank {w}: wait(idx={n.idx}) pushed past "
                                f"{moved} compute node(s)")
            i += 1
    return result


# -- the pipeline ------------------------------------------------------------


PASSES: Dict[str, Callable[[Epoch], PassResult]] = {
    "fuse_reduce_bcast": fuse_reduce_bcast,
    "batch_bcasts": batch_bcasts,
    "fuse_count_exchange": fuse_count_exchange,
    "coalesce_sends": coalesce_sends,
    "ring_to_sendrecv": ring_to_sendrecv,
    "overlap_waits": overlap_waits,
}

DEFAULT_PASSES: Tuple[str, ...] = tuple(PASSES)


def available_passes() -> Tuple[str, ...]:
    return DEFAULT_PASSES


class PassManager:
    """Runs an ordered pass pipeline over an epoch.

    Selection precedence: an explicit ``passes`` list wins, then
    ``REPRO_IR_PASSES`` (exact ordered list), then the default pipeline
    minus ``REPRO_IR_DISABLE``.
    """

    def __init__(self, passes: Optional[Sequence[str]] = None, *,
                 disable: Sequence[str] = (), env=None):
        if env is None:
            env = os.environ
        if passes is None and env.get(ENV_PASSES):
            passes = [p for p in env[ENV_PASSES].split(",") if p.strip()]
        disabled = set(disable)
        if env.get(ENV_DISABLE):
            disabled |= {p.strip() for p in env[ENV_DISABLE].split(",")
                         if p.strip()}
        selected = list(passes) if passes is not None else [
            p for p in DEFAULT_PASSES if p not in disabled
        ]
        for name in list(selected) + sorted(disabled):
            if name not in PASSES:
                raise RawUsageError(
                    f"unknown IR pass {name!r}; available: "
                    f"{', '.join(DEFAULT_PASSES)}"
                )
        self.pass_names: Tuple[str, ...] = tuple(
            p for p in selected if p not in disabled
        )

    def run(self, epoch: Epoch) -> List[PassResult]:
        """Apply the pipeline in order, mutating ``epoch`` in place."""
        return [PASSES[name](epoch) for name in self.pass_names]

"""Record / optimize / replay orchestration behind ``run_mpi(..., ir=...)``.

``ir="record"`` runs the program once on journaling communicators and
attaches the recorded :class:`~repro.mpi.ir.nodes.Epoch` to the result.
``ir="optimize"`` additionally runs the rewrite pipeline over a copy of the
epoch and replays the optimized graph on a second run, verifying every node
against the recording — the returned values are the *program's* values (from
the recording), and the attached :class:`IRReport` carries the optimized
epoch, per-pass results, and the replay's own :class:`RunResult` (whose op
counts and trace are what the IR benchmarks compare).
"""

from __future__ import annotations

import copy
import dataclasses
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence

from repro.mpi.errors import RawUsageError
from repro.mpi.ir.nodes import Epoch
from repro.mpi.ir.passes import PassManager, PassResult
from repro.mpi.ir.recorder import UnsupportedForIR, record_main
from repro.mpi.ir.replayer import IRReplayError, ReplayPlan, replay_main

MODES = ("record", "optimize")


@dataclass
class IRReport:
    """Everything the IR layer learned about one run."""

    mode: str
    #: the faithful recording
    epoch: Epoch
    #: the rewritten copy (``None`` in record mode)
    optimized: Optional[Epoch] = None
    #: per-pass outcomes, pipeline order
    passes: List[PassResult] = field(default_factory=list)
    #: the optimized replay's run result (``None`` in record mode)
    replay: Optional[Any] = None
    #: per-rank ``{verified, compilations, hits}`` replay statistics
    replay_stats: List[dict] = field(default_factory=list)

    def pass_rewrites(self) -> dict:
        return {p.name: p.rewrites for p in self.passes}

    def summary(self) -> dict:
        out = {"mode": self.mode, "recorded": self.epoch.summary()}
        if self.optimized is not None:
            out["optimized"] = self.optimized.summary()
            out["passes"] = self.pass_rewrites()
            out["verified"] = sum(s["verified"] for s in self.replay_stats)
            out["plan_cache"] = {
                "compilations": sum(s["compilations"]
                                    for s in self.replay_stats),
                "hits": sum(s["hits"] for s in self.replay_stats),
            }
        return out


def _assemble(num_ranks: int, exports: Sequence[dict]) -> Epoch:
    members: dict = {}
    unsupported: set = set()
    ops = []
    for export in exports:
        if export is None:
            raise IRReplayError(
                "recording run lost a rank's journal (rank died?)"
            )
        ops.append(export["nodes"])
        for comm_id, mem in export["members"].items():
            members.setdefault(comm_id, mem)
        unsupported |= export["unsupported"]
    return Epoch(num_ranks=num_ranks, ops=ops, members=members,
                 unsupported=unsupported)


def run_with_ir(fn: Callable[..., Any], num_ranks: int, *, mode: str,
                ir_passes: Optional[Sequence[str]] = None,
                args: Sequence[Any] = (), **kwargs) -> Any:
    """Record ``fn`` as an epoch and (optionally) optimize + replay it."""
    from repro.mpi.machine import run_mpi

    if mode not in MODES:
        raise RawUsageError(
            f"ir={mode!r} is not a mode; expected one of {MODES} (or 'off')"
        )
    for incompatible in ("faults", "fuzz_seed"):
        if kwargs.get(incompatible) is not None:
            raise RawUsageError(
                f"ir={mode!r} cannot be combined with {incompatible}: the "
                f"journal must be a deterministic transcript"
            )

    record = run_mpi(record_main, num_ranks, args=(fn, tuple(args)),
                     ir="off", **kwargs)
    epoch = _assemble(num_ranks, record.values)
    program_values = [export["value"] for export in record.values]
    report = IRReport(mode=mode, epoch=epoch)
    result = dataclasses.replace(record, values=program_values)
    result.ir = report

    if mode == "record":
        return result

    if epoch.unsupported:
        raise UnsupportedForIR(
            "epoch used ops the IR cannot replay faithfully: "
            + ", ".join(sorted(epoch.unsupported))
            + " (use ir='record' to inspect the journal)"
        )
    optimized = copy.deepcopy(epoch)
    report.optimized = optimized
    report.passes = PassManager(ir_passes).run(optimized)

    plan = ReplayPlan(schedule=optimized.ops, members=dict(optimized.members))
    replay = run_mpi(replay_main, num_ranks, args=(plan,), ir="off", **kwargs)
    report.replay = replay
    report.replay_stats = list(replay.values)
    return result

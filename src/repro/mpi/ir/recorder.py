"""Recording an epoch: a ``RawComm`` subclass that journals every raw op.

:class:`RecordingComm` is substituted for the plain raw communicator when a
run is started with ``run_mpi(fn, p, ir=...)``.  Every *public* raw call is
executed normally (``super()``) and journaled as one :class:`CommOp` node —
inputs snapshotted before the call, outputs after — so the recorded graph is
simultaneously a faithful transcript and an executable schedule.  The
*internal* point-to-point rounds of collective algorithms are deliberately
not recorded: a collective is one node, and its internal schedule is the
engine's business (the node pins which algorithm ran instead).

Value dependencies are recovered by object identity: each node registers its
result objects, and later nodes whose payloads are (or contain) a registered
object get a dependency edge.  Only container objects participate — interned
scalars would fabricate edges.

Ops the IR cannot replay faithfully (probe/iprobe whose answer depends on
timing, RMA windows, ULFM fault handling) are journaled as *unsupported*;
``ir="record"`` reports them, ``ir="optimize"`` refuses the run.
"""

from __future__ import annotations

from typing import Any, Hashable, Optional, Sequence

import numpy as np

from repro.mpi.constants import ANY_SOURCE, ANY_TAG
from repro.mpi.context import RawComm
from repro.mpi.datatypes import snapshot
from repro.mpi.ir.nodes import CommOp
from repro.mpi.ops import Op
from repro.mpi.requests import RawRequest


class UnsupportedForIR(RuntimeError):
    """The recorded epoch used ops the IR cannot replay faithfully."""


def _snap(value: Any) -> Any:
    return snapshot(value)


class Recorder:
    """One rank's journal of :class:`CommOp` nodes, in issue order."""

    def __init__(self, world_rank: int):
        self.world_rank = world_rank
        self.nodes: list[CommOp] = []
        self.unsupported: set[str] = set()
        #: comm id -> tuple of world ranks backing its local ranks
        self.members: dict[Hashable, tuple[int, ...]] = {}
        #: id(result object) -> index of the node that produced it
        self._producers: dict[int, int] = {}
        #: per-comm instance counter for collectives/nbc/management ops
        self._seq: dict[Hashable, int] = {}

    def register_comm(self, comm: RawComm) -> None:
        self.members.setdefault(comm.comm_id, tuple(comm.state.members))

    def next_seq(self, comm_id: Hashable) -> int:
        seq = self._seq.get(comm_id, 0)
        self._seq[comm_id] = seq + 1
        return seq

    def deps_of(self, *payloads: Any) -> tuple[int, ...]:
        """Dependency edges for a node's input payloads (identity-based)."""
        deps = []
        for payload in payloads:
            idx = self._producers.get(id(payload))
            if idx is not None:
                deps.append(idx)
            if isinstance(payload, (list, tuple)):
                for item in payload:
                    idx = self._producers.get(id(item))
                    if idx is not None:
                        deps.append(idx)
        return tuple(sorted(set(deps)))

    def note_result(self, idx: int, obj: Any) -> None:
        """Register ``obj`` (and its elements) as produced by node ``idx``."""
        if isinstance(obj, (np.ndarray, list, tuple, dict)):
            self._producers[id(obj)] = idx
            if isinstance(obj, (list, tuple)):
                for item in obj:
                    if isinstance(item, (np.ndarray, list, tuple, dict)):
                        self._producers[id(item)] = idx

    def add(self, comm: RawComm, kind: str, op: str, *,
            seq: Optional[int] = None, args: Optional[dict] = None,
            payload: Any = None, result: Any = None,
            deps: tuple[int, ...] = (), snap_result: bool = True) -> CommOp:
        node = CommOp(
            idx=len(self.nodes),
            rank=comm.rank,
            kind=kind,
            op=op,
            comm=comm.comm_id,
            seq=seq,
            args=dict(args) if args else {},
            payload=_snap(payload),
            result=_snap(result) if snap_result else result,
            deps=deps,
        )
        self.nodes.append(node)
        if result is not None:
            self.note_result(node.idx, result)
        return node

    def export(self) -> dict:
        """Picklable per-rank journal (rides back through any backend)."""
        return {
            "world_rank": self.world_rank,
            "nodes": self.nodes,
            "members": self.members,
            "unsupported": self.unsupported,
        }


class RecordingRequest(RawRequest):
    """Wraps a raw request so its completion is journaled as a wait node.

    The first successful ``wait()``/``test()`` appends one ``wait`` node
    whose ``args["start"]`` names the start node; wildcard receives
    back-patch their start node with the concretely matched source/tag, which
    is what lets the replayer re-issue them deterministically.
    """

    def __init__(self, inner: RawRequest, comm: "RecordingComm",
                 start: CommOp):
        self._inner = inner
        self._comm = comm
        self._start = start
        self._recorded = False

    def _record_wait(self, value: Any) -> None:
        if self._recorded:
            return
        self._recorded = True
        rec = self._comm.recorder
        if (self._start.op == "irecv" and isinstance(value, tuple)
                and len(value) == 2):
            _, status = value
            self._start.args["matched_source"] = status.source
            self._start.args["matched_tag"] = status.tag
        rec.add(self._comm, "wait", "wait",
                args={"start": self._start.idx, "start_op": self._start.op},
                result=value, deps=(self._start.idx,))

    def wait(self) -> Any:
        value = self._inner.wait()
        self._record_wait(value)
        return value

    def test(self) -> tuple[bool, Any]:
        done, value = self._inner.test()
        if done:
            self._record_wait(value)
        return done, value

    def cancel(self) -> bool:
        self._comm.recorder.unsupported.add("cancel")
        self._start.args["cancelled"] = True
        return self._inner.cancel()  # type: ignore[attr-defined]

    @property
    def cancelled(self) -> bool:
        return getattr(self._inner, "cancelled", False)

    def audit_state(self) -> str:
        return self._inner.audit_state()

    def audit_pending_recvs(self):
        return self._inner.audit_pending_recvs()


class RecordingComm(RawComm):
    """Raw communicator that journals every public op it executes."""

    def __init__(self, machine, state, world_rank: int, recorder: Recorder):
        super().__init__(machine, state, world_rank)
        self.recorder = recorder
        recorder.register_comm(self)

    # -- helpers -----------------------------------------------------------

    def _rec_coll(self, op: str, result: Any, *, payload: Any = None,
                  seq: int, args: Optional[dict] = None,
                  kind: str = "coll", extra_inputs: tuple = ()) -> None:
        self.recorder.add(
            self, kind, op, seq=seq, args=args, payload=payload,
            result=result,
            deps=self.recorder.deps_of(payload, *extra_inputs),
        )

    def _algo_name(self, op: str, *, payload: Any = None, hint=None) -> str:
        """The algorithm :meth:`_coll_algo` resolves for this call — observed
        via the engine's side-effect-free :meth:`peek` (plus the singleton
        fast path), so recording never double-fires fault hooks."""
        if self.state.size == 1:
            from repro.mpi.algorithms import SINGLETON

            algo = SINGLETON.get(op)
            if algo is not None:
                return algo.name
        engine = self.machine.engine
        scoped = self._coll_tuning.get(op)
        nbytes = 0
        if engine.size_sensitive(op, self.comm_id, scoped=scoped):
            from repro.mpi.tracing import _sum_payload_bytes

            if hint is not None:
                nbytes = int(hint())
            elif payload is not None:
                nbytes = _sum_payload_bytes(payload)
        return engine.peek(op, p=self.state.size, nbytes=nbytes,
                           comm_id=self.comm_id, scoped=scoped).name

    def _adopt(self, comm: Optional[RawComm]) -> Optional["RecordingComm"]:
        """Re-wrap a communicator returned by a management op."""
        if comm is None:
            return None
        wrapped = RecordingComm(comm.machine, comm.state, comm.world_rank,
                                self.recorder)
        return wrapped

    def _unsupported(self, op: str) -> None:
        self.recorder.unsupported.add(op)

    # -- local compute ------------------------------------------------------

    def compute(self, seconds: float) -> None:
        super().compute(seconds)
        self.recorder.add(self, "local", "compute",
                          args={"seconds": seconds})

    # -- point-to-point ------------------------------------------------------

    def send(self, payload: Any, dest: int, tag: int = 0) -> None:
        deps = self.recorder.deps_of(payload)
        super().send(payload, dest, tag)
        self.recorder.add(self, "p2p", "send",
                          args={"dest": dest, "tag": tag},
                          payload=payload, deps=deps)

    def ssend(self, payload: Any, dest: int, tag: int = 0) -> None:
        deps = self.recorder.deps_of(payload)
        super().ssend(payload, dest, tag)
        self.recorder.add(self, "p2p", "ssend",
                          args={"dest": dest, "tag": tag},
                          payload=payload, deps=deps)

    def isend(self, payload: Any, dest: int, tag: int = 0) -> RawRequest:
        deps = self.recorder.deps_of(payload)
        req = super().isend(payload, dest, tag)
        node = self.recorder.add(self, "p2p", "isend",
                                 args={"dest": dest, "tag": tag},
                                 payload=payload, deps=deps)
        return RecordingRequest(req, self, node)

    def issend(self, payload: Any, dest: int, tag: int = 0) -> RawRequest:
        deps = self.recorder.deps_of(payload)
        req = super().issend(payload, dest, tag)
        node = self.recorder.add(self, "p2p", "issend",
                                 args={"dest": dest, "tag": tag},
                                 payload=payload, deps=deps)
        return RecordingRequest(req, self, node)

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        payload, status = super().recv(source, tag)
        self.recorder.add(
            self, "p2p", "recv",
            args={"source": source, "tag": tag,
                  "matched_source": status.source,
                  "matched_tag": status.tag},
            result=(payload, status),
        )
        return payload, status

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        req = super().irecv(source, tag)
        node = self.recorder.add(self, "p2p", "irecv",
                                 args={"source": source, "tag": tag})
        return RecordingRequest(req, self, node)

    def sendrecv(self, payload: Any, dest: int, source: int = ANY_SOURCE, *,
                 sendtag: int = 0, recvtag: int = ANY_TAG):
        deps = self.recorder.deps_of(payload)
        out, status = super().sendrecv(payload, dest, source,
                                       sendtag=sendtag, recvtag=recvtag)
        self.recorder.add(
            self, "p2p", "sendrecv",
            args={"dest": dest, "source": source, "sendtag": sendtag,
                  "recvtag": recvtag, "matched_source": status.source,
                  "matched_tag": status.tag},
            payload=payload, result=(out, status), deps=deps,
        )
        return out, status

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        self._unsupported("probe")
        return super().probe(source, tag)

    def iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        self._unsupported("iprobe")
        return super().iprobe(source, tag)

    # -- synchronization -----------------------------------------------------

    def barrier(self) -> None:
        seq = self.recorder.next_seq(self.comm_id)
        algo = self._algo_name("barrier")
        super().barrier()
        self._rec_coll("barrier", None, seq=seq, args={"algorithm": algo})

    def ibarrier(self) -> RawRequest:
        seq = self.recorder.next_seq(self.comm_id)
        req = super().ibarrier()
        node = self.recorder.add(self, "nbc", "ibarrier", seq=seq)
        return RecordingRequest(req, self, node)

    # -- collectives ---------------------------------------------------------

    def bcast(self, payload: Any, root: int = 0) -> Any:
        seq = self.recorder.next_seq(self.comm_id)
        algo = self._algo_name("bcast")
        out = super().bcast(payload, root)
        self._rec_coll("bcast", out,
                       payload=payload if self.rank == root else None,
                       seq=seq, args={"root": root, "algorithm": algo})
        return out

    def gather(self, payload: Any, root: int = 0):
        seq = self.recorder.next_seq(self.comm_id)
        algo = self._algo_name("gather", payload=payload)
        out = super().gather(payload, root)
        self._rec_coll("gather", out, payload=payload, seq=seq,
                       args={"root": root, "algorithm": algo})
        return out

    def gatherv(self, sendbuf, recvcounts, root: int = 0):
        seq = self.recorder.next_seq(self.comm_id)
        algo = self._algo_name("gatherv", payload=sendbuf)
        out = super().gatherv(sendbuf, recvcounts, root)
        self._rec_coll("gatherv", out, payload=sendbuf, seq=seq,
                       args={"root": root, "algorithm": algo,
                             "recvcounts": _snap(recvcounts)},
                       extra_inputs=(recvcounts,))
        return out

    def scatter(self, payloads, root: int = 0):
        seq = self.recorder.next_seq(self.comm_id)
        algo = self._algo_name("scatter")
        out = super().scatter(payloads, root)
        self._rec_coll("scatter", out,
                       payload=payloads if self.rank == root else None,
                       seq=seq, args={"root": root, "algorithm": algo})
        return out

    def scatterv(self, sendbuf, sendcounts, root: int = 0):
        seq = self.recorder.next_seq(self.comm_id)
        algo = self._algo_name("scatterv")
        out = super().scatterv(sendbuf, sendcounts, root)
        self._rec_coll("scatterv", out,
                       payload=sendbuf if self.rank == root else None,
                       seq=seq, args={"root": root, "algorithm": algo,
                                      "sendcounts": _snap(sendcounts)})
        return out

    def allgather(self, payload: Any) -> list:
        seq = self.recorder.next_seq(self.comm_id)
        algo = self._algo_name("allgather", payload=payload)
        out = super().allgather(payload)
        self._rec_coll("allgather", out, payload=payload, seq=seq,
                       args={"algorithm": algo})
        return out

    def allgatherv(self, sendbuf, recvcounts):
        seq = self.recorder.next_seq(self.comm_id)
        algo = self._algo_name(
            "allgatherv",
            hint=lambda: int(np.sum(recvcounts)) * np.asarray(sendbuf).itemsize,
        )
        out = super().allgatherv(sendbuf, recvcounts)
        self._rec_coll("allgatherv", out, payload=sendbuf, seq=seq,
                       args={"algorithm": algo,
                             "recvcounts": _snap(recvcounts)},
                       extra_inputs=(recvcounts,))
        return out

    def alltoall(self, payloads) -> list:
        seq = self.recorder.next_seq(self.comm_id)
        algo = self._algo_name("alltoall", payload=payloads)
        out = super().alltoall(payloads)
        self._rec_coll("alltoall", out, payload=payloads, seq=seq,
                       args={"algorithm": algo})
        return out

    def alltoallv(self, sendbuf, sendcounts, recvcounts):
        seq = self.recorder.next_seq(self.comm_id)
        algo = self._algo_name(
            "alltoallv",
            hint=lambda: int(np.sum(sendcounts)) * np.asarray(sendbuf).itemsize,
        )
        out = super().alltoallv(sendbuf, sendcounts, recvcounts)
        self._rec_coll("alltoallv", out, payload=sendbuf, seq=seq,
                       args={"algorithm": algo,
                             "sendcounts": _snap(sendcounts),
                             "recvcounts": _snap(recvcounts)},
                       extra_inputs=(sendcounts, recvcounts))
        return out

    def alltoallw(self, send_blocks) -> list:
        seq = self.recorder.next_seq(self.comm_id)
        algo = self._algo_name("alltoallw", payload=send_blocks)
        out = super().alltoallw(send_blocks)
        self._rec_coll("alltoallw", out, payload=send_blocks, seq=seq,
                       args={"algorithm": algo})
        return out

    def reduce(self, value: Any, op: Op, root: int = 0) -> Any:
        seq = self.recorder.next_seq(self.comm_id)
        algo = self._algo_name("reduce", payload=value)
        out = super().reduce(value, op, root)
        self._rec_coll("reduce", out, payload=value, seq=seq,
                       args={"root": root, "op": op, "algorithm": algo})
        return out

    def allreduce(self, value: Any, op: Op) -> Any:
        seq = self.recorder.next_seq(self.comm_id)
        algo = self._algo_name("allreduce", payload=value)
        out = super().allreduce(value, op)
        self._rec_coll("allreduce", out, payload=value, seq=seq,
                       args={"op": op, "algorithm": algo})
        return out

    def scan(self, value: Any, op: Op) -> Any:
        seq = self.recorder.next_seq(self.comm_id)
        algo = self._algo_name("scan", payload=value)
        out = super().scan(value, op)
        self._rec_coll("scan", out, payload=value, seq=seq,
                       args={"op": op, "algorithm": algo})
        return out

    def exscan(self, value: Any, op: Op) -> Any:
        seq = self.recorder.next_seq(self.comm_id)
        algo = self._algo_name("exscan", payload=value)
        out = super().exscan(value, op)
        self._rec_coll("exscan", out, payload=value, seq=seq,
                       args={"op": op, "algorithm": algo})
        return out

    # -- non-blocking collectives -------------------------------------------

    def ibcast(self, payload: Any, root: int = 0):
        seq = self.recorder.next_seq(self.comm_id)
        req = super().ibcast(payload, root)
        node = self.recorder.add(self, "nbc", "ibcast", seq=seq,
                                 args={"root": root}, payload=payload,
                                 deps=self.recorder.deps_of(payload))
        return RecordingRequest(req, self, node)

    def iallreduce(self, value: Any, op: Op):
        seq = self.recorder.next_seq(self.comm_id)
        req = super().iallreduce(value, op)
        node = self.recorder.add(self, "nbc", "iallreduce", seq=seq,
                                 args={"op": op}, payload=value,
                                 deps=self.recorder.deps_of(value))
        return RecordingRequest(req, self, node)

    def iallgather(self, payload: Any):
        seq = self.recorder.next_seq(self.comm_id)
        req = super().iallgather(payload)
        node = self.recorder.add(self, "nbc", "iallgather", seq=seq,
                                 payload=payload,
                                 deps=self.recorder.deps_of(payload))
        return RecordingRequest(req, self, node)

    # -- neighborhood collectives ---------------------------------------------

    def neighbor_alltoall(self, payloads) -> list:
        seq = self.recorder.next_seq(self.comm_id)
        algo = self._algo_name("neighbor_alltoall")
        out = super().neighbor_alltoall(payloads)
        self._rec_coll("neighbor_alltoall", out, payload=payloads, seq=seq,
                       args={"algorithm": algo})
        return out

    def neighbor_alltoallv(self, sendbuf, sendcounts, recvcounts):
        seq = self.recorder.next_seq(self.comm_id)
        algo = self._algo_name("neighbor_alltoallv")
        out = super().neighbor_alltoallv(sendbuf, sendcounts, recvcounts)
        self._rec_coll("neighbor_alltoallv", out, payload=sendbuf, seq=seq,
                       args={"algorithm": algo,
                             "sendcounts": _snap(sendcounts),
                             "recvcounts": _snap(recvcounts)},
                       extra_inputs=(sendcounts, recvcounts))
        return out

    # -- communicator management ---------------------------------------------

    def dup(self) -> "RecordingComm":
        seq = self.recorder.next_seq(self.comm_id)
        inner = super().dup()
        wrapped = self._adopt(inner)
        self.recorder.add(self, "mgmt", "comm_dup", seq=seq,
                          args={"new_comm": inner.comm_id})
        return wrapped

    def split(self, color, key=None) -> Optional["RecordingComm"]:
        seq = self.recorder.next_seq(self.comm_id)
        inner = super().split(color, key)
        wrapped = self._adopt(inner)
        self.recorder.add(
            self, "mgmt", "comm_split", seq=seq,
            args={"color": color, "key": key,
                  "new_comm": inner.comm_id if inner is not None else None},
        )
        return wrapped

    def dist_graph_create_adjacent(self, sources, destinations
                                   ) -> "RecordingComm":
        seq = self.recorder.next_seq(self.comm_id)
        inner = super().dist_graph_create_adjacent(sources, destinations)
        wrapped = self._adopt(inner)
        self.recorder.add(
            self, "mgmt", "dist_graph_create_adjacent", seq=seq,
            args={"sources": tuple(sources),
                  "destinations": tuple(destinations),
                  "new_comm": inner.comm_id},
        )
        return wrapped

    # -- ops the IR does not model --------------------------------------------

    def win_create(self, local):
        self._unsupported("win_create")
        return super().win_create(local)

    def kill_self(self) -> None:
        self._unsupported("kill_self")
        super().kill_self()

    def revoke(self) -> None:
        self._unsupported("comm_revoke")
        super().revoke()

    def shrink(self, generation=0):
        self._unsupported("comm_shrink")
        return super().shrink(generation)

    def agree(self, flag: bool, generation=0) -> bool:
        self._unsupported("comm_agree")
        return super().agree(flag, generation)


def record_main(raw: RawComm, fn, user_args: Sequence[Any]) -> dict:
    """Per-rank recording entry: run ``fn`` on a journaling communicator.

    Returns a picklable dict so the journal rides back through any execution
    backend exactly like a normal return value.
    """
    recorder = Recorder(raw.world_rank)
    comm = RecordingComm(raw.machine, raw.state, raw.world_rank, recorder)
    value = fn(comm, *user_args)
    export = recorder.export()
    export["value"] = value
    return export

"""Replaying an (optimized) epoch through the call-plan cache.

The replayer walks one rank's node list in order and re-issues each raw op
with the recorded (post-rewrite) arguments.  Execution recipes are compiled
once per ``(op, signature)`` through :class:`repro.core.plans.PlanCache` —
the same cache the named-parameter layer uses — so a steady-state replay
does one handle lookup per node and zero re-validation: the IR rides the
paper's zero-overhead machinery instead of bypassing it.

Faithfulness is enforced, not assumed: every node that recorded a result is
re-verified with :func:`repro.mpi.ir.nodes.values_equal` (bit-level for
arrays and floats), and collective nodes are replayed under a scoped pin of
the *recorded* algorithm.  Any mismatch — a value that diverges, an
environment-forced algorithm that beats the pin, a management op deriving a
different communicator — raises :class:`IRReplayError` naming the node
instead of silently producing a different run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, List, Optional

import numpy as np

from repro.core.plans import PlanCache, PlanHandle
from repro.mpi.context import RawComm
from repro.mpi.ir.nodes import CommOp, values_equal

__all__ = ["IRReplayError", "ReplayPlan", "Replayer", "replay_main"]


class IRReplayError(RuntimeError):
    """Replay diverged from the recording (or could not be made faithful)."""


@dataclass
class ReplayPlan:
    """Picklable per-run replay input: the full schedule plus membership."""

    #: per-world-rank node lists (rewritten epoch order)
    schedule: List[List[CommOp]]
    #: comm id -> tuple of world ranks backing its local ranks
    members: Dict[Hashable, tuple] = field(default_factory=dict)


def _describe(node: CommOp) -> str:
    return (f"node idx={node.idx} op={node.op!r} kind={node.kind!r} "
            f"comm={node.comm!r} seq={node.seq!r}")


def _verify(node: CommOp, value: Any) -> None:
    if not values_equal(value, node.result):
        raise IRReplayError(
            f"replay diverged at {_describe(node)}: replayed value "
            f"{value!r} != recorded {node.result!r}"
        )


def _concrete(args: dict, matched: str, fallback: str) -> Any:
    """The deterministic peer/tag to re-issue a receive with."""
    value = args.get(matched)
    if value is None or (isinstance(value, int) and value < 0):
        value = args[fallback]
    return value


class Replayer:
    """One rank's replay engine: node list in, verified execution out."""

    def __init__(self, raw: RawComm, plan: ReplayPlan):
        self.plan = plan
        #: comm id -> live RawComm (management nodes extend this)
        self.comms: Dict[Hashable, RawComm] = {raw.comm_id: raw}
        #: start-node idx -> in-flight request (consumed by wait nodes)
        self.pending: Dict[int, Any] = {}
        self.cache = PlanCache()
        self.verified = 0

    # -- driving -----------------------------------------------------------

    def run(self) -> dict:
        world_rank = next(iter(self.comms.values())).world_rank
        for node in self.plan.schedule[world_rank]:
            self.execute(node)
        if self.pending:
            raise IRReplayError(
                f"replay finished with {len(self.pending)} request(s) never "
                f"waited on (start idxs {sorted(self.pending)})"
            )
        return {
            "verified": self.verified,
            "compilations": self.cache.compilations,
            "hits": self.cache.hits,
        }

    def execute(self, node: CommOp) -> None:
        comm = self.comms.get(node.comm)
        if comm is None:
            raise IRReplayError(
                f"{_describe(node)} targets a communicator the replay never "
                f"derived"
            )
        handle = PlanHandle("ir:" + node.op, (
            node.kind,
            node.args.get("algorithm"),
            tuple(sorted(node.args)),
            node.payload is not None,
        ))
        recipe = self.cache.compiled(handle, lambda: self._compile(node))
        comm._ir_pass = node.ir_pass
        try:
            recipe(comm, node)
        finally:
            comm._ir_pass = None

    # -- recipe compilation (once per signature, via the plan cache) -------

    def _compile(self, node: CommOp) -> Callable[[RawComm, CommOp], None]:
        kind = node.kind
        if kind == "local":
            return self._run_local
        if kind == "p2p":
            return self._compile_p2p(node)
        if kind == "coll":
            return self._compile_coll(node)
        if kind == "nbc":
            return self._compile_nbc(node)
        if kind == "wait":
            return self._run_wait
        if kind == "mgmt":
            return self._compile_mgmt(node)
        raise IRReplayError(f"{_describe(node)}: unknown node kind")

    def _run_local(self, comm: RawComm, node: CommOp) -> None:
        comm.compute(node.args["seconds"])

    # -- point-to-point ----------------------------------------------------

    def _compile_p2p(self, node: CommOp) -> Callable[[RawComm, CommOp], None]:
        op = node.op
        if op in ("send", "ssend"):
            fn_name = op

            def run_send(comm: RawComm, n: CommOp) -> None:
                getattr(comm, fn_name)(n.payload, n.args["dest"],
                                       n.args["tag"])
            return run_send
        if op in ("isend", "issend"):
            fn_name = op

            def run_isend(comm: RawComm, n: CommOp) -> None:
                self.pending[n.idx] = getattr(comm, fn_name)(
                    n.payload, n.args["dest"], n.args["tag"])
            return run_isend
        if op == "recv":
            def run_recv(comm: RawComm, n: CommOp) -> None:
                out = comm.recv(_concrete(n.args, "matched_source", "source"),
                                _concrete(n.args, "matched_tag", "tag"))
                _verify(n, out)
                self.verified += 1
            return run_recv
        if op == "irecv":
            def run_irecv(comm: RawComm, n: CommOp) -> None:
                self.pending[n.idx] = comm.irecv(
                    _concrete(n.args, "matched_source", "source"),
                    _concrete(n.args, "matched_tag", "tag"))
            return run_irecv
        if op == "sendrecv":
            def run_sendrecv(comm: RawComm, n: CommOp) -> None:
                out = comm.sendrecv(
                    n.payload, n.args["dest"],
                    _concrete(n.args, "matched_source", "source"),
                    sendtag=n.args["sendtag"],
                    recvtag=_concrete(n.args, "matched_tag", "recvtag"))
                _verify(n, out)
                self.verified += 1
            return run_sendrecv
        raise IRReplayError(f"{_describe(node)}: unreplayable p2p op")

    # -- collectives -------------------------------------------------------

    def _pin_algorithm(self, comm: RawComm, node: CommOp) -> None:
        """Force the recorded algorithm via a rank-local scoped rule.

        Scoped rules shadow tuning tables and policies but *not* forced
        selection (``REPRO_COLL_*`` / engine overrides), so a forced
        environment that disagrees with the recording is detected here and
        refused — replaying a binomial-fused node through a linear schedule
        would change message order and float rounding.
        """
        algo = node.args.get("algorithm")
        if algo is None or comm.size == 1:
            return
        scoped = ((None, algo),)
        picked = comm.machine.engine.peek(
            node.op, p=comm.size, comm_id=comm.comm_id, scoped=scoped).name
        if picked != algo:
            raise IRReplayError(
                f"{_describe(node)} recorded algorithm {algo!r} but the "
                f"engine forces {picked!r} (REPRO_COLL_* override?); refusing "
                f"an unfaithful replay"
            )
        comm._coll_tuning[node.op] = scoped

    def _compile_coll(self, node: CommOp) -> Callable[[RawComm, CommOp], None]:
        op = node.op
        post_concat = node.args.get("post") == "concat"
        has_root = "root" in node.args
        has_op = "op" in node.args

        def call(comm: RawComm, n: CommOp) -> Any:
            if op == "barrier":
                return comm.barrier()
            if op == "bcast":
                return comm.bcast(n.payload, n.args["root"])
            if op == "gatherv":
                return comm.gatherv(n.payload, n.args["recvcounts"],
                                    n.args["root"])
            if op == "scatterv":
                return comm.scatterv(n.payload, n.args["sendcounts"],
                                     n.args["root"])
            if op == "allgatherv":
                return comm.allgatherv(n.payload, n.args["recvcounts"])
            if op == "alltoallv":
                return comm.alltoallv(n.payload, n.args["sendcounts"],
                                      n.args["recvcounts"])
            if op == "neighbor_alltoallv":
                return comm.neighbor_alltoallv(
                    n.payload, n.args["sendcounts"], n.args["recvcounts"])
            if has_op and has_root:  # reduce
                return getattr(comm, op)(n.payload, n.args["op"],
                                         n.args["root"])
            if has_op:  # allreduce / scan / exscan
                return getattr(comm, op)(n.payload, n.args["op"])
            if has_root:  # gather / scatter
                return getattr(comm, op)(n.payload, n.args["root"])
            # allgather / alltoall / alltoallw / neighbor_alltoall
            return getattr(comm, op)(n.payload)

        def run_coll(comm: RawComm, n: CommOp) -> None:
            self._pin_algorithm(comm, n)
            out = call(comm, n)
            if post_concat:
                out = np.concatenate(out)
            if n.result is not None or op not in ("barrier",):
                _verify(n, out)
                self.verified += 1
        return run_coll

    # -- non-blocking collectives ------------------------------------------

    def _compile_nbc(self, node: CommOp) -> Callable[[RawComm, CommOp], None]:
        op = node.op

        def run_nbc(comm: RawComm, n: CommOp) -> None:
            if op == "ibarrier":
                req = comm.ibarrier()
            elif op == "ibcast":
                req = comm.ibcast(n.payload, n.args["root"])
            elif op == "iallreduce":
                req = comm.iallreduce(n.payload, n.args["op"])
            elif op == "iallgather":
                req = comm.iallgather(n.payload)
            else:
                raise IRReplayError(f"{_describe(n)}: unreplayable nbc op")
            self.pending[n.idx] = req
        return run_nbc

    # -- waits -------------------------------------------------------------

    def _run_wait(self, comm: RawComm, node: CommOp) -> None:
        req = self.pending.pop(node.args["start"], None)
        if req is None:
            raise IRReplayError(
                f"{_describe(node)} waits on start idx "
                f"{node.args['start']} with no in-flight request"
            )
        value = req.wait()
        _verify(node, value)
        self.verified += 1

    # -- communicator management -------------------------------------------

    def _compile_mgmt(self, node: CommOp) -> Callable[[RawComm, CommOp], None]:
        op = node.op

        def run_mgmt(comm: RawComm, n: CommOp) -> None:
            if op == "comm_dup":
                derived = comm.dup()
            elif op == "comm_split":
                derived = comm.split(n.args["color"], n.args["key"])
            elif op == "dist_graph_create_adjacent":
                derived = comm.dist_graph_create_adjacent(
                    list(n.args["sources"]), list(n.args["destinations"]))
            else:
                raise IRReplayError(f"{_describe(n)}: unreplayable mgmt op")
            recorded = n.args["new_comm"]
            derived_id = derived.comm_id if derived is not None else None
            if derived_id != recorded:
                raise IRReplayError(
                    f"{_describe(n)} derived communicator {derived_id!r}, "
                    f"recording expected {recorded!r}"
                )
            if derived is not None:
                self.comms[derived.comm_id] = derived
        return run_mgmt


def replay_main(raw: RawComm, plan: ReplayPlan) -> dict:
    """Per-rank replay entry for :func:`repro.mpi.machine.run_mpi`."""
    return Replayer(raw, plan).run()

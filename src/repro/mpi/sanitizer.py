"""MPIsan: finalize-time resource auditing and schedule fuzzing.

The paper's safety claim for non-blocking communication (§III-E) is that the
bindings' ownership-tracking results make it *hard* to leak requests or touch
in-flight buffers — but nothing in the runtime verified that every rank
actually completes its requests, drains its mailboxes, and releases its
buffer poisons.  This module closes that gap with two tools:

**Resource auditor.**  When a run is sanitized (``run_mpi(...,
sanitize=True)`` or ``REPRO_SANITIZE=1``), the machine carries a
:class:`ResourceAuditor` that tracks every raw request, posted receive,
unexpected-queue envelope, buffer poison, synchronous-send envelope,
passive-target RMA lock, and cluster-service communicator lease
(:mod:`repro.service`), each with a creation backtrace.  At run teardown the
auditor sweeps the machine and produces a :class:`LeakReport`; a clean run
with leftover resources raises :class:`ResourceLeakError` (the report rides
on the exception), and when tracing is enabled each leak also becomes a
``leak:<kind>`` :class:`~repro.mpi.tracing.TraceEvent` so it shows up in the
Chrome-trace export next to the byte accounting.

**Schedule fuzzer.**  :class:`ScheduleFuzzer` is a seeded perturbation layer
over the real-time schedule: mailbox deliveries are delayed by small
randomized-but-deterministic amounts and poll wakeups are jittered.  The
random streams are keyed by *thread name* (rank threads are named
``rank-<r>``), so the same seed draws the same per-rank delay sequence on
every run — virtual time and results are unaffected; only the interleaving
of the underlying real-time schedule changes.  This is what shakes out
matching races such as the ``Mailbox.cancel`` message-loss bug.
:func:`minimize_failing_seeds` is the companion workflow helper: scan a seed
range, return the failing seeds (smallest first) for a deterministic repro.

Neither tool costs anything when disabled: the machine holds the
:data:`NULL_AUDITOR` singleton (every hook a no-op) and no fuzzer.
"""

from __future__ import annotations

import random
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Iterable, Optional, Sequence

from repro.mpi.errors import RawMpiError

#: leak kinds the auditor can report
LEAK_KINDS = (
    "request",          # a raw request (irecv/issend/ibarrier/i-collective) never completed
    "ssend_unmatched",  # a synchronous send whose message no receive ever matched
    "posted_recv",      # a posted receive left in a mailbox's matching queue
    "unexpected",       # an envelope left in a mailbox's unexpected queue
    "poison",           # a send-buffer poison (read-only flag) never released
    "rma_lock",         # a passive-target window lock never unlocked
    "lease",            # a cluster-service communicator lease never returned
)


@dataclass(frozen=True)
class LeakRecord:
    """One leaked communication resource, attributed to its creation site."""

    #: one of :data:`LEAK_KINDS`
    kind: str
    #: the raw operation that created the resource (e.g. ``"irecv"``)
    op: str
    #: world rank / communicator-local rank that owns the resource
    world_rank: int
    rank: int
    #: communicator the resource belongs to
    comm: Hashable
    #: communicator-local peer rank, when one is known (-1 = wildcard)
    peer: Optional[int] = None
    tag: Optional[int] = None
    nbytes: int = 0
    #: creation backtrace, innermost frame first (``file:line in function``)
    origin: tuple[str, ...] = ()
    detail: str = ""

    def describe(self) -> str:
        parts = [f"{self.kind}: {self.op} on comm {self.comm!r} "
                 f"rank {self.rank} (world {self.world_rank})"]
        if self.peer is not None:
            parts.append(f"peer {self.peer}")
        if self.tag is not None:
            parts.append(f"tag {self.tag}")
        if self.nbytes:
            parts.append(f"{self.nbytes} bytes")
        if self.detail:
            parts.append(self.detail)
        line = ", ".join(parts)
        if self.origin:
            line += "\n      created at " + "\n                 ".join(self.origin[:4])
        return line


class LeakReport:
    """The auditor's verdict on one run: every resource left behind."""

    def __init__(self, records: Sequence[LeakRecord] = ()):
        self.records: list[LeakRecord] = list(records)

    def __bool__(self) -> bool:
        return bool(self.records)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def by_kind(self) -> dict[str, list[LeakRecord]]:
        out: dict[str, list[LeakRecord]] = {}
        for rec in self.records:
            out.setdefault(rec.kind, []).append(rec)
        return out

    def summary(self) -> str:
        """Multi-line human-readable report (the sanitizer's error message)."""
        if not self.records:
            return "MPIsan: no leaked communication resources"
        counts = ", ".join(f"{len(v)} {k}" for k, v in sorted(self.by_kind().items()))
        lines = [f"MPIsan: {len(self.records)} leaked communication "
                 f"resource(s) at finalize ({counts})"]
        for i, rec in enumerate(self.records, 1):
            lines.append(f"  [{i}] {rec.describe()}")
        return "\n".join(lines)


class ResourceLeakError(RawMpiError):
    """A sanitized run finished with leaked communication resources.

    The :class:`LeakReport` is available as :attr:`report`.
    """

    def __init__(self, report: LeakReport):
        self.report = report
        super().__init__(report.summary())


def _capture_origin(skip: int = 2, limit: int = 8) -> tuple[str, ...]:
    """Cheap creation backtrace: ``file:line in function`` frame summaries."""
    try:
        frame = sys._getframe(skip)
    except ValueError:  # pragma: no cover - shallow stack
        return ()
    parts: list[str] = []
    while frame is not None and len(parts) < limit:
        code = frame.f_code
        parts.append(f"{code.co_filename}:{frame.f_lineno} in {code.co_name}")
        frame = frame.f_back
    return tuple(parts)


class NullAuditor:
    """Disabled auditor: every tracking hook is a no-op (the default)."""

    enabled = False

    def origin(self) -> tuple[str, ...]:
        return ()

    def track_request(self, req, comm, *, op: str, peer: Optional[int] = None,
                      tag: Optional[int] = None, nbytes: int = 0) -> None:
        pass

    def track_poison(self, poison, comm, *, op: str) -> None:
        pass

    def track_rma_lock(self, state, target: int, comm, *, op: str = "win_lock") -> None:
        pass

    def release_rma_lock(self, state, target: int, comm) -> None:
        pass

    def track_lease(self, lease, *, comm: Hashable, world_rank: int = 0,
                    rank: int = 0, detail: str = "") -> None:
        pass

    def collect(self, machine) -> LeakReport:
        return LeakReport()


#: Singleton disabled auditor shared by all unsanitized machines.
NULL_AUDITOR = NullAuditor()


class ResourceAuditor:
    """Tracks the lifecycle of every leak-prone communication resource.

    Registration happens at creation sites (``RawComm.irecv``, the
    non-blocking collectives, the bindings' poison sites, RMA locks); the
    matching *release* is observed passively through each resource's own
    state (``audit_state()`` on requests, ``released`` on poisons, the
    mailbox queues themselves), so the hot completion paths pay nothing.
    :meth:`collect` runs once at machine teardown and sweeps both the
    tracked registries and every mailbox of every communicator.
    """

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        #: tracked raw requests: (request, attribution dict)
        self._requests: list[tuple[Any, dict]] = []
        #: tracked buffer poisons: (Poison, attribution dict)
        self._poisons: list[tuple[Any, dict]] = []
        #: held passive-target locks: (id(window state), target, world_rank) -> info
        self._rma_locks: dict[tuple[int, int, int], dict] = {}
        #: tracked communicator leases: (lease object, attribution dict)
        self._leases: list[tuple[Any, dict]] = []

    # -- registration hooks (called from the runtime's creation sites) -----

    def origin(self) -> tuple[str, ...]:
        """Creation backtrace for the caller's caller (stamped on resources)."""
        return _capture_origin(skip=2)

    def _attribution(self, comm, *, op: str, peer: Optional[int],
                     tag: Optional[int], nbytes: int) -> dict:
        return {
            "op": op,
            "world_rank": comm.world_rank,
            "rank": comm.rank,
            "comm": comm.comm_id,
            "peer": peer,
            "tag": tag,
            "nbytes": nbytes,
            "origin": _capture_origin(skip=3),
        }

    def track_request(self, req, comm, *, op: str, peer: Optional[int] = None,
                      tag: Optional[int] = None, nbytes: int = 0) -> None:
        """Register a raw request that must complete (or cancel) before finalize."""
        info = self._attribution(comm, op=op, peer=peer, tag=tag, nbytes=nbytes)
        with self._lock:
            self._requests.append((req, info))

    def track_poison(self, poison, comm, *, op: str) -> None:
        """Register an in-flight buffer poison that must be released."""
        info = self._attribution(comm, op=op, peer=None, tag=None,
                                 nbytes=getattr(poison, "nbytes", 0))
        with self._lock:
            self._poisons.append((poison, info))

    def track_rma_lock(self, state, target: int, comm, *, op: str = "win_lock") -> None:
        """Register an acquired passive-target lock epoch."""
        info = self._attribution(comm, op=op, peer=target, tag=None, nbytes=0)
        with self._lock:
            self._rma_locks[(id(state), target, comm.world_rank)] = info

    def release_rma_lock(self, state, target: int, comm) -> None:
        with self._lock:
            self._rma_locks.pop((id(state), target, comm.world_rank), None)

    def track_lease(self, lease, *, comm: Hashable, world_rank: int = 0,
                    rank: int = 0, detail: str = "") -> None:
        """Register a cluster-service communicator lease.

        The release is observed passively through ``lease.returned`` (the
        same discipline as buffer poisons), so returning a lease costs the
        service nothing on behalf of the auditor.  ``comm`` is the leased
        communicator's id; ``world_rank`` attributes the leak to a rank for
        the report/trace (leases are cluster-level, so the service passes
        the pool's coordinating rank).
        """
        info = {
            "op": getattr(lease, "op", "lease"),
            "world_rank": world_rank,
            "rank": rank,
            "comm": comm,
            "peer": None,
            "tag": None,
            "nbytes": 0,
            "origin": _capture_origin(skip=2),
            "detail": detail,
        }
        with self._lock:
            self._leases.append((lease, info))

    # -- finalize-time sweep ------------------------------------------------

    def collect(self, machine) -> LeakReport:
        """Sweep the machine for leaked resources at run teardown."""
        with self._lock:
            requests = list(self._requests)
            poisons = list(self._poisons)
            rma_locks = list(self._rma_locks.values())
            leases = list(self._leases)
        records: list[LeakRecord] = []

        # Posted receives owned by tracked requests are reported under the
        # request (with its op name), not a second time by the mailbox sweep.
        claimed_prs: set[int] = set()
        for req, info in requests:
            for pr in _pending_recvs_of(req):
                claimed_prs.add(id(pr))
            state = _request_state(req)
            if state == "unmatched":
                records.append(LeakRecord(
                    kind="ssend_unmatched",
                    detail="the synchronous send was never matched by a receive",
                    **info))
            elif state == "pending":
                records.append(LeakRecord(
                    kind="request",
                    detail="request never completed (wait/test) nor cancelled",
                    **info))

        for poison, info in poisons:
            if not getattr(poison, "released", True):
                records.append(LeakRecord(
                    kind="poison",
                    detail="send buffer still read-only (poison never released)",
                    **info))

        for info in rma_locks:
            records.append(LeakRecord(
                kind="rma_lock", detail="passive-target lock never unlocked",
                **info))

        for lease, info in leases:
            if not getattr(lease, "returned", True):
                records.append(LeakRecord(kind="lease", **info))

        records.extend(self._sweep_mailboxes(machine, claimed_prs))
        return LeakReport(records)

    def _sweep_mailboxes(self, machine, claimed_prs: set[int]) -> list[LeakRecord]:
        records: list[LeakRecord] = []
        with machine._registry_lock:
            comm_states = list(machine._comms.values())
        for state in comm_states:
            for local, mb in state.mailboxes.items():
                posted, unexpected = mb.audit_snapshot()
                world = state.members[local]
                for pr in posted:
                    if id(pr) in claimed_prs or pr.cancelled:
                        continue
                    records.append(LeakRecord(
                        kind="posted_recv", op="recv", world_rank=world,
                        rank=local, comm=state.comm_id, peer=pr.source,
                        tag=pr.tag, origin=getattr(pr, "origin", ()),
                        detail="posted receive never matched, waited, or cancelled"))
                for env in unexpected:
                    records.append(LeakRecord(
                        kind="unexpected", op="message", world_rank=world,
                        rank=local, comm=state.comm_id, peer=env.source,
                        tag=env.tag, nbytes=env.nbytes,
                        origin=getattr(env, "origin", ()),
                        detail="delivered envelope never received (undrained "
                               "unexpected queue)"))
        return records


def _request_state(req) -> str:
    """A request's lifecycle state, observed without side effects."""
    audit = getattr(req, "audit_state", None)
    if audit is None:  # unknown request type: assume well-behaved
        return "completed"
    return audit()


def _pending_recvs_of(req) -> tuple:
    hook = getattr(req, "audit_pending_recvs", None)
    return hook() if hook is not None else ()


# -- schedule fuzzing --------------------------------------------------------


class ScheduleFuzzer:
    """Seeded, deterministic perturbation of the real-time schedule.

    Each thread draws from its own :class:`random.Random` stream seeded by
    ``(seed, thread name)``.  Rank threads have stable names (``rank-<r>``),
    so a given seed replays the same per-rank delay/jitter sequence run after
    run — the determinism contract the seed-minimization workflow relies on.

    Two perturbation points:

    - :meth:`pause` — called by :meth:`Mailbox.deposit
      <repro.mpi.p2p.Mailbox.deposit>` (delivery delays) and at rank-thread
      start (spawn ordering); sleeps a small random real-time amount with
      probability one half.
    - :meth:`jitter` — called by :class:`~repro.mpi.waiting.Backoff` to
      perturb poll-wakeup timeouts, reordering which waiter wakes first.

    Virtual clocks and results are unaffected: only *real-time* interleaving
    changes, which is exactly the nondeterminism a matching race depends on.
    """

    def __init__(self, seed: int, max_delay: float = 0.002):
        self.seed = int(seed)
        self.max_delay = max_delay
        self._streams: dict[str, random.Random] = {}
        self._lock = threading.Lock()

    def _rng(self) -> random.Random:
        name = threading.current_thread().name
        with self._lock:
            rng = self._streams.get(name)
            if rng is None:
                rng = self._streams[name] = random.Random(f"{self.seed}:{name}")
            return rng

    def pause(self, point: str = "") -> None:
        """Maybe sleep a small seed-determined amount at a delivery point."""
        rng = self._rng()
        if rng.random() < 0.5:
            time.sleep(rng.random() * self.max_delay)

    def jitter(self, timeout: float) -> float:
        """Perturb a poll-wakeup timeout (0.25×–1.75×, floored at 0.1 ms)."""
        return max(timeout * (0.25 + 1.5 * self._rng().random()), 1e-4)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ScheduleFuzzer(seed={self.seed})"


def minimize_failing_seeds(run: Callable[[int], Any], seeds: Iterable[int],
                           *, stop_after: Optional[int] = None,
                           ) -> list[int]:
    """Run ``run(seed)`` across ``seeds``; return the failing seeds, smallest first.

    ``run`` fails by raising (any exception is caught and counted as a
    failure for that seed).  ``stop_after`` bounds the scan: stop once that
    many failing seeds were found — with an ascending seed range the first
    failure is already the minimal one.  This is the seed-minimization
    workflow for fuzz-marked tests: scan a seed matrix once, then pin the
    smallest failing seed as a deterministic regression.
    """
    failing: list[int] = []
    for seed in seeds:
        try:
            run(seed)
        except Exception:
            failing.append(seed)
            if stop_after is not None and len(failing) >= stop_after:
                break
    return sorted(failing)


def env_sanitize_default() -> bool:
    """Whether ``REPRO_SANITIZE`` asks for sanitized runs (``1``/truthy)."""
    import os

    return os.environ.get("REPRO_SANITIZE", "").strip() not in ("", "0", "false")


def env_fuzz_seed_default() -> Optional[int]:
    """The ``REPRO_FUZZ_SEED`` environment seed, if one is set."""
    import os

    raw = os.environ.get("REPRO_FUZZ_SEED", "").strip()
    return int(raw) if raw else None

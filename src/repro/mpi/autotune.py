"""Online autotuning of collective algorithms (Open MPI ``coll_tuned`` style).

The engine's precedence chain has had an empty slot since PR 2: the
per-communicator tuning table sits between forced overrides and the
policies, but nothing ever filled it automatically.  This module closes the
loop between the simulator's closed-form α-β costs and *measured* reality:

1. **Harvest** — an :class:`AutoTuner` collects per-``(op, algorithm, p,
   nbytes)`` timings, either passively from any traced run
   (:meth:`AutoTuner.observe` reads
   :meth:`~repro.mpi.tracing.TraceRecorder.collective_samples`) or actively
   via :meth:`AutoTuner.sweep`, which forces each registered algorithm over
   a payload × communicator grid.  Virtual-clock samples are deterministic;
   a ``clock="wall"`` tuner times real process-backend runs instead.
2. **Fit** — measured timings are regressed onto the registered cost
   formulas by linear least squares
   (:func:`repro.mpi.costmodel.fit_alpha_beta`), yielding per-machine
   ``(alpha, beta, overhead)`` parameters with a relative-RMS residual that
   says how well the closed forms explain this machine.
3. **Synthesize** — per ``(op, p)``, the measured winner at each swept size
   becomes a size-bucketed :data:`~repro.mpi.engine.TuningRule` list
   (inclusive thresholds at geometric midpoints between adjacent swept
   sizes, catch-all on the largest), installed with
   ``source="learned"`` provenance so
   :meth:`~repro.mpi.engine.CollectiveEngine.explain` can attribute every
   decision.
4. **Persist** — tables and raw samples round-trip through JSON
   (``~/.repro/tuning/<machine-key>-<clock>.json`` by default), so a second
   run starts warm: ``run_mpi(fn, p, autotune=path)`` (or
   ``REPRO_AUTOTUNE=path``) installs the learned table before the run and
   folds the run's trace back into the store afterwards.

``python -m repro.mpi.autotune`` exposes the loop as a CLI
(``sweep`` / ``fit`` / ``inspect`` / ``export`` / ``check``); the ``check``
subcommand is the CI gate asserting a learned table never loses to the seed
defaults on the committed benchmark grid.

Known limits (DESIGN §14): tables are exact-``p`` (no interpolation across
communicator sizes), rooted collectives resolve size-blind by design so only
their catch-all bucket can ever match, and wall-clock fits on the process
backend include fork/pickle startup — their residual is reported precisely
so you know not to trust them too far.
"""

from __future__ import annotations

import json
import os
import platform
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping, Optional, Sequence

import numpy as np

from repro.mpi import algorithms as _registry
from repro.mpi.costmodel import AlphaBetaFit, CostModel, fit_alpha_beta, linear_coefficients
from repro.mpi.engine import CollectiveEngine, TuningRule
from repro.mpi.errors import RawUsageError
from repro.mpi.machine import WORLD_ID, RunResult
from repro.mpi.ops import SUM

ENV_AUTOTUNE = "REPRO_AUTOTUNE"
ENV_AUTOTUNE_DIR = "REPRO_AUTOTUNE_DIR"

#: ops whose resolve-time ``nbytes`` hint is reconstructible from trace
#: events (the symmetric, size-hinted collectives).  Rooted ops resolve with
#: ``nbytes=0`` on purpose — only the root knows the payload — so learned
#: size buckets could never match them and they are not harvested.
SIZE_HINTED_OPS = frozenset({
    "allgather", "allgatherv", "allreduce", "alltoall", "alltoallv",
    "gather", "gatherv", "reduce", "scan", "exscan",
})

PERSIST_VERSION = 1


@dataclass(frozen=True)
class Sample:
    """One measured collective instance."""

    op: str
    algorithm: str
    p: int
    nbytes: int
    seconds: float

    def key(self) -> tuple:
        return (self.op, self.algorithm, self.p, self.nbytes, self.seconds)


def machine_key() -> str:
    """Stable identifier naming the machine a table was fitted on."""
    return f"{platform.node() or 'local'}-{platform.machine() or 'any'}"


def default_path(clock: str = "virtual") -> Path:
    """Default persistence path: ``~/.repro/tuning/<machine-key>-<clock>.json``.

    ``REPRO_AUTOTUNE_DIR`` overrides the directory (CI containers have no
    durable home)."""
    base = Path(os.environ.get(ENV_AUTOTUNE_DIR, "~/.repro/tuning"))
    return base.expanduser() / f"{machine_key()}-{clock}.json"


# -- sweep workloads ----------------------------------------------------------
#
# Module-level (picklable for the process backend) and SPMD-symmetric (the
# reprolint gate analyzes this file).  Payload values are derived from
# (seed, rank) so a pinned seed reproduces the sweep bit-for-bit; values
# never affect virtual timings, only the wire makes time pass.


def _payload(width: int, rank: int, seed: int) -> np.ndarray:
    return np.arange(width, dtype=np.int64) * (rank + 3) + rank + seed


def _sweep_allgather(comm, width: int, seed: int) -> None:
    comm.allgather(_payload(width, comm.rank, seed))


def _sweep_allreduce(comm, width: int, seed: int) -> None:
    comm.allreduce(_payload(width, comm.rank, seed), SUM)


def _sweep_alltoallv(comm, width: int, seed: int) -> None:
    p = comm.size
    buf = np.concatenate(
        [_payload(width, comm.rank * p + dst, seed) for dst in range(p)])
    comm.alltoallv(buf, [width] * p, [width] * p)


SWEEP_WORKLOADS = {
    "allgather": _sweep_allgather,
    "allreduce": _sweep_allreduce,
    "alltoallv": _sweep_alltoallv,
}

#: default sweep grid — matches benchmarks/bench_coll_algorithms.py
SWEEP_PS = (4, 8)
SWEEP_WIDTHS = (16, 1024, 65536)  # int64 elements: 128 B, 8 KiB, 512 KiB
ITEM = 8


def _hint_bytes(op: str, p: int, width: int) -> int:
    """The engine's ``nbytes`` hint for one sweep workload call."""
    if op == "alltoallv":
        return p * width * ITEM  # hint convention: sum of send counts
    return width * ITEM


class AutoTuner:
    """Measure → fit → synthesize → install → persist, per machine.

    ``clock`` selects the measurement domain: ``"virtual"`` (default)
    harvests the deterministic per-rank virtual clocks from traces;
    ``"wall"`` times whole runs with ``time.perf_counter`` (the only honest
    option on the process backend, whose per-event wall times don't exist).
    A tuner never mixes domains — samples carry whichever clock it was
    constructed with.
    """

    def __init__(self, *, path: Optional[os.PathLike | str] = None,
                 cost_model: Optional[CostModel] = None,
                 clock: str = "virtual",
                 machine: Optional[str] = None):
        if clock not in ("virtual", "wall"):
            raise RawUsageError(
                f"unknown autotune clock {clock!r}; expected virtual|wall")
        self.path = Path(path) if path is not None else None
        self.cost_model = cost_model
        self.clock = clock
        self.machine = machine if machine is not None else machine_key()
        self.samples: list[Sample] = []

    # -- harvesting ----------------------------------------------------------

    def add_sample(self, op: str, algorithm: str, p: int, nbytes: int,
                   seconds: float) -> None:
        _registry.get(op, algorithm)  # typos fail at harvest, not synthesis
        self.samples.append(Sample(op, algorithm, int(p), int(nbytes),
                                   float(seconds)))

    def observe(self, result: RunResult) -> int:
        """Harvest a traced run's collective timings; returns samples added.

        Virtual-clock tuners only — trace timestamps are virtual seconds,
        and folding them into a wall-clock table would corrupt it, so a
        ``clock="wall"`` tuner ignores traces (returns 0)."""
        if self.clock != "virtual" or result.trace is None:
            return 0
        added = 0
        for op, algorithm, p, nbytes, seconds in \
                result.trace.collective_samples():
            if op in SIZE_HINTED_OPS:
                self.add_sample(op, algorithm, p, nbytes, seconds)
                added += 1
        return added

    def sweep(self, *, ops: Sequence[str] = tuple(SWEEP_WORKLOADS),
              ps: Sequence[int] = SWEEP_PS,
              widths: Sequence[int] = SWEEP_WIDTHS,
              backend: Optional[str] = None,
              seed: int = 0, iters: int = 1,
              deadline: float = 120.0) -> int:
        """Actively measure every registered algorithm over a grid.

        Each ``(op, p, width, algorithm)`` cell runs a forced-algorithm
        workload under an environment-blind engine (CI's ``REPRO_COLL_*``
        matrix must not leak into learned tables).  Virtual tuners harvest
        the run's trace; wall tuners time the whole ``run_mpi`` call and
        divide by ``iters``.  Returns samples added."""
        from repro.mpi.machine import run_mpi  # local: machine imports us lazily

        cm = self.cost_model if self.cost_model is not None else CostModel()
        added = 0
        for op in ops:
            if op not in SWEEP_WORKLOADS:
                raise RawUsageError(
                    f"no sweep workload for {op!r}; have "
                    f"{sorted(SWEEP_WORKLOADS)}")
            for p in ps:
                for width in widths:
                    for algo in _registry.algorithms(op):
                        engine = CollectiveEngine(
                            cm, overrides={op: algo.name}, env={})
                        if self.clock == "wall":
                            t0 = time.perf_counter()
                            for _ in range(iters):
                                run_mpi(SWEEP_WORKLOADS[op], p,
                                        args=(width, seed), cost_model=cm,
                                        engine=engine, backend=backend,
                                        deadline=deadline)
                            dt = (time.perf_counter() - t0) / max(iters, 1)
                            self.add_sample(op, algo.name, p,
                                            _hint_bytes(op, p, width), dt)
                            added += 1
                        else:
                            for _ in range(iters):
                                res = run_mpi(SWEEP_WORKLOADS[op], p,
                                              args=(width, seed),
                                              cost_model=cm, engine=engine,
                                              trace=True, backend=backend,
                                              deadline=deadline)
                                added += self.observe(res)
        return added

    # -- fitting -------------------------------------------------------------

    def fit(self) -> AlphaBetaFit:
        """Least-squares ``(alpha, beta, overhead)`` over all samples.

        Regresses measured seconds onto each sample's registered cost
        formula evaluated at its ``(p, nbytes)``; samples whose algorithm
        has no formula are skipped.  Raises :class:`ValueError` with fewer
        than 3 usable samples."""
        rows = []
        for s in self.samples:
            algo = _registry.get(s.op, s.algorithm)
            if algo.cost is None:
                continue
            rows.append((linear_coefficients(algo.cost, s.p, s.nbytes),
                         s.seconds))
        return fit_alpha_beta(rows)

    def fitted_model(self) -> CostModel:
        """A :class:`CostModel` carrying the fitted parameters (e.g. for
        ``CollectiveEngine(fitted, policy="costmodel")`` off-grid)."""
        return self.fit().model(self.cost_model)

    def residual_report(self) -> dict[str, Any]:
        """Fit quality summary: parameters plus worst-explained samples."""
        fit = self.fit()
        model = fit.model(self.cost_model)
        worst: list[dict[str, Any]] = []
        for s in self.samples:
            algo = _registry.get(s.op, s.algorithm)
            if algo.cost is None or s.seconds <= 0:
                continue
            pred = algo.cost(s.p, s.nbytes, model)
            worst.append({
                "op": s.op, "algorithm": s.algorithm, "p": s.p,
                "nbytes": s.nbytes, "measured": s.seconds,
                "predicted": pred,
                "rel_error": abs(pred - s.seconds) / s.seconds,
            })
        worst.sort(key=lambda r: -r["rel_error"])
        return {
            "alpha": fit.alpha, "beta": fit.beta, "overhead": fit.overhead,
            "residual": fit.residual, "samples": fit.samples,
            "worst": worst[:5],
        }

    # -- table synthesis -----------------------------------------------------

    def table(self) -> dict[str, dict[int, tuple[TuningRule, ...]]]:
        """Synthesized ``{op: {p: canonical rules}}`` from measured winners.

        At each swept size the winner is the algorithm with the smallest
        mean measured time (ties keep registry default-first order, matching
        the argmin policy's tie-break, so a learned table never churns the
        seed choice without a measured reason).  Bucket thresholds fall at
        the geometric midpoint between adjacent swept sizes — multiplicative
        distance is the natural metric for payload crossovers — and the
        largest size's winner takes the catch-all."""
        by_cell: dict[tuple[str, int], dict[int, dict[str, list[float]]]] = {}
        for s in self.samples:
            by_size = by_cell.setdefault((s.op, s.p), {})
            by_size.setdefault(s.nbytes, {}).setdefault(
                s.algorithm, []).append(s.seconds)

        out: dict[str, dict[int, tuple[TuningRule, ...]]] = {}
        for (op, p), by_size in sorted(by_cell.items()):
            winners: list[tuple[int, str]] = []
            for size in sorted(by_size):
                means = {name: sum(ts) / len(ts)
                         for name, ts in by_size[size].items()}
                best, best_t = None, float("inf")
                for algo in _registry.algorithms(op):  # default first
                    t = means.get(algo.name)
                    if t is not None and t < best_t:
                        best, best_t = algo.name, t
                if best is not None:
                    winners.append((size, best))
            if not winners:
                continue
            rules: list[TuningRule] = []
            for i, (size, name) in enumerate(winners):
                if i + 1 < len(winners):
                    bound: Optional[int] = int(
                        (size * winners[i + 1][0]) ** 0.5)
                else:
                    bound = None
                if rules and rules[-1][1] == name:
                    rules[-1] = (bound, name)  # widen the previous bucket
                else:
                    rules.append((bound, name))
            out.setdefault(op, {})[p] = tuple(rules)
        return out

    def rules_for(self, op: str, p: int) -> Optional[tuple[TuningRule, ...]]:
        """Learned rules for one ``(op, p)``, or None if never measured."""
        return self.table().get(op, {}).get(p)

    def install(self, engine: CollectiveEngine, *, p: int,
                comm_id: Any = WORLD_ID) -> int:
        """Install this machine's learned rules for communicator size ``p``.

        Only exact-``p`` tables are installed (no cross-size guessing);
        returns the number of ops that got rules.  Entries carry
        ``source="learned"`` so ``engine.explain()`` attributes them."""
        installed = 0
        for op, by_p in self.table().items():
            rules = by_p.get(p)
            if rules:
                engine.install_tuning(comm_id, op, rules, source="learned")
                installed += 1
        return installed

    # -- persistence ---------------------------------------------------------

    def save(self, path: Optional[os.PathLike | str] = None) -> Path:
        """Write samples + fit + synthesized table as JSON; returns the path.

        Raw samples are persisted (sorted, so files are diffable and reloads
        are order-independent): a reloaded tuner re-synthesizes the same
        table bit-for-bit and can keep accumulating measurements."""
        target = Path(path) if path is not None else self.path
        if target is None:
            raise RawUsageError("save() needs a path (none set on tuner)")
        try:
            fitted = self.fit()
            fit: Optional[dict[str, Any]] = {
                "alpha": fitted.alpha, "beta": fitted.beta,
                "overhead": fitted.overhead, "residual": fitted.residual,
                "samples": fitted.samples,
            }
        except ValueError:
            fit = None
        payload = {
            "version": PERSIST_VERSION,
            "machine": self.machine,
            "clock": self.clock,
            "fit": fit,
            "samples": [list(s.key()) for s in
                        sorted(self.samples, key=Sample.key)],
            "table": {
                op: {str(p): [list(r) for r in rules]
                     for p, rules in by_p.items()}
                for op, by_p in self.table().items()
            },
        }
        target.parent.mkdir(parents=True, exist_ok=True)
        with open(target, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=1, sort_keys=True)
            fh.write("\n")
        return target

    @classmethod
    def load(cls, path: os.PathLike | str, *,
             cost_model: Optional[CostModel] = None) -> "AutoTuner":
        """Reload a persisted store; the tuner keeps ``path`` for re-saving."""
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
        version = payload.get("version")
        if version != PERSIST_VERSION:
            raise RawUsageError(
                f"{path}: unsupported autotune store version {version!r}")
        tuner = cls(path=path, cost_model=cost_model,
                    clock=payload.get("clock", "virtual"),
                    machine=payload.get("machine"))
        for op, algorithm, p, nbytes, seconds in payload.get("samples", ()):
            tuner.add_sample(op, algorithm, p, nbytes, seconds)
        return tuner


def resolve_autotune(value: Any = None,
                     env: Optional[Mapping[str, str]] = None
                     ) -> Optional[AutoTuner]:
    """Resolve ``run_mpi``'s ``autotune=`` argument to a tuner (or None).

    ``None`` consults ``REPRO_AUTOTUNE`` (unset/``0``/``off`` → disabled,
    ``1``/``on`` → the default per-machine path, anything else → that path);
    ``False`` disables even when the env var is set; ``True`` uses the
    default path; a string/path loads-or-creates a store there; an
    :class:`AutoTuner` instance is used as-is."""
    if env is None:
        env = os.environ
    if value is None:
        raw = env.get(ENV_AUTOTUNE, "").strip()
        if not raw or raw.lower() in ("0", "off", "false"):
            return None
        value = True if raw.lower() in ("1", "on", "true") else raw
    if value is False or value is None:
        return None
    if isinstance(value, AutoTuner):
        return value
    path = default_path() if value is True else Path(value)
    if path.exists():
        return AutoTuner.load(path)
    return AutoTuner(path=path)


# -- CLI ----------------------------------------------------------------------


def _parse_ints(text: str) -> tuple[int, ...]:
    return tuple(int(x) for x in text.split(",") if x)


def _print_table(tuner: AutoTuner) -> None:
    table = tuner.table()
    if not table:
        print("(no samples — nothing synthesized)")
        return
    for op in sorted(table):
        for p in sorted(table[op]):
            rules = ", ".join(
                f"<={mb}B → {name}" if mb is not None else f"* → {name}"
                for mb, name in table[op][p])
            print(f"  {op:<12} p={p:<4} {rules}")


def _cmd_sweep(ns) -> int:
    clock = ns.clock or ("wall" if ns.backend == "process" else "virtual")
    path = Path(ns.out) if ns.out else default_path(clock)
    if path.exists() and not ns.fresh:
        tuner = AutoTuner.load(path)
    else:
        tuner = AutoTuner(path=path, clock=clock)
    added = tuner.sweep(ops=ns.ops.split(","), ps=_parse_ints(ns.p),
                        widths=_parse_ints(ns.widths), backend=ns.backend,
                        seed=ns.seed, iters=ns.iters)
    tuner.save()
    print(f"harvested {added} samples ({tuner.clock} clock) -> {path}")
    _print_table(tuner)
    return 0


def _cmd_fit(ns) -> int:
    tuner = AutoTuner.load(ns.store)
    report = tuner.residual_report()
    print(f"machine {tuner.machine} ({tuner.clock} clock, "
          f"{report['samples']} samples)")
    print(f"  alpha    = {report['alpha']:.3e} s")
    print(f"  beta     = {report['beta']:.3e} s/byte")
    print(f"  overhead = {report['overhead']:.3e} s")
    print(f"  residual = {report['residual']:.3%} (relative RMS)")
    for row in report["worst"]:
        print(f"  worst: {row['op']}[{row['algorithm']}] p={row['p']} "
              f"nbytes={row['nbytes']}: measured {row['measured']:.3e} "
              f"vs predicted {row['predicted']:.3e} "
              f"({row['rel_error']:.1%} off)")
    return 0


def _cmd_inspect(ns) -> int:
    tuner = AutoTuner.load(ns.store)
    print(f"machine {tuner.machine}, clock {tuner.clock}, "
          f"{len(tuner.samples)} samples")
    _print_table(tuner)
    return 0


def _cmd_export(ns) -> int:
    tuner = AutoTuner.load(ns.store)
    table = tuner.table()
    print(json.dumps(
        {op: {str(p): [list(r) for r in rules] for p, rules in by_p.items()}
         for op, by_p in table.items()},
        indent=1, sort_keys=True))
    return 0


def _cmd_check(ns) -> int:
    """CI gate: the learned table never loses to the seed defaults.

    Replays the committed benchmark grid (``BENCH_coll_algorithms.json``)
    twice per cell — once under the untouched seed engine, once under the
    learned table — and fails if any tuned cell is slower.  Virtual clocks
    are deterministic, so "ties" are exact float equality, not tolerance."""
    from repro.mpi.machine import run_mpi

    tuner = AutoTuner.load(ns.store)
    cm = CostModel()
    with open(ns.baseline, "r", encoding="utf-8") as fh:
        baseline = json.load(fh)
    grid = sorted({(c["op"], c["p"], c["nbytes"]) for c in baseline["cells"]
                   if c["op"] in SWEEP_WORKLOADS})
    failures = 0
    for op, p, nbytes in grid:
        width = nbytes // ITEM
        seed_engine = CollectiveEngine(cm, env={})
        tuned_engine = CollectiveEngine(cm, env={})
        tuner.install(tuned_engine, p=p)
        t_seed = run_mpi(SWEEP_WORKLOADS[op], p, args=(width, ns.seed),
                         cost_model=cm, engine=seed_engine).max_time
        t_tuned = run_mpi(SWEEP_WORKLOADS[op], p, args=(width, ns.seed),
                          cost_model=cm, engine=tuned_engine).max_time
        verdict = "tie" if t_tuned == t_seed else \
            ("win" if t_tuned < t_seed else "LOSS")
        decision = tuned_engine.explain(
            op, p=p, nbytes=_hint_bytes(op, p, width), comm_id=WORLD_ID)
        print(f"  {op:<12} p={p:<3} nbytes={nbytes:<8} "
              f"seed={t_seed:.3e} tuned={t_tuned:.3e} "
              f"[{decision.algorithm}/{decision.source}] {verdict}")
        if t_tuned > t_seed:
            failures += 1
    if failures:
        print(f"FAIL: learned table loses on {failures}/{len(grid)} cells")
        return 1
    print(f"OK: learned table beats or ties the seed on all "
          f"{len(grid)} cells")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    import argparse

    ap = argparse.ArgumentParser(
        prog="python -m repro.mpi.autotune",
        description="measure, fit, and persist learned collective-tuning "
                    "tables")
    sub = ap.add_subparsers(dest="cmd", required=True)

    p_sweep = sub.add_parser("sweep", help="measure a grid and update a store")
    p_sweep.add_argument("--ops", default=",".join(sorted(SWEEP_WORKLOADS)))
    p_sweep.add_argument("--p", default="4,8", help="comma-separated sizes")
    p_sweep.add_argument("--widths",
                         default=",".join(str(w) for w in SWEEP_WIDTHS),
                         help="comma-separated int64 element counts")
    p_sweep.add_argument("--backend", default=None,
                         help="execution backend (thread|process)")
    p_sweep.add_argument("--clock", default=None,
                         choices=("virtual", "wall"),
                         help="default: wall for process backend else virtual")
    p_sweep.add_argument("--seed", type=int, default=0)
    p_sweep.add_argument("--iters", type=int, default=1)
    p_sweep.add_argument("--out", default=None,
                         help=f"store path (default {default_path()})")
    p_sweep.add_argument("--fresh", action="store_true",
                         help="ignore an existing store instead of merging")
    p_sweep.set_defaults(fn=_cmd_sweep)

    p_fit = sub.add_parser("fit", help="fit α-β and report residuals")
    p_fit.add_argument("store")
    p_fit.set_defaults(fn=_cmd_fit)

    p_inspect = sub.add_parser("inspect", help="print a store's rule table")
    p_inspect.add_argument("store")
    p_inspect.set_defaults(fn=_cmd_inspect)

    p_export = sub.add_parser("export",
                              help="dump the synthesized table as JSON")
    p_export.add_argument("store")
    p_export.set_defaults(fn=_cmd_export)

    p_check = sub.add_parser(
        "check", help="assert the table beats/ties the seed on the committed "
                      "benchmark grid")
    p_check.add_argument("store")
    p_check.add_argument("--baseline", default="BENCH_coll_algorithms.json")
    p_check.add_argument("--seed", type=int, default=0)
    p_check.set_defaults(fn=_cmd_check)

    ns = ap.parse_args(argv)
    return ns.fn(ns)


if __name__ == "__main__":
    raise SystemExit(main())

"""``RawComm`` — the per-rank raw communicator handle (analog of ``MPI_Comm``).

This class mirrors the *C API's* semantics on purpose: variable-size
collectives require explicit counts, receives require the caller to know what
arrives, and nothing protects in-flight buffers.  All the convenience the
paper contributes lives one layer up in :mod:`repro.core`.

Every public method increments a PMPI-style per-rank call counter, which lets
tests reproduce the paper's methodology of asserting that the bindings issue
*exactly* the expected MPI calls (Section III-H).
"""

from __future__ import annotations

import threading
from typing import Any, Hashable, Optional, Sequence

import numpy as np

from repro.mpi import collectives as _coll
from repro.mpi.algorithms import SINGLETON, Algorithm
from repro.mpi.constants import ANY_SOURCE, ANY_TAG, PROC_NULL, collective_tag, validate_user_tag
from repro.mpi.costmodel import Clock
from repro.mpi.datatypes import payload_nbytes, snapshot
from repro.mpi.errors import (
    RawCommRevoked,
    RawProcessFailure,
    RawUsageError,
)
from repro.mpi.machine import CommState, Machine
from repro.mpi.ops import Op
from repro.mpi.p2p import Envelope, Status
from repro.mpi.requests import (
    CompletedRequest,
    CounterBarrierRequest,
    RawRequest,
    RecvRequest,
    SyncSendRequest,
)
from repro.mpi.tracing import _NULL_SPAN, _sum_payload_bytes


def _peer(rank: int) -> tuple[int, ...]:
    """Peer tuple for a possibly-sentinel rank (wildcards/PROC_NULL: empty)."""
    return (rank,) if rank >= 0 else ()


class RawComm:
    """Raw communicator handle owned by a single rank thread."""

    def __init__(self, machine: Machine, state: CommState, world_rank: int):
        self.machine = machine
        self.state = state
        self.world_rank = world_rank
        self._rank = state.local_of_world[world_rank]
        self._coll_seq = 0
        self._mgmt_seq = 0
        self._ibarrier_epoch = 0
        #: rank-local scoped tuning rules (``Communicator.use_algorithms``);
        #: rank-local so installing/removing them can never race other ranks
        self._coll_tuning: dict[str, tuple] = {}
        #: IR-pass provenance stamped on trace spans (set by the IR replayer
        #: around ops that a rewrite pass produced; ``None`` everywhere else)
        self._ir_pass: Optional[str] = None
        #: cluster-service job label stamped on trace spans (set by a service
        #: rank around the ops of a leased job; ``None`` everywhere else)
        self._job_label: Optional[str] = None

    # -- introspection -----------------------------------------------------

    @property
    def rank(self) -> int:
        """This process's rank within the communicator."""
        return self._rank

    @property
    def size(self) -> int:
        """Number of ranks in the communicator."""
        return self.state.size

    @property
    def comm_id(self) -> Hashable:
        return self.state.comm_id

    @property
    def clock(self) -> Clock:
        """This rank's virtual clock."""
        return self.machine.clocks[self.world_rank]

    def compute(self, seconds: float) -> None:
        """Charge local computation time to the virtual clock."""
        self.clock.compute(seconds)

    # -- bookkeeping helpers ------------------------------------------------

    def _count(self, op: str) -> None:
        self.machine.profile[self.world_rank][op] += 1
        if self.machine.faults is not None:
            self.machine.faults.on_op(self, op)

    def _span(self, op: str, *, peers=(), tag=None, payload=None, sent=0,
              algorithm=None):
        """Open a trace span for one raw operation.

        Returns the shared no-op span when tracing is disabled, so untraced
        runs never size payloads and the virtual clocks stay untouched.
        ``peers`` holds communicator-local ranks, or the string ``"all"``
        for symmetric collectives (resolved lazily to all members).
        """
        tracer = self.machine.tracer
        if not tracer.enabled:
            return _NULL_SPAN
        if payload is not None:
            sent = _sum_payload_bytes(payload)
        return tracer.span(self, op, peers=peers, tag=tag, sent=sent,
                           algorithm=algorithm, ir_pass=self._ir_pass,
                           job=self._job_label)

    def _coll_algo(self, op: str, payload: Any = None, hint=None) -> Algorithm:
        """Resolve which algorithm runs one collective call.

        Singleton communicators always take the pure-local fast path (even
        under forced selection).  Otherwise the machine's engine decides;
        the ``nbytes`` hint is only computed when some configured policy will
        actually look at it, so the pure-default hot path never sizes
        payloads.  ``payload`` sizes a local buffer; ``hint`` is a callable
        for ops whose convention is not the local payload (e.g. allgatherv's
        total gathered volume).  Rooted scatter-side ops (bcast, scatter,
        scatterv) pass neither: only the root knows the payload, so all ranks
        must select with nbytes=0 to stay SPMD-consistent.
        """
        if self.state.size == 1:
            algo = SINGLETON.get(op)
            if algo is not None:
                return algo
        engine = self.machine.engine
        scoped = self._coll_tuning.get(op)
        nbytes = 0
        if engine.size_sensitive(op, self.comm_id, scoped=scoped):
            if hint is not None:
                nbytes = int(hint())
            elif payload is not None:
                nbytes = _sum_payload_bytes(payload)
        return engine.resolve(op, p=self.state.size, nbytes=nbytes,
                              comm_id=self.comm_id, scoped=scoped)

    def _check_usable(self) -> None:
        if self.state.revoked.is_set():
            raise RawCommRevoked(f"communicator {self.comm_id!r} has been revoked")

    def _check_peer(self, rank: int) -> None:
        if not 0 <= rank < self.size:
            raise RawUsageError(
                f"peer rank {rank} out of range for communicator of size {self.size}"
            )
        failed = self.machine.failed_snapshot()
        if failed and self.state.members[rank] in failed:
            raise RawProcessFailure([self.state.members[rank]])

    def _next_coll_tag(self, code: int) -> int:
        tag = collective_tag(self._coll_seq, code)
        self._coll_seq += 1
        return tag

    # -- internal point-to-point (used by collective algorithms; uncounted) --

    def _deposit(self, payload: Any, dest: int, tag: int, *, sync: bool = False,
                 packed: bool = False) -> Envelope:
        if self.machine.faults is not None:
            self.machine.faults.on_internal(self)
        self._check_peer(dest)
        clock = self.clock
        model = self.machine.cost_model
        nbytes = payload_nbytes(payload)
        clock.charge_overhead()
        if packed:
            arrival = clock.now + model.packed_transfer_time(nbytes)
        else:
            arrival = clock.now + model.transfer_time(nbytes)
        auditor = self.machine.auditor
        env = Envelope(
            source=self._rank,
            tag=tag,
            payload=snapshot(payload),
            nbytes=nbytes,
            arrival_time=arrival,
            sync_event=threading.Event() if sync else None,
            origin=auditor.origin() if auditor.enabled else (),
        )
        self.state.mailboxes[dest].deposit(env)
        return env

    def _send(self, payload: Any, dest: int, tag: int, *, packed: bool = False) -> None:
        self._deposit(payload, dest, tag, packed=packed)

    def _irecv(self, source: int, tag: int) -> RecvRequest:
        """Uncounted non-blocking receive (internal protocol machinery)."""
        if self.machine.faults is not None:
            self.machine.faults.on_internal(self)
        mb = self.state.mailboxes[self._rank]
        pr = mb.post(source, tag, self.clock.now)
        return RecvRequest(mb, pr, self.clock)

    def _recv(self, source: int, tag: int) -> tuple[Any, Status]:
        if self.machine.faults is not None:
            self.machine.faults.on_internal(self)
        mb = self.state.mailboxes[self._rank]
        pr = mb.post(source, tag, self.clock.now)
        env = mb.wait(pr)
        self.clock.wait_until(env.arrival_time)
        self.clock.charge_overhead()
        return env.payload, Status(env.source, env.tag, env.nbytes)

    # -- point-to-point (public, counted) -----------------------------------

    def send(self, payload: Any, dest: int, tag: int = 0) -> None:
        """Standard-mode (buffered) send."""
        self._count("send")
        self._check_usable()
        if dest == PROC_NULL:
            return
        with self._span("send", peers=(dest,), tag=tag, payload=payload):
            self._send(payload, dest, validate_user_tag(tag))

    def ssend(self, payload: Any, dest: int, tag: int = 0) -> None:
        """Synchronous send: returns only once the receiver matched the message."""
        self._count("ssend")
        self._check_usable()
        if dest == PROC_NULL:
            return
        with self._span("ssend", peers=(dest,), tag=tag, payload=payload):
            env = self._deposit(payload, dest, validate_user_tag(tag), sync=True)
            SyncSendRequest(env, self.clock, self.machine.deadline,
                            fuzz=self.machine.fuzzer).wait()

    def isend(self, payload: Any, dest: int, tag: int = 0) -> RawRequest:
        """Non-blocking standard send (buffered: completes immediately)."""
        self._count("isend")
        self._check_usable()
        if dest == PROC_NULL:
            return CompletedRequest()
        with self._span("isend", peers=(dest,), tag=tag, payload=payload):
            self._send(payload, dest, validate_user_tag(tag))
        return CompletedRequest()

    def issend(self, payload: Any, dest: int, tag: int = 0) -> RawRequest:
        """Non-blocking synchronous send (used by the NBX sparse exchange)."""
        self._count("issend")
        self._check_usable()
        if dest == PROC_NULL:
            return CompletedRequest()
        with self._span("issend", peers=(dest,), tag=tag, payload=payload):
            env = self._deposit(payload, dest, validate_user_tag(tag), sync=True)
        req = SyncSendRequest(env, self.clock, self.machine.deadline,
                              fuzz=self.machine.fuzzer)
        auditor = self.machine.auditor
        if auditor.enabled:
            auditor.track_request(req, self, op="issend", peer=dest, tag=tag,
                                  nbytes=env.nbytes)
        return req

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> tuple[Any, Status]:
        """Blocking receive; returns ``(payload, status)``."""
        self._count("recv")
        self._check_usable()
        if source == PROC_NULL:
            return None, Status(PROC_NULL, tag, 0)
        if source != ANY_SOURCE:
            self._check_peer(source)
        with self._span("recv", peers=_peer(source), tag=tag) as sp:
            payload, status = self._recv(source, validate_user_tag(tag))
            sp.set(peers=(status.source,), tag=status.tag, recvd=status.nbytes)
        return payload, status

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> RecvRequest:
        """Non-blocking receive."""
        self._count("irecv")
        self._check_usable()
        if source != ANY_SOURCE:
            self._check_peer(source)
        with self._span("irecv", peers=_peer(source), tag=tag):
            mb = self.state.mailboxes[self._rank]
            pr = mb.post(source, validate_user_tag(tag), self.clock.now)
        req = RecvRequest(mb, pr, self.clock)
        auditor = self.machine.auditor
        if auditor.enabled:
            pr.origin = auditor.origin()
            auditor.track_request(req, self, op="irecv", peer=source, tag=tag)
        return req

    def sendrecv(self, payload: Any, dest: int, source: int = ANY_SOURCE, *,
                 sendtag: int = 0, recvtag: int = ANY_TAG) -> tuple[Any, Status]:
        """Combined send and receive (``MPI_Sendrecv``).

        One raw call instead of a send/recv pair: the canonical shift
        primitive of ring schedules, and what the IR's ring-recognition pass
        rewrites aligned send/recv pairs into.  The send is standard-mode
        (buffered), so pairing it with the receive can never deadlock.
        """
        self._count("sendrecv")
        self._check_usable()
        if source not in (ANY_SOURCE, PROC_NULL):
            self._check_peer(source)
        with self._span("sendrecv", peers=_peer(dest) + _peer(source),
                        tag=sendtag, payload=payload) as sp:
            if dest != PROC_NULL:
                self._send(payload, dest, validate_user_tag(sendtag))
            if source == PROC_NULL:
                return None, Status(PROC_NULL, recvtag, 0)
            out, status = self._recv(source, validate_user_tag(recvtag))
            sp.set(peers=_peer(dest) + (status.source,), recvd=status.nbytes)
        return out, status

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Status:
        """Blocking probe: wait for a matching message without receiving it."""
        self._count("probe")
        self._check_usable()
        with self._span("probe", peers=_peer(source), tag=tag) as sp:
            env = self.state.mailboxes[self._rank].probe(source, validate_user_tag(tag))
            sp.set(peers=(env.source,), tag=env.tag)
        return Status(env.source, env.tag, env.nbytes)

    def iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG
               ) -> tuple[bool, Optional[Status]]:
        """Non-blocking probe."""
        self._count("iprobe")
        self._check_usable()
        with self._span("iprobe", peers=_peer(source), tag=tag) as sp:
            env = self.state.mailboxes[self._rank].iprobe(source, validate_user_tag(tag))
            if env is not None:
                sp.set(peers=(env.source,), tag=env.tag)
        if env is None:
            return False, None
        return True, Status(env.source, env.tag, env.nbytes)

    # -- synchronization -----------------------------------------------------

    def barrier(self) -> None:
        """Barrier (default algorithm: dissemination)."""
        self._count("barrier")
        self._check_usable()
        algo = self._coll_algo("barrier")
        with self._span("barrier", peers="all", algorithm=algo.name):
            algo.fn(self)

    def ibarrier(self) -> RawRequest:
        """Non-blocking barrier."""
        self._count("ibarrier")
        self._check_usable()
        with self._span("ibarrier", peers="all"):
            epoch = self._ibarrier_epoch
            self._ibarrier_epoch += 1
            self.clock.charge_overhead()
            ticket = self.state.barrier.arrive(epoch, self.clock.now)
        req = CounterBarrierRequest(
            self.state.barrier, ticket, self.clock, self.machine.deadline,
            fuzz=self.machine.fuzzer,
        )
        auditor = self.machine.auditor
        if auditor.enabled:
            auditor.track_request(req, self, op="ibarrier")
        return req

    # -- collectives ----------------------------------------------------------

    def bcast(self, payload: Any, root: int = 0) -> Any:
        self._count("bcast")
        self._check_usable()
        algo = self._coll_algo("bcast")
        with self._span("bcast", peers=(root,),
                        payload=payload if self._rank == root else None,
                        algorithm=algo.name) as sp:
            out = algo.fn(self, payload, root)
            if self._rank != root:
                sp.set(recvd_payload=out)
        return out

    def gather(self, payload: Any, root: int = 0) -> Optional[list]:
        self._count("gather")
        self._check_usable()
        algo = self._coll_algo("gather", payload=payload)
        with self._span("gather", peers=(root,), payload=payload,
                        algorithm=algo.name) as sp:
            out = algo.fn(self, payload, root)
            if out is not None:
                sp.set(recvd_payload=out)
        return out

    def gatherv(self, sendbuf: np.ndarray, recvcounts: Optional[Sequence[int]],
                root: int = 0) -> Optional[np.ndarray]:
        """Variable gather.  ``recvcounts`` is required at the root (C semantics)."""
        self._count("gatherv")
        self._check_usable()
        algo = self._coll_algo("gatherv", payload=sendbuf)
        with self._span("gatherv", peers=(root,), payload=sendbuf,
                        algorithm=algo.name) as sp:
            out = algo.fn(self, sendbuf, recvcounts, root)
            if out is not None:
                sp.set(recvd_payload=out)
        return out

    def scatter(self, payloads: Optional[Sequence[Any]], root: int = 0) -> Any:
        self._count("scatter")
        self._check_usable()
        algo = self._coll_algo("scatter")
        with self._span("scatter", peers=(root,),
                        payload=payloads if self._rank == root else None,
                        algorithm=algo.name) as sp:
            out = algo.fn(self, payloads, root)
            sp.set(recvd_payload=out)
        return out

    def scatterv(self, sendbuf: Optional[np.ndarray],
                 sendcounts: Optional[Sequence[int]], root: int = 0) -> np.ndarray:
        self._count("scatterv")
        self._check_usable()
        algo = self._coll_algo("scatterv")
        with self._span("scatterv", peers=(root,),
                        payload=sendbuf if self._rank == root else None,
                        algorithm=algo.name) as sp:
            out = algo.fn(self, sendbuf, sendcounts, root)
            sp.set(recvd_payload=out)
        return out

    def allgather(self, payload: Any) -> list:
        """Allgather of one payload per rank (default: Bruck, ⌈log p⌉ rounds)."""
        self._count("allgather")
        self._check_usable()
        algo = self._coll_algo("allgather", payload=payload)
        with self._span("allgather", peers="all", payload=payload,
                        algorithm=algo.name) as sp:
            out = algo.fn(self, payload)
            sp.set(recvd_payload=out)
        return out

    def allgatherv(self, sendbuf: np.ndarray,
                   recvcounts: Sequence[int]) -> np.ndarray:
        """Variable allgather.  ``recvcounts`` is required on all ranks (C semantics)."""
        self._count("allgatherv")
        self._check_usable()
        algo = self._coll_algo(
            "allgatherv",
            hint=lambda: int(np.sum(recvcounts)) * np.asarray(sendbuf).itemsize,
        )
        with self._span("allgatherv", peers="all", payload=sendbuf,
                        algorithm=algo.name) as sp:
            out = algo.fn(self, sendbuf, recvcounts)
            sp.set(recvd_payload=out)
        return out

    def alltoall(self, payloads: Sequence[Any]) -> list:
        self._count("alltoall")
        self._check_usable()
        algo = self._coll_algo("alltoall", payload=payloads)
        with self._span("alltoall", peers="all", payload=payloads,
                        algorithm=algo.name) as sp:
            out = algo.fn(self, payloads)
            sp.set(recvd_payload=out)
        return out

    def alltoallv(self, sendbuf: np.ndarray, sendcounts: Sequence[int],
                  recvcounts: Sequence[int]) -> np.ndarray:
        """Variable all-to-all (pairwise exchange: p−1 rounds, Θ(p) latency).

        ``recvcounts`` is required (C semantics) — the boilerplate count
        exchange this forces on users is exactly what the bindings remove.
        """
        self._count("alltoallv")
        self._check_usable()
        algo = self._coll_algo(
            "alltoallv",
            hint=lambda: int(np.sum(sendcounts)) * np.asarray(sendbuf).itemsize,
        )
        with self._span("alltoallv", peers="all", payload=sendbuf,
                        algorithm=algo.name) as sp:
            out = algo.fn(self, sendbuf, sendcounts, recvcounts)
            sp.set(recvd_payload=out)
        return out

    def alltoallw(self, send_blocks: Sequence[Any]) -> list:
        """All-to-all with per-block derived datatypes.

        Models the documented penalty of the alltoallw path (per-peer datatype
        setup plus pack/unpack cost, paid even for empty blocks) that makes
        MPL's v-collectives slow (paper §II, §IV-B).
        """
        self._count("alltoallw")
        self._check_usable()
        algo = self._coll_algo("alltoallw", payload=send_blocks)
        with self._span("alltoallw", peers="all", payload=send_blocks,
                        algorithm=algo.name) as sp:
            out = algo.fn(self, send_blocks)
            sp.set(recvd_payload=out)
        return out

    def reduce(self, value: Any, op: Op, root: int = 0) -> Any:
        self._count("reduce")
        self._check_usable()
        algo = self._coll_algo("reduce", payload=value)
        with self._span("reduce", peers=(root,), payload=value,
                        algorithm=algo.name) as sp:
            out = algo.fn(self, value, op, root)
            if self._rank == root:
                sp.set(recvd_payload=out)
        return out

    def allreduce(self, value: Any, op: Op) -> Any:
        self._count("allreduce")
        self._check_usable()
        algo = self._coll_algo("allreduce", payload=value)
        with self._span("allreduce", peers="all", payload=value,
                        algorithm=algo.name) as sp:
            out = algo.fn(self, value, op)
            sp.set(recvd_payload=out)
        return out

    def scan(self, value: Any, op: Op) -> Any:
        """Inclusive prefix reduction."""
        self._count("scan")
        self._check_usable()
        algo = self._coll_algo("scan", payload=value)
        with self._span("scan", peers="all", payload=value,
                        algorithm=algo.name) as sp:
            out = algo.fn(self, value, op)
            sp.set(recvd_payload=out)
        return out

    def exscan(self, value: Any, op: Op) -> Any:
        """Exclusive prefix reduction (undefined — here: identity — on rank 0)."""
        self._count("exscan")
        self._check_usable()
        algo = self._coll_algo("exscan", payload=value)
        with self._span("exscan", peers="all", payload=value,
                        algorithm=algo.name) as sp:
            out = algo.fn(self, value, op)
            sp.set(recvd_payload=out)
        return out

    # -- non-blocking collectives (MPI-3) -----------------------------------------

    def ibcast(self, payload: Any, root: int = 0):
        """Non-blocking broadcast; complete with wait()/test() (``MPI_Ibcast``)."""
        from repro.mpi import nbc

        return nbc.ibcast(self, payload, root)

    def iallreduce(self, value: Any, op: Op):
        """Non-blocking allreduce (``MPI_Iallreduce``, commutative ops)."""
        from repro.mpi import nbc

        return nbc.iallreduce(self, value, op)

    def iallgather(self, payload: Any):
        """Non-blocking allgather (``MPI_Iallgather``)."""
        from repro.mpi import nbc

        return nbc.iallgather(self, payload)

    # -- neighborhood collectives ----------------------------------------------

    def neighbor_alltoall(self, payloads: Sequence[Any]) -> list:
        """Exchange one payload with each topology neighbor."""
        self._count("neighbor_alltoall")
        self._check_usable()
        algo = self._coll_algo("neighbor_alltoall")
        with self._span("neighbor_alltoall", peers="neighbors",
                        payload=payloads, algorithm=algo.name) as sp:
            out = algo.fn(self, payloads)
            sp.set(recvd_payload=out)
        return out

    def neighbor_alltoallv(self, sendbuf: np.ndarray, sendcounts: Sequence[int],
                           recvcounts: Sequence[int]) -> np.ndarray:
        self._count("neighbor_alltoallv")
        self._check_usable()
        algo = self._coll_algo("neighbor_alltoallv")
        with self._span("neighbor_alltoallv", peers="neighbors",
                        payload=sendbuf, algorithm=algo.name) as sp:
            out = algo.fn(self, sendbuf, sendcounts, recvcounts)
            sp.set(recvd_payload=out)
        return out

    @property
    def topology(self) -> Optional[tuple[tuple[int, ...], tuple[int, ...]]]:
        """This rank's ``(sources, destinations)`` on a dist-graph communicator."""
        if self.state.topology is None:
            return None
        return self.state.topology.get(self._rank)

    def _neighbor_peers(self) -> tuple[int, ...]:
        """Union of this rank's topology sources and destinations (local ranks)."""
        topo = self.topology
        if topo is None:
            return ()
        return tuple(sorted(set(topo[0]) | set(topo[1])))

    # -- communicator management -------------------------------------------------

    def dup(self) -> "RawComm":
        """Duplicate the communicator (collective)."""
        self._count("comm_dup")
        self._check_usable()
        with self._span("comm_dup", peers="all"):
            seq = self._mgmt_seq
            self._mgmt_seq += 1
            new_id = (self.comm_id, "dup", seq)
            state = self.machine.get_or_create_comm(new_id, self.state.members)
            _coll.barrier(self)  # dup is collective; synchronize like real MPI
        return RawComm(self.machine, state, self.world_rank)

    def split(self, color: Optional[int], key: Optional[int] = None
              ) -> Optional["RawComm"]:
        """Split into sub-communicators by ``color``, ordered by ``key``.

        Returns ``None`` for ranks passing ``color=None`` (``MPI_UNDEFINED``).
        """
        self._count("comm_split")
        self._check_usable()
        with self._span("comm_split", peers="all"):
            return self._split(color, key)

    def _split(self, color: Optional[int], key: Optional[int]
               ) -> Optional["RawComm"]:
        seq = self._mgmt_seq
        self._mgmt_seq += 1
        entries = _coll.allgather(
            self, (color, key if key is not None else self._rank, self._rank)
        )
        if color is None:
            return None
        group = sorted(
            (k, r) for (c, k, r) in entries if c == color
        )
        members = [self.state.members[r] for _, r in group]
        new_id = (self.comm_id, "split", seq, color)
        state = self.machine.get_or_create_comm(new_id, members)
        return RawComm(self.machine, state, self.world_rank)

    def dist_graph_create_adjacent(
        self, sources: Sequence[int], destinations: Sequence[int]
    ) -> "RawComm":
        """Create a neighborhood-topology communicator (``MPI_Dist_graph_create_adjacent``)."""
        self._count("dist_graph_create_adjacent")
        self._check_usable()
        with self._span("dist_graph_create_adjacent", peers="all"):
            seq = self._mgmt_seq
            self._mgmt_seq += 1
            new_id = (self.comm_id, "graph", seq)
            state = self.machine.get_or_create_comm(new_id, self.state.members,
                                                    topology={})
            state.topology[self._rank] = (tuple(sources), tuple(destinations))
            # Graph creation is collective and costs at least a barrier; real
            # implementations additionally build routing tables (Θ(α·log p)).
            _coll.barrier(self)
        return RawComm(self.machine, state, self.world_rank)

    # -- one-sided communication ---------------------------------------------------

    def win_create(self, local: np.ndarray) -> "RawWindow":
        """Collectively create an RMA window over ``local`` (``MPI_Win_create``)."""
        from repro.mpi.rma import RawWindow

        self.machine.require("rma", "RMA windows (win_create)")
        self._count("win_create")
        self._check_usable()
        seq = self._mgmt_seq
        self._mgmt_seq += 1
        with self._span("win_create", peers="all"):
            return RawWindow(self, local, (self.comm_id, "win", seq))

    # -- failure handling (substrate for the ULFM plugin) -------------------------

    def kill_self(self) -> None:
        """Simulate this process dying (failure injection)."""
        from repro.mpi.errors import ProcessKilled

        self.machine.require("failures", "failure injection (kill_self)")
        raise ProcessKilled(self.world_rank)

    def revoke(self) -> None:
        """ULFM ``MPI_Comm_revoke``: mark the communicator unusable everywhere."""
        self.machine.require("ulfm", "ULFM revocation (comm_revoke)")
        self._count("comm_revoke")
        with self._span("comm_revoke", peers="all"):
            self.state.revoked.set()

    @property
    def is_revoked(self) -> bool:
        return self.state.revoked.is_set()

    def failed_ranks(self) -> tuple[int, ...]:
        """Communicator-local ranks of members known to have failed."""
        failed = self.machine.failed_snapshot()
        return tuple(
            i for i, w in enumerate(self.state.members) if w in failed
        )

    def shrink(self, generation: Hashable = 0) -> "RawComm":
        """ULFM ``MPI_Comm_shrink``: agree on survivors, build a new communicator."""
        self.machine.require("ulfm", "ULFM shrink (comm_shrink)")
        self._count("comm_shrink")
        with self._span("comm_shrink", peers="all"):
            alive = self.machine.shrink_rendezvous(self.state, generation,
                                                   self.world_rank)
            new_id = (self.comm_id, "shrink", generation, alive)
            state = self.machine.get_or_create_comm(new_id, alive)
        return RawComm(self.machine, state, self.world_rank)

    def agree(self, flag: bool, generation: Hashable = 0) -> bool:
        """ULFM ``MPI_Comm_agree`` (restricted to alive members): logical AND."""
        self.machine.require("ulfm", "ULFM agreement (comm_agree)")
        self._count("comm_agree")
        with self._span("comm_agree", peers="all"):
            return self._agree(flag, generation)

    def _agree(self, flag: bool, generation: Hashable) -> bool:
        key = ("agree", generation)
        alive = self.machine.shrink_rendezvous(self.state, key, self.world_rank)
        # Exchange flags among survivors through machine-level coordination.
        from repro.mpi.waiting import Backoff

        backoff = Backoff(self.machine.deadline, fuzz=self.machine.fuzzer)
        with self.machine._shrink_lock:
            store = self.machine._shrink_results.setdefault(
                (self.state.comm_id, key, "flags"), {}
            )
            store[self.world_rank] = flag
            self.machine._shrink_lock.notify_all()
            while not set(store) >= set(alive):
                self.machine._shrink_lock.wait(timeout=backoff.next_timeout())
                if backoff.expired and not set(store) >= set(alive):
                    from repro.mpi.errors import RawDeadlockError

                    raise RawDeadlockError("agree never completed")
            return all(store[w] for w in alive)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RawComm(id={self.comm_id!r}, rank={self._rank}/{self.size})"

"""Raw collective operations, implemented over point-to-point messaging.

Each collective uses a textbook algorithm whose *cost structure* matches what
production MPI implementations use, because the paper's evaluation shapes
(Fig. 8, Fig. 10) depend on them:

==================  =============================  ==========================
collective          algorithm                      latency / volume
==================  =============================  ==========================
barrier             dissemination                  ⌈log₂ p⌉ · α
bcast / reduce      binomial tree                  ⌈log₂ p⌉ · (α + nβ)
allreduce           recursive doubling (+fold)     ⌈log₂ p⌉ · (α + nβ)
allgather           Bruck                          ⌈log₂ p⌉ · α + (p−1)nβ
allgatherv          ring                           (p−1) · (α + n̄β)
gather(v)/scatter(v) binomial / linear at root     see code
alltoall(v)         pairwise exchange              (p−1) · α + volume·β
alltoallw           pairwise + datatype penalty    (p−1) · (α + α_dtype) + …
scan / exscan       Hillis–Steele doubling         ⌈log₂ p⌉ rounds
==================  =============================  ==========================

All functions are *internal*: they are reached through the counted public
methods on :class:`~repro.mpi.context.RawComm` and use the uncounted
``_send``/``_recv`` primitives, so PMPI counters see one call per collective
(exactly like the C profiling interface).
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

import numpy as np

from repro.mpi.datatypes import ensure_1d_array
from repro.mpi.errors import RawTruncationError, RawUsageError
from repro.mpi.ops import Op

# Collective op codes (folded into reserved tags).
CODE_BARRIER = 0
CODE_BCAST = 1
CODE_GATHER = 2
CODE_GATHERV = 3
CODE_SCATTER = 4
CODE_SCATTERV = 5
CODE_ALLGATHER = 6
CODE_ALLGATHERV = 7
CODE_ALLTOALL = 8
CODE_ALLTOALLV = 9
CODE_ALLTOALLW = 10
CODE_REDUCE = 11
CODE_ALLREDUCE = 12
CODE_SCAN = 13
CODE_EXSCAN = 14
CODE_NEIGHBOR = 15
CODE_NEIGHBORV = 16


def _validate_root(comm, root: int) -> None:
    if not 0 <= root < comm.size:
        raise RawUsageError(f"root {root} out of range for size {comm.size}")


# ---------------------------------------------------------------------------
# synchronization
# ---------------------------------------------------------------------------

def barrier(comm) -> None:
    """Dissemination barrier: ⌈log₂ p⌉ rounds for any p."""
    p, r = comm.size, comm.rank
    tag = comm._next_coll_tag(CODE_BARRIER)
    if p == 1:
        return
    k = 1
    while k < p:
        comm._send(None, (r + k) % p, tag)
        comm._recv((r - k) % p, tag)
        k <<= 1


# ---------------------------------------------------------------------------
# one-to-all / all-to-one
# ---------------------------------------------------------------------------

def bcast(comm, payload: Any, root: int) -> Any:
    """Binomial-tree broadcast."""
    _validate_root(comm, root)
    p, r = comm.size, comm.rank
    tag = comm._next_coll_tag(CODE_BCAST)
    if p == 1:
        return payload
    vr = (r - root) % p
    mask = 1
    while mask < p:
        if vr & mask:
            src = (vr - mask + root) % p
            payload, _ = comm._recv(src, tag)
            break
        mask <<= 1
    mask >>= 1
    while mask > 0:
        child = vr + mask
        if child < p:
            comm._send(payload, (child + root) % p, tag)
        mask >>= 1
    return payload


def gather(comm, payload: Any, root: int) -> Optional[list]:
    """Binomial-tree gather; returns the ordered list at the root, else ``None``."""
    _validate_root(comm, root)
    p, r = comm.size, comm.rank
    tag = comm._next_coll_tag(CODE_GATHER)
    vr = (r - root) % p
    items: list[tuple[int, Any]] = [(vr, payload)]
    mask = 1
    while mask < p:
        if vr & mask == 0:
            src_vr = vr | mask
            if src_vr < p:
                other, _ = comm._recv((src_vr + root) % p, tag)
                items.extend(other)
        else:
            comm._send(items, ((vr & ~mask) + root) % p, tag)
            return None
        mask <<= 1
    out: list = [None] * p
    for v, pl in items:
        out[(v + root) % p] = pl
    return out


def gatherv(comm, sendbuf: np.ndarray, recvcounts: Optional[Sequence[int]],
            root: int) -> Optional[np.ndarray]:
    """Linear gatherv: every rank sends its block directly to the root.

    ``recvcounts`` must be provided at the root (C semantics) and is checked
    against the actually-arriving message sizes.
    """
    _validate_root(comm, root)
    p, r = comm.size, comm.rank
    tag = comm._next_coll_tag(CODE_GATHERV)
    sendbuf = ensure_1d_array(sendbuf)
    if r != root:
        comm._send(sendbuf, root, tag)
        return None
    if recvcounts is None:
        raise RawUsageError("gatherv requires recvcounts at the root")
    if len(recvcounts) != p:
        raise RawUsageError(f"recvcounts must have length {p}")
    parts: list[Optional[np.ndarray]] = [None] * p
    parts[r] = sendbuf
    for src in range(p):
        if src == r:
            continue
        block, _ = comm._recv(src, tag)
        parts[src] = ensure_1d_array(block)
    for src, block in enumerate(parts):
        if len(block) > recvcounts[src]:
            raise RawTruncationError(
                f"gatherv: message from rank {src} has {len(block)} items, "
                f"recvcounts allows {recvcounts[src]}"
            )
    return np.concatenate(parts) if parts else np.empty(0)


def scatter(comm, payloads: Optional[Sequence[Any]], root: int) -> Any:
    """Linear scatter from the root."""
    _validate_root(comm, root)
    p, r = comm.size, comm.rank
    tag = comm._next_coll_tag(CODE_SCATTER)
    if r == root:
        if payloads is None or len(payloads) != p:
            raise RawUsageError(f"scatter root must supply exactly {p} payloads")
        for dst in range(p):
            if dst != root:
                comm._send(payloads[dst], dst, tag)
        return payloads[root]
    payload, _ = comm._recv(root, tag)
    return payload


def scatterv(comm, sendbuf: Optional[np.ndarray],
             sendcounts: Optional[Sequence[int]], root: int) -> np.ndarray:
    """Linear scatterv: the root slices ``sendbuf`` by ``sendcounts``."""
    _validate_root(comm, root)
    p, r = comm.size, comm.rank
    tag = comm._next_coll_tag(CODE_SCATTERV)
    if r == root:
        if sendbuf is None or sendcounts is None or len(sendcounts) != p:
            raise RawUsageError(f"scatterv root must supply sendbuf and {p} sendcounts")
        sendbuf = ensure_1d_array(sendbuf)
        displs = np.concatenate(([0], np.cumsum(sendcounts)[:-1])).astype(int)
        if displs[-1] + sendcounts[-1] > len(sendbuf):
            raise RawUsageError("scatterv sendcounts exceed sendbuf length")
        for dst in range(p):
            if dst != root:
                comm._send(sendbuf[displs[dst]: displs[dst] + sendcounts[dst]], dst, tag)
        return sendbuf[displs[root]: displs[root] + sendcounts[root]].copy()
    block, _ = comm._recv(root, tag)
    return ensure_1d_array(block)


# ---------------------------------------------------------------------------
# all-to-all family
# ---------------------------------------------------------------------------

def allgather(comm, payload: Any) -> list:
    """Bruck's allgather: ⌈log₂ p⌉ rounds, returns payloads indexed by rank."""
    p, r = comm.size, comm.rank
    tag = comm._next_coll_tag(CODE_ALLGATHER)
    blocks: list = [payload]
    k = 1
    while k < p:
        send_cnt = min(k, p - k)
        comm._send(blocks[:send_cnt], (r - k) % p, tag)
        other, _ = comm._recv((r + k) % p, tag)
        blocks.extend(other)
        k <<= 1
    out: list = [None] * p
    for i in range(p):
        out[(r + i) % p] = blocks[i]
    return out


def allgatherv(comm, sendbuf: np.ndarray, recvcounts: Sequence[int]) -> np.ndarray:
    """Ring allgatherv: p−1 rounds; requires ``recvcounts`` on every rank."""
    p, r = comm.size, comm.rank
    tag = comm._next_coll_tag(CODE_ALLGATHERV)
    sendbuf = ensure_1d_array(sendbuf)
    if len(recvcounts) != p:
        raise RawUsageError(f"recvcounts must have length {p}")
    if len(sendbuf) > recvcounts[r]:
        raise RawTruncationError(
            f"allgatherv: local block has {len(sendbuf)} items but recvcounts[{r}] "
            f"= {recvcounts[r]}"
        )
    parts: list[Optional[np.ndarray]] = [None] * p
    parts[r] = sendbuf
    cur = sendbuf
    right, left = (r + 1) % p, (r - 1) % p
    for i in range(1, p):
        comm._send(cur, right, tag)
        cur, _ = comm._recv(left, tag)
        cur = ensure_1d_array(cur)
        src = (r - i) % p
        if len(cur) > recvcounts[src]:
            raise RawTruncationError(
                f"allgatherv: block from rank {src} has {len(cur)} items, "
                f"recvcounts allows {recvcounts[src]}"
            )
        parts[src] = cur
    return np.concatenate(parts) if p > 1 else sendbuf.copy()


def alltoall(comm, payloads: Sequence[Any]) -> list:
    """Pairwise-exchange alltoall: p−1 rounds, Θ(p)·α latency."""
    p, r = comm.size, comm.rank
    tag = comm._next_coll_tag(CODE_ALLTOALL)
    if len(payloads) != p:
        raise RawUsageError(f"alltoall requires exactly {p} payloads")
    out: list = [None] * p
    out[r] = payloads[r]
    for i in range(1, p):
        dst, src = (r + i) % p, (r - i) % p
        comm._send(payloads[dst], dst, tag)
        out[src], _ = comm._recv(src, tag)
    return out


def alltoallv(comm, sendbuf: np.ndarray, sendcounts: Sequence[int],
              recvcounts: Sequence[int]) -> np.ndarray:
    """Pairwise-exchange alltoallv over array slices.

    Zero-size blocks still cost a message — this is the Θ(p·α) term that
    motivates the sparse and grid all-to-all plugins (paper §V-A).
    """
    p, r = comm.size, comm.rank
    tag = comm._next_coll_tag(CODE_ALLTOALLV)
    sendbuf = ensure_1d_array(sendbuf)
    if len(sendcounts) != p or len(recvcounts) != p:
        raise RawUsageError(f"sendcounts/recvcounts must have length {p}")
    sdispls = np.concatenate(([0], np.cumsum(sendcounts)[:-1])).astype(int)
    if sdispls[-1] + sendcounts[-1] > len(sendbuf):
        raise RawUsageError("alltoallv sendcounts exceed sendbuf length")
    parts: list[Optional[np.ndarray]] = [None] * p
    parts[r] = sendbuf[sdispls[r]: sdispls[r] + sendcounts[r]]
    for i in range(1, p):
        dst, src = (r + i) % p, (r - i) % p
        comm._send(sendbuf[sdispls[dst]: sdispls[dst] + sendcounts[dst]], dst, tag)
        block, _ = comm._recv(src, tag)
        block = ensure_1d_array(block)
        if len(block) > recvcounts[src]:
            raise RawTruncationError(
                f"alltoallv: message from rank {src} has {len(block)} items, "
                f"recvcounts allows {recvcounts[src]}"
            )
        parts[src] = block
    return np.concatenate(parts) if p > 1 else np.asarray(parts[r]).copy()


def alltoallw(comm, send_blocks: Sequence[Any]) -> list:
    """Pairwise alltoallw with the derived-datatype penalty.

    Every peer costs ``alpha + dtype_alpha`` plus pack/unpack per byte — even
    peers with empty blocks.  This is the path MPL's variable-size collectives
    take internally and the documented reason for their overhead.
    """
    p, r = comm.size, comm.rank
    tag = comm._next_coll_tag(CODE_ALLTOALLW)
    if len(send_blocks) != p:
        raise RawUsageError(f"alltoallw requires exactly {p} blocks")
    out: list = [None] * p
    out[r] = send_blocks[r]
    # Even the self-block pays the datatype setup cost.
    comm.clock.compute(comm.machine.cost_model.dtype_alpha)
    for i in range(1, p):
        dst, src = (r + i) % p, (r - i) % p
        comm._deposit(send_blocks[dst], dst, tag, packed=True)
        out[src], _ = comm._recv(src, tag)
    return out


# ---------------------------------------------------------------------------
# reductions
# ---------------------------------------------------------------------------

def _combine(op: Op, a: Any, b: Any) -> Any:
    """Apply ``op`` elementwise, preserving array-ness of the inputs."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return op(np.asarray(a), np.asarray(b))
    return op(a, b)


def reduce(comm, value: Any, op: Op, root: int) -> Any:
    """Binomial-tree reduce (commutative ops); rank-ordered fold otherwise."""
    _validate_root(comm, root)
    p, r = comm.size, comm.rank
    if not op.commutative:
        # Non-commutative ops must be applied in canonical rank order.
        items = gather(comm, value, root)
        if r != root:
            return None
        acc = items[0]
        for item in items[1:]:
            acc = _combine(op, acc, item)
        return acc
    tag = comm._next_coll_tag(CODE_REDUCE)
    vr = (r - root) % p
    acc = value
    mask = 1
    while mask < p:
        if vr & mask == 0:
            src_vr = vr | mask
            if src_vr < p:
                other, _ = comm._recv((src_vr + root) % p, tag)
                acc = _combine(op, acc, other)
        else:
            comm._send(acc, ((vr & ~mask) + root) % p, tag)
            return None
        mask <<= 1
    return acc


def allreduce(comm, value: Any, op: Op) -> Any:
    """Recursive-doubling allreduce with non-power-of-two folding."""
    p, r = comm.size, comm.rank
    if not op.commutative:
        result = reduce(comm, value, op, 0)
        return bcast(comm, result, 0)
    tag = comm._next_coll_tag(CODE_ALLREDUCE)
    if p == 1:
        return value
    p2 = 1 << (p.bit_length() - 1)
    rem = p - p2
    acc = value
    new_rank = -1
    if r < 2 * rem:
        if r % 2 == 1:
            comm._send(acc, r - 1, tag)
        else:
            other, _ = comm._recv(r + 1, tag)
            acc = _combine(op, acc, other)
            new_rank = r // 2
    else:
        new_rank = r - rem
    if new_rank >= 0:
        mask = 1
        while mask < p2:
            partner_new = new_rank ^ mask
            partner = partner_new * 2 if partner_new < rem else partner_new + rem
            comm._send(acc, partner, tag)
            other, _ = comm._recv(partner, tag)
            acc = _combine(op, acc, other)
            mask <<= 1
    if r < 2 * rem:
        if r % 2 == 0:
            comm._send(acc, r + 1, tag)
        else:
            acc, _ = comm._recv(r - 1, tag)
    return acc


def scan(comm, value: Any, op: Op) -> Any:
    """Hillis–Steele inclusive prefix reduction (order-preserving)."""
    p, r = comm.size, comm.rank
    tag = comm._next_coll_tag(CODE_SCAN)
    result = value
    acc = value
    mask = 1
    while mask < p:
        dst, src = r + mask, r - mask
        if dst < p:
            comm._send(acc, dst, tag)
        if src >= 0:
            other, _ = comm._recv(src, tag)
            result = _combine(op, other, result)
            acc = _combine(op, other, acc)
        mask <<= 1
    return result


def exscan(comm, value: Any, op: Op) -> Any:
    """Exclusive prefix reduction; rank 0 receives ``op.identity`` (or ``None``)."""
    p, r = comm.size, comm.rank
    tag = comm._next_coll_tag(CODE_EXSCAN)
    result: Any = None
    acc = value
    mask = 1
    while mask < p:
        dst, src = r + mask, r - mask
        if dst < p:
            comm._send(acc, dst, tag)
        if src >= 0:
            other, _ = comm._recv(src, tag)
            result = other if result is None else _combine(op, other, result)
            acc = _combine(op, other, acc)
        mask <<= 1
    if r == 0:
        if op.identity is None:
            return None
        if isinstance(value, np.ndarray):
            return np.full_like(value, op.identity)
        return type(value)(op.identity) if not isinstance(value, bool) else op.identity
    return result


# ---------------------------------------------------------------------------
# neighborhood collectives
# ---------------------------------------------------------------------------

def _require_topology(comm) -> tuple[tuple[int, ...], tuple[int, ...]]:
    topo = comm.topology
    if topo is None:
        raise RawUsageError(
            "neighborhood collectives require a dist-graph communicator "
            "(use dist_graph_create_adjacent)"
        )
    return topo


def neighbor_alltoall(comm, payloads: Sequence[Any]) -> list:
    """Exchange one payload per out-neighbor; receive one per in-neighbor."""
    sources, destinations = _require_topology(comm)
    tag = comm._next_coll_tag(CODE_NEIGHBOR)
    if len(payloads) != len(destinations):
        raise RawUsageError(
            f"neighbor_alltoall requires {len(destinations)} payloads "
            f"(one per destination)"
        )
    for payload, dst in zip(payloads, destinations):
        comm._send(payload, dst, tag)
    out = []
    for src in sources:
        payload, _ = comm._recv(src, tag)
        out.append(payload)
    return out


def neighbor_alltoallv(comm, sendbuf: np.ndarray, sendcounts: Sequence[int],
                       recvcounts: Sequence[int]) -> np.ndarray:
    """Variable-size neighborhood exchange: cost Θ(degree), not Θ(p)."""
    sources, destinations = _require_topology(comm)
    tag = comm._next_coll_tag(CODE_NEIGHBORV)
    sendbuf = ensure_1d_array(sendbuf)
    if len(sendcounts) != len(destinations):
        raise RawUsageError("sendcounts must match the number of destinations")
    if len(recvcounts) != len(sources):
        raise RawUsageError("recvcounts must match the number of sources")
    displs = np.concatenate(([0], np.cumsum(sendcounts)[:-1])).astype(int) \
        if len(sendcounts) else np.zeros(0, dtype=int)
    for j, dst in enumerate(destinations):
        comm._send(sendbuf[displs[j]: displs[j] + sendcounts[j]], dst, tag)
    parts = []
    for i, src in enumerate(sources):
        block, _ = comm._recv(src, tag)
        block = ensure_1d_array(block)
        if len(block) > recvcounts[i]:
            raise RawTruncationError(
                f"neighbor_alltoallv: message from rank {src} has {len(block)} "
                f"items, recvcounts allows {recvcounts[i]}"
            )
        parts.append(block)
    if not parts:
        return sendbuf[:0].copy()
    return np.concatenate(parts)

"""Raw collective operations — thin façade over the algorithm registry.

Historically this module *was* the implementation: one textbook algorithm per
collective.  Those bodies now live in :mod:`repro.mpi.algorithms` (one module
per collective family, ≥2 registered implementations for the headline ops),
and each free function here dispatches through the machine's
:class:`~repro.mpi.engine.CollectiveEngine` — exactly like the counted public
methods on :class:`~repro.mpi.context.RawComm` do.  The free functions remain
the entry point for *internal* collective use (communicator management, RMA
fences, the non-blocking state machines), so internal callers honor forced
algorithms and tuning tables too.

Under the default policy the engine selects the seed's original algorithms,
whose cost structure the paper's evaluation shapes depend on:

==================  =============================  ==========================
collective          default algorithm              latency / volume
==================  =============================  ==========================
barrier             dissemination                  ⌈log₂ p⌉ · α
bcast / reduce      binomial tree                  ⌈log₂ p⌉ · (α + nβ)
allreduce           recursive doubling (+fold)     ⌈log₂ p⌉ · (α + nβ)
allgather           Bruck                          ⌈log₂ p⌉ · α + (p−1)nβ
allgatherv          ring                           (p−1) · (α + n̄β)
gather(v)/scatter(v) binomial / linear at root     see repro.mpi.algorithms
alltoall(v)         pairwise exchange              (p−1) · α + volume·β
alltoallw           pairwise + datatype penalty    (p−1) · (α + α_dtype) + …
scan / exscan       Hillis–Steele doubling         ⌈log₂ p⌉ rounds
==================  =============================  ==========================

All functions are *internal*: they use the uncounted ``_send``/``_recv``
primitives, so PMPI counters see one call per collective (exactly like the C
profiling interface).
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

import numpy as np

from repro.mpi.algorithms.common import (  # noqa: F401  (re-exported API)
    CODE_ALLGATHER,
    CODE_ALLGATHERV,
    CODE_ALLREDUCE,
    CODE_ALLTOALL,
    CODE_ALLTOALLV,
    CODE_ALLTOALLW,
    CODE_BARRIER,
    CODE_BCAST,
    CODE_EXSCAN,
    CODE_GATHER,
    CODE_GATHERV,
    CODE_NEIGHBOR,
    CODE_NEIGHBORV,
    CODE_REDUCE,
    CODE_SCAN,
    CODE_SCATTER,
    CODE_SCATTERV,
    _combine,
    _validate_root,
)
from repro.mpi.algorithms.neighbor import _require_topology  # noqa: F401
from repro.mpi.ops import Op


def barrier(comm) -> None:
    """Engine-selected barrier (default: dissemination)."""
    comm._coll_algo("barrier").fn(comm)


def bcast(comm, payload: Any, root: int) -> Any:
    """Engine-selected broadcast (default: binomial tree)."""
    return comm._coll_algo("bcast").fn(comm, payload, root)


def gather(comm, payload: Any, root: int) -> Optional[list]:
    """Engine-selected gather (default: binomial tree)."""
    return comm._coll_algo("gather", payload=payload).fn(comm, payload, root)


def gatherv(comm, sendbuf: np.ndarray, recvcounts: Optional[Sequence[int]],
            root: int) -> Optional[np.ndarray]:
    """Engine-selected gatherv (default: linear to the root)."""
    return comm._coll_algo("gatherv", payload=sendbuf).fn(
        comm, sendbuf, recvcounts, root)


def scatter(comm, payloads: Optional[Sequence[Any]], root: int) -> Any:
    """Engine-selected scatter (default: linear from the root)."""
    return comm._coll_algo("scatter").fn(comm, payloads, root)


def scatterv(comm, sendbuf: Optional[np.ndarray],
             sendcounts: Optional[Sequence[int]], root: int) -> np.ndarray:
    """Engine-selected scatterv (default: linear from the root)."""
    return comm._coll_algo("scatterv").fn(comm, sendbuf, sendcounts, root)


def allgather(comm, payload: Any) -> list:
    """Engine-selected allgather (default: Bruck)."""
    return comm._coll_algo("allgather", payload=payload).fn(comm, payload)


def allgatherv(comm, sendbuf: np.ndarray, recvcounts: Sequence[int]) -> np.ndarray:
    """Engine-selected allgatherv (default: ring)."""
    algo = comm._coll_algo(
        "allgatherv",
        hint=lambda: int(np.sum(recvcounts)) * np.asarray(sendbuf).itemsize,
    )
    return algo.fn(comm, sendbuf, recvcounts)


def alltoall(comm, payloads: Sequence[Any]) -> list:
    """Engine-selected alltoall (default: pairwise exchange)."""
    return comm._coll_algo("alltoall", payload=payloads).fn(comm, payloads)


def alltoallv(comm, sendbuf: np.ndarray, sendcounts: Sequence[int],
              recvcounts: Sequence[int]) -> np.ndarray:
    """Engine-selected alltoallv (default: pairwise exchange).

    Zero-size blocks still cost a message — this is the Θ(p·α) term that
    motivates the sparse and grid all-to-all plugins (paper §V-A).
    """
    algo = comm._coll_algo(
        "alltoallv",
        hint=lambda: int(np.sum(sendcounts)) * np.asarray(sendbuf).itemsize,
    )
    return algo.fn(comm, sendbuf, sendcounts, recvcounts)


def alltoallw(comm, send_blocks: Sequence[Any]) -> list:
    """Engine-selected alltoallw (pairwise with the derived-datatype penalty)."""
    return comm._coll_algo("alltoallw", payload=send_blocks).fn(comm, send_blocks)


def reduce(comm, value: Any, op: Op, root: int) -> Any:
    """Engine-selected reduce (default: binomial; ordered fold if non-commutative)."""
    return comm._coll_algo("reduce", payload=value).fn(comm, value, op, root)


def allreduce(comm, value: Any, op: Op) -> Any:
    """Engine-selected allreduce (default: recursive doubling)."""
    return comm._coll_algo("allreduce", payload=value).fn(comm, value, op)


def scan(comm, value: Any, op: Op) -> Any:
    """Engine-selected inclusive prefix reduction (Hillis–Steele)."""
    return comm._coll_algo("scan", payload=value).fn(comm, value, op)


def exscan(comm, value: Any, op: Op) -> Any:
    """Engine-selected exclusive prefix reduction (Hillis–Steele)."""
    return comm._coll_algo("exscan", payload=value).fn(comm, value, op)


def neighbor_alltoall(comm, payloads: Sequence[Any]) -> list:
    """Direct neighborhood exchange (one message per neighbor)."""
    return comm._coll_algo("neighbor_alltoall").fn(comm, payloads)


def neighbor_alltoallv(comm, sendbuf: np.ndarray, sendcounts: Sequence[int],
                       recvcounts: Sequence[int]) -> np.ndarray:
    """Direct variable-size neighborhood exchange: cost Θ(degree), not Θ(p)."""
    return comm._coll_algo("neighbor_alltoallv").fn(
        comm, sendbuf, sendcounts, recvcounts)

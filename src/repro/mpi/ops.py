"""Built-in reduction operations (analogs of ``MPI_SUM`` etc.).

An :class:`Op` pairs an elementwise combiner with metadata the runtime and
the bindings use: commutativity (non-commutative user ops constrain the
reduction algorithms) and an optional identity element (needed by exscan and
by tree reductions over uneven rank counts).

The KaMPIng layer additionally maps STL-style functor objects and plain
Python callables onto these built-ins (see :mod:`repro.core.named_params`),
mirroring the paper's ``std::plus<> -> MPI_SUM`` mapping that lets the
"implementation" pick optimized code paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

import numpy as np


@dataclass(frozen=True)
class Op:
    """A reduction operation usable by reduce/allreduce/scan/exscan."""

    name: str
    fn: Callable[[Any, Any], Any]
    commutative: bool = True
    identity: Optional[Any] = None

    def __call__(self, a: Any, b: Any) -> Any:
        return self.fn(a, b)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Op({self.name})"


SUM = Op("sum", np.add, identity=0)
PROD = Op("prod", np.multiply, identity=1)
MAX = Op("max", np.maximum)
MIN = Op("min", np.minimum)
LAND = Op("land", np.logical_and, identity=True)
LOR = Op("lor", np.logical_or, identity=False)
LXOR = Op("lxor", np.logical_xor, identity=False)
BAND = Op("band", np.bitwise_and)
BOR = Op("bor", np.bitwise_or, identity=0)
BXOR = Op("bxor", np.bitwise_xor, identity=0)

BUILTIN_OPS = {
    op.name: op
    for op in (SUM, PROD, MAX, MIN, LAND, LOR, LXOR, BAND, BOR, BXOR)
}


def user_op(fn: Callable[[Any, Any], Any], *, commutative: bool = True,
            name: str = "user", identity: Optional[Any] = None) -> Op:
    """Wrap a user-provided binary function (the "reduction via lambda" feature)."""
    return Op(name=name, fn=fn, commutative=commutative, identity=identity)

"""Virtual-time communication cost model.

The paper evaluates on SuperMUC-NG (OmniPath, 100 Gbit/s).  We cannot run on
that machine, so the runtime threads a LogGP-style α-β cost model through
every message: per-rank *virtual clocks* advance as operations execute, and
benchmark "running time" is the maximum clock over all ranks.  The *shape* of
the paper's results (who wins, where crossovers fall) emerges from algorithm
structure × this model rather than from hand-written formulas.

Model
-----
- A point-to-point message of ``n`` bytes sent at sender-clock ``t`` becomes
  available to the receiver at ``t + alpha + n * beta``.
- The sending/receiving CPU is busy for ``overhead`` seconds per call.
- Operations on derived datatypes with holes (the ``MPI_Alltoallw`` path used
  internally by MPL) additionally pay ``pack_beta`` per byte and
  ``dtype_alpha`` per peer, reproducing the documented overhead of
  alltoallw-based variable-size collectives.
- Local computation is charged explicitly by applications through
  :meth:`Clock.compute`.

Defaults approximate the paper's testbed: ~2 µs MPI latency and 100 Gbit/s
(≈ 8e-11 s/byte) bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Optional, Sequence, Tuple


@dataclass(frozen=True)
class CostModel:
    """α-β communication cost model with derived-datatype penalties.

    Attributes
    ----------
    alpha:
        Per-message latency in seconds.
    beta:
        Per-byte transfer time in seconds.
    overhead:
        CPU overhead per communication call (LogP's *o*), in seconds.
    pack_beta:
        Extra per-byte cost for pack/unpack of non-contiguous derived
        datatypes (alltoallw path).
    dtype_alpha:
        Extra per-peer setup cost for alltoallw-style calls, paid even for
        zero-byte blocks (real alltoallw cannot skip peers).
    ser_beta:
        Per-byte CPU cost of (de)serialization, charged as compute time by
        the bindings when serialization is explicitly enabled (§III-D3/D4).
    """

    alpha: float = 2.0e-6
    beta: float = 8.0e-11
    overhead: float = 2.0e-7
    pack_beta: float = 2.0e-9
    dtype_alpha: float = 1.0e-6
    ser_beta: float = 1.0e-9

    def transfer_time(self, nbytes: int) -> float:
        """Time for a single message of ``nbytes`` to cross the wire."""
        return self.alpha + nbytes * self.beta

    def packed_transfer_time(self, nbytes: int) -> float:
        """Transfer time along the derived-datatype (alltoallw) path."""
        return self.alpha + self.dtype_alpha + nbytes * (self.beta + self.pack_beta)


#: Cost model in which communication and computation are free.  Used by
#: correctness tests that do not care about virtual time.
FREE = CostModel(
    alpha=0.0, beta=0.0, overhead=0.0, pack_beta=0.0, dtype_alpha=0.0, ser_beta=0.0
)


# -- α-β parameter fitting ----------------------------------------------------
#
# Registered collective cost formulas (repro.mpi.algorithms) are homogeneous
# (piecewise-)linear functions of (alpha, beta, overhead) once the
# derived-datatype knobs are zeroed: formulas sum and scale the model's
# fields, never offset or multiply them together.  That makes online fitting
# a plain linear least-squares problem — evaluate each formula at three
# basis models to extract its coefficient row, then solve
# ``A @ (alpha, beta, overhead) ≈ t`` over the measured samples.  The few
# formulas with a max() saturation branch (alltoall's overlap bound) are
# only piecewise linear; basis extraction over-approximates them and least
# squares absorbs the gap as modeling error, reported in the residual.

#: unit models used to read a formula's (alpha, beta, overhead) coefficients
_BASIS = (
    replace(FREE, alpha=1.0),
    replace(FREE, beta=1.0),
    replace(FREE, overhead=1.0),
)


def linear_coefficients(cost_fn: Callable[[int, int, CostModel], float],
                        p: int, nbytes: int) -> Tuple[float, float, float]:
    """(alpha, beta, overhead) coefficients of a cost formula at ``(p, nbytes)``.

    Exact for the homogeneous-linear formulas and an upper bound for the
    piecewise-linear ones (see above); pack/dtype/serialization terms are
    zeroed, so formulas that also charge them are fitted on their α-β
    portion only."""
    return tuple(float(cost_fn(p, nbytes, m)) for m in _BASIS)


@dataclass(frozen=True)
class AlphaBetaFit:
    """Least-squares α-β parameters fitted from measured timings.

    ``residual`` is the relative RMS error of the fit — RMS of
    ``predicted - measured`` divided by the mean measured time — so 0.0 is a
    perfect fit and values ≳ 1 mean the linear model explains nothing (e.g.
    wall-clock samples dominated by process startup)."""

    alpha: float
    beta: float
    overhead: float
    residual: float
    samples: int

    def model(self, base: Optional[CostModel] = None) -> CostModel:
        """A :class:`CostModel` carrying the fitted α-β parameters.

        Non-fitted fields (pack/dtype/serialization) are taken from ``base``
        (default: the stock :class:`CostModel`)."""
        if base is None:
            base = CostModel()
        return replace(base, alpha=self.alpha, beta=self.beta,
                       overhead=self.overhead)


def fit_alpha_beta(
    rows: Sequence[Tuple[Tuple[float, float, float], float]],
) -> AlphaBetaFit:
    """Fit (alpha, beta, overhead) to measured timings by least squares.

    ``rows`` pairs a coefficient triple (from :func:`linear_coefficients`)
    with the measured seconds for that call.  Negative parameters are
    physically meaningless (they would let the argmin "pay itself" per byte),
    so the solution is clamped at zero and the reported residual is that of
    the clamped parameters."""
    import numpy as np

    if len(rows) < 3:
        raise ValueError(
            f"need at least 3 samples to fit 3 parameters, got {len(rows)}")
    a = np.array([coef for coef, _ in rows], dtype=float)
    y = np.array([t for _, t in rows], dtype=float)
    sol, *_ = np.linalg.lstsq(a, y, rcond=None)
    sol = np.clip(sol, 0.0, None)
    pred = a @ sol
    scale = float(np.mean(y))
    rms = float(np.sqrt(np.mean((pred - y) ** 2)))
    residual = rms / scale if scale > 0 else float("inf") if rms > 0 else 0.0
    return AlphaBetaFit(alpha=float(sol[0]), beta=float(sol[1]),
                        overhead=float(sol[2]), residual=residual,
                        samples=len(rows))


class Clock:
    """Per-rank virtual clock.

    A clock is only ever *written* by its owning rank thread; other threads
    read snapshots of it through message envelopes, so no locking is needed.
    """

    __slots__ = ("now", "model", "comm_seconds", "compute_seconds")

    def __init__(self, model: CostModel):
        self.now: float = 0.0
        self.model = model
        #: accumulated time attributed to communication (for breakdowns)
        self.comm_seconds: float = 0.0
        #: accumulated time attributed to local computation
        self.compute_seconds: float = 0.0

    def compute(self, seconds: float) -> None:
        """Charge ``seconds`` of local computation."""
        if seconds < 0:
            raise ValueError("compute time must be non-negative")
        self.now += seconds
        self.compute_seconds += seconds

    def charge_overhead(self) -> None:
        """Charge the per-call CPU overhead of a communication operation."""
        self.now += self.model.overhead
        self.comm_seconds += self.model.overhead

    def wait_until(self, t: float) -> None:
        """Advance the clock to at least ``t`` (idle/blocked time counts as comm)."""
        if t > self.now:
            self.comm_seconds += t - self.now
            self.now = t

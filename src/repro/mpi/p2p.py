"""Point-to-point matching engine.

Implements the classic MPI receive-side model: each (communicator, rank) pair
owns a :class:`Mailbox` with a *posted-receive queue* and an *unexpected
message queue*.  Incoming envelopes first try to match the oldest compatible
posted receive; receives first try to match the oldest compatible unexpected
envelope.  This preserves MPI's non-overtaking guarantee: messages from the
same sender with compatible tags are matched in send order.

Synchronous sends (``ssend``/``issend``) carry a match event; the sender only
completes once the receiver has matched the message, which is what the NBX
sparse all-to-all algorithm (plugins) relies on for its termination protocol.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.mpi.constants import ANY_SOURCE, ANY_TAG
from repro.mpi.errors import RawDeadlockError, RawProcessFailure, RawUsageError
from repro.mpi.waiting import Backoff

_envelope_ids = itertools.count()


@dataclass
class Status:
    """Receive status (analog of ``MPI_Status``)."""

    source: int
    tag: int
    nbytes: int

    def count(self, itemsize: int = 1) -> int:
        """Number of items of ``itemsize`` bytes in the message (``MPI_Get_count``)."""
        return self.nbytes // max(itemsize, 1)


@dataclass
class Envelope:
    """A message in flight."""

    source: int
    tag: int
    payload: Any
    nbytes: int
    #: virtual time at which the message is available at the receiver
    arrival_time: float
    #: set when a synchronous sender must learn about the match
    sync_event: Optional[threading.Event] = None
    #: receiver-side clock at match time (read by synchronous senders)
    match_clock: float = 0.0
    seq: int = field(default_factory=lambda: next(_envelope_ids))
    #: sender-side creation backtrace (sanitized runs only; see MPIsan)
    origin: tuple = ()

    def matches(self, source: int, tag: int) -> bool:
        return (source == ANY_SOURCE or source == self.source) and (
            tag == ANY_TAG or tag == self.tag
        )


class PendingRecv:
    """A posted receive waiting for a matching envelope."""

    __slots__ = ("source", "tag", "post_clock", "envelope", "event",
                 "cancelled", "origin")

    def __init__(self, source: int, tag: int, post_clock: float):
        self.source = source
        self.tag = tag
        self.post_clock = post_clock
        self.envelope: Optional[Envelope] = None
        self.event = threading.Event()
        self.cancelled = False
        #: creation backtrace (sanitized runs only; see MPIsan)
        self.origin: tuple = ()

    def complete(self, env: Envelope) -> None:
        self.envelope = env
        if env.sync_event is not None:
            env.match_clock = max(env.arrival_time, self.post_clock)
            env.sync_event.set()
        self.event.set()


class Mailbox:
    """Matching queues for one (communicator, rank) endpoint."""

    def __init__(self, deadline_seconds: float = 120.0):
        self._cond = threading.Condition()
        self._posted: list[PendingRecv] = []
        self._unexpected: list[Envelope] = []
        self._deadline = deadline_seconds
        #: callable returning the set of currently-failed peer world ranks
        self.failure_probe: Callable[[], frozenset[int]] = frozenset
        #: maps communicator-local source ranks to world ranks for failure checks
        self.source_to_world: Callable[[int], int] = lambda r: r
        #: callable reporting whether the owning communicator was revoked;
        #: blocked operations on a revoked communicator abort (ULFM semantics)
        self.revoke_probe: Callable[[], bool] = lambda: False
        #: schedule fuzzer of the owning machine (``None`` outside fuzzed runs);
        #: perturbs delivery timing and poll wakeups, never virtual time
        self.fuzz = None

    # -- sending ----------------------------------------------------------

    def deposit(self, env: Envelope) -> None:
        """Deliver an envelope, matching a posted receive if one is waiting."""
        if self.fuzz is not None:
            self.fuzz.pause("deposit")
        with self._cond:
            for i, pr in enumerate(self._posted):
                if pr_matches(pr, env):
                    del self._posted[i]
                    pr.complete(env)
                    self._cond.notify_all()
                    return
            self._unexpected.append(env)
            self._cond.notify_all()

    # -- receiving --------------------------------------------------------

    def post(self, source: int, tag: int, post_clock: float) -> PendingRecv:
        """Post a receive; matches an unexpected envelope immediately if present."""
        pr = PendingRecv(source, tag, post_clock)
        with self._cond:
            for i, env in enumerate(self._unexpected):
                if env.matches(source, tag):
                    del self._unexpected[i]
                    pr.complete(env)
                    return pr
            self._posted.append(pr)
        return pr

    def wait(self, pr: PendingRecv) -> Envelope:
        """Block until the posted receive completes.

        Raises :class:`RawProcessFailure` if the awaited source dies while the
        receive is pending, and :class:`RawDeadlockError` if the machine's
        deadlock deadline elapses.  On every error path the receive is first
        cancelled; if an envelope matched it in the meantime the receive has
        completed (``MPI_Cancel`` cannot undo a match) and the envelope is
        delivered instead of raising.
        """
        backoff = Backoff(self._deadline, fuzz=self.fuzz)
        while not pr.event.wait(timeout=backoff.next_timeout()):
            if self.revoke_probe():
                if not self.cancel(pr):
                    break  # matched concurrently: deliver, don't drop
                from repro.mpi.errors import RawCommRevoked

                raise RawCommRevoked("communicator revoked while receive pending")
            failed = self.failure_probe()
            if failed and self._source_failed(pr, failed):
                if not self.cancel(pr):
                    break
                raise RawProcessFailure(failed)
            if backoff.expired:
                if not self.cancel(pr):
                    break
                raise RawDeadlockError(
                    f"recv(source={pr.source}, tag={pr.tag}) exceeded the "
                    f"{self._deadline:.0f}s deadlock deadline"
                )
        if pr.envelope is None:
            # only reachable by waiting on a receive cancelled elsewhere
            raise RawUsageError("wait() on a cancelled receive")
        return pr.envelope

    def _source_failed(self, pr: PendingRecv, failed: frozenset[int]) -> bool:
        if pr.source == ANY_SOURCE:
            return True  # any failure may leave a wildcard recv stuck: report it
        return self.source_to_world(pr.source) in failed

    def cancel(self, pr: PendingRecv) -> bool:
        """Try to cancel a posted receive (``MPI_Cancel`` semantics).

        Returns ``True`` when the receive was still unmatched: it is removed
        from the posted queue and marked cancelled.  Returns ``False`` when an
        envelope already matched it — a matched receive must complete
        normally, so the caller has to consume ``pr.envelope`` (via ``wait``/
        ``test``) instead of treating the operation as cancelled.  The
        previous behaviour (cancel unconditionally) silently dropped the
        matched message and, for synchronous sends, left the sender convinced
        its message had been received.
        """
        with self._cond:
            if pr.envelope is not None:
                return False
            pr.cancelled = True
            try:
                self._posted.remove(pr)
            except ValueError:
                pass
            pr.event.set()  # wake any waiter; it observes the cancellation
            return True

    def test(self, pr: PendingRecv) -> Optional[Envelope]:
        """Non-blocking completion check for a posted receive."""
        if pr.event.is_set():
            return pr.envelope
        return None

    # -- probing ----------------------------------------------------------

    def iprobe(self, source: int, tag: int) -> Optional[Envelope]:
        """Check for a matching unexpected message without consuming it."""
        with self._cond:
            for env in self._unexpected:
                if env.matches(source, tag):
                    return env
        return None

    def probe(self, source: int, tag: int) -> Envelope:
        """Block until a matching message is available; do not consume it.

        Failure, revocation, and deadline checks run on every wakeup: a
        notified-but-unmatched wakeup (a message for a different receive)
        must not stall the deadline clock, which accounts real elapsed time.
        """
        backoff = Backoff(self._deadline, fuzz=self.fuzz)
        while True:
            with self._cond:
                for env in self._unexpected:
                    if env.matches(source, tag):
                        return env
                self._cond.wait(timeout=backoff.next_timeout())
            if self.revoke_probe():
                from repro.mpi.errors import RawCommRevoked

                raise RawCommRevoked("communicator revoked while probing")
            failed = self.failure_probe()
            if failed and (
                source == ANY_SOURCE or self.source_to_world(source) in failed
            ):
                raise RawProcessFailure(failed)
            if backoff.expired:
                raise RawDeadlockError(
                    f"probe(source={source}, tag={tag}) exceeded the "
                    f"{self._deadline:.0f}s deadlock deadline"
                )

    def pending_count(self) -> int:
        """Number of queued unexpected messages (diagnostics only)."""
        with self._cond:
            return len(self._unexpected)

    def audit_snapshot(self) -> tuple[tuple[PendingRecv, ...], tuple[Envelope, ...]]:
        """Consistent snapshot of both queues (MPIsan's finalize-time sweep)."""
        with self._cond:
            return tuple(self._posted), tuple(self._unexpected)


def pr_matches(pr: PendingRecv, env: Envelope) -> bool:
    """Does envelope ``env`` satisfy posted receive ``pr``?"""
    return (pr.source == ANY_SOURCE or pr.source == env.source) and (
        pr.tag == ANY_TAG or pr.tag == env.tag
    )

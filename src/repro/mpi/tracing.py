"""Structured communication tracing for the simulated machine.

The paper validates the zero-overhead claim through the MPI profiling
interface (§III-H): *only the expected MPI calls are issued*.  Counting call
kinds (:mod:`repro.mpi.profiling`) proves the "which calls" half; this module
adds the other half — *what* each call moved.  A :class:`TraceRecorder` owned
by the :class:`~repro.mpi.machine.Machine` records one :class:`TraceEvent`
per raw MPI operation: op kind, world/local rank, peer set, tag, payload
bytes (split into a sent and a received contribution), and virtual start/end
timestamps taken from the per-rank :class:`~repro.mpi.costmodel.Clock`.

Tracing is **off by default** and costs nothing when disabled: the machine
then holds the :data:`NULL_TRACER` singleton whose ``span()`` returns a
shared no-op handle, so the hot path pays one attribute check per call and
the virtual clocks and PMPI counters are bit-identical to an untraced run
(the existing counter tests verify this).

On top of the recorder:

- :meth:`TraceRecorder.to_chrome_trace` exports the run in the Chrome
  trace-event JSON format (load it in ``chrome://tracing`` / Perfetto);
- :meth:`TraceRecorder.per_op_totals` aggregates calls/bytes/seconds per op
  kind (the byte columns the figure benchmarks attach to their BENCH JSON);
- :func:`calls` builds :class:`CallSpec` values that extend
  :func:`repro.mpi.profiling.expect_calls` assertions from call counts to
  byte volumes and peer sets.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Hashable, Iterable, Optional, Sequence

from repro.mpi.datatypes import payload_nbytes


@dataclass(frozen=True)
class TraceEvent:
    """One raw MPI operation as observed by the rank that issued it."""

    #: raw call kind, e.g. ``"allgatherv"`` (``"timer:<name>"`` for spans
    #: recorded by :class:`repro.core.measurements.Timer`)
    op: str
    #: issuing rank's world rank / rank within ``comm``
    world_rank: int
    rank: int
    #: communicator id the call was issued on
    comm: Hashable
    #: world ranks of the peers this call communicates with (empty when the
    #: peer set is unknown, e.g. a not-yet-matched wildcard receive)
    peers: tuple[int, ...]
    #: user/collective tag, when the op carries one
    tag: Optional[int]
    #: payload bytes this rank put on the wire (send-side contribution)
    sent: int
    #: payload bytes delivered into this rank's result buffers
    recvd: int
    #: virtual timestamps (seconds) from the issuing rank's clock
    t_start: float
    t_end: float
    #: name of the collective algorithm the engine selected (``None`` for
    #: point-to-point and management operations)
    algorithm: Optional[str] = None
    #: name of the IR rewrite pass that produced this op, when the run is an
    #: IR replay of an optimized epoch (``None``: op as the program wrote it)
    ir_pass: Optional[str] = None
    #: cluster-service job label the op was issued on behalf of, when the
    #: run is a service rank executing a leased job (``None``: not job work)
    job: Optional[str] = None

    @property
    def nbytes(self) -> int:
        """Total payload bytes attributed to the call (sent + received)."""
        return self.sent + self.recvd

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start


def _sum_payload_bytes(obj: Any) -> int:
    """Byte size of a payload, summing element-wise over lists of payloads."""
    if obj is None:
        return 0
    if isinstance(obj, (list, tuple)):
        return sum(payload_nbytes(x) for x in obj)
    return payload_nbytes(obj)


#: payload-size bucket edges for the Chrome-trace export (bytes)
_SIZE_BUCKETS = ((0, "0"), (1024, "<=1KiB"), (64 * 1024, "<=64KiB"),
                 (1024 * 1024, "<=1MiB"))


def size_bucket(nbytes: int) -> str:
    """Coarse payload-size class used in Chrome-trace event args."""
    for limit, label in _SIZE_BUCKETS:
        if nbytes <= limit:
            return label
    return ">1MiB"


class _Span:
    """Mutable recording handle for one in-flight operation."""

    __slots__ = ("_recorder", "_comm", "op", "_peers", "tag", "sent", "recvd",
                 "algorithm", "ir_pass", "job", "_t_start")

    def __init__(self, recorder: "TraceRecorder", comm, op: str,
                 peers: Sequence[int], tag: Optional[int], sent: int,
                 algorithm: Optional[str] = None,
                 ir_pass: Optional[str] = None,
                 job: Optional[str] = None):
        self._recorder = recorder
        self._comm = comm
        self.op = op
        #: local peer ranks, or one of the lazy markers "all" (every member
        #: of the communicator) / "neighbors" (topology neighborhood)
        self._peers = peers if isinstance(peers, str) else tuple(peers)
        self.tag = tag
        self.sent = sent
        self.recvd = 0
        self.algorithm = algorithm
        self.ir_pass = ir_pass
        self.job = job
        self._t_start = 0.0

    def set(self, *, peers: Optional[Sequence[int]] = None,
            tag: Optional[int] = None,
            sent: Optional[int] = None, recvd: Optional[int] = None,
            sent_payload: Any = None, recvd_payload: Any = None,
            algorithm: Optional[str] = None) -> None:
        """Fill in details only known once the operation progressed.

        ``peers`` are communicator-local ranks (resolved to world ranks at
        event creation); ``*_payload`` variants size an arbitrary payload —
        pass these instead of pre-computed byte counts so a disabled tracer
        never pays for sizing.
        """
        if peers is not None:
            self._peers = peers if isinstance(peers, str) else tuple(peers)
        if tag is not None:
            self.tag = tag
        if sent is not None:
            self.sent = sent
        if recvd is not None:
            self.recvd = recvd
        if sent_payload is not None:
            self.sent = _sum_payload_bytes(sent_payload)
        if recvd_payload is not None:
            self.recvd = _sum_payload_bytes(recvd_payload)
        if algorithm is not None:
            self.algorithm = algorithm

    def __enter__(self) -> "_Span":
        self._t_start = self._comm.clock.now
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        comm = self._comm
        members = comm.state.members
        if self._peers == "all":
            world_peers = tuple(members)
        else:
            local = (comm._neighbor_peers() if self._peers == "neighbors"
                     else self._peers)
            world_peers = tuple(
                members[p] for p in local if 0 <= p < len(members)
            )
        self._recorder._append(TraceEvent(
            op=self.op,
            world_rank=comm.world_rank,
            rank=comm.rank,
            comm=comm.comm_id,
            peers=world_peers,
            tag=self.tag,
            sent=self.sent,
            recvd=self.recvd,
            t_start=self._t_start,
            t_end=comm.clock.now,
            algorithm=self.algorithm,
            ir_pass=self.ir_pass,
            job=self.job,
        ))
        return False


class _NullSpan:
    """Shared do-nothing span handed out by the disabled tracer."""

    __slots__ = ()

    def set(self, **kwargs) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTraceRecorder:
    """Disabled recorder: every operation is a no-op.

    This is the machine's default.  ``enabled`` is the fast-path flag
    :meth:`RawComm._span <repro.mpi.context.RawComm._span>` checks before
    sizing payloads, so an untraced run never serializes or copies anything
    on behalf of the tracer.
    """

    enabled = False

    def span(self, comm, op: str, *, peers: Sequence[int] = (),
             tag: Optional[int] = None, sent: int = 0,
             algorithm: Optional[str] = None,
             ir_pass: Optional[str] = None,
             job: Optional[str] = None) -> _NullSpan:
        return _NULL_SPAN

    def record(self, comm, op: str, *, t_start: float, t_end: float,
               peers: Sequence[int] = (), tag: Optional[int] = None,
               sent: int = 0, recvd: int = 0) -> None:
        pass

    def events_for(self, world_rank: int) -> tuple:
        return ()

    def all_events(self) -> list:
        return []

    def events_for_job(self, job: str) -> list:
        return []

    def per_op_totals(self) -> dict:
        return {}


#: Singleton disabled recorder shared by all untraced machines.
NULL_TRACER = NullTraceRecorder()


class TraceRecorder:
    """Per-rank event log of every raw MPI operation in a run.

    Each rank thread appends only to its own list, so recording needs no
    locking (the same discipline :class:`~repro.mpi.costmodel.Clock` uses).
    """

    enabled = True

    def __init__(self, num_ranks: int):
        self.num_ranks = num_ranks
        self._events: list[list[TraceEvent]] = [[] for _ in range(num_ranks)]

    # -- recording ---------------------------------------------------------

    def span(self, comm, op: str, *, peers: Sequence[int] = (),
             tag: Optional[int] = None, sent: int = 0,
             algorithm: Optional[str] = None,
             ir_pass: Optional[str] = None,
             job: Optional[str] = None) -> _Span:
        """Open a recording span; the event is appended when it exits."""
        return _Span(self, comm, op, peers, tag, sent, algorithm, ir_pass,
                     job)

    def record(self, comm, op: str, *, t_start: float, t_end: float,
               peers: Sequence[int] = (), tag: Optional[int] = None,
               sent: int = 0, recvd: int = 0) -> None:
        """Append a completed event directly (used by the measurement layer)."""
        members = comm.state.members
        self._append(TraceEvent(
            op=op, world_rank=comm.world_rank, rank=comm.rank,
            comm=comm.comm_id,
            peers=tuple(members[p] for p in peers if 0 <= p < len(members)),
            tag=tag, sent=sent, recvd=recvd,
            t_start=t_start, t_end=t_end,
        ))

    def _append(self, event: TraceEvent) -> None:
        self._events[event.world_rank].append(event)

    # -- queries -----------------------------------------------------------

    def events_for(self, world_rank: int) -> tuple[TraceEvent, ...]:
        """The events issued by one world rank, in issue order."""
        return tuple(self._events[world_rank])

    def all_events(self) -> list[TraceEvent]:
        """Every event of the run, ordered by (start time, rank)."""
        merged = [e for per_rank in self._events for e in per_rank]
        merged.sort(key=lambda e: (e.t_start, e.world_rank, e.t_end))
        return merged

    def events_for_job(self, job: str) -> list[TraceEvent]:
        """Every event issued on behalf of one cluster-service job.

        Per-job trace scoping: service ranks stamp the job label on ops they
        run inside a leased communicator, so one shared recorder can be
        sliced back into per-job traces (ordered like :meth:`all_events`).
        """
        return [e for e in self.all_events() if e.job == job]

    def per_op_totals(self, *, by_algorithm: bool = False
                      ) -> dict[str, dict[str, float]]:
        """Aggregate ``{op: {calls, sent, recvd, bytes, seconds}}`` over ranks.

        With ``by_algorithm=True`` the keys become ``"op[algorithm]"`` for
        events that carry an algorithm name (collectives), splitting each
        collective's totals by the implementation the engine selected.
        """
        out: dict[str, dict[str, float]] = {}
        for per_rank in self._events:
            for e in per_rank:
                key = e.op
                if by_algorithm and e.algorithm is not None:
                    key = f"{e.op}[{e.algorithm}]"
                agg = out.setdefault(key, {
                    "calls": 0, "sent": 0, "recvd": 0, "bytes": 0,
                    "seconds": 0.0,
                })
                agg["calls"] += 1
                agg["sent"] += e.sent
                agg["recvd"] += e.recvd
                agg["bytes"] += e.nbytes
                agg["seconds"] += e.duration
        return out

    def algorithms_used(self) -> dict[str, tuple[str, ...]]:
        """``{op: sorted algorithm names}`` over all collective events."""
        seen: dict[str, set[str]] = {}
        for per_rank in self._events:
            for e in per_rank:
                if e.algorithm is not None:
                    seen.setdefault(e.op, set()).add(e.algorithm)
        return {op: tuple(sorted(names)) for op, names in sorted(seen.items())}

    def collective_samples(self) -> list[tuple[str, str, int, int, float]]:
        """Per-instance collective timings: ``(op, algorithm, p, nbytes, s)``.

        This is the autotuner's harvesting query (:mod:`repro.mpi.autotune`).
        Ranks of one communicator issue the same sequence of collectives
        (SPMD — reprolint's RPL10x rules exist to enforce exactly this), so
        the *k*-th ``(comm, op)`` event on each member rank belongs to the
        same collective instance.  Per instance:

        - ``p`` is the communicator size (``len(peers)`` — collective spans
          resolve ``peers="all"`` to every member's world rank);
        - ``nbytes`` is the engine's size hint reconstructed from the event:
          the max over ranks of ``sent`` (``recvd`` for allgatherv, whose
          hint convention is total-gathered bytes);
        - seconds is the max event duration over ranks — the virtual time
          the slowest rank spent inside the call, matching how
          ``RunResult.max_time`` scores a run.
        """
        instances: dict[tuple[Hashable, str, int], list[TraceEvent]] = {}
        for per_rank in self._events:
            counters: dict[tuple[Hashable, str], int] = {}
            for e in per_rank:
                if e.algorithm is None:
                    continue
                key = (e.comm, e.op)
                idx = counters.get(key, 0)
                counters[key] = idx + 1
                instances.setdefault((e.comm, e.op, idx), []).append(e)
        rows = []
        for (_, op, _), events in instances.items():
            hint_field = "recvd" if op == "allgatherv" else "sent"
            rows.append((
                op,
                events[0].algorithm,
                max(len(e.peers) for e in events),
                max(getattr(e, hint_field) for e in events),
                max(e.duration for e in events),
            ))
        rows.sort()
        return rows

    def per_rank_bytes(self) -> list[dict[str, int]]:
        """Per-rank ``{"sent": ..., "recvd": ...}`` payload totals."""
        return [
            {
                "sent": sum(e.sent for e in per_rank),
                "recvd": sum(e.recvd for e in per_rank),
            }
            for per_rank in self._events
        ]

    # -- export ------------------------------------------------------------

    def to_chrome_trace(self) -> dict[str, Any]:
        """Export as a Chrome trace-event JSON object.

        One complete ("ph": "X") event per operation, with the virtual clock
        mapped to microseconds; ranks appear as threads of a single process,
        so ``chrome://tracing`` / Perfetto draws one swim-lane per rank.
        """
        trace_events: list[dict[str, Any]] = []
        for rank in range(self.num_ranks):
            trace_events.append({
                "name": "thread_name", "ph": "M", "pid": 0, "tid": rank,
                "args": {"name": f"rank {rank}"},
            })
        for e in self.all_events():
            args: dict[str, Any] = {
                "rank": e.rank,
                "comm": repr(e.comm),
                "peers": list(e.peers),
                "sent_bytes": e.sent,
                "recvd_bytes": e.recvd,
            }
            if e.tag is not None:
                args["tag"] = e.tag
            if e.algorithm is not None:
                args["algorithm"] = e.algorithm
                args["size_bucket"] = size_bucket(e.nbytes)
            if e.ir_pass is not None:
                args["ir_pass"] = e.ir_pass
            if e.job is not None:
                args["job"] = e.job
            if e.op.startswith("timer:"):
                cat = "timer"
            elif e.op.startswith("leak:"):
                cat = "sanitizer"
            elif e.op.startswith("fault:"):
                cat = "fault"
            else:
                cat = "mpi"
            trace_events.append({
                "name": e.op,
                "cat": cat,
                "ph": "X",
                "pid": 0,
                "tid": e.world_rank,
                "ts": e.t_start * 1e6,
                "dur": e.duration * 1e6,
                "args": args,
            })
        return {"traceEvents": trace_events, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path) -> None:
        """Write :meth:`to_chrome_trace` JSON to ``path``."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_chrome_trace(), fh)


# -- volume-aware call assertions ------------------------------------------


@dataclass(frozen=True)
class CallSpec:
    """Expected profile of one raw call kind inside an ``expect_calls`` block.

    ``bytes``/``sent``/``recvd`` assert byte volumes summed over the block's
    events of that kind; ``peers`` asserts the union of their peer sets
    (world ranks).  Anything left ``None`` is not checked.
    """

    count: int
    bytes: Optional[int] = None
    sent: Optional[int] = None
    recvd: Optional[int] = None
    peers: Optional[frozenset[int]] = None
    #: assert every event of this kind ran the named collective algorithm
    algorithm: Optional[str] = None

    def check(self, op: str, events: Sequence[TraceEvent], *,
              check_count: bool = True) -> list[str]:
        """Return human-readable mismatch descriptions (empty if satisfied)."""
        problems = []
        if check_count and len(events) != self.count:
            problems.append(f"expected {self.count} × {op}, saw {len(events)}")
        for label, want, have in (
            ("bytes", self.bytes, sum(e.nbytes for e in events)),
            ("sent bytes", self.sent, sum(e.sent for e in events)),
            ("recvd bytes", self.recvd, sum(e.recvd for e in events)),
        ):
            if want is not None and have != want:
                problems.append(f"{op}: expected {want} {label}, saw {have}")
        if self.peers is not None:
            have_peers = frozenset(p for e in events for p in e.peers)
            if have_peers != self.peers:
                problems.append(
                    f"{op}: expected peers {sorted(self.peers)}, "
                    f"saw {sorted(have_peers)}"
                )
        if self.algorithm is not None:
            have_algos = sorted({str(e.algorithm) for e in events})
            if have_algos != [self.algorithm]:
                problems.append(
                    f"{op}: expected algorithm {self.algorithm!r}, "
                    f"saw {have_algos}"
                )
        return problems


def calls(count: int, *, bytes: Optional[int] = None,
          sent: Optional[int] = None, recvd: Optional[int] = None,
          peers: Optional[Iterable[int]] = None,
          algorithm: Optional[str] = None) -> CallSpec:
    """Build a :class:`CallSpec` for :func:`repro.mpi.profiling.expect_calls`.

    Example — the paper's allgatherv count-inference path, now pinned down to
    its exact volumes::

        with expect_calls(comm.raw,
                          allgather=1,
                          allgatherv=calls(1, recvd=total_bytes,
                                           peers=range(comm.size))):
            comm.allgatherv(send_buf(v))
    """
    return CallSpec(
        count=count, bytes=bytes, sent=sent, recvd=recvd,
        peers=frozenset(peers) if peers is not None else None,
        algorithm=algorithm,
    )

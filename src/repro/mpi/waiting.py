"""Real-time wait discipline for blocking operations.

Every blocking primitive of the runtime (mailbox waits, probes, synchronous
sends, non-blocking-collective progress loops, RMA locks, shrink rendezvous)
needs the same three ingredients:

- an **event- or condition-based wait** so the thread sleeps until a peer
  actually makes progress instead of spinning at a fixed interval;
- **capped exponential backoff** on the wait timeout, so failure checks
  (process death, revocation, the deadlock deadline) start out responsive and
  settle at a cheap polling rate for long waits;
- **deadline accounting on real elapsed time** (``time.monotonic``), not on
  accumulated step counts — a wait that returns early (a notify for a
  different message, a spurious wakeup) must not stall the deadline clock.

:class:`Backoff` bundles these.  The optional ``fuzz`` hook lets the schedule
fuzzer (:mod:`repro.mpi.sanitizer`) perturb poll-wakeup ordering
deterministically without the wait loops knowing about it.
"""

from __future__ import annotations

import time
from typing import Optional, Protocol


class WakeupFuzz(Protocol):  # pragma: no cover - typing only
    def jitter(self, timeout: float) -> float: ...


#: first wait timeout handed out by a fresh :class:`Backoff` (seconds)
INITIAL_STEP = 0.001
#: ceiling for the exponentially-growing wait timeout (seconds)
MAX_STEP = 0.05
#: smallest timeout ever handed out (keeps fuzzed timeouts positive)
MIN_STEP = 1e-4


class Backoff:
    """Deadline-tracked wait pacing with capped exponential backoff.

    ``deadline`` is the wall-clock budget in seconds; :attr:`expired` flips
    once that much *real* time has elapsed since construction, no matter how
    many (possibly early-returning) waits happened in between.
    """

    __slots__ = ("_deadline", "_start", "_step", "_cap", "_fuzz")

    def __init__(self, deadline: float, *, initial: float = INITIAL_STEP,
                 cap: float = MAX_STEP, fuzz: Optional[WakeupFuzz] = None):
        self._deadline = deadline
        self._start = time.monotonic()
        self._step = max(initial, MIN_STEP)
        self._cap = cap
        self._fuzz = fuzz

    def next_timeout(self) -> float:
        """The timeout for the next wait; doubles up to the cap each call.

        Never exceeds the time remaining until the deadline (plus the
        minimum step), so an expiring wait wakes up close to the deadline
        instead of oversleeping a whole backoff period.
        """
        step = self._step
        self._step = min(self._step * 2.0, self._cap)
        if self._fuzz is not None:
            step = self._fuzz.jitter(step)
        remaining = self._deadline - self.elapsed
        return max(min(step, remaining), MIN_STEP)

    @property
    def elapsed(self) -> float:
        """Real seconds since this wait began."""
        return time.monotonic() - self._start

    @property
    def expired(self) -> bool:
        """True once the deadline's worth of real time has elapsed."""
        return self.elapsed >= self._deadline

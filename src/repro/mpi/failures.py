"""Failure injection utilities (substrate for the ULFM plugin).

A :class:`FailureScript` lets tests and benchmarks declare *where* ranks die:
ranks call :meth:`FailureScript.checkpoint` at interesting program points, and
the script kills the configured ranks at the configured checkpoints.  Death is
modelled by raising :class:`~repro.mpi.errors.ProcessKilled`, which unwinds
the rank thread; peers subsequently observe
:class:`~repro.mpi.errors.RawProcessFailure` from any operation that needs
the dead rank.

Scripted checkpoints are the simplest injection mode; for counted-operation,
mid-collective, probabilistic, and slow-rank injection see
:class:`~repro.mpi.faultinject.FaultCampaign`, whose
:meth:`~repro.mpi.faultinject.FaultCampaign.checkpoint` method is a drop-in
superset of this class.
"""

from __future__ import annotations

from typing import Hashable

from repro.mpi.context import RawComm
from repro.mpi.errors import ProcessKilled


class FailureScript:
    """Declarative failure plan: ``{checkpoint_name: {ranks to kill}}``."""

    def __init__(self, plan: dict[Hashable, set[int]]):
        self.plan = {k: set(v) for k, v in plan.items()}

    def checkpoint(self, comm: RawComm, name: Hashable) -> None:
        """Kill the calling rank if the plan says so at this checkpoint."""
        victims = self.plan.get(name)
        if victims and comm.world_rank in victims:
            comm.machine.mark_failed(comm.world_rank)
            raise ProcessKilled(comm.world_rank)


def no_failures() -> FailureScript:
    """A script that never kills anyone."""
    return FailureScript({})

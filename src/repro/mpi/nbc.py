"""Non-blocking collectives (MPI-3): ``ibcast``, ``iallreduce``, ``iallgather``.

Implemented the way real MPIs without progress threads do it: each request is
a **state machine over non-blocking point-to-point operations** that advances
on every ``test()``/``wait()`` call (progress-on-test semantics — the MPI
standard makes no asynchronous-progress guarantee, which is exactly why
``std::future`` cannot model MPI requests; paper §III-E).

The algorithms mirror the blocking ones (binomial tree, recursive doubling,
Bruck), so the virtual-time cost structure is identical; completion order
follows the algorithm's data dependencies.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

import numpy as np

from repro.mpi.collectives import _combine
from repro.mpi.errors import RawDeadlockError, RawUsageError
from repro.mpi.ops import Op
from repro.mpi.requests import RawRequest, RecvRequest
from repro.mpi.waiting import Backoff

CODE_IBCAST = 17
CODE_IALLREDUCE = 18
CODE_IALLGATHER = 19


class StateMachineRequest(RawRequest):
    """A collective request driven by repeatedly calling :meth:`_advance`.

    Subclasses implement ``_advance() -> bool`` (True when complete) and set
    ``self._value`` before completing.
    """

    def __init__(self, comm):
        self._comm = comm
        self._done = False
        self._value: Any = None

    def _advance(self) -> bool:
        raise NotImplementedError

    def test(self) -> tuple[bool, Any]:
        if not self._done:
            self._done = self._advance()
        return self._done, self._value if self._done else None

    def wait(self) -> Any:
        import time

        # progress-on-test: _advance() must keep running, so this is a poll
        # loop — with a small backoff cap (the state machine only moves when
        # polled) and the deadline accounted on real elapsed time
        backoff = Backoff(self._comm.machine.deadline, initial=0.0005,
                          cap=0.002, fuzz=self._comm.machine.fuzzer)
        while not self._done:
            self._done = self._advance()
            if not self._done:
                if backoff.expired:
                    raise RawDeadlockError(
                        f"{type(self).__name__} never completed"
                    )
                time.sleep(backoff.next_timeout())
        return self._value

    def audit_state(self) -> str:
        return "completed" if self._done else "pending"

    def audit_pending_recvs(self) -> tuple:
        """Posted receives of the in-flight state machine (auditor dedup)."""
        return tuple(
            req._pr for req in self._internal_recvs()
            if isinstance(req, RecvRequest)
        )

    def _internal_recvs(self) -> tuple:
        return ()


class IBcastRequest(StateMachineRequest):
    """Binomial-tree broadcast, one tree level per state transition."""

    def __init__(self, comm, payload: Any, root: int, tag: int):
        super().__init__(comm)
        p, r = comm.size, comm.rank
        self._tag = tag
        self._root = root
        self._vr = (r - root) % p
        self._p = p
        self._recv_req = None
        if self._vr == 0:
            self._value = payload
            self._have_data = True
        else:
            self._have_data = False
            mask = 1
            while mask < p:
                if self._vr & mask:
                    src = (self._vr - mask + root) % p
                    self._recv_req = comm._irecv(src, tag)
                    self._recv_mask = mask
                    break
                mask <<= 1

    def _advance(self) -> bool:
        if not self._have_data:
            done, value = self._recv_req.test()
            if not done:
                return False
            self._value, _ = value
            self._have_data = True
        # forward to children (buffered sends complete immediately)
        mask = (self._recv_mask >> 1) if self._vr else _top_mask(self._p)
        while mask > 0:
            child = self._vr + mask
            if child < self._p:
                self._comm._send(self._value, (child + self._root) % self._p,
                                 self._tag)
            mask >>= 1
        return True

    def _internal_recvs(self) -> tuple:
        return (self._recv_req,) if self._recv_req is not None else ()


def _top_mask(p: int) -> int:
    mask = 1
    while mask < p:
        mask <<= 1
    return mask >> 1


class IAllreduceRequest(StateMachineRequest):
    """Recursive-doubling allreduce with non-power-of-two folding."""

    def __init__(self, comm, value: Any, op: Op, tag: int):
        super().__init__(comm)
        if not op.commutative:
            raise RawUsageError(
                "iallreduce supports commutative operations only; use the "
                "blocking allreduce for ordered reductions"
            )
        p, r = comm.size, comm.rank
        self._op = op
        self._tag = tag
        self._acc = value
        self._p2 = 1 << (p.bit_length() - 1)
        self._rem = p - self._p2
        self._p, self._r = p, r
        self._pending: Optional[tuple] = None  # (kind, request)
        self._mask = 1

        if p == 1:
            self._value = value
            self._phase = "done"
        elif r < 2 * self._rem and r % 2 == 1:
            comm._send(self._acc, r - 1, tag)
            self._pending = ("final", comm._irecv(r - 1, tag))
            self._phase = "await_final"
        elif r < 2 * self._rem:
            self._pending = ("fold", comm._irecv(r + 1, tag))
            self._phase = "fold"
            self._new_rank = r // 2
        else:
            self._new_rank = r - self._rem
            self._phase = "doubling"
            self._start_round()

    def _partner(self) -> int:
        partner_new = self._new_rank ^ self._mask
        return (partner_new * 2 if partner_new < self._rem
                else partner_new + self._rem)

    def _start_round(self) -> None:
        if self._mask < self._p2:
            partner = self._partner()
            self._comm._send(self._acc, partner, self._tag)
            self._pending = ("round", self._comm._irecv(partner, self._tag))
        else:
            self._finish_active()

    def _finish_active(self) -> None:
        if self._r < 2 * self._rem:  # r even: deliver to the folded partner
            self._comm._send(self._acc, self._r + 1, self._tag)
        self._value = self._acc
        self._phase = "done"

    def _advance(self) -> bool:
        while self._phase != "done":
            if self._pending is None:
                return False
            kind, req = self._pending
            done, value = req.test()
            if not done:
                return False
            payload, _ = value
            self._pending = None
            if kind == "final":
                self._value = payload
                self._phase = "done"
            elif kind == "fold":
                self._acc = _combine(self._op, self._acc, payload)
                self._phase = "doubling"
                self._start_round()
            else:  # round
                self._acc = _combine(self._op, self._acc, payload)
                self._mask <<= 1
                self._start_round()
        return True

    def _internal_recvs(self) -> tuple:
        return (self._pending[1],) if self._pending is not None else ()


class IAllgatherRequest(StateMachineRequest):
    """Bruck allgather, one round per state transition."""

    def __init__(self, comm, payload: Any, tag: int):
        super().__init__(comm)
        self._tag = tag
        self._blocks: list = [payload]
        self._k = 1
        self._pending = None
        if comm.size == 1:
            self._value = [payload]
        else:
            self._start_round()

    def _start_round(self) -> None:
        comm = self._comm
        p, r = comm.size, comm.rank
        send_cnt = min(self._k, p - self._k)
        comm._send(self._blocks[:send_cnt], (r - self._k) % p, self._tag)
        self._pending = comm._irecv((r + self._k) % p, self._tag)

    def _advance(self) -> bool:
        if self._value is not None:
            return True
        comm = self._comm
        p, r = comm.size, comm.rank
        while True:
            done, value = self._pending.test()
            if not done:
                return False
            other, _ = value
            self._blocks.extend(other)
            self._k <<= 1
            if self._k < p:
                self._start_round()
                continue
            out: list = [None] * p
            for i in range(p):
                out[(r + i) % p] = self._blocks[i]
            self._value = out
            return True

    def _internal_recvs(self) -> tuple:
        return (self._pending,) if self._pending is not None else ()


def _track(comm, req, op: str, tag: int):
    """Register a collective request with the machine's resource auditor."""
    auditor = comm.machine.auditor
    if auditor.enabled:
        auditor.track_request(req, comm, op=op, tag=tag)
    return req


def ibcast(comm, payload: Any, root: int = 0) -> IBcastRequest:
    """Start a non-blocking broadcast (``MPI_Ibcast``)."""
    comm._count("ibcast")
    comm._check_usable()
    tag = comm._next_coll_tag(CODE_IBCAST)
    with comm._span("ibcast", peers=(root,), tag=tag,
                    payload=payload if comm.rank == root else None):
        return _track(comm, IBcastRequest(comm, payload, root, tag),
                      "ibcast", tag)


def iallreduce(comm, value: Any, op: Op) -> IAllreduceRequest:
    """Start a non-blocking allreduce (``MPI_Iallreduce``)."""
    comm._count("iallreduce")
    comm._check_usable()
    tag = comm._next_coll_tag(CODE_IALLREDUCE)
    with comm._span("iallreduce", peers="all", tag=tag, payload=value):
        return _track(comm, IAllreduceRequest(comm, value, op, tag),
                      "iallreduce", tag)


def iallgather(comm, payload: Any) -> IAllgatherRequest:
    """Start a non-blocking allgather (``MPI_Iallgather``)."""
    comm._count("iallgather")
    comm._check_usable()
    tag = comm._next_coll_tag(CODE_IALLGATHER)
    with comm._span("iallgather", peers="all", tag=tag, payload=payload):
        return _track(comm, IAllgatherRequest(comm, payload, tag),
                      "iallgather", tag)

"""One-sided communication (RMA): windows, put/get/accumulate, epochs.

The paper's conclusion plans to "extend the standard coverage"; one-sided
communication is the largest MPI chapter the core bindings do not cover yet
(boost-mpi3 supports it, §II).  This module is the raw substrate:

- :class:`RawWindow` — collective creation over one local array per rank;
- ``put`` / ``get`` / ``accumulate`` — direct access to a target rank's
  window memory *without involving the target's CPU* (the target's virtual
  clock does not advance; only the origin pays α + n·β);
- **fence** epochs (``MPI_Win_fence``): operations issued between two fences
  are globally visible after the closing fence;
- **passive target** locks (``MPI_Win_lock``/``unlock``) with shared or
  exclusive mode, serializing access per target.

Atomicity: ``accumulate`` is elementwise-atomic per target (as the standard
requires), implemented with one mutex per (window, target) pair.
"""

from __future__ import annotations

import threading
from typing import Any, Hashable, Optional

import numpy as np

from repro.mpi.errors import RawDeadlockError, RawUsageError
from repro.mpi.ops import Op, SUM
from repro.mpi.waiting import Backoff


class _WindowState:
    """Machine-shared state of one window."""

    def __init__(self, comm_size: int):
        self.arrays: dict[int, np.ndarray] = {}
        self.locks: dict[int, threading.RLock] = {
            r: threading.RLock() for r in range(comm_size)
        }
        #: shared/exclusive passive-target lock bookkeeping
        self.lock_cond = threading.Condition()
        self.exclusive_holder: dict[int, Optional[int]] = {
            r: None for r in range(comm_size)
        }
        self.shared_count: dict[int, int] = {r: 0 for r in range(comm_size)}


class RawWindow:
    """One rank's handle of a collectively-created RMA window."""

    def __init__(self, comm, local: np.ndarray, win_id: Hashable):
        self.comm = comm
        if not isinstance(local, np.ndarray) or local.ndim != 1:
            raise RawUsageError("window memory must be a 1-D NumPy array")
        self.local = local
        machine = comm.machine
        registry = getattr(machine, "_rma_windows", None)
        if registry is None:
            registry = machine._rma_windows = {}
            machine._rma_lock = threading.Lock()
        with machine._rma_lock:
            state = registry.get(win_id)
            if state is None:
                state = registry[win_id] = _WindowState(comm.size)
        state.arrays[comm.rank] = local
        self._state = state
        comm.barrier()  # window creation is collective

    # -- epoch management ----------------------------------------------------

    def fence(self) -> None:
        """Close the current epoch: all issued operations become visible.

        Operations apply eagerly in this runtime, so the fence reduces to the
        synchronization (a barrier), which is the visibility guarantee the
        standard gives.
        """
        self.comm._count("win_fence")
        from repro.mpi import collectives

        with self.comm._span("win_fence", peers="all"):
            collectives.barrier(self.comm)

    # -- passive target locks ----------------------------------------------------

    def lock(self, target: int, exclusive: bool = True) -> None:
        """``MPI_Win_lock``: begin a passive-target access epoch."""
        self.comm._count("win_lock")
        me = self.comm.rank
        st = self._state
        machine = self.comm.machine
        backoff = Backoff(machine.deadline, fuzz=machine.fuzzer)

        def blocked() -> bool:
            if exclusive:
                return (st.exclusive_holder[target] is not None
                        or st.shared_count[target] > 0)
            return st.exclusive_holder[target] is not None

        with self.comm._span("win_lock", peers=(target,)), st.lock_cond:
            while blocked():
                st.lock_cond.wait(timeout=backoff.next_timeout())
                if blocked() and backoff.expired:
                    raise RawDeadlockError(
                        f"win_lock(target={target}) exceeded the "
                        f"{machine.deadline:.0f}s deadlock deadline"
                    )
            if exclusive:
                st.exclusive_holder[target] = me
            else:
                st.shared_count[target] += 1
        auditor = machine.auditor
        if auditor.enabled:
            auditor.track_rma_lock(st, target, self.comm)

    def unlock(self, target: int) -> None:
        """``MPI_Win_unlock``: end the passive-target epoch."""
        self.comm._count("win_unlock")
        me = self.comm.rank
        st = self._state
        with self.comm._span("win_unlock", peers=(target,)), st.lock_cond:
            if st.exclusive_holder[target] == me:
                st.exclusive_holder[target] = None
            elif st.shared_count[target] > 0:
                st.shared_count[target] -= 1
            else:
                raise RawUsageError(f"unlock({target}) without a matching lock")
            st.lock_cond.notify_all()
        auditor = self.comm.machine.auditor
        if auditor.enabled:
            auditor.release_rma_lock(st, target, self.comm)

    # -- one-sided data movement ------------------------------------------------

    def _charge(self, nbytes: int) -> None:
        clock = self.comm.clock
        model = self.comm.machine.cost_model
        clock.charge_overhead()
        clock.wait_until(clock.now + model.transfer_time(nbytes))

    def _target_array(self, target: int) -> np.ndarray:
        arr = self._state.arrays.get(target)
        if arr is None:
            raise RawUsageError(f"rank {target} exposes no window memory")
        return arr

    def put(self, data: np.ndarray, target: int, offset: int = 0) -> None:
        """Write ``data`` into the target's window at ``offset``."""
        self.comm._count("win_put")
        data = np.asarray(data)
        arr = self._target_array(target)
        if offset < 0 or offset + len(data) > len(arr):
            raise RawUsageError(
                f"put of {len(data)} elements at offset {offset} exceeds the "
                f"target window of size {len(arr)}"
            )
        with self.comm._span("win_put", peers=(target,), sent=int(data.nbytes)):
            with self._state.locks[target]:
                arr[offset: offset + len(data)] = data
            self._charge(data.nbytes)

    def get(self, target: int, offset: int = 0,
            count: Optional[int] = None) -> np.ndarray:
        """Read ``count`` elements from the target's window at ``offset``."""
        self.comm._count("win_get")
        arr = self._target_array(target)
        count = len(arr) - offset if count is None else count
        if offset < 0 or offset + count > len(arr):
            raise RawUsageError(
                f"get of {count} elements at offset {offset} exceeds the "
                f"target window of size {len(arr)}"
            )
        with self.comm._span("win_get", peers=(target,)) as sp:
            with self._state.locks[target]:
                out = arr[offset: offset + count].copy()
            self._charge(out.nbytes)
            sp.set(recvd=int(out.nbytes))
        return out

    def accumulate(self, data: np.ndarray, target: int, offset: int = 0,
                   op: Op = SUM) -> None:
        """Elementwise-atomic remote update (``MPI_Accumulate``)."""
        self.comm._count("win_accumulate")
        data = np.asarray(data)
        arr = self._target_array(target)
        if offset < 0 or offset + len(data) > len(arr):
            raise RawUsageError(
                f"accumulate of {len(data)} elements at offset {offset} "
                f"exceeds the target window of size {len(arr)}"
            )
        with self.comm._span("win_accumulate", peers=(target,),
                             sent=int(data.nbytes)):
            with self._state.locks[target]:
                arr[offset: offset + len(data)] = op(
                    arr[offset: offset + len(data)], data
                )
            self._charge(data.nbytes)

    def fetch_and_op(self, value: Any, target: int, offset: int,
                     op: Op = SUM) -> Any:
        """Atomic read-modify-write of one element (``MPI_Fetch_and_op``)."""
        self.comm._count("win_fetch_and_op")
        arr = self._target_array(target)
        with self.comm._span("win_fetch_and_op", peers=(target,),
                             sent=int(arr.itemsize)) as sp:
            with self._state.locks[target]:
                old = arr[offset].item()
                arr[offset] = op(arr[offset], value)
            self._charge(int(arr.itemsize))
            sp.set(recvd=int(arr.itemsize))
        return old

    def compare_and_swap(self, value: Any, compare: Any, target: int,
                         offset: int) -> Any:
        """Atomic CAS of one element (``MPI_Compare_and_swap``)."""
        self.comm._count("win_compare_and_swap")
        arr = self._target_array(target)
        with self.comm._span("win_compare_and_swap", peers=(target,),
                             sent=int(arr.itemsize)) as sp:
            with self._state.locks[target]:
                old = arr[offset].item()
                if old == compare:
                    arr[offset] = value
            self._charge(int(arr.itemsize))
            sp.set(recvd=int(arr.itemsize))
        return old

    def free(self) -> None:
        """Collectively release the window (``MPI_Win_free``)."""
        self.comm._count("win_free")
        from repro.mpi import collectives

        with self.comm._span("win_free", peers="all"):
            collectives.barrier(self.comm)

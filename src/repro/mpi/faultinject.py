"""Fault-injection campaigns: scripted, counted, probabilistic, and slow-rank.

:class:`~repro.mpi.failures.FailureScript` kills ranks at hand-placed named
checkpoints.  A :class:`FaultCampaign` extends that idea to *hook-driven*
injection: the campaign rides on the :class:`~repro.mpi.machine.Machine`
(``run_mpi(..., faults=...)``) and is consulted from three runtime layers —

- :meth:`RawComm._count <repro.mpi.context.RawComm._count>` — the entry of
  every public (counted) operation.  This is where :class:`KillOnOp` rules
  ("kill rank r on its Nth send / collective / RMA op"), :class:`KillRandom`
  rules (seeded per-rank Bernoulli draws), and :class:`Straggler` slow-downs
  fire;
- the internal point-to-point primitives collective algorithms are written
  against (``RawComm._deposit`` / ``_recv`` / ``_irecv``) — where
  :class:`KillMidCollective` rules fire *between the p2p rounds* of a
  registry algorithm schedule, after the victim already contributed partial
  rounds;
- :meth:`CollectiveEngine.resolve <repro.mpi.engine.CollectiveEngine.
  resolve>` — the engine's ``fault_hook`` tells the campaign which algorithm
  schedule the current collective runs, so mid-collective rules can target
  ``(op, algorithm)`` pairs.

Kills always fire *at operation entry* or *between* internal p2p rounds,
never after an operation completed — a victim that reached a machine-level
rendezvous (shrink/agree) has therefore either arrived or is already marked
failed, which keeps the rendezvous' liveness argument intact.

Determinism: random draws come from per-rank :class:`random.Random` streams
keyed ``(seed, world rank)`` — the same discipline as
:class:`~repro.mpi.sanitizer.ScheduleFuzzer`, with which campaigns compose
(independent streams, both seed-pinned).  The campaign seed defaults to the
``REPRO_FAULT_SEED`` environment variable (:func:`env_fault_seed_default`),
so a red CI cell is reproducible from its seed alone.

Every injected fault is recorded (:attr:`FaultCampaign.injected`) and, on
traced runs, emitted as a zero-duration ``fault:<kind>``
:class:`~repro.mpi.tracing.TraceEvent` (Chrome-trace category ``"fault"``),
so a post-mortem trace shows exactly where the campaign struck.
"""

from __future__ import annotations

import os
import random
import threading
import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Hashable, Optional, Sequence

from repro.mpi.errors import ProcessKilled, RawUsageError
from repro.mpi.tracing import TraceEvent

#: op-name categories a :class:`KillOnOp` / :class:`KillRandom` rule can
#: target instead of one exact raw op name
OP_CATEGORIES: dict[str, frozenset[str]] = {
    "send": frozenset({"send", "ssend", "isend", "issend"}),
    "recv": frozenset({"recv", "irecv", "probe", "iprobe"}),
    "collective": frozenset({
        "barrier", "ibarrier", "bcast", "ibcast", "gather", "gatherv",
        "scatter", "scatterv", "allgather", "iallgather", "allgatherv",
        "alltoall", "alltoallv", "alltoallw", "reduce", "allreduce",
        "iallreduce", "scan", "exscan", "neighbor_alltoall",
        "neighbor_alltoallv",
    }),
    "rma": frozenset({
        "win_create", "win_fence", "win_lock", "win_unlock", "win_put",
        "win_get", "win_accumulate", "win_fetch_and_op",
        "win_compare_and_swap", "win_free",
    }),
}


def _matches(selector: Optional[str], op: str) -> bool:
    """Whether an op-selector (exact name, category, or ``None`` = any) matches."""
    if selector is None:
        return True
    cat = OP_CATEGORIES.get(selector)
    if cat is not None:
        return op in cat
    return op == selector


@dataclass(frozen=True)
class KillOnOp:
    """Kill ``rank`` at the entry of its ``nth`` operation matching ``op``.

    ``op`` is an exact raw op name (``"allreduce"``), a category from
    :data:`OP_CATEGORIES` (``"send"``, ``"collective"``, ``"rma"``), or
    ``None`` for any counted operation.  ``nth`` is 1-based and counts only
    matching operations of that rank.
    """

    rank: int
    op: Optional[str] = None
    nth: int = 1

    def __post_init__(self):
        if self.nth < 1:
            raise RawUsageError(f"KillOnOp.nth is 1-based, got {self.nth}")


@dataclass(frozen=True)
class KillMidCollective:
    """Kill ``rank`` *inside* a collective, between two internal p2p rounds.

    Fires during the ``call``-th invocation of collective ``op`` on that
    rank, at the entry of its ``after_p2p``-th internal point-to-point
    operation (deposit or receive) — i.e. after the victim already took part
    in ``after_p2p - 1`` rounds of the algorithm schedule.  ``algorithm``
    optionally restricts the rule to one registry schedule (resolved through
    the engine's fault hook).
    """

    rank: int
    op: str
    call: int = 1
    after_p2p: int = 1
    algorithm: Optional[str] = None

    def __post_init__(self):
        if self.call < 1 or self.after_p2p < 1:
            raise RawUsageError("KillMidCollective.call/after_p2p are 1-based")


@dataclass(frozen=True)
class KillRandom:
    """Seeded Bernoulli kill: at each matching op entry, die with ``rate``.

    Draws come from the campaign's per-rank random streams, so a pinned
    campaign seed replays the identical kill sites.  ``ranks`` restricts the
    candidate victims (``None`` = all), ``op`` is a name/category selector,
    and ``max_kills`` caps the total kills this rule may inject across the
    whole run (default one, so campaigns stay recoverable by buddy
    checkpointing).
    """

    rate: float
    ranks: Optional[frozenset[int]] = None
    op: Optional[str] = None
    max_kills: int = 1

    def __post_init__(self):
        if not 0.0 <= self.rate <= 1.0:
            raise RawUsageError(f"KillRandom.rate must be in [0, 1], got {self.rate}")
        if self.ranks is not None:
            object.__setattr__(self, "ranks", frozenset(self.ranks))


@dataclass(frozen=True)
class Straggler:
    """Slow-rank injection: make ``rank`` late at every counted operation.

    ``virtual_seconds`` is charged to the rank's virtual clock per operation
    (as local computation), so the straggle propagates through message
    arrival times and shows up in the simulated makespan exactly like a
    genuinely slow process.  ``real_seconds`` additionally sleeps real time,
    perturbing the thread interleaving the way the schedule fuzzer's delays
    do (the :class:`~repro.mpi.waiting.Backoff` loops of the victim's peers
    really wait it out).
    """

    rank: int
    virtual_seconds: float = 0.0
    real_seconds: float = 0.0


@dataclass(frozen=True)
class KillAtCheckpoint:
    """Kill ``ranks`` at the named checkpoint (``FailureScript`` semantics).

    Program points opt in by calling :meth:`FaultCampaign.checkpoint`; this
    rule keeps scripted campaigns composable with the hook-driven kinds.
    """

    name: Hashable
    ranks: frozenset[int]

    def __post_init__(self):
        object.__setattr__(self, "ranks", frozenset(self.ranks))


FaultRule = Any  # union of the rule dataclasses above


class _RankState:
    """Per-rank injection bookkeeping (touched only by that rank's thread)."""

    __slots__ = ("op_counts", "cat_counts", "current_op", "current_call",
                 "current_algorithm", "p2p_in_op", "straggled", "rng")

    def __init__(self, rng: random.Random):
        self.op_counts: Counter = Counter()
        self.cat_counts: Counter = Counter()
        self.current_op: Optional[str] = None
        self.current_call = 0
        self.current_algorithm: Optional[str] = None
        self.p2p_in_op = 0
        self.straggled = False
        self.rng = rng


class FaultCampaign:
    """A set of fault rules injected into one :func:`~repro.mpi.machine.run_mpi`.

    Pass as ``run_mpi(..., faults=FaultCampaign([...]))`` (or through
    :func:`repro.core.runner.run`).  The campaign is consulted at every
    counted op entry and every internal p2p round; disabled machines carry
    ``faults=None``, so the uninjected hot path pays one ``None`` check.

    ``seed`` pins the random streams of :class:`KillRandom` rules; it
    defaults to ``REPRO_FAULT_SEED`` (and to 0 when neither is given).
    """

    def __init__(self, rules: Sequence[FaultRule] = (), *,
                 seed: Optional[int] = None):
        self.rules = list(rules)
        if seed is None:
            seed = env_fault_seed_default()
        self.seed = int(seed) if seed is not None else 0
        self._on_op_rules = [r for r in self.rules if isinstance(r, KillOnOp)]
        self._mid_rules = [r for r in self.rules
                           if isinstance(r, KillMidCollective)]
        self._random_rules = [r for r in self.rules if isinstance(r, KillRandom)]
        self._stragglers = [r for r in self.rules if isinstance(r, Straggler)]
        self._checkpoints: dict[Hashable, frozenset[int]] = {}
        for r in self.rules:
            if isinstance(r, KillAtCheckpoint):
                self._checkpoints[r.name] = (
                    self._checkpoints.get(r.name, frozenset()) | r.ranks
                )
        known = (KillOnOp, KillMidCollective, KillRandom, Straggler,
                 KillAtCheckpoint)
        for r in self.rules:
            if not isinstance(r, known):
                raise RawUsageError(f"unknown fault rule {r!r}")
        self._states: dict[int, _RankState] = {}
        self._lock = threading.Lock()
        self._kills_per_rule: Counter = Counter()
        #: log of injected faults: ``{"kind", "rank", "op", "detail"}`` dicts
        self.injected: list[dict[str, Any]] = []

    # -- machine wiring ----------------------------------------------------

    def attach(self, machine) -> None:
        """Bind the campaign to a machine (called by ``Machine.__init__``)."""
        for world_rank in range(machine.num_ranks):
            self._states[world_rank] = _RankState(
                random.Random(f"{self.seed}:rank-{world_rank}")
            )
        machine.engine.fault_hook = self.on_collective

    # -- hook: public op entry (RawComm._count) ----------------------------

    def on_op(self, comm, op: str) -> None:
        st = self._states[comm.world_rank]
        st.op_counts[op] += 1
        for cat, members in OP_CATEGORIES.items():
            if op in members:
                st.cat_counts[cat] += 1
        st.current_op = op
        st.current_call = st.op_counts[op]
        st.current_algorithm = None
        st.p2p_in_op = 0

        for rule in self._stragglers:
            if rule.rank == comm.world_rank:
                if not st.straggled:
                    st.straggled = True
                    self._record(comm, "straggler",
                                 f"slowing every op by {rule.virtual_seconds}s "
                                 f"virtual / {rule.real_seconds}s real")
                if rule.virtual_seconds:
                    comm.clock.compute(rule.virtual_seconds)
                if rule.real_seconds:
                    time.sleep(rule.real_seconds)

        for rule in self._on_op_rules:
            if rule.rank != comm.world_rank or not _matches(rule.op, op):
                continue
            seen = (st.op_counts[op] if rule.op == op
                    else st.cat_counts[rule.op] if rule.op in OP_CATEGORIES
                    else sum(st.op_counts.values()) if rule.op is None
                    else 0)
            if seen == rule.nth:
                self._kill(comm, "kill_op",
                           f"op #{rule.nth} matching {rule.op!r} ({op})")

        for rule in self._random_rules:
            if rule.ranks is not None and comm.world_rank not in rule.ranks:
                continue
            if not _matches(rule.op, op):
                continue
            if st.rng.random() >= rule.rate:
                continue
            with self._lock:
                if self._kills_per_rule[id(rule)] >= rule.max_kills:
                    continue
                self._kills_per_rule[id(rule)] += 1
            self._kill(comm, "kill_random",
                       f"seeded kill (seed={self.seed}) at {op}")

    # -- hook: internal p2p round (RawComm._deposit/_recv/_irecv) ----------

    def on_internal(self, comm) -> None:
        st = self._states[comm.world_rank]
        st.p2p_in_op += 1
        for rule in self._mid_rules:
            if (rule.rank == comm.world_rank
                    and st.current_op == rule.op
                    and st.current_call == rule.call
                    and st.p2p_in_op == rule.after_p2p
                    and (rule.algorithm is None
                         or st.current_algorithm == rule.algorithm)):
                self._kill(comm, "kill_mid_collective",
                           f"inside {rule.op} call #{rule.call} "
                           f"(algorithm {st.current_algorithm}), "
                           f"after {rule.after_p2p - 1} p2p rounds")

    # -- hook: engine resolution (CollectiveEngine.fault_hook) -------------

    def on_collective(self, op: str, algorithm: str) -> None:
        """Note which registry schedule the current collective runs.

        Called from the engine on the issuing rank's own thread; the rank is
        recovered from the thread name (``rank-<r>``), the same stable naming
        the schedule fuzzer keys its streams by.
        """
        name = threading.current_thread().name
        if not name.startswith("rank-"):
            return
        try:
            world_rank = int(name[5:])
        except ValueError:
            return
        st = self._states.get(world_rank)
        if st is not None and st.current_op == op:
            st.current_algorithm = algorithm

    # -- scripted checkpoints (FailureScript superset) ---------------------

    def checkpoint(self, comm, name: Hashable) -> None:
        """Kill the calling rank if a :class:`KillAtCheckpoint` rule says so."""
        victims = self._checkpoints.get(name)
        if victims and comm.world_rank in victims:
            self._kill(comm, "kill_checkpoint", f"checkpoint {name!r}")

    # -- bookkeeping -------------------------------------------------------

    def _record(self, comm, kind: str, detail: str) -> None:
        with self._lock:
            self.injected.append({
                "kind": kind, "rank": comm.world_rank,
                "op": self._states[comm.world_rank].current_op,
                "detail": detail,
            })
        tracer = comm.machine.tracer
        if tracer.enabled:
            t = comm.clock.now
            tracer._append(TraceEvent(
                op=f"fault:{kind}", world_rank=comm.world_rank,
                rank=comm.rank, comm=comm.comm_id, peers=(), tag=None,
                sent=0, recvd=0, t_start=t, t_end=t, algorithm=None,
            ))

    def _kill(self, comm, kind: str, detail: str) -> None:
        self._record(comm, kind, detail)
        comm.machine.mark_failed(comm.world_rank)
        raise ProcessKilled(comm.world_rank)

    def kills(self) -> list[dict[str, Any]]:
        """The injected kills (everything in :attr:`injected` except stragglers)."""
        return [f for f in self.injected if f["kind"] != "straggler"]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"FaultCampaign({len(self.rules)} rules, seed={self.seed}, "
                f"{len(self.injected)} injected)")


def env_fault_seed_default() -> Optional[int]:
    """The ``REPRO_FAULT_SEED`` environment seed, if one is set."""
    raw = os.environ.get("REPRO_FAULT_SEED", "").strip()
    return int(raw) if raw else None

"""Run-level watchdog: per-rank stack dumps for hung runs.

The test suite has always guarded itself with a thread-join watchdog
(``tests/conftest.py``); this module promotes that idiom into the library so
*any* caller — ``run_mpi(..., timeout=seconds)``, the cluster service's
per-job watchdog — can convert a hung run into a diagnosable
:class:`~repro.mpi.errors.RunTimeout` instead of a stall.

The one capability this needs is a shared address space:
:func:`sys._current_frames` only sees threads of the calling process, which
is why the run watchdog is a thread-backend feature (the process backend
refuses ``timeout=`` with its usual pinned
:class:`~repro.mpi.errors.UnsupportedOnBackend` message).
"""

from __future__ import annotations

import sys
import threading
import traceback
from typing import Iterable


def thread_stacks(threads: Iterable[threading.Thread]) -> dict[str, str]:
    """Formatted stacks of the given threads that are still alive.

    Returns ``{thread name: multi-line stack}``, innermost frame last (the
    usual traceback orientation).  Threads that finished between the caller's
    liveness check and the frame snapshot are silently absent.
    """
    frames = sys._current_frames()
    stacks: dict[str, str] = {}
    for t in threads:
        if not t.is_alive():
            continue
        frame = frames.get(t.ident)
        if frame is None:
            continue
        stacks[t.name] = "".join(traceback.format_stack(frame)).rstrip()
    return stacks


def format_stacks(stacks: dict[str, str]) -> str:
    """Render a stack-dump dict as one indented report block."""
    if not stacks:
        return "  (no rank threads alive at expiry)"
    blocks = []
    for name in sorted(stacks):
        body = "\n".join(f"    {line}" for line in stacks[name].splitlines())
        blocks.append(f"  --- {name} ---\n{body}")
    return "\n".join(blocks)

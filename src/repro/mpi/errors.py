"""Error hierarchy of the raw MPI runtime.

The raw layer reports errors the way C MPI reports error *classes*: one
exception type per class.  The KaMPIng layer (:mod:`repro.core.errors`)
re-raises these as user-facing exceptions, mirroring the paper's distinction
between *failures* (potentially recoverable, reported via exceptions) and
*usage errors* (caught eagerly with readable messages).
"""

from __future__ import annotations

from typing import Iterable


class RawMpiError(Exception):
    """Base class for all errors raised by the raw runtime."""


class RawUsageError(RawMpiError):
    """An invalid argument or protocol violation by the caller."""


class UnsupportedOnBackend(RawUsageError):
    """A feature the selected execution backend does not provide.

    The backend contract (DESIGN §12) requires features that cannot work on
    a given transport to fail loudly with an actionable message — never to
    silently fall back or misbehave.  The message always names the feature,
    the backend, and the way out (usually ``backend='thread'``).
    """


class RawTruncationError(RawMpiError):
    """A receive buffer was too small for the matched message (``MPI_ERR_TRUNCATE``)."""


class RawDeadlockError(RawMpiError):
    """A blocking operation exceeded the machine's deadlock deadline.

    Real MPI would simply hang; the runtime converts hangs into diagnosable
    failures so tests and benchmarks terminate.
    """


class RunTimeout(RawMpiError):
    """A whole run exceeded its real-time budget (``run_mpi(..., timeout=)``).

    Unlike :class:`RawDeadlockError` — raised when one *blocking operation*
    outlives the machine deadline — this is the run-level watchdog: the
    caller bounds the wall-clock time of the entire ``run_mpi`` call, and on
    expiry the per-rank stack dumps of the still-running ranks ride along as
    :attr:`stacks` (and in the message), so a wedged rank is diagnosable
    without attaching a debugger.
    """

    def __init__(self, message: str, stacks: "dict[str, str] | None" = None):
        #: ``{thread name: formatted stack}`` of ranks alive at expiry
        self.stacks: dict[str, str] = dict(stacks or {})
        super().__init__(message)


class RawProcessFailure(RawMpiError):
    """A peer process involved in the operation has failed (ULFM ``MPI_ERR_PROC_FAILED``)."""

    def __init__(self, failed_ranks: Iterable[int], message: str = ""):
        self.failed_ranks = sorted(set(failed_ranks))
        super().__init__(
            message or f"peer process(es) failed: ranks {self.failed_ranks}"
        )


class RawCommRevoked(RawMpiError):
    """The communicator has been revoked (ULFM ``MPI_ERR_REVOKED``)."""


class ProcessKilled(BaseException):
    """Raised inside a rank thread to simulate the process dying.

    Derives from :class:`BaseException` so application-level ``except
    Exception`` handlers cannot accidentally resurrect a dead process.
    """

    def __init__(self, rank: int):
        self.rank = rank
        super().__init__(f"rank {rank} killed by failure injection")

"""``repro.mpi`` — a from-scratch, in-process MPI runtime.

This subpackage plays the role of "plain C MPI" in the reproduction: threads
are ranks, mailboxes implement the posted/unexpected matching queues, and
collectives use the textbook algorithms whose cost structure production MPIs
use.  Virtual per-rank clocks driven by an α-β cost model supply the
simulated running times the benchmarks report.
"""

from repro.mpi import algorithms
from repro.mpi.algorithms import Algorithm
from repro.mpi.backends import (
    BACKENDS,
    Backend,
    ProcessBackend,
    ThreadBackend,
    resolve_backend,
)
from repro.mpi.constants import ANY_SOURCE, ANY_TAG, IN_PLACE, PROC_NULL, WORLD_ID
from repro.mpi.context import RawComm
from repro.mpi.costmodel import FREE, Clock, CostModel
from repro.mpi.engine import CollectiveEngine, Decision, TuningRule
from repro.mpi.errors import (
    ProcessKilled,
    RawCommRevoked,
    RawDeadlockError,
    RawMpiError,
    RawProcessFailure,
    RawTruncationError,
    RawUsageError,
    RunTimeout,
    UnsupportedOnBackend,
)
from repro.mpi.failures import FailureScript, no_failures
from repro.mpi.faultinject import (
    FaultCampaign,
    KillAtCheckpoint,
    KillMidCollective,
    KillOnOp,
    KillRandom,
    Straggler,
    env_fault_seed_default,
)
from repro.mpi.machine import Machine, RunResult, run_mpi
from repro.mpi.ops import (
    BAND,
    BOR,
    BUILTIN_OPS,
    BXOR,
    LAND,
    LOR,
    LXOR,
    MAX,
    MIN,
    PROD,
    SUM,
    Op,
    user_op,
)
from repro.mpi.p2p import Status
from repro.mpi.profiling import call_delta, expect_calls, snapshot
from repro.mpi.sanitizer import (
    LeakRecord,
    LeakReport,
    ResourceAuditor,
    ResourceLeakError,
    ScheduleFuzzer,
    minimize_failing_seeds,
)
from repro.mpi.requests import RawRequest, testall, waitall, waitany
from repro.mpi.tracing import (
    NULL_TRACER,
    CallSpec,
    TraceEvent,
    TraceRecorder,
    calls,
    size_bucket,
)

__all__ = [
    "ANY_SOURCE", "ANY_TAG", "IN_PLACE", "PROC_NULL", "WORLD_ID",
    "RawComm", "Machine", "RunResult", "run_mpi",
    "Clock", "CostModel", "FREE",
    "Op", "SUM", "PROD", "MAX", "MIN", "LAND", "LOR", "LXOR",
    "BAND", "BOR", "BXOR", "BUILTIN_OPS", "user_op",
    "Status", "RawRequest", "waitall", "testall", "waitany",
    "RawMpiError", "RawUsageError", "RawTruncationError", "RawDeadlockError",
    "RawProcessFailure", "RawCommRevoked", "ProcessKilled", "RunTimeout",
    "UnsupportedOnBackend",
    "Backend", "ThreadBackend", "ProcessBackend", "BACKENDS",
    "resolve_backend",
    "FailureScript", "no_failures",
    "FaultCampaign", "KillOnOp", "KillMidCollective", "KillRandom",
    "Straggler", "KillAtCheckpoint", "env_fault_seed_default",
    "expect_calls", "call_delta", "snapshot",
    "TraceRecorder", "TraceEvent", "CallSpec", "calls", "NULL_TRACER",
    "size_bucket",
    "algorithms", "Algorithm", "CollectiveEngine", "Decision", "TuningRule",
    "AutoTuner", "resolve_autotune",
    "ResourceAuditor", "ResourceLeakError", "LeakReport", "LeakRecord",
    "ScheduleFuzzer", "minimize_failing_seeds",
]


def __getattr__(name):
    # Lazy so ``python -m repro.mpi.autotune`` doesn't import the module
    # twice (package init + runpy) and warn about it.
    if name in ("AutoTuner", "resolve_autotune"):
        from repro.mpi import autotune

        return getattr(autotune, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

"""PMPI-style profiling helpers.

The paper validates its "only the expected MPI calls are issued" property
through MPI's profiling interface (Section III-H).  The runtime counts every
public :class:`~repro.mpi.context.RawComm` call per rank; this module offers
the assertion helpers tests use on top of those counters.

With tracing enabled (``run_mpi(..., trace=True)``), :func:`expect_calls`
also accepts :class:`~repro.mpi.tracing.CallSpec` values (built with
:func:`~repro.mpi.tracing.calls`) that additionally pin down byte volumes
and peer sets, turning "the right calls happened" into "the right *bytes*
went to the right *ranks*".
"""

from __future__ import annotations

from collections import Counter
from contextlib import contextmanager
from typing import Iterator, Union

from repro.mpi.context import RawComm
from repro.mpi.errors import RawUsageError
from repro.mpi.tracing import CallSpec


@contextmanager
def expect_calls(comm: RawComm,
                 **expected: Union[int, CallSpec]) -> Iterator[None]:
    """Assert that the wrapped block issues exactly the given raw MPI calls.

    Example::

        with expect_calls(raw, allgather=1, allgatherv=1):
            kamping_comm.allgatherv(send_buf(v))   # count inference + exchange

    Any raw call kind not listed must not occur at all.  Values may be plain
    counts or :func:`repro.mpi.tracing.calls` specs; the latter additionally
    assert byte volumes and peer sets and require the run to be traced::

        with expect_calls(raw, allgather=1,
                          allgatherv=calls(1, recvd=total_bytes)):
            kamping_comm.allgatherv(send_buf(v))
    """
    tracer = comm.machine.tracer
    specs = {op: v for op, v in expected.items() if isinstance(v, CallSpec)}
    if specs and not tracer.enabled:
        raise RawUsageError(
            "expect_calls with byte/peer specs needs a traced run "
            "(run_mpi(..., trace=True)); only plain counts work untraced"
        )
    before = Counter(comm.machine.profile[comm.world_rank])
    events_before = len(tracer.events_for(comm.world_rank))
    yield
    after = Counter(comm.machine.profile[comm.world_rank])
    delta = after - before
    problems = []
    for op, want in expected.items():
        n = want.count if isinstance(want, CallSpec) else want
        if delta.get(op, 0) != n:
            problems.append(f"expected {n} × {op}, saw {delta.get(op, 0)}")
    for op, n in delta.items():
        if op not in expected:
            problems.append(f"unexpected raw call: {n} × {op}")
    if specs:
        new_events = tracer.events_for(comm.world_rank)[events_before:]
        for op, spec in specs.items():
            events = [e for e in new_events if e.op == op]
            problems.extend(spec.check(op, events, check_count=False))
    if problems:
        raise AssertionError(
            "raw MPI call profile mismatch: " + "; ".join(sorted(problems))
        )


def call_delta(comm: RawComm, before: Counter) -> Counter:
    """Difference between the rank's current counters and a snapshot."""
    return Counter(comm.machine.profile[comm.world_rank]) - before


def snapshot(comm: RawComm) -> Counter:
    """Snapshot the rank's call counters."""
    return Counter(comm.machine.profile[comm.world_rank])

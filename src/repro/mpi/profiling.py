"""PMPI-style profiling helpers.

The paper validates its "only the expected MPI calls are issued" property
through MPI's profiling interface (Section III-H).  The runtime counts every
public :class:`~repro.mpi.context.RawComm` call per rank; this module offers
the assertion helpers tests use on top of those counters.
"""

from __future__ import annotations

from collections import Counter
from contextlib import contextmanager
from typing import Iterator

from repro.mpi.context import RawComm


@contextmanager
def expect_calls(comm: RawComm, **expected: int) -> Iterator[None]:
    """Assert that the wrapped block issues exactly the given raw MPI calls.

    Example::

        with expect_calls(raw, allgather=1, allgatherv=1):
            kamping_comm.allgatherv(send_buf(v))   # count inference + exchange

    Any raw call kind not listed must not occur at all.
    """
    before = Counter(comm.machine.profile[comm.world_rank])
    yield
    after = Counter(comm.machine.profile[comm.world_rank])
    delta = after - before
    problems = []
    for op, n in expected.items():
        if delta.get(op, 0) != n:
            problems.append(f"expected {n} × {op}, saw {delta.get(op, 0)}")
    for op, n in delta.items():
        if op not in expected:
            problems.append(f"unexpected raw call: {n} × {op}")
    if problems:
        raise AssertionError(
            "raw MPI call profile mismatch: " + "; ".join(sorted(problems))
        )


def call_delta(comm: RawComm, before: Counter) -> Counter:
    """Difference between the rank's current counters and a snapshot."""
    return Counter(comm.machine.profile[comm.world_rank]) - before


def snapshot(comm: RawComm) -> Counter:
    """Snapshot the rank's call counters."""
    return Counter(comm.machine.profile[comm.world_rank])

"""Low-level payload handling for the raw runtime.

The raw layer is deliberately permissive about payload types — like the C API
it moves "bytes described by a datatype".  NumPy arrays are the fast path
(``ndarray`` is our contiguous buffer); any other Python object is accepted
and sized by serialization, which models what a C program would do by packing.
"""

from __future__ import annotations

import copy
import io
import pickle
from typing import Any

import numpy as np

_SCALAR_NBYTES = 8  # ints/floats modelled as 64-bit words


def _pickled_size(obj: Any) -> int:
    """Pickled size with memoization disabled.

    The memo makes ``len(pickle.dumps(x))`` depend on object *identity*
    (repeated references collapse to back-references), which differs between
    execution backends: a payload aggregated from in-process objects shares
    interned constants, the same payload aggregated from unpickled pipe
    messages does not.  Sizing without the memo keeps the cost model a pure
    function of the payload's value.  Self-referential payloads cannot be
    pickled memo-free; fall back to a plain dump — their internal sharing is
    reproduced by unpickling, so that size is identity-stable too.
    """
    buf = io.BytesIO()
    pickler = pickle.Pickler(buf, protocol=pickle.HIGHEST_PROTOCOL)
    pickler.fast = True
    try:
        pickler.dump(obj)
    except (ValueError, RecursionError):
        return len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
    return buf.tell()


def payload_nbytes(obj: Any) -> int:
    """Estimate the on-wire size of ``obj`` in bytes.

    Exact for arrays and byte strings; for general Python objects the pickled
    size is used (this is also what the serialization layer would transmit).
    """
    if isinstance(obj, np.ndarray):
        return obj.nbytes
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    if isinstance(obj, str):
        return len(obj.encode("utf-8"))
    if isinstance(obj, (bool, int, float, np.integer, np.floating)):
        return _SCALAR_NBYTES
    if obj is None:
        return 0
    if isinstance(obj, (list, tuple)) and all(
        isinstance(x, (bool, int, float, np.integer, np.floating)) for x in obj
    ):
        return _SCALAR_NBYTES * len(obj)
    try:
        return _pickled_size(obj)
    except Exception:  # pragma: no cover - unpicklable payloads are rare
        return _SCALAR_NBYTES


def snapshot(obj: Any) -> Any:
    """Copy a payload at send time (buffered-send semantics).

    MPI's buffered semantics allow the caller to mutate the send buffer as
    soon as the call returns; the runtime therefore snapshots mutable
    payloads.  Immutable objects are passed through unchanged.
    """
    if isinstance(obj, np.ndarray):
        return obj.copy()
    if isinstance(obj, (bytes, str, int, float, bool, frozenset, type(None))):
        return obj
    if isinstance(obj, tuple) and all(
        isinstance(x, (bytes, str, int, float, bool, type(None))) for x in obj
    ):
        return obj
    return copy.deepcopy(obj)


def ensure_1d_array(obj: Any, dtype=None) -> np.ndarray:
    """Coerce ``obj`` to a 1-D contiguous NumPy array without copying when possible."""
    arr = np.asarray(obj, dtype=dtype)
    if arr.ndim == 0:
        arr = arr.reshape(1)
    if arr.ndim != 1:
        arr = np.ascontiguousarray(arr).reshape(-1)
    return arr


def concat_payloads(parts: list) -> Any:
    """Concatenate received payload parts, preserving array-ness."""
    if not parts:
        return []
    if all(isinstance(p, np.ndarray) for p in parts):
        return np.concatenate([ensure_1d_array(p) for p in parts])
    out: list = []
    for p in parts:
        if isinstance(p, np.ndarray):
            out.extend(p.tolist())
        elif isinstance(p, (list, tuple)):
            out.extend(p)
        else:
            out.append(p)
    return out

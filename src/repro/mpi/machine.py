"""The parallel machine: rank threads, communicator registry, failure state.

:func:`run_mpi` is the entry point of the raw runtime: it resolves an
execution backend (:mod:`repro.mpi.backends`; threads-as-ranks by default,
one-OS-process-per-rank with ``backend="process"``), hands each rank a
:class:`~repro.mpi.context.RawComm` for the world communicator, and collects
results, virtual times, and PMPI-style call counts.  The :class:`Machine`
defined here is the shared state of the *thread* backend; the process
backend builds a rank-local replica satisfying the same duck-typed contract
(see :mod:`repro.mpi.backends.process`).
"""

from __future__ import annotations

import os
import threading
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Optional, Sequence

from repro.mpi.constants import WORLD_ID
from repro.mpi.costmodel import Clock, CostModel
from repro.mpi.engine import CollectiveEngine
from repro.mpi.errors import RawDeadlockError, RawUsageError
from repro.mpi.p2p import Mailbox
from repro.mpi.requests import ArrivalBarrier
from repro.mpi.sanitizer import (
    NULL_AUDITOR,
    LeakReport,
    NullAuditor,
    ResourceAuditor,
    ScheduleFuzzer,
)
from repro.mpi.tracing import NULL_TRACER, NullTraceRecorder, TraceEvent, TraceRecorder
from repro.mpi.waiting import Backoff


class CommState:
    """Shared (cross-thread) state of one communicator."""

    def __init__(self, machine: "Machine", comm_id: Hashable,
                 members: Sequence[int],
                 topology: Optional[dict[int, tuple[tuple[int, ...], tuple[int, ...]]]] = None):
        self.machine = machine
        self.comm_id = comm_id
        #: world ranks of the members; local rank == index
        self.members: tuple[int, ...] = tuple(members)
        self.local_of_world = {w: i for i, w in enumerate(self.members)}
        self.mailboxes: dict[int, Mailbox] = {}
        for local in range(len(self.members)):
            mb = Mailbox(deadline_seconds=machine.deadline)
            mb.failure_probe = machine.failed_snapshot
            mb.source_to_world = lambda r, m=self.members: m[r] if 0 <= r < len(m) else -1
            mb.fuzz = machine.fuzzer
            self.mailboxes[local] = mb
        for mb in self.mailboxes.values():
            mb.revoke_probe = self._is_revoked
        self.barrier = ArrivalBarrier(len(self.members), machine.cost_model.alpha)
        #: per-local-rank (sources, destinations) for dist-graph communicators
        self.topology = topology
        self.revoked = threading.Event()

    def _is_revoked(self) -> bool:
        return self.revoked.is_set()

    @property
    def size(self) -> int:
        return len(self.members)


@dataclass
class RunResult:
    """Outcome of a :func:`run_mpi` execution."""

    #: per-rank return values (``None`` for ranks that died)
    values: list[Any]
    #: per-rank virtual clocks at completion (seconds)
    times: list[float]
    #: per-rank PMPI-style call counters
    counts: list[Counter]
    #: per-rank virtual seconds attributed to communication
    comm_seconds: list[float]
    #: per-rank virtual seconds attributed to local computation
    compute_seconds: list[float]
    #: world ranks that died during the run
    failed: frozenset[int] = frozenset()
    machine: Optional["Machine"] = None
    #: structured event trace (``None`` unless the run enabled tracing)
    trace: Optional[TraceRecorder] = None
    #: MPIsan finalize-time leak report (``None`` unless the run was
    #: sanitized; empty reports are falsy)
    leaks: Optional[LeakReport] = None
    #: name of the execution backend that produced this result
    backend: str = "thread"
    #: communication-plan IR report (``None`` unless the run used ``ir=``);
    #: an :class:`~repro.mpi.ir.driver.IRReport` with the recorded epoch,
    #: pass results, and — under ``ir="optimize"`` — the verified replay
    ir: Optional[Any] = None
    #: the :class:`~repro.mpi.autotune.AutoTuner` that observed this run
    #: (``None`` unless the run enabled autotuning)
    autotune: Optional[Any] = None

    @property
    def max_time(self) -> float:
        """Simulated makespan: the latest per-rank virtual clock."""
        return max(self.times) if self.times else 0.0

    def total_calls(self, op: str) -> int:
        """Total number of raw calls of kind ``op`` across ranks."""
        return sum(c.get(op, 0) for c in self.counts)

    def op_bytes(self, *, by_algorithm: bool = False
                 ) -> dict[str, dict[str, float]]:
        """Per-op ``{calls, sent, recvd, bytes, seconds}`` aggregates.

        ``by_algorithm=True`` splits collectives by the algorithm the engine
        selected, keyed ``"op[algorithm]"``.  Empty when the run was not
        traced (``run_mpi(..., trace=True)``).
        """
        if self.trace is None:
            return {}
        return self.trace.per_op_totals(by_algorithm=by_algorithm)

    def algorithms_used(self) -> dict[str, tuple[str, ...]]:
        """``{op: algorithm names}`` the engine selected during a traced run."""
        return self.trace.algorithms_used() if self.trace is not None else {}

    def chrome_trace(self) -> dict[str, Any]:
        """Chrome trace-event JSON of the run (requires ``trace=True``)."""
        if self.trace is None:
            raise RawUsageError(
                "chrome_trace() requires running with trace=True"
            )
        return self.trace.to_chrome_trace()


class Machine:
    """An in-process parallel machine with ``num_ranks`` rank threads."""

    def __init__(self, num_ranks: int, cost_model: Optional[CostModel] = None,
                 deadline: float = 120.0,
                 tracer: Optional[TraceRecorder] = None,
                 engine: Optional["CollectiveEngine"] = None,
                 auditor: Optional[ResourceAuditor] = None,
                 fuzzer: Optional[ScheduleFuzzer] = None,
                 faults=None):
        if num_ranks < 1:
            raise RawUsageError(f"num_ranks must be >= 1, got {num_ranks}")
        self.num_ranks = num_ranks
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.deadline = deadline
        #: MPIsan resource auditor; the no-op singleton unless sanitizing
        self.auditor: ResourceAuditor | NullAuditor = (
            auditor if auditor is not None else NULL_AUDITOR
        )
        #: seeded schedule fuzzer (``None`` outside fuzzed runs); must be set
        #: before any CommState wires it into its mailboxes
        self.fuzzer = fuzzer
        #: collective algorithm selector; the default engine reads the
        #: REPRO_COLL_* environment and uses the seed's static algorithm table
        self.engine: "CollectiveEngine" = (
            engine if engine is not None else CollectiveEngine(self.cost_model)
        )
        self.clocks = [Clock(self.cost_model) for _ in range(num_ranks)]
        self.profile: list[Counter] = [Counter() for _ in range(num_ranks)]
        #: structured event recorder; the no-op singleton unless tracing is on
        self.tracer: TraceRecorder | NullTraceRecorder = (
            tracer if tracer is not None else NULL_TRACER
        )
        self._registry_lock = threading.Lock()
        self._comms: dict[Hashable, CommState] = {}
        self._failed: set[int] = set()
        self._failed_lock = threading.Lock()
        self._failed_frozen: frozenset[int] = frozenset()
        self._shrink_lock = threading.Condition()
        self._shrink_arrivals: dict[Hashable, set[int]] = {}
        self._shrink_results: dict[Hashable, tuple[int, ...]] = {}
        self.world = CommState(self, WORLD_ID, range(num_ranks))
        self._comms[WORLD_ID] = self.world
        #: active fault-injection campaign (``None`` outside injected runs);
        #: attach last — it wires itself into the engine's fault hook
        self.faults = faults
        if faults is not None:
            faults.attach(self)

    # -- backend feature contract ------------------------------------------

    def require(self, feature: str, what: str) -> None:
        """Assert a backend feature is available (no-op: threads have all).

        The thread backend shares one address space across ranks, so RMA
        windows, ULFM failure coordination, fault injection, MPIsan, and the
        schedule fuzzer all work.  Other backends override this to raise
        :class:`~repro.mpi.errors.UnsupportedOnBackend` with an actionable
        message instead of silently misbehaving.
        """

    # -- communicator registry -------------------------------------------

    def get_or_create_comm(self, comm_id: Hashable, members: Sequence[int],
                           topology=None) -> CommState:
        """Idempotently create a communicator; all members derive the same id."""
        with self._registry_lock:
            state = self._comms.get(comm_id)
            if state is None:
                state = CommState(self, comm_id, members, topology)
                self._comms[comm_id] = state
            elif state.members != tuple(members):
                raise RawUsageError(
                    f"communicator id {comm_id!r} re-created with different members"
                )
            return state

    # -- failures (substrate for ULFM) ------------------------------------

    def mark_failed(self, world_rank: int) -> None:
        with self._failed_lock:
            self._failed.add(world_rank)
            self._failed_frozen = frozenset(self._failed)
        # wake anyone blocked on shrink rendezvous
        with self._shrink_lock:
            self._shrink_lock.notify_all()

    def failed_snapshot(self) -> frozenset[int]:
        return self._failed_frozen

    def alive_members(self, state: CommState) -> tuple[int, ...]:
        failed = self.failed_snapshot()
        return tuple(w for w in state.members if w not in failed)

    def shrink_rendezvous(self, state: CommState, generation: Hashable,
                          world_rank: int) -> tuple[int, ...]:
        """Agreement among surviving members on the set of alive ranks.

        All surviving members of ``state`` call this with the same
        ``generation`` token; every caller receives the identical sorted tuple
        of alive world ranks.  This is machine-level coordination — exactly
        the role the network-level ULFM agreement protocol plays on a real
        system.
        """
        key = (state.comm_id, generation)
        backoff = Backoff(self.deadline, fuzz=self.fuzzer)
        with self._shrink_lock:
            self._shrink_arrivals.setdefault(key, set()).add(world_rank)
            while key not in self._shrink_results:
                alive = set(self.alive_members(state))
                if self._shrink_arrivals[key] >= alive:
                    self._shrink_results[key] = tuple(sorted(alive))
                    self._shrink_lock.notify_all()
                    break
                self._shrink_lock.wait(timeout=backoff.next_timeout())
                if (backoff.expired and key not in self._shrink_results
                        and not self._shrink_arrivals[key]
                        >= set(self.alive_members(state))):
                    raise RawDeadlockError("shrink agreement never completed")
            return self._shrink_results[key]


def _emit_leak_events(tracer: TraceRecorder, leaks: LeakReport) -> None:
    """Surface leaks in the structured trace (``op="leak:<kind>"``).

    Zero-duration events stamped at each owning rank's final virtual clock
    position, so the Chrome-trace export shows every leak at the end of the
    leaking rank's swim-lane next to the byte accounting.
    """
    for rec in leaks:
        if not 0 <= rec.world_rank < tracer.num_ranks:
            continue  # defensive: unattributable record
        last = tracer.events_for(rec.world_rank)
        t = last[-1].t_end if last else 0.0
        tracer._append(TraceEvent(
            op=f"leak:{rec.kind}",
            world_rank=rec.world_rank,
            rank=rec.rank,
            comm=rec.comm,
            peers=(rec.peer,) if rec.peer is not None and rec.peer >= 0 else (),
            tag=rec.tag,
            sent=0,
            recvd=0,
            t_start=t,
            t_end=t,
            algorithm=None,
        ))


def run_mpi(fn: Callable[..., Any], num_ranks: int, *,
            args: Sequence[Any] = (),
            cost_model: Optional[CostModel] = None,
            deadline: float = 120.0,
            timeout: Optional[float] = None,
            trace: bool | TraceRecorder = False,
            engine: Optional[CollectiveEngine] = None,
            sanitize: Optional[bool] = None,
            fuzz_seed: Optional[int] = None,
            faults=None,
            backend: Optional[str | "Backend"] = None,
            ir: Optional[str] = None,
            ir_passes: Optional[Sequence[str]] = None,
            autotune: Any = None) -> RunResult:
    """Execute ``fn(comm, *args)`` on ``num_ranks`` ranks and collect results.

    ``fn`` receives the rank's raw world communicator
    (:class:`~repro.mpi.context.RawComm`).  Exceptions other than injected
    process failures are re-raised in the caller, annotated with the rank.

    ``backend`` selects the execution backend (default: the ``REPRO_BACKEND``
    environment variable, else ``"thread"``).  ``"thread"`` runs ranks as
    threads of this process — the deterministic debug/fuzz/virtual-time
    target.  ``"process"`` runs each rank in its own OS process connected by
    per-pair duplex pipes, escaping the GIL for genuinely parallel execution;
    payloads, ``fn``, ``args``, and return values must then be picklable, and
    thread-backend-only features (MPIsan, fault injection, the schedule
    fuzzer, RMA, ULFM) raise
    :class:`~repro.mpi.errors.UnsupportedOnBackend`.  See
    :mod:`repro.mpi.backends` and DESIGN §12.

    ``timeout`` arms the run watchdog: if the whole run has not finished
    after that many *real* seconds, it raises
    :class:`~repro.mpi.errors.RunTimeout` carrying the per-rank stack dumps
    of the still-running ranks (:mod:`repro.mpi.watchdog`) — the library
    version of the test suite's conftest watchdog, so a wedged run fails
    loudly instead of stalling its caller.  Thread backend only: the process
    backend cannot dump another OS process's stacks and refuses the
    parameter.

    ``trace=True`` records a structured per-rank event trace (one event per
    raw MPI call) available as ``result.trace``; pass an existing
    :class:`~repro.mpi.tracing.TraceRecorder` to share one across runs.

    ``engine`` selects collective algorithms per call; the default reads
    ``REPRO_COLL_*`` overrides from the environment and otherwise keeps the
    static seed algorithms (see :class:`~repro.mpi.engine.CollectiveEngine`).

    ``sanitize=True`` (default: the ``REPRO_SANITIZE`` env var) runs MPIsan:
    every request, posted receive, unexpected envelope, buffer poison, and
    RMA lock is tracked, and a clean run that leaves any behind raises
    :class:`~repro.mpi.sanitizer.ResourceLeakError` at teardown (the report
    is also available as ``result.leaks`` and, on traced runs, as
    ``leak:<kind>`` trace events).  Runs with failed/errored ranks only
    report, never raise — their teardown is legitimately dirty.

    ``fuzz_seed`` (default: the ``REPRO_FUZZ_SEED`` env var) enables the
    seeded schedule fuzzer: deterministic per-rank delivery delays and
    poll-wakeup jitter that perturb real-time interleaving without touching
    virtual time (see :class:`~repro.mpi.sanitizer.ScheduleFuzzer`).

    ``faults`` attaches a :class:`~repro.mpi.faultinject.FaultCampaign`
    that kills or slows ranks at counted-operation entries, between the p2p
    rounds of collective schedules, at scripted checkpoints, or by seeded
    random draws (seed default: ``REPRO_FAULT_SEED``); injected faults show
    up as ``fault:<kind>`` events on traced runs.

    ``ir`` activates the communication-plan IR (default: the ``REPRO_IR``
    env var; ``"off"``/unset disables).  ``ir="record"`` journals every raw
    op into an :class:`~repro.mpi.ir.nodes.Epoch` attached as ``result.ir``;
    ``ir="optimize"`` additionally rewrites the epoch
    (:mod:`repro.mpi.ir.passes`; restrict with ``ir_passes`` or the
    ``REPRO_IR_PASSES``/``REPRO_IR_DISABLE`` env vars) and replays the
    optimized graph, verifying it bit-identical against the recording.

    ``autotune`` closes the measure→fit→install loop
    (:mod:`repro.mpi.autotune`; default: the ``REPRO_AUTOTUNE`` env var):
    pass ``True``, a store path, or an
    :class:`~repro.mpi.autotune.AutoTuner`.  Learned tuning rules for this
    run's communicator size are installed before the run (warm start — the
    engine is created if needed), the run is traced, its collective timings
    are folded back into the tuner, and the store is re-persisted; the tuner
    rides along as ``result.autotune``.  ``autotune=False`` disables even
    when the env var is set.
    """
    tuner = None
    if autotune is not None or os.environ.get("REPRO_AUTOTUNE"):
        from repro.mpi.autotune import resolve_autotune

        tuner = resolve_autotune(autotune)
    if tuner is not None:
        if engine is None:
            engine = CollectiveEngine(
                cost_model if cost_model is not None else CostModel())
        tuner.install(engine, p=num_ranks)
        if trace is False:
            trace = True
    mode = ir if ir is not None else os.environ.get("REPRO_IR")
    if mode and mode != "off":
        from repro.mpi.ir.driver import run_with_ir

        result = run_with_ir(
            fn, num_ranks, mode=mode, ir_passes=ir_passes, args=args,
            cost_model=cost_model, deadline=deadline, timeout=timeout,
            trace=trace, engine=engine, sanitize=sanitize,
            fuzz_seed=fuzz_seed, faults=faults, backend=backend,
        )
    else:
        from repro.mpi.backends import resolve_backend

        result = resolve_backend(backend).run(
            fn, num_ranks, args=args, cost_model=cost_model,
            deadline=deadline, timeout=timeout, trace=trace, engine=engine,
            sanitize=sanitize, fuzz_seed=fuzz_seed, faults=faults,
        )
    if tuner is not None:
        tuner.observe(result)
        if tuner.path is not None:
            tuner.save()
        result.autotune = tuner
    return result

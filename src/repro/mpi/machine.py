"""The parallel machine: rank threads, communicator registry, failure state.

:func:`run_mpi` is the entry point of the raw runtime: it spawns one thread
per rank, hands each a :class:`~repro.mpi.context.RawComm` for the world
communicator, and collects results, virtual times, and PMPI-style call counts.
"""

from __future__ import annotations

import threading
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Optional, Sequence

from repro.mpi.costmodel import Clock, CostModel
from repro.mpi.engine import CollectiveEngine
from repro.mpi.errors import ProcessKilled, RawDeadlockError, RawUsageError
from repro.mpi.p2p import Mailbox
from repro.mpi.requests import ArrivalBarrier
from repro.mpi.sanitizer import (
    NULL_AUDITOR,
    LeakReport,
    NullAuditor,
    ResourceAuditor,
    ResourceLeakError,
    ScheduleFuzzer,
    env_fuzz_seed_default,
    env_sanitize_default,
)
from repro.mpi.tracing import NULL_TRACER, NullTraceRecorder, TraceEvent, TraceRecorder
from repro.mpi.waiting import Backoff

WORLD_ID: Hashable = "world"


class CommState:
    """Shared (cross-thread) state of one communicator."""

    def __init__(self, machine: "Machine", comm_id: Hashable,
                 members: Sequence[int],
                 topology: Optional[dict[int, tuple[tuple[int, ...], tuple[int, ...]]]] = None):
        self.machine = machine
        self.comm_id = comm_id
        #: world ranks of the members; local rank == index
        self.members: tuple[int, ...] = tuple(members)
        self.local_of_world = {w: i for i, w in enumerate(self.members)}
        self.mailboxes: dict[int, Mailbox] = {}
        for local in range(len(self.members)):
            mb = Mailbox(deadline_seconds=machine.deadline)
            mb.failure_probe = machine.failed_snapshot
            mb.source_to_world = lambda r, m=self.members: m[r] if 0 <= r < len(m) else -1
            mb.fuzz = machine.fuzzer
            self.mailboxes[local] = mb
        for mb in self.mailboxes.values():
            mb.revoke_probe = self._is_revoked
        self.barrier = ArrivalBarrier(len(self.members), machine.cost_model.alpha)
        #: per-local-rank (sources, destinations) for dist-graph communicators
        self.topology = topology
        self.revoked = threading.Event()

    def _is_revoked(self) -> bool:
        return self.revoked.is_set()

    @property
    def size(self) -> int:
        return len(self.members)


@dataclass
class RunResult:
    """Outcome of a :func:`run_mpi` execution."""

    #: per-rank return values (``None`` for ranks that died)
    values: list[Any]
    #: per-rank virtual clocks at completion (seconds)
    times: list[float]
    #: per-rank PMPI-style call counters
    counts: list[Counter]
    #: per-rank virtual seconds attributed to communication
    comm_seconds: list[float]
    #: per-rank virtual seconds attributed to local computation
    compute_seconds: list[float]
    #: world ranks that died during the run
    failed: frozenset[int] = frozenset()
    machine: Optional["Machine"] = None
    #: structured event trace (``None`` unless the run enabled tracing)
    trace: Optional[TraceRecorder] = None
    #: MPIsan finalize-time leak report (``None`` unless the run was
    #: sanitized; empty reports are falsy)
    leaks: Optional[LeakReport] = None

    @property
    def max_time(self) -> float:
        """Simulated makespan: the latest per-rank virtual clock."""
        return max(self.times) if self.times else 0.0

    def total_calls(self, op: str) -> int:
        """Total number of raw calls of kind ``op`` across ranks."""
        return sum(c.get(op, 0) for c in self.counts)

    def op_bytes(self, *, by_algorithm: bool = False
                 ) -> dict[str, dict[str, float]]:
        """Per-op ``{calls, sent, recvd, bytes, seconds}`` aggregates.

        ``by_algorithm=True`` splits collectives by the algorithm the engine
        selected, keyed ``"op[algorithm]"``.  Empty when the run was not
        traced (``run_mpi(..., trace=True)``).
        """
        if self.trace is None:
            return {}
        return self.trace.per_op_totals(by_algorithm=by_algorithm)

    def algorithms_used(self) -> dict[str, tuple[str, ...]]:
        """``{op: algorithm names}`` the engine selected during a traced run."""
        return self.trace.algorithms_used() if self.trace is not None else {}

    def chrome_trace(self) -> dict[str, Any]:
        """Chrome trace-event JSON of the run (requires ``trace=True``)."""
        if self.trace is None:
            raise RawUsageError(
                "chrome_trace() requires running with trace=True"
            )
        return self.trace.to_chrome_trace()


class Machine:
    """An in-process parallel machine with ``num_ranks`` rank threads."""

    def __init__(self, num_ranks: int, cost_model: Optional[CostModel] = None,
                 deadline: float = 120.0,
                 tracer: Optional[TraceRecorder] = None,
                 engine: Optional["CollectiveEngine"] = None,
                 auditor: Optional[ResourceAuditor] = None,
                 fuzzer: Optional[ScheduleFuzzer] = None,
                 faults=None):
        if num_ranks < 1:
            raise RawUsageError(f"num_ranks must be >= 1, got {num_ranks}")
        self.num_ranks = num_ranks
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.deadline = deadline
        #: MPIsan resource auditor; the no-op singleton unless sanitizing
        self.auditor: ResourceAuditor | NullAuditor = (
            auditor if auditor is not None else NULL_AUDITOR
        )
        #: seeded schedule fuzzer (``None`` outside fuzzed runs); must be set
        #: before any CommState wires it into its mailboxes
        self.fuzzer = fuzzer
        #: collective algorithm selector; the default engine reads the
        #: REPRO_COLL_* environment and uses the seed's static algorithm table
        self.engine: "CollectiveEngine" = (
            engine if engine is not None else CollectiveEngine(self.cost_model)
        )
        self.clocks = [Clock(self.cost_model) for _ in range(num_ranks)]
        self.profile: list[Counter] = [Counter() for _ in range(num_ranks)]
        #: structured event recorder; the no-op singleton unless tracing is on
        self.tracer: TraceRecorder | NullTraceRecorder = (
            tracer if tracer is not None else NULL_TRACER
        )
        self._registry_lock = threading.Lock()
        self._comms: dict[Hashable, CommState] = {}
        self._failed: set[int] = set()
        self._failed_lock = threading.Lock()
        self._failed_frozen: frozenset[int] = frozenset()
        self._shrink_lock = threading.Condition()
        self._shrink_arrivals: dict[Hashable, set[int]] = {}
        self._shrink_results: dict[Hashable, tuple[int, ...]] = {}
        self.world = CommState(self, WORLD_ID, range(num_ranks))
        self._comms[WORLD_ID] = self.world
        #: active fault-injection campaign (``None`` outside injected runs);
        #: attach last — it wires itself into the engine's fault hook
        self.faults = faults
        if faults is not None:
            faults.attach(self)

    # -- communicator registry -------------------------------------------

    def get_or_create_comm(self, comm_id: Hashable, members: Sequence[int],
                           topology=None) -> CommState:
        """Idempotently create a communicator; all members derive the same id."""
        with self._registry_lock:
            state = self._comms.get(comm_id)
            if state is None:
                state = CommState(self, comm_id, members, topology)
                self._comms[comm_id] = state
            elif state.members != tuple(members):
                raise RawUsageError(
                    f"communicator id {comm_id!r} re-created with different members"
                )
            return state

    # -- failures (substrate for ULFM) ------------------------------------

    def mark_failed(self, world_rank: int) -> None:
        with self._failed_lock:
            self._failed.add(world_rank)
            self._failed_frozen = frozenset(self._failed)
        # wake anyone blocked on shrink rendezvous
        with self._shrink_lock:
            self._shrink_lock.notify_all()

    def failed_snapshot(self) -> frozenset[int]:
        return self._failed_frozen

    def alive_members(self, state: CommState) -> tuple[int, ...]:
        failed = self.failed_snapshot()
        return tuple(w for w in state.members if w not in failed)

    def shrink_rendezvous(self, state: CommState, generation: Hashable,
                          world_rank: int) -> tuple[int, ...]:
        """Agreement among surviving members on the set of alive ranks.

        All surviving members of ``state`` call this with the same
        ``generation`` token; every caller receives the identical sorted tuple
        of alive world ranks.  This is machine-level coordination — exactly
        the role the network-level ULFM agreement protocol plays on a real
        system.
        """
        key = (state.comm_id, generation)
        backoff = Backoff(self.deadline, fuzz=self.fuzzer)
        with self._shrink_lock:
            self._shrink_arrivals.setdefault(key, set()).add(world_rank)
            while key not in self._shrink_results:
                alive = set(self.alive_members(state))
                if self._shrink_arrivals[key] >= alive:
                    self._shrink_results[key] = tuple(sorted(alive))
                    self._shrink_lock.notify_all()
                    break
                self._shrink_lock.wait(timeout=backoff.next_timeout())
                if (backoff.expired and key not in self._shrink_results
                        and not self._shrink_arrivals[key]
                        >= set(self.alive_members(state))):
                    raise RawDeadlockError("shrink agreement never completed")
            return self._shrink_results[key]


def _emit_leak_events(tracer: TraceRecorder, leaks: LeakReport) -> None:
    """Surface leaks in the structured trace (``op="leak:<kind>"``).

    Zero-duration events stamped at each owning rank's final virtual clock
    position, so the Chrome-trace export shows every leak at the end of the
    leaking rank's swim-lane next to the byte accounting.
    """
    for rec in leaks:
        if not 0 <= rec.world_rank < tracer.num_ranks:
            continue  # defensive: unattributable record
        last = tracer.events_for(rec.world_rank)
        t = last[-1].t_end if last else 0.0
        tracer._append(TraceEvent(
            op=f"leak:{rec.kind}",
            world_rank=rec.world_rank,
            rank=rec.rank,
            comm=rec.comm,
            peers=(rec.peer,) if rec.peer is not None and rec.peer >= 0 else (),
            tag=rec.tag,
            sent=0,
            recvd=0,
            t_start=t,
            t_end=t,
            algorithm=None,
        ))


def run_mpi(fn: Callable[..., Any], num_ranks: int, *,
            args: Sequence[Any] = (),
            cost_model: Optional[CostModel] = None,
            deadline: float = 120.0,
            trace: bool | TraceRecorder = False,
            engine: Optional[CollectiveEngine] = None,
            sanitize: Optional[bool] = None,
            fuzz_seed: Optional[int] = None,
            faults=None) -> RunResult:
    """Execute ``fn(comm, *args)`` on ``num_ranks`` ranks and collect results.

    ``fn`` receives the rank's raw world communicator
    (:class:`~repro.mpi.context.RawComm`).  Exceptions other than injected
    process failures are re-raised in the caller, annotated with the rank.

    ``trace=True`` records a structured per-rank event trace (one event per
    raw MPI call) available as ``result.trace``; pass an existing
    :class:`~repro.mpi.tracing.TraceRecorder` to share one across runs.

    ``engine`` selects collective algorithms per call; the default reads
    ``REPRO_COLL_*`` overrides from the environment and otherwise keeps the
    static seed algorithms (see :class:`~repro.mpi.engine.CollectiveEngine`).

    ``sanitize=True`` (default: the ``REPRO_SANITIZE`` env var) runs MPIsan:
    every request, posted receive, unexpected envelope, buffer poison, and
    RMA lock is tracked, and a clean run that leaves any behind raises
    :class:`~repro.mpi.sanitizer.ResourceLeakError` at teardown (the report
    is also available as ``result.leaks`` and, on traced runs, as
    ``leak:<kind>`` trace events).  Runs with failed/errored ranks only
    report, never raise — their teardown is legitimately dirty.

    ``fuzz_seed`` (default: the ``REPRO_FUZZ_SEED`` env var) enables the
    seeded schedule fuzzer: deterministic per-rank delivery delays and
    poll-wakeup jitter that perturb real-time interleaving without touching
    virtual time (see :class:`~repro.mpi.sanitizer.ScheduleFuzzer`).

    ``faults`` attaches a :class:`~repro.mpi.faultinject.FaultCampaign`
    that kills or slows ranks at counted-operation entries, between the p2p
    rounds of collective schedules, at scripted checkpoints, or by seeded
    random draws (seed default: ``REPRO_FAULT_SEED``); injected faults show
    up as ``fault:<kind>`` events on traced runs.
    """
    from repro.mpi.context import RawComm

    tracer: Optional[TraceRecorder]
    if isinstance(trace, TraceRecorder):
        tracer = trace
    elif trace:
        tracer = TraceRecorder(num_ranks)
    else:
        tracer = None

    if sanitize is None:
        sanitize = env_sanitize_default()
    if fuzz_seed is None:
        fuzz_seed = env_fuzz_seed_default()
    auditor = ResourceAuditor() if sanitize else None
    fuzzer = ScheduleFuzzer(fuzz_seed) if fuzz_seed is not None else None

    machine = Machine(num_ranks, cost_model=cost_model, deadline=deadline,
                      tracer=tracer, engine=engine, auditor=auditor,
                      fuzzer=fuzzer, faults=faults)
    values: list[Any] = [None] * num_ranks
    errors: list[Optional[BaseException]] = [None] * num_ranks

    def worker(world_rank: int) -> None:
        if fuzzer is not None:
            fuzzer.pause("spawn")
        comm = RawComm(machine, machine.world, world_rank)
        try:
            values[world_rank] = fn(comm, *args)
        except ProcessKilled:
            machine.mark_failed(world_rank)
        except BaseException as exc:  # noqa: BLE001 - report to the driver
            errors[world_rank] = exc

    threads = [
        threading.Thread(target=worker, args=(r,), name=f"rank-{r}", daemon=True)
        for r in range(num_ranks)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=deadline + 30.0)
        if t.is_alive():
            raise RawDeadlockError(f"{t.name} did not terminate (deadlock?)")

    # Prefer primary errors: a rank dying in a collective makes its peers hit
    # the deadlock deadline, but the root cause is the original exception.
    def _priority(item):
        _, exc = item
        return 1 if isinstance(exc, RawDeadlockError) else 0

    raised = [(rank, exc) for rank, exc in enumerate(errors) if exc is not None]
    for rank, exc in sorted(raised, key=_priority):
        raise RuntimeError(f"rank {rank} raised {type(exc).__name__}: {exc}") from exc

    leaks: Optional[LeakReport] = None
    if machine.auditor.enabled:
        leaks = machine.auditor.collect(machine)
        if leaks and tracer is not None:
            _emit_leak_events(tracer, leaks)
        # failed ranks tear down mid-operation: report, but don't fail the run
        if leaks and not machine.failed_snapshot():
            raise ResourceLeakError(leaks)

    return RunResult(
        values=values,
        times=[c.now for c in machine.clocks],
        counts=machine.profile,
        comm_seconds=[c.comm_seconds for c in machine.clocks],
        compute_seconds=[c.compute_seconds for c in machine.clocks],
        failed=machine.failed_snapshot(),
        machine=machine,
        trace=tracer,
        leaks=leaks,
    )

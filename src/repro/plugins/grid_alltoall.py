"""Grid all-to-all plugin (paper §V-A).

Routes all-to-all traffic over a virtual two-dimensional processor grid in
two hops: source → intermediate in the source's *row* holding the
destination's *column*, then intermediate → destination within that column.
Message start-up latency drops from Θ(p)·α (direct ``MPI_Alltoallv``) to
Θ(√p)·α, at the price of transporting each element twice and tagging it with
routing metadata — the latency-for-volume trade the paper describes, which
wins on low-locality graphs (Erdős-Rényi, RHG) at scale.

The grid is ``nrows × ncols`` with ``nrows · ncols = p`` and ``ncols`` the
largest divisor of ``p`` at most ``√p`` — exact for the power-of-two rank
counts the evaluation uses; a prime ``p`` degenerates to one row (direct
exchange), which is still correct.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

import numpy as np

from repro.core.communicator import _exclusive_prefix
from repro.core.errors import UsageError
from repro.core.named_params import send_buf, send_counts, recv_counts
from repro.core.parameters import Parameter
from repro.core.plans import OpSpec
from repro.core.plugins import CommunicatorPlugin, plugin_method

_GRID_SPEC = OpSpec(
    name="alltoallv_grid",
    required=("send_buf", "send_counts"),
    out_allowed=("recv_buf", "recv_counts"),
    implicit_out=("recv_buf",),
)


def grid_dims(p: int) -> tuple[int, int]:
    """Grid dimensions ``(nrows, ncols)`` with ``nrows * ncols == p``."""
    ncols = 1
    d = 1
    while d * d <= p:
        if p % d == 0:
            ncols = d
        d += 1
    return p // ncols, ncols


class GridAlltoall(CommunicatorPlugin):
    """Adds ``alltoallv_grid`` to a communicator."""

    _grid_cache: Optional[tuple] = None

    def _grid(self):
        """Lazily build (and cache) the row/column sub-communicators."""
        if self._grid_cache is None:
            p, r = self.size, self.rank
            nrows, ncols = grid_dims(p)
            row, col = divmod(r, ncols)
            row_comm = self.split(color=row, key=col)
            col_comm = self.split(color=col, key=row)
            self._grid_cache = (nrows, ncols, row_comm, col_comm)
        return self._grid_cache

    @plugin_method
    def alltoallv_grid(self, *params: Parameter) -> Any:
        """Two-hop all-to-all: ``alltoallv_grid(send_buf(v), send_counts(c))``.

        Returns the received elements ordered by source rank; request the
        per-source counts with ``recv_counts_out()``.
        """
        plan = self._plans.lookup(_GRID_SPEC, params)
        data = np.asarray(plan.data(params, "send_buf"))
        counts = [int(c) for c in plan.data(params, "send_counts")]
        p, r = self.size, self.rank
        if len(counts) != p:
            raise UsageError(f"send_counts has {len(counts)} entries, expected {p}")
        nrows, ncols, row_comm, col_comm = self._grid()

        val_dtype = data.dtype if data.size else np.dtype(np.int64)
        routed = np.dtype(
            [("src", np.int64), ("dest", np.int64), ("val", val_dtype)]
        )

        # phase 1: within the row, to the intermediate holding col(dest)
        displs = _exclusive_prefix(counts)
        phase1 = np.empty(sum(counts), dtype=routed)
        phase1_counts = [0] * ncols
        offset = 0
        for dest in range(p):
            c = counts[dest]
            if c:
                block = phase1[offset: offset + c]
                block["src"] = r
                block["dest"] = dest
                block["val"] = data[displs[dest]: displs[dest] + c]
                offset += c
            phase1_counts[dest % ncols] += c
        order = np.argsort(phase1["dest"] % ncols, kind="stable")
        phase1 = phase1[order]
        mid = row_comm.alltoallv(send_buf(phase1), send_counts(phase1_counts))
        mid = np.asarray(mid, dtype=routed)

        # phase 2: within the column, to the final destination row
        dest_rows = mid["dest"] // ncols
        order = np.argsort(dest_rows, kind="stable")
        mid = mid[order]
        phase2_counts = np.bincount(dest_rows[order], minlength=nrows).tolist()
        final = col_comm.alltoallv(send_buf(mid), send_counts(phase2_counts))
        final = np.asarray(final, dtype=routed)

        # face the result in deterministic source order
        order = np.argsort(final["src"], kind="stable")
        final = final[order]
        recv_buf_value = final["val"].copy()
        per_source = np.bincount(final["src"], minlength=p).tolist()
        produced = {"recv_buf": recv_buf_value, "recv_counts": per_source}
        return self._finish(plan, params, produced)

"""Higher-dimensional indirect all-to-all with message aggregation (paper §VI).

The paper's future-work section announces "generalizing the indirection
patterns for all-to-all primitives to higher dimensions, while also
incorporating message aggregation".  This plugin implements that
generalization: the 2D grid of :mod:`repro.plugins.grid_alltoall` becomes a
**d-dimensional torus**; a message travels at most ``d`` hops, correcting one
coordinate per hop, and all payload travelling between the same pair of
processes in a hop is **aggregated into a single message**.

Cost structure: per hop one alltoallv over a communicator of size
``p^(1/d)`` ⇒ start-up latency Θ(d · p^{1/d}) instead of Θ(p), at the price
of shipping each element up to ``d`` times plus a routing header.
``d = 1`` degenerates to the direct exchange, ``d = 2`` to the grid plugin
(over its own generalized implementation); larger ``d`` trades more volume
for even lower latency — useful at extreme scale or for very small messages.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

import numpy as np

from repro.core.communicator import _exclusive_prefix
from repro.core.errors import UsageError
from repro.core.named_params import send_buf, send_counts
from repro.core.parameters import Parameter
from repro.core.plans import OpSpec
from repro.core.plugins import CommunicatorPlugin, plugin_method

_SPEC = OpSpec(
    name="alltoallv_hypergrid",
    required=("send_buf", "send_counts"),
    out_allowed=("recv_buf", "recv_counts"),
    implicit_out=("recv_buf",),
)


def balanced_dims(p: int, d: int) -> tuple[int, ...]:
    """Factor ``p`` into ``d`` near-equal dimensions (product exactly ``p``).

    Greedy: repeatedly split off the largest divisor ≤ the ideal d-th root.
    Prime factors that cannot be split pile into the last dimension, so prime
    ``p`` degenerates gracefully (one long dimension = direct exchange).
    """
    if d < 1:
        raise UsageError(f"dimension must be >= 1, got {d}")
    dims: list[int] = []
    remaining = p
    for k in range(d - 1, 0, -1):
        ideal = max(int(round(remaining ** (1.0 / (k + 1)))), 1)
        best = 1
        for cand in range(ideal, 0, -1):
            if remaining % cand == 0:
                best = cand
                break
        # also look slightly upward for a closer divisor
        for cand in range(ideal + 1, min(ideal * 2, remaining) + 1):
            if remaining % cand == 0 and abs(cand - ideal) < abs(best - ideal):
                best = cand
                break
        dims.append(best)
        remaining //= best
    dims.append(remaining)
    return tuple(sorted(dims))


def rank_to_coords(rank: int, dims: Sequence[int]) -> tuple[int, ...]:
    """Mixed-radix decomposition of a rank into torus coordinates."""
    coords = []
    for n in dims:
        coords.append(rank % n)
        rank //= n
    return tuple(coords)


def coords_to_rank(coords: Sequence[int], dims: Sequence[int]) -> int:
    rank = 0
    stride = 1
    for c, n in zip(coords, dims):
        rank += c * stride
        stride *= n
    return rank


class HierarchicalAlltoall(CommunicatorPlugin):
    """Adds ``alltoallv_hypergrid`` (d-hop aggregated all-to-all)."""

    _hyper_cache: Optional[dict] = None

    def _axes(self, d: int):
        """Sub-communicators along each torus axis (cached per dimension)."""
        if self._hyper_cache is None:
            self._hyper_cache = {}
        if d not in self._hyper_cache:
            p, r = self.size, self.rank
            dims = balanced_dims(p, d)
            coords = rank_to_coords(r, dims)
            axis_comms = []
            for axis in range(d):
                # color = all coordinates except `axis` frozen (exact
                # mixed-radix encoding, collision-free)
                other = [c for i, c in enumerate(coords) if i != axis]
                other_dims = [n for i, n in enumerate(dims) if i != axis]
                color = axis * p + coords_to_rank(other, other_dims)
                axis_comms.append(self.split(color=color, key=coords[axis]))
            self._hyper_cache[d] = (dims, coords, axis_comms)
        return self._hyper_cache[d]

    @plugin_method
    def alltoallv_hypergrid(self, *params: Parameter, d: int = 3) -> Any:
        """d-hop all-to-all: ``alltoallv_hypergrid(send_buf(v), send_counts(c), d=3)``.

        Hop ``k`` fixes the k-th torus coordinate; all elements moving between
        the same pair of ranks within a hop travel as one aggregated message.
        Returns elements ordered by source rank; request per-source counts
        with ``recv_counts_out()``.
        """
        plan = self._plans.lookup(_SPEC, params)
        data = np.asarray(plan.data(params, "send_buf"))
        counts = [int(c) for c in plan.data(params, "send_counts")]
        p, r = self.size, self.rank
        if len(counts) != p:
            raise UsageError(f"send_counts has {len(counts)} entries, expected {p}")
        dims, coords, axis_comms = self._axes(d)

        val_dtype = data.dtype if data.size else np.dtype(np.int64)
        routed = np.dtype(
            [("src", np.int64), ("dest", np.int64), ("val", val_dtype)]
        )
        displs = _exclusive_prefix(counts)
        current = np.empty(sum(counts), dtype=routed)
        offset = 0
        for dest in range(p):
            c = counts[dest]
            if c:
                block = current[offset: offset + c]
                block["src"] = r
                block["dest"] = dest
                block["val"] = data[displs[dest]: displs[dest] + c]
                offset += c

        for axis in range(len(dims)):
            # aggregate: bucket by the destination's coordinate along `axis`
            axis_coord = (current["dest"] // int(np.prod(dims[:axis], dtype=np.int64))
                          ) % dims[axis]
            order = np.argsort(axis_coord, kind="stable")
            current = current[order]
            hop_counts = np.bincount(axis_coord[order],
                                     minlength=dims[axis]).tolist()
            received = axis_comms[axis].alltoallv(
                send_buf(current), send_counts(hop_counts)
            )
            current = np.asarray(received, dtype=routed)

        order = np.argsort(current["src"], kind="stable")
        current = current[order]
        produced = {
            "recv_buf": current["val"].copy(),
            "recv_counts": np.bincount(current["src"], minlength=p).tolist(),
        }
        return self._finish(plan, params, produced)

"""Reproducible reduce plugin (paper §V-C, Fig. 13).

IEEE-754 addition is not associative; a reduction whose combine order depends
on the number of ranks produces different results on different machine
configurations.  This plugin fixes the reduction order to a **binary tree
over global element indices** — completely independent of how the elements
are distributed over ranks — while still reducing in parallel and exchanging
only O(log n) partial results per rank (far less than the
gather + local-reduce + broadcast baseline, which ships *all* elements).

Scheme (after Villa et al. / Stelz):

1. Every rank decomposes its contiguous global index range into maximal
   *aligned* subtrees of the canonical binary tree over ``[0, n)`` and folds
   each subtree locally, in canonical order.
2. A binomial tree over ranks merges adjacent partial-subtree stacks; merging
   combines two sibling subtrees ``(level, 2i)`` and ``(level, 2i+1)`` into
   their parent ``(level+1, i)`` — exactly the combine the canonical tree
   performs.
3. Rank 0 folds the surviving (canonical) stack left-to-right and broadcasts.

The result is bit-identical for every rank count and distribution.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.core.errors import UsageError
from repro.core.named_params import op as op_param
from repro.core.named_params import send_buf, send_recv_buf
from repro.core.plugins import CommunicatorPlugin, plugin_method
from repro.mpi.ops import SUM, Op

#: a stack entry: (level, index-within-level, value)
Segment = tuple[int, int, Any]


def local_segments(start: int, values: np.ndarray, op: Op) -> list[Segment]:
    """Decompose ``[start, start+len)`` into maximal aligned subtrees.

    Subtree ``(level, i)`` covers ``[i·2^level, (i+1)·2^level)``.  The
    returned segments are in ascending index order and each value is the
    canonical-order fold of its leaves.
    """
    segments: list[Segment] = []
    pos = 0
    n = len(values)
    while pos < n:
        g = start + pos
        # largest aligned power-of-two block starting at g that fits
        max_align = g & -g if g else 1 << 62
        size = 1
        while size * 2 <= max_align and pos + size * 2 <= n:
            size *= 2
        level = size.bit_length() - 1
        value = _tree_fold(values[pos: pos + size], op)
        segments.append((level, g >> level, value))
        pos += size
    return segments


def _tree_fold(values: np.ndarray, op: Op) -> Any:
    """Fold a power-of-two block in canonical binary-tree order."""
    work = list(values)
    while len(work) > 1:
        work = [op(work[i], work[i + 1]) for i in range(0, len(work), 2)]
    return work[0]


def merge_segments(left: list[Segment], right: list[Segment], op: Op
                   ) -> list[Segment]:
    """Merge two adjacent segment stacks, combining siblings into parents."""
    merged = list(left) + list(right)
    changed = True
    while changed:
        changed = False
        out: list[Segment] = []
        i = 0
        while i < len(merged):
            if (
                i + 1 < len(merged)
                and merged[i][0] == merged[i + 1][0]
                and merged[i][1] % 2 == 0
                and merged[i + 1][1] == merged[i][1] + 1
            ):
                level, idx, v1 = merged[i]
                v2 = merged[i + 1][2]
                out.append((level + 1, idx // 2, op(v1, v2)))
                i += 2
                changed = True
            else:
                out.append(merged[i])
                i += 1
        merged = out
    return merged


class ReproducibleReduce(CommunicatorPlugin):
    """Adds ``reduce_reproducible`` / ``allreduce_reproducible``."""

    @plugin_method
    def allreduce_reproducible(self, values: Any, op: Op = SUM) -> Any:
        """Reduce distributed ``values`` with a p-independent combine order.

        Every rank passes its local block (global order = rank order); every
        rank receives the identical, distribution-independent result.
        """
        result = self.reduce_reproducible(values, op)
        return self.bcast(send_recv_buf(result if self.rank == 0 else 0.0))

    @plugin_method
    def reduce_reproducible(self, values: Any, op: Op = SUM) -> Optional[Any]:
        """Rooted variant: the fixed-tree result is delivered at rank 0."""
        values = np.asarray(values)
        if values.ndim != 1:
            raise UsageError("reduce_reproducible expects a 1-D block per rank")
        count = len(values)
        start = self.exscan_single(send_buf(count), op_param(SUM))
        segments = local_segments(int(start), values, op)

        # binomial merge over ranks (contiguous ranges merge in rank order)
        p, r = self.size, self.rank
        mask = 1
        tag = 930_001
        while mask < p:
            if r & mask:
                self.raw.send(segments, r - mask, tag)
                return None
            if r | mask < p:
                other, _ = self.raw.recv(r | mask, tag)
                segments = merge_segments(segments, other, op)
            mask <<= 1
        # canonical left-to-right fold of the surviving stack
        if not segments:
            if op.identity is None:
                raise UsageError(
                    "reduce_reproducible over zero elements needs an op with "
                    "an identity"
                )
            return op.identity
        acc = segments[0][2]
        for _, _, value in segments[1:]:
            acc = op(acc, value)
        return acc

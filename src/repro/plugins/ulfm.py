"""User-Level Failure Mitigation plugin (paper §V-B, Fig. 12).

Wraps the ULFM primitives of the upcoming MPI standard behind idiomatic
exceptions instead of return codes:

- any operation touching a failed peer raises :class:`MPIFailureDetected`;
- operations on a revoked communicator raise :class:`MPIRevokedError`;
- :meth:`ULFM.revoke` poisons the communicator everywhere,
  :meth:`ULFM.shrink` agrees on the survivors and returns a fresh
  communicator containing only them, :meth:`ULFM.agree` is the fault-
  tolerant logical-AND agreement.

The plugin registers an ``on_error`` hook — the error-handling override
mechanism of the plugin architecture (§III-F/III-G).
"""

from __future__ import annotations

from typing import Hashable, Optional

from repro.core.errors import CommunicationFailure, KampingError, RevokedError
from repro.core.plugins import CommunicatorPlugin, plugin_method


class MPIFailureDetected(KampingError):
    """A peer process failed during the operation (``MPI_ERR_PROC_FAILED``)."""

    def __init__(self, failed_ranks=(), message: str = ""):
        self.failed_ranks = tuple(failed_ranks)
        super().__init__(
            message or f"process failure detected: ranks {self.failed_ranks}"
        )


class MPIRevokedError(MPIFailureDetected):
    """The communicator was revoked (``MPI_ERR_REVOKED``).

    A subclass of :class:`MPIFailureDetected` so a single ``except`` clause
    handles both the direct-failure and the revocation path, as in the
    paper's Fig. 12.
    """

    def __init__(self, message: str = ""):
        super().__init__((), message or "communicator has been revoked")


class ULFM(CommunicatorPlugin):
    """Fault-tolerance plugin: revoke / shrink / agree + exception mapping."""

    def on_error(self, exc: BaseException) -> None:
        """Map bindings-layer failures onto ULFM exceptions (error hook)."""
        if isinstance(exc, CommunicationFailure):
            raise MPIFailureDetected(exc.failed_ranks) from exc
        if isinstance(exc, RevokedError):
            raise MPIRevokedError(str(exc)) from exc
        raise exc

    @plugin_method
    def revoke(self) -> None:
        """Mark the communicator unusable on all ranks (``MPI_Comm_revoke``)."""
        self.raw.revoke()

    @property
    def is_revoked(self) -> bool:
        return self.raw.is_revoked

    @plugin_method
    def failed_ranks(self) -> tuple[int, ...]:
        """Locally-known failed ranks of this communicator."""
        return self.raw.failed_ranks()

    @plugin_method
    def shrink(self, generation: Optional[Hashable] = None) -> "ULFM":
        """Agree on the surviving ranks and build a communicator of them.

        ``generation`` distinguishes successive shrinks of the same
        communicator.  By default each call uses an internal auto-
        incrementing epoch, so repeated shrinks of one communicator object
        never collide with a cached earlier agreement (the machine caches
        rendezvous results per ``(comm, generation)``).  Pass an explicit
        value to override — e.g. to coordinate the generation across ranks
        holding *distinct* wrapper objects of the same communicator, where
        each wrapper's private epoch counter would not be shared.
        """
        if generation is None:
            epoch = getattr(self, "_ulfm_shrink_epoch", 0)
            self._ulfm_shrink_epoch = epoch + 1
            generation = ("ulfm-auto", epoch)
        new_raw = self.raw.shrink(generation)
        return type(self)(new_raw)

    @plugin_method
    def agree(self, flag: bool, generation: Hashable = 0) -> bool:
        """Fault-tolerant agreement: logical AND over surviving ranks."""
        return self.raw.agree(flag, generation)

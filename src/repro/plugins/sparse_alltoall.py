"""Sparse all-to-all plugin: the NBX dynamic sparse data exchange (paper §V-A).

``MPI_Alltoallv`` needs a counts array with one entry per rank — Θ(p) work
and Θ(p)·α latency even when each rank talks to a handful of neighbors.
Neighborhood collectives fix this only for *static* patterns; rebuilding the
graph topology every exchange does not scale.

The NBX algorithm (Hoefler, Siebert, Lumsdaine, PPoPP'10) needs neither
counts nor topology: senders use *synchronous* sends (completion ⇒ the
receiver matched), probe-receive until their own sends complete, then enter a
non-blocking barrier; when the barrier completes, every message in the system
has been received.  Total cost Θ(k + log p) for k local messages.
"""

from __future__ import annotations

import time
from typing import Any, Mapping, Optional

import numpy as np

from repro.core.errors import UsageError
from repro.core.plugins import CommunicatorPlugin, plugin_method
from repro.mpi.constants import ANY_SOURCE

#: user-tag region reserved for NBX rounds (kept below TAG_UB)
_NBX_TAG_BASE = 900_000
_NBX_TAG_SLOTS = 10_000


class SparseAlltoall(CommunicatorPlugin):
    """Adds ``alltoallv_sparse`` to a communicator."""

    _nbx_round: int = 0

    @plugin_method
    def alltoallv_sparse(self, messages: Mapping[int, Any]) -> dict[int, Any]:
        """Exchange destination→message pairs; returns source→message pairs.

        ``messages`` maps destination ranks to payloads (NumPy arrays or any
        payload the runtime can size).  Ranks that receive nothing are simply
        absent from the result — no Θ(p) materialization anywhere.
        """
        raw = self.raw
        p = self.size
        tag = _NBX_TAG_BASE + (self._nbx_round % _NBX_TAG_SLOTS)
        self._nbx_round += 1

        send_reqs = []
        for dest, payload in messages.items():
            dest = int(dest)
            if not 0 <= dest < p:
                raise UsageError(
                    f"destination {dest} out of range for communicator of size {p}"
                )
            send_reqs.append(raw.issend(payload, dest, tag))

        received: dict[int, Any] = {}
        barrier_req = None
        while True:
            flag, status = raw.iprobe(ANY_SOURCE, tag)
            if flag:
                payload, st = raw.recv(status.source, tag)
                if st.source in received:
                    received[st.source] = _append(received[st.source], payload)
                else:
                    received[st.source] = payload
                continue
            if barrier_req is not None:
                done, _ = barrier_req.test()
                if done:
                    break
            elif all(req.test()[0] for req in send_reqs):
                barrier_req = raw.ibarrier()
            time.sleep(0)  # yield so peer rank threads can progress
        return received


def _append(existing: Any, more: Any) -> Any:
    """Concatenate two payloads from the same source (multi-message rounds)."""
    if isinstance(existing, np.ndarray) and isinstance(more, np.ndarray):
        return np.concatenate([existing, more])
    if isinstance(existing, list):
        return existing + list(more)
    return [existing, more]

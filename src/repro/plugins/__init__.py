"""``repro.plugins`` — the library extensions shipped with KaMPIng (paper §V).

Compose plugins onto the core communicator with
:func:`repro.core.plugins.extend`::

    from repro.core import Communicator, extend
    from repro.plugins import GridAlltoall, SparseAlltoall

    Comm = extend(Communicator, GridAlltoall, SparseAlltoall)
"""

from repro.plugins.grid_alltoall import GridAlltoall, grid_dims
from repro.plugins.hierarchical_alltoall import (
    HierarchicalAlltoall,
    balanced_dims,
    coords_to_rank,
    rank_to_coords,
)
from repro.plugins.reproducible_reduce import (
    ReproducibleReduce,
    local_segments,
    merge_segments,
)
from repro.plugins.resilience import (
    CheckpointLost,
    RecoveryFailed,
    ResilientScope,
    run_resilient,
)
from repro.plugins.sorter import DistributedSorter
from repro.plugins.sparse_alltoall import SparseAlltoall
from repro.plugins.ulfm import MPIFailureDetected, MPIRevokedError, ULFM

__all__ = [
    "GridAlltoall", "grid_dims",
    "HierarchicalAlltoall", "balanced_dims", "rank_to_coords", "coords_to_rank",
    "SparseAlltoall",
    "ULFM", "MPIFailureDetected", "MPIRevokedError",
    "ResilientScope", "run_resilient", "RecoveryFailed", "CheckpointLost",
    "ReproducibleReduce", "local_segments", "merge_segments",
    "DistributedSorter",
]

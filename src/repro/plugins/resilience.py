"""Recovery engine over ULFM: epochs, buddy checkpoints, shrink-and-retry.

The :mod:`~repro.plugins.ulfm` plugin stops at *detection* — a failed peer
surfaces as :class:`~repro.plugins.ulfm.MPIFailureDetected` and the
application holds revoke/shrink/agree primitives.  This module closes the
loop the paper's §V-B sketches: a :class:`ResilientScope` runs application
*epochs* over a ULFM-extended communicator and, when a failure strikes,

1. **revokes** the communicator, so survivors blocked inside the epoch's
   collectives error out instead of deadlocking on peers that already left;
2. **agrees** (fault-tolerant AND) on whether the epoch completed cleanly —
   a rank counts as healthy only if it finished the epoch *and* replicated
   its new state without seeing a failure;
3. **shrinks** to the survivors and **restores** lost state from in-memory
   *buddy checkpoints*: at every committed epoch each rank's state shards are
   replicated to its ring successor over point-to-point, so when rank ``w``
   dies its successor still holds ``w``'s last committed shards and adopts
   them (rebalancing the data onto the survivors);
4. **retries** the epoch on the shrunk communicator under a capped-retry /
   exponential-backoff policy.

State is a list of ``(key, payload)`` *shards* per rank.  The epoch function
receives a deep copy of the committed shards (failed attempts can never
corrupt checkpointed state) and returns the rank's new shard list; adopted
shards simply extend the list, so an epoch function written over "my shards"
is automatically failure-oblivious.  Commitment is agreement-gated: a rank
promotes its buddy's replica exactly when the epoch-wide agreement says
everyone replicated successfully, which keeps the replica store globally
consistent even when a rank dies immediately after the agreement.

Data-loss limits are those of any buddy scheme: losing a rank *and* its ring
successor within one epoch (or a rank holding not-yet-recommitted adopted
shards) is unrecoverable and raises :class:`CheckpointLost` — a
:class:`RecoveryFailed` subclass, as is the retry-cap exhaustion path.
Recovery *disabled* is simply not using this module: the same fault then
propagates as plain :class:`~repro.plugins.ulfm.MPIFailureDetected`.
"""

from __future__ import annotations

import copy
import time
from typing import Any, Callable, Hashable, Optional

from repro.core.errors import KampingError
from repro.plugins.ulfm import MPIFailureDetected

#: fixed user tag of the buddy-checkpoint replication messages (user tags
#: are validated ``< 2**20``; collective protocol tags are negative, so no
#: internal traffic can ever match this)
CKPT_TAG = 0xC4E7

Shards = list  # list[tuple[Hashable, Any]]
EpochFn = Callable[[Any, Shards, int], Optional[Shards]]


class RecoveryFailed(KampingError):
    """Recovery gave up: the retry cap was exhausted."""


class CheckpointLost(RecoveryFailed):
    """Unrecoverable data loss: a rank and its buddy replica are both gone."""


class ResilientScope:
    """Epoch-structured resilient execution over a ULFM communicator.

    ``comm`` must be a ULFM-extended communicator (``extend(Communicator,
    ULFM)`` or a subclass); ``shards`` is this rank's initial state as a
    list of ``(key, payload)`` pairs.  Construction is collective: the
    initial shards are immediately replicated and committed (a genesis
    epoch), so even a rank that dies in the very first application epoch
    loses nothing.

    :meth:`run` executes one epoch function under the recovery loop; the
    committed state and the (possibly shrunk) communicator are available as
    :attr:`shards` and :attr:`comm` afterwards.
    """

    def __init__(self, comm, shards: Shards, *, label: str = "resilient",
                 max_retries: int = 8, max_attempts: Optional[int] = None,
                 deadline: Optional[float] = None,
                 backoff_initial: float = 1e-3, backoff_cap: float = 5e-2):
        if not hasattr(comm, "agree"):
            raise KampingError(
                "ResilientScope needs a ULFM-extended communicator "
                "(extend(Communicator, ULFM))"
            )
        if max_attempts is not None and max_attempts < 1:
            raise KampingError(
                f"max_attempts must be >= 1 (the first try counts as an "
                f"attempt), got {max_attempts}"
            )
        if deadline is not None and deadline <= 0:
            raise KampingError(
                f"deadline must be > 0 seconds, got {deadline}"
            )
        self.comm = comm
        self.shards: Shards = list(shards)
        self.label = label
        self.max_retries = max_retries
        #: total attempt budget per epoch (first try included); ``None``
        #: derives the budget from the legacy ``max_retries`` (retries after
        #: the first try), keeping existing callers bit-compatible
        self.max_attempts = max_attempts
        #: real-seconds budget per :meth:`run` call (``None`` = unbounded);
        #: checked between attempts, so an in-flight attempt is never cut
        self.deadline = deadline
        self.backoff_initial = backoff_initial
        self.backoff_cap = backoff_cap
        #: number of committed epochs (the genesis commit is epoch 0, so
        #: application epochs start at 1)
        self.committed = 0
        #: world ranks shrunk away across the scope's lifetime
        self.recovered_from: list[int] = []
        self._store: Optional[Shards] = None
        self._store_owner: Optional[int] = None
        self._ring: tuple[int, ...] = tuple(comm.raw.state.members)
        self._failed_since_commit: set[int] = set()
        self._adoptions_since_commit: dict[int, set[int]] = {}
        # genesis: replicate the initial shards so they survive a first-epoch
        # death; an identity epoch reuses the whole retry machinery
        self.run(lambda _comm, work, _epoch: work)

    @property
    def world_rank(self) -> int:
        return self.comm.raw.world_rank

    # -- the epoch loop ----------------------------------------------------

    def run(self, epoch_fn: EpochFn) -> Shards:
        """Run one epoch with recovery; returns the committed shard list.

        ``epoch_fn(comm, shards, epoch)`` receives the current communicator,
        a deep copy of this rank's committed shards, and the epoch index; it
        returns the rank's new shards (or ``None`` to commit ``shards`` as
        mutated in place).  It may raise — or its peers may observe —
        :class:`MPIFailureDetected` at any point; any other exception
        propagates unhandled.

        The retry policy is what the scope was constructed with: the epoch
        is retried until it commits, the attempt budget (``max_attempts``,
        legacy default ``max_retries + 1``) runs out, or the per-``run``
        real-time ``deadline`` expires — both exhaustion paths raise
        :class:`RecoveryFailed`.
        """
        attempts = 0
        budget = (self.max_attempts if self.max_attempts is not None
                  else self.max_retries + 1)
        started = time.monotonic()
        sleep = self.backoff_initial
        while True:
            comm = self.comm
            token = (self.label, self.committed, attempts)
            result: Optional[Shards] = None
            incoming: Optional[tuple[int, Shards]] = None
            try:
                work = copy.deepcopy(self.shards)
                result = epoch_fn(comm, work, self.committed)
                if result is None:
                    result = work
                incoming = self._replicate(comm, result, token)
                healthy = not comm.failed_ranks()
            except MPIFailureDetected:
                self._revoke_quietly(comm)
                healthy = False
            if comm.agree(healthy, generation=("resil-agree", token)):
                self._commit(comm, result, incoming)
                return self.shards
            attempts += 1
            if attempts >= budget:
                if self.max_attempts is not None:
                    raise RecoveryFailed(
                        f"scope {self.label!r}: epoch {self.committed} "
                        f"exhausted its attempt budget "
                        f"(max_attempts={self.max_attempts})"
                    )
                raise RecoveryFailed(
                    f"scope {self.label!r}: epoch {self.committed} still "
                    f"failing after {self.max_retries} recoveries"
                )
            if (self.deadline is not None
                    and time.monotonic() - started >= self.deadline):
                raise RecoveryFailed(
                    f"scope {self.label!r}: epoch {self.committed} still "
                    f"failing after {attempts} attempt(s) when the "
                    f"{self.deadline:g}s recovery deadline expired"
                )
            self._recover()
            time.sleep(sleep)
            sleep = min(sleep * 2, self.backoff_cap)

    # -- buddy checkpoint replication --------------------------------------

    def _replicate(self, comm, result: Shards, token) -> tuple[int, Shards]:
        """Send my new shards to my ring successor, receive my predecessor's.

        Returns ``(owner world rank, shards)`` of the received replica.  The
        transfer deposits a deep snapshot (buffered-send semantics of the
        runtime), so the replica is independent storage.  Each attempt runs
        on a fresh communicator after a shrink, so a stale replica from a
        failed attempt can never cross-match; the token check is defense in
        depth.
        """
        raw = comm.raw
        if raw.size == 1:
            return raw.world_rank, copy.deepcopy(result)
        succ = (raw.rank + 1) % raw.size
        pred = (raw.rank - 1) % raw.size

        def xfer():
            raw.send((token, raw.world_rank, result), succ, CKPT_TAG)
            while True:
                payload, _ = raw.recv(pred, CKPT_TAG)
                if payload[0] == token:
                    return payload[1], payload[2]

        return comm._guard(xfer)

    def _commit(self, comm, result: Shards,
                incoming: Optional[tuple[int, Shards]]) -> None:
        self.shards = result
        if incoming is not None:
            self._store_owner, self._store = incoming
        self._ring = tuple(comm.raw.state.members)
        self._failed_since_commit = set()
        self._adoptions_since_commit = {}
        self.committed += 1

    # -- failure recovery --------------------------------------------------

    def _revoke_quietly(self, comm) -> None:
        try:
            if not comm.is_revoked:
                comm.revoke()
        except MPIFailureDetected:
            pass

    def _recover(self) -> None:
        """Shrink to the survivors and adopt the dead ranks' replicas.

        The adoption plan is computed from agreed-on inputs only — the ring
        of the last commit and the shrunk membership — so every survivor
        derives the identical plan without extra communication.
        """
        comm = self.comm
        self._revoke_quietly(comm)
        new_comm = comm.shrink()
        alive = set(new_comm.raw.state.members)
        ring = self._ring
        dead_now = [w for w in ring
                    if w not in alive and w not in self._failed_since_commit]
        # Viability is decided collectively: the "holder has no replica"
        # condition is only observable *on the holder*, and a lone rank
        # raising CheckpointLost while its peers retry the epoch would
        # deadlock the survivors.  Every rank scores the plan locally, then
        # the shrunk communicator agrees before anyone adopts or gives up.
        reason = None
        for f in dead_now:
            lost = self._adoptions_since_commit.get(f)
            holder = ring[(ring.index(f) + 1) % len(ring)]
            if lost:
                reason = (f"rank {f} died holding the only copy of adopted "
                          f"state from ranks {sorted(lost)} (no commit in "
                          f"between)")
            elif holder == f or holder not in alive:
                reason = (f"rank {f} and its checkpoint buddy {holder} both "
                          f"failed since the last commit")
            elif (holder == self.world_rank
                  and (self._store_owner != f or self._store is None)):
                reason = (f"rank {self.world_rank} should hold the replica "
                          f"of rank {f} but holds {self._store_owner!r}")
            if reason:
                break
        viable = new_comm.agree(
            reason is None,
            generation=("resil-plan", self.label, self.committed,
                        tuple(dead_now)),
        )
        if not viable:
            raise CheckpointLost(
                reason or (f"scope {self.label!r}: a survivor lost the "
                           f"replica of a dead rank in {sorted(dead_now)}")
            )
        for f in dead_now:
            holder = ring[(ring.index(f) + 1) % len(ring)]
            if holder == self.world_rank:
                self.shards = list(self.shards) + copy.deepcopy(self._store)
            self._adoptions_since_commit.setdefault(holder, set()).add(f)
            self._failed_since_commit.add(f)
            self.recovered_from.append(f)
        self.comm = new_comm


def run_resilient(comm, epoch_fn: EpochFn, shards: Shards, *,
                  epochs: int = 1, label: str = "resilient",
                  max_retries: int = 8, max_attempts: Optional[int] = None,
                  deadline: Optional[float] = None,
                  backoff_initial: float = 1e-3,
                  backoff_cap: float = 5e-2) -> ResilientScope:
    """Run ``epochs`` epochs of ``epoch_fn`` under a :class:`ResilientScope`.

    Convenience driver for the common shape::

        scope = run_resilient(comm, one_round, [(comm.rank, my_data)],
                              epochs=rounds)
        survivors_result = scope.shards   # on scope.comm

    Returns the scope; the committed shards, the surviving communicator, and
    the recovery history are its attributes.  ``max_attempts``/``deadline``
    bound each epoch's recovery loop (per-epoch attempt budget and
    real-seconds budget; see :class:`ResilientScope`).
    """
    scope = ResilientScope(comm, shards, label=label, max_retries=max_retries,
                           max_attempts=max_attempts, deadline=deadline,
                           backoff_initial=backoff_initial,
                           backoff_cap=backoff_cap)
    for _ in range(epochs):
        scope.run(epoch_fn)
    return scope

"""STL-style distributed sorter plugin (paper §IV-A / §V).

``comm.sort(data)`` sorts a distributed array globally: afterwards every
rank holds a locally-sorted block and blocks are ordered by rank.  The
implementation is the textbook sample sort of the paper's Fig. 7 with the
paper's oversampling factor ``16·log₂(p) + 1``.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.core.named_params import send_buf, send_counts
from repro.core.plugins import CommunicatorPlugin, plugin_method


class DistributedSorter(CommunicatorPlugin):
    """Adds ``sort`` (sample sort) to a communicator."""

    @plugin_method
    def sort(self, data: Any, *, seed: Optional[int] = None,
             charge_compute: bool = True) -> np.ndarray:
        """Globally sort ``data`` (one block per rank); returns the new block.

        ``charge_compute`` also bills the local sorting work to the virtual
        clock so simulated times include computation, not just messages.
        """
        data = np.asarray(data)
        p = self.size
        if p == 1:
            out = np.sort(data, kind="stable")
            if charge_compute:
                _charge_sort(self, len(out))
            return out

        rng = np.random.default_rng(
            seed if seed is not None else (0xC0FFEE ^ self.rank)
        )
        num_samples = int(16 * np.log2(p) + 1)
        if len(data):
            local_samples = rng.choice(data, size=num_samples, replace=True)
        else:
            local_samples = data[:0]
        all_samples = np.sort(self.allgather(send_buf(local_samples)))
        if len(all_samples) == 0:
            splitters = all_samples
        else:
            step = max(len(all_samples) // p, 1)
            splitters = all_samples[step::step][: p - 1]

        buckets = np.searchsorted(splitters, data, side="right")
        order = np.argsort(buckets, kind="stable")
        send_data = data[order]
        counts = np.bincount(buckets, minlength=p).tolist()
        if charge_compute:
            _charge_sort(self, len(data))
        received = self.alltoallv(send_buf(send_data), send_counts(counts))
        out = np.sort(received, kind="stable")
        if charge_compute:
            _charge_sort(self, len(out))
        return out


def _charge_sort(comm, n: int, per_item: float = 4.0e-9) -> None:
    """Bill ~O(n log n) comparison-sort work to the virtual clock.

    Module-level so ``DistributedSorter.sort`` works duck-typed on any
    communicator (the DistributedArray container borrows it that way).
    """
    if n > 1:
        comm.compute(per_item * n * np.log2(n))
